#!/usr/bin/env python3
"""Documentation link / pointer checker (stdlib only; the CI docs job runs it).

Checks, across README.md and docs/*.md:

* every relative markdown link ``[text](path)`` resolves to a real file
  (anchors are stripped; http(s)/mailto links are skipped);
* every `` `src/...` `` / `` `tests/...` `` / `` `examples/...` `` code
  pointer names an existing file or directory (function suffixes like
  ``module.py (build_x)`` are tolerated);
* docs/paper-map.md covers every declared table row: for each
  ``TableSpec`` row key in ``repro.resources.tables.TABLE_SPECS`` there
  must be a matching table line naming a module and a test.

Exit status is non-zero on any failure, with one line per problem.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)]+)\)")
POINTER_RE = re.compile(r"`((?:src|tests|examples|benchmarks|docs|tools)/[^`\s]+)`")


def md_files():
    yield ROOT / "README.md"
    yield from sorted((ROOT / "docs").glob("*.md"))


def check_links(problems: list) -> None:
    for md in md_files():
        text = md.read_text()
        for link in LINK_RE.findall(text):
            link = link.strip()
            if link.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = link.split("#", 1)[0]
            if not target:
                continue
            resolved = (md.parent / target).resolve()
            if not resolved.exists():
                problems.append(f"{md.relative_to(ROOT)}: broken link -> {link}")


def check_pointers(problems: list) -> None:
    for md in md_files():
        for pointer in POINTER_RE.findall(md.read_text()):
            path = pointer.split("::", 1)[0].rstrip("/")
            if not (ROOT / path).exists():
                problems.append(f"{md.relative_to(ROOT)}: missing path -> {pointer}")


def check_paper_map(problems: list) -> None:
    sys.path.insert(0, str(ROOT / "src"))
    try:
        from repro.resources.tables import TABLE_SPECS
    except Exception as exc:  # pragma: no cover - import environment issues
        problems.append(f"paper-map check skipped: cannot import repro ({exc})")
        return
    text = (ROOT / "docs" / "paper-map.md").read_text()

    # Split into "## ..." sections so a row label only counts inside its
    # own table's section (CDKPM/Gidney/Draper appear in all six tables).
    sections: dict = {}
    header = ""
    for line in text.splitlines():
        if line.startswith("## "):
            header = line
            sections[header] = []
        elif header:
            sections[header].append(line)

    for spec in TABLE_SPECS.values():
        number = spec.name.removeprefix("table")
        section = next(
            (body for head, body in sections.items() if f"Table {number} " in head),
            None,
        )
        if section is None:
            problems.append(f"docs/paper-map.md: no section for {spec.name}")
            continue
        for row in spec.rows:
            matches = [
                ln for ln in section
                if ln.startswith("|") and f"| {row.label} " in f"{ln} "
                and ("src/" in ln)
            ]
            if not matches:
                problems.append(
                    f"docs/paper-map.md: no module row for {spec.name} / {row.label!r}"
                )
                continue
            if not any("tests/" in ln for ln in matches):
                problems.append(
                    f"docs/paper-map.md: no test pointer for {spec.name} / {row.label!r}"
                )


def main() -> int:
    problems: list = []
    check_links(problems)
    check_pointers(problems)
    check_paper_map(problems)
    if problems:
        print(f"check_docs: {len(problems)} problem(s)")
        for p in problems:
            print(f"  {p}")
        return 1
    count = sum(1 for _ in md_files())
    print(f"check_docs: OK ({count} files checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
