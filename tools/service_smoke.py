"""CI smoke for the serving layer: cold -> hot -> restart, asserted by bytes.

Boots a real ``python -m repro.service`` subprocess on an ephemeral port,
then checks the cache contract end to end:

1. a cold ``/estimate`` is computed (``X-Repro-Cache: computed``);
2. re-issuing it is served from memory, byte-identically, and ``/statsz``
   shows the memory-hit counter moving while misses stand still;
3. the GET and POST spellings share the warm entry;
4. the server is killed and restarted on the same store, and the same
   request comes back from the *disk* tier — still the same bytes;
5. a sweep job submitted over ``/jobs`` runs to ``done`` and serves its
   artifact.

Exits non-zero (with the failing check named) on any violation.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

ESTIMATE_QUERY = "kind=modadd&n=6&p=61&family=cdkpm&mbu=true&mc_batch=128&seed=9"
ESTIMATE_JSON = {"kind": "modadd", "n": 6, "p": 61, "family": "cdkpm",
                 "mbu": True, "mc_batch": 128, "seed": 9}
JOB_CONFIG = {"tables": ["table1"], "sizes": [4], "seed": 7, "mc_batch": 64,
              "modexp": [], "include_savings": False, "workers": 0}


def fail(check: str, detail: str = "") -> None:
    print(f"SERVICE SMOKE FAILED [{check}] {detail}", file=sys.stderr)
    raise SystemExit(1)


class Server:
    """One ``python -m repro.service`` child on an ephemeral port."""

    def __init__(self, store: Path) -> None:
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "--port", "0",
             "--store", str(store)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        line = self.proc.stdout.readline()
        match = re.search(r"http://[\d.]+:(\d+)", line)
        if not match:
            self.stop()
            fail("boot", f"no address in startup line: {line!r}")
        self.base = match.group(0)

    def stop(self) -> None:
        self.proc.terminate()
        try:
            self.proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()

    def get(self, path: str):
        with urllib.request.urlopen(f"{self.base}{path}", timeout=60) as resp:
            return resp.headers.get("X-Repro-Cache"), resp.read()

    def post(self, path: str, payload) -> bytes:
        req = urllib.request.Request(
            f"{self.base}{path}", data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.read()

    def stats(self) -> dict:
        return json.loads(self.get("/statsz")[1])


def main() -> int:
    store = Path(tempfile.mkdtemp(prefix="service-smoke-"))
    server = Server(store)
    try:
        tier, _ = server.get("/healthz")
        print(f"service up at {server.base} (store: {store})")

        # 1. cold request is computed
        tier, cold = server.get(f"/estimate?{ESTIMATE_QUERY}")
        if tier != "computed":
            fail("cold", f"expected tier 'computed', got {tier!r}")
        before = server.stats()["cache"]["result_tier"]
        print(f"cold estimate: {len(cold)} bytes, tier=computed")

        # 2. re-issue: memory hit, same bytes, /statsz delta says so
        tier, warm = server.get(f"/estimate?{ESTIMATE_QUERY}")
        if tier != "memory":
            fail("hot", f"expected tier 'memory', got {tier!r}")
        if warm != cold:
            fail("hot", "warm response differs from cold response")
        after = server.stats()["cache"]["result_tier"]
        if after["memory_hits"] != before["memory_hits"] + 1:
            fail("hot", f"memory_hits did not advance: {before} -> {after}")
        if after["misses"] != before["misses"]:
            fail("hot", f"warm request recomputed: {before} -> {after}")
        print(f"hot estimate: byte-identical, memory_hits {before['memory_hits']}"
              f" -> {after['memory_hits']}, misses flat at {after['misses']}")

        # 3. the POST spelling lands on the same warm entry
        via_post = server.post("/estimate", ESTIMATE_JSON)
        if via_post != cold:
            fail("post", "POST body differs from GET body")
        print("post estimate: shares the GET fingerprint, byte-identical")

        # 4. a sweep job runs to completion
        job = json.loads(server.post("/jobs", JOB_CONFIG))
        deadline = time.monotonic() + 300
        while time.monotonic() < deadline:
            status = json.loads(server.get(f"/jobs/{job['id']}")[1])["status"]
            if status in ("done", "failed"):
                break
            time.sleep(0.2)
        if status != "done":
            detail = server.get(f"/jobs/{job['id']}")[1][:400]
            fail("job", f"job ended {status!r}: {detail!r}")
        result = json.loads(server.get(f"/jobs/{job['id']}/result")[1])
        if not result["artifact"]["tables"]:
            fail("job", "finished job served an empty artifact")
        print(f"job {job['id'][:20]}…: done, artifact served")
    finally:
        server.stop()

    # 5. a *real* restart serves the same request from the disk tier
    server = Server(store)
    try:
        tier, redux = server.get(f"/estimate?{ESTIMATE_QUERY}")
        if tier != "disk":
            fail("restart", f"expected tier 'disk', got {tier!r}")
        if redux != cold:
            fail("restart", "post-restart response differs from original")
        tier_stats = server.stats()["cache"]["result_tier"]
        if tier_stats["disk_hits"] != 1 or tier_stats["corrupt"]:
            fail("restart", f"unexpected tier counters: {tier_stats}")
        print("restart: served from disk, byte-identical to the original")
    finally:
        server.stop()

    print("service smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
