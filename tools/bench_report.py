#!/usr/bin/env python3
"""Aggregate every ``benchmarks/BENCH_*.json`` into one trajectory table.

Each benchmark writes a machine-readable artifact with its own schema;
this tool (stdlib only, like ``tools/check_docs.py``) flattens them into
a single markdown table plus the headline *performance trajectory* — the
chain of backend-ladder speedups the repo has accumulated PR over PR:

    classical -> bitplane -> compiled -> fused -> vectorized
              -> auto-dispatched/sharded

Alongside the markdown it always rewrites
``benchmarks/BENCH_report.json`` — the same headline entries and the full
flattened metric list in one machine-readable file (excluded from its own
input glob), so CI and downstream tooling can diff trajectories without
parsing markdown.

Usage::

    python tools/bench_report.py             # print markdown to stdout
    python tools/bench_report.py --out docs/bench-report.md
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO / "benchmarks"

#: The headline speedup metric per benchmark artifact (dotted path into
#: each case row), used for the trajectory summary.  Anything else
#: numeric still lands in the full table.
HEADLINE = {
    "bitplane_vs_looped_classical": ("speedup_per_input", "bitplane vs looped classical (per input)"),
    "compiled_vs_interpretive_bitplane": ("speedup", "compiled VM vs interpretive walk"),
    "fused_vs_scalar_compiled_bitplane": ("speedup_vs_scalar", "fused kernels vs scalar compiled VM"),
    "dispatch_ladder_and_auto_selection": ("tally_on.vector_speedup_vs_arrays", "vector kernel vs legacy arrays interpreter"),
}

#: The tool's own machine-readable output (excluded from the input glob).
REPORT_JSON = "BENCH_report.json"


def load_artifacts() -> dict:
    artifacts = {}
    for path in sorted(BENCH_DIR.glob("BENCH_*.json")):
        if path.name == REPORT_JSON:  # our own output, never an input
            continue
        try:
            artifacts[path.name] = json.loads(path.read_text())
        except json.JSONDecodeError as exc:  # pragma: no cover - corrupt file
            print(f"warning: {path.name}: {exc}", file=sys.stderr)
    return artifacts


def _get(row, dotted: str):
    """Numeric value at a dotted path into a nested dict, else ``None``."""
    cur = row
    for part in dotted.split("."):
        if not isinstance(cur, dict) or part not in cur:
            return None
        cur = cur[part]
    if isinstance(cur, bool) or not isinstance(cur, (int, float)):
        return None
    return cur


def headline_entries(artifacts: dict) -> list:
    """One entry per artifact that defines a :data:`HEADLINE` metric."""
    entries = []
    for payload in artifacts.values():
        bench = payload.get("benchmark", "")
        if bench not in HEADLINE:
            continue
        metric, label = HEADLINE[bench]
        speedups = {}
        for case, row in payload.get("results", {}).items():
            value = _get(row, metric) if isinstance(row, dict) else None
            if value is not None:
                speedups[case] = value
        if not speedups:
            continue
        entries.append({
            "benchmark": bench,
            "metric": metric,
            "label": label,
            "smoke": bool(payload.get("smoke")),
            "speedups": speedups,
            "mc_program_reuse": payload.get("mc_program_reuse") or {},
        })
    return entries


def _numeric_leaves(row: dict, prefix: str = ""):
    """Every numeric leaf of a nested result row, dotted-path keyed."""
    for metric, value in row.items():
        if isinstance(value, dict):
            yield from _numeric_leaves(value, f"{prefix}{metric}.")
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        else:
            yield prefix + metric, value


def flatten(artifacts: dict):
    """Yield (file, benchmark, case, metric, value) for every numeric leaf."""
    for fname, payload in artifacts.items():
        bench = payload.get("benchmark", fname)
        sections = dict(payload.get("results", {}))
        for extra in ("mc_program_reuse",):
            if payload.get(extra):
                sections[extra] = payload[extra]
        for case, row in sections.items():
            if not isinstance(row, dict):
                continue
            for metric, value in _numeric_leaves(row):
                yield fname, bench, case, metric, value


def fmt(value) -> str:
    if isinstance(value, int):
        return str(value)
    if abs(value) >= 100:
        return f"{value:.1f}"
    if abs(value) >= 0.01:
        return f"{value:.4g}"
    return f"{value:.3e}"


def trajectory_lines(artifacts: dict) -> list:
    lines = ["## Performance trajectory", ""]
    entries = headline_entries(artifacts)
    for entry in entries:
        speedups = entry["speedups"]
        best_case = max(speedups, key=speedups.get)
        cases = ", ".join(f"{c}: {fmt(v)}x" for c, v in sorted(speedups.items()))
        smoke = " **[smoke run — reduced sizes, not the headline numbers]**" \
            if entry["smoke"] else ""
        lines.append(f"- **{entry['label']}** — {cases} (best: {best_case}){smoke}")
        reuse = entry["mc_program_reuse"]
        if reuse.get("end_to_end_speedup"):
            lines.append(
                f"  - pipeline `mc_expected_counts` program reuse: "
                f"{fmt(reuse['end_to_end_speedup'])}x end-to-end "
                f"(n={reuse.get('n')}, {reuse.get('mc_repeats')} reps x "
                f"{reuse.get('mc_batch')} lanes)"
            )
    if not entries:
        lines.append("- (no benchmark artifacts found — run the `bench_*.py` suites)")
    return lines


def dispatch_lines(artifacts: dict) -> list:
    """Per-rung ladder trajectory + auto-dispatch and parallel efficiency
    from ``BENCH_dispatch.json`` (absent until its bench has run)."""
    payload = next(
        (p for p in artifacts.values()
         if p.get("benchmark") == "dispatch_ladder_and_auto_selection"),
        None,
    )
    if payload is None:
        return []
    lines = ["## Dispatch ladder (per-rung trajectory)", ""]
    smoke = " **[smoke run — reduced sizes]**" if payload.get("smoke") else ""
    lines.append(
        f"Cores: {payload.get('cores', '?')} — auto-pick bar: "
        f"{payload.get('auto_factor_bar', '?')}x of measured best.{smoke}"
    )
    lines += [
        "",
        "| case | interp -> scalar | scalar -> codegen | codegen -> arrays "
        "| arrays -> vector | auto picked (factor) | sharded speedup "
        "| parallel efficiency |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for case, point in payload.get("results", {}).items():
        on = point.get("tally_on") or {}
        secs = on.get("seconds") or {}
        mc = point.get("mc_workload") or {}

        def rung(a, b):
            if not (secs.get(a) and secs.get(b)):
                return "-"
            return f"{secs[a] / secs[b]:.2f}x"

        lines.append(
            f"| {case} | {rung('interpretive', 'scalar')} "
            f"| {rung('scalar', 'codegen')} | {rung('codegen', 'arrays')} "
            f"| {rung('arrays', 'vector')} "
            f"| {on.get('auto_choice', '-')} ({fmt(on.get('auto_factor', 0))}x) "
            f"| {fmt(mc.get('sharded_speedup', 0))}x "
            f"| {fmt(mc.get('parallel_efficiency', 0))} |"
        )
    return lines


def table_lines(artifacts: dict) -> list:
    lines = [
        "## All recorded metrics",
        "",
        "| artifact | case | metric | value |",
        "|---|---|---|---|",
    ]
    for fname, _bench, case, metric, value in flatten(artifacts):
        lines.append(f"| {fname} | {case} | {metric} | {fmt(value)} |")
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=None,
                        help="write the markdown report here instead of stdout")
    args = parser.parse_args(argv)

    artifacts = load_artifacts()
    lines = ["# Benchmark trajectory report", ""]
    lines += trajectory_lines(artifacts)
    dispatch = dispatch_lines(artifacts)
    if dispatch:
        lines.append("")
        lines += dispatch
    lines.append("")
    lines += table_lines(artifacts)
    report = "\n".join(lines) + "\n"

    payload = {
        "schema": 1,
        "artifacts": sorted(artifacts),
        "headline": headline_entries(artifacts),
        "metrics": [
            {"artifact": f, "benchmark": b, "case": c, "metric": m, "value": v}
            for f, b, c, m, v in flatten(artifacts)
        ],
    }
    report_path = BENCH_DIR / REPORT_JSON
    report_path.write_text(json.dumps(payload, indent=2) + "\n")

    if args.out:
        args.out.write_text(report)
        print(f"wrote {args.out} and {report_path.name} "
              f"({len(artifacts)} artifacts)")
    else:
        print(report, end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
