#!/usr/bin/env python3
"""Differential fuzzer entry point (thin wrapper over ``repro.verify``).

Run:  python tools/fuzz.py --budget 30 --out fuzz-artifacts
      python tools/fuzz.py --iterations 12 --seed 5

Equivalent to ``python -m repro.verify``; see ``docs/verification.md`` for
the generator knobs, the oracle matrix and the shrinker workflow.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.verify.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
