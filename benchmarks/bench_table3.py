"""Table 3 — controlled addition (thm 2.12, prop 2.11, thm 2.14) plus the
generic recipes (thm 2.9 vs cor 2.10) as an ablation."""

import pytest

from repro.arithmetic import build_controlled_adder
from repro.resources import render_rows, table3

from conftest import print_once


def test_report_table3(benchmark, capsys):
    text = [render_rows(table3(n), f"Table 3 — controlled addition (n={n})") for n in (16, 64)]
    print_once(benchmark, capsys, "\n\n".join(text))


def test_report_generic_vs_native(benchmark, capsys):
    """Ablation: thm 2.9 (Toffoli unload) vs cor 2.10 (measurement unload)
    vs the native constructions."""
    n = 32
    lines = [f"Controlled-adder ablation (n={n}, expected Toffoli):"]
    for family in ("vbe", "cdkpm", "gidney"):
        row = {
            method: build_controlled_adder(n, family, method).counts("expected").toffoli
            for method in ("native", "load_toffoli", "load_and")
        }
        lines.append(
            f"  {family:7s} native={row['native']}  "
            f"thm2.9={row['load_toffoli']}  cor2.10={row['load_and']}"
        )
    print_once(benchmark, capsys, "\n".join(lines))


@pytest.mark.parametrize("family", ["cdkpm", "gidney", "draper"])
def test_build_controlled_adder(benchmark, family):
    n = 64 if family != "draper" else 16
    benchmark(lambda: build_controlled_adder(n, family).counts("expected").toffoli)
