"""Section-1.1 headline claims: MBU savings across architectures and n,
plus Monte-Carlo validation that the *empirical* correction frequency and
gate tallies match the analytical expectations."""

import statistics

import pytest

from repro.modular import build_modadd, build_modadd_const
from repro.resources import mbu_savings
from repro.sim import ClassicalSimulator, RandomOutcomes

from conftest import print_once


def test_report_savings_sweep(benchmark, capsys):
    lines = ["MBU expected-Toffoli savings (paper: 10-15% VBE-style, ~25% QFT-style,",
             "16.7% constant adders in the Takahashi architecture):",
             "  n     vbe5   vbe4   cdkpm  gidney hybrid draper takahashi"]
    for n in (8, 16, 32, 64, 128):
        s = mbu_savings(n)
        lines.append(
            f"  {n:4d}  " + " ".join(
                f"{100 * s[k]:5.1f}%" for k in
                ("vbe5", "vbe4", "cdkpm", "gidney", "hybrid", "draper", "takahashi")
            )
        )
    print_once(benchmark, capsys, "\n".join(lines))


def test_report_monte_carlo(benchmark, capsys):
    """Run the MBU CDKPM modular adder many times with random measurement
    outcomes; the mean sampled Toffoli count must approach the analytical
    expectation 7n + 1 (thm 4.3)."""
    n, p = 6, 61
    built = build_modadd(n, p, "cdkpm", mbu=True)
    expected = built.counts("expected").toffoli
    worst = built.counts("worst").toffoli
    best = built.counts("best").toffoli
    tallies = []
    corrections = 0
    trials = 400
    for seed in range(trials):
        sim = ClassicalSimulator(built.circuit, outcomes=RandomOutcomes(seed))
        sim.set_register(built.circuit.registers["x"], 17 % p)
        sim.set_register(built.circuit.registers["y"], (seed * 7) % p)
        sim.run()
        tallies.append(int(sim.tally.toffoli))
        if sim.tally.toffoli == worst:
            corrections += 1
    mean = statistics.mean(tallies)
    lines = [
        "Monte-Carlo MBU validation (CDKPM modular adder, n=6, 400 runs):",
        f"  analytical: best={best} expected={expected} worst={worst}",
        f"  sampled mean Toffoli = {mean:.2f} (expected {float(expected):.2f})",
        f"  correction branch frequency = {corrections / trials:.3f} (expected 0.5)",
    ]
    assert abs(mean - float(expected)) < 1.5
    assert abs(corrections / trials - 0.5) < 0.08
    print_once(benchmark, capsys, "\n".join(lines))


@pytest.mark.parametrize("n", [16, 64, 256])
def test_savings_scaling(benchmark, n):
    """Time the full savings sweep at one width (build + count, 12 circuits)."""
    benchmark.pedantic(lambda: mbu_savings(n), rounds=1, iterations=1)


@pytest.mark.parametrize("mbu", [False, True])
def test_takahashi_cost(benchmark, mbu):
    n = 64
    p = (1 << n) - 59
    result = benchmark(
        lambda: build_modadd_const(n, p, p // 3, "cdkpm", "takahashi", mbu=mbu)
        .counts("expected").toffoli
    )
    assert result == (5 * n if mbu else 6 * n)
