"""Table 2 — plain adders (VBE / CDKPM / Gidney / Draper)."""

import pytest

from repro.arithmetic import build_adder
from repro.resources import render_rows, table2

from conftest import print_once


def test_report_table2(benchmark, capsys):
    text = []
    for n in (16, 64):
        text.append(render_rows(table2(n), f"Table 2 — plain adders (n={n})"))
        text.append("")
    print_once(benchmark, capsys, "\n".join(text))


@pytest.mark.parametrize("family", ["vbe", "cdkpm", "gidney", "draper"])
def test_build_adder(benchmark, family):
    n = 64 if family != "draper" else 24
    benchmark(lambda: build_adder(n, family).counts("expected").toffoli)


@pytest.mark.parametrize("family", ["vbe", "cdkpm", "gidney"])
def test_simulate_adder_n32(benchmark, family):
    """Classical simulation throughput of a 32-bit addition."""
    from repro.sim import run_classical

    built = build_adder(32, family)
    x, y = 0x9E3779B9, 0x7F4A7C15

    def run():
        return run_classical(built.circuit, {"x": x, "y": y})["y"]

    result = benchmark(run)
    assert result == x + y
