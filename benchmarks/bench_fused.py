"""Fused-kernel VM vs PR 3's scalar compiled VM, plus pipeline-level reuse.

Two layers of measurement, both written to ``benchmarks/BENCH_fused.json``:

* **Kernel level** — the MBU modular adder through four execution
  strategies (interpretive walk, scalar compiled VM, fused generated
  kernel, fused stacked-plane numpy kernels) at n = 64, 256 and batch =
  1024/4096, tally off and on.  The acceptance bar is fused (codegen)
  >= 2x over the scalar compiled VM at n = 256, batch = 4096;
  ``test_report_fused`` asserts it.  One-off compile/fuse/kernel-
  generation times are reported separately — a sweep pays them once.
* **Pipeline level** — ``mc_expected_counts`` at paper scale: one
  compiled program re-run across every repetition on one reset simulator
  (the new default) against the per-repetition interpretive rebuild
  (PR 2's path).  This is the number that moves end-to-end sweep wall
  time, not just microbenchmarks.

Set ``BENCH_FUSED_SMOKE=1`` to run the reduced CI configuration (small
case only, relaxed floors) — the ``perf-smoke`` CI job does.
"""

import time

import pytest

from _harness import (
    best_of,
    env_flag,
    power_inputs,
    prepared,
    spot_check_modadd,
    write_artifact,
)
from repro.modular import build_modadd
from repro.pipeline.montecarlo import mc_expected_counts
from repro.transform import compile_program, fuse_program

SMOKE = env_flag("BENCH_FUSED_SMOKE")
CASES = [(64, 1024)] if SMOKE else [(64, 1024), (64, 4096), (256, 4096)]
#: Fused-vs-scalar floor asserted by the report test (per case key).
FLOORS = {"n64_B1024": 1.3} if SMOKE else {"n256_B4096": 2.0}
MC_CONFIG = (16, 256, 4) if SMOKE else (64, 2048, 8)   # (n, batch, repeats)

_RESULTS = {}
_PIPELINE = {}


@pytest.mark.parametrize("n,batch", CASES)
def test_fused_throughput(benchmark, n, batch):
    p = (1 << n) - 59
    built = build_modadd(n, p, "cdkpm", mbu=True)
    xs, ys = power_inputs(p, batch)

    t0 = time.perf_counter()
    program = compile_program(built.circuit, tally=False)
    compile_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    fused = fuse_program(program)
    fuse_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    fused.kernel(events=False)
    kernel_seconds = time.perf_counter() - t0
    program_tally = compile_program(built.circuit, tally=True)
    fused_tally = fuse_program(program_tally)
    fused_tally.kernel(events=True)

    def run_fused():
        sim = prepared(built.circuit, batch, xs, ys)
        sim.run_compiled(fused)
        return sim

    sim = benchmark(run_fused)
    spot_check_modadd(sim, xs, ys, p, batch)

    def best(execute, tally=False, rounds=5):
        return best_of(
            lambda: prepared(built.circuit, batch, xs, ys, tally=tally),
            execute, rounds=rounds,
        )

    interp = best(lambda sim: sim.run())
    scalar = best(lambda sim: sim.run_compiled(program, fused=False))
    codegen = best(lambda sim: sim.run_compiled(fused))
    arrays = best(lambda sim: sim.run_compiled(fused, kernels="arrays"))
    scalar_tally = best(lambda sim: sim.run_compiled(program_tally, fused=False), tally=True)
    codegen_tally = best(lambda sim: sim.run_compiled(fused_tally), tally=True)

    stats = fused.fusion_stats()
    _RESULTS[f"n{n}_B{batch}"] = {
        "n": n,
        "batch": batch,
        "instructions": len(program),
        "fusion_stats": stats,
        "compile_seconds": compile_seconds,
        "fuse_seconds": fuse_seconds,
        "kernel_generation_seconds": kernel_seconds,
        "interpretive_seconds": interp,
        "scalar_compiled_seconds": scalar,
        "fused_codegen_seconds": codegen,
        "fused_arrays_seconds": arrays,
        "speedup_vs_scalar": scalar / codegen,
        "speedup_vs_interpretive": interp / codegen,
        "arrays_vs_scalar": scalar / arrays,
        "scalar_tally_seconds": scalar_tally,
        "fused_tally_seconds": codegen_tally,
        "speedup_tally_vs_scalar": scalar_tally / codegen_tally,
    }


def test_mc_program_reuse(benchmark):
    """Pipeline-level: one compiled program + reset buffers across MC
    repetitions vs the per-repetition interpretive rebuild."""
    n, mc_batch, repeats = MC_CONFIG
    p = (1 << n) - 59
    built = build_modadd(n, p, "cdkpm", mbu=True)
    kwargs = dict(batch=mc_batch, repeats=repeats, seed=11, gates=("ccx", "ccz"))

    # warm (compile + kernel outside the timed comparison; reuse is the point)
    fused = fuse_program(compile_program(built.circuit, tally=True))
    fused.kernel(events=True)

    compiled_est = benchmark(lambda: mc_expected_counts(built, program=fused, **kwargs))
    t0 = time.perf_counter()
    interp_est = mc_expected_counts(built, compiled=False, **kwargs)
    interp_seconds = time.perf_counter() - t0
    assert compiled_est.mean == interp_est.mean  # bit-identical estimates

    fresh = mc_expected_counts(built, **kwargs)  # includes one-off compile
    _PIPELINE.update({
        "n": n,
        "mc_batch": mc_batch,
        "mc_repeats": repeats,
        "interpretive_seconds": interp_seconds,
        "compiled_run_seconds": compiled_est.run_seconds,
        "compile_once_seconds": fresh.compile_seconds,
        "end_to_end_speedup": interp_seconds / (compiled_est.run_seconds or 1e-12),
        "samples": compiled_est.samples,
        "mean": str(compiled_est.mean),
    })


def test_report_fused(benchmark, capsys):
    from conftest import print_once

    if not _RESULTS:  # throughput cases filtered out (-k/-x): keep old JSON
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        return
    payload = {
        "benchmark": "fused_vs_scalar_compiled_bitplane",
        "circuit": "modadd[cdkpm, mbu=True]",
        "smoke": SMOKE,
        "results": _RESULTS,
        "mc_program_reuse": _PIPELINE,
    }
    out_path = write_artifact(__file__, "BENCH_fused.json", payload)

    lines = ["Fused kernels vs scalar compiled VM (BitplaneSimulator):"]
    for key, row in _RESULTS.items():
        lines.append(
            f"  {key:10s} scalar={row['scalar_compiled_seconds']*1e3:8.2f} ms  "
            f"fused={row['fused_codegen_seconds']*1e3:8.2f} ms  "
            f"speedup={row['speedup_vs_scalar']:5.2f}x  "
            f"(tally on: {row['speedup_tally_vs_scalar']:5.2f}x, "
            f"arrays: {row['arrays_vs_scalar']:5.2f}x, "
            f"vs interp: {row['speedup_vs_interpretive']:5.2f}x)"
        )
    if _PIPELINE:
        lines.append(
            f"  mc reuse (n={_PIPELINE['n']}, {_PIPELINE['mc_repeats']} reps x "
            f"{_PIPELINE['mc_batch']} lanes): interpretive="
            f"{_PIPELINE['interpretive_seconds']*1e3:.1f} ms  compiled(reused)="
            f"{_PIPELINE['compiled_run_seconds']*1e3:.1f} ms  "
            f"-> {_PIPELINE['end_to_end_speedup']:.1f}x"
        )
    lines.append(f"  -> {out_path.name}")
    print_once(benchmark, capsys, "\n".join(lines))

    for key, floor in FLOORS.items():
        if key in _RESULTS:  # absent under -k filtering
            assert _RESULTS[key]["speedup_vs_scalar"] >= floor, (
                f"{key}: fused/scalar speedup "
                f"{_RESULTS[key]['speedup_vs_scalar']:.2f}x below floor {floor}x"
            )
    if _PIPELINE:
        assert _PIPELINE["end_to_end_speedup"] >= 2.0
