"""Shared helpers for the benchmark harness.

Every ``bench_table*.py`` regenerates one of the paper's tables (printed
once per session via :func:`print_once`) and times the dominant
build/count path with pytest-benchmark.  Absolute timings are incidental;
the printed tables are the reproduction artifact.
"""


def print_once(benchmark, capsys, text: str) -> None:
    """Print a report so it survives pytest's capture, and register a
    trivial benchmark round so report tests also run under
    ``--benchmark-only``."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(text)
