"""Compiled vs interpretive bit-plane execution throughput.

Measures the wall-clock cost of running the MBU modular adder through
``BitplaneSimulator.run()`` (the interpretive ``ExecutionEngine`` walk)
against ``run_compiled()`` (the ``repro.transform.compile_program`` linear
VM) at n = 64, 256 and batch = 1024, 4096, and writes the machine-readable
``benchmarks/BENCH_transform.json``.  One-off compile time is reported
separately — a sweep compiles once and runs many batches.

The acceptance bar for the compiled path is a >= 2x speedup over the
interpretive walk at n = 64, batch = 4096 (tally off);
``test_report_transform`` asserts it.
"""

import time

import pytest

from _harness import (
    best_of,
    power_inputs,
    prepared,
    spot_check_modadd,
    write_artifact,
)
from repro.modular import build_modadd
from repro.transform import compile_program

CASES = [(64, 1024), (64, 4096), (256, 4096)]

_RESULTS = {}


@pytest.mark.parametrize("n,batch", CASES)
def test_transform_throughput(benchmark, n, batch):
    p = (1 << n) - 59
    built = build_modadd(n, p, "cdkpm", mbu=True)
    xs, ys = power_inputs(p, batch)

    t0 = time.perf_counter()
    program = compile_program(built.circuit, tally=False)
    compile_seconds = time.perf_counter() - t0
    program_tally = compile_program(built.circuit, tally=True)

    # fused=False throughout: this benchmark pins the *scalar* compiled VM
    # against the interpretive walk (PR 3's metric); the fused kernels have
    # their own benchmark (bench_fused.py -> BENCH_fused.json).
    def run_compiled():
        sim = prepared(built.circuit, batch, xs, ys)
        sim.run_compiled(program, fused=False)
        return sim

    sim = benchmark(run_compiled)
    spot_check_modadd(sim, xs, ys, p, batch)

    def best(execute, tally=False, rounds=3):
        return best_of(
            lambda: prepared(built.circuit, batch, xs, ys, tally=tally),
            execute, rounds=rounds,
        )

    interp = best(lambda sim: sim.run())
    compiled = best(lambda sim: sim.run_compiled(program, fused=False))
    interp_tally = best(lambda sim: sim.run(), tally=True)
    compiled_tally = best(
        lambda sim: sim.run_compiled(program_tally, fused=False), tally=True
    )

    _RESULTS[f"n{n}_B{batch}"] = {
        "n": n,
        "batch": batch,
        "instructions": len(program),
        "compile_seconds": compile_seconds,
        "interpretive_seconds": interp,
        "compiled_seconds": compiled,
        "speedup": interp / compiled,
        "interpretive_tally_seconds": interp_tally,
        "compiled_tally_seconds": compiled_tally,
        "speedup_tally": interp_tally / compiled_tally,
    }


def test_report_transform(benchmark, capsys):
    from conftest import print_once

    if not _RESULTS:  # throughput cases filtered out (-k/-x): keep old JSON
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        return
    payload = {
        "benchmark": "compiled_vs_interpretive_bitplane",
        "circuit": "modadd[cdkpm, mbu=True]",
        "results": _RESULTS,
    }
    out_path = write_artifact(__file__, "BENCH_transform.json", payload)

    lines = ["Compiled program vs interpretive walk (BitplaneSimulator):"]
    for key, row in _RESULTS.items():
        lines.append(
            f"  {key:10s} interp={row['interpretive_seconds']*1e3:8.2f} ms  "
            f"compiled={row['compiled_seconds']*1e3:8.2f} ms  "
            f"speedup={row['speedup']:5.2f}x  "
            f"(tally on: {row['speedup_tally']:5.2f}x)"
        )
    lines.append(f"  -> {out_path.name}")
    print_once(benchmark, capsys, "\n".join(lines))

    key = "n64_B4096"
    if key in _RESULTS:  # absent under -k filtering
        assert _RESULTS[key]["speedup"] >= 2
