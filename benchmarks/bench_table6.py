"""Table 6 — comparators, plus the two-sided comparator of thm 4.13."""

import pytest

from repro.arithmetic import build_comparator
from repro.mbu import build_in_range
from repro.resources import render_rows, table6

from conftest import print_once


def test_report_table6(benchmark, capsys):
    text = [render_rows(table6(n), f"Table 6 — comparators (n={n})") for n in (16, 64)]
    print_once(benchmark, capsys, "\n\n".join(text))


def test_report_two_sided(benchmark, capsys):
    """Thm 4.13: 2r + r' -> 1.5r + r' expected Toffolis with MBU."""
    lines = ["Two-sided comparator (thm 4.13), expected Toffoli:"]
    for n in (16, 64):
        for family in ("cdkpm", "gidney"):
            plain = build_in_range(n, family).counts("expected").toffoli
            mbu = build_in_range(n, family, mbu=True).counts("expected").toffoli
            saving = 100 * float(1 - mbu / plain)
            lines.append(
                f"  n={n:3d} {family:7s} plain={plain}  mbu={mbu}  saving={saving:.1f}%"
            )
    print_once(benchmark, capsys, "\n".join(lines))


@pytest.mark.parametrize("family", ["cdkpm", "gidney", "vbe", "draper"])
def test_build_comparator(benchmark, family):
    n = 64 if family != "draper" else 24
    benchmark(lambda: build_comparator(n, family).counts("expected").toffoli)


@pytest.mark.parametrize("mbu", [False, True])
def test_build_in_range(benchmark, mbu):
    benchmark(lambda: build_in_range(48, "cdkpm", mbu=mbu).counts("expected").toffoli)
