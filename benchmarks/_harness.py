"""Shared measurement helpers for the ``bench_*`` modules.

Every throughput benchmark in this directory follows the same recipe:
build the MBU modular adder, fill its registers with *full-entropy*
values, time the execution step alone (state preparation is identical
for every strategy and excluded), spot-check the arithmetic, and write
a machine-readable ``BENCH_*.json`` artifact next to the module.  This
module owns those pieces so the recipes stay identical across benches.

Full-entropy inputs matter: CPython's adaptive bigints make all-zero
planes nearly free for the scalar/codegen strategies while the numpy
arrays path always processes full rows — benchmarks on zero registers
flatter the bigint rungs and are not honest comparisons.
"""

import json
import os
import time
from pathlib import Path

from repro.sim import BitplaneSimulator, RandomOutcomes

__all__ = [
    "best_of",
    "env_flag",
    "power_inputs",
    "prepared",
    "spot_check_modadd",
    "write_artifact",
]


def env_flag(name: str) -> bool:
    """True when the named environment toggle is set (CI smoke modes)."""
    return bool(os.environ.get(name))


def power_inputs(p, batch):
    """Deterministic full-entropy register lanes: powers of two coprime
    generators mod ``p``, so every plane row carries real bit traffic."""
    xs = [pow(3, i + 1, p) for i in range(batch)]
    ys = [pow(5, i + 1, p) for i in range(batch)]
    return xs, ys


def prepared(circuit, batch, xs, ys, *, tally=False, lane_counts=None, seed=7):
    """A simulator with ``x``/``y`` loaded — the shared starting state every
    timed execution strategy runs from."""
    sim = BitplaneSimulator(
        circuit, batch=batch, outcomes=RandomOutcomes(seed), tally=tally,
        lane_counts=lane_counts,
    )
    sim.set_register("x", xs)
    sim.set_register("y", ys)
    return sim


def best_of(make_sim, execute, rounds=5):
    """Best-of wall clock of the execution step alone.

    A fresh prepared simulator per round (execution mutates state), the
    minimum over rounds as the noise-robust statistic — this box's timer
    jitter is easily 30% between runs.
    """
    times = []
    for _ in range(rounds):
        sim = make_sim()
        t0 = time.perf_counter()
        execute(sim)
        times.append(time.perf_counter() - t0)
    return min(times)


def spot_check_modadd(sim, xs, ys, p, batch):
    """Sampled correctness check: a benchmark that computes the wrong sum
    measures nothing."""
    out = sim.get_register("y")
    for lane in range(0, batch, max(1, batch // 16)):
        assert out[lane] == (xs[lane] + ys[lane]) % p


def write_artifact(module_file, name, payload) -> Path:
    """Write a ``BENCH_*.json`` artifact next to the benchmark module."""
    out_path = Path(module_file).with_name(name)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return out_path
