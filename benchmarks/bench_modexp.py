"""Application-level benchmark: Shor-style modular exponentiation built on
(MBU) modular adders — the paper's motivating use case."""

import pytest

from repro.extensions import build_modexp, modexp_cost
from repro.sim import RandomOutcomes, run_classical

from conftest import print_once


def test_report_modexp_estimates(benchmark, capsys):
    lines = ["Modular exponentiation expected-Toffoli estimates",
             "(2n-bit exponent, CDKPM constant modular adders):",
             "  n      adders        Tof (plain)      Tof (MBU)     saving"]
    for n in (64, 256, 1024, 2048):
        plain = modexp_cost(2 * n, n, "cdkpm", mbu=False)
        mbu = modexp_cost(2 * n, n, "cdkpm", mbu=True)
        saving = 100 * float(1 - mbu["toffoli"] / plain["toffoli"])
        lines.append(
            f"  {n:5d}  {int(plain['adders']):>10d}  {float(plain['toffoli']):>15.3e}"
            f"  {float(mbu['toffoli']):>13.3e}  {saving:5.1f}%"
        )
    print_once(benchmark, capsys, "\n".join(lines))


@pytest.mark.parametrize("mbu", [False, True])
def test_simulate_modexp(benchmark, mbu):
    """End-to-end: build and classically simulate 3^e mod 13 on 4 bits."""
    n, p, a, n_exp = 4, 13, 3, 3

    def run():
        built = build_modexp(n_exp, n, p, a, "cdkpm", mbu=mbu)
        out = run_classical(built.circuit, {"e": 6}, outcomes=RandomOutcomes(1))
        return out["x"]

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result == pow(a, 6, p)


def test_build_modexp_circuit(benchmark):
    benchmark.pedantic(
        lambda: len(build_modexp(4, 8, 251, 7, "cdkpm", mbu=True).circuit),
        rounds=2, iterations=1,
    )
