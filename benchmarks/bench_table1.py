"""Table 1 — modular addition with/without MBU, all architectures.

Regenerates every row of the paper's headline table at n = 16 and 64 and
times circuit construction + expected-resource counting for each row.
"""

import pytest

from repro.modular import build_modadd, build_modadd_draper, build_modadd_vbe_original
from repro.resources import render_rows, table1

from conftest import print_once

N_REPORT = (16, 64)


def test_report_table1(benchmark, capsys):
    text = []
    for n in N_REPORT:
        text.append(render_rows(table1(n), f"Table 1 — modular addition (n={n}, p=2^n-1)"))
        text.append("")
    print_once(benchmark, capsys, "\n".join(text))


@pytest.mark.parametrize("row,mbu", [
    ("vbe5", False), ("vbe5", True),
    ("vbe4", False), ("vbe4", True),
    ("cdkpm", False), ("cdkpm", True),
    ("gidney", False), ("gidney", True),
    ("hybrid", False), ("hybrid", True),
    ("draper", False), ("draper", True),
])
def test_build_and_count(benchmark, row, mbu):
    n = 32
    p = (1 << n) - 1

    def make():
        if row == "vbe5":
            built = build_modadd_vbe_original(n, p, mbu=mbu)
        elif row == "vbe4":
            built = build_modadd(n, p, "vbe", mbu=mbu)
        elif row == "cdkpm":
            built = build_modadd(n, p, "cdkpm", mbu=mbu)
        elif row == "gidney":
            built = build_modadd(n, p, "gidney", mbu=mbu)
        elif row == "hybrid":
            built = build_modadd(n, p, "gidney", "cdkpm", mbu=mbu)
        else:
            built = build_modadd_draper(n, p, mbu=mbu)
        return built.counts("expected").toffoli

    benchmark(make)
