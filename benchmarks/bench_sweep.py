"""Sweep pipeline — cache effectiveness and end-to-end reproduction timing.

Times one (table, n) work unit cold (fresh cache) vs. warm (every circuit
memoized), and a full small sweep; prints the smoke artifact's cache
statistics as the session report.
"""

import pytest

from repro.pipeline import CircuitCache, SweepConfig, run_sweep, table_rows_with_mc
from repro.pipeline.cli import smoke_config

from conftest import print_once


def test_report_sweep(benchmark, capsys):
    result = run_sweep(smoke_config())
    lines = [
        "Sweep pipeline — smoke configuration "
        f"({len(result.config.tables)} tables, sizes {result.config.sizes})",
        f"  elapsed      {result.elapsed * 1000:.1f} ms",
        f"  cache        {result.cache_stats}",
    ]
    print_once(benchmark, capsys, "\n".join(lines))


def test_table1_unit_cold(benchmark):
    def cold():
        return table_rows_with_mc("table1", 8, mc_batch=256, cache=CircuitCache())

    rows = benchmark(cold)
    assert len(rows) == 7


def test_table1_unit_warm(benchmark):
    cache = CircuitCache()
    table_rows_with_mc("table1", 8, mc_batch=256, cache=cache)  # prime

    rows = benchmark(table_rows_with_mc, "table1", 8, mc_batch=256, cache=cache)
    assert len(rows) == 7
    assert cache.stats.hit_ratio > 0.5


@pytest.mark.parametrize("workers", [0, 2])
def test_sweep_small(benchmark, workers):
    config = SweepConfig(
        tables=("table1", "table6"), sizes=(8,), mc_batch=128,
        workers=workers, include_savings=False,
    )
    result = benchmark.pedantic(run_sweep, args=(config,), rounds=3, iterations=1)
    assert "table1" in result.tables
