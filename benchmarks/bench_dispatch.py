"""The full backend ladder per grid point, plus the auto-dispatch check.

Two measurement layers, both written to ``benchmarks/BENCH_dispatch.json``:

* **Ladder level** — the MBU modular adder through every single-process
  strategy (interpretive walk, scalar compiled VM, fused codegen, legacy
  numpy arrays interpreter, generated numpy vector kernel) over an
  (n × batch × tally) grid with full-entropy register inputs, timing the
  execution step alone.  This is the grid the cost model behind
  ``backend="auto"`` is calibrated on: run with
  ``REPRO_DISPATCH_RECALIBRATE=1`` to refit and rewrite the checked-in
  ``src/repro/sim/dispatch/calibration.json`` (the rewrite is followed by
  a schema round-trip check: the file on disk must reparse to the exact
  nested key structure that was fitted).  Each point also records a
  ``schedule`` block — run-length histograms before/after the
  run-lengthening scheduler and the scheduled vector time — plus the
  per-state ``vector_speedup_vs_arrays`` headline metric.
* **Dispatch level** — the Monte-Carlo repetition workload (zero inputs,
  per-lane counters, random outcomes) through a persistent
  :class:`~repro.sim.dispatch.ShardPool` against the single-process
  codegen run it shards — the comparison ``mc_expected_counts`` 's
  ``execution="auto"`` actually decides, including the measured parallel
  efficiency ``codegen / (sharded * shards)``.

Floors asserted by ``test_report_dispatch``:

* the model's pick is within ``AUTO_FACTOR`` of the best *measured*
  strategy on every grid point (the whole point of auto-selection);
* the vector kernel beats the legacy arrays interpreter on every grid
  point (>= 2x at the large smoke point under ``BENCH_DISPATCH_SMOKE=1``
  — the CI perf-smoke floor);
* with >= 4 cores, sharded execution beats single-process codegen by
  >= 2x on the large tally-on case (skipped on smaller boxes — this
  repo's reference container has one core, where sharding is pure
  overhead and the cost model must simply never pick it).

Set ``BENCH_DISPATCH_SMOKE=1`` for the reduced CI configuration (small
grid, relaxed auto factor) — the ``perf-smoke`` CI job does.
"""

import os
import time
from pathlib import Path

import pytest

from _harness import (
    best_of,
    env_flag,
    power_inputs,
    prepared,
    spot_check_modadd,
    write_artifact,
)
from repro.modular import build_modadd
from repro.sim import RandomOutcomes, ShardPool
from repro.sim.dispatch.cost import CostModel, fit_calibration
from repro.transform import compile_program, fuse_program

SMOKE = env_flag("BENCH_DISPATCH_SMOKE")
RECALIBRATE = env_flag("REPRO_DISPATCH_RECALIBRATE")

CASES = (
    [(16, 1024), (64, 4096)]
    if SMOKE
    else [(n, batch) for n in (16, 64, 256) for batch in (1024, 8192, 65536)]
)
ROUNDS = 2 if SMOKE else 4
#: Measured seconds of the model's pick vs the best measured strategy.
AUTO_FACTOR = 2.0 if SMOKE else 1.2
MC_GATES = ("ccx", "ccz")

_RESULTS = {}
_SAMPLES = []


def _schema(obj, prefix=""):
    """The set of dotted key paths in a nested dict (leaf values ignored)."""
    keys = set()
    if isinstance(obj, dict):
        for k, v in obj.items():
            keys.add(prefix + str(k))
            keys |= _schema(v, prefix + str(k) + ".")
    return keys


def _mc_sim(circuit, batch):
    from repro.sim import BitplaneSimulator

    return BitplaneSimulator(
        circuit, batch=batch, outcomes=RandomOutcomes(7), tally=False,
        lane_counts=MC_GATES,
    )


@pytest.mark.parametrize("n,batch", CASES)
def test_dispatch_grid(benchmark, n, batch):
    p = (1 << n) - 59
    built = build_modadd(n, p, "cdkpm", mbu=True)
    xs, ys = power_inputs(p, batch)

    programs = {}
    for tally in (False, True):
        prog = compile_program(built.circuit, tally=tally)
        fused = fuse_program(prog)
        fused.kernel(events=tally)
        fused.kernel(events=tally, kind="vector")
        programs[tally] = (prog, fused)

    def run_codegen():
        sim = prepared(built.circuit, batch, xs, ys)
        sim.run_compiled(programs[False][1])
        return sim

    sim = benchmark(run_codegen)
    spot_check_modadd(sim, xs, ys, p, batch)

    point = {"n": n, "batch": batch}
    for tally in (False, True):
        prog, fused = programs[tally]
        ops = len(prog)

        def mk():
            return prepared(built.circuit, batch, xs, ys, tally=tally)

        seconds = {
            "interpretive": best_of(mk, lambda s: s.run(), rounds=ROUNDS),
            "scalar": best_of(
                mk, lambda s: s.run_compiled(prog, fused=False), rounds=ROUNDS
            ),
            "codegen": best_of(
                mk, lambda s: s.run_compiled(fused), rounds=ROUNDS
            ),
            "arrays": best_of(
                mk, lambda s: s.run_compiled(fused, kernels="arrays"),
                rounds=ROUNDS,
            ),
            "vector": best_of(
                mk, lambda s: s.run_compiled(fused, kernels="vector"),
                rounds=ROUNDS,
            ),
        }
        state = "tally_on" if tally else "tally_off"
        point[state] = {
            "ops": ops,
            "seconds": dict(seconds),
            "vector_speedup_vs_arrays": seconds["arrays"] / seconds["vector"],
        }
        _SAMPLES.extend(
            {"backend": name, "ops": ops, "batch": batch, "tally": tally,
             "seconds": secs}
            for name, secs in seconds.items()
        )

    # Scheduler level: how much the run-lengthening scheduler widens the
    # vectorizable runs, and what that buys the vector kernel end to end.
    prog0, fused0 = programs[False]
    fused_sched = fuse_program(prog0, schedule=True)
    fused_sched.kernel(events=False, kind="vector")
    sched_seconds = best_of(
        lambda: prepared(built.circuit, batch, xs, ys, tally=False),
        lambda s: s.run_compiled(fused_sched, kernels="vector"),
        rounds=ROUNDS,
    )
    vec_seconds = point["tally_off"]["seconds"]["vector"]
    point["schedule"] = {
        "run_length_histogram": fused0.run_length_histogram(),
        "run_length_histogram_scheduled": fused_sched.run_length_histogram(),
        "vector_seconds": vec_seconds,
        "vector_scheduled_seconds": sched_seconds,
        "scheduled_speedup": vec_seconds / sched_seconds,
    }

    # Dispatch level: the MC repetition workload (what execution="auto"
    # decides) — persistent pool, per-lane counters, zero register inputs.
    cores = os.cpu_count() or 1
    prog_t, fused_t = programs[True]
    shards = max(2, min(cores, batch // 512))
    mc_codegen = best_of(
        lambda: _mc_sim(built.circuit, batch),
        lambda s: s.run_compiled(fused_t),
        rounds=ROUNDS,
    )
    with ShardPool(
        fused_t, batch=batch, shards=shards, tally=False,
        lane_counts=MC_GATES,
    ) as pool:
        pool.run(outcomes=RandomOutcomes(7))  # warm workers + kernels
        times = []
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            pool.run(outcomes=RandomOutcomes(7))
            times.append(time.perf_counter() - t0)
    mc_sharded = min(times)
    efficiency = mc_codegen / (mc_sharded * shards)
    point["mc_workload"] = {
        "gates": list(MC_GATES),
        "shards": shards,
        "cores": cores,
        "codegen_seconds": mc_codegen,
        "sharded_seconds": mc_sharded,
        "sharded_speedup": mc_codegen / mc_sharded,
        "parallel_efficiency": efficiency,
    }
    if cores >= shards:
        # Only cores-backed shards inform the fitted parallel efficiency:
        # a 1-core box times GIL contention, not parallel speedup, and
        # would poison the checked-in table for multi-core hosts (where
        # the capability filter is what keeps 1-core boxes off sharding).
        _SAMPLES.append({
            "backend": "sharded", "ops": len(prog_t), "batch": batch,
            "tally": False, "shards": shards, "seconds": mc_sharded,
            "codegen_seconds": mc_codegen,
        })
    _RESULTS[f"n{n}_B{batch}"] = point


def test_report_dispatch(benchmark, capsys):
    from conftest import print_once

    if not _RESULTS:  # grid cases filtered out (-k/-x): keep old JSON
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        return
    cores = os.cpu_count() or 1
    table = fit_calibration(_SAMPLES)
    model = CostModel(table)
    if RECALIBRATE:
        cal_path = (
            Path(__file__).parents[1]
            / "src" / "repro" / "sim" / "dispatch" / "calibration.json"
        )
        import json

        cal_path.write_text(json.dumps(table, indent=2) + "\n")
        # Schema round-trip: the file just written must reparse to the
        # exact nested key structure that was fitted — a partial write or
        # a fit that dropped a backend would ship a table default_model()
        # cannot serve every strategy from.
        reloaded = json.loads(cal_path.read_text())
        assert _schema(reloaded) == _schema(table), (
            "calibration.json round-trip changed the key structure: "
            f"{sorted(_schema(reloaded) ^ _schema(table))}"
        )
        from repro.sim.strategies import LADDER

        assert set(reloaded["backends"]) >= set(LADDER), (
            "refit calibration is missing ladder backends: "
            f"{sorted(set(LADDER) - set(reloaded['backends']))}"
        )

    # Auto-dispatch quality: on every grid point the freshly fit model's
    # pick must be within AUTO_FACTOR of the best measured strategy.
    auto = {}
    for key, point in _RESULTS.items():
        for state in ("tally_off", "tally_on"):
            seconds = point[state]["seconds"]
            choice = model.choose(
                ops=point[state]["ops"], batch=point["batch"],
                tally=(state == "tally_on"), cores=cores,
                candidates=tuple(seconds),
            )
            best_name = min(seconds, key=seconds.get)
            factor = seconds[choice] / seconds[best_name]
            auto[f"{key}_{state}"] = {
                "choice": choice, "best": best_name, "factor": factor,
            }
            point[state]["auto_choice"] = choice
            point[state]["auto_factor"] = factor

    payload = {
        "benchmark": "dispatch_ladder_and_auto_selection",
        "circuit": "modadd[cdkpm, mbu=True]",
        "smoke": SMOKE,
        "cores": cores,
        "auto_factor_bar": AUTO_FACTOR,
        "results": _RESULTS,
        "calibration": table,
    }
    out_path = write_artifact(__file__, "BENCH_dispatch.json", payload)

    lines = ["Backend ladder + dispatch (seconds, best-of, tally on):"]
    for key, point in _RESULTS.items():
        secs = point["tally_on"]["seconds"]
        mc = point["mc_workload"]
        lines.append(
            f"  {key:11s} "
            + "  ".join(f"{name}={secs[name]*1e3:8.2f}ms" for name in secs)
            + f"  auto->{point['tally_on']['auto_choice']}"
            f" ({point['tally_on']['auto_factor']:.2f}x of best)"
        )
        lines.append(
            f"  {'':11s} mc: codegen={mc['codegen_seconds']*1e3:8.2f}ms  "
            f"sharded[{mc['shards']}]={mc['sharded_seconds']*1e3:8.2f}ms  "
            f"speedup={mc['sharded_speedup']:.2f}x  "
            f"efficiency={mc['parallel_efficiency']:.2f}"
        )
        sched = point["schedule"]
        lines.append(
            f"  {'':11s} vector vs arrays="
            f"{point['tally_on']['vector_speedup_vs_arrays']:.2f}x  "
            f"scheduled vector={sched['vector_scheduled_seconds']*1e3:8.2f}ms"
            f" ({sched['scheduled_speedup']:.2f}x of unscheduled)"
        )
    lines.append(f"  -> {out_path.name}")
    print_once(benchmark, capsys, "\n".join(lines))

    for key, row in auto.items():
        assert row["factor"] <= AUTO_FACTOR, (
            f"{key}: auto picked {row['choice']} at {row['factor']:.2f}x of "
            f"best ({row['best']}), above the {AUTO_FACTOR}x bar"
        )
    # Vector floor: the generated kernel must beat the arrays interpreter
    # it replaces on every grid point, and by >= 2x at the large smoke
    # point (the CI perf-smoke floor — small batches are where the plan
    # interpreter's per-run dispatch overhead hurts most).
    for key, point in _RESULTS.items():
        for state in ("tally_off", "tally_on"):
            speedup = point[state]["vector_speedup_vs_arrays"]
            assert speedup > 1.0, (
                f"{key}/{state}: vector kernel at {speedup:.2f}x of arrays "
                "— the generated kernel must beat the interpreter it replaces"
            )
    if SMOKE and "n64_B4096" in _RESULTS:
        speedup = _RESULTS["n64_B4096"]["tally_on"]["vector_speedup_vs_arrays"]
        assert speedup >= 2.0, (
            f"smoke floor: vector {speedup:.2f}x of arrays at n64_B4096, "
            "below the 2x perf-smoke bar"
        )
    # Parallel speedup floor: only meaningful with real cores to shard
    # across (the 1-core reference container times pure overhead here —
    # there the cost model's job is to never pick sharded, which the
    # auto-factor bar above already enforces).
    key = "n256_B8192"
    if cores >= 4 and not SMOKE and key in _RESULTS:
        speedup = _RESULTS[key]["mc_workload"]["sharded_speedup"]
        assert speedup >= 2.0, (
            f"{key}: sharded speedup {speedup:.2f}x below the 2x floor "
            f"on a {cores}-core host"
        )
