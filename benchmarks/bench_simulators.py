"""Substrate benchmarks: simulator throughput and depth accounting.

Not a paper table, but the substrate's performance envelope determines
which paper experiments are testable; these benches document it.
"""

import pytest

from repro.arithmetic import build_adder
from repro.circuits import depth, toffoli_depth
from repro.modular import build_modadd
from repro.sim import RandomOutcomes, run_classical, run_statevector


@pytest.mark.parametrize("n", [64, 256])
def test_classical_modadd(benchmark, n):
    p = (1 << n) - 59
    built = build_modadd(n, p, "cdkpm", mbu=True)
    x, y = p - 3, p - 7

    def run():
        return run_classical(
            built.circuit, {"x": x, "y": y}, outcomes=RandomOutcomes(3)
        )["y"]

    assert benchmark(run) == (x + y) % p


def test_statevector_modadd_n3(benchmark):
    built = build_modadd(3, 7, "cdkpm", mbu=True)

    def run():
        sim = run_statevector(
            built.circuit, {"x": 5, "y": 4}, outcomes=RandomOutcomes(9)
        )
        return sim.register_values()

    values = benchmark.pedantic(run, rounds=3, iterations=1)
    assert list(values)[0][1] == (5 + 4) % 7


def test_report_depths(benchmark, capsys):
    from conftest import print_once

    lines = ["Depth / Toffoli-depth of the plain adders (n=32):"]
    for family in ("vbe", "cdkpm", "gidney"):
        built = build_adder(32, family)
        lines.append(
            f"  {family:7s} depth={depth(built.circuit):5d} "
            f"toffoli_depth={toffoli_depth(built.circuit):4d}"
        )
    print_once(benchmark, capsys, "\n".join(lines))


@pytest.mark.parametrize("family", ["cdkpm", "gidney"])
def test_depth_computation(benchmark, family):
    built = build_modadd(64, (1 << 64) - 59, family, mbu=True)
    benchmark(lambda: toffoli_depth(built.circuit))
