"""Batch-simulation throughput: BitplaneSimulator vs looped run_classical.

Measures per-input wall-clock cost of the vectorized bit-plane backend
against a loop of single-input classical runs on the MBU modular adder
(n = 64, 256; batch = 64, 4096), and writes the machine-readable
``benchmarks/BENCH_batch.json``.  The looped baseline is timed on a bounded
sample of inputs and reported per input, so the bench stays fast even at
batch = 4096.

The acceptance bar for the batch backend is a >= 10x per-input speedup at
n = 64, batch = 4096; ``test_report_batch`` asserts it.
"""

import time

import pytest

from _harness import power_inputs, prepared, spot_check_modadd, write_artifact
from repro.modular import build_modadd
from repro.sim import RandomOutcomes, run_classical

CASES = [(64, 64), (64, 4096), (256, 64), (256, 4096)]

_LOOP_SAMPLE = 24  # inputs timed for the looped-classical baseline
_RESULTS = {}


@pytest.mark.parametrize("n,batch", CASES)
def test_batch_throughput(benchmark, n, batch):
    p = (1 << n) - 59
    built = build_modadd(n, p, "cdkpm", mbu=True)
    xs, ys = power_inputs(p, batch)

    def run_batch():
        sim = prepared(built.circuit, batch, xs, ys)
        sim.run()
        return sim

    sim = benchmark(run_batch)
    spot_check_modadd(sim, xs, ys, p, batch)

    # wall-clock numbers for BENCH_batch.json (independent of pytest-benchmark
    # so they exist under --benchmark-disable too)
    t0 = time.perf_counter()
    run_batch()
    batch_seconds = time.perf_counter() - t0

    sample = min(batch, _LOOP_SAMPLE)
    t0 = time.perf_counter()
    for i in range(sample):
        run_classical(
            built.circuit,
            {"x": xs[i], "y": ys[i]},
            outcomes=RandomOutcomes(i),
        )
    loop_seconds = time.perf_counter() - t0

    per_input_batch = batch_seconds / batch
    per_input_loop = loop_seconds / sample
    _RESULTS[f"n{n}_B{batch}"] = {
        "n": n,
        "batch": batch,
        "bitplane_seconds": batch_seconds,
        "bitplane_per_input_us": per_input_batch * 1e6,
        "classical_sample_inputs": sample,
        "classical_per_input_us": per_input_loop * 1e6,
        "speedup_per_input": per_input_loop / per_input_batch,
    }


def test_report_batch(benchmark, capsys):
    from conftest import print_once

    if not _RESULTS:  # throughput cases filtered out (-k/-x): keep old JSON
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        return
    payload = {
        "benchmark": "bitplane_vs_looped_classical",
        "circuit": "modadd[cdkpm, mbu=True]",
        "loop_sample": _LOOP_SAMPLE,
        "results": _RESULTS,
    }
    out_path = write_artifact(__file__, "BENCH_batch.json", payload)

    lines = ["Per-input throughput, BitplaneSimulator vs looped run_classical:"]
    for key, row in _RESULTS.items():
        lines.append(
            f"  {key:10s} bitplane={row['bitplane_per_input_us']:9.2f} us/input  "
            f"classical={row['classical_per_input_us']:9.2f} us/input  "
            f"speedup={row['speedup_per_input']:8.1f}x"
        )
    lines.append(f"  -> {out_path.name}")
    print_once(benchmark, capsys, "\n".join(lines))

    key = "n64_B4096"
    if key in _RESULTS:  # absent under -k filtering
        assert _RESULTS[key]["speedup_per_input"] >= 10
