"""Tables 4 & 5 — (controlled) addition by a constant, including the
Hamming-weight dependence of the load cost."""

import pytest

from repro.arithmetic import build_add_const, build_controlled_add_const
from repro.boolarith import hamming_weight
from repro.resources import render_rows, table4, table5

from conftest import print_once


def test_report_table4_and_5(benchmark, capsys):
    n = 32
    text = [
        render_rows(table4(n), f"Table 4 — addition by a constant (n={n}, a=2^n-1)"),
        "",
        render_rows(table5(n), f"Table 5 — controlled addition by a constant (n={n})"),
    ]
    print_once(benchmark, capsys, "\n".join(text))


def test_report_hamming_weight_sweep(benchmark, capsys):
    """The 2|a| X / CNOT load terms of props 2.16 / 2.19."""
    n = 24
    lines = [f"Constant-load cost sweep (n={n}, CDKPM):",
             "  |a|   X gates (plain)   CNOTs over baseline (controlled)"]
    base = build_controlled_add_const(n, 0, "cdkpm").counts()["cx"]
    for a in (0, 1, 0b101, 0xFF, (1 << n) - 1):
        plain = build_add_const(n, a, "cdkpm").counts()["x"]
        ctrl = build_controlled_add_const(n, a, "cdkpm").counts()["cx"] - base
        lines.append(f"  {hamming_weight(a):3d}   {str(plain):>15s}   {str(ctrl):>20s}")
    print_once(benchmark, capsys, "\n".join(lines))


@pytest.mark.parametrize("family", ["cdkpm", "gidney", "draper"])
def test_build_add_const(benchmark, family):
    n = 48
    a = (1 << n) - 1
    benchmark(lambda: build_add_const(n, a, family).counts("expected").toffoli)
