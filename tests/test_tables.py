"""Resource-layer tests: table regeneration, exact-formula fits, savings."""

from fractions import Fraction

import pytest

from repro.boolarith import hamming_weight
from repro.circuits.symbolic import LinearCost
from repro.modular import build_modadd, build_modadd_vbe_original
from repro.resources import (
    EXACT_TABLE1,
    EXACT_TABLE2,
    PAPER_HEADLINES,
    FitError,
    fit_exact,
    fit_linear,
    mbu_savings,
    render_rows,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from repro.arithmetic import build_adder


class TestFitting:
    def test_fit_recovers_linear_formula(self):
        samples = [{"n": n} for n in (4, 8, 12)]
        values = [7 * n + 3 for n in (4, 8, 12)]
        cost = fit_exact(samples, values)
        assert cost == 7 * LinearCost.symbol("n") + 3

    def test_fit_with_two_symbols(self):
        samples = [{"n": n, "wp": w} for n in (4, 8) for w in (2, 5)]
        values = [16 * s["n"] + 2 * s["wp"] + 4 for s in samples]
        cost = fit_exact(samples, values)
        assert cost.coefficient("n") == 16
        assert cost.coefficient("wp") == 2
        assert cost.constant == 4

    def test_fit_exact_rejects_nonlinear(self):
        samples = [{"n": n} for n in (2, 3, 4)]
        with pytest.raises(FitError):
            fit_exact(samples, [n * n for n in (2, 3, 4)])

    def test_fractional_coefficients(self):
        samples = [{"n": n} for n in (4, 8, 12)]
        cost = fit_exact(samples, [Fraction(7 * n, 2) for n in (4, 8, 12)])
        assert cost.coefficient("n") == Fraction(7, 2)


class TestExactFormulas:
    """Measured counts over a sweep fit EXACT_TABLE1's closed forms."""

    @pytest.mark.parametrize("key,make", [
        ("vbe5", lambda n, p, mbu: build_modadd_vbe_original(n, p, mbu=mbu)),
        ("vbe4", lambda n, p, mbu: build_modadd(n, p, "vbe", mbu=mbu)),
        ("cdkpm", lambda n, p, mbu: build_modadd(n, p, "cdkpm", mbu=mbu)),
        ("gidney", lambda n, p, mbu: build_modadd(n, p, "gidney", mbu=mbu)),
        ("hybrid", lambda n, p, mbu: build_modadd(n, p, "gidney", "cdkpm", mbu=mbu)),
    ])
    def test_modadd_toffoli_closed_forms(self, key, make):
        ns = (4, 6, 9, 13)
        samples = [{"n": n} for n in ns]
        for metric, mbu in [("toffoli", False), ("toffoli_mbu", True)]:
            values = [
                make(n, (1 << n) - 1, mbu).counts("expected").toffoli for n in ns
            ]
            fitted = fit_exact(samples, values)
            assert fitted == EXACT_TABLE1[key][metric], (key, metric, str(fitted))
        qubits = [make(n, (1 << n) - 1, False).logical_qubits for n in ns]
        assert fit_exact(samples, qubits) == EXACT_TABLE1[key]["qubits"]

    def test_plain_adder_closed_forms(self):
        ns = (3, 5, 8, 12)
        samples = [{"n": n} for n in ns]
        for family in ("vbe", "cdkpm", "gidney"):
            tof = [build_adder(n, family).counts("expected").toffoli for n in ns]
            assert fit_exact(samples, tof) == EXACT_TABLE2[family]["toffoli"]
            cnot = [build_adder(n, family).counts("expected")["cx"] for n in ns]
            assert fit_exact(samples, cnot) == EXACT_TABLE2[family]["cnot"]

    def test_cnot_cz_formula_cdkpm_modadd(self):
        """The CNOT,CZ column of Table 1's CDKPM row: paper 16n + 2|p| + 4;
        ours fits 16n + 2|p| + c for a small constant c."""
        samples, values = [], []
        for n in (6, 8, 11):
            for p in ((1 << (n - 1)) + 1, (1 << n) - 1, (1 << (n - 1)) + 9):
                built = build_modadd(n, p, "cdkpm")
                samples.append({"n": n, "wp": hamming_weight(p)})
                values.append(built.counts("expected").cnot_cz)
        fitted = fit_exact(samples, values)
        assert fitted.coefficient("n") == 16
        assert fitted.coefficient("wp") == 2


class TestTables:
    def test_table1_has_seven_rows(self):
        rows = table1(8)
        assert len(rows) == 7
        assert rows[0]["row"] == "(5 adder) VBE"
        assert rows[-1]["row"] == "Draper (Expect)"

    def test_table1_toffoli_close_to_paper(self):
        """Measured Toffoli within 2% + 2 gates of the paper formula."""
        for row in table1(32):
            measured, paper = row.get("toffoli"), row.get("toffoli_paper")
            if measured is None or paper is None:
                continue
            assert abs(measured - paper) <= max(2, abs(paper) * Fraction(7, 100)), row["row"]

    def test_draper_rows_match_block_accounting(self):
        rows = {r["row"]: r for r in table1(8)}
        assert rows["Draper"]["qft_units"] == 9
        assert rows["Draper"]["qft_units_mbu"] == 7
        assert rows["Draper (Expect)"]["qft_units"] == 7
        assert rows["Draper (Expect)"]["qft_units_mbu"] == 5

    def test_tables_2_to_6_render(self):
        for gen, title in [(table2, "t2"), (table3, "t3"), (table4, "t4"),
                           (table5, "t5"), (table6, "t6")]:
            rows = gen(12)
            text = render_rows(rows, title)
            assert title in text
            assert "paper" in text

    def test_table6_exact_match(self):
        rows = {r["row"]: r for r in table6(10)}
        assert rows["CDKPM"]["toffoli"] == rows["CDKPM"]["toffoli_paper"] == 20
        assert rows["GIDNEY"]["toffoli"] == rows["GIDNEY"]["toffoli_paper"] == 10
        assert rows["GIDNEY"]["cnot"] == rows["GIDNEY"]["cnot_paper"] == 61


class TestHeadlineSavings:
    def test_savings_match_section_1_1(self):
        savings = mbu_savings(32)
        lo, hi = PAPER_HEADLINES["cdkpm_saving"]
        assert lo <= savings["cdkpm"] <= hi
        assert lo <= savings["gidney"] <= hi
        lo, hi = PAPER_HEADLINES["vbe5_saving"]
        assert lo <= savings["vbe5"] <= hi
        lo, hi = PAPER_HEADLINES["draper_saving"]
        assert lo <= savings["draper"] <= hi
        lo, hi = PAPER_HEADLINES["takahashi_saving"]
        assert lo <= savings["takahashi"] <= hi

    def test_savings_grow_toward_asymptote(self):
        """Constant terms wash out: CDKPM saving tends to 1/8 = 12.5%."""
        s8 = mbu_savings(8)["cdkpm"]
        s64 = mbu_savings(64)["cdkpm"]
        assert abs(s64 - 0.125) < abs(s8 - 0.125) + 1e-12
        assert abs(s64 - 0.125) < 0.002
