"""The shrinker — and the planted-bug mutation test of the whole harness."""

import pytest

from repro.circuits import Circuit
from repro.circuits.ops import Conditional, Gate, Measurement, iter_flat
from repro.transform.base import PASSES
from repro.transform.passes import LowerToffoliPass
from repro.verify.generate import GeneratorConfig, random_case
from repro.verify.oracle import check_circuit
from repro.verify.shrink import render_regression_test, shrink_circuit


def _count(circuit):
    return sum(1 for _ in iter_flat(circuit.ops))


class TestShrinker:
    def test_shrinks_to_single_interesting_op(self):
        circ = Circuit("t")
        q = circ.add_register("q", 4)
        for i in range(12):
            circ.cx(q[i % 3], q[3])
        circ.ccx(q[0], q[1], q[2])  # the needle
        for i in range(12):
            circ.x(q[i % 4])

        def has_ccx(candidate):
            return any(
                isinstance(op, Gate) and op.name == "ccx"
                for op in iter_flat(candidate.ops)
            )

        result = shrink_circuit(circ, has_ccx)
        assert result.final_ops == 1
        assert result.circuit.ops[0].name == "ccx"
        assert result.initial_ops == 25
        assert result.reduction > 0.9

    def test_predicate_must_hold_on_input(self):
        circ = Circuit("t")
        q = circ.add_register("q", 3)
        circ.x(q[0])
        with pytest.raises(ValueError, match="does not hold"):
            shrink_circuit(circ, lambda c: False)

    def test_shrinks_inside_conditional_bodies(self):
        circ = Circuit("t")
        q = circ.add_register("q", 4)
        bit = circ.measure(q[0])
        body = [Gate("x", (q[1],)), Gate("ccx", (q[0], q[1], q[2])),
                Gate("x", (q[3],))]
        circ.cond(bit, body)

        def nested_ccx(candidate):
            return any(
                isinstance(op, Gate) and op.name == "ccx"
                for op in iter_flat(candidate.ops)
            )

        result = shrink_circuit(circ, nested_ccx)
        assert result.final_ops == 1  # hoisted out of the conditional

    def test_raising_predicate_counts_as_not_reproducing(self):
        circ = Circuit("t")
        q = circ.add_register("q", 3)
        circ.ccx(q[0], q[1], q[2])
        circ.x(q[0])

        def picky(candidate):
            if len(candidate.ops) < 2:
                raise RuntimeError("different crash")
            return True

        result = shrink_circuit(circ, picky)
        assert result.final_ops == 2  # never shrank into the crashing region

    def test_evaluation_budget_respected(self):
        circ = Circuit("t")
        q = circ.add_register("q", 3)
        for _ in range(30):
            circ.x(q[0])
        result = shrink_circuit(circ, lambda c: True, max_evaluations=5)
        assert result.evaluations <= 5


class TestRenderRegressionTest:
    def test_rendered_source_is_valid_and_replays(self, tmp_path):
        """The paste-ready test must compile, rebuild the exact circuit and
        re-run the oracle green on a healthy circuit."""
        case = random_case(4, GeneratorConfig(flavor="mixed", ops=10, batch=8))
        source = render_regression_test(
            case.circuit, name="roundtrip", inputs=case.inputs, seed=case.seed
        )
        namespace: dict = {}
        exec(compile(source, "<reproducer>", "exec"), namespace)
        namespace["test_roundtrip"]()  # asserts report.ok internally

    def test_renders_nested_constructs(self):
        circ = Circuit("t")
        q = circ.add_register("q", 3)
        bit = circ.measure(q[0], basis="x")
        circ.cond(bit, [Gate("x", (q[1],))], value=0)
        circ.mbu(q[2], [Gate("h", (q[2],)), Gate("x", (q[2],))])
        source = render_regression_test(circ, name="nested", inputs={"q": [1] * 4})
        assert "Conditional(" in source and "MBUBlock(" in source
        assert "Measurement(0, 0, 'x')" in source
        namespace: dict = {}
        exec(compile(source, "<reproducer>", "exec"), namespace)
        rebuilt_fails = False
        try:
            namespace["test_nested"]()
        except AssertionError:  # pragma: no cover - healthy circuit
            rebuilt_fails = True
        assert not rebuilt_fails

    def test_compact_inputs_collapse_uniform_lanes(self):
        circ = Circuit("t")
        q = circ.add_register("q", 3)
        circ.x(q[0])
        source = render_regression_test(circ, inputs={"q": [5, 5, 5, 5]})
        assert "inputs={'q': 5}" in source


class _BrokenLowerToffoli(LowerToffoliPass):
    """A known-wrong rewrite: drops the ``cx(anc, target)`` data write from
    every lowered Toffoli, so the target is simply never updated."""

    def _rewrite(self, ops, circ, anc):
        out = []
        for op in super()._rewrite(ops, circ, anc):
            if isinstance(op, Gate) and op.name == "cx" and op.qubits[0] == anc:
                continue
            out.append(op)
        return tuple(out)


class TestMutationSanity:
    """Plant a wrong rewrite in the pass registry; the oracle must catch it
    and the shrinker must reduce the reproducer to <= 10 ops."""

    @pytest.fixture
    def broken_registry(self, monkeypatch):
        monkeypatch.setitem(PASSES, "lower_toffoli", _BrokenLowerToffoli)

    def test_oracle_catches_planted_bug_and_shrinker_minimizes(
        self, broken_registry
    ):
        case = random_case(11, GeneratorConfig(flavor="unitary", ops=20, batch=16))

        def run_oracle(circuit):
            return check_circuit(
                circuit, case.inputs, seed=case.seed, batch=case.batch,
                transforms=("lower_toffoli",),
            )

        report = run_oracle(case.circuit)
        assert not report.ok, "oracle failed to catch the planted bug"
        signature = report.failure_signature()
        assert any(t == "lower_toffoli" for _, t in signature)
        # the coverage matrix must not claim agreement for a failing cell
        assert "mismatch" in {
            report.matrix.get(("interpretive", "lower_toffoli")),
            report.matrix.get(("classical", "lower_toffoli")),
        }

        result = shrink_circuit(
            case.circuit,
            lambda c: bool(run_oracle(c).failure_signature() & signature),
        )
        assert result.final_ops <= 10, (
            f"reproducer not minimal: {result.final_ops} ops"
        )
        # the minimal reproducer must still contain a Toffoli to lower
        assert any(
            isinstance(op, Gate) and op.name == "ccx"
            for op in iter_flat(result.circuit.ops)
        )

    def test_planted_bug_reproducer_renders_and_fails(self, broken_registry):
        """End to end: the rendered regression test fails while the registry
        is broken (it re-runs the oracle) — the artifact a CI fuzz failure
        hands to the developer."""
        case = random_case(11, GeneratorConfig(flavor="unitary", ops=20, batch=16))
        report = check_circuit(
            case.circuit, case.inputs, seed=case.seed,
            transforms=("lower_toffoli",),
        )
        signature = report.failure_signature()
        result = shrink_circuit(
            case.circuit,
            lambda c: bool(
                check_circuit(
                    c, case.inputs, seed=case.seed,
                    transforms=("lower_toffoli",),
                ).failure_signature()
                & signature
            ),
        )
        source = render_regression_test(
            result.circuit, name="planted", inputs=case.inputs, seed=case.seed,
            oracle_kwargs={"transforms": ("lower_toffoli",)},
        )
        namespace: dict = {}
        exec(compile(source, "<reproducer>", "exec"), namespace)
        with pytest.raises(AssertionError):
            namespace["test_planted"]()
