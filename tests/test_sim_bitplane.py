"""Unit tests for the vectorized batch (bit-plane) simulator."""

from fractions import Fraction

import pytest

from repro.arithmetic import build_adder
from repro.circuits import Circuit
from repro.modular import build_modadd
from repro.sim import (
    BitplaneSimulator,
    ConstantOutcomes,
    ForcedOutcomes,
    RandomOutcomes,
    UnsupportedGateError,
    run_bitplane,
    run_classical,
)


class TestLaneStateBasics:
    def test_reversible_gates_all_lanes(self):
        circ = Circuit()
        a = circ.add_register("a", 4)
        circ.x(a[0])
        circ.cx(a[0], a[1])
        circ.ccx(a[0], a[1], a[2])
        circ.swap(a[2], a[3])
        circ.cswap(a[0], a[2], a[3])
        sim = run_bitplane(circ, batch=3)
        assert sim.get_register("a") == [0b0111] * 3

    def test_broadcast_and_per_lane_inputs(self):
        circ = Circuit()
        a = circ.add_register("a", 3)
        b = circ.add_register("b", 3)
        for i in range(3):
            circ.cx(a[i], b[i])
        sim = run_bitplane(circ, {"a": [1, 3, 5, 7], "b": 2}, batch=4)
        assert sim.get_register("b") == [3, 1, 7, 5]
        assert sim.get_register("a") == [1, 3, 5, 7]

    def test_batch_not_a_multiple_of_64(self):
        circ = Circuit()
        a = circ.add_register("a", 2)
        circ.x(a[0])
        for batch in (1, 5, 64, 100):
            sim = run_bitplane(circ, batch=batch)
            assert sim.get_register("a") == [1] * batch

    def test_wide_register_round_trip(self):
        """Registers wider than one word (n > 64) pack/unpack correctly."""
        circ = Circuit()
        a = circ.add_register("a", 70)
        circ.x(a[69])
        values = [(1 << 68) | 5, 0, (1 << 70) - 1]
        sim = BitplaneSimulator(circ, batch=3)
        sim.set_register("a", values)
        sim.run()
        assert sim.get_register("a") == [v ^ (1 << 69) for v in values]

    def test_input_validation(self):
        circ = Circuit()
        circ.add_register("a", 2)
        sim = BitplaneSimulator(circ, batch=3)
        with pytest.raises(ValueError, match="does not fit"):
            sim.set_register("a", 4)
        with pytest.raises(ValueError, match="per-lane values"):
            sim.set_register("a", [1, 2])
        with pytest.raises(ValueError, match="at least 1"):
            BitplaneSimulator(circ, batch=0)

    def test_bare_hadamard_rejected(self):
        circ = Circuit()
        q = circ.add_qubit("q")
        circ.h(q)
        with pytest.raises(UnsupportedGateError):
            run_bitplane(circ, batch=2)

    def test_diagonal_gates_are_value_preserving(self):
        circ = Circuit()
        a = circ.add_register("a", 2)
        circ.x(a[0])
        circ.cz(a[0], a[1])
        circ.t(a[0])
        circ.s(a[1])
        assert run_bitplane(circ, batch=2).get_register("a") == [1, 1]


class TestMeasurementAndBranching:
    def test_z_measurement_is_per_lane_deterministic(self):
        circ = Circuit()
        q = circ.add_qubit("q")
        bit = circ.measure(q)
        sim = BitplaneSimulator(circ, batch=4)
        sim.set_register("q", [0, 1, 1, 0])
        sim.run()
        assert sim.get_bit(bit) == [0, 1, 1, 0]

    def test_conditional_diverges_across_lanes(self):
        """A data-dependent conditional narrows the active-lane mask."""
        circ = Circuit()
        q = circ.add_qubit("q")
        r = circ.add_qubit("r")
        bit = circ.measure(q)
        with circ.capture() as body:
            circ.x(r)
        circ.cond(bit, body)
        sim = BitplaneSimulator(circ, batch=6)
        sim.set_register("q", [1, 0, 1, 0, 0, 1])
        sim.run()
        assert sim.get_register("r") == [1, 0, 1, 0, 0, 1]
        # body executed in 3 of 6 lanes -> fractional tally
        assert sim.tally["x"] == Fraction(3, 6)

    def test_value_zero_conditional(self):
        circ = Circuit()
        q = circ.add_qubit("q")
        r = circ.add_qubit("r")
        bit = circ.measure(q)
        with circ.capture() as body:
            circ.x(r)
        circ.cond(bit, body, value=0)
        sim = BitplaneSimulator(circ, batch=4)
        sim.set_register("q", [1, 0, 1, 0])
        sim.run()
        assert sim.get_register("r") == [0, 1, 0, 1]

    def test_x_measurement_forced_and_random(self):
        circ = Circuit()
        q = circ.add_qubit("q")
        bit = circ.measure(q, basis="x")
        sim = BitplaneSimulator(circ, batch=5, outcomes=ForcedOutcomes([1]))
        sim.run()
        assert sim.get_bit(bit) == [1] * 5  # scripts broadcast across lanes
        assert sim.get_register("q") == [1] * 5  # post-measurement state |1>
        # random outcomes consume one bulk draw, lanes independent
        sim = BitplaneSimulator(circ, batch=512, outcomes=RandomOutcomes(11))
        sim.run()
        ones = sum(sim.get_bit(bit))
        assert 160 < ones < 352  # ~Binomial(512, 1/2), very loose bounds

    def test_gidney_and_uncompute_pattern_all_lanes(self):
        circ = Circuit()
        x = circ.add_qubit("x")
        y = circ.add_qubit("y")
        anc = circ.add_qubit("anc")
        circ.ccx(x, y, anc)
        bit = circ.measure(anc, basis="x")
        with circ.capture() as body:
            circ.cz(x, y)
            circ.x(anc)
        circ.cond(bit, body)
        for outcome in (0, 1):
            sim = BitplaneSimulator(circ, batch=4, outcomes=ConstantOutcomes(outcome))
            sim.set_register("x", [0, 0, 1, 1])
            sim.set_register("y", [0, 1, 0, 1])
            sim.run()
            assert sim.get_register("anc") == [0, 0, 0, 0]
            assert sim.get_register("x") == [0, 0, 1, 1]
            assert sim.get_register("y") == [0, 1, 0, 1]


class TestMBUBlocks:
    def _mbu_circuit(self):
        circ = Circuit()
        a = circ.add_register("a", 2)
        g = circ.add_qubit("g")
        circ.ccx(a[0], a[1], g)
        with circ.capture() as body:
            circ.h(g)
            circ.ccx(a[0], a[1], g)
            circ.h(g)
            circ.x(g)
        circ.mbu(g, body)
        return circ

    def test_both_branches_clean_the_garbage_in_every_lane(self):
        for outcome in (0, 1):
            sim = BitplaneSimulator(
                self._mbu_circuit(), batch=4, outcomes=ConstantOutcomes(outcome)
            )
            sim.set_register("a", [0, 1, 2, 3])
            sim.run()
            assert sim.get_register("g") == [0, 0, 0, 0]
            assert sim.get_register("a") == [0, 1, 2, 3]

    def test_tally_counts_correction_only_when_taken(self):
        sim = BitplaneSimulator(self._mbu_circuit(), batch=4, outcomes=ConstantOutcomes(0))
        sim.set_register("a", 3)
        sim.run()
        assert sim.tally["ccx"] == 1
        sim = BitplaneSimulator(self._mbu_circuit(), batch=4, outcomes=ConstantOutcomes(1))
        sim.set_register("a", 3)
        sim.run()
        assert sim.tally["ccx"] == 2

    def test_monte_carlo_tally_is_average_per_lane(self):
        """With independent random outcomes the tally of the 1/2-probability
        correction body concentrates near the expected cost."""
        sim = BitplaneSimulator(
            self._mbu_circuit(), batch=4096, outcomes=RandomOutcomes(5)
        )
        sim.set_register("a", 3)
        sim.run()
        # ccx: 1 compute + body ccx in ~half the lanes
        assert abs(float(sim.tally["ccx"]) - 1.5) < 0.05

    def test_garbage_misuse_rejected(self):
        circ = Circuit()
        a = circ.add_qubit("a")
        g = circ.add_qubit("g")
        with circ.capture() as body:
            circ.h(g)
            circ.cz(a, g)
            circ.h(g)
            circ.x(g)
        circ.mbu(g, body)
        sim = BitplaneSimulator(circ, batch=2, outcomes=ConstantOutcomes(1))
        with pytest.raises(UnsupportedGateError):
            sim.run()

    def test_outer_garbage_use_in_nested_mbu_body_rejected(self):
        circ = Circuit()
        d = circ.add_qubit("d")
        g1 = circ.add_qubit("g1")
        g2 = circ.add_qubit("g2")
        with circ.capture() as inner:
            circ.h(g2)
            circ.cx(g1, d)  # outer garbage g1 used as a control
            circ.h(g2)
            circ.x(g2)
        with circ.capture() as outer:
            circ.h(g1)
            circ.mbu(g2, inner)
            circ.h(g1)
            circ.x(g1)
        circ.mbu(g1, outer)
        sim = BitplaneSimulator(circ, batch=2, outcomes=ForcedOutcomes([1, 1]))
        with pytest.raises(UnsupportedGateError):
            sim.run()

    def test_lane_views(self):
        sim = BitplaneSimulator(self._mbu_circuit(), batch=3, outcomes=ConstantOutcomes(1))
        sim.set_register("a", [1, 3, 2])
        sim.run()
        assert sim.lane_values(1) == {"a": 3, "g": 0}
        assert sim.lane_bits(1) == [1]
        with pytest.raises(IndexError):
            sim.lane_values(3)


class TestExhaustiveTruthTables:
    """The headline capability: every basis input of a small adder / modular
    adder verified in a single batched run."""

    @pytest.mark.parametrize("family", ["vbe", "cdkpm", "gidney"])
    def test_adder_n3_all_inputs_single_batch(self, family):
        built = build_adder(3, family)
        xs, ys = [], []
        for x in range(8):
            for y in range(16):
                xs.append(x)
                ys.append(y)
        sim = run_bitplane(
            built.circuit, {"x": xs, "y": ys}, batch=len(xs), outcomes=RandomOutcomes(1)
        )
        out = sim.get_register("y")
        assert out == [(x + y) % 16 for x, y in zip(xs, ys)]
        assert sim.get_register("x") == xs
        for name in built.ancilla_names:
            assert sim.get_register(name) == [0] * len(xs)

    @pytest.mark.parametrize("family", ["vbe", "cdkpm", "gidney"])
    def test_modadd_all_inputs_single_batch(self, family):
        n, p = 3, 7
        built = build_modadd(n, p, family, mbu=True)
        xs, ys = [], []
        for x in range(p):
            for y in range(p):
                xs.append(x)
                ys.append(y)
        sim = run_bitplane(
            built.circuit, {"x": xs, "y": ys}, batch=len(xs), outcomes=RandomOutcomes(2)
        )
        assert sim.get_register("y") == [(x + y) % p for x, y in zip(xs, ys)]
        assert sim.get_register("x") == xs
