"""QFT-based modular adders (prop 3.7, prop 3.19, fig 23, thm 4.6)."""

from fractions import Fraction

import pytest

from repro.arithmetic.draper import PCQFT_UNIT_LABELS, QFT_UNIT_LABELS
from repro.modular import build_modadd_const_draper, build_modadd_draper
from repro.sim import ConstantOutcomes, RandomOutcomes, run_statevector


def _run(built, inputs, mbu, seed):
    outcomes = ConstantOutcomes(seed % 2) if mbu else RandomOutcomes(seed)
    sim = run_statevector(built.circuit, inputs, outcomes=outcomes)
    values = sim.register_values(tol=1e-6)
    assert len(values) == 1, values
    names = list(built.circuit.registers)
    return dict(zip(names, next(iter(values))))


class TestBeauregardModAdd:
    @pytest.mark.parametrize("mbu", [False, True])
    @pytest.mark.parametrize("p", [3, 5, 7])
    def test_exhaustive(self, mbu, p):
        n = 3
        for x in range(p):
            for y in range(p):
                built = build_modadd_draper(n, p, mbu=mbu)
                out = _run(built, {"x": x, "y": y}, mbu, seed=x + y)
                assert out["y"] == (x + y) % p
                assert out["x"] == x and out["t"] == 0

    def test_qft_unit_counts_match_thm_4_6(self):
        """W/o MBU: 3 QFT + 3 IQFT + 2 PhiADD + 1 PhiSUB = 9 QFT-units.
        With MBU: 2.5 + 2.5 + 1.5 + 0.5 = 7 expected (thm 4.6)."""
        n, p = 6, 61
        plain = build_modadd_draper(n, p).blocks()
        assert plain["QFT"] == 3 and plain["IQFT"] == 3
        assert plain["PhiADD"] == 2 and plain["PhiSUB"] == 1
        mbu = build_modadd_draper(n, p, mbu=True).blocks("expected")
        assert mbu["QFT"] == Fraction(5, 2)
        assert mbu["IQFT"] == Fraction(5, 2)
        assert mbu["PhiADD"] == Fraction(3, 2)
        assert mbu["PhiSUB"] == Fraction(1, 2)

    def test_qft_unit_totals(self):
        n, p = 5, 19
        for mbu, expected in [(False, 9), (True, 7)]:
            blocks = build_modadd_draper(n, p, mbu=mbu).blocks("expected")
            total = sum(v for k, v in blocks.items() if k in QFT_UNIT_LABELS)
            assert total == expected
            pcqft = sum(v for k, v in blocks.items() if k in PCQFT_UNIT_LABELS)
            assert pcqft == 2  # PhiSUB(p) + the conditional add-back of p

    def test_zero_toffolis_in_plain_variant(self):
        built = build_modadd_draper(4, 11)
        assert built.counts().toffoli == 0


class TestBeauregardConstant:
    @pytest.mark.parametrize("num_controls", [0, 1, 2])
    @pytest.mark.parametrize("mbu", [False, True])
    def test_exhaustive(self, num_controls, mbu):
        n, p = 3, 5
        for a in range(p):
            for x in range(p):
                for cval in range(1 << num_controls):
                    built = build_modadd_const_draper(
                        n, p, a, num_controls=num_controls, mbu=mbu
                    )
                    inputs = {"x": x}
                    if num_controls:
                        inputs["ctrl"] = cval
                    out = _run(built, inputs, mbu, seed=a * p + x)
                    effective = a if cval == (1 << num_controls) - 1 else 0
                    assert out["x"] == (x + effective) % p
                    assert out["t"] == 0

    def test_fig23_doubly_controlled_uses_ccphase(self):
        built = build_modadd_const_draper(4, 11, 6, num_controls=2)
        assert built.counts()["ccphase"] > 0

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            build_modadd_const_draper(3, 9, 2)  # p >= 2**n
        with pytest.raises(ValueError):
            build_modadd_const_draper(3, 5, 6)  # a >= p
        with pytest.raises(ValueError):
            build_modadd_const_draper(3, 5, 2, num_controls=3)
