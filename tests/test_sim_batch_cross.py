"""Cross-backend property tests: bitplane lanes vs looped classical runs vs
statevector, on MBU modular-adder circuits under a shared ForcedOutcomes
script — plus identical executed-gate tallies across all three backends.

Per-lane inputs come from the shared
:func:`repro.verify.generate.random_lane_inputs` helper (domain-bounded to
[0, p) so the hand-built MBU uncomputations stay algebraically valid)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.modular import build_modadd
from repro.sim import (
    BitplaneSimulator,
    ClassicalSimulator,
    ForcedOutcomes,
    run_statevector,
)
from repro.verify.generate import random_lane_inputs

# (n, p) small enough for the statevector limit across all three families.
_CASES = [(2, 3), (3, 5), (3, 7)]
_FAMILIES = ["vbe", "cdkpm", "gidney"]

# Generous script: no circuit here consumes anywhere near this many coins.
_SCRIPT = st.lists(st.integers(min_value=0, max_value=1), min_size=96, max_size=96)


@given(
    case=st.sampled_from(_CASES),
    family=st.sampled_from(_FAMILIES),
    script=_SCRIPT,
    input_seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=30, deadline=None)
def test_bitplane_lanes_match_looped_classical(case, family, script, input_seed):
    """Every bit-plane lane must equal an independent classical run on that
    lane's input with the same forced script (lanes share the script: the
    provider broadcasts one entry per measurement event)."""
    n, p = case
    built = build_modadd(n, p, family, mbu=True)
    inputs = random_lane_inputs(
        random.Random(input_seed), built.circuit, 8,
        exclude=built.ancilla_names, limits={"x": p, "y": p},
    )
    xs, ys = inputs["x"], inputs["y"]

    bp = BitplaneSimulator(built.circuit, batch=8, outcomes=ForcedOutcomes(script))
    bp.set_register("x", xs)
    bp.set_register("y", ys)
    bp.run()
    lanes_y = bp.get_register("y")

    for lane in range(8):
        cl = ClassicalSimulator(built.circuit, outcomes=ForcedOutcomes(script))
        cl.set_register(built.circuit.registers["x"], xs[lane])
        cl.set_register(built.circuit.registers["y"], ys[lane])
        cl.run()
        assert lanes_y[lane] == cl.get_register("y") == (xs[lane] + ys[lane]) % p
        assert bp.lane_bits(lane) == cl.bits
        # lanes shared the script, so both consumed the same number of coins
        assert bp.outcomes.consumed == cl.outcomes.consumed


@given(
    case=st.sampled_from(_CASES),
    family=st.sampled_from(_FAMILIES),
    script=_SCRIPT,
    x=st.integers(min_value=0, max_value=63),
    y=st.integers(min_value=0, max_value=63),
)
@settings(max_examples=12, deadline=None)
def test_three_backends_agree_with_identical_tallies(case, family, script, x, y):
    """classical, statevector and bitplane: same registers, same bits, and
    identical GateCounts tallies under one shared ForcedOutcomes script."""
    n, p = case
    built = build_modadd(n, p, family, mbu=True)
    if built.circuit.num_qubits > 20:
        pytest.skip("too wide for the dense statevector cross-check")
    x, y = x % p, y % p

    cl = ClassicalSimulator(built.circuit, outcomes=ForcedOutcomes(script))
    cl.set_register(built.circuit.registers["x"], x)
    cl.set_register(built.circuit.registers["y"], y)
    cl.run()

    sv = run_statevector(built.circuit, {"x": x, "y": y}, outcomes=ForcedOutcomes(script))

    bp = BitplaneSimulator(built.circuit, batch=4, outcomes=ForcedOutcomes(script))
    bp.set_register("x", x)
    bp.set_register("y", y)
    bp.run()

    expected = (x + y) % p
    assert cl.get_register("y") == expected
    assert bp.get_register("y") == [expected] * 4
    values = sv.register_values(["x", "y"])
    assert list(values) == [(x, expected)]

    assert cl.bits == sv.bits == bp.lane_bits(0)
    assert cl.outcomes.consumed == sv.outcomes.consumed == bp.outcomes.consumed
    # identical per-lane executed-gate tallies across all three backends
    assert cl.tally == sv.tally == bp.tally
