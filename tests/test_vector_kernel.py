"""The generated numpy vector kernel: equivalence, scratch reuse, errors.

``kernels="vector"`` compiles a :class:`FusedProgram` into one
straight-line Python function over the simulator's packed ``(rows,
words)`` uint64 plane matrices — no per-instruction dispatch, in-place
ufuncs into preallocated scratch, depth-0 full-mask elision, swaps as row
renaming.  It must be observationally identical to the bigint codegen VM
and the legacy arrays interpreter on everything the basis-state semantics
admit, reuse its scratch buffers across ``reset()`` (the Monte-Carlo
repetition pattern), and share the single kernels-name validation with
every other entry point.
"""

import random

import pytest

from repro.modular import build_modadd
from repro.noise import NoiseConfig, insert_noise_points
from repro.sim import (
    BitplaneSimulator,
    ConstantOutcomes,
    ForcedOutcomes,
    KERNEL_CHOICES,
    RandomOutcomes,
    run_sharded,
    simulate,
    validate_kernels,
)
from repro.sim.kernels import build_vector_kernel, generate_vector_source
from repro.transform import compile_program, fuse_program
from repro.verify.generate import random_mixed_circuit, seed_sequence

BATCH = 96
FUSED = ("codegen", "arrays", "vector")


def _run_all(circ, outcomes_factory, lane_counts=None, tally=True):
    results = {}
    for key, runner in [
        ("interpretive", lambda s: s.run()),
        ("codegen", lambda s: s.run_compiled()),
        ("arrays", lambda s: s.run_compiled(kernels="arrays")),
        ("vector", lambda s: s.run_compiled(kernels="vector")),
    ]:
        sim = BitplaneSimulator(
            circ, batch=BATCH, outcomes=outcomes_factory(), tally=tally,
            lane_counts=lane_counts,
        )
        reg = circ.registers["d"]
        inputs = [(i * 37 + 11) % (1 << len(reg)) for i in range(BATCH)]
        sim.set_register("d", inputs)
        runner(sim)
        results[key] = sim
    return results


@pytest.mark.parametrize("seed", seed_sequence(10))
def test_vector_matches_interpretive_on_mixed_circuits(seed):
    rng = random.Random(seed)
    circ = random_mixed_circuit(rng)
    sims = _run_all(circ, lambda: RandomOutcomes(seed * 7 + 1))
    ref = sims.pop("interpretive")
    for key, sim in sims.items():
        assert (sim.planes == ref.planes).all(), key
        assert (sim.bit_planes == ref.bit_planes).all(), key
        assert sim.tally == ref.tally, key


@pytest.mark.parametrize("value", [0, 1])
def test_vector_under_constant_outcomes(value):
    rng = random.Random(23)
    circ = random_mixed_circuit(rng)
    sims = _run_all(circ, lambda: ConstantOutcomes(value))
    ref = sims.pop("interpretive")
    for key, sim in sims.items():
        assert (sim.planes == ref.planes).all(), (key, value)
        assert (sim.bit_planes == ref.bit_planes).all(), (key, value)


def test_vector_consumes_same_forced_script():
    rng = random.Random(31)
    circ = random_mixed_circuit(rng)
    probe = BitplaneSimulator(circ, batch=BATCH, outcomes=ConstantOutcomes(0))
    probe.run()
    script = [i % 2 for i in range(int(probe.tally["measure"]) * 4 + 8)]

    consumed, planes = {}, {}
    for key, runner in [
        ("codegen", lambda s: s.run_compiled()),
        ("arrays", lambda s: s.run_compiled(kernels="arrays")),
        ("vector", lambda s: s.run_compiled(kernels="vector")),
    ]:
        outcomes = ForcedOutcomes(list(script))
        sim = BitplaneSimulator(circ, batch=BATCH, outcomes=outcomes)
        runner(sim)
        consumed[key] = outcomes.consumed
        planes[key] = sim.planes
    assert consumed["vector"] == consumed["codegen"] == consumed["arrays"]
    assert (planes["vector"] == planes["codegen"]).all()


@pytest.mark.parametrize("seed", seed_sequence(4))
def test_vector_lane_tallies_match(seed):
    rng = random.Random(200 + seed)
    circ = random_mixed_circuit(rng)
    sims = _run_all(
        circ, lambda: RandomOutcomes(seed), lane_counts=("ccx", "ccz", "x"),
        tally=False,
    )
    ref = sims.pop("interpretive")
    for key, sim in sims.items():
        assert (sim.lane_tally() == ref.lane_tally()).all(), key


@pytest.mark.parametrize("schedule", [False, True])
def test_vector_on_modadd_against_known_sums(schedule):
    p = 29
    built = build_modadd(5, p, "gidney", mbu=True)
    xs = [pow(3, i + 1, p) for i in range(BATCH)]
    ys = [pow(5, i + 1, p) for i in range(BATCH)]
    sim = BitplaneSimulator(built.circuit, batch=BATCH, outcomes=RandomOutcomes(3))
    sim.set_register("x", xs)
    sim.set_register("y", ys)
    sim.run_compiled(kernels="vector", schedule=schedule)
    assert sim.get_register("y") == [(x + y) % p for x, y in zip(xs, ys)]


# --------------------------------------------------------------------------- #
# noise determinism across the kernel x shard matrix


def _noise_snapshot(circuit, inputs, kernels, shards, *, batch=32):
    noise = NoiseConfig(rate=0.2, seed=77)
    result = run_sharded(
        circuit, inputs, batch=batch, shards=shards, executor="thread",
        outcomes=RandomOutcomes(4), noise=noise, kernels=kernels,
    )
    regs = {name: tuple(result.get_register(name)) for name in circuit.registers}
    bits = tuple(tuple(result.get_bit(b)) for b in range(circuit.num_bits))
    return regs, bits


def test_noise_bit_identical_across_kernels_and_shards():
    """A fixed (rate, seed) noise channel draws the same per-lane flips no
    matter which fused kernel executes or how the lanes are sharded — the
    whole point of the counter-based noise stream."""
    circuit = insert_noise_points(build_modadd(4, 13, "cdkpm", mbu=True).circuit)
    inputs = {"x": [i % 13 for i in range(32)], "y": [(i * 5) % 13 for i in range(32)]}

    noise = NoiseConfig(rate=0.2, seed=77)
    sim = BitplaneSimulator(circuit, batch=32, outcomes=RandomOutcomes(4), noise=noise)
    for name, values in inputs.items():
        sim.set_register(name, values)
    sim.run_compiled()
    reference = (
        {name: tuple(sim.get_register(name)) for name in circuit.registers},
        tuple(tuple(sim.get_bit(b)) for b in range(circuit.num_bits)),
    )

    for kernels in FUSED:
        for shards in (1, 2, 3, 7):
            snap = _noise_snapshot(circuit, inputs, kernels, shards)
            assert snap == reference, (kernels, shards)


# --------------------------------------------------------------------------- #
# scratch reuse across reset() — the MC repetition pattern


def test_vector_scratch_survives_reset():
    built = build_modadd(4, 13, "cdkpm", mbu=True)
    sim = BitplaneSimulator(built.circuit, batch=256, outcomes=RandomOutcomes(1))
    sim.run_compiled(kernels="vector")
    first = sim._vector_scratch
    assert first is not None
    sim.reset(RandomOutcomes(2))
    sim.run_compiled(kernels="vector")
    second = sim._vector_scratch
    for a, b in zip(first, second):
        assert a is b  # same preallocated buffers, no churn per rep


def test_arrays_scratch_survives_reset():
    built = build_modadd(4, 13, "cdkpm", mbu=True)
    sim = BitplaneSimulator(built.circuit, batch=256, outcomes=RandomOutcomes(1))
    sim.run_compiled(kernels="arrays")
    first = sim._arrays_scratch
    assert first is not None
    sim.reset(RandomOutcomes(2))
    sim.run_compiled(kernels="arrays")
    second = sim._arrays_scratch
    for a, b in zip(first, second):
        assert a is b


# --------------------------------------------------------------------------- #
# generated source + kernel metadata


def test_vector_source_is_straight_line():
    built = build_modadd(4, 13, "cdkpm", mbu=True)
    fused = fuse_program(compile_program(built.circuit))
    source = generate_vector_source(fused, events=False)
    assert "def _vector_kernel(" in source
    assert "for " not in source  # straight-line: no interpreter loops
    assert "while " not in source


def test_vector_kernel_metadata():
    built = build_modadd(4, 13, "cdkpm", mbu=True)
    fused = fuse_program(compile_program(built.circuit))
    kernel = build_vector_kernel(fused, events=False)
    assert kernel.__scratch_rows__ >= 1
    assert kernel.__max_run__ >= 1
    assert kernel.__used_planes__ and kernel.__written_planes__


# --------------------------------------------------------------------------- #
# one validation, every entry point


def test_kernels_validation_is_shared_and_lists_every_choice():
    expected = ", ".join(repr(k) for k in KERNEL_CHOICES)
    circ = build_modadd(3, 5, "cdkpm", mbu=True).circuit

    with pytest.raises(ValueError) as direct:
        validate_kernels("bogus")
    assert expected in str(direct.value)
    assert "'vector'" in str(direct.value)

    sim = BitplaneSimulator(circ, batch=4, outcomes=RandomOutcomes(0))
    with pytest.raises(ValueError) as via_sim:
        sim.run_compiled(kernels="bogus")

    with pytest.raises(ValueError) as via_api:
        simulate(circ, {"x": 1, "y": 2}, backend="bitplane", batch=4,
                 kernels="bogus")

    assert str(via_sim.value) == str(direct.value) == str(via_api.value)
