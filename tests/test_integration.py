"""Cross-cutting integration tests.

* statevector vs classical simulation of complete MBU modular adders with
  identical forced measurement scripts;
* the generic sub/add comparator (prop 2.25) composed from kit emitters;
* chained modular additions (associativity through the circuit).
"""

import itertools

import pytest

from repro.arithmetic.compare import emit_compare_gt_via_sub_add
from repro.arithmetic.families import KITS
from repro.circuits import Circuit
from repro.modular import build_modadd
from repro.sim import (
    ClassicalSimulator,
    ConstantOutcomes,
    StatevectorSimulator,
    run_classical,
)


class TestCrossSimulatorModAdd:
    @pytest.mark.parametrize("outcome", [0, 1])
    def test_mbu_cdkpm_agrees(self, outcome):
        n, p = 3, 5
        for x, y in itertools.product(range(p), repeat=2):
            built = build_modadd(n, p, "cdkpm", mbu=True)
            classical = ClassicalSimulator(built.circuit, outcomes=ConstantOutcomes(outcome))
            classical.set_register(built.circuit.registers["x"], x)
            classical.set_register(built.circuit.registers["y"], y)
            classical.run()

            sv = StatevectorSimulator(built.circuit, outcomes=ConstantOutcomes(outcome))
            sv.set_basis_state({"x": x, "y": y})
            sv.run()
            values = sv.register_values(tol=1e-6)
            assert len(values) == 1
            key = next(iter(values))
            names = list(built.circuit.registers)
            sv_out = dict(zip(names, key))
            cl_out = {name: classical.get_register(name) for name in names}
            assert sv_out == cl_out
            assert sv_out["y"] == (x + y) % p

    @pytest.mark.parametrize("outcome", [0, 1])
    def test_mbu_gidney_agrees(self, outcome):
        """Gidney circuits also contain inner AND-uncompute measurements;
        with ConstantOutcomes both simulators follow the same branch."""
        n, p = 2, 3
        for x, y in itertools.product(range(p), repeat=2):
            built = build_modadd(n, p, "gidney", mbu=True)
            classical = ClassicalSimulator(built.circuit, outcomes=ConstantOutcomes(outcome))
            classical.set_register(built.circuit.registers["x"], x)
            classical.set_register(built.circuit.registers["y"], y)
            classical.run()

            sv = StatevectorSimulator(built.circuit, outcomes=ConstantOutcomes(outcome))
            sv.set_basis_state({"x": x, "y": y})
            sv.run()
            values = sv.register_values(tol=1e-6)
            names = list(built.circuit.registers)
            sv_out = dict(zip(names, next(iter(values))))
            assert sv_out["y"] == classical.get_register("y") == (x + y) % p
            assert classical.bits == sv.bits


class TestGenericComparator:
    """Prop 2.25: a comparator from any adder + subtractor pair."""

    @pytest.mark.parametrize("family", ["vbe", "cdkpm", "gidney"])
    def test_sub_add_comparator(self, family):
        kit = KITS[family]
        n = 3
        for x, y in itertools.product(range(1 << n), repeat=2):
            circ = Circuit()
            xr = circ.add_register("x", n)
            yr = circ.add_register("y", n + 1)
            tr = circ.add_register("t", 1)
            anc = circ.add_register("anc", kit.add_ancillas(n))
            emit_compare_gt_via_sub_add(
                circ,
                yr.qubits,
                tr[0],
                emit_sub=lambda: kit.emit_sub(circ, xr.qubits, yr.qubits, anc.qubits),
                emit_add=lambda: kit.emit_add(circ, xr.qubits, yr.qubits, anc.qubits),
            )
            out = run_classical(circ, {"x": x, "y": y})
            assert out["t"] == (1 if x > y else 0), (family, x, y)
            assert out["y"] == y and out["x"] == x

    def test_costs_one_adder_plus_one_subtractor(self):
        from repro.circuits import count_gates

        kit = KITS["cdkpm"]
        n = 10
        circ = Circuit()
        xr = circ.add_register("x", n)
        yr = circ.add_register("y", n + 1)
        tr = circ.add_register("t", 1)
        anc = circ.add_register("anc", 1)
        emit_compare_gt_via_sub_add(
            circ,
            yr.qubits,
            tr[0],
            emit_sub=lambda: kit.emit_sub(circ, xr.qubits, yr.qubits, anc.qubits),
            emit_add=lambda: kit.emit_add(circ, xr.qubits, yr.qubits, anc.qubits),
        )
        # two CDKPM adders = 4n Toffoli: double the half-subtractor trick
        assert count_gates(circ).toffoli == 4 * n


class TestChainedModAdds:
    def test_three_additions_accumulate(self):
        """y += x1; y += x2 through two circuits: matches (y+x1+x2) mod p."""
        n, p = 4, 13
        y = 7
        for x1 in (0, 5, 12):
            for x2 in (1, 6, 11):
                built = build_modadd(n, p, "cdkpm", mbu=True)
                out = run_classical(
                    built.circuit, {"x": x1, "y": y}, outcomes=ConstantOutcomes(1)
                )
                built2 = build_modadd(n, p, "cdkpm", mbu=True)
                out2 = run_classical(
                    built2.circuit, {"x": x2, "y": out["y"]},
                    outcomes=ConstantOutcomes(0),
                )
                assert out2["y"] == (y + x1 + x2) % p
