"""The run-lengthening scheduler: legality, determinism, equivalence.

``schedule_program`` may only commute conflict-free gates inside a
schedulable segment — it must never cross a measurement, scope boundary
or noise point, never reorder two gates where one writes a plane the
other touches, and must carry each instruction's tally annotation with
it.  On top of legality, scheduling must be observationally invisible:
every fused kernel strategy produces bit-identical state, tallies, lane
tallies and measurement-outcome consumption with and without it.
"""

import random
from collections import Counter

import pytest

from repro.circuits import Circuit
from repro.modular import build_modadd
from repro.sim import (
    BitplaneSimulator,
    ConstantOutcomes,
    ForcedOutcomes,
    RandomOutcomes,
)
from repro.transform import compile_program, fuse_program, schedule_program
from repro.transform.compile import _RUN_READS, _RUN_WRITES
from repro.verify.generate import random_case, random_mixed_circuit, seed_sequence

KERNELS = (None, "arrays", "vector")  # None = the bigint codegen default


def _touch(instr):
    op = instr[0]
    reads = frozenset(instr[i] for i in _RUN_READS[op])
    writes = frozenset(instr[i] for i in _RUN_WRITES[op])
    return reads | writes, writes


def _conflicts(a, b):
    touch_a, writes_a = _touch(a)
    touch_b, writes_b = _touch(b)
    return bool(writes_a & touch_b) or bool(writes_b & touch_a)


def _segments(program):
    """(start, end) spans of maximal schedulable-gate runs in the stream."""
    instrs = program.instructions
    i, n = 0, len(instrs)
    while i < n:
        if instrs[i][0] not in _RUN_READS:
            i += 1
            continue
        j = i
        while j < n and instrs[j][0] in _RUN_READS:
            j += 1
        yield i, j
        i = j


def _assert_valid_reorder(prog, sched):
    assert len(sched.instructions) == len(prog.instructions)
    # Barriers (measurements, scope markers, noise points) keep their
    # exact stream positions — pre-resolved jump targets stay valid.
    for i, instr in enumerate(prog.instructions):
        if instr[0] not in _RUN_READS:
            assert sched.instructions[i] == instr, i
    for i, j in _segments(prog):
        # Per-segment (instruction, tally) multiset preserved: gates only
        # move within their segment and carry their tally annotation.
        before = Counter(zip(prog.instructions[i:j], prog.tallies[i:j]))
        after = Counter(zip(sched.instructions[i:j], sched.tallies[i:j]))
        assert before == after, (i, j)
        # Conflicting pairs keep their relative order.
        _assert_conflict_order(prog.instructions[i:j], sched.instructions[i:j])


def _assert_conflict_order(original, scheduled):
    """Every conflicting pair must appear in the same relative order.

    Duplicated instructions are handled by matching occurrence indices:
    the k-th occurrence of an instruction in the schedule corresponds to
    the k-th occurrence in the original (conflict-free duplicates may
    swap freely, but identical instructions are interchangeable anyway).
    """
    occurrence = {}
    orig_pos = {}
    for pos, instr in enumerate(original):
        k = occurrence.get(instr, 0)
        occurrence[instr] = k + 1
        orig_pos[(instr, k)] = pos
    occurrence.clear()
    placed = []
    for instr in scheduled:
        k = occurrence.get(instr, 0)
        occurrence[instr] = k + 1
        placed.append((instr, orig_pos[(instr, k)]))
    for a in range(len(placed)):
        for b in range(a + 1, len(placed)):
            if _conflicts(placed[a][0], placed[b][0]):
                assert placed[a][1] < placed[b][1], (placed[a], placed[b])


@pytest.mark.parametrize("seed", seed_sequence(8))
def test_schedule_is_valid_topological_reorder(seed):
    rng = random.Random(seed)
    prog = compile_program(random_mixed_circuit(rng), tally=True)
    _assert_valid_reorder(prog, schedule_program(prog))


def test_schedule_is_valid_on_modadd():
    built = build_modadd(4, 13, "cdkpm", mbu=True)
    prog = compile_program(built.circuit, tally=True)
    sched = schedule_program(prog)
    _assert_valid_reorder(prog, sched)
    assert sched.num_qubits == prog.num_qubits
    assert sched.num_bits == prog.num_bits
    assert sched.has_tally == prog.has_tally


def test_schedule_lengthens_interleaved_runs():
    """The motivating case: two independent gate streams interleaved
    opcode-by-opcode fuse into eight length-1 runs, but schedule to two
    length-4 runs the vector kernel can execute array-at-a-time."""
    circ = Circuit()
    q = circ.add_register("q", 12)
    for i in range(4):
        circ.x(q[i])
        circ.cx(q[4 + 2 * i], q[5 + 2 * i])
    prog = compile_program(circ)
    assert fuse_program(prog).run_length_histogram() == {1: 8}
    assert fuse_program(prog, schedule=True).run_length_histogram() == {4: 2}


def test_schedule_never_shrinks_total_gates():
    built = build_modadd(4, 13, "cdkpm", mbu=True)
    prog = compile_program(built.circuit)
    schedulable = sum(1 for ins in prog.instructions if ins[0] in _RUN_READS)
    for fused in (fuse_program(prog), fuse_program(prog, schedule=True)):
        hist = fused.run_length_histogram()
        assert sum(length * count for length, count in hist.items()) == schedulable


def test_schedule_identity_on_tiny_segments():
    circ = Circuit()
    q = circ.add_register("q", 2)
    circ.x(q[0])
    circ.cx(q[0], q[1])
    circ.measure(q[1])
    prog = compile_program(circ)
    assert schedule_program(prog).instructions == prog.instructions


def _run_pair(circ, inputs, batch, kernels, *, lane_counts=None, tally=True,
              outcomes_factory=None):
    sims = []
    for schedule in (False, True):
        outcomes = outcomes_factory() if outcomes_factory else RandomOutcomes(11)
        sim = BitplaneSimulator(
            circ, batch=batch, outcomes=outcomes, tally=tally,
            lane_counts=lane_counts,
        )
        for name, values in inputs.items():
            sim.set_register(name, values)
        sim.run_compiled(kernels=kernels, schedule=schedule)
        sims.append((sim, outcomes))
    return sims


@pytest.mark.parametrize("kernels", KERNELS)
@pytest.mark.parametrize("seed", seed_sequence(4))
def test_scheduled_matches_unscheduled_on_generated_cases(seed, kernels):
    case = random_case(seed)
    (plain, _), (sched, _) = _run_pair(
        case.circuit, case.inputs, case.batch, kernels,
    )
    assert (sched.planes == plain.planes).all()
    assert (sched.bit_planes == plain.bit_planes).all()
    assert sched.tally == plain.tally
    for name in case.circuit.registers:
        assert sched.get_register(name) == plain.get_register(name)


@pytest.mark.parametrize("kernels", KERNELS)
def test_scheduled_lane_tallies_match(kernels):
    rng = random.Random(42)
    circ = random_mixed_circuit(rng)
    (plain, _), (sched, _) = _run_pair(
        circ, {}, 64, kernels, lane_counts=("ccx", "ccz", "x"), tally=False,
    )
    assert (sched.lane_tally() == plain.lane_tally()).all()
    assert (sched.planes == plain.planes).all()


@pytest.mark.parametrize("kernels", KERNELS)
def test_scheduled_consumes_same_outcome_stream(kernels):
    """Barriers keep their positions, so the measurement-event order — and
    hence scripted-provider consumption — is schedule-invariant."""
    rng = random.Random(17)
    circ = random_mixed_circuit(rng)
    probe = BitplaneSimulator(circ, batch=64, outcomes=ConstantOutcomes(0))
    probe.run()
    script = [i % 2 for i in range(int(probe.tally["measure"]) * 4 + 8)]
    (plain, out_plain), (sched, out_sched) = _run_pair(
        circ, {}, 64, kernels,
        outcomes_factory=lambda: ForcedOutcomes(list(script)),
    )
    assert out_sched.consumed == out_plain.consumed
    assert (sched.planes == plain.planes).all()
    assert (sched.bit_planes == plain.bit_planes).all()
