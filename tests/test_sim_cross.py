"""Cross-validation: classical simulator vs statevector on random circuits.

Random reversible circuits (X/CX/CCX/SWAP + diagonal gates + measure-based
AND-uncomputation patterns) must produce identical register values on basis
inputs under both simulators, with matched measurement outcomes.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit
from repro.sim import (
    ClassicalSimulator,
    ForcedOutcomes,
    StatevectorSimulator,
)

N_QUBITS = 6


def _random_circuit(rng: random.Random, n_ops: int) -> Circuit:
    circ = Circuit()
    a = circ.add_register("a", N_QUBITS)
    for _ in range(n_ops):
        kind = rng.choice(["x", "cx", "ccx", "swap", "cz", "cswap"])
        qubits = rng.sample(range(N_QUBITS), k={"x": 1, "cx": 2, "cz": 2, "swap": 2, "ccx": 3, "cswap": 3}[kind])
        getattr(circ, kind)(*qubits)
    return circ


@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=0, max_value=2**N_QUBITS - 1))
@settings(max_examples=40, deadline=None)
def test_reversible_circuits_agree(seed, input_value):
    rng = random.Random(seed)
    circ = _random_circuit(rng, n_ops=25)
    classical = ClassicalSimulator(circ)
    classical.set_register(circ.registers["a"], input_value)
    classical.run()

    sv = StatevectorSimulator(circ)
    sv.set_basis_state({"a": input_value})
    sv.run()
    values = sv.register_values()
    assert list(values) == [(classical.get_register("a"),)]


@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=2**N_QUBITS - 1),
    st.lists(st.integers(min_value=0, max_value=1), min_size=8, max_size=8),
)
@settings(max_examples=25, deadline=None)
def test_and_uncompute_patterns_agree(seed, input_value, outcomes):
    """Interleave reversible gates with temp-AND compute/uncompute pairs."""
    rng = random.Random(seed)
    circ = Circuit()
    a = circ.add_register("a", N_QUBITS)
    anc = circ.add_register("anc", 1)

    n_meas = 0
    for round_no in range(3):
        for _ in range(5):
            kind = rng.choice(["x", "cx", "ccx"])
            qubits = rng.sample(range(N_QUBITS), k={"x": 1, "cx": 2, "ccx": 3}[kind])
            getattr(circ, kind)(*[a[q] for q in qubits])
        u, v = rng.sample(range(N_QUBITS), k=2)
        circ.ccx(a[u], a[v], anc[0])  # temp AND
        bit = circ.measure(anc[0], basis="x")
        n_meas += 1
        with circ.capture() as body:
            circ.cz(a[u], a[v])
            circ.x(anc[0])
        circ.cond(bit, body)

    script = outcomes[:n_meas]
    classical = ClassicalSimulator(circ, outcomes=ForcedOutcomes(list(script)))
    classical.set_register(circ.registers["a"], input_value)
    classical.run()

    sv = StatevectorSimulator(circ, outcomes=ForcedOutcomes(list(script)))
    sv.set_basis_state({"a": input_value})
    sv.run()
    values = sv.register_values()
    expected = (classical.get_register("a"), classical.get_register("anc"))
    assert list(values) == [expected]
    assert classical.bits == sv.bits


def test_mbu_block_agrees_with_statevector():
    """MBU of a comparator-style garbage bit: classical == statevector."""
    for input_value in range(16):
        for outcome in (0, 1):
            circ = Circuit()
            a = circ.add_register("a", 4)
            g = circ.add_register("g", 1)

            def oracle():
                # g ^= (a0 AND a2) XOR a3 — an arbitrary boolean function
                circ.ccx(a[0], a[2], g[0])
                circ.cx(a[3], g[0])

            oracle()  # compute garbage
            with circ.capture() as body:
                circ.h(g[0])
                oracle()
                circ.h(g[0])
                circ.x(g[0])
            circ.mbu(g[0], body)

            classical = ClassicalSimulator(circ, outcomes=ForcedOutcomes([outcome]))
            classical.set_register(circ.registers["a"], input_value)
            classical.run()

            sv = StatevectorSimulator(circ, outcomes=ForcedOutcomes([outcome]))
            sv.set_basis_state({"a": input_value})
            sv.run()
            values = sv.register_values()
            assert list(values) == [(input_value, 0)]
            assert classical.get_register("a") == input_value
            assert classical.qubits[g[0]] == 0
