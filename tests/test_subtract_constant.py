"""Subtraction (thm 2.22) and constant-operand ops (props 2.16-2.20)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arithmetic import (
    build_add_const,
    build_controlled_add_const,
    build_sub_const,
    build_subtractor,
)
from repro.boolarith import hamming_weight
from tests.arith_helpers import run_draper, run_ripple

RIPPLE = ["vbe", "cdkpm", "gidney"]


class TestSubtraction:
    @pytest.mark.parametrize("family", RIPPLE)
    @pytest.mark.parametrize("method", ["default", "sandwich"])
    def test_exhaustive(self, family, method):
        n = 2
        for x in range(1 << n):
            for y in range(1 << n):
                built = build_subtractor(n, family, method)
                out = run_ripple(built, {"x": x, "y": y}, seed=x * 5 + y)
                assert out["y"] == (y - x) % (1 << (n + 1))

    @pytest.mark.parametrize("family", RIPPLE)
    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_sign_bit_is_comparison(self, family, data):
        """Prop A.3 through the circuit: top bit of y-x is [x > y]."""
        n = data.draw(st.integers(min_value=2, max_value=24))
        x = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        y = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        built = build_subtractor(n, family)
        out = run_ripple(built, {"x": x, "y": y}, seed=3)
        assert (out["y"] >> n) & 1 == (1 if x > y else 0)

    def test_draper(self):
        for x in range(4):
            for y in range(4):
                built = build_subtractor(2, "draper")
                out = run_draper(built, {"x": x, "y": y})
                assert out["y"] == (y - x) % 8

    def test_gidney_default_is_sandwich(self):
        """The Gidney adder is measurement-based and has no adjoint
        (remark 2.23) — the default subtractor must still work."""
        built = build_subtractor(4, "gidney", "default")
        out = run_ripple(built, {"x": 9, "y": 3}, seed=11)
        assert out["y"] == (3 - 9) % 32

    def test_adjoint_of_measurement_circuit_raises(self):
        from repro.circuits import Circuit
        from repro.arithmetic.subtract import emit_sub_via_adjoint
        from repro.arithmetic.gidney import emit_gidney_add

        circ = Circuit()
        x = circ.add_register("x", 2)
        y = circ.add_register("y", 3)
        anc = circ.add_register("anc", 2)
        with pytest.raises(ValueError, match="remark 2.23"):
            emit_sub_via_adjoint(
                circ, lambda: emit_gidney_add(circ, x.qubits, y.qubits, anc.qubits)
            )


class TestConstantOps:
    @pytest.mark.parametrize("family", RIPPLE)
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_add_const(self, family, data):
        n = data.draw(st.integers(min_value=1, max_value=24))
        a = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        x = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        built = build_add_const(n, a, family)
        out = run_ripple(built, {"x": x}, seed=1)
        assert out["x"] == x + a

    @pytest.mark.parametrize("family", RIPPLE)
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_controlled_add_const(self, family, data):
        n = data.draw(st.integers(min_value=1, max_value=24))
        a = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        x = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        ctrl = data.draw(st.integers(min_value=0, max_value=1))
        built = build_controlled_add_const(n, a, family)
        out = run_ripple(built, {"ctrl": ctrl, "x": x}, seed=2)
        assert out["x"] == x + ctrl * a

    @pytest.mark.parametrize("family", RIPPLE)
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_sub_const(self, family, data):
        n = data.draw(st.integers(min_value=1, max_value=24))
        a = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        x = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        built = build_sub_const(n, a, family)
        out = run_ripple(built, {"x": x}, seed=3)
        assert out["x"] == (x - a) % (1 << (n + 1))

    def test_draper_constant_ops(self):
        for a in range(8):
            for x in range(8):
                out = run_draper(build_add_const(3, a, "draper"), {"x": x})
                assert out["x"] == x + a
                for ctrl in (0, 1):
                    out = run_draper(
                        build_controlled_add_const(3, a, "draper"),
                        {"ctrl": ctrl, "x": x},
                    )
                    assert out["x"] == x + ctrl * a

    def test_load_cost_is_hamming_weight(self):
        """Props 2.16/2.19: the constant costs 2|a| X gates (or CNOTs)."""
        n = 6
        for a in (0b101011, 0b000001, 0b111111, 0):
            built = build_add_const(n, a, "cdkpm")
            assert built.counts()["x"] == 2 * hamming_weight(a)
            built = build_controlled_add_const(n, a, "cdkpm")
            base = build_controlled_add_const(n, 0, "cdkpm").counts()["cx"]
            assert built.counts()["cx"] == base + 2 * hamming_weight(a)

    def test_constant_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            build_add_const(3, 8, "cdkpm")
