"""Two-sided comparison (thm 4.13)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mbu import build_in_range
from repro.sim import ConstantOutcomes, RandomOutcomes, run_classical


@pytest.mark.parametrize("family", ["cdkpm", "gidney", "vbe"])
@pytest.mark.parametrize("mbu", [False, True])
def test_exhaustive_small(family, mbu):
    n = 2
    for x in range(4):
        for y in range(4):
            for z in range(4):
                built = build_in_range(n, family, mbu=mbu)
                outcomes = ConstantOutcomes((x + z) % 2) if mbu else RandomOutcomes(x)
                out = run_classical(
                    built.circuit, {"x": x, "y": y, "z": z}, outcomes=outcomes
                )
                assert out["t"] == (1 if y < x < z else 0)
                assert out["h"] == 0 and out["anc"] == 0
                assert (out["x"], out["y"], out["z"]) == (x, y, z)


@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_random_wide(data):
    n = data.draw(st.integers(min_value=3, max_value=24))
    x = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
    y = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
    z = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
    mbu = data.draw(st.booleans())
    built = build_in_range(n, "cdkpm", mbu=mbu)
    outcomes = ConstantOutcomes(n % 2) if mbu else RandomOutcomes(n)
    out = run_classical(built.circuit, {"x": x, "y": y, "z": z}, outcomes=outcomes)
    assert out["t"] == (1 if y < x < z else 0)


def test_cost_reduction_matches_thm_4_13():
    """2r + r' without MBU -> 1.5r + r' expected with MBU."""
    n = 12
    for family, r, r_ctrl in [("cdkpm", 2 * n, 2 * n + 1), ("gidney", n, n + 1)]:
        plain = build_in_range(n, family).counts("expected").toffoli
        mbu = build_in_range(n, family, mbu=True).counts("expected").toffoli
        assert plain == 2 * r + r_ctrl
        assert mbu == plain - r / 2
    # relative saving on the uncomputation: exactly 25% of one comparator
    # (the paper's "nearly 25%" refers to the uncompute share of the cost)
