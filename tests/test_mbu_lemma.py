"""Lemma 4.1 — the MBU primitive — validated on superpositions.

These are the ground-truth tests of the paper's core contribution: the
statevector simulator runs the full measurement + feedback circuit on
*superposed* data registers, forcing both measurement branches, and checks
that the final state equals the input with the garbage register reset —
including all relative phases (that is the whole point of the correction).
"""

import cmath
import math

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.mbu import emit_mbu_uncompute
from repro.modular import build_modadd, build_modadd_draper
from repro.sim import (
    ConstantOutcomes,
    ForcedOutcomes,
    StatevectorSimulator,
)


def _uniform_phases(amplitudes):
    """All amplitudes equal up to one global phase (exact relative phases)."""
    values = list(amplitudes)
    first = values[0]
    return all(cmath.isclose(v, first, abs_tol=1e-9) for v in values)


class TestLemmaOnSuperpositions:
    def _build(self):
        """Garbage g = parity-ish boolean of a 3-qubit register."""
        circ = Circuit()
        a = circ.add_register("a", 3)
        g = circ.add_register("g", 1)
        for q in a:
            circ.h(q)  # uniform superposition over all 8 values

        def oracle():
            circ.ccx(a[0], a[1], g[0])
            circ.cx(a[2], g[0])

        oracle()  # compute the garbage
        emit_mbu_uncompute(circ, g[0], oracle)
        return circ

    @pytest.mark.parametrize("outcome", [0, 1])
    def test_both_branches_restore_state_and_phases(self, outcome):
        circ = self._build()
        sim = StatevectorSimulator(circ, outcomes=ConstantOutcomes(outcome))
        sim.run()
        values = sim.register_values()
        assert set(values) == {(a, 0) for a in range(8)}
        assert _uniform_phases(values.values())
        for amp in values.values():
            assert abs(amp) == pytest.approx(1 / math.sqrt(8))

    def test_outcome_statistics_are_unbiased(self):
        """The X-basis measurement of a garbage qubit holding a balanced
        g(x) yields 1 with probability exactly 1/2."""
        circ = self._build()
        sim = StatevectorSimulator(circ, outcomes=ForcedOutcomes([1]))
        # probability is checked by ForcedOutcomes: forcing 1 must succeed,
        # and the pre-measurement probability must be ~1/2.
        # Instrument by hand:
        from repro.circuits.ops import MBUBlock

        # run up to (not including) the MBU block
        block = next(op for op in circ.ops if isinstance(op, MBUBlock))
        prefix = Circuit()
        prefix.num_qubits = circ.num_qubits
        prefix.num_bits = circ.num_bits
        prefix.registers = circ.registers
        prefix.qubit_labels = circ.qubit_labels
        prefix.ops = circ.ops[: circ.ops.index(block)]
        sim = StatevectorSimulator(prefix)
        sim.run()
        # after H, P(1) = 1/2  <=>  before H the states |0>,|1> are balanced
        assert sim.probability_one(block.qubit) == pytest.approx(0.5)

    def test_identity_oracle_correction(self):
        """The coin is unbiased even when g(x) = 0 everywhere (the state
        |0> measured in the X basis is still a coin flip); the correction
        with an identity oracle must reset the qubit all the same."""
        circ = Circuit()
        a = circ.add_register("a", 2)
        g = circ.add_register("g", 1)
        circ.h(a[0])

        def oracle():
            pass  # g is identically 0; the oracle is the identity

        emit_mbu_uncompute(circ, g[0], oracle)
        sim = StatevectorSimulator(circ, outcomes=ConstantOutcomes(1))
        sim.run()
        assert sim.bits[-1] == 1  # the unlucky branch fired
        values = sim.register_values()
        assert set(values) == {(0, 0), (1, 0)}
        assert _uniform_phases(values.values())


class TestMBUModularAddersOnSuperpositions:
    @pytest.mark.parametrize("outcome", [0, 1])
    def test_cdkpm_modadd_superposed_x(self, outcome):
        """(x + y) mod p over a superposition of x values, correction branch
        forced both ways: amplitudes must stay uniform in phase."""
        n, p, y0 = 2, 3, 2
        built = build_modadd(n, p, "cdkpm", mbu=True)
        circ = built.circuit
        sim = StatevectorSimulator(circ, outcomes=ConstantOutcomes(outcome))
        # superposition over x in {0, 1, 2} with y = y0
        vec = np.zeros(1 << circ.num_qubits, dtype=complex)
        xreg = circ.registers["x"]
        yreg = circ.registers["y"]
        for xv in range(p):
            index = 0
            for i, q in enumerate(xreg.qubits):
                index |= ((xv >> i) & 1) << q
            for i, q in enumerate(yreg.qubits):
                index |= ((y0 >> i) & 1) << q
            vec[index] = 1 / math.sqrt(p)
        sim.set_state(vec)
        sim.run()
        values = sim.register_values()
        assert set(values) == {(xv, (xv + y0) % p, 0, 0) for xv in range(p)}
        assert _uniform_phases(values.values())

    @pytest.mark.parametrize("outcome", [0, 1])
    def test_draper_modadd_superposed_x(self, outcome):
        n, p, y0 = 2, 3, 1
        built = build_modadd_draper(n, p, mbu=True)
        circ = built.circuit
        sim = StatevectorSimulator(circ, outcomes=ConstantOutcomes(outcome))
        vec = np.zeros(1 << circ.num_qubits, dtype=complex)
        xreg, yreg = circ.registers["x"], circ.registers["y"]
        for xv in range(p):
            index = 0
            for i, q in enumerate(xreg.qubits):
                index |= ((xv >> i) & 1) << q
            for i, q in enumerate(yreg.qubits):
                index |= ((y0 >> i) & 1) << q
            vec[index] = 1 / math.sqrt(p)
        sim.set_state(vec)
        sim.run()
        values = sim.register_values(tol=1e-6)
        assert set(values) == {(xv, (xv + y0) % p, 0) for xv in range(p)}
        assert _uniform_phases(values.values())

    def test_expected_toffoli_savings_cdkpm(self):
        """Thm 4.3: 8n -> 7n expected (+1 from the width-padding Toffoli)."""
        n, p = 10, 1021
        plain = build_modadd(n, p, "cdkpm")
        mbu = build_modadd(n, p, "cdkpm", mbu=True)
        assert plain.counts().toffoli == 8 * n + 1
        assert mbu.counts("expected").toffoli == 7 * n + 1
        assert mbu.counts("worst").toffoli == 8 * n + 1
