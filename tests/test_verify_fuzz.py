"""The fuzz loop and its CLI: budgets, coverage, failure artifacts."""

import pytest

from repro.transform.base import PASSES
from repro.verify.cli import main as verify_main
from repro.verify.fuzz import MATRIX_CELLS, run_fuzz
from repro.verify.generate import FLAVORS
from repro.verify.oracle import STRATEGIES


class TestRunFuzz:
    def test_deterministic_iteration_mode(self):
        a = run_fuzz(iterations=4, seed=9)
        b = run_fuzz(iterations=4, seed=9)
        assert a.ok and b.ok
        assert a.iterations == b.iterations == 4
        assert a.matrix == b.matrix
        assert a.checks == b.checks

    def test_full_matrix_coverage_within_one_flavor_rotation(self):
        stats = run_fuzz(iterations=len(FLAVORS), seed=0)
        assert stats.ok
        assert set(stats.covered_cells()) == set(MATRIX_CELLS)
        # header + one row per strategy + footer
        assert len(stats.matrix_lines()) == len(STRATEGIES) + 2

    def test_budget_mode_terminates(self):
        stats = run_fuzz(budget=0.5, seed=1)
        assert stats.ok
        assert stats.iterations >= 1
        assert stats.elapsed < 30

    def test_unknown_flavor_rejected(self):
        with pytest.raises(ValueError, match="flavor"):
            run_fuzz(iterations=1, flavors=("quantum",))

    def test_per_flavor_rotation(self):
        stats = run_fuzz(iterations=2 * len(FLAVORS), seed=3)
        assert set(stats.per_flavor) == set(FLAVORS)
        assert all(count == 2 for count in stats.per_flavor.values())


class TestFailurePath:
    @pytest.fixture
    def broken_registry(self, monkeypatch):
        from test_verify_shrink import _BrokenLowerToffoli

        monkeypatch.setitem(PASSES, "lower_toffoli", _BrokenLowerToffoli)

    def test_fuzz_finds_shrinks_and_writes_reproducer(
        self, broken_registry, tmp_path
    ):
        stats = run_fuzz(
            iterations=8, seed=0, out_dir=str(tmp_path), flavors=("unitary",),
        )
        assert not stats.ok
        failure = stats.failures[0]
        assert failure.flavor == "unitary"
        assert failure.shrunk_ops <= 10
        assert failure.shrunk_ops <= failure.initial_ops
        assert failure.reproducer_path is not None
        source = open(failure.reproducer_path).read()
        assert source == failure.test_source
        compile(source, failure.reproducer_path, "exec")  # valid python
        assert "check_circuit" in source

    def test_stop_on_failure_stops_early(self, broken_registry):
        stats = run_fuzz(iterations=50, seed=0, flavors=("unitary",))
        assert not stats.ok
        assert stats.iterations < 50

    def test_keep_going_collects_more(self, broken_registry):
        stats = run_fuzz(
            iterations=6, seed=0, flavors=("unitary",),
            stop_on_failure=False, shrink=False,
        )
        assert len(stats.failures) >= 2

    def test_noisy_failure_reproducer_carries_noise_kwargs(
        self, broken_registry, tmp_path
    ):
        """A failure found on a noisy-flavor case must shrink under the
        same (rate, seed) and render a reproducer that replays them."""
        stats = run_fuzz(
            iterations=12, seed=0, flavors=("noisy",), out_dir=str(tmp_path),
        )
        assert not stats.ok
        source = stats.failures[0].test_source
        assert "noise_rate=" in source
        assert "noise_seed=" in source
        compile(source, "<reproducer>", "exec")


class TestCLI:
    def test_exit_zero_on_clean_tree(self, capsys):
        assert verify_main(["--iterations", str(len(FLAVORS)), "--quiet"]) == 0
        out = capsys.readouterr().out
        assert f"coverage: {len(MATRIX_CELLS)}/{len(MATRIX_CELLS)}" in out

    def test_require_full_matrix_fails_when_uncovered(self, capsys):
        # one mixed-flavor case cannot cover the invert column
        code = verify_main([
            "--iterations", "1", "--flavors", "mixed",
            "--require-full-matrix", "--quiet",
        ])
        assert code == 1
        assert "uncovered" in capsys.readouterr().out

    def test_cli_failure_exit_code_and_artifact(
        self, tmp_path, capsys, monkeypatch
    ):
        from test_verify_shrink import _BrokenLowerToffoli

        monkeypatch.setitem(PASSES, "lower_toffoli", _BrokenLowerToffoli)
        code = verify_main([
            "--iterations", "8", "--flavors", "unitary",
            "--out", str(tmp_path), "--quiet",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILURE" in out
        assert list(tmp_path.glob("reproducer_*.py"))

    def test_bad_flavor_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            verify_main(["--flavors", "bogus"])
        assert exc.value.code == 2
