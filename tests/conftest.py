"""Shared fixtures: reproducible seeds for every randomized test.

The seeding contract (see ``docs/verification.md``):

* Tests that need one ad-hoc random stream take the ``repro_seed`` /
  ``repro_rng`` fixtures.  The seed is derived deterministically from the
  test's node id, so runs are stable — and overridable with the
  ``REPRO_SEED`` environment variable.
* Tests parametrized over many seeds build their parameter list with
  :func:`repro.verify.generate.seed_sequence`, which collapses to the one
  seed in ``REPRO_SEED`` when it is set.
* On failure, the seed in play is printed in a ``repro seed`` report
  section with a ready-to-paste replay command.

(Hypothesis-based tests manage their own example database and replay
mechanism; they are intentionally outside this contract.)
"""

import os
import random
import zlib

import pytest

from repro.verify.generate import REPRO_SEED_ENV


def _seed_for(nodeid: str) -> int:
    env = os.environ.get(REPRO_SEED_ENV)
    if env is not None:
        return int(env, 0)
    return zlib.crc32(nodeid.encode())


@pytest.fixture
def repro_seed(request) -> int:
    """A deterministic per-test seed, overridable via ``REPRO_SEED``."""
    seed = _seed_for(request.node.nodeid)
    request.node._repro_seed = seed
    return seed


@pytest.fixture
def repro_rng(repro_seed) -> random.Random:
    """A :class:`random.Random` seeded by :func:`repro_seed`."""
    return random.Random(repro_seed)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or not report.failed:
        return
    seed = getattr(item, "_repro_seed", None)
    if seed is None and getattr(item, "callspec", None) is not None:
        for name, value in item.callspec.params.items():
            if "seed" in name and isinstance(value, int):
                seed = value
                break
    if seed is not None:
        report.sections.append((
            "repro seed",
            f"re-run this failure with:\n"
            f"  {REPRO_SEED_ENV}={seed} python -m pytest '{item.nodeid}'",
        ))
