"""Lane-sharded dispatch: exact merge semantics and the cost model.

The dispatch layer's headline property is *shard-count independence*:
because every shard draws full-width outcome masks and keeps only its
lane window (``SlicedOutcomes``), a sharded run is bit-identical to the
single-process compiled run for every shard count, executor kind and
batch size — divisible or not.  These tests pin that property across
registers, classical bits, aggregate tallies, per-lane counters and
outcome-stream consumption, plus the validation surface (S1) and the
calibrated cost model behind ``backend="auto"``.
"""

import json
import os
from concurrent.futures import ThreadPoolExecutor
from fractions import Fraction

import pytest

from repro.modular import build_modadd
from repro.pipeline import derive_seed, mc_expected_counts
from repro.sim import (
    BitplaneSimulator,
    ConstantOutcomes,
    ForcedOutcomes,
    RandomOutcomes,
    ShardPool,
    available_backends,
    program_is_flat,
    run_sharded,
    shard_ranges,
    simulate,
)
from repro.sim.dispatch import MIN_SHARD_LANES, SlicedOutcomes, clone_provider
from repro.sim.dispatch.cost import (
    DEFAULT_CALIBRATION,
    CostModel,
    default_model,
    fit_calibration,
    load_calibration,
)
from repro.transform import apply_transforms, compile_program, fuse_program

LANE_GATES = ("x", "cx", "ccx")


@pytest.fixture(scope="module")
def built():
    return build_modadd(4, 13, "cdkpm", mbu=True)


@pytest.fixture(scope="module")
def program(built):
    return fuse_program(compile_program(built.circuit, tally=True))


def _inputs(batch, p=13):
    return {
        "x": [pow(3, i + 1, p) for i in range(batch)],
        "y": [pow(5, i + 1, p) for i in range(batch)],
    }


def _single_run(built, inputs, batch, outcomes):
    sim = BitplaneSimulator(
        built.circuit, batch=batch, outcomes=outcomes, tally=True,
        lane_counts=LANE_GATES,
    )
    for name, values in inputs.items():
        sim.set_register(name, values)
    sim.run_compiled()
    return sim


class TestShardRanges:
    def test_partition_covers_every_lane_in_order(self):
        for batch, shards in [(8, 1), (8, 2), (37, 3), (37, 7), (64, 5)]:
            ranges = shard_ranges(batch, shards)
            assert len(ranges) == shards
            flat = [i for lo, hi in ranges for i in range(lo, hi)]
            assert flat == list(range(batch))
            widths = [hi - lo for lo, hi in ranges]
            assert max(widths) - min(widths) <= 1  # near-even split

    def test_invalid_shard_counts(self):
        with pytest.raises(ValueError, match="at least 1"):
            shard_ranges(8, 0)
        with pytest.raises(ValueError, match="cannot split"):
            shard_ranges(4, 5)


class TestCloneProvider:
    def test_none_clones_to_engine_default(self):
        clone = clone_provider(None)
        assert isinstance(clone, RandomOutcomes) and clone.seed == 0

    def test_seeded_random_clone_replays_the_stream(self):
        root = RandomOutcomes(7)
        root.sample_lanes(0.5, 64)  # consume: the clone must be fresh
        clone = clone_provider(root)
        assert clone.sample_lanes(0.5, 64) == RandomOutcomes(7).sample_lanes(0.5, 64)

    def test_unseeded_random_is_rejected(self):
        with pytest.raises(ValueError, match="explicit seed"):
            clone_provider(RandomOutcomes(None))

    def test_scripted_and_constant_clone(self):
        forced = clone_provider(ForcedOutcomes([1, 0, 1]))
        assert [forced.sample(0.5) for _ in range(3)] == [1, 0, 1]
        assert clone_provider(ConstantOutcomes(1)).sample(0.5) == 1

    def test_unknown_provider_without_clone_hook(self):
        class Opaque:
            def sample(self, p):
                return 0

        with pytest.raises(ValueError, match="clone"):
            clone_provider(Opaque())

    def test_clone_hook_is_honored(self):
        class Hooked:
            def clone(self):
                return ConstantOutcomes(0)

        assert isinstance(clone_provider(Hooked()), ConstantOutcomes)


class TestSlicedOutcomes:
    def test_slices_are_windows_of_the_full_draw(self):
        total = 64
        full = RandomOutcomes(3).sample_lanes(0.5, total)
        for lo, hi in shard_ranges(total, 3):
            sliced = SlicedOutcomes(RandomOutcomes(3), lo, total)
            mask = sliced.sample_lanes(0.5, hi - lo)
            assert mask == (full >> lo) & ((1 << (hi - lo)) - 1)


class TestShardDeterminism:
    """Bit-identity of the merge for every shard count (satellite S3)."""

    # 37 is deliberately not divisible by 2, 3 or 7.
    BATCH = 37

    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    def test_sharded_equals_single_process(self, built, program, shards):
        inputs = _inputs(self.BATCH)
        single = _single_run(
            built, inputs, self.BATCH, RandomOutcomes(11)
        )
        result = run_sharded(
            program, inputs, batch=self.BATCH, shards=shards,
            executor="thread", outcomes=RandomOutcomes(11),
            lane_counts=LANE_GATES,
        )
        assert result.shards == shard_ranges(self.BATCH, shards)
        for name in built.circuit.registers:
            assert result.get_register(name) == single.get_register(name)
        for b in range(built.circuit.num_bits):
            assert result.get_bit(b) == single.get_bit(b)
        assert result.tally == single.tally
        assert result.lane_tally().tolist() == single.lane_tally().tolist()

    def test_process_pool_matches_thread_pool(self, program):
        inputs = _inputs(16)
        kwargs = dict(
            batch=16, shards=2, outcomes=RandomOutcomes(5),
            lane_counts=LANE_GATES,
        )
        via_threads = run_sharded(program, inputs, executor="thread", **kwargs)
        via_processes = run_sharded(program, inputs, executor="process", **kwargs)
        assert via_processes.registers == via_threads.registers
        assert via_processes.bits == via_threads.bits
        assert via_processes.tally == via_threads.tally
        assert (via_processes.lane_tally().tolist()
                == via_threads.lane_tally().tolist())

    def test_forced_scripts_stay_aligned_across_shards(self, built, program):
        script = [1, 0, 1, 1, 0, 0, 1, 0]
        inputs = _inputs(12)
        single = _single_run(built, inputs, 12, ForcedOutcomes(script))
        result = run_sharded(
            program, inputs, batch=12, shards=3, executor="thread",
            outcomes=ForcedOutcomes(script), lane_counts=LANE_GATES,
        )
        assert result.registers == {
            name: single.get_register(name) for name in built.circuit.registers
        }
        assert result.tally == single.tally
        # consumption counts full *events*: identical to the unsharded stream
        ref = ForcedOutcomes(script)
        _single_run(built, inputs, 12, ref)
        assert result.consumed == ref.consumed

    def test_circuit_input_compiles_on_the_fly(self, built):
        inputs = _inputs(8)
        from_circuit = run_sharded(
            built.circuit, inputs, batch=8, shards=2, executor="thread",
            outcomes=RandomOutcomes(2),
        )
        single = _single_run(built, inputs, 8, RandomOutcomes(2))
        assert from_circuit.registers == {
            name: single.get_register(name) for name in built.circuit.registers
        }

    def test_exact_fraction_tally_merge(self, built, program):
        """Merged tallies are exact Fractions, not float averages."""
        result = run_sharded(
            program, _inputs(37), batch=37, shards=3, executor="thread",
            outcomes=RandomOutcomes(9),
        )
        for weight in result.tally.counts.values():
            assert isinstance(weight, (int, Fraction))


class TestShardPool:
    def test_pool_reuse_matches_fresh_runs(self, built, program):
        inputs = _inputs(24)
        with ShardPool(
            program, batch=24, shards=3, executor="thread",
            lane_counts=LANE_GATES,
        ) as pool:
            first = pool.run(inputs, outcomes=RandomOutcomes(1))
            second = pool.run(inputs, outcomes=RandomOutcomes(2))
            again = pool.run(inputs, outcomes=RandomOutcomes(1))
        assert first.registers == again.registers
        assert first.lane_tally().tolist() == again.lane_tally().tolist()
        # different streams really produce different outcomes
        assert first.bits != second.bits or first.registers != second.registers

    def test_shards_one_runs_inline(self, program):
        pool = ShardPool(program, batch=8, shards=1)
        try:
            assert pool._executor is None
            result = pool.run(_inputs(8), outcomes=RandomOutcomes(0))
            assert result.batch == 8 and result.shards == ((0, 8),)
        finally:
            pool.close()

    def test_caller_supplied_executor_is_not_shut_down(self, program):
        with ThreadPoolExecutor(max_workers=2) as executor:
            with ShardPool(
                program, batch=8, shards=2, executor=executor
            ) as pool:
                pool.run(_inputs(8), outcomes=RandomOutcomes(0))
            # pool.close() must leave the caller's executor usable
            assert executor.submit(lambda: 42).result() == 42

    def test_unknown_register_rejected(self, program):
        with ShardPool(program, batch=8, shards=2, executor="thread") as pool:
            with pytest.raises(ValueError, match="unknown register"):
                pool.run({"zz": [0] * 8})

    def test_wrong_lane_count_rejected(self, program):
        with ShardPool(program, batch=8, shards=2, executor="thread") as pool:
            with pytest.raises(ValueError, match="expected 8 per-lane"):
                pool.run({"x": [1, 2, 3]})

    def test_unknown_executor_rejected(self, program):
        with pytest.raises(ValueError, match="unknown executor"):
            ShardPool(program, batch=8, shards=2, executor="fibers")

    def test_nonflat_program_rejects_stateful_providers(self, built):
        lowered = apply_transforms(built.circuit, ["lower_toffoli"])
        program = compile_program(lowered, tally=True)
        assert not program_is_flat(program)
        with ShardPool(program, batch=8, shards=2, executor="thread") as pool:
            with pytest.raises(ValueError, match="nested inside branch"):
                pool.run(_inputs(8), outcomes=RandomOutcomes(0))
            # stateless constant streams are sound on any program shape
            result = pool.run(_inputs(8), outcomes=ConstantOutcomes(0))
            assert result.batch == 8

    def test_flatness_of_builder_circuits(self, program):
        assert program_is_flat(program)


class TestSimulateWiring:
    """The ``simulate()``/``run_compiled`` validation surface (S1)."""

    def test_backend_names_include_auto(self):
        assert {"classical", "statevector", "bitplane", "auto"} <= set(
            available_backends()
        )

    def test_unknown_backend_lists_choices(self, built):
        with pytest.raises(ValueError, match="available:.*bitplane"):
            simulate(built.circuit, {"x": 1, "y": 2}, backend="quantum")

    def test_unknown_kernels_lists_choices(self, built):
        sim = BitplaneSimulator(built.circuit, batch=8)
        with pytest.raises(ValueError, match="'auto', 'codegen'"):
            sim.run_compiled(kernels="simd")

    def test_sharded_simulate_matches_plain(self, built):
        inputs = _inputs(8)
        plain = simulate(
            built.circuit, inputs, backend="bitplane", batch=8,
            compiled=True, seed=4,
        )
        sharded = simulate(
            built.circuit, inputs, backend="bitplane", batch=8,
            shards=2, seed=4,
        )
        assert sharded.registers == plain.registers
        assert sharded.bits == plain.bits
        assert sharded.tally == plain.tally

    def test_sharded_refuses_unfused_execution(self, built):
        with pytest.raises(ValueError, match="fused"):
            simulate(
                built.circuit, _inputs(8), backend="bitplane", batch=8,
                shards=2, fused=False,
            )

    def test_auto_backend_records_resolved_strategy(self, built):
        result = simulate(
            built.circuit, _inputs(8), backend="auto", batch=8, seed=4,
        )
        assert result.backend.startswith("auto:")
        plain = simulate(
            built.circuit, _inputs(8), backend="bitplane", batch=8,
            compiled=True, seed=4,
        )
        assert result.registers == plain.registers
        assert result.bits == plain.bits

    def test_auto_kernels_run_compiled(self, built):
        sim = BitplaneSimulator(built.circuit, batch=8, outcomes=RandomOutcomes(4))
        for name, values in _inputs(8).items():
            sim.set_register(name, values)
        sim.run_compiled(kernels="auto")
        ref = _single_run(built, _inputs(8), 8, RandomOutcomes(4))
        assert sim.get_register("y") == ref.get_register("y")


class TestMonteCarloExecution:
    def test_execution_modes_are_bit_identical(self, built):
        estimates = {
            mode: mc_expected_counts(
                built, batch=1536, seed=7, execution=mode,
                **({"shards": 3, "executor": "thread"}
                   if mode == "sharded" else {}),
            )
            for mode in ("single", "sharded", "auto")
        }
        ref = estimates["single"]
        for mode, est in estimates.items():
            assert est.mean == ref.mean, mode
            assert est.variance == ref.variance, mode

    def test_unknown_execution_mode_rejected(self, built):
        with pytest.raises(ValueError, match="'auto', 'single', 'sharded'"):
            mc_expected_counts(built, batch=64, execution="distributed")


class TestCostModel:
    def test_effective_shards_caps(self):
        model = CostModel(dict(DEFAULT_CALIBRATION))
        assert model.effective_shards(batch=64, cores=8) == 1
        assert model.effective_shards(batch=8 * MIN_SHARD_LANES, cores=4) == 4
        assert model.effective_shards(batch=2 * MIN_SHARD_LANES, cores=16) == 2

    def test_classical_only_for_single_lane(self):
        # tiny single-lane program: classical is eligible (and wins on
        # startup cost); any multi-lane batch filters it out entirely
        model = CostModel(dict(DEFAULT_CALIBRATION))
        choice = model.choose(ops=10, batch=1, cores=1,
                              candidates=("classical", "codegen"))
        assert choice == "classical"
        choice = model.choose(ops=10, batch=64, cores=1,
                              candidates=("classical", "codegen"))
        assert choice == "codegen"

    def test_scalar_excluded_when_lane_counts_tracked(self):
        model = default_model()
        choice = model.choose(ops=5, batch=64, lane_counts=True, cores=1,
                              candidates=("scalar", "codegen"))
        assert choice == "codegen"

    def test_sharded_needs_cores_and_lanes(self):
        model = CostModel(dict(DEFAULT_CALIBRATION))
        assert model.estimate(
            "sharded", ops=1000, batch=64, cores=8
        ) == float("inf")
        many = model.estimate(
            "sharded", ops=100000, batch=64 * MIN_SHARD_LANES, cores=8
        )
        alone = model.estimate("codegen", ops=100000, batch=64 * MIN_SHARD_LANES)
        assert many < alone  # enough work: parallelism must look profitable

    def test_no_feasible_candidate_raises(self):
        with pytest.raises(ValueError, match="no feasible backend"):
            default_model().choose(ops=10, batch=64, cores=1,
                                   candidates=("classical",))

    def test_unknown_backend_estimate_raises(self):
        with pytest.raises(ValueError, match="no calibration"):
            default_model().estimate("quantum", ops=1, batch=1)

    def test_env_override_wins(self, tmp_path, monkeypatch):
        table = json.loads(json.dumps(DEFAULT_CALIBRATION))
        table["min_shard_lanes"] = 7
        path = tmp_path / "cal.json"
        path.write_text(json.dumps(table))
        monkeypatch.setenv("REPRO_DISPATCH_CALIBRATION", str(path))
        assert load_calibration()["min_shard_lanes"] == 7
        assert default_model(refresh=True).min_shard_lanes == 7
        monkeypatch.delenv("REPRO_DISPATCH_CALIBRATION")
        default_model(refresh=True)  # restore the ambient table

    def test_explicit_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_calibration(str(tmp_path / "nope.json"))

    def test_fit_calibration_recovers_synthetic_coefficients(self):
        def secs(ops, batch):
            return 1e-4 + 2e-7 * ops + 3e-9 * ops * ((batch + 63) // 64)

        samples = [
            {"backend": "codegen", "ops": ops, "batch": batch,
             "tally": True, "seconds": secs(ops, batch)}
            for ops in (100, 1000, 5000) for batch in (64, 4096, 65536)
        ]
        samples += [
            {"backend": "sharded", "ops": 5000, "batch": 65536, "tally": True,
             "shards": 4, "seconds": 0.30, "codegen_seconds": 1.0},
        ]
        table = fit_calibration(samples, source="test")
        fitted = table["backends"]["codegen"]["on"]
        assert fitted["c_ops"] == pytest.approx(2e-7, rel=0.05)
        assert fitted["c_ops_words"] == pytest.approx(3e-9, rel=0.05)
        eff = table["backends"]["sharded"]["on"]["efficiency"]
        assert eff == pytest.approx(1.0 / (0.30 * 4), rel=1e-6)
        # untouched backends keep the defaults
        assert table["backends"]["arrays"] == DEFAULT_CALIBRATION["backends"]["arrays"]
