"""Functional tests for the plain adders (props 2.2-2.5, cor 2.7).

Exhaustive at small n on the classical simulator (statevector for Draper),
property-based with hypothesis at large n for the ripple families.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arithmetic import build_adder
from tests.arith_helpers import run_draper, run_ripple

RIPPLE = ["vbe", "cdkpm", "gidney"]


@pytest.mark.parametrize("family", RIPPLE)
@pytest.mark.parametrize("n", [1, 2, 3])
def test_adder_exhaustive(family, n):
    for x in range(1 << n):
        for y in range(1 << n):
            built = build_adder(n, family)
            out = run_ripple(built, {"x": x, "y": y}, seed=x * 31 + y)
            assert out["y"] == x + y
            assert out["x"] == x


@pytest.mark.parametrize("family", RIPPLE)
@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_adder_random_wide(family, data):
    n = data.draw(st.integers(min_value=4, max_value=48))
    x = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
    y = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
    built = build_adder(n, family)
    out = run_ripple(built, {"x": x, "y": y}, seed=n)
    assert out["y"] == x + y


@pytest.mark.parametrize("family", RIPPLE)
@given(data=st.data())
@settings(max_examples=20, deadline=None)
def test_adder_wraps_mod_2_n_plus_1(family, data):
    """On arbitrary (n+1)-bit y the ripple adders add modulo 2**(n+1) —
    the property the subtraction sandwich and modular adders rely on."""
    n = data.draw(st.integers(min_value=2, max_value=16))
    x = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
    y = data.draw(st.integers(min_value=0, max_value=(1 << (n + 1)) - 1))
    built = build_adder(n, family)
    out = run_ripple(built, {"x": x, "y": y}, seed=7)
    assert out["y"] == (x + y) % (1 << (n + 1))


@pytest.mark.parametrize("n", [1, 2, 3])
def test_draper_adder_exhaustive(n):
    for x in range(1 << n):
        for y in range(1 << n):
            built = build_adder(n, "draper")
            out = run_draper(built, {"x": x, "y": y})
            assert out["y"] == x + y


def test_draper_adder_wraps():
    built = build_adder(2, "draper")
    out = run_draper(built, {"x": 3, "y": 6})
    assert out["y"] == (3 + 6) % 8


def test_draper_adder_preserves_superposition():
    """Linearity check: sum over a superposition of x values."""
    from repro.circuits import Circuit
    from repro.arithmetic.draper import emit_draper_add
    from repro.sim import run_statevector

    circ = Circuit()
    x = circ.add_register("x", 2)
    y = circ.add_register("y", 3)
    circ.h(x[0])
    circ.h(x[1])
    emit_draper_add(circ, x.qubits, y.qubits)
    sim = run_statevector(circ, {"y": 2})
    values = sim.register_values()
    assert set(values) == {(xv, 2 + xv) for xv in range(4)}
    for amp in values.values():
        assert abs(amp) == pytest.approx(0.5)


def test_unknown_family_rejected():
    with pytest.raises(ValueError):
        build_adder(3, "kogge-stone")


@pytest.mark.parametrize("family", RIPPLE + ["draper"])
def test_wrong_register_sizes_rejected(family):
    from repro.circuits import Circuit
    from repro.arithmetic.cdkpm import emit_cdkpm_add
    from repro.arithmetic.gidney import emit_gidney_add
    from repro.arithmetic.vbe import emit_vbe_add
    from repro.arithmetic.draper import emit_draper_add

    circ = Circuit()
    x = circ.add_register("x", 3)
    y = circ.add_register("y", 3)  # missing the overflow qubit
    anc = circ.add_register("anc", 3)
    with pytest.raises(ValueError):
        if family == "cdkpm":
            emit_cdkpm_add(circ, x.qubits, y.qubits, anc[0])
        elif family == "gidney":
            emit_gidney_add(circ, x.qubits, y.qubits, anc.qubits)
        elif family == "vbe":
            emit_vbe_add(circ, x.qubits, y.qubits, anc.qubits)
        else:
            emit_draper_add(circ, x.qubits, y.qubits)


def test_gidney_adder_without_c0():
    """Fig 13's remark: C_0 never changes and can be elided."""
    from repro.circuits import Circuit, count_gates
    from repro.arithmetic.gidney import emit_gidney_add
    from tests.arith_helpers import run_ripple
    from repro.arithmetic import Built

    n = 3
    for x in range(8):
        for y in range(8):
            circ = Circuit()
            xr = circ.add_register("x", n)
            yr = circ.add_register("y", n + 1)
            anc = circ.add_register("anc", n - 1)
            emit_gidney_add(circ, xr.qubits, yr.qubits, anc.qubits, include_c0=False)
            built = Built(circ, n, ("anc",), {})
            out = run_ripple(built, {"x": x, "y": y}, seed=x + y)
            assert out["y"] == x + y
    # eliding c0 saves 5 CNOTs (3 in its MAJ block, 2 in its UMA block)
    # and one ancilla
    with_c0 = build_adder(n, "gidney")
    assert count_gates(circ)["cx"] == with_c0.counts()["cx"] - 5
    assert built.ancilla_count == with_c0.ancilla_count - 1
