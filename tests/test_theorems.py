"""The theorem registry: every numbered statement builds and simulates.

This is the executable form of DESIGN.md's experiment index: for each
registered statement we construct the circuit at a small size and check
its defining semantics on the appropriate simulator.
"""

import pytest

from repro.mbu.theorems import THEOREMS, build
from repro.sim import RandomOutcomes, run_classical, run_statevector

N, P, A = 3, 5, 3

# Expected register semantics per operation kind, as (inputs, check).
CASES = {
    "add": ({"x": 3, "y": 4}, lambda o: o["y"] == 7),
    "cadd": ({"ctrl": 1, "x": 3, "y": 4}, lambda o: o["y"] == 7),
    "sub": ({"x": 3, "y": 2}, lambda o: o["y"] == (2 - 3) % 16),
    "addc": ({"x": 4}, lambda o: o["x"] == 4 + A),
    "caddc": ({"ctrl": 1, "x": 4}, lambda o: o["x"] == 4 + A),
    "cmp": ({"x": 5, "y": 3}, lambda o: o["t"] == 1),
    "ccmp": ({"ctrl": 1, "x": 5, "y": 3}, lambda o: o["t"] == 1),
    "cmpc": ({"x": 2}, lambda o: o["t"] == 1),
    "ccmpc": ({"ctrl": 1, "x": 2}, lambda o: o["t"] == 1),
    "modadd": ({"x": 3, "y": 4}, lambda o: o["y"] == (3 + 4) % P),
    "cmodadd": ({"ctrl": 1, "x": 3, "y": 4}, lambda o: o["y"] == (3 + 4) % P),
    "modaddc": ({"x": 4}, lambda o: o["x"] == (4 + A) % P),
    "cmodaddc": ({"ctrl": 1, "x": 4}, lambda o: o["x"] == (4 + A) % P),
    "in_range": ({"x": 2, "y": 1, "z": 4}, lambda o: o["t"] == 1),
    "mulmod": ({"x": 2, "y": 1}, lambda o: o["y"] == (1 + A * 2) % P),
    "modexp": ({"e": 3}, lambda o: o["x"] == pow(A, 3, P)),
}


def _kwargs_for(ref: str) -> dict:
    import inspect

    params = inspect.signature(THEOREMS[ref].builder).parameters
    kwargs: dict = {}
    if "n_exp" in params:
        kwargs["n_exp"] = 2
    if "n" in params:
        kwargs["n"] = N
    if "p" in params:
        kwargs["p"] = P
    if "a" in params:
        kwargs["a"] = A
    return kwargs


@pytest.mark.parametrize("ref", sorted(THEOREMS))
def test_statement_builds_and_simulates(ref):
    stmt = THEOREMS[ref]
    built = stmt.build(**_kwargs_for(ref))
    op = built.meta.get("op")
    controls = built.meta.get("controls", 0)
    if op == "modexp":
        # adjust expectation: exponent register 2 bits -> e=3
        inputs, check = {"e": 3}, lambda o: o["x"] == pow(A, 3, P)
    elif op == "modaddc" and controls:
        # Beauregard's controlled constant adders (prop 3.19 / fig 23)
        inputs = {"ctrl": (1 << controls) - 1, "x": 4}
        check = CASES[op][1]
    else:
        inputs, check = CASES[op]
    uses_statevector = (
        built.meta.get("family") == "draper" or built.meta.get("arch") == "beauregard"
    )
    if uses_statevector:
        sim = run_statevector(built.circuit, inputs, outcomes=RandomOutcomes(5))
        values = sim.register_values(tol=1e-6)
        assert len(values) == 1
        out = dict(zip(built.circuit.registers, next(iter(values))))
    else:
        out = run_classical(built.circuit, inputs, outcomes=RandomOutcomes(5))
    assert check(out), (ref, out)
    for name in built.ancilla_names:
        assert out[name] == 0, (ref, name, out)


def test_registry_covers_all_section_4_theorems():
    refs = {r for r in THEOREMS if r.startswith("thm 4.")}
    assert refs == {
        "thm 4.2", "thm 4.3", "thm 4.4", "thm 4.5", "thm 4.6",
        "thm 4.8", "thm 4.9", "thm 4.10", "thm 4.11", "thm 4.12", "thm 4.13",
    }


def test_build_by_reference_with_overrides():
    built = build("thm 4.3", n=5, p=29)
    out = run_classical(built.circuit, {"x": 11, "y": 20}, outcomes=RandomOutcomes(0))
    assert out["y"] == (11 + 20) % 29


def test_unknown_reference_rejected():
    with pytest.raises(KeyError):
        build("thm 9.9")


def test_mbu_statements_cost_less_than_plain_counterparts():
    pairs = [
        ("prop 3.4", "thm 4.3"), ("prop 3.5", "thm 4.4"), ("thm 3.6", "thm 4.5"),
        ("prop 3.10", "thm 4.8"), ("prop 3.11", "thm 4.9"),
        ("thm 3.14", "thm 4.10"), ("prop 3.15", "thm 4.11"),
        ("prop 3.18", "thm 4.12"),
    ]
    n, p, a = 8, 251, 100
    for plain_ref, mbu_ref in pairs:
        kwargs = {"n": n, "p": p}
        if THEOREMS[plain_ref].defaults.get("architecture") or "const" in \
                THEOREMS[plain_ref].builder.__name__:
            kwargs["a"] = a
        plain = THEOREMS[plain_ref].build(**kwargs).counts("expected").toffoli
        mbu = THEOREMS[mbu_ref].build(**kwargs).counts("expected").toffoli
        assert mbu < plain, (plain_ref, mbu_ref)
