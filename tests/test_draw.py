"""ASCII drawer smoke tests."""

from repro.circuits import Circuit, Conditional, draw


def test_draw_pass_produced_nesting():
    """Regression: bodies produced by transform passes (measurements and
    conditionals nested inside Conditional/MBU bodies, empty conditional
    bodies) must render instead of collapsing or crashing."""
    from repro.modular import build_modadd
    from repro.circuits import reference_emission
    from repro.transform import apply_transforms

    with reference_emission():
        ref = build_modadd(3, 5, "gidney", mbu=True)
    rewritten = apply_transforms(ref.circuit, ["insert_mbu"])
    art = draw(rewritten, max_width=100_000)
    assert "~M" in art   # the MBU block itself
    assert "~*" in art   # inner gate symbols survive under the "~" prefix
    assert "~X" in art

    lowered = apply_transforms(build_modadd(3, 5, "cdkpm").circuit, ["lower_toffoli"])
    art2 = draw(lowered, max_width=100_000)
    assert "Mx" in art2 and "?Z" in art2 and "?X" in art2


def test_draw_skips_empty_conditional_body():
    circ = Circuit()
    q = circ.add_qubit("q")
    bit = circ.new_bit()
    circ.append(Conditional(bit, ()))  # pass-produced empty body
    circ.x(q)
    art = draw(circ)
    assert "X" in art  # renders without crashing; empty column skipped


def test_draw_basic_gates():
    circ = Circuit()
    a = circ.add_register("a", 3)
    circ.h(a[0])
    circ.cx(a[0], a[1])
    circ.ccx(a[0], a[1], a[2])
    art = draw(circ)
    lines = art.splitlines()
    assert len(lines) == 3
    assert "H" in lines[0]
    assert "*" in lines[0] and "X" in lines[1]


def test_draw_packs_disjoint_columns():
    circ = Circuit()
    a = circ.add_register("a", 4)
    circ.x(a[0])
    circ.x(a[3])  # disjoint: same column
    art = draw(circ)
    width0 = len(art.splitlines()[0])
    assert all(len(line) == width0 for line in art.splitlines())
    # both X's share one column => only one gate column
    assert art.splitlines()[0].count("X") == 1


def test_draw_measurement_and_mbu():
    circ = Circuit()
    q = circ.add_qubit("q")
    r = circ.add_qubit("r")
    circ.measure(q, basis="x")
    with circ.capture() as body:
        circ.h(r)
        circ.x(r)
    circ.mbu(r, body)
    art = draw(circ)
    assert "Mx" in art
    assert "~M" in art


def test_draw_vertical_connector_spans_gap():
    circ = Circuit()
    a = circ.add_register("a", 3)
    circ.cx(a[0], a[2])
    art = draw(circ).splitlines()
    assert "|" in art[1]
