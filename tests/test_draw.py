"""ASCII drawer smoke tests."""

from repro.circuits import Circuit, draw


def test_draw_basic_gates():
    circ = Circuit()
    a = circ.add_register("a", 3)
    circ.h(a[0])
    circ.cx(a[0], a[1])
    circ.ccx(a[0], a[1], a[2])
    art = draw(circ)
    lines = art.splitlines()
    assert len(lines) == 3
    assert "H" in lines[0]
    assert "*" in lines[0] and "X" in lines[1]


def test_draw_packs_disjoint_columns():
    circ = Circuit()
    a = circ.add_register("a", 4)
    circ.x(a[0])
    circ.x(a[3])  # disjoint: same column
    art = draw(circ)
    width0 = len(art.splitlines()[0])
    assert all(len(line) == width0 for line in art.splitlines())
    # both X's share one column => only one gate column
    assert art.splitlines()[0].count("X") == 1


def test_draw_measurement_and_mbu():
    circ = Circuit()
    q = circ.add_qubit("q")
    r = circ.add_qubit("r")
    circ.measure(q, basis="x")
    with circ.capture() as body:
        circ.h(r)
        circ.x(r)
    circ.mbu(r, body)
    art = draw(circ)
    assert "Mx" in art
    assert "~M" in art


def test_draw_vertical_connector_spans_gap():
    circ = Circuit()
    a = circ.add_register("a", 3)
    circ.cx(a[0], a[2])
    art = draw(circ).splitlines()
    assert "|" in art[1]
