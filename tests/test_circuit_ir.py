"""Unit tests for the circuit IR: ops, registers, capture, adjoint."""

from fractions import Fraction

import pytest

from repro.circuits import (
    Annotation,
    Circuit,
    Conditional,
    Gate,
    MBUBlock,
    Measurement,
    adjoint_gate,
    iter_flat,
)


class TestGate:
    def test_arity_checked(self):
        with pytest.raises(ValueError):
            Gate("cx", (0,))
        with pytest.raises(ValueError):
            Gate("x", (0, 1))

    def test_unknown_gate_rejected(self):
        with pytest.raises(ValueError):
            Gate("foo", (0,))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            Gate("cx", (3, 3))
        with pytest.raises(ValueError):
            Gate("ccx", (1, 2, 1))

    def test_self_adjoint(self):
        for name, qubits in [("x", (0,)), ("h", (0,)), ("cx", (0, 1)), ("ccx", (0, 1, 2))]:
            gate = Gate(name, qubits)
            assert adjoint_gate(gate) == gate

    def test_s_t_adjoints(self):
        assert adjoint_gate(Gate("s", (0,))) == Gate("sdg", (0,))
        assert adjoint_gate(Gate("tdg", (0,))) == Gate("t", (0,))

    def test_parametric_adjoint_negates_angle(self):
        gate = Gate("cphase", (0, 1), 0.75)
        assert adjoint_gate(gate) == Gate("cphase", (0, 1), -0.75)


class TestCircuitBuilding:
    def test_registers_are_disjoint_and_little_endian(self):
        circ = Circuit()
        a = circ.add_register("a", 3)
        b = circ.add_register("b", 2)
        assert a.qubits == (0, 1, 2)
        assert b.qubits == (3, 4)
        assert circ.num_qubits == 5
        assert circ.qubit_labels[3] == "b[0]"

    def test_duplicate_register_name_rejected(self):
        circ = Circuit()
        circ.add_register("a", 1)
        with pytest.raises(ValueError):
            circ.add_register("a", 2)

    def test_gate_qubit_range_validated(self):
        circ = Circuit()
        circ.add_register("a", 1)
        with pytest.raises(ValueError):
            circ.cx(0, 5)

    def test_conditional_bit_and_body_validated(self):
        circ = Circuit()
        q = circ.add_qubit("q")
        bit = circ.new_bit()
        with pytest.raises(ValueError, match="conditional on bit"):
            circ.cond(bit + 1, [Gate("x", (q,))])
        with pytest.raises(ValueError, match="uses qubit beyond"):
            circ.cond(bit, [Gate("x", (q + 7,))])
        # nested: a conditional inside an MBU body is range-checked too
        with pytest.raises(ValueError, match="uses qubit beyond"):
            circ.append(
                MBUBlock(q, bit, (Conditional(bit, (Gate("x", (q + 7,)),)),))
            )

    def test_mbu_block_indices_validated(self):
        circ = Circuit()
        q = circ.add_qubit("q")
        bit = circ.new_bit()
        with pytest.raises(ValueError, match="out of range"):
            circ.append(MBUBlock(q + 1, bit, ()))
        with pytest.raises(ValueError, match="out of range"):
            circ.append(MBUBlock(q, bit + 1, ()))
        with pytest.raises(ValueError, match="out of range"):
            circ.append(Conditional(bit, (Measurement(q, bit + 5),)))

    def test_measure_allocates_bit(self):
        circ = Circuit()
        q = circ.add_qubit("q")
        bit = circ.measure(q)
        assert bit == 0
        assert circ.num_bits == 1
        assert isinstance(circ.ops[-1], Measurement)

    def test_capture_records_instead_of_appending(self):
        circ = Circuit()
        q = circ.add_qubit("q")
        circ.x(q)
        with circ.capture() as body:
            circ.h(q)
            circ.z(q)
        assert len(circ.ops) == 1
        assert [op.name for op in body] == ["h", "z"]

    def test_cond_and_mbu_wrap_bodies(self):
        circ = Circuit()
        q = circ.add_qubit("q")
        r = circ.add_qubit("r")
        bit = circ.new_bit()
        with circ.capture() as body:
            circ.cz(q, r)
        circ.cond(bit, body)
        assert isinstance(circ.ops[-1], Conditional)
        with circ.capture() as body2:
            circ.h(q)
            circ.x(q)
        mbit = circ.mbu(q, body2)
        block = circ.ops[-1]
        assert isinstance(block, MBUBlock)
        assert block.bit == mbit
        assert block.probability == Fraction(1, 2)

    def test_iter_flat_descends_into_bodies(self):
        circ = Circuit()
        q = circ.add_qubit("q")
        bit = circ.new_bit()
        with circ.capture() as body:
            circ.x(q)
        circ.cond(bit, body)
        kinds = [type(op).__name__ for op in iter_flat(circ.ops)]
        assert kinds == ["Conditional", "Gate"]


class TestStructuralEquality:
    def _pair(self):
        circs = []
        for _ in range(2):
            circ = Circuit()
            q = circ.add_register("q", 2)
            bit = circ.new_bit()
            circ.cx(q[0], q[1])
            with circ.capture() as body:
                circ.cz(q[0], q[1])
            circ.cond(bit, body)
            circs.append(circ)
        return circs

    def test_equal_streams_compare_equal(self):
        a, b = self._pair()
        assert a.structurally_equal(b) and b.structurally_equal(a)

    def test_annotations_ignored_by_default(self):
        a, b = self._pair()
        b.begin("QFT")
        b.end("QFT")
        assert a.structurally_equal(b)
        assert not a.structurally_equal(b, include_annotations=True)

    def test_annotations_inside_bodies_ignored(self):
        a, b = self._pair()
        cond = b.ops[-1]
        b.ops[-1] = Conditional(
            cond.bit, (Annotation("note", "x"),) + cond.body, cond.value, cond.probability
        )
        assert a.structurally_equal(b)

    def test_differing_ops_or_layout_not_equal(self):
        a, b = self._pair()
        b.x(0)
        assert not a.structurally_equal(b)
        c = Circuit()
        c.add_register("q", 2)
        assert not a.structurally_equal(c)  # bit layout differs

    def test_body_differences_detected(self):
        a, b = self._pair()
        cond = b.ops[-1]
        b.ops[-1] = Conditional(cond.bit, (Gate("x", (0,)),), cond.value, cond.probability)
        assert not a.structurally_equal(b)


class TestCopyEmpty:
    def test_copies_layout_not_ops(self):
        circ = Circuit("orig")
        q = circ.add_register("q", 3)
        circ.new_bit("flag")
        circ.x(q[0])
        shell = circ.copy_empty()
        assert shell.name == "orig"
        assert shell.num_qubits == 3 and shell.num_bits == 1
        assert shell.registers.keys() == circ.registers.keys()
        assert shell.ops == []
        shell.add_register("extra", 1)  # allocation is independent
        assert circ.num_qubits == 3


class TestAdjoint:
    def test_adjoint_reverses_and_conjugates(self):
        circ = Circuit()
        a = circ.add_register("a", 2)
        circ.h(a[0])
        circ.s(a[0])
        circ.cx(a[0], a[1])
        adj = circ.adjoint_ops()
        names = [op.name for op in adj if isinstance(op, Gate)]
        assert names == ["cx", "sdg", "h"]

    def test_adjoint_rejects_measurement(self):
        circ = Circuit()
        q = circ.add_qubit("q")
        circ.measure(q)
        with pytest.raises(ValueError, match="remark 2.23"):
            circ.adjoint_ops()

    def test_adjoint_swaps_block_markers(self):
        circ = Circuit()
        q = circ.add_qubit("q")
        with circ.block("QFT"):
            circ.h(q)
        adj = circ.adjoint_ops()
        marks = [(op.kind, op.label) for op in adj if isinstance(op, Annotation)]
        assert marks == [("begin", "QFT"), ("end", "QFT")]

    def test_adjoint_is_involution(self):
        circ = Circuit()
        a = circ.add_register("a", 3)
        circ.t(a[0])
        circ.ccx(a[0], a[1], a[2])
        circ.cphase(a[1], a[2], 0.3)
        twice = circ.adjoint_ops(circ.adjoint_ops())
        assert twice == circ.ops

    def test_adjoint_recurses_into_conditional_bodies(self):
        circ = Circuit()
        q = circ.add_register("q", 2)
        bit = circ.new_bit()
        circ.x(q[0])
        with circ.capture() as body:
            circ.s(q[0])
            circ.cx(q[0], q[1])
        circ.cond(bit, body)
        adj = circ.adjoint_ops()
        cond, gate = adj
        assert isinstance(cond, Conditional)
        assert [op.name for op in cond.body] == ["cx", "sdg"]
        assert cond.probability == circ.ops[-1].probability
        assert gate == Gate("x", (q[0],))
        assert circ.adjoint_ops(adj) == circ.ops  # still an involution

    def test_adjoint_rejects_mbu_blocks(self):
        circ = Circuit()
        q = circ.add_qubit("q")
        circ.mbu(q, ())
        with pytest.raises(ValueError, match="remark 2.23"):
            circ.adjoint_ops()

    def test_circuit_adjoint_returns_fresh_circuit(self):
        circ = Circuit("fwd")
        a = circ.add_register("a", 2)
        circ.s(a[0])
        circ.cx(a[0], a[1])
        adj = circ.adjoint()
        assert adj.name == "adjoint(fwd)"
        assert adj.num_qubits == 2
        assert [op.name for op in adj.ops] == ["cx", "sdg"]
        assert [op.name for op in circ.ops] == ["s", "cx"]  # original untouched
