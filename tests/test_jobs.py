"""Execution-layer tests: checkpoint journal, retrying executor, run report.

The chaos scenarios (worker kills, hangs, journal corruption under a
process pool) live in ``tests/test_faults.py`` behind the ``chaos``
marker; this module covers the deterministic unit surface — journal
round-trip and damage handling, retry/backoff bookkeeping, structured
failure reporting, resume, and the run-report artifact.
"""

import json
from dataclasses import replace
from fractions import Fraction

import pytest

from repro.pipeline import faults
from repro.pipeline.artifacts import run_report, sweep_artifact, write_run_report
from repro.pipeline.cli import main as cli_main, smoke_config
from repro.pipeline.jobs import (
    JOURNAL_SCHEMA_VERSION,
    CheckpointJournal,
    ExecutionPolicy,
    SweepExecutionError,
    backoff_delay,
    config_fingerprint,
    execute_tasks,
    outcome_key,
    task_key,
)
from repro.pipeline.runner import SweepConfig, _plan, run_sweep


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan(monkeypatch):
    """Keep fault plans scoped to each test, however it exits."""
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    yield
    faults.clear()


def tiny_config(**overrides):
    base = dict(tables=("table6",), sizes=(4,), seed=3, mc_batch=32,
                workers=0, include_savings=True, modexp=((2, 3),))
    base.update(overrides)
    return SweepConfig(**base)


class TestIdentity:
    def test_task_keys_readable_and_distinct(self):
        tasks = _plan(tiny_config())
        keys = [task_key(t) for t in tasks]
        assert keys == ["table:table6:n4", "savings:n4", "modexp:e2:n3"]
        assert len(set(keys)) == len(keys)

    def test_outcome_key_matches_run_task(self):
        from repro.pipeline.runner import _run_task
        from repro.pipeline.cache import CircuitCache

        cache = CircuitCache()
        for task in _plan(tiny_config()):
            kind, key, _ = _run_task(task, cache)
            assert outcome_key(task) == (kind, key)

    def test_fingerprint_ignores_workers(self):
        assert config_fingerprint(tiny_config(workers=0)) == \
            config_fingerprint(tiny_config(workers=8))

    def test_fingerprint_tracks_semantic_fields(self):
        assert config_fingerprint(tiny_config(seed=3)) != \
            config_fingerprint(tiny_config(seed=4))
        assert config_fingerprint(tiny_config()) != \
            config_fingerprint(tiny_config(mc_batch=64))


class TestCheckpointJournal:
    PAYLOAD = [
        {"row": "CDKPM", "n": 4, "toffoli": 12, "toffoli_mbu": Fraction(15, 2),
         "share": 0.8125, "note": "exact"},
    ]

    def test_round_trip_preserves_types_and_order(self, tmp_path):
        journal = CheckpointJournal(tmp_path, tiny_config())
        journal.store("table:table6:n4", self.PAYLOAD)
        loaded = journal.load("table:table6:n4")
        assert loaded == self.PAYLOAD
        assert isinstance(loaded[0]["toffoli_mbu"], Fraction)
        assert isinstance(loaded[0]["toffoli"], int)
        assert list(loaded[0]) == list(self.PAYLOAD[0])  # key order kept
        assert journal.stats.writes == 1 and journal.stats.hits == 1

    def test_missing_entry_is_a_miss(self, tmp_path):
        journal = CheckpointJournal(tmp_path, tiny_config())
        assert journal.load("table:table6:n4") is None
        assert journal.stats.misses == 1

    def test_corrupt_entry_is_a_counted_miss(self, tmp_path):
        journal = CheckpointJournal(tmp_path, tiny_config())
        path = journal.store("savings:n4", {"mbu": 0.25})
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert journal.load("savings:n4") is None
        assert journal.stats.corrupt == 1

    def test_checksum_mismatch_is_a_counted_miss(self, tmp_path):
        journal = CheckpointJournal(tmp_path, tiny_config())
        path = journal.store("savings:n4", {"mbu": 0.25})
        entry = json.loads(path.read_text())
        entry["payload"]["mbu"] = 0.99  # silent bit-rot, checksum now stale
        path.write_text(json.dumps(entry))
        assert journal.load("savings:n4") is None
        assert journal.stats.corrupt == 1

    def test_stale_schema_is_a_counted_miss(self, tmp_path):
        journal = CheckpointJournal(tmp_path, tiny_config())
        path = journal.store("savings:n4", {"mbu": 0.25})
        entry = json.loads(path.read_text())
        entry["schema"] = JOURNAL_SCHEMA_VERSION + 1
        path.write_text(json.dumps(entry))
        assert journal.load("savings:n4") is None
        assert journal.stats.stale == 1

    def test_different_configs_never_alias(self, tmp_path):
        a = CheckpointJournal(tmp_path, tiny_config(seed=3))
        b = CheckpointJournal(tmp_path, tiny_config(seed=4))
        a.store("savings:n4", {"mbu": 0.25})
        assert b.load("savings:n4") is None
        assert a.dir != b.dir

    def test_atomic_write_leaves_no_tmp_files(self, tmp_path):
        journal = CheckpointJournal(tmp_path, tiny_config())
        journal.store("savings:n4", {"mbu": 0.25})
        assert not list(journal.dir.glob("*.tmp"))

    def test_completed_keys(self, tmp_path):
        journal = CheckpointJournal(tmp_path, tiny_config())
        assert journal.completed_keys() == []
        journal.store("savings:n4", {"mbu": 0.25})
        path = journal.store("modexp:e2:n3", {"row": "x"})
        faults.corrupt_file(path)  # damaged entries don't count as completed
        assert journal.completed_keys() == ["savings:n4"]


class TestBackoff:
    POLICY = ExecutionPolicy(backoff_base=0.1, backoff_cap=1.0)

    def test_deterministic(self):
        a = backoff_delay(self.POLICY, 7, "table:table1:n4", 2)
        b = backoff_delay(self.POLICY, 7, "table:table1:n4", 2)
        assert a == b

    def test_grows_and_caps(self):
        delays = [backoff_delay(self.POLICY, 7, "k", a) for a in range(1, 8)]
        assert all(0.05 <= d <= 1.0 for d in delays)
        assert max(delays) <= 1.0  # capped
        assert delays[3] > delays[0]  # exponential region grows

    def test_jitter_varies_by_key(self):
        assert backoff_delay(self.POLICY, 7, "a", 1) != \
            backoff_delay(self.POLICY, 7, "b", 1)

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            ExecutionPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="task_timeout"):
            ExecutionPolicy(task_timeout=0)
        with pytest.raises(ValueError, match="pool_breaks"):
            ExecutionPolicy(pool_breaks_before_degrade=-1)


class TestExecutorSerial:
    def test_retry_then_success(self):
        faults.install(faults.FaultPlan(faults=(
            faults.FaultSpec(site="task", action="raise",
                             match="savings:*", attempts=(0,)),
        )))
        result = run_sweep(tiny_config(),
                           policy=ExecutionPolicy(backoff_base=0.001))
        report = {r["key"]: r for r in result.task_reports}["savings:n4"]
        assert report["status"] == "ok"
        assert report["attempts"] == 2 and report["failures"] == 1
        assert "FaultInjected" in report["error"]
        assert result.failures == []

    def test_fail_fast_raises_structured_error(self):
        faults.install(faults.FaultPlan(faults=(
            faults.FaultSpec(site="task", action="raise", match="modexp:*"),
        )))
        with pytest.raises(SweepExecutionError) as exc:
            run_sweep(tiny_config(),
                      policy=ExecutionPolicy(max_retries=1, backoff_base=0.001))
        (failure,) = exc.value.failures
        assert failure.key == "modexp:e2:n3"
        assert failure.attempts == 2  # 1 + max_retries
        assert failure.seed == 3  # the replay seed rides along
        assert "modexp:e2:n3" in str(exc.value)

    def test_no_fail_fast_records_failure_and_continues(self):
        faults.install(faults.FaultPlan(faults=(
            faults.FaultSpec(site="task", action="raise", match="savings:*"),
        )))
        result = run_sweep(tiny_config(), policy=ExecutionPolicy(
            max_retries=1, fail_fast=False, backoff_base=0.001))
        (failure,) = result.failures
        assert failure["key"] == "savings:n4" and failure["status"] == "failed"
        assert failure["seed"] == 3
        # every other task still completed, and its rows are intact
        assert sorted(result.tables["table6"]) == [4]
        assert len(result.modexp) == 1
        assert result.savings == {}  # the failed cell is absent, not wrong

    def test_kill_fault_degrades_to_raise_in_main_process(self):
        # os._exit in the main process would take the test runner down;
        # the harness must degrade it to FaultInjected instead.
        faults.install(faults.FaultPlan(faults=(
            faults.FaultSpec(site="task", action="kill", match="savings:*"),
        )))
        result = run_sweep(tiny_config(), policy=ExecutionPolicy(
            max_retries=0, fail_fast=False, backoff_base=0.001))
        (failure,) = result.failures
        assert "FaultInjected" in failure["error"]

    def test_cache_stats_aggregated_serially(self):
        result = run_sweep(tiny_config())
        assert result.cache_stats["misses"] > 0
        assert 0.0 <= result.cache_stats["hit_ratio"] <= 1.0


class TestExecutorParallel:
    def test_parallel_cache_stats_no_longer_empty(self):
        """The pool.map regression: remote work must report its stats."""
        result = run_sweep(tiny_config(workers=2))
        assert result.execution_modes == ["process"]
        assert result.cache_stats["misses"] > 0
        assert result.cache_stats["hits"] + result.cache_stats["misses"] > 0

    def test_parallel_reports_worker_pids(self):
        result = run_sweep(tiny_config(workers=2))
        import os

        pids = {r["worker"] for r in result.task_reports}
        assert pids and os.getpid() not in pids

    def test_parallel_rows_match_serial(self):
        serial = run_sweep(tiny_config())
        parallel = run_sweep(tiny_config(workers=2))
        assert serial.tables == parallel.tables
        assert serial.savings == parallel.savings
        assert serial.modexp == parallel.modexp


class TestResume:
    def test_resume_skips_completed_and_is_byte_identical(self, tmp_path):
        config = tiny_config()
        baseline = json.dumps(sweep_artifact(run_sweep(config)), indent=2)
        policy = ExecutionPolicy(store=tmp_path / "journal")
        first = run_sweep(config, policy=policy)
        assert first.journal_stats["writes"] == 3
        second = run_sweep(config, policy=policy)
        assert second.journal_stats["hits"] == 3
        assert second.journal_stats["writes"] == 0
        assert [r["status"] for r in second.task_reports] == ["cached"] * 3
        assert json.dumps(sweep_artifact(second), indent=2) == baseline

    def test_interrupted_sweep_resumes_where_it_stopped(self, tmp_path):
        config = tiny_config()
        policy = ExecutionPolicy(store=tmp_path / "journal", max_retries=0,
                                 backoff_base=0.001)
        # Interrupt: the last task (modexp) fails hard on the first run.
        faults.install(faults.FaultPlan(faults=(
            faults.FaultSpec(site="task", action="raise", match="modexp:*"),
        )))
        with pytest.raises(SweepExecutionError):
            run_sweep(config, policy=policy)
        faults.clear()
        journal = CheckpointJournal(tmp_path / "journal", config)
        assert journal.completed_keys() == ["savings:n4", "table:table6:n4"]
        # The rerun replays the two completed tasks and computes only modexp.
        resumed = run_sweep(config, policy=policy)
        statuses = {r["key"]: r["status"] for r in resumed.task_reports}
        assert statuses == {"table:table6:n4": "cached", "savings:n4": "cached",
                            "modexp:e2:n3": "ok"}
        assert resumed.journal_stats["hits"] == 2
        baseline = json.dumps(sweep_artifact(run_sweep(config)), indent=2)
        assert json.dumps(sweep_artifact(resumed), indent=2) == baseline

    def test_resume_false_recomputes_but_still_checkpoints(self, tmp_path):
        config = tiny_config()
        store = tmp_path / "journal"
        run_sweep(config, policy=ExecutionPolicy(store=store))
        refreshed = run_sweep(config, policy=ExecutionPolicy(store=store,
                                                             resume=False))
        assert refreshed.journal_stats["hits"] == 0
        assert refreshed.journal_stats["writes"] == 3
        assert all(r["status"] == "ok" for r in refreshed.task_reports)


class TestRunReport:
    def test_report_written_and_structured(self, tmp_path):
        result = run_sweep(tiny_config())
        report = run_report(result)
        assert report["schema"] == 1
        assert report["seed"] == 3
        assert report["config_fingerprint"] == config_fingerprint(tiny_config())
        assert [t["status"] for t in report["tasks"]] == ["ok"] * 3
        json_path, md_path = write_run_report(report, tmp_path)
        assert json.loads(json_path.read_text()) == report
        text = md_path.read_text()
        assert "3 ok" in text and "table:table6:n4" in text

    def test_report_keeps_diagnostics_out_of_the_artifact(self):
        result = run_sweep(tiny_config())
        artifact = sweep_artifact(result)
        blob = json.dumps(artifact)
        assert "task_reports" not in blob and "attempts" not in blob
        assert "elapsed" not in blob and "journal" not in blob


class TestCLI:
    def test_store_resume_flow(self, tmp_path, capsys):
        store = str(tmp_path / "journal")
        assert cli_main(["--smoke", "--out", str(tmp_path), "--store", store]) == 0
        first = capsys.readouterr().out
        assert '"writes": 4' in first
        assert cli_main(["--smoke", "--out", str(tmp_path), "--store", store,
                         "--resume"]) == 0
        second = capsys.readouterr().out
        assert '"hits": 4' in second
        report = json.loads((tmp_path / "run_report.json").read_text())
        assert [t["status"] for t in report["tasks"]] == ["cached"] * 4

    def test_resume_defaults_store_under_out(self, tmp_path, capsys):
        assert cli_main(["--smoke", "--out", str(tmp_path), "--resume"]) == 0
        capsys.readouterr()
        assert (tmp_path / ".journal").is_dir()
        assert cli_main(["--smoke", "--out", str(tmp_path), "--resume"]) == 0
        assert '"hits": 4' in capsys.readouterr().out

    def test_faults_flag_recovers_and_matches_golden(self, tmp_path, capsys):
        plan = json.dumps({"seed": 1, "faults": [
            {"site": "task", "action": "raise", "attempts": [0]},
        ]})
        rc = cli_main(["--smoke", "--out", str(tmp_path), "--faults", plan,
                       "--check", "tests/golden/sweep_smoke.json"])
        assert rc == 0
        assert "matches golden" in capsys.readouterr().out
        report = json.loads((tmp_path / "run_report.json").read_text())
        assert all(t["attempts"] == 2 for t in report["tasks"])

    def test_bad_fault_plan_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli_main(["--smoke", "--faults", "{not json"])
        assert exc.value.code == 2
        assert "--faults" in capsys.readouterr().err

    def test_bad_retry_and_timeout_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["--smoke", "--max-retries", "-1"])
        assert "--max-retries" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            cli_main(["--smoke", "--task-timeout", "0"])
        assert "--task-timeout" in capsys.readouterr().err

    def test_persistent_failure_exits_nonzero_with_replay_seed(self, tmp_path, capsys):
        plan = json.dumps({"faults": [
            {"site": "task", "action": "raise", "match": "modexp:*"},
        ]})
        rc = cli_main(["--smoke", "--out", str(tmp_path), "--faults", plan,
                       "--max-retries", "0"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "modexp:e2:n3" in err and "replay seed=7" in err

    def test_no_fail_fast_writes_partial_artifact(self, tmp_path, capsys):
        plan = json.dumps({"faults": [
            {"site": "task", "action": "raise", "match": "modexp:*"},
        ]})
        rc = cli_main(["--smoke", "--out", str(tmp_path), "--faults", plan,
                       "--max-retries", "0", "--no-fail-fast"])
        assert rc == 1
        assert "SWEEP INCOMPLETE" in capsys.readouterr().err
        artifact = json.loads((tmp_path / "tables.json").read_text())
        assert artifact["modexp"] == []  # failed cell absent
        assert artifact["tables"]["table1"]["sizes"]["4"]  # the rest intact
        report = json.loads((tmp_path / "run_report.json").read_text())
        assert len(report["failures"]) == 1


class TestFaultPlanValidation:
    def test_json_round_trip(self):
        plan = faults.FaultPlan(seed=9, faults=(
            faults.FaultSpec(site="task", action="kill", match="table:*",
                             probability=0.2, attempts=(0, 1)),
        ))
        assert faults.FaultPlan.from_json(plan.to_json()) == plan

    def test_from_arg_reads_files(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"faults": [{"site": "task", "action": "raise"}]}')
        plan = faults.FaultPlan.from_arg(f"@{path}")
        assert plan.faults[0].action == "raise"

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError, match="site"):
            faults.FaultSpec(site="disk", action="raise")
        with pytest.raises(ValueError, match="action"):
            faults.FaultSpec(site="task", action="explode")
        with pytest.raises(ValueError, match="journal"):
            faults.FaultSpec(site="task", action="corrupt")
        with pytest.raises(ValueError, match="journal"):
            faults.FaultSpec(site="journal", action="raise")
        with pytest.raises(ValueError, match="probability"):
            faults.FaultSpec(site="task", action="raise", probability=1.5)
        with pytest.raises(ValueError, match="unknown fault plan key"):
            faults.FaultPlan.from_json('{"surprise": 1}')

    def test_probability_gate_is_deterministic_and_monotone(self):
        always = faults.FaultInjector(faults.FaultPlan(faults=(
            faults.FaultSpec(site="task", action="raise", probability=1.0),)))
        never = faults.FaultInjector(faults.FaultPlan(faults=(
            faults.FaultSpec(site="task", action="raise", probability=0.0),)))
        some = faults.FaultInjector(faults.FaultPlan(faults=(
            faults.FaultSpec(site="task", action="raise", probability=0.5),)))
        keys = [f"table:table{i}:n{n}" for i in range(1, 7) for n in (4, 8)]
        assert all(always.decide("task", k, 0) for k in keys)
        assert not any(never.decide("task", k, 0) for k in keys)
        fired = [bool(some.decide("task", k, 0)) for k in keys]
        assert fired == [bool(some.decide("task", k, 0)) for k in keys]
        assert any(fired) and not all(fired)

    def test_attempt_filter(self):
        injector = faults.FaultInjector(faults.FaultPlan(faults=(
            faults.FaultSpec(site="task", action="raise", attempts=(1,)),)))
        assert injector.decide("task", "k", 0) is None
        assert injector.decide("task", "k", 1) is not None
        assert injector.decide("task", "k", 2) is None

    def test_env_plan_reaches_injector(self, monkeypatch):
        plan = faults.FaultPlan(faults=(
            faults.FaultSpec(site="task", action="raise"),))
        monkeypatch.setenv(faults.FAULTS_ENV, plan.to_json())
        with pytest.raises(faults.FaultInjected):
            faults.maybe_fire("task", "any:key", 0)
