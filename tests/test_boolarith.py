"""Property-based tests of the appendix-A bit-string reference model."""

from hypothesis import given
from hypothesis import strategies as st

import pytest

from repro.boolarith import (
    bitstring_add,
    bitstring_sub,
    borrow_sequence,
    carry_sequence,
    decode_signed,
    encode_signed,
    hamming_weight,
    maj,
    ones_complement,
    to_bits,
    from_bits,
    twos_complement,
)

widths = st.integers(min_value=1, max_value=64)


@st.composite
def width_and_values(draw, count=2):
    width = draw(widths)
    values = [draw(st.integers(min_value=0, max_value=(1 << width) - 1)) for _ in range(count)]
    return (width, *values)


class TestBasics:
    def test_maj_truth_table(self):
        assert [maj(a, b, c) for a in (0, 1) for b in (0, 1) for c in (0, 1)] == [
            0, 0, 0, 1, 0, 1, 1, 1,
        ]

    @given(width_and_values(count=1))
    def test_bits_roundtrip(self, wv):
        width, x = wv
        assert from_bits(to_bits(x, width)) == x

    def test_to_bits_range_checked(self):
        with pytest.raises(ValueError):
            to_bits(4, 2)
        with pytest.raises(ValueError):
            to_bits(-1, 2)

    @given(width_and_values(count=1))
    def test_complements(self, wv):
        width, x = wv
        assert ones_complement(x, width) == (1 << width) - 1 - x
        assert twos_complement(x, width) == (-x) % (1 << width)

    def test_hamming_weight(self):
        assert hamming_weight(0) == 0
        assert hamming_weight(0b1011) == 3


class TestAdditionSubtraction:
    @given(width_and_values())
    def test_addition_matches_integers(self, wvv):
        """Remark A.2: the carry-chain addition is integer addition."""
        width, x, y = wvv
        assert bitstring_add(x, y, width) == x + y

    @given(width_and_values())
    def test_subtraction_is_twos_complement_add(self, wvv):
        """Proposition A.1: x - y = x + twos_complement(y), taking the
        complement over the full (width+1)-bit output width."""
        width, x, y = wvv
        direct = bitstring_sub(x, y, width)
        via_complement = (x + twos_complement(y, width + 1)) % (1 << (width + 1))
        assert direct == via_complement

    @given(width_and_values())
    def test_sign_bit_is_comparison(self, wvv):
        """Proposition A.3: (x - y) top bit == [x < y]."""
        width, x, y = wvv
        diff = bitstring_sub(x, y, width)
        assert (diff >> width) & 1 == (1 if x < y else 0)

    @given(width_and_values())
    def test_subtraction_signed_value(self, wvv):
        """Proposition A.5: the (width+1)-bit string encodes x - y signed."""
        width, x, y = wvv
        diff = bitstring_sub(x, y, width)
        assert decode_signed(diff, width + 1) == x - y

    @given(width_and_values())
    def test_carry_borrow_relationship(self, wvv):
        """Lemma inside prop A.1: borrows of x-y are complements of the
        carries of x + ~y + 1."""
        width, x, y = wvv
        borrows = borrow_sequence(x, y, width)
        assert borrows[width] == (1 if x < y else 0)

    @given(width_and_values())
    def test_signed_addition(self, wvv):
        """Proposition A.6 (essence): an unsigned adder adds 2's-complement
        signed integers correctly modulo 2**width."""
        width, xu, yu = wvv
        x, y = decode_signed(xu, width), decode_signed(yu, width)
        assert (xu + yu) % (1 << width) == (x + y) % (1 << width)

    @given(width_and_values(count=1))
    def test_signed_roundtrip(self, wv):
        width, xu = wv
        signed = decode_signed(xu, width)
        assert encode_signed(signed, width) == xu

    def test_encode_signed_range_checked(self):
        with pytest.raises(ValueError):
            encode_signed(2, 2)
        assert encode_signed(-2, 2) == 2
        assert decode_signed(2, 2) == -2
