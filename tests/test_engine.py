"""Tests for the shared execution core (engine + backend protocol + dispatch).

The heavy behavioural coverage lives in the simulator/resource suites
(which all execute through the engine after the refactor); these tests pin
the engine contract itself: walk order, branch decisions, weighted tally,
and the ``simulate()`` backend registry.
"""

from fractions import Fraction

import pytest

from repro.circuits import Circuit, count_gates
from repro.sim import (
    EXECUTE,
    SKIP,
    BranchDecision,
    ClassicalSimulator,
    ConstantOutcomes,
    ExecutionBackend,
    ExecutionEngine,
    ForcedOutcomes,
    SimulationResult,
    StatevectorSimulator,
    available_backends,
    register_backend,
    simulate,
)


class TracingBackend(ExecutionBackend):
    """Records the walk; takes conditionals per a preset bit environment."""

    def __init__(self, bits=()):
        self.bits = dict(bits)
        self.trace = []

    def apply_gate(self, gate):
        self.trace.append(("gate", gate.name))

    def apply_measurement(self, meas):
        self.trace.append(("measure", meas.qubit))

    def enter_conditional(self, cond):
        taken = self.bits.get(cond.bit, 0) == cond.value
        self.trace.append(("cond", cond.bit, taken))
        return EXECUTE if taken else SKIP

    def enter_mbu(self, block):
        self.trace.append(("mbu", block.qubit))
        return BranchDecision(True, Fraction(1, 2))

    def exit_mbu(self, block, decision):
        self.trace.append(("mbu-exit", block.qubit))

    def annotation(self, ann):
        self.trace.append(("ann", ann.kind, ann.label))


def _demo_circuit():
    circ = Circuit()
    a = circ.add_register("a", 2)
    g = circ.add_qubit("g")
    bit = circ.new_bit()
    circ.begin("BLK")
    circ.cx(a[0], a[1])
    with circ.capture() as body:
        circ.x(a[0])
    circ.cond(bit, body)
    with circ.capture() as mbody:
        circ.h(g)
        circ.ccx(a[0], a[1], g)
        circ.h(g)
        circ.x(g)
    circ.mbu(g, mbody)
    circ.end("BLK")
    return circ, bit


class TestEngineWalk:
    def test_walk_order_and_skipped_branch(self):
        circ, bit = _demo_circuit()
        backend = TracingBackend(bits={bit: 0})
        ExecutionEngine(backend, tally=False).execute(circ.ops)
        assert backend.trace == [
            ("ann", "begin", "BLK"),
            ("gate", "cx"),
            ("cond", bit, False),
            ("mbu", 2),
            ("gate", "h"),
            ("gate", "ccx"),
            ("gate", "h"),
            ("gate", "x"),
            ("mbu-exit", 2),
            ("ann", "end", "BLK"),
        ]

    def test_taken_conditional_descends(self):
        circ, bit = _demo_circuit()
        backend = TracingBackend(bits={bit: 1})
        ExecutionEngine(backend, tally=False).execute(circ.ops)
        assert ("gate", "x") in backend.trace[: backend.trace.index(("mbu", 2))]

    def test_engine_tally_weights_nested_branches(self):
        """MBU body weighted 1/2 by the backend's BranchDecision."""
        circ, _ = _demo_circuit()
        engine = ExecutionEngine(TracingBackend(), tally=True)
        engine.execute(circ.ops)
        # cx always; ccx at weight 1/2; x inside the skipped conditional absent;
        # x inside the MBU body at 1/2; MBU itself adds 1 h + 1 measure, the
        # two body Hadamards add 2 * 1/2.
        assert engine.tally["cx"] == 1
        assert engine.tally["ccx"] == Fraction(1, 2)
        assert engine.tally["x"] == Fraction(1, 2)
        assert engine.tally["h"] == 2
        assert engine.tally["measure"] == 1

    def test_engine_weight_restored_after_body(self):
        circ, _ = _demo_circuit()
        engine = ExecutionEngine(TracingBackend(), tally=True)
        engine.execute(circ.ops)
        assert engine.weight == 1


class TestSimulatorsShareTheEngine:
    """With every branch forced taken, an executed-gate tally must equal the
    worst-case static count — the strongest sign the walkers agree."""

    def _circuit(self):
        circ = Circuit()
        a = circ.add_register("a", 2)
        g = circ.add_qubit("g")
        circ.ccx(a[0], a[1], g)
        with circ.capture() as body:
            circ.h(g)
            circ.ccx(a[0], a[1], g)
            circ.h(g)
            circ.x(g)
        circ.mbu(g, body)
        return circ

    @pytest.mark.parametrize("cls", [ClassicalSimulator, StatevectorSimulator])
    def test_forced_worst_tally_matches_static_worst(self, cls):
        circ = self._circuit()
        sim = cls(circ, outcomes=ConstantOutcomes(1))
        sim.run()
        assert sim.tally == count_gates(circ, mode="worst")

    @pytest.mark.parametrize("cls", [ClassicalSimulator, StatevectorSimulator])
    def test_forced_best_tally_matches_static_best(self, cls):
        circ = self._circuit()
        sim = cls(circ, outcomes=ConstantOutcomes(0))
        sim.run()
        assert sim.tally == count_gates(circ, mode="best")

    def test_tally_disabled(self):
        sim = ClassicalSimulator(self._circuit(), outcomes=ConstantOutcomes(0), tally=False)
        sim.run()
        assert sim.tally is None


class TestSimulateDispatch:
    def _adder(self):
        circ = Circuit()
        x = circ.add_register("x", 2)
        y = circ.add_register("y", 2)
        circ.cx(x[0], y[0])
        circ.cx(x[1], y[1])
        return circ

    def test_builtin_backends_registered(self):
        assert set(available_backends()) >= {"classical", "statevector", "bitplane"}

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown simulation backend"):
            simulate(self._adder(), backend="stabilizer")

    def test_classical_dispatch(self):
        result = simulate(self._adder(), {"x": 3}, backend="classical")
        assert result.backend == "classical"
        assert result.registers == {"x": 3, "y": 3}
        assert result.tally["cx"] == 2

    def test_statevector_dispatch_collapses_to_registers(self):
        result = simulate(self._adder(), {"x": 2}, backend="statevector")
        assert result.registers == {"x": 2, "y": 2}

    def test_bitplane_dispatch_per_lane(self):
        result = simulate(
            self._adder(), {"x": [0, 1, 2, 3]}, backend="bitplane", batch=4
        )
        assert result.registers["y"] == [0, 1, 2, 3]
        assert result.backend == "bitplane"

    def test_custom_backend_pluggable(self):
        def fake_runner(circuit, inputs, outcomes, **options):
            return SimulationResult("fake", dict(inputs or {}), [], None)

        register_backend("fake", fake_runner)
        try:
            result = simulate(self._adder(), {"x": 1}, backend="fake")
            assert result.backend == "fake"
            assert result.registers == {"x": 1}
        finally:
            from repro.sim import api

            api._BACKENDS.pop("fake", None)

    def test_forced_outcomes_flow_through_dispatch(self):
        circ = Circuit()
        q = circ.add_qubit("q")
        circ.measure(q, basis="x")
        result = simulate(circ, backend="classical", outcomes=ForcedOutcomes([1]))
        assert result.bits == [1]
