"""Service store tests: single-flight builds, the disk tier, damage = miss."""

import json
import threading
from fractions import Fraction

import pytest

import repro.pipeline.cache as cache_mod
from repro.pipeline.cache import CircuitCache, CircuitSpec
from repro.service.api import canonical_json
from repro.service.store import (
    STORE_SCHEMA_VERSION,
    PersistentCircuitCache,
    spec_fingerprint,
)


def _hammer(target, threads=8):
    """Run ``target(i)`` on N threads released by one barrier; re-raise
    the first worker exception so failures fail the test, not a thread."""
    barrier = threading.Barrier(threads)
    errors = []

    def work(i):
        barrier.wait()
        try:
            target(i)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    workers = [threading.Thread(target=work, args=(i,)) for i in range(threads)]
    for t in workers:
        t.start()
    for t in workers:
        t.join()
    if errors:
        raise errors[0]


class TestSingleFlight:
    """Concurrent cold lookups must cost exactly one construction."""

    def test_one_build_per_spec_under_contention(self, monkeypatch):
        builds = []
        real_build = cache_mod.build_spec
        lock = threading.Lock()

        def counting_build(spec):
            with lock:
                builds.append(spec)
            return real_build(spec)

        monkeypatch.setattr(cache_mod, "build_spec", counting_build)
        cache = CircuitCache()
        specs = [CircuitSpec.make("adder", n, family="cdkpm") for n in (3, 4, 5)]
        results = {}

        def work(i):
            spec = specs[i % len(specs)]
            built = cache.build(spec)
            with lock:
                results.setdefault(spec, set()).add(id(built))

        _hammer(work, threads=12)
        # one construction per distinct spec, every thread saw that object
        assert sorted(s.key for s in builds) == sorted(s.key for s in specs)
        assert all(len(ids) == 1 for ids in results.values())
        assert cache.stats.misses == len(specs)
        assert cache.stats.hits == 12 - len(specs)

    def test_one_compile_per_program_key_under_contention(self):
        cache = CircuitCache()
        spec = CircuitSpec.make("modadd", 3, p=5, family="cdkpm", mbu=True)
        seen = set()
        lock = threading.Lock()

        def work(i):
            program = cache.program(spec)
            with lock:
                seen.add(id(program))

        _hammer(work, threads=8)
        assert len(seen) == 1
        assert cache.stats.program_misses == 1
        assert cache.stats.program_hits == 7

    def test_failed_build_releases_waiters(self, monkeypatch):
        """A builder crash must not strand the threads waiting on it: the
        next claimant retries (and here, succeeds)."""
        real_build = cache_mod.build_spec
        state = {"calls": 0}
        lock = threading.Lock()

        def flaky_build(spec):
            with lock:
                state["calls"] += 1
                if state["calls"] == 1:
                    raise RuntimeError("injected")
            return real_build(spec)

        monkeypatch.setattr(cache_mod, "build_spec", flaky_build)
        cache = CircuitCache()
        spec = CircuitSpec.make("adder", 4, family="cdkpm")
        outcomes = []

        def work(i):
            try:
                outcomes.append(cache.build(spec))
            except RuntimeError:
                outcomes.append(None)

        _hammer(work, threads=6)
        built = [b for b in outcomes if b is not None]
        assert len(built) == 5 and len({id(b) for b in built}) == 1
        assert state["calls"] == 2  # the crash, then exactly one retry

    def test_one_result_compute_under_contention(self, tmp_path):
        cache = PersistentCircuitCache(tmp_path)
        computes = []
        lock = threading.Lock()

        def compute():
            with lock:
                computes.append(1)
            return {"value": Fraction(1, 3)}

        tiers = []

        def work(i):
            payload, tier = cache.result("t", "f" * 64, compute)
            with lock:
                tiers.append((tier, canonical_json(payload)))

        _hammer(work, threads=8)
        assert len(computes) == 1
        assert sorted(t for t, _ in tiers) == ["computed"] + ["memory"] * 7
        assert len({body for _, body in tiers}) == 1  # byte-identical
        assert cache.result_stats.writes == 1


class TestDiskTier:
    def _fingerprint(self, **extra):
        return spec_fingerprint(
            CircuitSpec.make("adder", 4, family="cdkpm"), **extra
        )

    def test_round_trip_is_byte_identical(self, tmp_path):
        """compute -> disk -> reload serializes to the very same bytes,
        Fractions included — the service's restart contract."""
        cache = PersistentCircuitCache(tmp_path)
        fp = self._fingerprint()
        payload = {"mean": Fraction(22, 7), "counts": {"toffoli": 12}, "nested": [1, Fraction(1, 3)]}
        first, tier1 = cache.result("estimate", fp, lambda: payload)
        assert tier1 == "computed"
        cache.drop_memory_results()  # the programmatic restart
        second, tier2 = cache.result("estimate", fp, lambda: pytest.fail("recomputed"))
        assert tier2 == "disk"
        assert canonical_json(second) == canonical_json(first)
        assert second["mean"] == Fraction(22, 7)  # exact, not a float

    def test_fingerprint_distinguishes_extras(self):
        base = self._fingerprint()
        assert self._fingerprint(seed=1) != base
        assert self._fingerprint(seed=2) != self._fingerprint(seed=1)
        assert self._fingerprint() == base  # deterministic

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = PersistentCircuitCache(tmp_path)
        fp = self._fingerprint()
        cache.result("estimate", fp, lambda: {"v": 1})
        path = cache.result_path("estimate", fp)
        path.write_text("{ not json")
        cache.drop_memory_results()
        payload, tier = cache.result("estimate", fp, lambda: {"v": 1})
        assert tier == "computed" and payload == {"v": 1}
        assert cache.result_stats.corrupt == 1
        # and the recompute healed the entry on disk
        cache.drop_memory_results()
        assert cache.result("estimate", fp, lambda: None)[1] == "disk"

    def test_checksum_mismatch_is_a_miss(self, tmp_path):
        cache = PersistentCircuitCache(tmp_path)
        fp = self._fingerprint()
        cache.result("estimate", fp, lambda: {"v": 1})
        path = cache.result_path("estimate", fp)
        entry = json.loads(path.read_text())
        entry["payload"] = {"v": 2}  # tampered payload, stale checksum
        path.write_text(json.dumps(entry))
        cache.drop_memory_results()
        _, tier = cache.result("estimate", fp, lambda: {"v": 1})
        assert tier == "computed"
        assert cache.result_stats.corrupt == 1

    def test_stale_schema_is_a_miss(self, tmp_path):
        cache = PersistentCircuitCache(tmp_path)
        fp = self._fingerprint()
        cache.result("estimate", fp, lambda: {"v": 1})
        path = cache.result_path("estimate", fp)
        entry = json.loads(path.read_text())
        assert entry["schema"] == STORE_SCHEMA_VERSION
        entry["schema"] = STORE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(entry))
        cache.drop_memory_results()
        _, tier = cache.result("estimate", fp, lambda: {"v": 1})
        assert tier == "computed"
        assert cache.result_stats.stale == 1

    def test_foreign_family_is_a_miss(self, tmp_path):
        """An entry can never answer for a family it wasn't stored under,
        even if a path collision (or a copy) puts it there."""
        import shutil

        cache = PersistentCircuitCache(tmp_path)
        fp = self._fingerprint()
        cache.result("estimate", fp, lambda: {"v": 1})
        src = cache.result_path("estimate", fp)
        dst = cache.result_path("rows", fp)
        dst.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(src, dst)
        _, tier = cache.result("rows", fp, lambda: {"v": 2})
        assert tier == "computed"
        assert cache.result_stats.stale == 1

    def test_memory_lru_is_bounded(self, tmp_path):
        cache = PersistentCircuitCache(tmp_path, result_maxsize=2)
        for i in range(5):
            cache.result("t", f"{i:064d}", lambda i=i: {"i": i})
        assert len(cache._results) == 2
        # evicted entries still come back from disk
        _, tier = cache.result("t", f"{0:064d}", lambda: pytest.fail("recomputed"))
        assert tier == "disk"

    def test_stats_dict_shape(self, tmp_path):
        cache = PersistentCircuitCache(tmp_path)
        cache.result("t", "a" * 64, lambda: {"v": 1})
        stats = cache.stats_dict()
        assert stats["result_tier"]["writes"] == 1
        assert stats["result_tier"]["misses"] == 1
        assert stats["memory_results"] == 1
        assert "circuit_cache" in stats and "hit_ratio" in stats["circuit_cache"]
