"""Shared statistical assertions with an explicit false-positive budget.

Every randomized acceptance test in the suite runs with a *fixed* seed, so
a failure is always reproducible — but the assertion thresholds should
still come from honest sampling theory, not hand-tuned sigmas.  These
helpers make the trade explicit: each assertion names its false-positive
``budget`` (the probability a perfectly-correct implementation would fail
the check if the seed were drawn fresh), and the z-quantile is derived
from it via ``statistics.NormalDist().inv_cdf`` rather than a magic
``4 * stderr``.

The default budget of 1e-6 keeps the whole suite's aggregate false-alarm
probability negligible while still detecting rate errors of a few percent
at the 4096-lane scale the noise tests use.
"""

from __future__ import annotations

import math
import statistics
from fractions import Fraction

DEFAULT_BUDGET = 1e-6


def z_quantile(budget: float) -> float:
    """Two-sided normal quantile spending ``budget`` false-positive mass."""
    if not 0.0 < budget < 1.0:
        raise ValueError(f"budget must lie in (0, 1), got {budget}")
    return statistics.NormalDist().inv_cdf(1.0 - budget / 2.0)


def binomial_interval(
    successes: int, trials: int, *, budget: float = DEFAULT_BUDGET
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Unlike the naive Wald interval it stays inside [0, 1] and behaves at
    the boundary (0 or ``trials`` successes), which the noise tests hit
    for the coherent rows (success rate exactly 1).
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} outside [0, {trials}]")
    z = z_quantile(budget)
    phat = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (phat + z2 / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(phat * (1.0 - phat) / trials + z2 / (4.0 * trials * trials))
        / denom
    )
    return max(0.0, center - half), min(1.0, center + half)


def assert_binomial_rate(
    successes: int,
    trials: int,
    expected_rate: float,
    *,
    budget: float = DEFAULT_BUDGET,
    context: str = "",
) -> None:
    """Assert ``successes``/``trials`` is consistent with ``expected_rate``.

    Fails only when the expected rate falls outside the Wilson interval
    spending ``budget`` false-positive probability.
    """
    lo, hi = binomial_interval(successes, trials, budget=budget)
    assert lo <= expected_rate <= hi, (
        f"{context + ': ' if context else ''}observed {successes}/{trials} "
        f"= {successes / trials:.6f}; expected rate {expected_rate:.6f} "
        f"outside the {budget:g}-budget Wilson interval [{lo:.6f}, {hi:.6f}]"
    )


def assert_mean_close(
    mean,
    expected,
    stderr: float,
    *,
    budget: float = DEFAULT_BUDGET,
    context: str = "",
) -> None:
    """Assert a sample mean matches a hypothesized value within the budget.

    ``mean`` may be exact (a :class:`fractions.Fraction`, as
    :class:`repro.sim.bitplane.LaneTallyStats` produces); ``stderr == 0``
    demands exact equality (deterministic circuits).
    """
    deviation = float(Fraction(mean) - Fraction(expected))
    if stderr == 0.0:
        assert deviation == 0.0, (
            f"{context + ': ' if context else ''}zero-variance sample has "
            f"mean {float(mean)} != expected {float(expected)}"
        )
        return
    z = z_quantile(budget)
    assert abs(deviation) <= z * stderr, (
        f"{context + ': ' if context else ''}mean {float(mean):.6f} deviates "
        f"from expected {float(expected):.6f} by {abs(deviation):.6f} "
        f"> {z:.3f} * stderr ({stderr:.6f}) at budget {budget:g}"
    )
