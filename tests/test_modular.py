"""Quantum-quantum modular addition (props 3.2-3.11, thms 3.6/4.2-4.9)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.modular import (
    build_controlled_modadd,
    build_modadd,
    build_modadd_vbe_original,
)
from repro.sim import ConstantOutcomes, RandomOutcomes, run_classical

VARIANTS = [
    ("cdkpm", None),  # prop 3.4
    ("gidney", None),  # prop 3.5
    ("vbe", None),  # the "(4 adder) VBE" row
    ("gidney", "cdkpm"),  # thm 3.6 hybrid
]


def _run(built, inputs, mbu, seed):
    outcomes = ConstantOutcomes(seed % 2) if mbu else RandomOutcomes(seed)
    return run_classical(built.circuit, inputs, outcomes=outcomes)


class TestModAdd:
    @pytest.mark.parametrize("family,mid", VARIANTS)
    @pytest.mark.parametrize("mbu", [False, True])
    def test_exhaustive_n3(self, family, mid, mbu):
        n, p = 3, 7
        for x in range(p):
            for y in range(p):
                built = build_modadd(n, p, family, mid, mbu=mbu)
                out = _run(built, {"x": x, "y": y}, mbu, seed=x * p + y)
                assert out["y"] == (x + y) % p
                assert out["x"] == x
                assert out["t"] == 0 and out["work"] == 0

    @pytest.mark.parametrize("mbu", [False, True])
    def test_both_mbu_branches(self, mbu):
        """Force the MBU correction branch on and off explicitly."""
        n, p = 3, 5
        for outcome in (0, 1):
            built = build_modadd(n, p, "cdkpm", mbu=True)
            out = run_classical(
                built.circuit, {"x": 3, "y": 4}, outcomes=ConstantOutcomes(outcome)
            )
            assert out["y"] == (3 + 4) % p
            assert out["t"] == 0

    @pytest.mark.parametrize("family,mid", VARIANTS)
    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_random_wide(self, family, mid, data):
        n = data.draw(st.integers(min_value=4, max_value=20))
        p = data.draw(st.integers(min_value=2, max_value=(1 << n) - 1))
        x = data.draw(st.integers(min_value=0, max_value=p - 1))
        y = data.draw(st.integers(min_value=0, max_value=p - 1))
        mbu = data.draw(st.booleans())
        built = build_modadd(n, p, family, mid, mbu=mbu)
        out = _run(built, {"x": x, "y": y}, mbu, seed=n + p)
        assert out["y"] == (x + y) % p

    def test_non_coprime_and_small_moduli(self):
        """p need not be prime or odd."""
        for p in (2, 4, 6, 8):
            n = 4
            for x in range(p):
                for y in range(p):
                    built = build_modadd(n, p, "cdkpm")
                    out = _run(built, {"x": x, "y": y}, False, seed=0)
                    assert out["y"] == (x + y) % p

    def test_bad_modulus_rejected(self):
        with pytest.raises(ValueError):
            build_modadd(3, 8, "cdkpm")
        with pytest.raises(ValueError):
            build_modadd(3, 0, "cdkpm")


class TestVBEOriginal:
    @pytest.mark.parametrize("mbu", [False, True])
    def test_exhaustive(self, mbu):
        n, p = 3, 7
        for x in range(p):
            for y in range(p):
                built = build_modadd_vbe_original(n, p, mbu=mbu)
                out = _run(built, {"x": x, "y": y}, mbu, seed=x + y)
                assert out["y"] == (x + y) % p
                assert out["t"] == 0 and out["N"] == 0 and out["carries"] == 0

    def test_qubit_count_matches_table1(self):
        """Table 1: the 5-adder VBE design uses 4n + 2 logical qubits."""
        for n in (4, 9):
            built = build_modadd_vbe_original(n, (1 << n) - 1)
            assert built.logical_qubits == 4 * n + 2

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_random_wide(self, data):
        n = data.draw(st.integers(min_value=4, max_value=16))
        p = data.draw(st.integers(min_value=2, max_value=(1 << n) - 1))
        x = data.draw(st.integers(min_value=0, max_value=p - 1))
        y = data.draw(st.integers(min_value=0, max_value=p - 1))
        built = build_modadd_vbe_original(n, p, mbu=True)
        out = _run(built, {"x": x, "y": y}, True, seed=p)
        assert out["y"] == (x + y) % p


class TestControlledModAdd:
    @pytest.mark.parametrize("family,mid", [("cdkpm", None), ("gidney", None), ("gidney", "cdkpm")])
    @pytest.mark.parametrize("mbu", [False, True])
    def test_exhaustive_small(self, family, mid, mbu):
        n, p = 3, 5
        for ctrl in (0, 1):
            for x in range(p):
                for y in range(p):
                    built = build_controlled_modadd(n, p, family, mid, mbu=mbu)
                    out = _run(built, {"ctrl": ctrl, "x": x, "y": y}, mbu, seed=x - y)
                    assert out["y"] == (ctrl * x + y) % p
                    assert out["t"] == 0 and out["ctrl"] == ctrl

    def test_vbe_has_no_controlled_adder(self):
        with pytest.raises(ValueError, match="no controlled adder"):
            build_controlled_modadd(3, 5, "vbe")
