"""Tests for gate counting (worst/expected/best), block counting and depth."""

from fractions import Fraction

import pytest

from repro.circuits import (
    Circuit,
    LinearCost,
    N,
    WP,
    count_blocks,
    count_gates,
    depth,
    toffoli_depth,
)


def _mbu_demo_circuit():
    """One MBU block whose correction body holds 2 H, 1 ccx, 1 x."""
    circ = Circuit()
    a = circ.add_register("a", 2)
    g = circ.add_qubit("g")
    circ.ccx(a[0], a[1], g)  # compute garbage
    with circ.capture() as body:
        circ.h(g)
        circ.ccx(a[0], a[1], g)
        circ.h(g)
        circ.x(g)
    circ.mbu(g, body)
    return circ


class TestCountModes:
    def test_expected_weights_mbu_body_by_half(self):
        counts = count_gates(_mbu_demo_circuit(), mode="expected")
        assert counts["ccx"] == Fraction(3, 2)
        # 1 always-H (the X-basis measurement) + 2 * 1/2 from the body
        assert counts["h"] == Fraction(2)
        assert counts["x"] == Fraction(1, 2)
        assert counts["measure"] == 1

    def test_worst_counts_full_body(self):
        counts = count_gates(_mbu_demo_circuit(), mode="worst")
        assert counts["ccx"] == 2
        assert counts["h"] == 3
        assert counts["x"] == 1

    def test_best_counts_no_body(self):
        counts = count_gates(_mbu_demo_circuit(), mode="best")
        assert counts["ccx"] == 1
        assert counts["h"] == 1
        assert counts["x"] == 0

    def test_nested_conditionals_multiply_probabilities(self):
        circ = Circuit()
        q = circ.add_qubit("q")
        b1, b2 = circ.new_bit(), circ.new_bit()
        with circ.capture() as inner:
            circ.x(q)
        with circ.capture() as outer:
            circ.cond(b2, inner)
        circ.cond(b1, outer)
        counts = count_gates(circ, mode="expected")
        assert counts["x"] == Fraction(1, 4)

    def test_x_basis_measurement_costs_h_plus_measure(self):
        circ = Circuit()
        q = circ.add_qubit("q")
        circ.measure(q, basis="x")
        counts = count_gates(circ)
        assert counts["h"] == 1 and counts["measure"] == 1

    def test_toffoli_property_sums_ccx_and_ccz(self):
        circ = Circuit()
        a = circ.add_register("a", 3)
        circ.ccx(a[0], a[1], a[2])
        circ.ccz(a[0], a[1], a[2])
        assert count_gates(circ).toffoli == 2

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            count_gates(_mbu_demo_circuit(), mode="average")


class TestBlockCounts:
    def test_blocks_weighted_by_probability(self):
        circ = Circuit()
        q = circ.add_qubit("q")
        with circ.block("QFT"):
            circ.h(q)
        with circ.capture() as body:
            with circ.block("QFT"):
                circ.h(q)
        circ.mbu(q, body)
        blocks = count_blocks(circ, mode="expected")
        assert blocks["QFT"] == Fraction(3, 2)
        assert count_blocks(circ, mode="worst")["QFT"] == 2


class TestDepth:
    def test_serial_vs_parallel(self):
        circ = Circuit()
        a = circ.add_register("a", 4)
        circ.x(a[0])
        circ.x(a[1])  # parallel with the first
        circ.cx(a[0], a[1])  # depends on both
        assert depth(circ) == 2

    def test_toffoli_depth_counts_only_toffoli_layers(self):
        circ = Circuit()
        a = circ.add_register("a", 3)
        circ.h(a[0])
        circ.ccx(a[0], a[1], a[2])
        circ.cx(a[0], a[1])
        circ.ccx(a[0], a[1], a[2])
        assert toffoli_depth(circ) == 2
        assert depth(circ) == 4

    def test_measurement_bit_dependency_orders_conditional(self):
        circ = Circuit()
        q = circ.add_qubit("q")
        r = circ.add_qubit("r")
        bit = circ.measure(q)
        with circ.capture() as body:
            circ.x(r)
        circ.cond(bit, body)
        assert depth(circ) == 2


class TestLinearCost:
    def test_arithmetic(self):
        expr = 8 * N - 2 * N + WP + 1
        assert expr == 6 * N + WP + 1
        assert expr.evaluate(n=4, wp=3) == 28

    def test_fractional_coefficients(self):
        expr = 7 * N / 2
        assert expr.evaluate(n=3) == Fraction(21, 2)
        assert str(expr) == "3.5n"

    def test_str_formatting(self):
        assert str(20 * N + 2 * WP + 22) == "20n + 2|p| + 22"
        assert str(LinearCost.const(0)) == "0"
        assert str(N - 1) == "n - 1"

    def test_missing_symbol_raises(self):
        with pytest.raises(KeyError):
            (N + WP).evaluate(n=3)

    def test_immutability_and_hash(self):
        expr = 2 * N
        with pytest.raises(AttributeError):
            expr.coeffs = {}
        assert hash(2 * N) == hash(N * 2)
