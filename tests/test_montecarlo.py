"""Monte-Carlo expected-cost validation: lanes vs. formulas.

The paper's expected-cost mode weighs every MBU correction by 1/2
(Lemma 4.1: the X-basis measurement is an unbiased coin).  These tests
check that a bit-plane run with *random* per-lane outcomes converges to
exactly those numbers — the statistical leg of the reproduction —
plus the per-lane tally machinery the estimates are built on.

All tests use fixed seeds, so they are deterministic (no flaky-tolerance
games); the acceptance thresholds come from ``tests/stat_helpers.py``,
which derives z-quantiles from an explicit false-positive budget instead
of hand-tuned sigma counts.
"""

from fractions import Fraction

import pytest

from repro.arithmetic import build_adder
from repro.modular import build_modadd
from repro.pipeline import derive_seed, mc_expected_counts, mc_or_none
from repro.sim import RandomOutcomes, run_bitplane, simulate
from tests.stat_helpers import assert_binomial_rate, assert_mean_close


class TestLaneTally:
    def test_lane_mean_equals_engine_tally(self):
        """Per-lane counters and the weighted engine tally agree exactly."""
        built = build_modadd(4, 13, "cdkpm", mbu=True)
        sim = run_bitplane(
            built.circuit, {"x": 5, "y": 9}, batch=256,
            outcomes=RandomOutcomes(3), lane_counts=("ccx", "ccz"),
        )
        stats = sim.lane_tally_stats()
        assert stats.mean == sim.tally["ccx"] + sim.tally["ccz"]
        assert stats.samples == 256

    def test_deterministic_circuit_has_zero_variance(self):
        built = build_adder(5, "cdkpm")  # fully reversible: no measurements
        est = mc_expected_counts(built, batch=64, seed=1)
        assert est.mean == built.counts("expected").toffoli
        assert est.variance == 0.0 and est.stderr == 0.0 and est.ci95 == 0.0

    def test_lane_counts_must_be_requested(self):
        built = build_adder(3, "cdkpm")
        sim = run_bitplane(built.circuit, batch=8)
        with pytest.raises(ValueError, match="lane_counts"):
            sim.lane_tally()


class TestSeedThreading:
    """The simulate() seeding contract (reproducible random mode)."""

    def test_same_seed_same_outcomes(self):
        built = build_modadd(4, 13, "cdkpm", mbu=True)
        runs = [
            simulate(built.circuit, {"x": 3, "y": 7}, backend="bitplane",
                     batch=64, seed=42).bits
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_different_seeds_differ(self):
        built = build_modadd(4, 13, "cdkpm", mbu=True)
        a = simulate(built.circuit, {"x": 3, "y": 7}, backend="bitplane",
                     batch=64, seed=1).bits
        b = simulate(built.circuit, {"x": 3, "y": 7}, backend="bitplane",
                     batch=64, seed=2).bits
        assert a != b

    def test_seed_and_outcomes_mutually_exclusive(self):
        built = build_adder(3, "cdkpm")
        with pytest.raises(ValueError, match="not both"):
            simulate(built.circuit, {}, seed=1, outcomes=RandomOutcomes(2))

    def test_derive_seed_is_stable_and_spread(self):
        assert derive_seed("table1", 4, "cdkpm") == derive_seed("table1", 4, "cdkpm")
        seeds = {derive_seed("t", i) for i in range(64)}
        assert len(seeds) == 64


@pytest.mark.statistical
class TestConvergence:
    """MC expected MBU cost converges to the paper's expected-cost formula
    for the comparator-based modular adder at small n (the satellite's
    headline statistical test)."""

    @pytest.mark.parametrize("family,mid", [("cdkpm", None), ("gidney", "cdkpm")])
    def test_mc_matches_expected_formula(self, family, mid):
        built = build_modadd(4, 13, family, mid, mbu=True)
        expected = built.counts("expected").toffoli
        est = mc_expected_counts(built, batch=4096, seed=derive_seed(family, mid))
        # the MBU correction fires in ~half the lanes
        assert est.stderr > 0
        assert_mean_close(est.mean, expected, est.stderr,
                          context=f"modadd {family}/{mid}")

    def test_error_shrinks_with_more_lanes(self):
        built = build_modadd(4, 13, "cdkpm", mbu=True)
        expected = built.counts("expected").toffoli
        small = mc_expected_counts(built, batch=128, seed=5)
        large = mc_expected_counts(built, batch=8192, seed=5)
        assert large.ci95 < small.ci95
        assert_mean_close(large.mean, expected, large.stderr,
                          context="8192-lane estimate")

    def test_repeats_accumulate_samples(self):
        built = build_modadd(4, 13, "cdkpm", mbu=True)
        est = mc_expected_counts(built, batch=128, repeats=4, seed=9)
        assert est.samples == 512

    def test_bernoulli_variance_of_single_mbu_block(self):
        """CDKPM modadd has one MBU block: per-lane Toffoli count is
        base + Bernoulli(1/2) * correction.  Recover the per-lane coin
        count from the exact mean and test it as the binomial it is —
        then the unbiased sample variance is an algebraic identity."""
        built = build_modadd(4, 13, "cdkpm", mbu=True)
        worst = built.counts("worst").toffoli
        best = built.counts("best").toffoli
        correction = worst - best
        n = 8192
        est = mc_expected_counts(built, batch=n, seed=13)
        fired = int((est.mean - best) * n / correction)  # lanes whose coin hit
        assert_binomial_rate(fired, n, 0.5, context="MBU correction coin")
        expected_var = float(correction) ** 2 * fired * (n - fired) / (n * (n - 1))
        assert est.variance == pytest.approx(expected_var, rel=1e-12)

    def test_qft_circuits_skip_gracefully(self):
        from repro.modular import build_modadd_draper

        built = build_modadd_draper(4, 13, mbu=True)
        assert mc_or_none(built, batch=16, seed=0) is None
