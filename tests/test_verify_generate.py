"""The random circuit generator: determinism, knobs, flavor contracts."""

import random

import pytest

from repro.circuits.ops import Conditional, Gate, MBUBlock, Measurement, iter_flat
from repro.verify.generate import (
    ARITHMETIC_SPECS,
    FLAVORS,
    GeneratorConfig,
    random_case,
    random_lane_inputs,
    random_mixed_circuit,
    random_oracle_circuit,
    random_reversible_circuit,
    seed_sequence,
)


class TestDeterminism:
    @pytest.mark.parametrize("flavor", FLAVORS)
    def test_same_seed_same_case(self, flavor):
        config = GeneratorConfig(flavor=flavor, ops=15, batch=8)
        a = random_case(123, config)
        b = random_case(123, config)
        assert a.circuit.structurally_equal(b.circuit, include_annotations=True)
        assert a.inputs == b.inputs
        assert a.data_registers == b.data_registers

    def test_different_seeds_differ(self):
        config = GeneratorConfig(flavor="mixed", ops=25, batch=8)
        a = random_case(1, config)
        b = random_case(2, config)
        assert not a.circuit.structurally_equal(b.circuit)


class TestConfig:
    def test_unknown_flavor_rejected(self):
        with pytest.raises(ValueError, match="flavor"):
            GeneratorConfig(flavor="quantum")

    def test_width_floor(self):
        with pytest.raises(ValueError, match="width"):
            GeneratorConfig(width=2)

    def test_ops_knob_scales_circuit(self):
        small = random_case(5, GeneratorConfig(flavor="unitary", ops=5, batch=4))
        large = random_case(5, GeneratorConfig(flavor="unitary", ops=50, batch=4))
        assert len(large.circuit.ops) > len(small.circuit.ops)

    def test_width_knob_sets_register_size(self):
        case = random_case(5, GeneratorConfig(flavor="unitary", width=9, batch=4))
        assert len(case.circuit.registers["a"]) == 9

    def test_batch_knob_sets_lane_count(self):
        case = random_case(5, GeneratorConfig(flavor="mixed", batch=17))
        assert case.batch == 17
        assert all(len(v) == 17 for v in case.inputs.values())


class TestFlavorContracts:
    def test_unitary_flavor_has_no_measurements(self):
        for seed in range(5):
            case = random_case(seed, GeneratorConfig(flavor="unitary"))
            assert case.unitary
            assert not any(
                isinstance(op, (Measurement, MBUBlock))
                for op in iter_flat(case.circuit.ops)
            )

    def test_mixed_flavor_exercises_full_vocabulary(self):
        """Across a handful of seeds the mixed generator must produce every
        construct class the backends dispatch on."""
        seen = set()
        for seed in range(10):
            circ = random_mixed_circuit(random.Random(seed))
            for op in iter_flat(circ.ops):
                seen.add(type(op).__name__)
        assert {"Gate", "Measurement", "Conditional", "MBUBlock"} <= seen

    def test_oracle_flavor_is_marked_and_uncomputes(self):
        from repro.sim import simulate

        for seed in range(5):
            case = random_case(seed, GeneratorConfig(flavor="oracle"))
            assert case.marked
            result = simulate(case.circuit, {"a": 3}, backend="classical")
            assert result.registers == {"a": 3, "g": 0}  # coherent uncompute

    def test_oracle_circuit_rewrites_under_insert_mbu(self):
        from repro.circuits import count_gates
        from repro.transform import apply_transforms

        circ = random_oracle_circuit(random.Random(3))
        out = apply_transforms(circ, ["insert_mbu"])
        assert count_gates(out)["measure"] == 1

    def test_reversible_circuit_matches_legacy_shape(self):
        circ = random_reversible_circuit(random.Random(0), 20, width=5)
        assert set(circ.registers) == {"a", "anc"}
        assert len(circ.registers["a"]) == 5

    @pytest.mark.parametrize("seed", range(4))
    def test_arithmetic_inputs_are_domain_valid(self, seed):
        case = random_case(seed, GeneratorConfig(flavor="arithmetic", batch=16))
        spec_key = case.meta["spec"]
        assert any(kind in spec_key for kind, _, _ in ARITHMETIC_SPECS)
        for name in case.data_registers:
            width = len(case.circuit.registers[name])
            assert all(0 <= v < (1 << width) for v in case.inputs[name])


class TestLaneInputs:
    def test_limits_and_exclusions(self):
        circ = random_mixed_circuit(random.Random(1))
        inputs = random_lane_inputs(
            random.Random(2), circ, 12, exclude=("g",), limits={"d": 5}
        )
        assert "g" not in inputs
        assert len(inputs["d"]) == 12
        assert all(0 <= v < 5 for v in inputs["d"])


class TestSeedSequence:
    def test_default_is_a_range(self):
        assert seed_sequence(4) == [0, 1, 2, 3]
        assert seed_sequence(3, base=10) == [10, 11, 12]

    def test_env_override_collapses_to_one_seed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "77")
        assert seed_sequence(12) == [77]
        monkeypatch.setenv("REPRO_SEED", "0x10")
        assert seed_sequence(3) == [16]


class TestConftestFixtures:
    def test_repro_seed_is_deterministic(self, repro_seed, repro_rng):
        assert isinstance(repro_seed, int)
        # Re-deriving the stream from the reported seed replays it — the
        # exact property the failure-report section relies on.
        assert random.Random(repro_seed).random() == pytest.approx(
            repro_rng.random()
        )

    def test_repro_seed_honours_env(self, monkeypatch):
        import conftest

        monkeypatch.setenv("REPRO_SEED", "99")
        assert conftest._seed_for("any::nodeid") == 99
