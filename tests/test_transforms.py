"""Unit + acceptance tests for the repro.transform pass layer.

Covers the Pass/PassManager framework, each concrete pass, the
Lemma-4.1-as-rewrite equivalence (``insert_mbu`` applied to the builders'
reference emission reproduces the hand-built MBU circuits for every
Table 1-6 row), exact T-counts vs ``resources/formulas.py``, and the
compiled bit-plane program lowering.
"""

from fractions import Fraction

import pytest

from repro.arithmetic import build_adder, build_comparator, build_controlled_adder
from repro.circuits import (
    Circuit,
    Conditional,
    Gate,
    MBUBlock,
    Measurement,
    count_gates,
    reference_emission,
)
from repro.modular import build_modadd
from repro.pipeline.cache import CircuitSpec, build_spec
from repro.resources import (
    EXACT_TABLE2,
    EXACT_TABLE3,
    T_PER_TOFFOLI,
    predicted_t_count,
    t_count,
)
from repro.resources.tables import TABLE_SPECS
from repro.sim import (
    BitplaneSimulator,
    ForcedOutcomes,
    RandomOutcomes,
    StatevectorSimulator,
    simulate,
)
from repro.transform import (
    PASSES,
    CancelAdjacentPass,
    PassManager,
    apply_transforms,
    available_passes,
    compile_program,
    parse_transform_chain,
    resolve_pass,
)


class TestFramework:
    def test_all_five_passes_registered(self):
        assert set(available_passes()) >= {
            "invert",
            "insert_mbu",
            "lower_toffoli",
            "decompose_clifford_t",
            "cancel_adjacent",
        }

    def test_resolve_by_name_class_and_instance(self):
        by_name = resolve_pass("cancel_adjacent")
        by_class = resolve_pass(CancelAdjacentPass)
        instance = CancelAdjacentPass()
        assert by_name.name == by_class.name == "cancel_adjacent"
        assert resolve_pass(instance) is instance

    def test_unknown_pass_rejected(self):
        with pytest.raises(ValueError, match="unknown transform pass"):
            resolve_pass("nope")
        with pytest.raises(ValueError, match="unknown transform pass"):
            parse_transform_chain("lower_toffoli,nope")

    def test_parse_transform_chain_forms(self):
        assert parse_transform_chain(None) == ()
        assert parse_transform_chain("") == ()
        assert parse_transform_chain("invert, cancel_adjacent") == (
            "invert",
            "cancel_adjacent",
        )
        assert parse_transform_chain(["invert"]) == ("invert",)

    def test_manager_runs_in_order_and_input_untouched(self):
        circ = Circuit("c")
        q = circ.add_register("q", 2)
        circ.t(q[0])
        circ.tdg(q[0])
        circ.ccx(q[0], q[1], circ.add_qubit("t"))
        before = list(circ.ops)
        manager = PassManager("cancel_adjacent,lower_toffoli")
        out = manager.run(circ)
        assert circ.ops == before  # pure: input untouched
        assert manager.names == ("cancel_adjacent", "lower_toffoli")
        names = [op.name for op in out.ops if isinstance(op, Gate)]
        assert "t" not in names and "tdg" not in names  # cancelled first
        assert any(isinstance(op, Measurement) for op in out.ops)  # then lowered

    def test_apply_transforms_empty_chain_is_identity(self):
        circ = Circuit("c")
        circ.add_qubit("q")
        assert apply_transforms(circ, ()) is circ
        assert apply_transforms(circ, None) is circ


class TestInvert:
    def test_invert_adder_is_subtractor(self):
        built = build_adder(4, "cdkpm")
        inv = apply_transforms(built.circuit, ["invert"])
        for x, y in [(3, 10), (7, 0), (15, 15)]:
            fwd = simulate(built.circuit, {"x": x, "y": y}).registers["y"]
            back = simulate(inv, {"x": x, "y": fwd}).registers["y"]
            assert back == y

    def test_invert_recurses_into_conditionals(self):
        circ = Circuit()
        q = circ.add_register("q", 2)
        bit = circ.new_bit()
        with circ.capture() as body:
            circ.s(q[0])
            circ.cx(q[0], q[1])
        circ.cond(bit, body)
        inv = apply_transforms(circ, ["invert"])
        (cond,) = inv.ops
        assert isinstance(cond, Conditional)
        assert [op.name for op in cond.body] == ["cx", "sdg"]

    def test_invert_rejects_measurement_based_circuits(self):
        built = build_adder(3, "gidney")
        with pytest.raises(ValueError, match="remark 2.23"):
            apply_transforms(built.circuit, ["invert"])


class TestCancelAdjacent:
    def test_cancels_pairs_and_chains(self):
        circ = Circuit()
        q = circ.add_register("q", 3)
        circ.cx(q[0], q[1])
        circ.t(q[2])
        circ.tdg(q[2])
        circ.cx(q[0], q[1])  # exposed after the t/tdg pair cancels
        out = apply_transforms(circ, ["cancel_adjacent"])
        assert out.ops == []

    def test_parametric_pairs_cancel(self):
        circ = Circuit()
        q = circ.add_register("q", 2)
        circ.cphase(q[0], q[1], 0.75)
        circ.cphase(q[0], q[1], -0.75)
        out = apply_transforms(circ, ["cancel_adjacent"])
        assert out.ops == []

    def test_measurement_is_a_barrier(self):
        circ = Circuit()
        q = circ.add_qubit("q")
        circ.x(q)
        circ.measure(q)
        circ.x(q)
        out = apply_transforms(circ, ["cancel_adjacent"])
        assert len(out.ops) == 3

    def test_non_inverse_neighbours_survive(self):
        circ = Circuit()
        q = circ.add_register("q", 2)
        circ.cx(q[0], q[1])
        circ.cx(q[1], q[0])
        out = apply_transforms(circ, ["cancel_adjacent"])
        assert len(out.ops) == 2

    def test_recurses_into_mbu_bodies(self):
        circ = Circuit()
        g = circ.add_qubit("g")
        with circ.capture() as body:
            circ.h(g)
            circ.x(g)
            circ.x(g)
            circ.h(g)
        circ.mbu(g, body)
        out = apply_transforms(circ, ["cancel_adjacent"])
        (block,) = out.ops
        assert isinstance(block, MBUBlock)
        assert block.body == ()


class TestInsertMBU:
    """Lemma 4.1 as a rewrite: insert_mbu(reference) == hand-built MBU."""

    def test_gidney_adder_rewrite_is_exact(self):
        hand = build_adder(4, "gidney")
        with reference_emission():
            ref = build_adder(4, "gidney")
        assert not any(isinstance(op, Measurement) for op in ref.circuit.ops)
        rewritten = apply_transforms(ref.circuit, ["insert_mbu"])
        assert rewritten.structurally_equal(hand.circuit)
        assert rewritten.bit_labels == hand.circuit.bit_labels

    def test_modadd_mbu_rewrite_is_exact(self):
        for family in ("cdkpm", "gidney"):
            hand = build_modadd(4, 13, family, mbu=True)
            with reference_emission():
                ref = build_modadd(4, 13, family, mbu=True)
            rewritten = apply_transforms(ref.circuit, ["insert_mbu"])
            assert rewritten.structurally_equal(hand.circuit), family
            assert count_gates(rewritten) == count_gates(hand.circuit)

    @pytest.mark.parametrize("table", sorted(TABLE_SPECS))
    def test_every_table_row_rewrite_matches_hand_built(self, table):
        """Acceptance: for every Table 1-6 row (all variants), insert_mbu on
        the reference emission reproduces the hand-built expected-mode
        counts (and the hand-built op stream)."""
        spec = TABLE_SPECS[table]
        n = 4
        p, a = spec.defaults(n)
        for row in spec.rows:
            for variant, circuit_spec in row.specs(n, p=p, a=a).items():
                hand = build_spec(circuit_spec)
                with reference_emission():
                    ref = build_spec(circuit_spec)
                rewritten = apply_transforms(ref.circuit, ["insert_mbu"])
                assert count_gates(rewritten, "expected") == hand.counts("expected"), (
                    f"{table}/{row.key}/{variant}"
                )
                assert rewritten.structurally_equal(hand.circuit), (
                    f"{table}/{row.key}/{variant}"
                )

    def test_no_markers_is_identity(self):
        built = build_adder(3, "cdkpm")
        out = apply_transforms(built.circuit, ["insert_mbu"])
        assert out.structurally_equal(built.circuit)

    def test_malformed_and_region_rejected(self):
        from repro.circuits import uncompute_label

        circ = Circuit()
        q = circ.add_register("q", 3)
        label = uncompute_label("uncompute-and", q[2])
        circ.begin(label)
        circ.cx(q[0], q[2])  # not a ccx: malformed
        circ.end(label)
        with pytest.raises(ValueError, match="malformed"):
            apply_transforms(circ, ["insert_mbu"])

    def test_unterminated_region_rejected(self):
        from repro.circuits import uncompute_label

        circ = Circuit()
        q = circ.add_register("q", 3)
        circ.begin(uncompute_label("uncompute-and", q[2]))
        circ.ccx(q[0], q[1], q[2])
        with pytest.raises(ValueError, match="unterminated"):
            apply_transforms(circ, ["insert_mbu"])


class TestLowerToffoli:
    def test_counts(self):
        built = build_adder(3, "cdkpm")
        before = count_gates(built.circuit, "expected")
        out = apply_transforms(built.circuit, ["lower_toffoli"])
        after = count_gates(out, "expected")
        ccx = before["ccx"]
        assert after["ccx"] == ccx  # one AND-compute per lowered Toffoli
        assert after["cx"] == before["cx"] + ccx
        assert after["measure"] == before["measure"] + ccx
        assert after["cz"] == before["cz"] + Fraction(ccx, 2)  # expected mode

    def test_adds_one_shared_ancilla(self):
        built = build_adder(3, "cdkpm")
        out = apply_transforms(built.circuit, ["lower_toffoli"])
        assert out.num_qubits == built.circuit.num_qubits + 1

    def test_no_toffoli_no_ancilla(self):
        circ = Circuit()
        q = circ.add_register("q", 2)
        circ.cx(q[0], q[1])
        out = apply_transforms(circ, ["lower_toffoli"])
        assert out.num_qubits == 2
        assert out.structurally_equal(circ)

    def test_statevector_equivalence_on_superpositions(self):
        """The AND+uncompute lowering is exact as a channel, so it must hold
        on non-basis inputs too (up to global phase per branch)."""
        circ = Circuit()
        q = circ.add_register("q", 3)
        circ.h(q[0])
        circ.h(q[1])
        circ.ccx(q[0], q[1], q[2])
        circ.cx(q[2], q[0])
        lowered = apply_transforms(circ, ["lower_toffoli"])
        for outcome in (0, 1):
            sv0 = StatevectorSimulator(circ)
            sv0.run()
            sv1 = StatevectorSimulator(lowered, outcomes=ForcedOutcomes([outcome]))
            sv1.run()
            ref = sv0.register_values()
            got = sv1.register_values()
            # compare amplitudes on the original register (ancilla is |0>)
            assert {k[0] for k in got} == {k[0] for k in ref}
            for key, amp in ref.items():
                matches = [a for k, a in got.items() if k[0] == key[0]]
                assert len(matches) == 1
                assert abs(abs(matches[0]) - abs(amp)) < 1e-9


class TestDecomposeCliffordT:
    def test_ccx_network_is_exact_on_statevector(self):
        import itertools

        import numpy as np

        for value in range(8):
            circ = Circuit()
            q = circ.add_register("q", 3)
            circ.ccx(q[0], q[1], q[2])
            dec = apply_transforms(circ, ["decompose_clifford_t"])
            sv = StatevectorSimulator(dec)
            sv.set_basis_state({"q": value})
            sv.run()
            (key, amp), = sv.register_values().items()
            expected = value ^ (0b100 if (value & 0b011) == 0b011 else 0)
            assert key == (expected,)
            assert abs(amp - 1.0) < 1e-9

    def test_ccz_and_cswap_decompose(self):
        circ = Circuit()
        q = circ.add_register("q", 3)
        circ.ccz(q[0], q[1], q[2])
        circ.cswap(q[0], q[1], q[2])
        dec = apply_transforms(circ, ["decompose_clifford_t"])
        names = {op.name for op in dec.ops}
        assert names <= {"h", "t", "tdg", "cx"}
        # cswap semantics survive: |1,0,1> -> |1,1,0>
        sv = StatevectorSimulator(dec)
        sv.set_basis_state({"q": 0b101})
        sv.run()
        (key, amp), = sv.register_values().items()
        assert key == (0b011,)

    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_gidney_adder_t_count_matches_formulas(self, n):
        """Acceptance: T-counts equal resources/formulas.py × 7 exactly."""
        built = build_adder(n, "gidney")
        measured = t_count(built)
        toffoli_formula = EXACT_TABLE2["gidney"]["toffoli"].evaluate(n=n)
        assert measured == T_PER_TOFFOLI * toffoli_formula == 7 * n
        assert measured == predicted_t_count(built)

    @pytest.mark.parametrize("n", [2, 4])
    def test_gidney_controlled_adder_t_count_matches_formulas(self, n):
        built = build_controlled_adder(n, "gidney", method="native")
        toffoli_formula = EXACT_TABLE3["gidney"]["toffoli"].evaluate(n=n)
        assert t_count(built) == T_PER_TOFFOLI * toffoli_formula
        assert t_count(built) == predicted_t_count(built)

    def test_t_count_weights_mbu_bodies(self):
        """A Toffoli inside an MBU correction branch costs 3.5 T expected."""
        built = build_modadd(3, 5, "cdkpm", mbu=True)
        assert t_count(built, "expected") == predicted_t_count(built, "expected")
        assert t_count(built, "worst") == predicted_t_count(built, "worst")
        assert t_count(built, "worst") > t_count(built, "expected")


class TestCompiledPrograms:
    def _lanes(self, p, batch):
        xs = [pow(3, i + 1, p) for i in range(batch)]
        ys = [pow(5, i + 1, p) for i in range(batch)]
        return xs, ys

    @pytest.mark.parametrize("family", ["cdkpm", "gidney", "vbe"])
    @pytest.mark.parametrize("tally", [True, False])
    def test_compiled_matches_interpretive(self, family, tally):
        p = 29
        built = build_modadd(5, p, family, mbu=True)
        batch = 192
        xs, ys = self._lanes(p, batch)
        interp = BitplaneSimulator(
            built.circuit, batch=batch, outcomes=RandomOutcomes(11), tally=tally
        )
        interp.set_register("x", xs)
        interp.set_register("y", ys)
        interp.run()
        comp = BitplaneSimulator(
            built.circuit, batch=batch, outcomes=RandomOutcomes(11), tally=tally
        )
        comp.set_register("x", xs)
        comp.set_register("y", ys)
        comp.run_compiled()
        assert comp.get_register("y") == interp.get_register("y")
        assert (comp.planes == interp.planes).all()
        assert (comp.bit_planes == interp.bit_planes).all()
        if tally:
            assert comp.tally == interp.tally

    def test_compiled_via_simulate(self):
        built = build_modadd(4, 13, "gidney", mbu=True)
        ref = simulate(built.circuit, {"x": 5, "y": 9}, backend="bitplane", seed=3)
        out = simulate(
            built.circuit, {"x": 5, "y": 9}, backend="bitplane", seed=3, compiled=True
        )
        assert out.registers == ref.registers
        assert out.bits == ref.bits
        assert out.tally == ref.tally

    def test_precompiled_program_reuse(self):
        built = build_modadd(4, 13, "cdkpm", mbu=True)
        program = compile_program(built.circuit, tally=False)
        out = simulate(
            built.circuit,
            {"x": 3, "y": 7},
            backend="bitplane",
            seed=1,
            program=program,
            tally=False,
        )
        assert all(v == 10 for v in out.registers["y"])

    def test_phase_gates_dropped_but_tallied(self):
        circ = Circuit()
        q = circ.add_register("q", 2)
        circ.cx(q[0], q[1])
        circ.cz(q[0], q[1])
        circ.t(q[0])
        program = compile_program(circ, tally=True)
        census = program.counts_static()
        assert census.get("OP_CX") == 1
        assert "OP_CZ" not in census  # no such opcode: phase gates drop
        recorded = [name for names in program.tallies for name in names]
        assert sorted(recorded) == ["cx", "cz", "t"]

    def test_compile_rejects_bare_hadamard(self):
        from repro.sim import UnsupportedGateError

        circ = Circuit()
        circ.h(circ.add_qubit("q"))
        with pytest.raises(UnsupportedGateError):
            compile_program(circ)

    def test_layout_mismatch_rejected(self):
        circ_a = Circuit()
        circ_a.add_register("q", 2)
        circ_b = Circuit()
        circ_b.add_register("q", 3)
        program = compile_program(circ_a)
        sim = BitplaneSimulator(circ_b, batch=8)
        with pytest.raises(ValueError, match="layout"):
            sim.run_compiled(program)

    def test_tally_metadata_mismatch_rejected(self):
        built = build_modadd(3, 5, "cdkpm", mbu=True)
        program = compile_program(built.circuit, tally=False)
        sim = BitplaneSimulator(built.circuit, batch=8, tally=True)
        with pytest.raises(ValueError, match="tally=False"):
            sim.run_compiled(program)

    def test_transforms_and_program_cannot_combine(self):
        built = build_modadd(3, 5, "cdkpm", mbu=True)
        program = compile_program(built.circuit, tally=False)
        with pytest.raises(ValueError, match="not both"):
            simulate(
                built.circuit, {"x": 1, "y": 2}, backend="bitplane",
                transforms=["cancel_adjacent"], program=program, tally=False,
            )

    def test_lane_counts_unsupported_in_scalar_compiled_mode(self):
        """The scalar (fused=False) VM has no per-lane counters; the fused
        path supports them (see tests/test_fused_vm.py)."""
        built = build_modadd(3, 5, "cdkpm", mbu=True)
        sim = BitplaneSimulator(built.circuit, batch=8, lane_counts=("ccx",))
        with pytest.raises(ValueError, match="lane_counts"):
            sim.run_compiled(fused=False)

    def test_zero_active_branch_is_jumped(self):
        """A conditional whose bit is never set must leave state untouched
        (and its body instructions unexecuted)."""
        circ = Circuit()
        q = circ.add_register("q", 2)
        bit = circ.new_bit()
        with circ.capture() as body:
            circ.x(q[0])
            circ.x(q[1])
        circ.cond(bit, body)
        sim = BitplaneSimulator(circ, batch=16)
        sim.run_compiled()
        assert sim.get_register("q") == [0] * 16
        tally = sim.tally
        assert tally["x"] == 0


class TestSpecTransforms:
    def test_transform_chain_is_part_of_the_cache_key(self):
        plain = CircuitSpec.make("adder", 4, family="gidney")
        lowered = CircuitSpec.make(
            "adder", 4, family="gidney", transforms=("lower_toffoli",)
        )
        assert plain != lowered
        assert hash(plain) != hash(lowered)
        assert "lower_toffoli" in lowered.key and "lower_toffoli" not in plain.key

    def test_build_spec_applies_transforms(self):
        spec = CircuitSpec.make("adder", 3, family="cdkpm", transforms=("lower_toffoli",))
        built = build_spec(spec)
        plain = build_spec(CircuitSpec.make("adder", 3, family="cdkpm"))
        assert built.circuit.num_qubits == plain.circuit.num_qubits + 1
        assert built.meta["transforms"] == ("lower_toffoli",)
        # the pass-allocated ancilla register counts as an ancilla
        assert built.ancilla_count == plain.ancilla_count + 1

    def test_unknown_transform_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown transform pass"):
            CircuitSpec.make("adder", 3, family="cdkpm", transforms=("nope",))
