"""Modular addition by a constant (props 3.13-3.19, thms 3.14/3.17/4.10-4.12)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.modular import (
    build_controlled_modadd_const,
    build_modadd_const,
)
from repro.sim import ConstantOutcomes, RandomOutcomes, run_classical

ARCHS = ["generic", "vbe", "takahashi"]


def _run(built, inputs, mbu, seed):
    outcomes = ConstantOutcomes(seed % 2) if mbu else RandomOutcomes(seed)
    return run_classical(built.circuit, inputs, outcomes=outcomes)


class TestModAddConst:
    @pytest.mark.parametrize("arch", ARCHS)
    @pytest.mark.parametrize("family", ["cdkpm", "gidney"])
    @pytest.mark.parametrize("mbu", [False, True])
    def test_exhaustive_small(self, arch, family, mbu):
        n, p = 3, 7
        for a in range(p):
            for x in range(p):
                built = build_modadd_const(n, p, a, family, arch, mbu=mbu)
                out = _run(built, {"x": x}, mbu, seed=a + x)
                assert out["x"] == (x + a) % p
                assert out["t"] == 0

    @pytest.mark.parametrize("arch", ARCHS)
    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_random_wide(self, arch, data):
        n = data.draw(st.integers(min_value=4, max_value=20))
        p = data.draw(st.integers(min_value=2, max_value=(1 << n) - 1))
        a = data.draw(st.integers(min_value=0, max_value=p - 1))
        x = data.draw(st.integers(min_value=0, max_value=p - 1))
        mbu = data.draw(st.booleans())
        built = build_modadd_const(n, p, a, "cdkpm", arch, mbu=mbu)
        out = _run(built, {"x": x}, mbu, seed=p ^ a)
        assert out["x"] == (x + a) % p

    def test_constant_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            build_modadd_const(3, 5, 5, "cdkpm")
        with pytest.raises(ValueError):
            build_modadd_const(3, 5, -1, "cdkpm")

    def test_takahashi_beats_vbe_arch(self):
        """Prop 3.15 merges the first two VBE-architecture blocks: for the
        same family it needs strictly fewer Toffolis."""
        n, p, a = 16, 65521, 12345
        taka = build_modadd_const(n, p, a, "cdkpm", "takahashi").counts().toffoli
        vbe = build_modadd_const(n, p, a, "cdkpm", "vbe").counts().toffoli
        assert taka < vbe

    def test_takahashi_tof_count_is_6n(self):
        """Prop 3.15 with CDKPM parts: exactly 6n Toffolis; thm 4.11's MBU
        version: exactly 5n expected (the paper's 16.7% saving)."""
        n, p, a = 12, 4001, 1234
        plain = build_modadd_const(n, p, a, "cdkpm", "takahashi")
        mbu = build_modadd_const(n, p, a, "cdkpm", "takahashi", mbu=True)
        assert plain.counts().toffoli == 6 * n
        assert mbu.counts("expected").toffoli == 5 * n
        assert mbu.counts("worst").toffoli == 6 * n
        assert mbu.counts("best").toffoli == 4 * n


class TestControlledModAddConst:
    @pytest.mark.parametrize("arch", ["generic", "vbe"])
    @pytest.mark.parametrize("mbu", [False, True])
    def test_exhaustive_small(self, arch, mbu):
        n, p = 3, 5
        for ctrl in (0, 1):
            for a in range(p):
                for x in range(p):
                    built = build_controlled_modadd_const(n, p, a, "cdkpm", arch, mbu=mbu)
                    out = _run(built, {"ctrl": ctrl, "x": x}, mbu, seed=a * p + x)
                    assert out["x"] == (x + ctrl * a) % p
                    assert out["t"] == 0

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_random_wide(self, data):
        n = data.draw(st.integers(min_value=4, max_value=16))
        p = data.draw(st.integers(min_value=2, max_value=(1 << n) - 1))
        a = data.draw(st.integers(min_value=0, max_value=p - 1))
        x = data.draw(st.integers(min_value=0, max_value=p - 1))
        ctrl = data.draw(st.integers(min_value=0, max_value=1))
        mbu = data.draw(st.booleans())
        built = build_controlled_modadd_const(n, p, a, "cdkpm", "vbe", mbu=mbu)
        out = _run(built, {"ctrl": ctrl, "x": x}, mbu, seed=x + 3)
        assert out["x"] == (x + ctrl * a) % p

    def test_takahashi_not_available_controlled(self):
        with pytest.raises(ValueError):
            build_controlled_modadd_const(3, 5, 2, "cdkpm", "takahashi")
