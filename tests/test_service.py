"""End-to-end service tests against a live localhost HTTP server."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.pipeline import SweepConfig, diff_artifacts, run_sweep, sweep_artifact
from repro.pipeline.jobs import _decode
from repro.service import EstimateRequest, serve
from repro.service.jobs import sweep_config_from_mapping

ESTIMATE = "/estimate?kind=adder&n=4&family=cdkpm&mc_batch=64&seed=3"


@pytest.fixture()
def server(tmp_path):
    srv = serve(port=0, store=str(tmp_path / "store"))
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown()
        srv.state.jobs.shutdown()
        srv.server_close()
        thread.join(timeout=5)


def _url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _get(server, path):
    with urllib.request.urlopen(_url(server, path)) as resp:
        return resp.status, dict(resp.headers), resp.read()


def _post(server, path, payload):
    req = urllib.request.Request(
        _url(server, path),
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req) as resp:
        return resp.status, dict(resp.headers), resp.read()


def _wait_for_job(server, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, _, body = _get(server, f"/jobs/{job_id}")
        status = json.loads(body)["status"]
        if status in ("done", "failed"):
            return status
        time.sleep(0.05)
    pytest.fail(f"job {job_id} did not finish within {timeout}s")


class TestHealthAndStats:
    def test_healthz(self, server):
        status, _, body = _get(server, "/healthz")
        assert status == 200 and json.loads(body) == {"status": "ok"}

    def test_statsz_counts_requests(self, server):
        _get(server, "/healthz")
        _, _, body = _get(server, "/statsz")
        stats = json.loads(body)
        assert stats["requests"] >= 1
        assert "result_tier" in stats["cache"]
        assert stats["jobs"]["total"] == 0


class TestEstimate:
    def test_cold_then_hot_byte_identical(self, server):
        s1, h1, cold = _get(server, ESTIMATE)
        s2, h2, warm = _get(server, ESTIMATE)
        assert (s1, s2) == (200, 200)
        assert h1["X-Repro-Cache"] == "computed"
        assert h2["X-Repro-Cache"] == "memory"
        assert warm == cold
        payload = _decode(json.loads(cold))  # Fractions travel as {"$frac": ...}
        assert payload["toffoli"] > 0 and payload["mc"]["samples"] == 64

    def test_post_and_get_share_a_fingerprint(self, server):
        _, _, via_get = _get(server, ESTIMATE)
        status, headers, via_post = _post(server, "/estimate", {
            "kind": "adder", "n": 4, "family": "cdkpm",
            "mc_batch": 64, "seed": 3,
        })
        assert status == 200
        assert headers["X-Repro-Cache"] == "memory"  # the GET warmed it
        assert via_post == via_get

    def test_restart_serves_same_bytes_from_disk(self, server):
        _, _, cold = _get(server, ESTIMATE)
        server.state.cache.drop_memory_results()  # simulate a restart
        status, headers, redux = _get(server, ESTIMATE)
        assert status == 200
        assert headers["X-Repro-Cache"] == "disk"
        assert redux == cold

    def test_estimate_without_mc(self, server):
        _, _, body = _get(server, "/estimate?kind=adder&n=4&family=cdkpm&mc=false")
        payload = _decode(json.loads(body))
        assert payload["mc"] is None and payload["toffoli"] > 0

    def test_qft_circuit_reports_null_mc(self, server):
        """No basis-state semantics -> "mc": null, not a 500."""
        _, _, body = _get(server, "/estimate?kind=modadd_draper&n=4&p=13&mbu=false")
        payload = _decode(json.loads(body))
        assert payload["mc"] is None and payload["toffoli"] >= 0

    @pytest.mark.parametrize("path,fragment", [
        ("/estimate?kind=bogus&n=4", "unknown builder kind"),
        ("/estimate?kind=adder&n=0", "must be in"),
        ("/estimate?n=4", "missing 'kind'"),
        ("/estimate?kind=adder", "missing 'n'"),
        ("/estimate?kind=adder&n=4&mc=maybe", "mc must be a boolean"),
        ("/estimate?kind=add_const&n=4", "rejected parameters"),
        ("/estimate?kind=adder&n=4&mc_repeats=9999", "must be in"),
    ])
    def test_client_errors_are_400(self, server, path, fragment):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(server, path)
        assert exc.value.code == 400
        assert fragment in json.loads(exc.value.read())["error"]

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(server, "/frobnicate")
        assert exc.value.code == 404


class TestJobs:
    CONFIG = {
        "tables": ["table1"], "sizes": [4], "seed": 7, "mc_batch": 64,
        "modexp": [], "include_savings": False, "workers": 0,
    }

    def test_submit_poll_result_matches_direct_sweep(self, server):
        status, _, body = _post(server, "/jobs", self.CONFIG)
        assert status == 202
        job = json.loads(body)
        assert _wait_for_job(server, job["id"]) == "done"
        _, _, body = _get(server, f"/jobs/{job['id']}/result")
        served = json.loads(body)["artifact"]
        direct = sweep_artifact(run_sweep(sweep_config_from_mapping(self.CONFIG)))
        assert diff_artifacts(served, direct) == []

    def test_resubmit_coalesces(self, server):
        _, _, first = _post(server, "/jobs", self.CONFIG)
        _, _, second = _post(server, "/jobs", self.CONFIG)
        assert json.loads(first)["id"] == json.loads(second)["id"]
        _, _, listing = _get(server, "/jobs")
        assert len(json.loads(listing)["jobs"]) == 1
        _wait_for_job(server, json.loads(first)["id"])

    def test_result_before_done_is_409_or_ready(self, server):
        _, _, body = _post(server, "/jobs", self.CONFIG)
        job_id = json.loads(body)["id"]
        try:
            status, _, _ = _get(server, f"/jobs/{job_id}/result")
            assert status == 200  # tiny sweep may have already finished
        except urllib.error.HTTPError as exc:
            assert exc.code == 409
            assert "not ready" in json.loads(exc.read())["error"]
        _wait_for_job(server, job_id)

    def test_bad_config_is_400(self, server):
        for payload, fragment in [
            ({"tables": ["table9"]}, "unknown table"),
            ({"table": ["table1"]}, "unknown sweep config field"),
            ({"transforms": ["bogus"]}, "unknown transform pass"),
        ]:
            with pytest.raises(urllib.error.HTTPError) as exc:
                _post(server, "/jobs", payload)
            assert exc.value.code == 400
            assert fragment in json.loads(exc.value.read())["error"]

    def test_unknown_job_is_404(self, server):
        for path in ("/jobs/nope", "/jobs/nope/result"):
            with pytest.raises(urllib.error.HTTPError) as exc:
                _get(server, path)
            assert exc.value.code == 404


class TestRequestNormalization:
    """GET and POST spellings of one question share a fingerprint."""

    def test_query_strings_coerce_like_json(self):
        via_query = EstimateRequest.from_mapping(
            {"kind": "adder", "n": "4", "family": "cdkpm",
             "mc": "true", "mc_batch": "64", "seed": "3"})
        via_json = EstimateRequest.from_mapping(
            {"kind": "adder", "n": 4, "family": "cdkpm",
             "mc": True, "mc_batch": 64, "seed": 3})
        assert via_query == via_json
        assert via_query.fingerprint() == via_json.fingerprint()

    def test_transform_spellings_agree(self):
        via_csv = EstimateRequest.from_mapping(
            {"kind": "adder", "n": 4, "transforms": "lower_toffoli,cancel_adjacent"})
        via_list = EstimateRequest.from_mapping(
            {"kind": "adder", "n": 4,
             "transforms": ["lower_toffoli", "cancel_adjacent"]})
        assert via_csv.fingerprint() == via_list.fingerprint()

    def test_mc_knobs_change_the_fingerprint(self):
        base = EstimateRequest.from_mapping({"kind": "adder", "n": 4})
        reseeded = EstimateRequest.from_mapping({"kind": "adder", "n": 4, "seed": 1})
        wider = EstimateRequest.from_mapping({"kind": "adder", "n": 4, "mc_batch": 512})
        assert len({base.fingerprint(), reseeded.fingerprint(), wider.fingerprint()}) == 3

    def test_sweep_config_round_trips_sweepconfig_defaults(self):
        config = sweep_config_from_mapping({})
        assert config == SweepConfig()
