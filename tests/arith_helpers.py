"""Shared helpers for arithmetic-circuit tests."""

from __future__ import annotations

from repro.arithmetic import Built
from repro.sim import ClassicalSimulator, RandomOutcomes, run_statevector


def run_ripple(built: Built, inputs: dict, seed: int = 0) -> dict:
    """Run a ripple-family circuit classically; assert ancillas come back
    clean; return register values."""
    sim = ClassicalSimulator(built.circuit, outcomes=RandomOutcomes(seed))
    for name, value in inputs.items():
        sim.set_register(built.circuit.registers[name], value)
    sim.run()
    out = {name: sim.get_register(reg) for name, reg in built.circuit.registers.items()}
    for name in built.ancilla_names:
        assert out[name] == 0, f"ancilla register {name!r} left dirty: {out[name]}"
    return out


def run_draper(built: Built, inputs: dict, seed: int = 0) -> dict:
    """Run a Draper-family circuit on the statevector simulator; assert the
    result is a single basis state with clean ancillas; return values."""
    sim = run_statevector(built.circuit, inputs, outcomes=RandomOutcomes(seed))
    values = sim.register_values(tol=1e-6)
    assert len(values) == 1, f"output is not a basis state: {values}"
    names = list(built.circuit.registers)
    out = dict(zip(names, next(iter(values))))
    for name in built.ancilla_names:
        assert out[name] == 0, f"ancilla register {name!r} left dirty"
    return out
