"""Chaos suite: the executor survives kills, hangs and corrupted checkpoints.

Every scenario here injects a deterministic fault through
:mod:`repro.pipeline.faults` and then asserts the strongest invariant
the pipeline offers: the final JSON artifact is **byte-identical** to a
fault-free serial run.  Per-task seeds are derived from (sweep seed,
task identity), so retries, requeues, degradation rungs and resumes may
reshuffle *when* work happens but never *what* it computes.

These tests spawn process pools and sleep through real timeouts, so
they carry the ``chaos`` marker (seconds each, not milliseconds):

    python -m pytest -m chaos            # just this suite
    python -m pytest -m "not chaos"      # skip it

Hang-injection tests additionally arm a SIGALRM watchdog so a recovery
bug fails the test instead of wedging the whole pytest run.
"""

import json
import signal

import pytest

from repro.pipeline import faults
from repro.pipeline.artifacts import sweep_artifact
from repro.pipeline.faults import FaultInjected
from repro.pipeline.jobs import (
    CheckpointJournal,
    ExecutionPolicy,
    SweepExecutionError,
)
from repro.pipeline.runner import SweepConfig, run_sweep

pytestmark = pytest.mark.chaos


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan(monkeypatch):
    """Scope fault plans (installed and env) to each test."""
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    yield
    faults.clear()


@pytest.fixture
def watchdog():
    """Hard SIGALRM backstop: a hang-recovery bug fails, never wedges."""
    previous = []

    def arm(seconds):
        def handler(signum, frame):
            raise RuntimeError(
                f"chaos watchdog fired: test still running after {seconds}s — "
                "hang recovery is broken"
            )

        previous.append(signal.signal(signal.SIGALRM, handler))
        signal.alarm(seconds)

    yield arm
    signal.alarm(0)
    if previous:
        signal.signal(signal.SIGALRM, previous[0])


def chaos_config(**overrides):
    base = dict(tables=("table1", "table6"), sizes=(4,), seed=7, mc_batch=64,
                workers=2, include_savings=True, modexp=((2, 3),))
    base.update(overrides)
    return SweepConfig(**base)


def golden_bytes(config):
    """The fault-free serial baseline every scenario must reproduce."""
    faults.clear()
    serial = run_sweep(SweepConfig(**{**config.as_dict(), "workers": 0}))
    return artifact_bytes(serial)


def artifact_bytes(result):
    # `workers` is execution detail, not semantics: it is the one config
    # field diff_artifacts ignores for goldens, so normalize it here too.
    artifact = sweep_artifact(result)
    artifact["config"]["workers"] = 0
    return json.dumps(artifact, indent=2, sort_keys=True)


def arm(monkeypatch, plan):
    """Arm a plan for every rung: env for pool workers, install for in-process."""
    monkeypatch.setenv(faults.FAULTS_ENV, plan.to_json())
    faults.install(plan)


FAST_BACKOFF = dict(backoff_base=0.01, backoff_cap=0.05)


class TestKillWorker:
    def test_worker_killed_mid_sweep_recovers_byte_identical(self, monkeypatch):
        config = chaos_config()
        baseline = golden_bytes(config)
        arm(monkeypatch, faults.FaultPlan(seed=7, faults=(
            faults.FaultSpec(site="task", action="kill",
                             match="table:table1:*", attempts=(0,)),
        )))
        result = run_sweep(config, policy=ExecutionPolicy(**FAST_BACKOFF))
        reports = {r["key"]: r for r in result.task_reports}
        killed = reports["table:table1:n4"]
        assert killed["status"] == "ok"
        assert killed["attempts"] >= 2  # died once, recomputed after respawn
        assert artifact_bytes(result) == baseline

    def test_persistent_kill_walks_the_degradation_ladder(self, monkeypatch):
        # Every process-pool attempt dies; the thread rung (in-process, where
        # `kill` degrades to FaultInjected) then exhausts retries.  The sweep
        # must end with structured failures, not an unhandled crash.
        config = chaos_config()
        arm(monkeypatch, faults.FaultPlan(seed=7, faults=(
            faults.FaultSpec(site="task", action="kill"),
        )))
        result = run_sweep(config, policy=ExecutionPolicy(
            max_retries=1, fail_fast=False, pool_breaks_before_degrade=1,
            **FAST_BACKOFF))
        assert result.execution_modes == ["process", "thread"]
        assert len(result.failures) == 4
        for failure in result.failures:
            assert failure["status"] == "failed"
            assert failure["seed"] == 7  # replay seed survives the ladder
        assert result.tables == {} and result.savings == {} and result.modexp == []


class TestHangTimeout:
    def test_hung_task_times_out_and_recovers_byte_identical(
            self, monkeypatch, watchdog):
        watchdog(120)
        config = chaos_config()
        baseline = golden_bytes(config)
        arm(monkeypatch, faults.FaultPlan(seed=7, faults=(
            faults.FaultSpec(site="task", action="hang", match="savings:*",
                             attempts=(0,), hang_seconds=300.0),
        )))
        result = run_sweep(config, policy=ExecutionPolicy(
            task_timeout=3.0, **FAST_BACKOFF))
        hung = {r["key"]: r for r in result.task_reports}["savings:n4"]
        assert hung["status"] == "ok"
        assert hung["attempts"] >= 2
        assert "task_timeout" in hung["error"]
        assert artifact_bytes(result) == baseline

    def test_hang_every_attempt_fails_structurally_not_forever(
            self, monkeypatch, watchdog):
        watchdog(120)
        config = chaos_config()
        arm(monkeypatch, faults.FaultPlan(seed=7, faults=(
            faults.FaultSpec(site="task", action="hang", match="modexp:*",
                             hang_seconds=300.0),
        )))
        # Hangs cannot be preempted on the serial rung, so the ladder is
        # held to the pool rungs via a thread-capable policy; the task must
        # come back as a structured timeout failure.
        result = run_sweep(config, policy=ExecutionPolicy(
            task_timeout=2.0, max_retries=0, fail_fast=False,
            pool_breaks_before_degrade=1, **FAST_BACKOFF))
        (failure,) = result.failures
        assert failure["key"] == "modexp:e2:n3"
        assert "task_timeout" in failure["error"]
        # everything else still completed despite sharing a pool with the hang
        ok = [r for r in result.task_reports if r["status"] == "ok"]
        assert len(ok) == 3


class TestCorruptJournal:
    def test_corrupted_checkpoint_recomputes_on_resume_byte_identical(
            self, monkeypatch, tmp_path):
        config = chaos_config()
        baseline = golden_bytes(config)
        store = tmp_path / "journal"
        # Run 1: checkpoint everything, then the fault corrupts the savings
        # entry on disk right after it is written.
        arm(monkeypatch, faults.FaultPlan(seed=7, faults=(
            faults.FaultSpec(site="journal", action="corrupt",
                             match="savings:*"),
        )))
        first = run_sweep(config, policy=ExecutionPolicy(
            store=store, **FAST_BACKOFF))
        assert first.journal_stats["writes"] == 4
        assert artifact_bytes(first) == baseline  # corruption is disk-only
        faults.clear()
        monkeypatch.delenv(faults.FAULTS_ENV)
        # Run 2: the damaged entry is a counted miss, never a crash.
        second = run_sweep(config, policy=ExecutionPolicy(
            store=store, **FAST_BACKOFF))
        assert second.journal_stats["corrupt"] == 1
        assert second.journal_stats["hits"] == 3
        statuses = {r["key"]: r["status"] for r in second.task_reports}
        assert statuses["savings:n4"] == "ok"  # recomputed
        assert sum(1 for s in statuses.values() if s == "cached") == 3
        assert artifact_bytes(second) == baseline


class TestResumeAfterInterrupt:
    def test_interrupted_parallel_sweep_resumes_byte_identical(
            self, monkeypatch, tmp_path):
        config = chaos_config()
        baseline = golden_bytes(config)
        store = tmp_path / "journal"
        # Run 1 is "interrupted": modexp fails hard on every attempt and
        # fail_fast aborts the sweep — after the other tasks checkpointed.
        arm(monkeypatch, faults.FaultPlan(seed=7, faults=(
            faults.FaultSpec(site="task", action="raise", match="modexp:*"),
        )))
        with pytest.raises(SweepExecutionError) as exc:
            run_sweep(config, policy=ExecutionPolicy(
                store=store, max_retries=0, pool_breaks_before_degrade=1,
                **FAST_BACKOFF))
        assert exc.value.failures[0].key == "modexp:e2:n3"
        journal = CheckpointJournal(store, config)
        completed = journal.completed_keys()
        # fail_fast aborts mid-flight: the failed task is never journaled,
        # and some healthy tasks may have been cut off before checkpointing
        assert "modexp:e2:n3" not in completed
        assert 1 <= len(completed) <= 3
        faults.clear()
        monkeypatch.delenv(faults.FAULTS_ENV)
        # Run 2 replays every checkpoint and computes only what is missing.
        resumed = run_sweep(config, policy=ExecutionPolicy(
            store=store, **FAST_BACKOFF))
        statuses = {r["key"]: r["status"] for r in resumed.task_reports}
        assert statuses["modexp:e2:n3"] == "ok"
        cached = {k for k, s in statuses.items() if s == "cached"}
        assert cached == set(completed)
        assert resumed.journal_stats["hits"] == len(completed)
        assert resumed.journal_stats["writes"] == 4 - len(completed)
        assert artifact_bytes(resumed) == baseline


class TestAcceptance:
    """The ISSUE acceptance scenario: kills + a hang + a corrupted
    checkpoint in one sweep, then an interrupted-style resume — both
    byte-identical to the fault-free serial golden."""

    def test_combined_fault_storm_then_resume(self, monkeypatch, tmp_path,
                                              watchdog):
        watchdog(180)
        config = chaos_config()
        baseline = golden_bytes(config)
        store = tmp_path / "journal"
        plan = faults.FaultPlan(seed=7, faults=(
            faults.FaultSpec(site="task", action="kill", match="table:*",
                             probability=0.35, attempts=(0,)),
            faults.FaultSpec(site="task", action="hang", match="modexp:*",
                             attempts=(0,), hang_seconds=300.0),
            faults.FaultSpec(site="journal", action="corrupt",
                             match="savings:*"),
        ))
        arm(monkeypatch, plan)
        result = run_sweep(config, policy=ExecutionPolicy(
            store=store, task_timeout=4.0, **FAST_BACKOFF))
        assert all(r["status"] == "ok" for r in result.task_reports)
        assert artifact_bytes(result) == baseline
        # the probabilistic kill is deterministic: whichever table keys the
        # plan says die on attempt 0 must show the extra attempt
        injector = faults.FaultInjector(plan)
        for key in ("table:table1:n4", "table:table6:n4"):
            decided = injector.decide("task", key, 0)
            report = {r["key"]: r for r in result.task_reports}[key]
            if decided is not None and decided.action == "kill":
                assert report["attempts"] >= 2, key
        hung = {r["key"]: r for r in result.task_reports}["modexp:e2:n3"]
        assert hung["attempts"] >= 2
        faults.clear()
        monkeypatch.delenv(faults.FAULTS_ENV)
        # resume: the corrupted savings checkpoint is recomputed, the three
        # intact entries replay, and the bytes still match the golden
        resumed = run_sweep(config, policy=ExecutionPolicy(store=store))
        assert resumed.journal_stats["corrupt"] == 1
        assert resumed.journal_stats["hits"] == 3
        assert artifact_bytes(resumed) == baseline


class TestFaultHarnessUnit:
    """Fast sanity checks that make chaos failures diagnosable."""

    def test_kill_in_main_process_degrades_to_exception(self):
        faults.install(faults.FaultPlan(faults=(
            faults.FaultSpec(site="task", action="kill"),)))
        with pytest.raises(FaultInjected):
            faults.maybe_fire("task", "any:key", 0)

    def test_unmatched_site_and_key_are_silent(self):
        faults.install(faults.FaultPlan(faults=(
            faults.FaultSpec(site="journal", action="corrupt",
                             match="savings:*"),)))
        faults.maybe_fire("task", "savings:n4", 0)  # wrong site: no-op
        assert faults.active_injector().decide("journal", "table:x", 0) is None

    def test_corrupt_file_damages_but_keeps_the_file(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_text(json.dumps({"payload": list(range(100))}))
        original = path.read_bytes()
        faults.corrupt_file(path)
        damaged = path.read_bytes()
        assert path.exists() and damaged != original
        with pytest.raises(json.JSONDecodeError):
            json.loads(damaged)
