"""Toffoli-depth claims: MBU reduces expected depth 10-15% (section 1.1).

The worst-case depth is unchanged (the correction branch contains the full
uncomputation oracle); the saving is in expectation: with probability 1/2
the final comparator never runs.  Expected depth = (lucky + unlucky) / 2.
"""

import pytest

from repro.circuits import toffoli_depth
from repro.modular import build_modadd, build_modadd_vbe_original


def expected_toffoli_depth(circuit) -> float:
    worst = toffoli_depth(circuit, include_conditional=True)
    best = toffoli_depth(circuit, include_conditional=False)
    return (worst + best) / 2


@pytest.mark.parametrize("family", ["cdkpm", "gidney"])
def test_worst_case_depth_unchanged(family):
    n, p = 12, (1 << 12) - 1
    plain = build_modadd(n, p, family)
    mbu = build_modadd(n, p, family, mbu=True)
    assert toffoli_depth(mbu.circuit) == toffoli_depth(plain.circuit)


@pytest.mark.parametrize("family,lo,hi", [
    ("cdkpm", 0.10, 0.15),
    ("gidney", 0.10, 0.15),
])
def test_expected_depth_saving_in_paper_range(family, lo, hi):
    n, p = 24, (1 << 24) - 1
    plain = build_modadd(n, p, family)
    mbu = build_modadd(n, p, family, mbu=True)
    base = toffoli_depth(plain.circuit)
    saving = 1 - expected_toffoli_depth(mbu.circuit) / base
    assert lo <= saving <= hi, saving


def test_vbe5_expected_depth_saving():
    """The 5-adder design uncomputes with two full adders: ~20% depth off."""
    n, p = 16, (1 << 16) - 1
    plain = build_modadd_vbe_original(n, p)
    mbu = build_modadd_vbe_original(n, p, mbu=True)
    base = toffoli_depth(plain.circuit)
    saving = 1 - expected_toffoli_depth(mbu.circuit) / base
    assert 0.15 <= saving <= 0.25, saving


def test_lucky_branch_skips_the_final_comparator():
    n, p = 16, (1 << 16) - 1
    mbu = build_modadd(n, p, "cdkpm", mbu=True)
    worst = toffoli_depth(mbu.circuit, include_conditional=True)
    best = toffoli_depth(mbu.circuit, include_conditional=False)
    # the final CDKPM comparator contributes ~2n Toffoli layers
    assert worst - best >= 2 * n - 4
