"""The noise-injection subsystem: channels, faulty outcomes, statistics.

Three layers under test (see ``docs/noise.md``):

* :mod:`repro.noise` — :class:`NoisyOutcomes` (seeded flips XOR'd into any
  provider's sampled outcomes) and the per-lane bit-flip channel at
  annotated noise points;
* the execution strategies — rate 0 must be bit-identical to no noise on
  every backend, and a fixed (seed, rate) must produce bit-identical
  results across all strategies, shard counts and executor kinds;
* :mod:`repro.pipeline.noise` — Monte-Carlo success/postselection rates
  whose acceptance tests use the shared false-positive-budgeted helpers
  in ``tests/stat_helpers.py`` (never ad-hoc tolerances).
"""

import pytest

from repro.circuits import Circuit
from repro.circuits.ops import Annotation, Gate
from repro.modular import build_modadd
from repro.noise import NoiseConfig, NoisyOutcomes, insert_noise_points, noise_points
from repro.pipeline import derive_seed
from repro.sim import (
    BitplaneSimulator,
    ForcedOutcomes,
    RandomOutcomes,
    run_bitplane,
)
from repro.sim.dispatch import ShardPool, run_sharded
from tests.stat_helpers import assert_binomial_rate

STRATEGIES = ("interpretive", "scalar", "codegen", "arrays")
SHARD_COUNTS = (1, 2, 3, 7)


def _mbu_circuit(n=4, p=13):
    return insert_noise_points(build_modadd(n, p, "cdkpm", mbu=True).circuit)


def _snapshot(sim, circuit):
    regs = {name: tuple(sim.get_register(name)) for name in circuit.registers}
    bits = tuple(tuple(sim.get_bit(b)) for b in range(circuit.num_bits))
    return regs, bits


def _run_strategy(strategy, circuit, inputs, provider, batch, noise=None,
                  shards=2, executor="thread"):
    if strategy == "sharded":
        res = run_sharded(
            circuit, inputs, batch=batch, shards=shards, executor=executor,
            outcomes=provider, noise=noise,
        )
        regs = {name: tuple(res.get_register(name)) for name in circuit.registers}
        bits = tuple(tuple(res.get_bit(b)) for b in range(circuit.num_bits))
        return regs, bits
    sim = BitplaneSimulator(circuit, batch=batch, outcomes=provider, noise=noise)
    for name, values in inputs.items():
        sim.set_register(name, values)
    if strategy == "interpretive":
        sim.run()
    elif strategy == "scalar":
        sim.run_compiled(fused=False)
    elif strategy == "codegen":
        sim.run_compiled()
    elif strategy == "arrays":
        sim.run_compiled(kernels="arrays")
    else:  # pragma: no cover - test bug
        raise ValueError(strategy)
    return _snapshot(sim, circuit)


class TestNoisyOutcomes:
    """The faulty-measurement wrapper around any outcome provider."""

    def test_rate_zero_is_transparent_and_consumes_no_entropy(self):
        script = [1, 0, 1, 1, 0, 0, 1, 0]
        wrapped = NoisyOutcomes(ForcedOutcomes(script), 0.0, seed=9)
        bare = ForcedOutcomes(script)
        for _ in range(5):
            assert wrapped.sample(0.5) == bare.sample(0.5)
        assert wrapped.sample_lanes(0.5, 8) == bare.sample_lanes(0.5, 8)

    def test_same_seed_same_flips(self):
        a = NoisyOutcomes(RandomOutcomes(3), 0.3, seed=7)
        b = NoisyOutcomes(RandomOutcomes(3), 0.3, seed=7)
        draws_a = [a.sample_lanes(0.5, 64) for _ in range(20)]
        draws_b = [b.sample_lanes(0.5, 64) for _ in range(20)]
        assert draws_a == draws_b

    def test_flips_actually_flip(self):
        noisy = NoisyOutcomes(RandomOutcomes(3), 0.5, seed=7)
        clean = RandomOutcomes(3)
        assert [noisy.sample_lanes(0.5, 64) for _ in range(10)] != \
               [clean.sample_lanes(0.5, 64) for _ in range(10)]

    def test_rate_validation(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            NoisyOutcomes(RandomOutcomes(0), 1.5)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            NoiseConfig(rate=-0.1)

    def test_reset_rewinds_both_streams(self):
        noisy = NoisyOutcomes(ForcedOutcomes([1, 0, 1, 0]), 0.4, seed=5)
        first = [noisy.sample_lanes(0.5, 16) for _ in range(4)]
        noisy.reset()
        assert [noisy.sample_lanes(0.5, 16) for _ in range(4)] == first

    def test_clone_is_fresh_and_identical(self):
        noisy = NoisyOutcomes(RandomOutcomes(11), 0.2, seed=3)
        noisy.sample_lanes(0.5, 32)  # consume some stream first
        clone = noisy.clone()
        fresh = NoisyOutcomes(RandomOutcomes(11), 0.2, seed=3)
        assert [clone.sample_lanes(0.5, 32) for _ in range(8)] == \
               [fresh.sample_lanes(0.5, 32) for _ in range(8)]

    def test_mbu_coin_flips_change_bits_not_registers(self):
        """Flipping an MBU coin lands the other correction branch: the
        measurement record differs but the corrected registers do not —
        exactly Lemma 4.1's promise."""
        circuit = build_modadd(4, 13, "cdkpm", mbu=True).circuit
        inputs = {"x": 5, "y": 9}
        base = run_bitplane(circuit, inputs, batch=64,
                            outcomes=RandomOutcomes(2))
        noisy = run_bitplane(
            circuit, inputs, batch=64,
            outcomes=NoisyOutcomes(RandomOutcomes(2), 0.5, seed=8),
        )
        base_regs, base_bits = _snapshot(base, circuit)
        noisy_regs, noisy_bits = _snapshot(noisy, circuit)
        assert noisy_bits != base_bits
        assert noisy_regs == base_regs


class TestRateZeroIdentity:
    """The semantics-preserving contract: a rate-0 channel is a no-op on
    every execution strategy and every shard count."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_strategies(self, strategy):
        circuit = _mbu_circuit()
        inputs = {"x": 5, "y": 9}
        clean = _run_strategy(strategy, circuit, inputs,
                              RandomOutcomes(4), 32)
        zero = _run_strategy(strategy, circuit, inputs, RandomOutcomes(4), 32,
                             noise=NoiseConfig(rate=0.0, seed=123))
        assert zero == clean

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_shard_counts(self, shards):
        circuit = _mbu_circuit()
        inputs = {"x": 5, "y": 9}
        clean = _run_strategy("interpretive", circuit, inputs,
                              RandomOutcomes(4), 32)
        zero = _run_strategy("sharded", circuit, inputs, RandomOutcomes(4), 32,
                             noise=NoiseConfig(rate=0.0, seed=123),
                             shards=shards)
        assert zero == clean


class TestSeededNoiseDeterminism:
    """Fixed (seed, rate): bit-identical results across every strategy,
    shard count and executor kind."""

    def test_across_strategies(self):
        circuit = _mbu_circuit()
        inputs = {"x": 5, "y": 9}
        noise = NoiseConfig(rate=0.2, seed=77)
        results = {
            strategy: _run_strategy(strategy, circuit, inputs,
                                    RandomOutcomes(4), 32, noise=noise)
            for strategy in STRATEGIES
        }
        reference = results["interpretive"]
        for strategy, result in results.items():
            assert result == reference, strategy
        # and the channel did something at this rate
        clean = _run_strategy("interpretive", circuit, inputs,
                              RandomOutcomes(4), 32)
        assert reference != clean

    @pytest.mark.parametrize("executor", ["thread", "process"])
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_across_shards_and_executors(self, shards, executor):
        circuit = _mbu_circuit()
        inputs = {"x": 5, "y": 9}
        noise = NoiseConfig(rate=0.2, seed=77)
        reference = _run_strategy("interpretive", circuit, inputs,
                                  RandomOutcomes(4), 32, noise=noise)
        sharded = _run_strategy("sharded", circuit, inputs, RandomOutcomes(4),
                                32, noise=noise, shards=shards,
                                executor=executor)
        assert sharded == reference


class TestChannelGuards:
    def test_nested_noise_points_refuse_sharding(self):
        circ = Circuit("nested-noise")
        d = circ.add_register("d", 2)
        bit = circ.measure(d[0])
        circ.cond(bit, [Gate("x", (d[1],)), Annotation("noise", str(d[1]))])
        with pytest.raises(ValueError, match="noise points nested"):
            with ShardPool(circ, batch=8, shards=2, executor="thread",
                           noise=NoiseConfig(rate=0.1, seed=1)) as pool:
                pool.run({})

    def test_reset_noise_provider_needs_enabled_channel(self):
        circuit = _mbu_circuit()
        sim = BitplaneSimulator(circuit, batch=8)
        with pytest.raises(ValueError, match="noise"):
            sim.reset(RandomOutcomes(0), noise_provider=RandomOutcomes(1))

    def test_insert_noise_points_is_idempotent_target(self):
        circuit = build_modadd(3, 7, "cdkpm", mbu=True).circuit
        assert not noise_points(circuit)
        salted = insert_noise_points(circuit)
        points = noise_points(salted)
        assert points  # one per top-level measurement/MBU block
        assert len(points) == len(noise_points(insert_noise_points(circuit)))


class TestShardedEdgeCases:
    """SlicedOutcomes / shard-layout corner cases."""

    def test_more_shards_than_lanes_rejected(self):
        circuit = _mbu_circuit()
        with pytest.raises(ValueError, match="cannot split"):
            run_sharded(circuit, {"x": 1, "y": 2}, batch=4, shards=7,
                        executor="thread", outcomes=RandomOutcomes(0))

    def test_batch_one_degenerate_shard(self):
        circuit = _mbu_circuit()
        single = run_sharded(circuit, {"x": 5, "y": 9}, batch=1, shards=1,
                             outcomes=RandomOutcomes(3),
                             noise=NoiseConfig(rate=0.2, seed=5))
        sim = BitplaneSimulator(circuit, batch=1, outcomes=RandomOutcomes(3),
                                noise=NoiseConfig(rate=0.2, seed=5))
        for name, value in {"x": 5, "y": 9}.items():
            sim.set_register(name, value)
        sim.run_compiled()
        assert {n: tuple(single.get_register(n)) for n in circuit.registers} \
            == {n: tuple(sim.get_register(n)) for n in circuit.registers}

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_provider_exhaustion_propagates_from_workers(self, executor):
        circuit = _mbu_circuit()
        with pytest.raises(IndexError, match="exhausted") as excinfo:
            run_sharded(circuit, {"x": 5, "y": 9}, batch=32, shards=2,
                        executor=executor, outcomes=ForcedOutcomes([]))
        # the traceback names the provider, so the failure is debuggable
        assert "exhausted" in str(excinfo.value)


@pytest.mark.statistical
class TestStatisticalAcceptance:
    """Monte-Carlo rates vs analytic values, with an explicit
    false-positive budget (tests/stat_helpers.py)."""

    def test_single_fault_point_success_matches_one_minus_rate(self):
        """One noise point, 4096 lanes: success rate is exactly
        Bernoulli(1 - rate) per lane."""
        from repro.pipeline.noise import estimate_success

        circ = Circuit("single-fault")
        d = circ.add_register("d", 2)
        circ.x(d[0])
        circ.measure(d[0])
        salted = insert_noise_points(circ)
        assert len(noise_points(salted)) == 1
        rate = 0.1
        est = estimate_success(salted, rate, batch=4096,
                               seed=derive_seed("test-noise", 1))
        successes = int(est.success.mean * est.lanes)
        assert_binomial_rate(successes, est.lanes, 1.0 - rate,
                             context="single fault point")
        assert est.analytic == pytest.approx(1.0 - rate)

    def test_mbu_success_matches_analytic_power(self):
        from repro.pipeline.noise import estimate_success

        circuit = _mbu_circuit(3, 7)
        points = len(noise_points(circuit))
        rate = 0.05
        est = estimate_success(circuit, rate, batch=4096,
                               seed=derive_seed("test-noise", 2),
                               inputs={"x": 3, "y": 5})
        successes = int(est.success.mean * est.lanes)
        assert_binomial_rate(successes, est.lanes, (1.0 - rate) ** points,
                             context="mbu modadd")

    def test_postselection_catches_flagged_faults(self):
        from repro.pipeline.noise import estimate_success

        circuit = _mbu_circuit(3, 7)
        est = estimate_success(circuit, 0.1, batch=2048,
                               seed=derive_seed("test-noise", 3),
                               inputs={"x": 3, "y": 5})
        assert est.postselect.mean <= est.success.mean or \
            est.conditional_success is not None
        if est.conditional_success is not None:
            # flagged qubits carry every fault here: kept lanes all succeed
            assert float(est.conditional_success.mean) == 1.0


class TestPipelineNoiseSweep:
    def test_sweep_is_deterministic_and_artifact_stable(self):
        from repro.pipeline import noise_artifact, noise_sweep

        a = noise_sweep([0.0, 0.1], sizes=(3,), seed=5, batch=64)
        b = noise_sweep([0.0, 0.1], sizes=(3,), seed=5, batch=64)
        assert a.rows == b.rows
        art_a, art_b = noise_artifact(a), noise_artifact(b)
        assert art_a["rows"] == art_b["rows"]
        assert art_a["schema"] == 1

    def test_rate_zero_rows_pin_at_one(self):
        from repro.pipeline import noise_sweep

        result = noise_sweep([0.0], sizes=(3,), seed=5, batch=64)
        for row in result.rows:
            assert row["success_rate"] == 1.0
            assert row["postselect_rate"] == 1.0

    def test_coherent_rows_have_no_fault_points(self):
        from repro.pipeline import noise_sweep

        result = noise_sweep([0.25], sizes=(3,), seed=5, batch=64)
        by_variant = {row["row"]: row for row in result.rows}
        assert by_variant["coherent"]["noise_points"] == 0
        assert by_variant["coherent"]["success_rate"] == 1.0
        assert by_variant["mbu"]["noise_points"] > 0


class TestNoisyOracleColumn:
    def test_noisy_column_agrees_on_mbu_circuit(self):
        from repro.verify.oracle import NOISY, check_circuit

        circuit = build_modadd(3, 7, "cdkpm", mbu=True).circuit
        report = check_circuit(circuit, {"x": 3, "y": 5}, seed=2, batch=8,
                               transforms=(), noise_rate=0.25, noise_seed=6)
        assert report.ok, report.summary()
        noisy = {k: v for k, v in report.matrix.items() if k[1] == NOISY}
        assert noisy and set(noisy.values()) == {"agree"}

    def test_noisy_flavor_reproducer_carries_rate_and_seed(self):
        from repro.verify.generate import GeneratorConfig, random_case

        case = random_case(99, GeneratorConfig(flavor="noisy", ops=8, batch=8))
        assert noise_points(case.circuit)
        assert 0.0 < case.meta["noise_rate"] <= 0.25
        assert isinstance(case.meta["noise_seed"], int)
        # check_case must activate the noisy column from the meta alone
        from repro.verify.oracle import NOISY, check_case

        report = check_case(case, transforms=())
        assert any(k[1] == NOISY for k in report.matrix), report.matrix
