"""The equivalence oracle: matrix coverage, agreement, rejection semantics."""

import pytest

from repro.circuits import Circuit
from repro.verify.generate import FLAVORS, GeneratorConfig, random_case, seed_sequence
from repro.verify.oracle import (
    BASE,
    STRATEGIES,
    TRANSFORMS,
    check_case,
    check_circuit,
)


@pytest.mark.parametrize("flavor", FLAVORS)
@pytest.mark.parametrize("seed", seed_sequence(3))
def test_oracle_agrees_on_generated_cases(flavor, seed):
    """The current tree must be self-consistent: every strategy and every
    transform recipe agrees on every generated flavor."""
    case = random_case(seed, GeneratorConfig(flavor=flavor, ops=20, batch=16))
    report = check_case(case)
    assert report.ok, report.summary()
    assert report.checks > 50


def test_matrix_covers_all_strategy_transform_cells():
    """Aggregated over the four flavors, the oracle matrix must cover all
    5 strategies x 5 registered transforms with a real differential check
    (agree or consistent-reject) — the ISSUE acceptance criterion."""
    covered = {}
    for i, flavor in enumerate(FLAVORS):
        case = random_case(100 + i, GeneratorConfig(flavor=flavor, ops=20, batch=16))
        report = check_case(case)
        assert report.ok, report.summary()
        for cell, status in report.matrix.items():
            covered.setdefault(cell, set()).add(status)
    for strategy in STRATEGIES:
        for transform in TRANSFORMS:
            statuses = covered.get((strategy, transform), set())
            assert statuses & {"agree", "reject"}, (
                f"cell ({strategy}, {transform}) never exercised: {statuses}"
            )
        # the untransformed differential run is a matrix column of its own
        assert "agree" in covered.get((strategy, BASE), set())


def test_consistent_rejection_of_bare_hadamard():
    """A circuit with no basis-state semantics must be rejected by every
    compiled strategy — and that consistency is a passing check, not a
    failure."""
    circ = Circuit("h")
    q = circ.add_register("q", 2)
    circ.h(q[0])
    circ.cx(q[0], q[1])
    report = check_circuit(circ, {"q": 1}, transforms=())
    assert report.ok, report.summary()
    for strategy in ("scalar", "codegen", "arrays"):
        assert report.matrix[(strategy, BASE)] == "reject"
    assert report.matrix[("interpretive", BASE)] == "reject"
    assert report.matrix[("classical", BASE)] == "reject"


def test_lazy_walks_may_skip_statically_unsupported_branches():
    """An ``h`` inside a never-taken conditional: the compiled strategies
    reject eagerly at compile time, the interpretive/classical walks
    complete — recorded as ``lazy``, not flagged as a mismatch."""
    circ = Circuit("lazy-h")
    q = circ.add_register("q", 2)
    bit = circ.measure(q[0])  # q starts |0>: bit is always 0
    with circ.capture() as body:
        circ.h(q[1])
    circ.cond(bit, body, value=1)  # never taken
    report = check_circuit(circ, {"q": 0}, transforms=())
    assert report.ok, report.summary()
    for strategy in ("scalar", "codegen", "arrays"):
        assert report.matrix[(strategy, BASE)] == "reject"
    assert report.matrix[("interpretive", BASE)] == "lazy"
    assert report.matrix[("classical", BASE)] == "lazy"


def test_invert_cells_inapplicable_for_measurement_circuits():
    circ = Circuit("m")
    q = circ.add_register("q", 3)
    circ.cx(q[0], q[1])
    circ.measure(q[2])
    report = check_circuit(circ, {"q": 5})
    assert report.ok, report.summary()
    for strategy in STRATEGIES:
        assert report.matrix[(strategy, "invert")] == "inapplicable"


def test_unknown_transform_rejected():
    circ = Circuit("t")
    q = circ.add_register("q", 3)
    circ.x(q[0])
    with pytest.raises(ValueError, match="no recipe"):
        check_circuit(circ, {"q": 0}, transforms=("bogus",))


def test_lane_input_length_mismatch_rejected():
    circ = Circuit("t")
    circ.add_register("q", 3)
    with pytest.raises(ValueError, match="per-lane"):
        check_circuit(circ, {"q": [1, 2, 3]}, batch=8)


def test_broadcast_int_inputs_accepted():
    from repro.modular import build_modadd

    built = build_modadd(3, 5, "gidney", mbu=True)
    report = check_circuit(
        built.circuit, {"x": 2, "y": 3}, batch=8,
        data_registers=("x", "y"),
    )
    assert report.ok, report.summary()


def test_report_summary_mentions_counts():
    case = random_case(0, GeneratorConfig(flavor="unitary", ops=10, batch=8))
    report = check_case(case)
    assert "comparisons" in report.summary()
    assert report.failure_signature() == frozenset()
