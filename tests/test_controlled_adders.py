"""Controlled addition (def 2.8): thm 2.9, cor 2.10, prop 2.11, thms 2.12/2.14."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arithmetic import build_controlled_adder
from tests.arith_helpers import run_draper, run_ripple

RIPPLE = ["vbe", "cdkpm", "gidney"]
METHODS = ["native", "load_and", "load_toffoli"]


@pytest.mark.parametrize("family", RIPPLE)
@pytest.mark.parametrize("method", METHODS)
def test_controlled_adder_exhaustive(family, method):
    n = 2
    for ctrl in (0, 1):
        for x in range(1 << n):
            for y in range(1 << n):
                built = build_controlled_adder(n, family, method)
                out = run_ripple(built, {"ctrl": ctrl, "x": x, "y": y}, seed=x ^ y)
                assert out["y"] == y + ctrl * x
                assert out["x"] == x and out["ctrl"] == ctrl


@pytest.mark.parametrize("family", RIPPLE)
@given(data=st.data())
@settings(max_examples=20, deadline=None)
def test_controlled_adder_random_wide(family, data):
    n = data.draw(st.integers(min_value=3, max_value=32))
    ctrl = data.draw(st.integers(min_value=0, max_value=1))
    x = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
    y = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
    built = build_controlled_adder(n, family, "native")
    out = run_ripple(built, {"ctrl": ctrl, "x": x, "y": y}, seed=n)
    assert out["y"] == y + ctrl * x


@pytest.mark.parametrize("ctrl", [0, 1])
def test_draper_controlled_adder(ctrl):
    n = 2
    for x in range(1 << n):
        for y in range(1 << n):
            built = build_controlled_adder(n, "draper")
            out = run_draper(built, {"ctrl": ctrl, "x": x, "y": y}, seed=x + y)
            assert out["y"] == y + ctrl * x


def test_toffoli_counts_native_vs_generic():
    """Thm 2.9 costs r+2n, cor 2.10 costs r+n; natives beat both."""
    n = 8
    from repro.arithmetic import build_adder

    for family in RIPPLE:
        r = build_adder(n, family).counts().toffoli
        toffoli = {
            method: build_controlled_adder(n, family, method).counts().toffoli
            for method in METHODS
        }
        assert toffoli["load_toffoli"] == r + 2 * n
        assert toffoli["load_and"] == r + n
        assert toffoli["native"] <= toffoli["load_and"] + 1


def test_cdkpm_native_uses_one_ancilla():
    built = build_controlled_adder(8, "cdkpm", "native")
    assert built.ancilla_count == 1  # thm 2.12
    assert built.counts().toffoli == 3 * 8 + 1


def test_gidney_native_counts():
    built = build_controlled_adder(8, "gidney", "native")
    assert built.ancilla_count == 8 + 1  # prop 2.11
    assert built.counts().toffoli == 2 * 8 + 1


def test_draper_controlled_toffoli_count_is_n():
    built = build_controlled_adder(8, "draper")
    assert built.counts().toffoli == 8  # thm 2.14
    assert built.ancilla_count == 1
