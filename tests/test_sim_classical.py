"""Classical (basis-state) simulator tests, including MBU-block semantics."""

import math

import pytest

from repro.circuits import Circuit
from repro.sim import (
    ClassicalSimulator,
    ConstantOutcomes,
    UnsupportedGateError,
    run_classical,
)


def test_toffoli_network_semantics():
    circ = Circuit()
    a = circ.add_register("a", 4)
    circ.x(a[0])
    circ.cx(a[0], a[1])
    circ.ccx(a[0], a[1], a[2])
    circ.swap(a[2], a[3])
    circ.cswap(a[0], a[2], a[3])
    out = run_classical(circ)
    # x: a0=1; cx: a1=1; ccx: a2=1; swap: a2=0,a3=1; cswap(ctrl=1): a2=1,a3=0
    assert out["a"] == 0b0111


def test_large_register_runs_fast():
    circ = Circuit()
    a = circ.add_register("a", 64)
    b = circ.add_register("b", 64)
    for i in range(64):
        circ.cx(a[i], b[i])
    out = run_classical(circ, {"a": 0xDEADBEEFCAFEBABE})
    assert out["b"] == 0xDEADBEEFCAFEBABE


def test_bare_hadamard_rejected():
    circ = Circuit()
    q = circ.add_qubit("q")
    circ.h(q)
    with pytest.raises(UnsupportedGateError):
        run_classical(circ)


def test_diagonal_gates_track_global_phase_only():
    circ = Circuit()
    a = circ.add_register("a", 2)
    circ.x(a[0])
    circ.x(a[1])
    circ.cz(a[0], a[1])
    circ.t(a[0])
    sim = ClassicalSimulator(circ)
    sim.run()
    assert sim.get_register("a") == 3
    assert sim.global_phase == pytest.approx(math.pi + math.pi / 4)


def test_z_measurement_is_deterministic():
    circ = Circuit()
    q = circ.add_qubit("q")
    circ.x(q)
    bit = circ.measure(q)
    sim = ClassicalSimulator(circ)
    sim.run()
    assert sim.bits[bit] == 1


def test_x_measurement_is_a_coin():
    circ = Circuit()
    q = circ.add_qubit("q")
    circ.x(q)
    bit = circ.measure(q, basis="x")
    sim = ClassicalSimulator(circ, outcomes=ConstantOutcomes(1))
    sim.run()
    assert sim.bits[bit] == 1
    assert sim.qubits[q] == 1  # post-measurement state |1>


def test_conditional_execution():
    circ = Circuit()
    q = circ.add_qubit("q")
    r = circ.add_qubit("r")
    circ.x(q)
    bit = circ.measure(q)
    with circ.capture() as body:
        circ.x(r)
    circ.cond(bit, body)
    out = run_classical(circ)
    assert out["r"] == 1


def test_gidney_and_uncompute_pattern():
    """AND-compute then measure-based AND-uncompute leaves ancilla |0>."""
    circ = Circuit()
    x = circ.add_qubit("x")
    y = circ.add_qubit("y")
    anc = circ.add_qubit("anc")
    circ.x(x)
    circ.x(y)
    circ.ccx(x, y, anc)  # anc = 1
    bit = circ.measure(anc, basis="x")
    with circ.capture() as body:
        circ.cz(x, y)
        circ.x(anc)
    circ.cond(bit, body)
    for outcome in (0, 1):
        sim = ClassicalSimulator(circ, outcomes=ConstantOutcomes(outcome))
        sim.run()
        assert sim.qubits[anc] == 0
        assert (sim.qubits[x], sim.qubits[y]) == (1, 1)


class TestMBUBlock:
    def _circuit(self):
        circ = Circuit()
        a = circ.add_register("a", 2)
        g = circ.add_qubit("g")
        circ.x(a[0])
        circ.x(a[1])
        circ.ccx(a[0], a[1], g)  # garbage g = a0 AND a1 = 1
        with circ.capture() as body:
            circ.h(g)
            circ.ccx(a[0], a[1], g)
            circ.h(g)
            circ.x(g)
        circ.mbu(g, body)
        return circ, a, g

    def test_both_branches_clean_the_garbage(self):
        for outcome in (0, 1):
            circ, a, g = self._circuit()
            sim = ClassicalSimulator(circ, outcomes=ConstantOutcomes(outcome))
            sim.run()
            assert sim.qubits[g] == 0
            assert sim.get_register("a") == 3

    def test_tally_counts_correction_only_when_taken(self):
        circ, a, g = self._circuit()
        sim = ClassicalSimulator(circ, outcomes=ConstantOutcomes(0))
        sim.run()
        assert sim.tally["ccx"] == 1  # only the compute
        circ, a, g = self._circuit()
        sim = ClassicalSimulator(circ, outcomes=ConstantOutcomes(1))
        sim.run()
        assert sim.tally["ccx"] == 2  # compute + correction oracle

    def test_outer_garbage_use_in_nested_mbu_body_rejected(self):
        """A nested MBU body reading an *outer* garbage qubit is not
        basis-preserving and must raise instead of silently diverging from
        the statevector ground truth."""
        circ = Circuit()
        d = circ.add_qubit("d")
        g1 = circ.add_qubit("g1")
        g2 = circ.add_qubit("g2")
        with circ.capture() as inner:
            circ.h(g2)
            circ.cx(g1, d)  # outer garbage g1 used as a control
            circ.h(g2)
            circ.x(g2)
        with circ.capture() as outer:
            circ.h(g1)
            circ.mbu(g2, inner)
            circ.h(g1)
            circ.x(g1)
        circ.mbu(g1, outer)
        from repro.sim import ForcedOutcomes

        sim = ClassicalSimulator(circ, outcomes=ForcedOutcomes([1, 1]))
        with pytest.raises(UnsupportedGateError):
            sim.run()

    def test_cz_on_garbage_inside_body_rejected(self):
        circ = Circuit()
        a = circ.add_qubit("a")
        g = circ.add_qubit("g")
        with circ.capture() as body:
            circ.h(g)
            circ.cz(a, g)
            circ.h(g)
            circ.x(g)
        circ.mbu(g, body)
        sim = ClassicalSimulator(circ, outcomes=ConstantOutcomes(1))
        with pytest.raises(UnsupportedGateError):
            sim.run()


def test_set_register_range_checked():
    circ = Circuit()
    circ.add_register("a", 2)
    sim = ClassicalSimulator(circ)
    with pytest.raises(ValueError):
        sim.set_register(circ.registers["a"], 4)
