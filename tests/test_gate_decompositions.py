"""Gate-level checks of the paper's figure decompositions (figs 4, 6, 7,
9, 16, 17): the CARRY/SUM and MAJ/UMA families, both UMA variants, and
the controlled UMA — verified against their specified truth tables.
"""

import itertools

import pytest

from repro.arithmetic.cdkpm import (
    emit_cuma,
    emit_maj,
    emit_maj_adj,
    emit_uma,
    emit_uma3,
)
from repro.arithmetic.vbe import emit_carry, emit_carry_adj, emit_sum
from repro.boolarith import maj
from repro.circuits import Circuit
from repro.sim import ClassicalSimulator


def _apply(emit, n_qubits, bits):
    circ = Circuit()
    q = circ.add_register("q", n_qubits)
    emit(circ, *q.qubits)
    sim = ClassicalSimulator(circ)
    for i, b in enumerate(bits):
        sim.set_qubit(q[i], b)
    sim.run()
    return tuple(sim.qubits[q[i]] for i in range(n_qubits))


class TestVBEGates:
    def test_carry_truth_table(self):
        """Fig 4: |c,x,y,c'> -> |c, x, y^x, c' ^ maj(x,y,c)>."""
        for c, x, y, cn in itertools.product((0, 1), repeat=4):
            out = _apply(emit_carry, 4, (c, x, y, cn))
            assert out == (c, x, y ^ x, cn ^ maj(x, y, c))

    def test_carry_adj_inverts(self):
        for bits in itertools.product((0, 1), repeat=4):
            def both(circ, a, b, c, d):
                emit_carry(circ, a, b, c, d)
                emit_carry_adj(circ, a, b, c, d)
            assert _apply(both, 4, bits) == bits

    def test_sum_truth_table(self):
        """Fig 4: |c,x,y> -> |c, x, y ^ x ^ c>."""
        for c, x, y in itertools.product((0, 1), repeat=3):
            assert _apply(emit_sum, 3, (c, x, y)) == (c, x, y ^ x ^ c)


class TestCDKPMGates:
    def test_maj_truth_table(self):
        """Fig 6: |c,y,x> -> |c^x, y^x, maj(x,y,c)>."""
        for c, y, x in itertools.product((0, 1), repeat=3):
            assert _apply(emit_maj, 3, (c, y, x)) == (c ^ x, y ^ x, maj(x, y, c))

    def test_maj_adj_inverts(self):
        for bits in itertools.product((0, 1), repeat=3):
            def both(circ, a, b, c):
                emit_maj(circ, a, b, c)
                emit_maj_adj(circ, a, b, c)
            assert _apply(both, 3, bits) == bits

    @pytest.mark.parametrize("uma", [emit_uma, emit_uma3])
    def test_maj_uma_writes_sum(self, uma):
        """Fig 9: MAJ then UMA restores c and x and writes s = x^y^c."""
        for c, y, x in itertools.product((0, 1), repeat=3):
            def pair(circ, a, b, d):
                emit_maj(circ, a, b, d)
                uma(circ, a, b, d)
            assert _apply(pair, 3, (c, y, x)) == (c, x ^ y ^ c, x)

    def test_uma_variants_agree(self):
        """Fig 7: the 2-CNOT and 3-CNOT UMA compute the same function."""
        for bits in itertools.product((0, 1), repeat=3):
            assert _apply(emit_uma, 3, bits) == _apply(emit_uma3, 3, bits)

    def test_uma3_gate_mix(self):
        circ = Circuit()
        q = circ.add_register("q", 3)
        emit_uma3(circ, *q.qubits)
        from repro.circuits import count_gates
        counts = count_gates(circ)
        assert counts["ccx"] == 1 and counts["cx"] == 3 and counts["x"] == 2

    def test_cuma_controlled_write(self):
        """Figs 16-17: MAJ + C-UMA restores everything when ctrl=0 and
        behaves like MAJ+UMA when ctrl=1."""
        for ctrl in (0, 1):
            for c, y, x in itertools.product((0, 1), repeat=3):
                def pair(circ, k, a, b, d):
                    emit_maj(circ, a, b, d)
                    emit_cuma(circ, k, a, b, d)
                out = _apply(pair, 4, (ctrl, c, y, x))
                expected_y = (x ^ y ^ c) if ctrl else y
                assert out == (ctrl, c, expected_y, x)


class TestUMA3InsideAdder:
    def test_adder_with_uma3_blocks(self):
        """A CDKPM adder assembled with the 3-CNOT UMA is still an adder."""
        from repro.arithmetic.cdkpm import emit_maj

        n = 4
        for x in (0, 3, 9, 15):
            for y in (0, 5, 11, 15):
                circ = Circuit()
                xr = circ.add_register("x", n)
                yr = circ.add_register("y", n + 1)
                c0 = circ.add_register("c0", 1)
                chain = [c0[0]] + list(xr.qubits)
                for i in range(n):
                    emit_maj(circ, chain[i], yr[i], xr[i])
                circ.cx(xr[n - 1], yr[n])
                for i in range(n - 1, -1, -1):
                    emit_uma3(circ, chain[i], yr[i], xr[i])
                sim = ClassicalSimulator(circ)
                sim.set_register(xr, x)
                sim.set_register(yr, y)
                sim.run()
                assert sim.get_register(yr) == x + y
                assert sim.get_register(xr) == x
