"""Comparators (defs 2.24/2.29/2.33/2.37; props 2.25-2.36, thm 2.38)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arithmetic import (
    build_comparator,
    build_compare_lt_const,
    build_controlled_comparator,
    build_controlled_compare_lt_const,
)
from tests.arith_helpers import run_draper, run_ripple

RIPPLE = ["vbe", "cdkpm", "gidney"]


class TestComparator:
    @pytest.mark.parametrize("family", RIPPLE)
    def test_exhaustive(self, family):
        n = 3
        for x in range(1 << n):
            for y in range(1 << n):
                for t in (0, 1):
                    built = build_comparator(n, family)
                    out = run_ripple(built, {"x": x, "y": y, "t": t}, seed=x + y)
                    assert out["t"] == t ^ (1 if x > y else 0)
                    assert out["x"] == x and out["y"] == y

    @pytest.mark.parametrize("family", RIPPLE)
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_random_wide(self, family, data):
        n = data.draw(st.integers(min_value=4, max_value=32))
        x = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        y = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        built = build_comparator(n, family)
        out = run_ripple(built, {"x": x, "y": y}, seed=n)
        assert out["t"] == (1 if x > y else 0)

    def test_draper(self):
        n = 2
        for x in range(1 << n):
            for y in range(1 << n):
                for t in (0, 1):
                    built = build_comparator(n, "draper")
                    out = run_draper(built, {"x": x, "y": y, "t": t})
                    assert out["t"] == t ^ (1 if x > y else 0)

    def test_toffoli_counts(self):
        """Table 6: CDKPM 2n, Gidney n, (VBE-flavoured 4n)."""
        n = 9
        assert build_comparator(n, "cdkpm").counts().toffoli == 2 * n
        assert build_comparator(n, "gidney").counts().toffoli == n
        assert build_comparator(n, "vbe").counts().toffoli == 4 * n
        assert build_comparator(n, "cdkpm").ancilla_count == 1


class TestControlledComparator:
    @pytest.mark.parametrize("family", RIPPLE + ["draper"])
    def test_exhaustive(self, family):
        n = 2
        runner = run_draper if family == "draper" else run_ripple
        for ctrl in (0, 1):
            for x in range(1 << n):
                for y in range(1 << n):
                    built = build_controlled_comparator(n, family)
                    out = runner(built, {"ctrl": ctrl, "x": x, "y": y}, seed=x)
                    assert out["t"] == (ctrl if x > y else 0)

    def test_one_extra_toffoli(self):
        """Props 2.30/2.31: control costs exactly one extra Toffoli."""
        n = 7
        for family in RIPPLE:
            plain = build_comparator(n, family).counts().toffoli
            ctrl = build_controlled_comparator(n, family).counts().toffoli
            assert ctrl == plain + 1


class TestConstantComparator:
    @pytest.mark.parametrize("family", RIPPLE)
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_lt_const(self, family, data):
        n = data.draw(st.integers(min_value=1, max_value=24))
        a = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        x = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        built = build_compare_lt_const(n, a, family)
        out = run_ripple(built, {"x": x}, seed=5)
        assert out["t"] == (1 if x < a else 0)

    @pytest.mark.parametrize("family", RIPPLE + ["draper"])
    def test_controlled_lt_const(self, family):
        n = 3
        runner = run_draper if family == "draper" else run_ripple
        for ctrl in (0, 1):
            for a in range(1 << n):
                for x in range(1 << n):
                    built = build_controlled_compare_lt_const(n, a, family)
                    out = runner(built, {"ctrl": ctrl, "x": x}, seed=a)
                    assert out["t"] == (1 if x < ctrl * a else 0)

    def test_draper_lt_const(self):
        n = 3
        for a in range(1 << n):
            for x in range(1 << n):
                built = build_compare_lt_const(n, a, "draper")
                out = run_draper(built, {"x": x})
                assert out["t"] == (1 if x < a else 0)


class TestUnequalWidths:
    """Remark 2.32: comparing an m-bit with an (m+1)-bit register costs one
    extra Toffoli instead of a padded chain."""

    @pytest.mark.parametrize("family", RIPPLE)
    def test_b_extra(self, family):
        from repro.circuits import Circuit
        from repro.arithmetic.families import KITS
        from repro.sim import run_classical, RandomOutcomes

        kit = KITS[family]
        m = 3
        for a in range(1 << m):
            for b in range(1 << (m + 1)):
                circ = Circuit()
                ar = circ.add_register("a", m)
                br = circ.add_register("b", m + 1)
                tr = circ.add_register("t", 1)
                anc = circ.add_register("anc", kit.compare_ancillas(m))
                kit.emit_compare_gt(
                    circ, ar.qubits, br.qubits[:m], tr[0], anc.qubits,
                    b_extra=br.qubits[m],
                )
                out = run_classical(
                    circ, {"a": a, "b": b}, outcomes=RandomOutcomes(a + b)
                )
                assert out["t"] == (1 if a > b else 0), (family, a, b)
                assert out["a"] == a and out["b"] == b

    def test_b_extra_and_ctrl_exclusive(self):
        from repro.circuits import Circuit
        from repro.arithmetic.cdkpm import emit_cdkpm_compare_gt

        circ = Circuit()
        a = circ.add_register("a", 2)
        b = circ.add_register("b", 2)
        extra = circ.add_register("e", 2)
        t = circ.add_register("t", 1)
        c0 = circ.add_register("c0", 1)
        with pytest.raises(ValueError):
            emit_cdkpm_compare_gt(
                circ, a.qubits, b.qubits, t[0], c0[0],
                b_extra=extra[0], ctrl=extra[1],
            )
