"""Statevector simulator tests: gate semantics, measurement, feedback."""

import math

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.sim import (
    ConstantOutcomes,
    ForcedOutcomes,
    ImpossibleOutcomeError,
    RandomOutcomes,
    StatevectorSimulator,
    run_statevector,
)


def test_x_and_cx_and_ccx_on_basis_states():
    circ = Circuit()
    a = circ.add_register("a", 3)
    circ.x(a[0])
    circ.cx(a[0], a[1])
    circ.ccx(a[0], a[1], a[2])
    sim = run_statevector(circ)
    assert sim.register_values() == {(7,): pytest.approx(1.0)}


def test_hadamard_makes_uniform_superposition():
    circ = Circuit()
    a = circ.add_register("a", 2)
    circ.h(a[0])
    circ.h(a[1])
    sim = run_statevector(circ)
    amps = sim.register_values()
    assert set(amps) == {(0,), (1,), (2,), (3,)}
    for amp in amps.values():
        assert amp == pytest.approx(0.5)


def test_bell_state_and_measurement_correlation():
    circ = Circuit()
    a = circ.add_register("a", 2)
    circ.h(a[0])
    circ.cx(a[0], a[1])
    b0 = circ.measure(a[0])
    b1 = circ.measure(a[1])
    for forced in (0, 1):
        sim = StatevectorSimulator(circ, outcomes=ForcedOutcomes([forced, forced]))
        sim.run()
        assert sim.bits[b0] == sim.bits[b1] == forced


def test_forcing_impossible_outcome_raises():
    circ = Circuit()
    q = circ.add_qubit("q")
    circ.measure(q)  # |0> with certainty
    sim = StatevectorSimulator(circ, outcomes=ForcedOutcomes([1]))
    with pytest.raises(ImpossibleOutcomeError):
        sim.run()


def test_phase_gates_compose_to_z():
    """S^2 == Z on |1>: check via interference with Hadamards."""
    circ = Circuit()
    q = circ.add_qubit("q")
    circ.h(q)
    circ.s(q)
    circ.s(q)
    circ.h(q)  # HZH = X, so |0> -> |1>
    sim = run_statevector(circ)
    assert sim.register_values() == {(1,): pytest.approx(1.0)}


def test_cphase_matches_matrix():
    theta = 2.0 * math.pi / 8
    circ = Circuit()
    a = circ.add_register("a", 2)
    circ.x(a[0])
    circ.x(a[1])
    circ.cphase(a[0], a[1], theta)
    sim = run_statevector(circ)
    amp = sim.register_values()[(3,)]
    assert amp == pytest.approx(np.exp(1j * theta))


def test_crk_is_2pi_over_2k():
    circ = Circuit()
    a = circ.add_register("a", 2)
    circ.x(a[0])
    circ.x(a[1])
    circ.crk(a[0], a[1], 2)  # theta = pi/2
    sim = run_statevector(circ)
    assert sim.register_values()[(3,)] == pytest.approx(1j)


def test_swap_and_cswap():
    circ = Circuit()
    a = circ.add_register("a", 3)
    circ.x(a[0])
    circ.swap(a[0], a[1])  # state |010>
    circ.x(a[2])
    circ.cswap(a[2], a[1], a[0])  # control set: swap back -> |101>
    sim = run_statevector(circ)
    assert sim.register_values() == {(5,): pytest.approx(1.0)}


def test_conditional_feedback_applies_correction():
    """Teleport-like: measure a |+> control; conditioned X should flip."""
    circ = Circuit()
    q = circ.add_qubit("q")
    r = circ.add_qubit("r")
    circ.h(q)
    bit = circ.measure(q)
    with circ.capture() as body:
        circ.x(r)
    circ.cond(bit, body)
    sim = StatevectorSimulator(circ, outcomes=ForcedOutcomes([1]))
    sim.run()
    assert sim.probability_one(r) == pytest.approx(1.0)
    sim0 = StatevectorSimulator(circ, outcomes=ForcedOutcomes([0]))
    sim0.run()
    assert sim0.probability_one(r) == pytest.approx(0.0)


def test_x_basis_measurement_of_plus_state_is_deterministic():
    circ = Circuit()
    q = circ.add_qubit("q")
    circ.h(q)  # |+>
    bit = circ.measure(q, basis="x")
    sim = StatevectorSimulator(circ, outcomes=ConstantOutcomes(1))
    sim.run()
    # |+> measured in X basis gives 0 with certainty (H|+> = |0>)
    assert sim.bits[bit] == 0


def test_register_values_detects_dirty_ancilla():
    circ = Circuit()
    a = circ.add_register("a", 1)
    anc = circ.add_register("anc", 1)
    circ.x(anc[0])
    sim = run_statevector(circ)
    with pytest.raises(ValueError, match="garbage"):
        sim.register_values(["a"])


def test_random_outcomes_are_reproducible():
    circ = Circuit()
    q = circ.add_qubit("q")
    circ.h(q)
    bit = circ.measure(q)
    results = set()
    for _ in range(3):
        sim = StatevectorSimulator(circ, outcomes=RandomOutcomes(seed=7))
        sim.run()
        results.add(sim.bits[bit])
    assert len(results) == 1


def test_qubit_limit_enforced():
    circ = Circuit()
    circ.add_register("a", 30)
    with pytest.raises(ValueError, match="dense"):
        StatevectorSimulator(circ)


def test_set_basis_state_and_norm_preserved():
    circ = Circuit()
    a = circ.add_register("a", 3)
    b = circ.add_register("b", 2)
    for i in range(3):
        circ.h(a[i])
    circ.cx(a[0], b[0])
    sim = StatevectorSimulator(circ)
    sim.set_basis_state({"a": 5, "b": 2})
    sim.run()
    assert np.linalg.norm(sim.state) == pytest.approx(1.0)
