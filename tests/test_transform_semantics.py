"""Property tests: every transform pass preserves circuit semantics.

Extends the ``tests/test_sim_cross.py`` pattern to the transform layer: for
random small circuits *and* for every Table 1-6 row builder, applying a
pass must leave the computed register values unchanged on every backend
that can simulate the circuit (``classical`` / ``statevector`` /
``bitplane``).  Measurement-based rewrites (``insert_mbu``,
``lower_toffoli``) are checked under random outcomes — the data registers
must be outcome-independent, which is exactly the paper's correctness
claim for MBU.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, count_gates, reference_emission
from repro.pipeline.cache import build_spec
from repro.resources.tables import TABLE_SPECS
from repro.sim import StatevectorSimulator, simulate
from repro.transform import apply_transforms
from repro.verify.generate import random_reversible_circuit

N_QUBITS = 5


def _random_circuit(rng: random.Random, n_ops: int, *, unitary_only: bool = False) -> Circuit:
    """The shared random reversible circuit generator at this module's width."""
    return random_reversible_circuit(rng, n_ops, width=N_QUBITS, unitary_only=unitary_only)


def _values(circuit: Circuit, inputs, seed: int, backend: str):
    result = simulate(circuit, inputs, backend=backend, seed=seed, tally=False,
                      **({"batch": 8} if backend == "bitplane" else {}))
    if backend == "bitplane":
        return {name: lanes[0] for name, lanes in result.registers.items()}
    return result.registers


@given(st.integers(0, 2**32 - 1), st.integers(0, 2**N_QUBITS - 1))
@settings(max_examples=25, deadline=None)
def test_cancel_adjacent_preserves_semantics(seed, value):
    rng = random.Random(seed)
    circ = _random_circuit(rng, 20)
    out = apply_transforms(circ, ["cancel_adjacent"])
    for backend in ("classical", "bitplane"):
        assert _values(out, {"a": value}, seed, backend) == _values(
            circ, {"a": value}, seed, backend
        )
    sv0 = StatevectorSimulator(circ)
    sv0.set_basis_state({"a": value})
    sv0.run()
    sv1 = StatevectorSimulator(out)
    sv1.set_basis_state({"a": value})
    sv1.run()
    assert sv0.register_values().keys() == sv1.register_values().keys()


@given(st.integers(0, 2**32 - 1), st.integers(0, 2**N_QUBITS - 1))
@settings(max_examples=25, deadline=None)
def test_invert_composes_to_identity(seed, value):
    rng = random.Random(seed)
    circ = _random_circuit(rng, 15, unitary_only=True)
    inv = apply_transforms(circ, ["invert"])
    for backend in ("classical", "bitplane"):
        mid = _values(circ, {"a": value}, seed, backend)["a"]
        back = _values(inv, {"a": mid}, seed, backend)["a"]
        assert back == value


@given(st.integers(0, 2**32 - 1), st.integers(0, 2**N_QUBITS - 1), st.integers(0, 99))
@settings(max_examples=25, deadline=None)
def test_lower_toffoli_preserves_semantics(seed, value, outcome_seed):
    rng = random.Random(seed)
    circ = _random_circuit(rng, 15, unitary_only=True)
    out = apply_transforms(circ, ["lower_toffoli"])
    for backend in ("classical", "bitplane"):
        ref = _values(circ, {"a": value}, seed, backend)["a"]
        got = _values(out, {"a": value}, outcome_seed, backend)
        assert got["a"] == ref  # outcome-independent
        assert got.get("tof_and_anc", 0) == 0  # ancilla returned clean


@given(st.integers(0, 2**32 - 1), st.integers(0, 2**N_QUBITS - 1))
@settings(max_examples=10, deadline=None)
def test_decompose_clifford_t_preserves_semantics(seed, value):
    rng = random.Random(seed)
    circ = _random_circuit(rng, 10, unitary_only=True)
    out = apply_transforms(circ, ["decompose_clifford_t"])
    sv0 = StatevectorSimulator(circ)
    sv0.set_basis_state({"a": value})
    sv0.run()
    sv1 = StatevectorSimulator(out)
    sv1.set_basis_state({"a": value})
    sv1.run()
    (ref_key, ref_amp), = sv0.register_values().items()
    (got_key, got_amp), = sv1.register_values().items()
    assert got_key == ref_key
    assert abs(abs(got_amp) - abs(ref_amp)) < 1e-9


@given(st.integers(0, 2**32 - 1), st.integers(0, 2**N_QUBITS - 1), st.integers(0, 99))
@settings(max_examples=20, deadline=None)
def test_insert_mbu_preserves_semantics_on_random_oracles(seed, value, outcome_seed):
    """Compute a garbage bit from random data, uncompute it through a marked
    reference oracle; after insert_mbu the data is intact and g is |0>,
    whatever the measurement outcome."""
    from repro.circuits import uncompute_label

    rng = random.Random(seed)
    circ = Circuit()
    a = circ.add_register("a", N_QUBITS)
    g = circ.add_register("g", 1)

    pairs = [rng.sample(range(N_QUBITS), k=2) for _ in range(3)]

    def oracle():
        for u, v in pairs:
            circ.ccx(a[u], a[v], g[0])
        circ.cx(a[pairs[0][0]], g[0])

    oracle()  # compute garbage
    label = uncompute_label("uncompute-oracle", g[0])
    circ.begin(label)
    oracle()  # coherent reference uncompute
    circ.end(label)

    out = apply_transforms(circ, ["insert_mbu"])
    assert count_gates(out)["measure"] == 1
    for backend in ("classical", "bitplane"):
        got = _values(out, {"a": value}, outcome_seed, backend)
        assert got == {"a": value, "g": 0}


def _basis_rows():
    """Every non-QFT table row variant (the ones with basis-state
    semantics), as (id, CircuitSpec) pairs at a small width."""
    rows = []
    n = 3
    for table, spec in sorted(TABLE_SPECS.items()):
        p, a = spec.defaults(n)
        for row in spec.rows:
            if row.key.startswith("draper"):
                continue  # QFT-based: no basis-state semantics
            for variant, circuit_spec in row.specs(n, p=p, a=a).items():
                rows.append((f"{table}-{row.key}-{variant}", circuit_spec))
    return rows


@pytest.mark.parametrize("pass_name", ["cancel_adjacent", "lower_toffoli"])
@pytest.mark.parametrize("row_id,circuit_spec", _basis_rows())
def test_passes_preserve_table_row_semantics(pass_name, row_id, circuit_spec):
    """For every ripple-carry table-row builder, the pass output computes
    the same register values as the original on classical and bitplane."""
    built = build_spec(circuit_spec)
    transformed = apply_transforms(built.circuit, [pass_name])
    inputs = {}
    for name, reg in built.circuit.registers.items():
        if name in built.ancilla_names or not len(reg):
            continue
        inputs[name] = min(3, (1 << len(reg)) - 1) if name != "y" else 1
    for backend in ("classical", "bitplane"):
        ref = _values(built.circuit, inputs, 5, backend)
        got = _values(transformed, inputs, 17, backend)
        for name in built.circuit.registers:
            assert got[name] == ref[name], (row_id, pass_name, name)


@pytest.mark.parametrize("row_id,circuit_spec", _basis_rows())
def test_insert_mbu_preserves_table_row_semantics(row_id, circuit_spec):
    """insert_mbu(reference build) computes the same values as the
    hand-built circuit for every ripple-carry table row."""
    built = build_spec(circuit_spec)
    with reference_emission():
        ref_built = build_spec(circuit_spec)
    transformed = apply_transforms(ref_built.circuit, ["insert_mbu"])
    inputs = {}
    for name, reg in built.circuit.registers.items():
        if name in built.ancilla_names or not len(reg):
            continue
        inputs[name] = min(2, (1 << len(reg)) - 1)
    for backend in ("classical", "bitplane"):
        ref = _values(built.circuit, inputs, 9, backend)
        got = _values(transformed, inputs, 23, backend)
        for name in built.circuit.registers:
            assert got[name] == ref[name], (row_id, name)
