"""Extensions: modular multiplication / exponentiation (paper future work)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extensions import (
    build_inplace_mul_const_mod,
    build_modexp,
    build_mul_const_mod,
    modexp_cost,
)
from repro.sim import ConstantOutcomes, RandomOutcomes, run_classical


def _run(built, inputs, mbu, seed):
    outcomes = ConstantOutcomes(seed % 2) if mbu else RandomOutcomes(seed)
    return run_classical(built.circuit, inputs, outcomes=outcomes)


class TestMulConstMod:
    @pytest.mark.parametrize("mbu", [False, True])
    def test_exhaustive_small(self, mbu):
        n, p = 3, 5
        for a in range(p):
            for x in range(p):
                for y in range(p):
                    built = build_mul_const_mod(n, p, a, mbu=mbu)
                    out = _run(built, {"x": x, "y": y}, mbu, seed=a + x + y)
                    assert out["y"] == (y + a * x) % p
                    assert out["x"] == x and out["t"] == 0

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_random_wide(self, data):
        n = data.draw(st.integers(min_value=4, max_value=10))
        p = data.draw(st.integers(min_value=2, max_value=(1 << n) - 1))
        a = data.draw(st.integers(min_value=0, max_value=p - 1))
        x = data.draw(st.integers(min_value=0, max_value=p - 1))
        built = build_mul_const_mod(n, p, a, mbu=data.draw(st.booleans()))
        out = _run(built, {"x": x, "y": 0}, built.meta["mbu"], seed=p)
        assert out["y"] == (a * x) % p


class TestInplaceMul:
    @pytest.mark.parametrize("mbu", [False, True])
    def test_exhaustive_small(self, mbu):
        n, p = 3, 7
        for a in (1, 2, 3, 4, 5, 6):
            for x in range(p):
                built = build_inplace_mul_const_mod(n, p, a, mbu=mbu)
                out = _run(built, {"x": x}, mbu, seed=a * x)
                assert out["x"] == (a * x) % p
                assert out["y"] == 0 and out["t"] == 0

    def test_non_invertible_rejected(self):
        with pytest.raises(ValueError, match="not invertible"):
            build_inplace_mul_const_mod(3, 6, 3)


class TestModExp:
    @pytest.mark.parametrize("mbu", [False, True])
    @pytest.mark.parametrize("a", [2, 3])
    def test_exhaustive_small(self, mbu, a):
        n, p, n_exp = 3, 5, 3
        for e in range(1 << n_exp):
            built = build_modexp(n_exp, n, p, a, mbu=mbu)
            out = _run(built, {"e": e}, mbu, seed=e)
            assert out["x"] == pow(a, e, p)
            assert out["e"] == e and out["y"] == 0

    def test_modexp_cost_estimate_scales(self):
        """The closed-form estimate is linear in the adder count and the
        MBU variant is strictly cheaper."""
        plain = modexp_cost(2048, 1024, "cdkpm", mbu=False)
        mbu = modexp_cost(2048, 1024, "cdkpm", mbu=True)
        assert plain["adders"] == 2 * 1024 * 2048
        assert mbu["toffoli"] < plain["toffoli"]
        saving = 1 - mbu["toffoli"] / plain["toffoli"]
        assert 0.10 < float(saving) < 0.15  # the paper's headline range

    def test_cost_estimate_matches_built_circuit_shape(self):
        """At a small size, the dominant term (controlled modular adders)
        of the estimate matches the built circuit's Toffoli count to
        within the per-adder AND/cswap overhead."""
        n_exp, n, p, a = 2, 4, 13, 3
        est = modexp_cost(n_exp, n, "cdkpm", mbu=False)
        built = build_modexp(n_exp, n, p, a, "cdkpm", mbu=False)
        measured = built.counts("worst").toffoli
        adders = int(est["adders"])
        assert abs(measured - est["toffoli"]) <= 3 * adders + n * n_exp
