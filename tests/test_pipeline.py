"""Pipeline-layer tests: specs, cache, sweep runner, artifacts, golden."""

import json
from fractions import Fraction
from pathlib import Path

import pytest

from repro.modular import build_modadd
from repro.pipeline import (
    CircuitCache,
    CircuitSpec,
    SweepConfig,
    build_spec,
    diff_artifacts,
    load_artifact,
    run_sweep,
    sweep_artifact,
    table_rows_with_mc,
    write_artifact,
)
from repro.pipeline.cli import main as cli_main, smoke_config
from repro.resources import table1, table4, table6
from repro.resources.tables import TABLE_SPECS, build_table_rows

GOLDEN = Path(__file__).parent / "golden" / "sweep_smoke.json"
TRANSFORM_GOLDEN = Path(__file__).parent / "golden" / "sweep_smoke_transform.json"


class TestCircuitSpec:
    def test_make_normalizes_param_order(self):
        a = CircuitSpec.make("modadd", 4, p=13, family="cdkpm", mbu=True)
        b = CircuitSpec.make("modadd", 4, mbu=True, family="cdkpm", p=13)
        assert a == b and hash(a) == hash(b)

    def test_build_spec_matches_direct_construction(self):
        spec = CircuitSpec.make("modadd", 5, p=29, family="cdkpm", mbu=True)
        via_spec = build_spec(spec)
        direct = build_modadd(5, 29, "cdkpm", mbu=True)
        assert via_spec.counts("expected") == direct.counts("expected")
        assert via_spec.logical_qubits == direct.logical_qubits

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown builder kind"):
            CircuitSpec.make("frobnicate", 4)
        with pytest.raises(ValueError, match="unknown builder kind"):
            build_spec(CircuitSpec("frobnicate", 4))

    def test_key_is_readable(self):
        spec = CircuitSpec.make("adder", 8, family="gidney")
        assert spec.key == "adder[n=8,family=gidney]"


class TestCircuitCache:
    def test_hit_returns_same_object(self):
        cache = CircuitCache()
        spec = CircuitSpec.make("adder", 4, family="cdkpm")
        first = cache.build(spec)
        second = cache.build(spec)
        assert first is second
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_counts_memoized(self):
        cache = CircuitCache()
        spec = CircuitSpec.make("adder", 4, family="cdkpm")
        c1 = cache.counts(spec)
        c2 = cache.counts(spec)
        assert c1 is c2
        assert cache.stats.count_hits == 1

    def test_lru_eviction(self):
        cache = CircuitCache(maxsize=1)
        s1 = CircuitSpec.make("adder", 4, family="cdkpm")
        s2 = CircuitSpec.make("adder", 5, family="cdkpm")
        cache.build(s1)
        cache.build(s2)
        assert len(cache) == 1 and s1 not in cache and s2 in cache
        assert cache.stats.evictions == 1

    def test_clear_resets_stats(self):
        cache = CircuitCache()
        cache.build(CircuitSpec.make("adder", 4, family="vbe"))
        cache.clear()
        assert len(cache) == 0 and cache.stats.misses == 0

    def test_program_memo_dropped_on_eviction(self):
        """Evicting a circuit must drop its memoized program too — a later
        request recompiles instead of returning a program pinned forever."""
        cache = CircuitCache(maxsize=1)
        s1 = CircuitSpec.make("modadd", 3, p=5, family="cdkpm", mbu=True)
        s2 = CircuitSpec.make("adder", 4, family="cdkpm")
        first = cache.program(s1)
        cache.build(s2)  # evicts s1 (and its program)
        assert s1 not in cache and cache.stats.evictions == 1
        second = cache.program(s1)
        assert second is not first
        assert cache.stats.program_misses == 2
        assert cache.stats.program_hits == 0

    def test_failure_memo_dropped_on_eviction(self):
        """Memoized compile *failures* follow the same eviction rule."""
        from repro.sim import UnsupportedGateError

        cache = CircuitCache(maxsize=1)
        qft = CircuitSpec.make("modadd_draper", 4, p=13, mbu=False)
        with pytest.raises(UnsupportedGateError):
            cache.program(qft)
        cache.build(CircuitSpec.make("adder", 4, family="cdkpm"))  # evict
        with pytest.raises(UnsupportedGateError):
            cache.program(qft)
        assert cache.stats.program_misses == 2  # failure re-memoized, not replayed

    def test_program_failure_replays_fresh_exceptions(self):
        """Memoized failures raise a *fresh* exception instance per hit."""
        from repro.sim import UnsupportedGateError

        cache = CircuitCache()
        qft = CircuitSpec.make("modadd_draper", 4, p=13, mbu=False)
        caught = []
        for _ in range(2):
            with pytest.raises(UnsupportedGateError) as exc:
                cache.program(qft)
            caught.append(exc.value)
        assert caught[0] is not caught[1]
        assert caught[0].args == caught[1].args
        assert cache.stats.program_misses == 1 and cache.stats.program_hits == 1

    def test_program_tally_variants_cached_independently(self):
        cache = CircuitCache()
        spec = CircuitSpec.make("modadd", 3, p=5, family="cdkpm", mbu=True)
        with_tally = cache.program(spec, tally=True)
        without = cache.program(spec, tally=False)
        assert with_tally is not without
        assert cache.program(spec, tally=True) is with_tally
        assert cache.program(spec, tally=False) is without
        assert cache.stats.program_misses == 2 and cache.stats.program_hits == 2


class TestDeclarativeTables:
    """The spec-driven builder reproduces the classic table functions."""

    @pytest.mark.parametrize("name,classic", [
        ("table1", table1), ("table4", table4), ("table6", table6),
    ])
    def test_build_table_rows_matches_classic(self, name, classic):
        assert build_table_rows(name, 5) == classic(5)

    def test_cached_equals_uncached(self):
        cache = CircuitCache()
        assert build_table_rows("table1", 4, cache=cache) == build_table_rows("table1", 4)
        assert cache.stats.misses > 0

    def test_every_table_declared(self):
        assert sorted(TABLE_SPECS) == [f"table{i}" for i in range(1, 7)]

    def test_row_specs_expand_to_concrete_circuits(self):
        for spec in TABLE_SPECS.values():
            p, a = spec.defaults(4)
            for row in spec.rows:
                for circuit_spec in row.specs(4, p=p, a=a).values():
                    assert build_spec(circuit_spec).circuit.num_qubits > 0


class TestSweepRunner:
    def test_mc_columns_attached_where_supported(self):
        rows = table_rows_with_mc("table1", 4, seed=11, mc_batch=64)
        by_label = {r["row"]: r for r in rows}
        assert "toffoli_mbu_mc" in by_label["CDKPM"]
        assert "toffoli_mbu_mc_ci95" in by_label["CDKPM"]
        assert "toffoli_mbu_mc" not in by_label["Draper"]  # QFT: no basis-state MC

    def test_mc_mean_is_close_to_expected(self):
        rows = table_rows_with_mc("table1", 4, seed=11, mc_batch=512)
        row = next(r for r in rows if r["row"] == "CDKPM")
        assert abs(float(row["toffoli_mbu_mc"] - row["toffoli_mbu"])) <= 3 * max(
            row["toffoli_mbu_mc_ci95"], 1e-9
        )

    def test_serial_sweep_structure(self):
        config = SweepConfig(
            tables=("table6",), sizes=(4, 5), seed=2, mc_batch=32,
            workers=0, include_savings=True, modexp=((2, 3),),
        )
        result = run_sweep(config)
        assert sorted(result.tables["table6"]) == [4, 5]
        assert sorted(result.savings) == [4, 5]
        assert len(result.modexp) == 1
        assert result.modexp[0]["toffoli_mbu"] < result.modexp[0]["toffoli"]
        assert result.cache_stats["misses"] > 0

    def test_modexp_formula_matches_built_circuit(self):
        config = SweepConfig(tables=(), sizes=(), workers=0,
                             include_savings=False, modexp=((2, 3),), mc_batch=32)
        row = run_sweep(config).modexp[0]
        # modexp_cost is documented exact for the Toffoli count
        assert row["toffoli"] == row["toffoli_paper"]
        assert row["toffoli_mbu"] == row["toffoli_mbu_paper"]

    def test_parallel_matches_serial(self):
        base = dict(tables=("table6",), sizes=(4,), seed=5, mc_batch=32,
                    include_savings=False)
        serial = run_sweep(SweepConfig(workers=0, **base))
        parallel = run_sweep(SweepConfig(workers=2, **base))
        assert serial.tables == parallel.tables


class TestArtifacts:
    def test_jsonified_artifact_round_trips(self, tmp_path):
        config = SweepConfig(tables=("table6",), sizes=(4,), workers=0,
                             include_savings=False, mc_batch=32)
        artifact = sweep_artifact(run_sweep(config))
        json_path, md_path = write_artifact(artifact, tmp_path)
        assert load_artifact(json_path) == artifact
        text = md_path.read_text()
        assert "Table 6" in text and "paper:" in text

    def test_fractions_serialized_exactly(self):
        config = SweepConfig(tables=("table1",), sizes=(4,), workers=0,
                             include_savings=False, mc_batch=32)
        artifact = sweep_artifact(run_sweep(config))
        rows = artifact["tables"]["table1"]["sizes"]["4"]
        gidney = next(r for r in rows if r["row"] == "Gidney")
        # 3.5n+1-style halves survive as exact "num/den" strings
        assert isinstance(gidney["toffoli_mbu"], (int, str))
        if isinstance(gidney["toffoli_mbu"], str):
            num, den = gidney["toffoli_mbu"].split("/")
            assert Fraction(int(num), int(den)) == Fraction(15)

    def test_diff_detects_changes(self):
        a = {"x": 1, "rows": [{"v": 2}]}
        b = {"x": 1, "rows": [{"v": 3}]}
        assert diff_artifacts(a, a) == []
        diffs = diff_artifacts(a, b)
        assert len(diffs) == 1 and "rows[0].v" in diffs[0]

    def test_diff_ignores_package_version(self):
        assert diff_artifacts({"package_version": "1"}, {"package_version": "2"}) == []

    def test_diff_ignores_worker_count(self):
        """A golden generated serially must accept a parallel rerun."""
        a = {"config": {"workers": 0, "seed": 7}}
        b = {"config": {"workers": 8, "seed": 7}}
        assert diff_artifacts(a, b) == []


class TestGolden:
    """The checked-in smoke artifact pins the whole pipeline's output."""

    def test_smoke_sweep_matches_golden(self):
        artifact = sweep_artifact(run_sweep(smoke_config()))
        golden = load_artifact(GOLDEN)
        diffs = diff_artifacts(artifact, golden)
        assert not diffs, "\n".join(diffs[:20])

    def test_cli_check_flow(self, tmp_path, capsys):
        rc = cli_main(["--smoke", "--out", str(tmp_path), "--check", str(GOLDEN)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "matches golden" in out
        written = json.loads((tmp_path / "tables.json").read_text())
        assert written["schema"] == 1

    def test_cli_check_fails_on_mismatch(self, tmp_path, capsys):
        tampered = load_artifact(GOLDEN)
        tampered["config"]["seed"] = 999
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(tampered))
        rc = cli_main(["--smoke", "--out", str(tmp_path), "--check", str(bad)])
        assert rc == 1

    def test_smoke_rejects_conflicting_flags(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli_main(["--smoke", "--seed", "42"])
        assert exc.value.code == 2
        assert "--smoke pins" in capsys.readouterr().err


class TestTransformFlag:
    """The --transform chain, wired through SweepConfig and CircuitSpec."""

    def test_transform_smoke_matches_golden(self, tmp_path):
        rc = cli_main([
            "--smoke", "--transform", "lower_toffoli",
            "--out", str(tmp_path), "--check", str(TRANSFORM_GOLDEN),
        ])
        assert rc == 0

    def test_transform_changes_measured_counts(self):
        from dataclasses import replace

        base = run_sweep(smoke_config())
        lowered = run_sweep(replace(smoke_config(), transforms=("lower_toffoli",)))
        row = base.tables["table6"][4][1]       # Gidney comparator row
        row_low = lowered.tables["table6"][4][1]
        assert row["row"] == row_low["row"] == "GIDNEY"
        # lowering adds one CNOT per Toffoli but keeps the Toffoli count
        assert row_low["toffoli"] == row["toffoli"]
        assert row_low["cnot"] == row["cnot"] + row["toffoli"]
        # the config records the chain, so artifacts are self-describing
        assert sweep_artifact(lowered)["config"]["transforms"] == ["lower_toffoli"]

    def test_transformed_specs_do_not_alias_in_cache(self):
        cache = CircuitCache()
        plain = CircuitSpec.make("comparator", 3, family="gidney")
        lowered = CircuitSpec.make(
            "comparator", 3, family="gidney", transforms=("lower_toffoli",)
        )
        a = cache.build(plain)
        b = cache.build(lowered)
        assert a is not b
        assert b.circuit.num_qubits == a.circuit.num_qubits + 1
        assert cache.build(lowered) is b  # memoized under the chained key

    def test_unknown_transform_flag_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli_main(["--smoke", "--transform", "bogus"])
        assert exc.value.code == 2
        assert "unknown transform pass" in capsys.readouterr().err


class TestCLIErrors:
    """Bad configuration must fail at parse time with a usage error (exit
    code 2), never as a mid-sweep traceback."""

    def test_unknown_table_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli_main(["--tables", "table9", "--sizes", "2"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "unknown table(s): table9" in err
        assert "table1" in err  # the error lists what *is* available

    def test_mixed_known_and_unknown_tables_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli_main(["--tables", "table1", "bogus", "nope", "--sizes", "2"])
        assert exc.value.code == 2
        assert "bogus, nope" in capsys.readouterr().err

    def test_unknown_transform_without_smoke_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli_main(["--transform", "lower_toffoli,bogus"])
        assert exc.value.code == 2
        assert "unknown transform pass" in capsys.readouterr().err


class TestScheduleAwareCache:
    """`program()` keys by (spec, tally, schedule): a scheduled and an
    unscheduled request must never alias (the pre-fix bug handed whoever
    asked second the other caller's fusion)."""

    def test_schedule_variants_cached_independently(self):
        cache = CircuitCache()
        spec = CircuitSpec.make("modadd", 3, p=5, family="cdkpm", mbu=True)
        plain = cache.program(spec)
        scheduled = cache.program(spec, schedule=True)
        assert plain is not scheduled
        assert cache.program(spec) is plain
        assert cache.program(spec, schedule=True) is scheduled
        assert cache.stats.program_misses == 2 and cache.stats.program_hits == 2

    def test_scheduled_program_is_actually_scheduled(self):
        cache = CircuitCache()
        spec = CircuitSpec.make("modadd", 3, p=5, family="cdkpm", mbu=True)
        assert cache.program(spec, schedule=True).scheduled
        assert not cache.program(spec).scheduled

    def test_eviction_drops_all_schedule_variants(self):
        cache = CircuitCache(maxsize=1)
        spec = CircuitSpec.make("modadd", 3, p=5, family="cdkpm", mbu=True)
        cache.program(spec)
        cache.program(spec, schedule=True)
        cache.build(CircuitSpec.make("adder", 4, family="cdkpm"))  # evict
        assert cache.stats.evictions == 1
        cache.program(spec)
        assert cache.stats.program_misses == 3  # recompiled, not replayed


class TestPerFamilyHitRatios:
    """`hit_ratio` aggregates all cache families; per-family ratios are
    reported alongside (the pre-fix bug reported only circuit builds, so
    a counts-heavy run looked cold no matter how hot it was)."""

    def test_aggregate_ratio_includes_counts_and_programs(self):
        cache = CircuitCache()
        spec = CircuitSpec.make("adder", 4, family="cdkpm")
        for _ in range(2):
            cache.counts(spec)  # miss+build-miss then hit
        # families: circuit 1 miss, counts 1 miss 1 hit
        assert cache.stats.hit_ratio == pytest.approx(1 / 3)
        assert cache.stats.circuit_hit_ratio == 0.0
        assert cache.stats.count_hit_ratio == 0.5
        assert cache.stats.program_hit_ratio == 0.0

    def test_as_dict_reports_every_ratio(self):
        cache = CircuitCache()
        cache.counts(CircuitSpec.make("adder", 4, family="cdkpm"))
        stats = cache.stats.as_dict()
        for key in ("hit_ratio", "circuit_hit_ratio", "count_hit_ratio",
                    "program_hit_ratio"):
            assert key in stats and 0.0 <= stats[key] <= 1.0

    def test_sweep_reports_per_family_ratios(self):
        result = run_sweep(smoke_config())
        stats = result.cache_stats
        assert {"hit_ratio", "circuit_hit_ratio", "count_hit_ratio",
                "program_hit_ratio"} <= set(stats)
        served = (stats["hits"] + stats["count_hits"] + stats["program_hits"])
        total = served + (stats["misses"] + stats["count_misses"]
                          + stats["program_misses"])
        assert stats["hit_ratio"] == pytest.approx(served / total, abs=1e-4)


class TestExecutionOnlyKnobs:
    """`schedule`/`kernels` are execution policy: they may change *how* the
    sweep runs, never a byte of what it produces."""

    def test_scheduled_vector_sweep_matches_golden(self):
        from repro.pipeline.jobs import ExecutionPolicy

        policy = ExecutionPolicy(schedule=True, kernels="vector")
        result = run_sweep(smoke_config(), policy=policy)
        golden = load_artifact(GOLDEN)
        assert diff_artifacts(sweep_artifact(result), golden) == []

    def test_cli_schedule_kernels_flags_match_golden(self, tmp_path, capsys):
        code = cli_main(["--smoke", "--schedule", "--kernels", "vector",
                         "--out", str(tmp_path), "--check", str(GOLDEN)])
        assert code == 0
        assert "matches golden" in capsys.readouterr().out

    def test_bad_kernels_flag_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli_main(["--smoke", "--kernels", "bogus"])
        assert exc.value.code == 2
        assert "--kernels" in capsys.readouterr().err

    def test_policy_validates_kernels(self):
        from repro.pipeline.jobs import ExecutionPolicy

        with pytest.raises(ValueError, match="kernel"):
            ExecutionPolicy(kernels="bogus")
