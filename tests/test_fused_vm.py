"""The fused bit-plane VM: equivalence, fusion-stage and reuse properties.

Three execution strategies must be observationally identical to the
interpretive ``ExecutionEngine`` walk on every circuit the basis-state
semantics admit — same register planes, same classical bits, same
executed-gate tally, same per-lane lane tallies, same measurement-outcome
stream consumption:

* the scalar compiled VM (``run_compiled(fused=False)``, PR 3's loop);
* the fused generated-kernel VM (``run_compiled()``, the default);
* the fused stacked-plane numpy VM (``run_compiled(kernels="arrays")``).

Circuits are randomized over gates, phase gates, Z/X measurements,
(nested) conditionals and MBU blocks with garbage-targeting correction
bodies — the full vocabulary of the paper's Lemma 4.1 constructions.
"""

import pickle
import random

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.circuits.ops import Conditional, Gate, MBUBlock, Measurement
from repro.modular import build_modadd
from repro.pipeline.cache import CircuitCache, CircuitSpec
from repro.pipeline.montecarlo import mc_expected_counts
from repro.sim import BitplaneSimulator, ConstantOutcomes, ForcedOutcomes, RandomOutcomes
from repro.sim.kernels import generate_source
from repro.transform import (
    CancelAdjacentPass,
    CompiledProgram,
    FusedProgram,
    compile_program,
    fuse_program,
)

# --------------------------------------------------------------------------- #
# randomized mixed-construct circuits


def random_mixed_circuit(rng: random.Random, n_ops: int = 40) -> Circuit:
    """A random circuit mixing plain/phase gates, measurements, (nested)
    conditionals and MBU blocks whose bodies flip the garbage qubit."""
    circ = Circuit(f"mixed[{n_ops}]")
    d = circ.add_register("d", 6)
    g = circ.add_register("g", 2)
    bits: list = []

    def random_gate(target_pool):
        kind = rng.choice(["x", "cx", "ccx", "swap", "cswap", "cz", "s", "t", "z"])
        arity = {"x": 1, "s": 1, "t": 1, "z": 1, "cx": 2, "cz": 2, "swap": 2,
                 "ccx": 3, "cswap": 3}[kind]
        qubits = rng.sample(target_pool, k=arity)
        return Gate(kind, tuple(qubits))

    def random_body(depth: int):
        body = []
        for _ in range(rng.randint(1, 4)):
            roll = rng.random()
            if roll < 0.7 or depth >= 2 or not bits:
                body.append(random_gate(list(d)))
            elif roll < 0.85:
                bit = circ.new_bit()
                body.append(Measurement(rng.choice(list(d)), bit,
                                        rng.choice(["z", "x"])))
                bits.append(bit)
            else:
                body.append(Conditional(rng.choice(bits), tuple(random_body(depth + 1)),
                                        value=rng.randint(0, 1)))
        return body

    for _ in range(n_ops):
        roll = rng.random()
        if roll < 0.55:
            circ.append(random_gate(list(d)))
        elif roll < 0.7:
            bit = circ.measure(rng.choice(list(d)), basis=rng.choice(["z", "x"]))
            bits.append(bit)
        elif roll < 0.85 and bits:
            circ.cond(rng.choice(bits), random_body(1), value=rng.randint(0, 1))
        else:
            # Dirty a garbage qubit, then measurement-based-uncompute it.
            q = rng.choice(list(g))
            a, b = rng.sample(list(d), k=2)
            circ.ccx(a, b, q)
            body = [Gate("h", (q,))]
            for _ in range(rng.randint(1, 3)):
                if rng.random() < 0.5:
                    body.append(Gate("cx", (rng.choice(list(d)), q)))
                else:
                    u, v = rng.sample(list(d), k=2)
                    body.append(Gate("ccx", (u, v, q)))
            body.extend([Gate("h", (q,)), Gate("x", (q,))])
            bits.append(circ.mbu(q, body))
    return circ


BATCH = 96


def _run_all_ways(circ, outcomes_factory, lane_counts=None, tally=True):
    """Run interpretive + the three compiled strategies; return the sims."""
    results = {}
    for key, runner in [
        ("interpretive", lambda s: s.run()),
        ("scalar", lambda s: s.run_compiled(fused=False)),
        ("codegen", lambda s: s.run_compiled()),
        ("arrays", lambda s: s.run_compiled(kernels="arrays")),
    ]:
        if key == "scalar" and lane_counts:
            continue  # scalar VM has no per-lane counters
        sim = BitplaneSimulator(
            circ, batch=BATCH, outcomes=outcomes_factory(), tally=tally,
            lane_counts=lane_counts,
        )
        reg = circ.registers["d"]
        inputs = [(i * 37 + 11) % (1 << len(reg)) for i in range(BATCH)]
        sim.set_register("d", inputs)
        runner(sim)
        results[key] = sim
    return results


@pytest.mark.parametrize("seed", range(12))
def test_fused_matches_interpretive_on_mixed_circuits(seed):
    rng = random.Random(seed)
    circ = random_mixed_circuit(rng)
    sims = _run_all_ways(circ, lambda: RandomOutcomes(seed * 7 + 1))
    ref = sims.pop("interpretive")
    for key, sim in sims.items():
        assert (sim.planes == ref.planes).all(), key
        assert (sim.bit_planes == ref.bit_planes).all(), key
        assert sim.tally == ref.tally, key


@pytest.mark.parametrize("seed", range(8))
def test_fused_lane_tallies_match(seed):
    rng = random.Random(100 + seed)
    circ = random_mixed_circuit(rng)
    sims = _run_all_ways(
        circ, lambda: RandomOutcomes(seed), lane_counts=("ccx", "ccz", "x"),
        tally=False,
    )
    ref = sims.pop("interpretive")
    for key, sim in sims.items():
        assert (sim.lane_tally() == ref.lane_tally()).all(), key
        assert (sim.planes == ref.planes).all(), key


@pytest.mark.parametrize("value", [0, 1])
def test_fused_under_constant_outcomes(value):
    """Scripted providers broadcast one outcome per measurement event; the
    event order (and hence consumption) must match the interpretive walk."""
    rng = random.Random(5)
    circ = random_mixed_circuit(rng)
    sims = _run_all_ways(circ, lambda: ConstantOutcomes(value))
    ref = sims.pop("interpretive")
    for key, sim in sims.items():
        assert (sim.planes == ref.planes).all(), (key, value)
        assert (sim.bit_planes == ref.bit_planes).all(), (key, value)
        assert sim.tally == ref.tally, (key, value)


def test_fused_consumes_same_forced_script():
    rng = random.Random(9)
    circ = random_mixed_circuit(rng)
    probe = BitplaneSimulator(circ, batch=BATCH, outcomes=ConstantOutcomes(0))
    probe.run()
    n_meas = int(probe.tally["measure"] * 1)  # ConstantOutcomes(0): all branches skip
    script = [i % 2 for i in range(n_meas * 2)]  # ample entries

    consumed = {}
    for key, runner in [
        ("interpretive", lambda s: s.run()),
        ("scalar", lambda s: s.run_compiled(fused=False)),
        ("codegen", lambda s: s.run_compiled()),
        ("arrays", lambda s: s.run_compiled(kernels="arrays")),
    ]:
        outcomes = ForcedOutcomes(script)
        sim = BitplaneSimulator(circ, batch=BATCH, outcomes=outcomes)
        runner(sim)
        consumed[key] = outcomes.consumed
        if key != "interpretive":
            assert (sim.planes == consumed["ref_planes"]).all(), key
        else:
            consumed["ref_planes"] = sim.planes
    assert consumed["interpretive"] == consumed["scalar"] == consumed["codegen"] == consumed["arrays"]


def test_fused_on_modadd_against_known_sums():
    p = 29
    built = build_modadd(5, p, "gidney", mbu=True)
    xs = [pow(3, i + 1, p) for i in range(BATCH)]
    ys = [pow(5, i + 1, p) for i in range(BATCH)]
    for kernels in (None, "arrays"):
        sim = BitplaneSimulator(built.circuit, batch=BATCH, outcomes=RandomOutcomes(3))
        sim.set_register("x", xs)
        sim.set_register("y", ys)
        sim.run_compiled(kernels=kernels)
        assert sim.get_register("y") == [(x + y) % p for x, y in zip(xs, ys)]


# --------------------------------------------------------------------------- #
# the fusion stage


class TestFusionStage:
    def test_independent_gates_fuse_into_one_run(self):
        circ = Circuit()
        q = circ.add_register("q", 8)
        for i in range(0, 8, 2):
            circ.cx(q[i], q[i + 1])
        fused = fuse_program(compile_program(circ))
        stats = fused.fusion_stats()
        assert stats["runs"] == 1
        assert stats["fused_instructions"] == 4
        assert stats["longest_run"] == 4

    def test_read_after_write_splits_the_run(self):
        circ = Circuit()
        q = circ.add_register("q", 3)
        circ.cx(q[0], q[1])
        circ.cx(q[1], q[2])  # reads the plane written by the previous cx
        fused = fuse_program(compile_program(circ))
        stats = fused.fusion_stats()
        assert stats["runs"] == 0  # both became scalar singletons
        assert stats["scalar_instructions"] == 2

    def test_duplicate_write_target_splits_the_run(self):
        circ = Circuit()
        q = circ.add_register("q", 4)
        circ.cx(q[0], q[3])
        circ.cx(q[1], q[3])  # writes the same plane: must not share a run
        fused = fuse_program(compile_program(circ))
        assert fused.fusion_stats()["runs"] == 0

    def test_opcode_change_splits_the_run(self):
        circ = Circuit()
        q = circ.add_register("q", 6)
        circ.cx(q[0], q[1])
        circ.x(q[2])
        circ.cx(q[3], q[4])
        fused = fuse_program(compile_program(circ))
        assert fused.fusion_stats()["runs"] == 0
        assert fused.fusion_stats()["scalar_instructions"] == 3

    def test_scope_counts_match_program_tallies(self):
        circ = random_mixed_circuit(random.Random(3))
        program = compile_program(circ, tally=True)
        fused = fuse_program(program)
        flat = {}
        for names in program.tallies:
            for name in names:
                flat[name] = flat.get(name, 0) + 1
        agg = {}
        for scope in fused.scopes:
            for name, count in scope.counts.items():
                agg[name] = agg.get(name, 0) + count
        assert agg == flat

    def test_operands_are_packed_index_arrays(self):
        circ = Circuit()
        q = circ.add_register("q", 6)
        for i in range(3):
            circ.cx(q[i], q[i + 3])
        fused = fuse_program(compile_program(circ))
        (kind, run), = fused.root.items
        assert kind == "run"
        assert isinstance(run.operands, np.ndarray)
        assert run.operands.dtype == np.intp
        assert run.operands.shape == (3, 2)


# --------------------------------------------------------------------------- #
# compile-time peephole cancellation


class TestPeepholeCancellation:
    def test_adjacent_pair_dropped_from_stream_but_tallied(self):
        circ = Circuit()
        q = circ.add_register("q", 2)
        circ.cx(q[0], q[1])
        circ.cx(q[0], q[1])
        cancelled = compile_program(circ, tally=True)
        kept = compile_program(circ, tally=True, cancel=False)
        assert len(cancelled) < len(kept)
        names = [n for names in cancelled.tallies for n in names]
        assert names.count("cx") == 2  # both executions still accounted

    def test_chained_cancellation(self):
        circ = Circuit()
        q = circ.add_register("q", 3)
        circ.cx(q[0], q[1])
        circ.ccx(q[0], q[1], q[2])
        circ.ccx(q[0], q[1], q[2])
        circ.cx(q[0], q[1])
        program = compile_program(circ, tally=False)
        assert program.counts_static().get("OP_CX") is None
        assert program.counts_static().get("OP_CCX") is None

    def test_symmetric_swap_pair_cancels(self):
        circ = Circuit()
        q = circ.add_register("q", 2)
        circ.swap(q[0], q[1])
        circ.swap(q[1], q[0])
        program = compile_program(circ, tally=False)
        assert program.counts_static().get("OP_SWAP") is None

    def test_measurement_is_a_barrier(self):
        circ = Circuit()
        q = circ.add_register("q", 2)
        circ.cx(q[0], q[1])
        circ.measure(q[0])
        circ.cx(q[0], q[1])
        program = compile_program(circ, tally=False)
        assert program.counts_static()["OP_CX"] == 2

    def test_cancellation_reduces_instruction_count_on_padded_circuit(self):
        built = build_modadd(4, 13, "cdkpm", mbu=True)
        padded = built.circuit.copy_empty()
        q = built.circuit.registers["x"]
        padded.extend(built.circuit.ops)
        padded.swap(q[0], q[1])
        padded.swap(q[1], q[0])
        with_cancel = compile_program(padded, tally=True)
        without = compile_program(padded, tally=True, cancel=False)
        assert len(with_cancel) < len(without)
        # and results agree with the interpretive walk
        ref = BitplaneSimulator(padded, batch=16, outcomes=RandomOutcomes(1))
        ref.run()
        out = BitplaneSimulator(padded, batch=16, outcomes=RandomOutcomes(1))
        out.run_compiled(with_cancel)
        assert (ref.planes == out.planes).all()
        assert ref.tally == out.tally


class TestCancelAdjacentPassFixpoint:
    def test_symmetric_swap_cancels_in_one_invocation(self):
        circ = Circuit()
        q = circ.add_register("q", 3)
        circ.swap(q[0], q[1])
        circ.swap(q[1], q[0])
        circ.cswap(q[2], q[0], q[1])
        circ.cswap(q[2], q[1], q[0])
        out = CancelAdjacentPass().run(circ)
        assert len(out.ops) == 0

    def test_nested_pairs_reach_fixpoint_in_one_invocation(self):
        circ = Circuit()
        q = circ.add_register("q", 3)
        circ.cx(q[0], q[1])
        circ.ccx(q[0], q[1], q[2])
        circ.t(q[2])
        circ.tdg(q[2])
        circ.ccx(q[0], q[1], q[2])
        circ.cx(q[0], q[1])
        out = CancelAdjacentPass().run(circ)
        assert len(out.ops) == 0


# --------------------------------------------------------------------------- #
# __slots__ / pickling (process-pool sweep path)


class TestSlotsAndPickle:
    @pytest.mark.parametrize("op", [
        Gate("ccx", (0, 1, 2)),
        Measurement(1, 0, "x"),
        Conditional(0, (Gate("x", (1,)),)),
        MBUBlock(2, 0, (Gate("h", (2,)), Gate("x", (2,)))),
    ])
    def test_ir_types_have_slots_and_pickle(self, op):
        assert not hasattr(op, "__dict__")
        assert pickle.loads(pickle.dumps(op)) == op

    def test_compiled_program_pickles(self):
        built = build_modadd(3, 5, "cdkpm", mbu=True)
        program = compile_program(built.circuit)
        clone = pickle.loads(pickle.dumps(program))
        assert isinstance(clone, CompiledProgram)
        assert clone.instructions == program.instructions
        assert clone.tallies == program.tallies

    def test_fused_program_pickles_and_reruns(self):
        built = build_modadd(3, 5, "cdkpm", mbu=True)
        fused = fuse_program(built.circuit)
        fused.kernel(events=True)  # populate the (non-picklable) kernel cache
        clone = pickle.loads(pickle.dumps(fused))
        assert isinstance(clone, FusedProgram)
        assert clone._kernels == {}  # kernels are rebuilt, not shipped
        assert clone.fusion_stats() == fused.fusion_stats()
        ref = BitplaneSimulator(built.circuit, batch=32, outcomes=RandomOutcomes(2))
        ref.run_compiled(fused)
        out = BitplaneSimulator(built.circuit, batch=32, outcomes=RandomOutcomes(2))
        out.run_compiled(clone)
        assert (ref.planes == out.planes).all()
        assert ref.tally == out.tally


# --------------------------------------------------------------------------- #
# reuse: reset(), mc_expected_counts, CircuitCache.program


class TestReuse:
    def test_reset_reproduces_fresh_runs(self):
        built = build_modadd(4, 13, "cdkpm", mbu=True)
        fused = fuse_program(built.circuit)
        sim = BitplaneSimulator(
            built.circuit, batch=64, outcomes=RandomOutcomes(0),
            tally=False, lane_counts=("ccx",),
        )
        chained = []
        for rep in range(3):
            sim.reset(RandomOutcomes(rep))
            sim.set_register("x", 5)
            sim.set_register("y", 9)
            sim.run_compiled(fused)
            chained.append((sim.get_register("y"), sim.lane_tally().copy()))
        for rep, (regs, lanes) in enumerate(chained):
            fresh = BitplaneSimulator(
                built.circuit, batch=64, outcomes=RandomOutcomes(rep),
                tally=False, lane_counts=("ccx",),
            )
            fresh.set_register("x", 5)
            fresh.set_register("y", 9)
            fresh.run_compiled(fused)
            assert regs == fresh.get_register("y") == [(5 + 9) % 13] * 64
            assert (lanes == fresh.lane_tally()).all()

    def test_mc_compiled_equals_interpretive(self):
        built = build_modadd(4, 13, "gidney", mbu=True)
        kwargs = dict(batch=128, repeats=3, seed=42, gates=("ccx", "ccz"))
        compiled = mc_expected_counts(built, compiled=True, **kwargs)
        interp = mc_expected_counts(built, compiled=False, **kwargs)
        assert compiled.mean == interp.mean
        assert compiled.variance == interp.variance
        assert compiled.stderr == interp.stderr
        assert compiled.samples == interp.samples == 128 * 3

    def test_mc_timing_metadata(self):
        built = build_modadd(4, 13, "cdkpm", mbu=True)
        est = mc_expected_counts(built, batch=32, repeats=2, seed=1)
        assert est.compile_seconds > 0.0
        assert est.run_seconds > 0.0
        fused = fuse_program(built.circuit)
        fused.kernel(events=True)
        reused = mc_expected_counts(built, batch=32, repeats=2, seed=1, program=fused)
        assert reused.compile_seconds == 0.0
        assert reused.mean == est.mean

    def test_cache_program_is_memoized(self):
        cache = CircuitCache()
        spec = CircuitSpec.make("modadd", 4, p=13, family="cdkpm", mbu=True)
        first = cache.program(spec)
        second = cache.program(spec)
        assert first is second
        assert cache.stats.program_misses == 1
        assert cache.stats.program_hits == 1
        assert isinstance(first, FusedProgram)

    def test_cache_program_memoizes_unsupported_specs(self):
        from repro.sim import UnsupportedGateError

        cache = CircuitCache()
        spec = CircuitSpec.make("modadd_draper", 4, p=13, mbu=False)  # QFT row
        for _ in range(2):
            with pytest.raises(UnsupportedGateError):
                cache.program(spec)
        assert cache.stats.program_misses == 1  # failure compiled only once
        assert cache.stats.program_hits == 1

    def test_fuse_memo_reuses_caller_held_programs_only(self):
        from repro.transform.compile import _FUSED_MEMO

        built = build_modadd(3, 5, "cdkpm", mbu=True)
        held = compile_program(built.circuit)
        assert fuse_program(held) is fuse_program(held)
        size = len(_FUSED_MEMO)
        # on-the-fly paths must not pin throwaway programs in the memo
        mc_expected_counts(built, batch=16)
        BitplaneSimulator(built.circuit, batch=8).run_compiled()
        fuse_program(built.circuit)
        assert len(_FUSED_MEMO) == size


# --------------------------------------------------------------------------- #
# generated-kernel codegen details


class TestKernelCodegen:
    def test_full_mask_cx_has_no_mask_and(self):
        circ = Circuit()
        q = circ.add_register("q", 4)
        circ.cx(q[0], q[1])
        source = generate_source(fuse_program(compile_program(circ)), events=False)
        assert "p1 ^= p0\n" in source

    def test_top_level_swap_becomes_a_renaming(self):
        circ = Circuit()
        q = circ.add_register("q", 2)
        circ.swap(q[0], q[1])
        source = generate_source(fuse_program(compile_program(circ)), events=False)
        assert "_d" not in source  # no runtime swap code at full mask
        assert "P[0] = p1" in source and "P[1] = p0" in source

    def test_masked_swap_inside_branch_emits_delta_ops(self):
        circ = Circuit()
        q = circ.add_register("q", 2)
        bit = circ.measure(q[0])
        with circ.capture() as body:
            circ.swap(q[0], q[1])
        circ.cond(bit, body)
        source = generate_source(fuse_program(compile_program(circ)), events=False)
        assert "_d = (p0 ^ p1) & _m1" in source

    def test_events_variant_emits_scope_events(self):
        built = build_modadd(3, 5, "gidney", mbu=True)
        fused = fuse_program(built.circuit)
        with_events = generate_source(fused, events=True)
        without = generate_source(fused, events=False)
        assert "_ev.append((0, _m0))" in with_events
        assert "_ev.append" not in without

    def test_kernel_metadata_tracks_written_planes(self):
        circ = Circuit()
        q = circ.add_register("q", 4)
        circ.cx(q[0], q[1])  # reads 0, writes 1; planes 2-3 untouched
        fused = fuse_program(compile_program(circ))
        kernel = fused.kernel(events=False)
        assert kernel.__used_planes__ == (0, 1)
        assert kernel.__written_planes__ == (1,)


class TestRunCompiledAPI:
    def test_kernels_requires_fused(self):
        built = build_modadd(3, 5, "cdkpm", mbu=True)
        sim = BitplaneSimulator(built.circuit, batch=8)
        with pytest.raises(ValueError, match="fused=True"):
            sim.run_compiled(fused=False, kernels="arrays")

    def test_unknown_kernel_strategy_rejected(self):
        built = build_modadd(3, 5, "cdkpm", mbu=True)
        sim = BitplaneSimulator(built.circuit, batch=8)
        with pytest.raises(ValueError, match="strategy"):
            sim.run_compiled(kernels="gpu")

    def test_fused_program_accepted_by_scalar_path(self):
        built = build_modadd(3, 5, "cdkpm", mbu=True)
        fused = fuse_program(built.circuit)
        sim = BitplaneSimulator(built.circuit, batch=8, outcomes=RandomOutcomes(0))
        sim.run_compiled(fused, fused=False)  # falls back to program.scalar
        ref = BitplaneSimulator(built.circuit, batch=8, outcomes=RandomOutcomes(0))
        ref.run()
        assert (sim.planes == ref.planes).all()

    def test_simulate_rejects_kernels_without_compiled(self):
        from repro.sim import simulate

        built = build_modadd(3, 5, "cdkpm", mbu=True)
        with pytest.raises(ValueError, match="compiled=True"):
            simulate(built.circuit, {"x": 1, "y": 2}, backend="bitplane",
                     kernels="arrays")
        with pytest.raises(ValueError, match="compiled=True"):
            simulate(built.circuit, {"x": 1, "y": 2}, backend="bitplane",
                     fused=False)

    def test_simulate_kernels_option(self):
        from repro.sim import simulate

        built = build_modadd(4, 13, "cdkpm", mbu=True)
        ref = simulate(built.circuit, {"x": 3, "y": 7}, backend="bitplane", seed=5)
        for kernels in (None, "arrays"):
            out = simulate(
                built.circuit, {"x": 3, "y": 7}, backend="bitplane", seed=5,
                compiled=True, kernels=kernels,
            )
            assert out.registers == ref.registers
            assert out.tally == ref.tally
