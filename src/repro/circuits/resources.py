"""Resource accounting: gate counts, expected counts, depth, block counts.

All accounting runs on the shared op-stream walker
(:class:`~repro.sim.engine.ExecutionEngine`): each analysis below is an
:class:`~repro.sim.engine.ExecutionBackend` whose branch decisions encode
the counting mode, and the engine's weighted tally does the bookkeeping.
(:class:`GateCounts` itself lives in :mod:`repro.circuits.counts`, a leaf
module, so the engine can import it without a circular dependency; it is
re-exported here.)

Counting modes
--------------
``worst``
    Every conditional branch is assumed taken (probability 1).
``expected``
    Conditional bodies are weighted by their execution probability; this is
    the paper's "with MBU, in expectation" accounting (each MBU correction
    and each logical-AND uncomputation CZ weighs 1/2).
``best``
    No conditional branch is taken.

An X-basis measurement contributes 1 ``h`` and 1 ``measure`` (it *is* a
Hadamard plus a Z measurement).  An :class:`MBUBlock` contributes the same
plus its body at weight 1/2 (``expected``), 1 (``worst``) or 0 (``best``).

Depth is computed by ASAP levelization over qubits and classical bits; a
conditional block is scheduled after its bit and serializes on the union of
the qubits its body touches (a reasonable model for feed-forward on an
error-corrected machine).  ``toffoli_depth`` levelizes only ccx/ccz layers.
"""

from __future__ import annotations

from collections import defaultdict
from fractions import Fraction
from typing import Dict, Iterable, Sequence, Set, Tuple

from ..sim.engine import (
    EXECUTE,
    SKIP,
    BranchDecision,
    ExecutionBackend,
    ExecutionEngine,
)
from .circuit import Circuit
from .counts import CNOT_CZ_GATES, TOFFOLI_GATES, GateCounts
from .ops import Annotation, Conditional, Gate, MBUBlock, Measurement, Operation

__all__ = [
    "GateCounts",
    "count_gates",
    "count_blocks",
    "depth",
    "toffoli_depth",
    "TOFFOLI_GATES",
]


def _mode_weight(mode: str, probability: Fraction) -> Fraction:
    if mode == "worst":
        return Fraction(1)
    if mode == "expected":
        return probability
    if mode == "best":
        return Fraction(0)
    raise ValueError(f"unknown counting mode {mode!r}")


def _as_ops(circuit: Circuit | Sequence[Operation]) -> Sequence[Operation]:
    return circuit.ops if isinstance(circuit, Circuit) else circuit


def count_gates(circuit: Circuit | Sequence[Operation], mode: str = "expected") -> GateCounts:
    """Count gates; conditional bodies weighted according to ``mode``."""
    _mode_weight(mode, Fraction(1))  # validate the mode eagerly
    backend = _GateCountBackend(mode)
    engine = ExecutionEngine(backend, tally=True)
    engine.execute(_as_ops(circuit))
    return engine.tally


def count_blocks(circuit: Circuit | Sequence[Operation], mode: str = "expected") -> Dict[str, Fraction]:
    """Count named ``begin`` blocks, weighted by enclosing branch probability.

    This reproduces Table 1's Draper rows, which measure cost in QFT /
    PCQFT units rather than individual rotations.
    """
    _mode_weight(mode, Fraction(1))
    backend = _BlockCountBackend(mode)
    ExecutionEngine(backend, tally=False).execute(_as_ops(circuit))
    return dict(backend.totals)


def _op_qubits_bits(op: Operation) -> Tuple[Set[int], Set[int]]:
    """All qubits/bits an operation touches (worst case for conditionals)."""
    if isinstance(op, Gate):
        return set(op.qubits), set()
    if isinstance(op, Measurement):
        return {op.qubit}, {op.bit}
    if isinstance(op, Conditional):
        qubits: Set[int] = set()
        bits: Set[int] = {op.bit}
        for inner in op.body:
            q, b = _op_qubits_bits(inner)
            qubits |= q
            bits |= b
        return qubits, bits
    if isinstance(op, MBUBlock):
        qubits, bits = {op.qubit}, {op.bit}
        for inner in op.body:
            q, b = _op_qubits_bits(inner)
            qubits |= q
            bits |= b
        return qubits, bits
    return set(), set()


def depth(circuit: Circuit | Sequence[Operation]) -> int:
    """ASAP circuit depth; conditionals/MBU blocks count as one time slot
    occupying every qubit their body may touch."""
    backend = _DepthBackend()
    ExecutionEngine(backend, tally=False).execute(_as_ops(circuit))
    return backend.max_level


def toffoli_depth(
    circuit: Circuit | Sequence[Operation], include_conditional: bool = True
) -> int:
    """Depth counting only Toffoli-equivalent layers (ccx/ccz).

    Non-Toffoli gates still order operations (they advance qubit
    availability to the current level without consuming a layer).
    ``include_conditional=False`` gives the lucky-branch depth (no MBU
    correction fires); the paper's expected-depth saving is the average of
    the two branches, since each correction runs with probability 1/2.
    """
    backend = _ToffoliDepthBackend(include_conditional)
    ExecutionEngine(backend, tally=False).execute(_as_ops(circuit))
    return backend.max_level


# --------------------------------------------------------------------------- #
# analysis backends


class _GateCountBackend(ExecutionBackend):
    """Stateless backend: the engine's weighted tally does all the work."""

    def __init__(self, mode: str) -> None:
        self.mode = mode

    def apply_gate(self, gate: Gate) -> None:
        pass

    def apply_measurement(self, meas: Measurement) -> None:
        pass

    def enter_conditional(self, cond: Conditional) -> BranchDecision:
        return BranchDecision(True, _mode_weight(self.mode, cond.probability))

    def enter_mbu(self, block: MBUBlock) -> BranchDecision:
        return BranchDecision(True, _mode_weight(self.mode, block.probability))


class _BlockCountBackend(_GateCountBackend):
    """Collects ``begin`` annotations at the engine's current branch weight."""

    def __init__(self, mode: str) -> None:
        super().__init__(mode)
        self.totals: Dict[str, Fraction] = defaultdict(Fraction)

    def annotation(self, ann: Annotation) -> None:
        if ann.kind == "begin":
            self.totals[ann.label] += self.engine.weight


class _DepthBackend(ExecutionBackend):
    """ASAP levelization; every scheduled op consumes one layer."""

    def __init__(self) -> None:
        self.qubit_level: Dict[int, int] = defaultdict(int)
        self.bit_level: Dict[int, int] = defaultdict(int)
        self.max_level = 0

    def _schedule(self, qubits: Iterable[int], bits: Iterable[int], advance: bool) -> None:
        level = 0
        for q in qubits:
            level = max(level, self.qubit_level[q])
        for b in bits:
            level = max(level, self.bit_level[b])
        new_level = level + 1 if advance else level
        for q in qubits:
            self.qubit_level[q] = new_level
        for b in bits:
            self.bit_level[b] = new_level
        self.max_level = max(self.max_level, new_level)

    def apply_gate(self, gate: Gate) -> None:
        self._schedule(gate.qubits, (), True)

    def apply_measurement(self, meas: Measurement) -> None:
        self._schedule((meas.qubit,), (meas.bit,), True)

    def enter_conditional(self, cond: Conditional) -> BranchDecision:
        qubits, bits = _op_qubits_bits(cond)
        self._schedule(qubits, bits, True)
        return SKIP  # the block is one time slot; do not descend

    def enter_mbu(self, block: MBUBlock) -> BranchDecision:
        qubits, bits = _op_qubits_bits(block)
        self._schedule(qubits, bits, True)
        return SKIP


class _ToffoliDepthBackend(_DepthBackend):
    """Levelization where only ccx/ccz consume a layer; bodies are scheduled
    in-line (or dropped entirely when ``include_conditional`` is False)."""

    def __init__(self, include_conditional: bool) -> None:
        super().__init__()
        self.include_conditional = include_conditional

    def apply_gate(self, gate: Gate) -> None:
        self._schedule(gate.qubits, (), gate.name in TOFFOLI_GATES)

    def apply_measurement(self, meas: Measurement) -> None:
        self._schedule((meas.qubit,), (meas.bit,), False)

    def enter_conditional(self, cond: Conditional) -> BranchDecision:
        return EXECUTE if self.include_conditional else SKIP

    def enter_mbu(self, block: MBUBlock) -> BranchDecision:
        # The implicit X-basis measurement always happens and orders the
        # garbage qubit / classical bit, without consuming a Toffoli layer.
        self._schedule((block.qubit,), (block.bit,), False)
        return EXECUTE if self.include_conditional else SKIP
