"""Resource accounting: gate counts, expected counts, depth, block counts.

Counting modes
--------------
``worst``
    Every conditional branch is assumed taken (probability 1).
``expected``
    Conditional bodies are weighted by their execution probability; this is
    the paper's "with MBU, in expectation" accounting (each MBU correction
    and each logical-AND uncomputation CZ weighs 1/2).
``best``
    No conditional branch is taken.

An X-basis measurement contributes 1 ``h`` and 1 ``measure`` (it *is* a
Hadamard plus a Z measurement).  An :class:`MBUBlock` contributes the same
plus its body at weight 1/2 (``expected``), 1 (``worst``) or 0 (``best``).

Counts are kept as :class:`fractions.Fraction` so expected values like
``3.5n`` Toffolis are exact.

Depth is computed by ASAP levelization over qubits and classical bits; a
conditional block is scheduled after its bit and serializes on the union of
the qubits its body touches (a reasonable model for feed-forward on an
error-corrected machine).  ``toffoli_depth`` levelizes only ccx/ccz layers.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from .circuit import Circuit
from .ops import Annotation, Conditional, Gate, MBUBlock, Measurement, Operation

__all__ = [
    "GateCounts",
    "count_gates",
    "count_blocks",
    "depth",
    "toffoli_depth",
    "TOFFOLI_GATES",
]

TOFFOLI_GATES = frozenset({"ccx", "ccz"})

# Gates the paper groups into its "CNOT,CZ" column.
CNOT_CZ_GATES = frozenset({"cx", "cz"})


@dataclass
class GateCounts:
    """A multiset of gate names with Fraction multiplicities."""

    counts: Dict[str, Fraction] = field(default_factory=dict)

    def add(self, name: str, weight: Fraction = Fraction(1)) -> None:
        if weight == 0:
            return
        self.counts[name] = self.counts.get(name, Fraction(0)) + weight

    def __getitem__(self, name: str) -> Fraction:
        return self.counts.get(name, Fraction(0))

    def get(self, name: str, default: Fraction = Fraction(0)) -> Fraction:
        return self.counts.get(name, default)

    @property
    def toffoli(self) -> Fraction:
        return sum((v for k, v in self.counts.items() if k in TOFFOLI_GATES), Fraction(0))

    @property
    def cnot_cz(self) -> Fraction:
        return sum((v for k, v in self.counts.items() if k in CNOT_CZ_GATES), Fraction(0))

    @property
    def x(self) -> Fraction:
        return self.counts.get("x", Fraction(0))

    @property
    def h(self) -> Fraction:
        return self.counts.get("h", Fraction(0))

    @property
    def measurements(self) -> Fraction:
        return self.counts.get("measure", Fraction(0))

    def total(self, names: Iterable[str] | None = None) -> Fraction:
        if names is None:
            return sum(self.counts.values(), Fraction(0))
        return sum((self.counts.get(name, Fraction(0)) for name in names), Fraction(0))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, GateCounts):
            mine = {k: v for k, v in self.counts.items() if v != 0}
            theirs = {k: v for k, v in other.counts.items() if v != 0}
            return mine == theirs
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover
        inner = ", ".join(f"{k}={_fmt(v)}" for k, v in sorted(self.counts.items()))
        return f"GateCounts({inner})"


def _fmt(value: Fraction) -> str:
    return str(value.numerator) if value.denominator == 1 else f"{float(value):g}"


def _mode_weight(mode: str, probability: Fraction) -> Fraction:
    if mode == "worst":
        return Fraction(1)
    if mode == "expected":
        return probability
    if mode == "best":
        return Fraction(0)
    raise ValueError(f"unknown counting mode {mode!r}")


def count_gates(circuit: Circuit | Sequence[Operation], mode: str = "expected") -> GateCounts:
    """Count gates; conditional bodies weighted according to ``mode``."""
    ops = circuit.ops if isinstance(circuit, Circuit) else circuit
    totals = GateCounts()
    _count_into(ops, Fraction(1), mode, totals)
    return totals


def _count_into(
    ops: Sequence[Operation], weight: Fraction, mode: str, totals: GateCounts
) -> None:
    for op in ops:
        if isinstance(op, Gate):
            totals.add(op.name, weight)
        elif isinstance(op, Measurement):
            if op.basis == "x":
                totals.add("h", weight)
            totals.add("measure", weight)
        elif isinstance(op, Conditional):
            branch = weight * _mode_weight(mode, op.probability)
            _count_into(op.body, branch, mode, totals)
        elif isinstance(op, MBUBlock):
            totals.add("h", weight)  # the X-basis measurement's Hadamard
            totals.add("measure", weight)
            branch = weight * _mode_weight(mode, op.probability)
            _count_into(op.body, branch, mode, totals)
        elif isinstance(op, Annotation):
            continue
        else:  # pragma: no cover
            raise TypeError(f"unknown operation {op!r}")


def count_blocks(circuit: Circuit | Sequence[Operation], mode: str = "expected") -> Dict[str, Fraction]:
    """Count named ``begin`` blocks, weighted by enclosing branch probability.

    This reproduces Table 1's Draper rows, which measure cost in QFT /
    PCQFT units rather than individual rotations.
    """
    ops = circuit.ops if isinstance(circuit, Circuit) else circuit
    totals: Dict[str, Fraction] = defaultdict(Fraction)
    _count_blocks_into(ops, Fraction(1), mode, totals)
    return dict(totals)


def _count_blocks_into(
    ops: Sequence[Operation], weight: Fraction, mode: str, totals: Dict[str, Fraction]
) -> None:
    for op in ops:
        if isinstance(op, Annotation) and op.kind == "begin":
            totals[op.label] += weight
        elif isinstance(op, Conditional):
            _count_blocks_into(op.body, weight * _mode_weight(mode, op.probability), mode, totals)
        elif isinstance(op, MBUBlock):
            _count_blocks_into(op.body, weight * _mode_weight(mode, op.probability), mode, totals)


def _op_qubits_bits(op: Operation) -> Tuple[Set[int], Set[int]]:
    """All qubits/bits an operation touches (worst case for conditionals)."""
    if isinstance(op, Gate):
        return set(op.qubits), set()
    if isinstance(op, Measurement):
        return {op.qubit}, {op.bit}
    if isinstance(op, Conditional):
        qubits: Set[int] = set()
        bits: Set[int] = {op.bit}
        for inner in op.body:
            q, b = _op_qubits_bits(inner)
            qubits |= q
            bits |= b
        return qubits, bits
    if isinstance(op, MBUBlock):
        qubits, bits = {op.qubit}, {op.bit}
        for inner in op.body:
            q, b = _op_qubits_bits(inner)
            qubits |= q
            bits |= b
        return qubits, bits
    return set(), set()


def depth(circuit: Circuit | Sequence[Operation]) -> int:
    """ASAP circuit depth; conditionals/MBU blocks count as one time slot
    occupying every qubit their body may touch."""
    return _levelize(circuit, lambda op: True)


def toffoli_depth(
    circuit: Circuit | Sequence[Operation], include_conditional: bool = True
) -> int:
    """Depth counting only Toffoli-equivalent layers (ccx/ccz).

    Non-Toffoli gates still order operations (they advance qubit
    availability to the current level without consuming a layer).
    ``include_conditional=False`` gives the lucky-branch depth (no MBU
    correction fires); the paper's expected-depth saving is the average of
    the two branches, since each correction runs with probability 1/2.
    """
    ops = circuit.ops if isinstance(circuit, Circuit) else circuit
    if not include_conditional:
        ops = _strip_conditionals(ops)
    qubit_level: Dict[int, int] = defaultdict(int)
    bit_level: Dict[int, int] = defaultdict(int)
    max_level = 0
    for op in _flatten_for_depth(ops):
        qubits, bits = _op_qubits_bits(op)
        level = 0
        for q in qubits:
            level = max(level, qubit_level[q])
        for b in bits:
            level = max(level, bit_level[b])
        is_toffoli = isinstance(op, Gate) and op.name in TOFFOLI_GATES
        new_level = level + 1 if is_toffoli else level
        for q in qubits:
            qubit_level[q] = new_level
        for b in bits:
            bit_level[b] = new_level
        max_level = max(max_level, new_level)
    return max_level


def _levelize(circuit: Circuit | Sequence[Operation], counts) -> int:
    ops = circuit.ops if isinstance(circuit, Circuit) else circuit
    qubit_level: Dict[int, int] = defaultdict(int)
    bit_level: Dict[int, int] = defaultdict(int)
    max_level = 0
    for op in ops:
        if isinstance(op, Annotation):
            continue
        qubits, bits = _op_qubits_bits(op)
        level = 0
        for q in qubits:
            level = max(level, qubit_level[q])
        for b in bits:
            level = max(level, bit_level[b])
        level += 1
        for q in qubits:
            qubit_level[q] = level
        for b in bits:
            bit_level[b] = level
        max_level = max(max_level, level)
    return max_level


def _strip_conditionals(ops: Sequence[Operation]) -> List[Operation]:
    """Drop conditional/MBU bodies (keep their measurements)."""
    out: List[Operation] = []
    for op in ops:
        if isinstance(op, Conditional):
            continue
        if isinstance(op, MBUBlock):
            out.append(Measurement(op.qubit, op.bit, "x"))
        else:
            out.append(op)
    return out


def _flatten_for_depth(ops: Sequence[Operation]) -> List[Operation]:
    """Flatten conditionals for Toffoli-depth: bodies scheduled in-line."""
    out: List[Operation] = []
    for op in ops:
        if isinstance(op, Annotation):
            continue
        if isinstance(op, Conditional):
            out.extend(_flatten_for_depth(op.body))
        elif isinstance(op, MBUBlock):
            out.append(Measurement(op.qubit, op.bit, "x"))
            out.extend(_flatten_for_depth(op.body))
        else:
            out.append(op)
    return out
