"""ASCII circuit rendering.

Good enough to regenerate the paper's circuit figures as text (figs 5, 8,
13, 21, 24, 25 …).  One column per operation slot (greedily packed: two
operations share a column when their qubit spans do not overlap), one row per
qubit wire.

Symbols: ``*`` control, ``X`` target of cx/ccx, boxed letters for
single-qubit gates, ``Z`` for cz targets, ``M``/``Mx`` measurements, ``?``
for conditional blocks (rendered with their condition bit), ``~`` for an MBU
block (measure + conditional correction).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .circuit import Circuit
from .ops import Annotation, Conditional, Gate, MBUBlock, Measurement, Operation

__all__ = ["draw"]

_SINGLE = {
    "x": "X",
    "y": "Y",
    "z": "Z",
    "h": "H",
    "s": "S",
    "sdg": "S+",
    "t": "T",
    "tdg": "T+",
    "phase": "P",
    "rz": "Rz",
}


def _cells_for(op: Operation) -> Dict[int, str] | None:
    """Map qubit -> cell text, or None for non-drawable ops."""
    if isinstance(op, Gate):
        name, qubits = op.name, op.qubits
        if name in _SINGLE:
            return {qubits[0]: _SINGLE[name]}
        if name == "cx":
            return {qubits[0]: "*", qubits[1]: "X"}
        if name == "cz":
            return {qubits[0]: "*", qubits[1]: "Z"}
        if name == "swap":
            return {qubits[0]: "x", qubits[1]: "x"}
        if name == "ccx":
            return {qubits[0]: "*", qubits[1]: "*", qubits[2]: "X"}
        if name == "ccz":
            return {qubits[0]: "*", qubits[1]: "*", qubits[2]: "Z"}
        if name == "cswap":
            return {qubits[0]: "*", qubits[1]: "x", qubits[2]: "x"}
        if name == "cphase":
            return {qubits[0]: "*", qubits[1]: "P"}
        if name == "ccphase":
            return {qubits[0]: "*", qubits[1]: "*", qubits[2]: "P"}
        return {q: "?" for q in qubits}  # pragma: no cover
    if isinstance(op, Measurement):
        return {op.qubit: "Mx" if op.basis == "x" else "M"}
    if isinstance(op, Conditional):
        # Bodies are rendered recursively, so pass-produced nesting
        # (conditionals holding measurements, MBU blocks or further
        # conditionals) draws faithfully; an all-annotation or empty body
        # yields no cells and the column is skipped rather than crashing.
        cells: Dict[int, str] = {}
        for inner in op.body:
            inner_cells = _cells_for(inner)
            if inner_cells:
                for q, text in inner_cells.items():
                    cells[q] = f"?{text}"
        return cells or None
    if isinstance(op, MBUBlock):
        cells = {}
        for inner in op.body:
            inner_cells = _cells_for(inner)
            if inner_cells:
                for q, text in inner_cells.items():
                    if q != op.qubit:
                        # keep the inner symbol (measurement, conditional,
                        # gate) under a "~" prefix instead of collapsing the
                        # whole correction body to a bare tilde
                        cells.setdefault(q, f"~{text}")
        cells[op.qubit] = "~M"
        return cells
    return None


def draw(circuit: Circuit, max_width: int = 2000) -> str:
    """Render ``circuit`` as ASCII art; labels from ``circuit.qubit_labels``."""
    columns: List[Tuple[Dict[int, str], Tuple[int, int]]] = []
    for op in circuit.ops:
        if isinstance(op, Annotation):
            continue
        cells = _cells_for(op)
        if not cells:
            continue
        span = (min(cells), max(cells))
        placed = False
        if columns:
            last_cells, last_span = columns[-1]
            if span[1] < last_span[0] or span[0] > last_span[1]:
                last_cells.update(cells)
                columns[-1] = (
                    last_cells,
                    (min(last_span[0], span[0]), max(last_span[1], span[1])),
                )
                placed = True
        if not placed:
            columns.append((dict(cells), span))

    labels = [f"{label}: " for label in circuit.qubit_labels]
    label_width = max((len(lbl) for lbl in labels), default=0)
    lines = [lbl.rjust(label_width) for lbl in labels]

    for cells, span in columns:
        width = max((len(text) for text in cells.values()), default=1)
        lo, hi = span
        for q in range(circuit.num_qubits):
            if q in cells:
                cell = cells[q].center(width, "-")
            elif lo < q < hi:
                cell = "|".center(width, "-")
            else:
                cell = "-" * width
            lines[q] += "-" + cell
        if len(lines[0]) > max_width:
            lines = [line + " ..." for line in lines]
            break

    return "\n".join(lines)
