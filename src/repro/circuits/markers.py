"""Reference-emission mode and uncompute region markers.

The paper's central contribution (Lemma 4.1, thms 4.2-4.12) is a
*circuit-to-circuit transformation*: replace a coherent uncomputation with a
measurement plus a classically-conditioned correction.  For the transformation
to exist as a rewrite (``repro.transform.insert_mbu``) rather than only as a
construction-time choice, the builders need a *reference* emission path that
keeps the uncomputation coherent and marks where it lives.

Inside a ``with reference_emission():`` block the two measurement-based
primitives — :func:`repro.arithmetic.gidney.emit_and_uncompute` (Gidney's
fig-11 temporary-AND uncompute) and :func:`repro.mbu.lemma.emit_mbu_uncompute`
(Lemma 4.1) — emit the textbook coherent uncomputation instead, bracketed by
``begin``/``end`` :class:`~repro.circuits.ops.Annotation` markers whose labels
encode the uncompute kind and garbage qubit:

=====================  =====================================================
``uncompute-and[q]``   a single Toffoli returning temporary-AND qubit ``q``
                       to |0> (the adjoint of the fig-10 compute)
``uncompute-oracle[q]``  a self-adjoint XOR-oracle re-applying garbage qubit
                       ``q``'s function, uncomputing it coherently
=====================  =====================================================

Annotations are ignored by every simulator and resource counter, so a
reference circuit is an ordinary coherent circuit — simulable on all
backends — that happens to advertise its uncompute regions.  The
``insert_mbu`` pass consumes the markers and re-derives the hand-built MBU
circuits exactly (same ops, same classical-bit order, same expected counts).

The flag is a :class:`contextvars.ContextVar`, so reference emission is
thread- and task-local and composes with the builders' nested capture blocks
without any signature changes.
"""

from __future__ import annotations

import contextlib
import re
from contextvars import ContextVar
from typing import Iterator, Optional, Tuple

__all__ = [
    "UNCOMPUTE_AND",
    "UNCOMPUTE_ORACLE",
    "reference_emission",
    "reference_mode",
    "uncompute_label",
    "parse_uncompute_label",
]

#: Region kind: a temporary logical-AND uncomputed by one Toffoli (fig 11's
#: coherent counterpart).
UNCOMPUTE_AND = "uncompute-and"

#: Region kind: a garbage qubit uncomputed by re-applying its XOR oracle
#: (Lemma 4.1's coherent counterpart).
UNCOMPUTE_ORACLE = "uncompute-oracle"

_KINDS = (UNCOMPUTE_AND, UNCOMPUTE_ORACLE)

_LABEL_RE = re.compile(r"^(uncompute-(?:and|oracle))\[(\d+)\]$")

_reference: ContextVar[bool] = ContextVar("reference_emission", default=False)


@contextlib.contextmanager
def reference_emission(enabled: bool = True) -> Iterator[None]:
    """Emit coherent, marker-annotated uncomputations inside this block."""
    token = _reference.set(enabled)
    try:
        yield
    finally:
        _reference.reset(token)


def reference_mode() -> bool:
    """Whether builders should emit the coherent reference uncomputations."""
    return _reference.get()


def uncompute_label(kind: str, qubit: int) -> str:
    """The marker label of one uncompute region, e.g. ``uncompute-and[3]``."""
    if kind not in _KINDS:
        raise ValueError(f"unknown uncompute region kind {kind!r}")
    return f"{kind}[{qubit}]"


def parse_uncompute_label(label: str) -> Optional[Tuple[str, int]]:
    """``(kind, qubit)`` of an uncompute marker label, or None."""
    match = _LABEL_RE.match(label)
    if match is None:
        return None
    return match.group(1), int(match.group(2))
