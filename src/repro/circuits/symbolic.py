"""Linear symbolic cost expressions.

The paper's tables express gate counts as linear functions of the register
width ``n`` and the Hamming weights ``|p|``, ``|a|`` of the classical
constants.  :class:`LinearCost` models exactly that: a linear combination of
named symbols with exact :class:`fractions.Fraction` coefficients (fractions
appear in the "in expectation" columns, e.g. ``3.5n`` Toffolis).

>>> n, wp = LinearCost.symbol("n"), LinearCost.symbol("wp")
>>> cost = 8 * n
>>> cost - 2 * n + wp + 1
LinearCost(6n + wp + 1)
>>> (7 * n).evaluate(n=4)
Fraction(28, 1)
"""

from __future__ import annotations

from fractions import Fraction
from numbers import Rational
from typing import Dict, Mapping, Union

__all__ = ["LinearCost", "N", "WP", "WA", "ONE"]

Scalar = Union[int, Fraction]

# Pretty-printing names for the symbols used throughout the repo.
_SYMBOL_DISPLAY = {
    "n": "n",
    "wp": "|p|",
    "wa": "|a|",
    "wpa": "|p-a|",
    "one": "",
}


class LinearCost:
    """An immutable linear expression ``sum_i c_i * sym_i + c0``."""

    __slots__ = ("coeffs",)

    def __init__(self, coeffs: Mapping[str, Scalar] | None = None) -> None:
        clean: Dict[str, Fraction] = {}
        for key, value in (coeffs or {}).items():
            frac = Fraction(value)
            if frac != 0:
                clean[key] = frac
        object.__setattr__(self, "coeffs", clean)

    def __setattr__(self, *args) -> None:  # pragma: no cover
        raise AttributeError("LinearCost is immutable")

    # -- constructors ----------------------------------------------------

    @staticmethod
    def symbol(name: str) -> "LinearCost":
        return LinearCost({name: 1})

    @staticmethod
    def const(value: Scalar) -> "LinearCost":
        return LinearCost({"one": value})

    @staticmethod
    def coerce(value: "LinearCost | Scalar") -> "LinearCost":
        if isinstance(value, LinearCost):
            return value
        if isinstance(value, (int, Fraction)) or isinstance(value, Rational):
            return LinearCost.const(value)
        raise TypeError(f"cannot coerce {value!r} to LinearCost")

    # -- arithmetic -------------------------------------------------------

    def __add__(self, other: "LinearCost | Scalar") -> "LinearCost":
        other = LinearCost.coerce(other)
        merged = dict(self.coeffs)
        for key, value in other.coeffs.items():
            merged[key] = merged.get(key, Fraction(0)) + value
        return LinearCost(merged)

    __radd__ = __add__

    def __neg__(self) -> "LinearCost":
        return LinearCost({k: -v for k, v in self.coeffs.items()})

    def __sub__(self, other: "LinearCost | Scalar") -> "LinearCost":
        return self + (-LinearCost.coerce(other))

    def __rsub__(self, other: "LinearCost | Scalar") -> "LinearCost":
        return LinearCost.coerce(other) + (-self)

    def __mul__(self, scalar: Scalar) -> "LinearCost":
        frac = Fraction(scalar)
        return LinearCost({k: v * frac for k, v in self.coeffs.items()})

    __rmul__ = __mul__

    def __truediv__(self, scalar: Scalar) -> "LinearCost":
        return self * (Fraction(1) / Fraction(scalar))

    # -- evaluation / comparison ------------------------------------------

    def evaluate(self, **symbols: Scalar) -> Fraction:
        """Evaluate with concrete symbol values (``one`` is implicit)."""
        total = Fraction(0)
        for key, coeff in self.coeffs.items():
            if key == "one":
                total += coeff
            elif key in symbols:
                total += coeff * Fraction(symbols[key])
            else:
                raise KeyError(f"no value supplied for symbol {key!r}")
        return total

    def coefficient(self, name: str) -> Fraction:
        return self.coeffs.get(name, Fraction(0))

    @property
    def constant(self) -> Fraction:
        return self.coeffs.get("one", Fraction(0))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, Fraction)):
            other = LinearCost.const(other)
        if not isinstance(other, LinearCost):
            return NotImplemented
        return self.coeffs == other.coeffs

    def __hash__(self) -> int:
        return hash(frozenset(self.coeffs.items()))

    # -- display ------------------------------------------------------------

    def __str__(self) -> str:
        if not self.coeffs:
            return "0"
        parts = []
        order = sorted(self.coeffs, key=lambda k: (k == "one", k))
        for key in order:
            coeff = self.coeffs[key]
            sym = _SYMBOL_DISPLAY.get(key, key)
            if key == "one":
                term = _format_fraction(coeff)
            elif coeff == 1:
                term = sym
            elif coeff == -1:
                term = f"-{sym}"
            else:
                term = f"{_format_fraction(coeff)}{sym}"
            parts.append(term)
        text = parts[0]
        for term in parts[1:]:
            text += f" - {term[1:]}" if term.startswith("-") else f" + {term}"
        return text

    def __repr__(self) -> str:
        return f"LinearCost({self})"


def _format_fraction(value: Fraction) -> str:
    if value.denominator == 1:
        return str(value.numerator)
    as_float = float(value)
    if as_float == round(as_float, 3):
        return f"{as_float:g}"
    return f"{value.numerator}/{value.denominator}"


# Convenience singletons used across formulas.
N = LinearCost.symbol("n")
WP = LinearCost.symbol("wp")
WA = LinearCost.symbol("wa")
ONE = LinearCost.const(1)
