"""Quantum circuit IR, resource accounting and rendering."""

from .circuit import Circuit, Register
from .draw import draw
from .markers import (
    parse_uncompute_label,
    reference_emission,
    reference_mode,
    uncompute_label,
)
from .ops import (
    Annotation,
    Conditional,
    Gate,
    MBUBlock,
    Measurement,
    Operation,
    adjoint_gate,
    iter_flat,
    strip_annotations,
)
from .resources import (
    GateCounts,
    count_blocks,
    count_gates,
    depth,
    toffoli_depth,
)
from .symbolic import N, ONE, WA, WP, LinearCost

__all__ = [
    "Circuit",
    "Register",
    "Gate",
    "Measurement",
    "Conditional",
    "MBUBlock",
    "Annotation",
    "Operation",
    "adjoint_gate",
    "iter_flat",
    "strip_annotations",
    "reference_emission",
    "reference_mode",
    "uncompute_label",
    "parse_uncompute_label",
    "GateCounts",
    "count_gates",
    "count_blocks",
    "depth",
    "toffoli_depth",
    "draw",
    "LinearCost",
    "N",
    "WP",
    "WA",
    "ONE",
]
