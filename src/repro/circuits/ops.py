"""Primitive and composite circuit operations.

The IR is deliberately small.  Unitary primitives are instances of
:class:`Gate`; the non-unitary / classically-fed-forward parts of the paper
are covered by three structured operations:

* :class:`Measurement` — projective measurement in the Z or X basis (an
  X-basis measurement is a Hadamard followed by a Z measurement, and is
  counted as such).
* :class:`Conditional` — a block of operations executed when a classical bit
  has a given value, annotated with an *a-priori execution probability* used
  by the ``expected`` resource-counting mode.  The measurement-based
  uncomputation of a temporary logical-AND (Gidney, fig. 11) is a
  ``Measurement(basis='x')`` followed by a ``Conditional`` holding a CZ (and
  an X that returns the ancilla to |0>), each with probability 1/2.
* :class:`MBUBlock` — the single-qubit measurement-based uncomputation of
  Lemma 4.1, holding the correction body ``(H, U_g ..., H, X)`` that runs
  when the X-basis measurement yields 1.

``Annotation`` ops carry structural labels (e.g. ``("begin", "QFT")``) so the
resource counter can report block-level costs (QFT units, PCQFT units) the way
Table 1 does for the Draper rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterator, Tuple, Union

__all__ = [
    "Gate",
    "Measurement",
    "Conditional",
    "MBUBlock",
    "Annotation",
    "Operation",
    "GATE_ARITY",
    "SELF_ADJOINT_GATES",
    "PHASE_ONLY_GATES",
    "PARAMETRIC_GATES",
    "adjoint_gate",
    "iter_flat",
    "strip_annotations",
]

# Gate name -> number of qubits.  Parametric gates take one angle parameter.
GATE_ARITY = {
    "x": 1,
    "y": 1,
    "z": 1,
    "h": 1,
    "s": 1,
    "sdg": 1,
    "t": 1,
    "tdg": 1,
    "cx": 2,
    "cz": 2,
    "swap": 2,
    "ccx": 3,
    "ccz": 3,
    "cswap": 3,
    "phase": 1,  # diag(1, e^{i*theta})
    "cphase": 2,  # controlled-phase
    "ccphase": 3,  # doubly controlled phase
    "rz": 1,
}

SELF_ADJOINT_GATES = frozenset({"x", "y", "z", "h", "cx", "cz", "swap", "ccx", "ccz", "cswap"})

#: Gates that act as pure phases on computational-basis states — value
#: no-ops for the basis-state backends (``repro.sim.bitplane`` and the
#: compiled-program lowering both key off this one set, so they can never
#: diverge on which gates are droppable).
PHASE_ONLY_GATES = frozenset(
    {"z", "s", "sdg", "t", "tdg", "cz", "ccz", "phase", "cphase", "ccphase", "rz"}
)

PARAMETRIC_GATES = frozenset({"phase", "cphase", "ccphase", "rz"})

_ADJOINT_NAME = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t"}


@dataclass(frozen=True, slots=True)
class Gate:
    """A unitary gate applied to concrete qubit indices.

    ``qubits`` lists controls first, target last (for controlled gates); the
    distinction is irrelevant for the symmetric gates (cz, ccz, swap, phase
    family) but maintained for readability.
    """

    name: str
    qubits: Tuple[int, ...]
    param: float = 0.0

    def __post_init__(self) -> None:
        if self.name not in GATE_ARITY:
            raise ValueError(f"unknown gate {self.name!r}")
        if len(self.qubits) != GATE_ARITY[self.name]:
            raise ValueError(
                f"gate {self.name!r} expects {GATE_ARITY[self.name]} qubits, "
                f"got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"gate {self.name!r} applied to duplicate qubits {self.qubits}")

    @property
    def is_self_adjoint(self) -> bool:
        return self.name in SELF_ADJOINT_GATES

    def adjoint(self) -> "Gate":
        return adjoint_gate(self)


@dataclass(frozen=True, slots=True)
class Measurement:
    """Projective single-qubit measurement into classical bit ``bit``.

    ``basis='z'`` is a computational-basis measurement; ``basis='x'`` applies
    a Hadamard first (and is costed as 1 H + 1 measurement).  The post-
    measurement state is the computational basis state |m> in both cases.
    """

    qubit: int
    bit: int
    basis: str = "z"

    def __post_init__(self) -> None:
        if self.basis not in ("z", "x"):
            raise ValueError(f"measurement basis must be 'z' or 'x', got {self.basis!r}")


@dataclass(frozen=True, slots=True)
class Conditional:
    """Execute ``body`` when classical ``bit`` equals ``value``.

    ``probability`` is the a-priori chance the condition holds, used by the
    ``expected`` counting mode; it defaults to 1/2, the MBU case.  Nested
    conditionals multiply probabilities.
    """

    bit: int
    body: Tuple["Operation", ...]
    value: int = 1
    probability: Fraction = field(default_factory=lambda: Fraction(1, 2))

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError("conditional value must be 0 or 1")
        if not 0 <= self.probability <= 1:
            raise ValueError("probability must lie in [0, 1]")


@dataclass(frozen=True, slots=True)
class MBUBlock:
    """Measurement-based uncomputation of a single garbage qubit (Lemma 4.1).

    Semantics: measure ``qubit`` in the X basis into ``bit``; on outcome 1,
    execute ``body`` — by construction ``(H(q), U_g ops..., H(q), X(q))`` —
    which removes the kicked-back phase and resets the qubit.  ``body`` is
    stored explicitly so simulators can run it literally and so the resource
    counter can weight it by 1/2.

    The classical (basis-state) simulator uses the algebraic fact that on a
    computational-basis input the whole correction acts as identity on the
    data register and maps the garbage qubit |1> -> |0> up to global phase;
    see ``repro.sim.classical``.
    """

    qubit: int
    bit: int
    body: Tuple["Operation", ...]

    @property
    def probability(self) -> Fraction:
        return Fraction(1, 2)


@dataclass(frozen=True, slots=True)
class Annotation:
    """Structural marker, ignored by simulators.

    ``kind`` is one of ``'begin'``/``'end'`` (block delimiters, ``label`` is
    the block name, e.g. ``'QFT'``) or ``'note'``.
    """

    kind: str
    label: str


Operation = Union[Gate, Measurement, Conditional, MBUBlock, Annotation]


def adjoint_gate(gate: Gate) -> Gate:
    """Return the adjoint of a unitary primitive."""
    if gate.name in SELF_ADJOINT_GATES:
        return gate
    if gate.name in _ADJOINT_NAME:
        return Gate(_ADJOINT_NAME[gate.name], gate.qubits)
    if gate.name in PARAMETRIC_GATES:
        return Gate(gate.name, gate.qubits, -gate.param)
    raise ValueError(f"no adjoint rule for gate {gate.name!r}")  # pragma: no cover


def iter_flat(ops: Tuple[Operation, ...] | list) -> Iterator[Operation]:
    """Yield all operations, descending into conditional/MBU bodies."""
    for op in ops:
        yield op
        if isinstance(op, Conditional):
            yield from iter_flat(op.body)
        elif isinstance(op, MBUBlock):
            yield from iter_flat(op.body)


def strip_annotations(ops) -> Tuple[Operation, ...]:
    """The op stream with every :class:`Annotation` removed, recursively
    (including inside Conditional/MBU bodies)."""
    out = []
    for op in ops:
        if isinstance(op, Annotation):
            continue
        if isinstance(op, Conditional):
            op = Conditional(op.bit, strip_annotations(op.body), op.value, op.probability)
        elif isinstance(op, MBUBlock):
            op = MBUBlock(op.qubit, op.bit, strip_annotations(op.body))
        out.append(op)
    return tuple(out)
