"""The :class:`Circuit` builder.

A circuit owns a flat space of qubits (integer indices) organised into named
registers, plus a flat space of classical bits.  Construction functions in
``repro.arithmetic`` / ``repro.modular`` *emit* gates into a circuit they are
handed, which keeps composition trivial (everything shares one index space)
and matches how the paper stitches subroutines together.

Sub-circuit capture
-------------------
``with circuit.capture() as body: ...`` records the operations emitted inside
the block into ``body`` instead of appending them, so they can be wrapped in
a :class:`~repro.circuits.ops.Conditional` or
:class:`~repro.circuits.ops.MBUBlock`.  This is how the MBU lemma and the
Gidney logical-AND uncomputation are built.
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from .ops import (
    Annotation,
    Conditional,
    Gate,
    MBUBlock,
    Measurement,
    Operation,
    adjoint_gate,
    strip_annotations,
)

__all__ = ["Register", "Circuit"]


@dataclass(frozen=True)
class Register:
    """A named, ordered, little-endian group of qubit indices."""

    name: str
    qubits: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.qubits)

    def __getitem__(self, item):
        return self.qubits[item]

    def __iter__(self) -> Iterator[int]:
        return iter(self.qubits)


class Circuit:
    """A mutable quantum circuit with named registers and classical bits."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.num_qubits = 0
        self.num_bits = 0
        self.registers: Dict[str, Register] = {}
        self.qubit_labels: List[str] = []
        self.bit_labels: List[str] = []
        self.ops: List[Operation] = []
        self._sinks: List[List[Operation]] = [self.ops]

    # ------------------------------------------------------------------ #
    # allocation

    def add_register(self, name: str, size: int) -> Register:
        """Allocate ``size`` fresh qubits as a named register."""
        if size < 0:
            raise ValueError("register size must be non-negative")
        if name in self.registers:
            raise ValueError(f"register {name!r} already exists")
        start = self.num_qubits
        qubits = tuple(range(start, start + size))
        self.num_qubits += size
        self.qubit_labels.extend(f"{name}[{i}]" for i in range(size))
        reg = Register(name, qubits)
        self.registers[name] = reg
        return reg

    def add_qubit(self, name: str) -> int:
        """Allocate a single fresh qubit; returns its index."""
        return self.add_register(name, 1)[0]

    def new_bit(self, name: str = "") -> int:
        """Allocate a classical bit; returns its index."""
        bit = self.num_bits
        self.num_bits += 1
        self.bit_labels.append(name or f"c{bit}")
        return bit

    # ------------------------------------------------------------------ #
    # emission

    def append(self, op: Operation) -> None:
        self._validate(op)
        self._sinks[-1].append(op)

    def _validate(self, op: Operation) -> None:
        if isinstance(op, Gate):
            if op.qubits and max(op.qubits) >= self.num_qubits:
                raise ValueError(f"gate {op} uses qubit beyond {self.num_qubits - 1}")
        elif isinstance(op, Measurement):
            if op.qubit >= self.num_qubits or op.bit >= self.num_bits:
                raise ValueError(f"measurement {op} out of range")
        elif isinstance(op, Conditional):
            if op.bit >= self.num_bits:
                raise ValueError(f"conditional on bit {op.bit} beyond {self.num_bits - 1}")
            for inner in op.body:
                self._validate(inner)
        elif isinstance(op, MBUBlock):
            if op.qubit >= self.num_qubits or op.bit >= self.num_bits:
                raise ValueError(f"MBU block {op.qubit}->{op.bit} out of range")
            for inner in op.body:
                self._validate(inner)

    @contextlib.contextmanager
    def capture(self):
        """Record emitted operations into a list instead of the circuit."""
        body: List[Operation] = []
        self._sinks.append(body)
        try:
            yield body
        finally:
            self._sinks.pop()

    # -- single-qubit gates ------------------------------------------------

    def x(self, q: int) -> None:
        self.append(Gate("x", (q,)))

    def y(self, q: int) -> None:
        self.append(Gate("y", (q,)))

    def z(self, q: int) -> None:
        self.append(Gate("z", (q,)))

    def h(self, q: int) -> None:
        self.append(Gate("h", (q,)))

    def s(self, q: int) -> None:
        self.append(Gate("s", (q,)))

    def sdg(self, q: int) -> None:
        self.append(Gate("sdg", (q,)))

    def t(self, q: int) -> None:
        self.append(Gate("t", (q,)))

    def tdg(self, q: int) -> None:
        self.append(Gate("tdg", (q,)))

    def phase(self, q: int, theta: float) -> None:
        self.append(Gate("phase", (q,), theta))

    def rz(self, q: int, theta: float) -> None:
        self.append(Gate("rz", (q,), theta))

    # -- multi-qubit gates ---------------------------------------------------

    def cx(self, control: int, target: int) -> None:
        self.append(Gate("cx", (control, target)))

    def cz(self, a: int, b: int) -> None:
        self.append(Gate("cz", (a, b)))

    def swap(self, a: int, b: int) -> None:
        self.append(Gate("swap", (a, b)))

    def ccx(self, c1: int, c2: int, target: int) -> None:
        self.append(Gate("ccx", (c1, c2, target)))

    def ccz(self, a: int, b: int, c: int) -> None:
        self.append(Gate("ccz", (a, b, c)))

    def cswap(self, control: int, a: int, b: int) -> None:
        self.append(Gate("cswap", (control, a, b)))

    def cphase(self, control: int, target: int, theta: float) -> None:
        self.append(Gate("cphase", (control, target), theta))

    def ccphase(self, c1: int, c2: int, target: int, theta: float) -> None:
        self.append(Gate("ccphase", (c1, c2, target), theta))

    def crk(self, control: int, target: int, k: int) -> None:
        """Controlled rotation C-R(theta_k) with theta_k = 2*pi / 2**k (fig 3)."""
        self.cphase(control, target, 2.0 * math.pi / (2 ** k))

    # -- non-unitary ---------------------------------------------------------

    def measure(self, qubit: int, bit: int | None = None, basis: str = "z") -> int:
        if bit is None:
            bit = self.new_bit()
        self.append(Measurement(qubit, bit, basis))
        return bit

    def cond(
        self,
        bit: int,
        body: Sequence[Operation],
        value: int = 1,
        probability: Fraction = Fraction(1, 2),
    ) -> None:
        self.append(Conditional(bit, tuple(body), value, probability))

    def mbu(self, qubit: int, body: Sequence[Operation], bit: int | None = None) -> int:
        if bit is None:
            bit = self.new_bit("mbu")
        self.append(MBUBlock(qubit, bit, tuple(body)))
        return bit

    # -- structure markers -----------------------------------------------------

    def begin(self, label: str) -> None:
        self.append(Annotation("begin", label))

    def end(self, label: str) -> None:
        self.append(Annotation("end", label))

    @contextlib.contextmanager
    def block(self, label: str):
        """Delimit a named block (QFT, PhiADD, ...) for block-level counting."""
        self.begin(label)
        try:
            yield
        finally:
            self.end(label)

    def note(self, text: str) -> None:
        self.append(Annotation("note", text))

    # ------------------------------------------------------------------ #
    # whole-circuit transforms

    def extend(self, ops: Iterable[Operation]) -> None:
        for op in ops:
            self.append(op)

    def adjoint_ops(self, ops: Sequence[Operation] | None = None) -> List[Operation]:
        """Adjoint of a unitary op sequence (reversed, gates conjugated).

        Recurses into :class:`~repro.circuits.ops.Conditional` bodies (a
        classically-controlled block of unitaries is inverted by inverting its
        body under the same condition) but raises on measurements and MBU
        blocks: circuits involving measurement are generally not invertible
        (remark 2.23).  Annotations are kept (begin/end swapped) so block
        counting still works.
        """
        source = self.ops if ops is None else ops
        out: List[Operation] = []
        for op in reversed(source):
            if isinstance(op, Gate):
                out.append(adjoint_gate(op))
            elif isinstance(op, Conditional):
                out.append(
                    Conditional(
                        op.bit, tuple(self.adjoint_ops(op.body)), op.value, op.probability
                    )
                )
            elif isinstance(op, Annotation):
                if op.kind == "begin":
                    out.append(Annotation("end", op.label))
                elif op.kind == "end":
                    out.append(Annotation("begin", op.label))
                else:
                    out.append(op)
            else:
                raise ValueError(
                    f"cannot take the adjoint of non-unitary operation {op!r} "
                    "(remark 2.23: measurement-based circuits are not invertible)"
                )
        return out

    def adjoint(self, name: str | None = None) -> "Circuit":
        """The whole-circuit adjoint as a fresh :class:`Circuit`.

        Shares this circuit's register/bit layout; raises (remark 2.23) when
        the circuit contains a measurement or an MBU block.
        """
        out = self.copy_empty(name if name is not None else f"adjoint({self.name})")
        out.extend(self.adjoint_ops())
        return out

    def copy_empty(self, name: str | None = None) -> "Circuit":
        """A circuit with the same qubit/bit layout and no operations.

        This is how :mod:`repro.transform` passes rebuild circuits: clone the
        shell, then append rewritten operations (allocating any extra
        ancillas/bits the rewrite needs).
        """
        out = Circuit(self.name if name is None else name)
        out.num_qubits = self.num_qubits
        out.num_bits = self.num_bits
        out.registers = dict(self.registers)
        out.qubit_labels = list(self.qubit_labels)
        out.bit_labels = list(self.bit_labels)
        return out

    def structurally_equal(
        self,
        other: "Circuit",
        include_annotations: bool = False,
    ) -> bool:
        """Whether two circuits are the same operation stream on the same
        qubit/bit layout.

        Recurses into Conditional/MBU bodies (the frozen op dataclasses
        compare recursively).  ``include_annotations=False`` (the default)
        ignores :class:`~repro.circuits.ops.Annotation` markers everywhere, so
        a pass-produced circuit and a hand-built one compare equal even when
        one of them carries block or uncompute markers.
        """
        if self.num_qubits != other.num_qubits or self.num_bits != other.num_bits:
            return False
        mine, theirs = self.ops, other.ops
        if not include_annotations:
            mine = strip_annotations(mine)
            theirs = strip_annotations(theirs)
        return list(mine) == list(theirs)

    # ------------------------------------------------------------------ #
    # introspection

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Circuit({self.name!r}, qubits={self.num_qubits}, "
            f"bits={self.num_bits}, ops={len(self.ops)})"
        )
