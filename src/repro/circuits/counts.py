"""Weighted gate-count containers (a leaf module, importable from anywhere).

:class:`GateCounts` lives here rather than in :mod:`repro.circuits.resources`
so the execution core (:mod:`repro.sim.engine`) can depend on it without a
circular ``resources -> engine -> resources`` import: ``resources`` builds
its counting/depth analyses *on* the engine, while the engine's weighted
tally *is* a ``GateCounts``.  ``resources`` re-exports everything here, so
``from repro.circuits.resources import GateCounts`` keeps working.

Counts are kept as :class:`fractions.Fraction` so expected values like
``3.5n`` Toffolis are exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable

__all__ = ["GateCounts", "TOFFOLI_GATES", "CNOT_CZ_GATES"]

TOFFOLI_GATES = frozenset({"ccx", "ccz"})

# Gates the paper groups into its "CNOT,CZ" column.
CNOT_CZ_GATES = frozenset({"cx", "cz"})


@dataclass
class GateCounts:
    """A multiset of gate names with Fraction multiplicities."""

    counts: Dict[str, Fraction] = field(default_factory=dict)

    def add(self, name: str, weight: Fraction = Fraction(1)) -> None:
        if weight == 0:
            return
        self.counts[name] = self.counts.get(name, Fraction(0)) + weight

    def __getitem__(self, name: str) -> Fraction:
        return self.counts.get(name, Fraction(0))

    def get(self, name: str, default: Fraction = Fraction(0)) -> Fraction:
        return self.counts.get(name, default)

    @property
    def toffoli(self) -> Fraction:
        return sum((v for k, v in self.counts.items() if k in TOFFOLI_GATES), Fraction(0))

    @property
    def cnot_cz(self) -> Fraction:
        return sum((v for k, v in self.counts.items() if k in CNOT_CZ_GATES), Fraction(0))

    @property
    def x(self) -> Fraction:
        return self.counts.get("x", Fraction(0))

    @property
    def h(self) -> Fraction:
        return self.counts.get("h", Fraction(0))

    @property
    def measurements(self) -> Fraction:
        return self.counts.get("measure", Fraction(0))

    def total(self, names: Iterable[str] | None = None) -> Fraction:
        if names is None:
            return sum(self.counts.values(), Fraction(0))
        return sum((self.counts.get(name, Fraction(0)) for name in names), Fraction(0))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, GateCounts):
            mine = {k: v for k, v in self.counts.items() if v != 0}
            theirs = {k: v for k, v in other.counts.items() if v != 0}
            return mine == theirs
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover
        inner = ", ".join(f"{k}={_fmt(v)}" for k, v in sorted(self.counts.items()))
        return f"GateCounts({inner})"


def _fmt(value: Fraction) -> str:
    return str(value.numerator) if value.denominator == 1 else f"{float(value):g}"
