"""Exact Clifford+T accounting via the ``decompose_clifford_t`` pass.

The paper reports Toffoli counts; fault-tolerant cost models want T-counts.
With the standard 7-T Toffoli network (``repro.transform``'s
``decompose_clifford_t`` pass) the two are rigidly linked: every
Toffoli-class gate (ccx / ccz / cswap) costs exactly 7 T/T†.
:func:`t_count` *measures* the T-count by actually decomposing the circuit
and counting; :func:`predicted_t_count` evaluates the 7-per-Toffoli closed
form on the undecomposed circuit.  ``tests/test_transforms.py`` asserts the
two agree — and match ``resources/formulas.py``'s Toffoli predictions × 7 —
for the Gidney-family adder rows of Table 2/3.

Both accept a :class:`~repro.arithmetic.builders.Built` or a bare
:class:`~repro.circuits.circuit.Circuit`; ``mode`` is the usual counting
mode (``expected`` weights MBU corrections by their probability, which
matters when a Toffoli sits inside a correction branch).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

from ..circuits.circuit import Circuit
from ..circuits.resources import GateCounts, count_gates
from ..transform import apply_transforms

__all__ = ["T_PER_TOFFOLI", "clifford_t_counts", "t_count", "predicted_t_count"]

#: T/T† gates per Toffoli-class gate in the standard exact network.
T_PER_TOFFOLI = 7

_CircuitLike = Union[Circuit, "object"]


def _circuit(target: _CircuitLike) -> Circuit:
    return target.circuit if hasattr(target, "circuit") else target


def clifford_t_counts(target: _CircuitLike, mode: str = "expected") -> GateCounts:
    """Gate counts of the circuit after ``decompose_clifford_t``."""
    return count_gates(apply_transforms(_circuit(target), ("decompose_clifford_t",)), mode=mode)


def t_count(target: _CircuitLike, mode: str = "expected") -> Fraction:
    """Measured T-count: decompose to Clifford+T, count ``t`` + ``tdg``."""
    counts = clifford_t_counts(target, mode)
    return counts["t"] + counts["tdg"]


def predicted_t_count(target: _CircuitLike, mode: str = "expected") -> Fraction:
    """Closed form: 7 × (ccx + ccz + cswap) of the undecomposed circuit."""
    counts = count_gates(_circuit(target), mode=mode)
    return T_PER_TOFFOLI * (counts["ccx"] + counts["ccz"] + counts["cswap"])
