"""Recover closed-form linear costs from measured gate counts.

Every cost in the paper is (affine-)linear in the register width ``n`` and
the Hamming weights of the classical constants.  Given measured counts over
a sweep of parameter points, :func:`fit_linear` solves the least-squares
system and returns an exact :class:`~repro.circuits.symbolic.LinearCost`
(coefficients snapped to nearby rationals).  :func:`fit_exact` additionally
verifies the fit reproduces every sample exactly — which is how the tests
prove statements like "the CDKPM modular adder costs exactly 8n Toffolis".
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Sequence

import numpy as np

from ..circuits.symbolic import LinearCost

__all__ = ["fit_linear", "fit_exact", "FitError"]


class FitError(RuntimeError):
    """The measured counts are not (exactly) linear in the parameters."""


def fit_linear(
    samples: Sequence[Mapping[str, int]],
    values: Sequence[Fraction | int | float],
    max_denominator: int = 64,
) -> LinearCost:
    """Least-squares fit ``value ~ c0 + sum_i c_sym * sym``.

    ``samples`` maps symbol names to their values at each measurement point;
    the constant term uses the reserved symbol ``one``.  Coefficients are
    snapped to fractions with denominator <= ``max_denominator``.
    """
    if len(samples) != len(values):
        raise ValueError("samples and values must have equal length")
    if not samples:
        raise ValueError("need at least one sample")
    symbols = sorted({name for sample in samples for name in sample})
    columns = symbols + ["one"]
    matrix = np.array(
        [[float(sample.get(sym, 0)) for sym in symbols] + [1.0] for sample in samples]
    )
    rhs = np.array([float(v) for v in values])
    solution, *_ = np.linalg.lstsq(matrix, rhs, rcond=None)
    coeffs: Dict[str, Fraction] = {}
    for name, value in zip(columns, solution):
        frac = Fraction(value).limit_denominator(max_denominator)
        if frac != 0:
            coeffs[name] = frac
    return LinearCost(coeffs)


def fit_exact(
    samples: Sequence[Mapping[str, int]],
    values: Sequence[Fraction | int],
    max_denominator: int = 64,
) -> LinearCost:
    """:func:`fit_linear` + verification that every sample is matched exactly.

    Raises :class:`FitError` when the data is not linear, listing the first
    offending sample — a unit-test-friendly way of asserting closed forms.
    """
    cost = fit_linear(samples, values, max_denominator)
    for sample, value in zip(samples, values):
        predicted = cost.evaluate(**{k: v for k, v in sample.items()})
        if predicted != Fraction(value):
            raise FitError(
                f"fit {cost} predicts {predicted} at {dict(sample)}, measured {value}"
            )
    return cost
