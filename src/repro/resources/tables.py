"""The paper's Tables 1-6 as *declarative sweep specs* (and their rows).

Paper mapping: section 5 ("Evaluation") Tables 1-6 — modular addition
(Table 1), plain/controlled/constant adders (Tables 2-5), comparators
(Table 6) — plus the section 1.1 headline MBU savings.

Each table is a :class:`TableSpec`: a tuple of :class:`RowSpec`\\ s, where a
row names the circuit to build (a :class:`~repro.pipeline.cache.SpecTemplate`
that expands to a :class:`~repro.pipeline.cache.CircuitSpec` at a concrete
``n``/modulus/constant), the variants to construct (plain and/or MBU) and
the metrics to measure, each paired with the paper's formula.  The same
declarative data serves three consumers:

* the classic ``table1(n)`` ... ``table6(n)`` functions (thin wrappers
  over :func:`build_table_rows`, output schema unchanged);
* the sweep pipeline (:mod:`repro.pipeline.runner`), which walks
  :data:`TABLE_SPECS` to distribute (table, n) tasks over a worker pool,
  build circuits through a :class:`~repro.pipeline.cache.CircuitCache`,
  and attach Monte-Carlo expected-cost columns per row variant;
* :func:`mbu_savings` (section 1.1's headline percentages), driven by
  :data:`SAVINGS_SPECS`.

``render_rows`` pretty-prints rows; ``examples/regenerate_tables.py`` and
the ``bench_table*.py`` harness drive these, and
``examples/reproduce_paper.py`` drives the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..arithmetic.builders import Built
from ..arithmetic.draper import PCQFT_UNIT_LABELS, QFT_UNIT_LABELS
from ..boolarith import hamming_weight
from ..circuits.symbolic import LinearCost
from ..pipeline.cache import CircuitCache, CircuitSpec, build_spec
from .formulas import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
    PAPER_TABLE6,
)

__all__ = [
    "qft_units",
    "pcqft_units",
    "SpecTemplate",
    "MetricSpec",
    "RowSpec",
    "TableSpec",
    "TABLE_SPECS",
    "SAVINGS_SPECS",
    "build_table_rows",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "mbu_savings",
    "render_rows",
]


def qft_units(built: Built, mode: str = "expected") -> Fraction:
    """Total QFT-sized blocks (QFT, IQFT, PhiADD/PhiSUB — remark 2.6)."""
    blocks = built.blocks(mode)
    return sum((v for k, v in blocks.items() if k in QFT_UNIT_LABELS), Fraction(0))


def pcqft_units(built: Built, mode: str = "expected") -> Fraction:
    """Total classically-determined rotation blocks (the PCQFT unit)."""
    blocks = built.blocks(mode)
    return sum((v for k, v in blocks.items() if k in PCQFT_UNIT_LABELS), Fraction(0))


def _fmt(value) -> str:
    if isinstance(value, LinearCost):
        return str(value)
    if isinstance(value, Fraction):
        return str(value.numerator) if value.denominator == 1 else f"{float(value):g}"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


# --------------------------------------------------------------------------- #
# the declarative layer


@dataclass(frozen=True)
class SpecTemplate:
    """A :class:`CircuitSpec` with the sweep parameters left open.

    ``fixed`` carries builder kwargs that never vary inside a sweep
    (family, method, architecture, ...); ``needs`` names which of the
    sweep parameters (``"p"`` — modulus, ``"a"`` — constant) the builder
    takes; ``supports_mbu`` gates whether an ``mbu=`` flag is forwarded.
    """

    kind: str
    fixed: Tuple[Tuple[str, Any], ...] = ()
    needs: Tuple[str, ...] = ()
    supports_mbu: bool = True

    def spec(
        self,
        n: int,
        p: Optional[int] = None,
        a: Optional[int] = None,
        mbu: bool = False,
        transforms: Tuple[str, ...] = (),
    ) -> CircuitSpec:
        params: Dict[str, Any] = dict(self.fixed)
        if "p" in self.needs:
            if p is None:
                raise ValueError(f"{self.kind} template needs a modulus p")
            params["p"] = p
        if "a" in self.needs:
            if a is None:
                raise ValueError(f"{self.kind} template needs a constant a")
            params["a"] = a
        if self.supports_mbu:
            params["mbu"] = mbu
        elif mbu:
            raise ValueError(f"{self.kind} template has no MBU variant")
        return CircuitSpec.make(self.kind, n, transforms=transforms, **params)


#: Sentinel: look the formula up in the paper table under the metric name.
_AUTO = "auto"


@dataclass(frozen=True)
class MetricSpec:
    """One measured column of a table row, paired with its paper value.

    ``source`` selects the measurement: a ``GateCounts`` property
    (``toffoli`` / ``cnot_cz`` / ``x``), a raw gate name (``cx``), or one
    of ``qubits`` / ``ancillas`` / ``qft_units`` / ``pcqft_units``.
    ``variant`` picks which constructed circuit to measure.  ``paper`` is
    ``"auto"`` (look up ``name`` in the paper row, absent -> ``None``),
    an explicit key, or a literal number (the paper prints a constant).
    ``adjust`` is subtracted from block-unit metrics (the Draper
    first-QFT/last-IQFT amortisation of Table 1's "Expect" row).
    """

    name: str
    source: str
    variant: str = "plain"
    paper: Union[str, int, None] = _AUTO
    adjust: int = 0


@dataclass(frozen=True)
class RowSpec:
    """One table row: a circuit template, its variants and its metrics."""

    key: str                       # paper-table lookup key, e.g. "cdkpm"
    label: str                     # display label, e.g. "CDKPM"
    template: SpecTemplate
    metrics: Tuple[MetricSpec, ...]
    variants: Tuple[str, ...] = ("plain",)
    include: Tuple[str, ...] = ()  # extra row keys copied from the sweep point

    def specs(
        self,
        n: int,
        p: Optional[int] = None,
        a: Optional[int] = None,
        transforms: Tuple[str, ...] = (),
    ) -> Dict[str, CircuitSpec]:
        """The concrete circuit specs of every variant at one sweep point."""
        return {
            v: self.template.spec(n, p=p, a=a, mbu=(v == "mbu"), transforms=transforms)
            for v in self.variants
        }


@dataclass(frozen=True)
class TableSpec:
    """One paper table: its rows plus which sweep parameter it takes."""

    name: str
    title: str
    param: Optional[str]           # "p", "a" or None
    paper: Mapping[str, Mapping[str, Any]]
    rows: Tuple[RowSpec, ...]

    def defaults(
        self, n: int, p: Optional[int] = None, a: Optional[int] = None
    ) -> Tuple[Optional[int], Optional[int]]:
        """Resolve the sweep point's modulus/constant (worst-case Hamming
        weight, as the paper's |p| / |a| terms assume)."""
        if self.param == "p" and p is None:
            p = (1 << n) - 1
        if self.param == "a" and a is None:
            a = (1 << n) - 1
        return p, a


def _measure(built: Built, metric: MetricSpec, counts) -> Any:
    if metric.source == "qubits":
        return built.logical_qubits
    if metric.source == "ancillas":
        return built.ancilla_count
    if metric.source == "qft_units":
        return qft_units(built) - metric.adjust
    if metric.source == "pcqft_units":
        return pcqft_units(built)
    if metric.source in ("toffoli", "cnot_cz", "x"):
        return getattr(counts, metric.source)
    return counts[metric.source]


def _paper_value(metric: MetricSpec, paper_row: Mapping[str, Any], symbols) -> Any:
    if metric.paper is None:
        return None
    if isinstance(metric.paper, str):
        key = metric.name if metric.paper == _AUTO else metric.paper
        formula = paper_row.get(key)
        if formula is None:
            return None
        return formula.evaluate(**symbols)
    return metric.paper  # a literal constant the paper prints


def build_table_rows(
    table: Union[str, TableSpec],
    n: int,
    p: Optional[int] = None,
    a: Optional[int] = None,
    cache: Optional[CircuitCache] = None,
    transforms: Tuple[str, ...] = (),
) -> List[Dict[str, Any]]:
    """Materialize one table's rows at width ``n`` (the sweep work unit).

    With a :class:`CircuitCache`, construction and expected-mode counting
    are memoized across rows, tables and repeated sweep points.
    ``transforms`` applies a :mod:`repro.transform` pass chain to every
    row circuit before measuring (and becomes part of each cache key), so
    a sweep can report e.g. post-``lower_toffoli`` costs.
    """
    spec = TABLE_SPECS[table] if isinstance(table, str) else table
    p, a = spec.defaults(n, p, a)
    symbols: Dict[str, int] = {"n": n}
    if p is not None:
        symbols["wp"] = hamming_weight(p)
    if a is not None:
        symbols["wa"] = hamming_weight(a)

    rows: List[Dict[str, Any]] = []
    for row_spec in spec.rows:
        specs = row_spec.specs(n, p=p, a=a, transforms=transforms)
        built = {
            v: (cache.build(s) if cache is not None else build_spec(s))
            for v, s in specs.items()
        }
        counts_memo: Dict[str, Any] = {}

        def counts_for(variant: str):
            if variant not in counts_memo:
                if cache is not None:
                    counts_memo[variant] = cache.counts(specs[variant])
                else:
                    counts_memo[variant] = built[variant].counts("expected")
            return counts_memo[variant]

        row: Dict[str, Any] = {"row": row_spec.label}
        point = {"n": n, "p": p, "a": a}
        for key in row_spec.include:
            row[key] = point[key]
        paper_row = spec.paper.get(row_spec.key, {})
        for metric in row_spec.metrics:
            row[metric.name] = _measure(
                built[metric.variant], metric, counts_for(metric.variant)
            )
            row[f"{metric.name}_paper"] = _paper_value(metric, paper_row, symbols)
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# the tables themselves, declaratively

_T1_RIPPLE_METRICS = (
    MetricSpec("qubits", "qubits"),
    MetricSpec("toffoli", "toffoli"),
    MetricSpec("toffoli_mbu", "toffoli", variant="mbu"),
    MetricSpec("cnot_cz", "cnot_cz"),
    MetricSpec("cnot_cz_mbu", "cnot_cz", variant="mbu"),
    MetricSpec("x", "x"),
    MetricSpec("x_mbu", "x", variant="mbu"),
)


def _t1_draper_metrics(discount: int) -> Tuple[MetricSpec, ...]:
    # first QFT + last IQFT amortised away in the "(Expect)" row
    return (
        MetricSpec("qubits", "qubits"),
        MetricSpec("qft_units", "qft_units", adjust=discount),
        MetricSpec("qft_units_mbu", "qft_units", variant="mbu", adjust=discount),
        MetricSpec("pcqft_units", "pcqft_units"),
    )


def _t1_row(key: str, label: str, template: SpecTemplate) -> RowSpec:
    return RowSpec(
        key, label, template, _T1_RIPPLE_METRICS,
        variants=("plain", "mbu"), include=("n", "p"),
    )


_MODADD_DRAPER = SpecTemplate("modadd_draper", needs=("p",))

TABLE1 = TableSpec(
    "table1",
    "Table 1 — modular addition (n={n}, p={p})",
    "p",
    PAPER_TABLE1,
    (
        _t1_row("vbe5", "(5 adder) VBE", SpecTemplate("modadd_vbe_original", needs=("p",))),
        _t1_row("vbe4", "(4 adder) VBE",
                SpecTemplate("modadd", (("family", "vbe"),), ("p",))),
        _t1_row("cdkpm", "CDKPM",
                SpecTemplate("modadd", (("family", "cdkpm"),), ("p",))),
        _t1_row("gidney", "Gidney",
                SpecTemplate("modadd", (("family", "gidney"),), ("p",))),
        _t1_row("hybrid", "CDKPM+Gidney",
                SpecTemplate("modadd", (("family", "gidney"), ("mid_family", "cdkpm")), ("p",))),
        RowSpec("draper", "Draper", _MODADD_DRAPER, _t1_draper_metrics(0),
                variants=("plain", "mbu"), include=("n", "p")),
        RowSpec("draper_expect", "Draper (Expect)", _MODADD_DRAPER, _t1_draper_metrics(2),
                variants=("plain", "mbu"), include=("n", "p")),
    ),
)

_COUNT_METRICS = (
    MetricSpec("toffoli", "toffoli"),
    MetricSpec("ancillas", "ancillas"),
    MetricSpec("cnot", "cx", paper="cnot"),
)


def _plain_row(key: str, kind: str, fixed=(), needs=(), **kw) -> RowSpec:
    template = SpecTemplate(
        kind, (("family", key),) + tuple(fixed), tuple(needs), supports_mbu=False
    )
    return RowSpec(key, key.upper(), template, _COUNT_METRICS, **kw)


TABLE2 = TableSpec(
    "table2",
    "Table 2 — plain adders (n={n})",
    None,
    PAPER_TABLE2,
    (
        _plain_row("vbe", "adder"),
        _plain_row("cdkpm", "adder"),
        _plain_row("gidney", "adder"),
        RowSpec(
            "draper", "Draper",
            SpecTemplate("adder", (("family", "draper"),), supports_mbu=False),
            (MetricSpec("qft_units", "qft_units"), MetricSpec("ancillas", "ancillas", paper=0)),
        ),
    ),
)

TABLE3 = TableSpec(
    "table3",
    "Table 3 — controlled addition (n={n})",
    None,
    PAPER_TABLE3,
    (
        _plain_row("cdkpm", "controlled_adder", ((("method", "native")),)),
        _plain_row("gidney", "controlled_adder", ((("method", "native")),)),
        RowSpec(
            "draper", "Draper",
            SpecTemplate("controlled_adder", (("family", "draper"),), supports_mbu=False),
            (
                MetricSpec("toffoli", "toffoli"),
                MetricSpec("ancillas", "ancillas", paper=1),
                MetricSpec("qft_units", "qft_units"),
            ),
        ),
    ),
)


def _constant_table(name: str, title: str, kind: str, paper) -> TableSpec:
    return TableSpec(
        name,
        title,
        "a",
        paper,
        (
            _plain_row("cdkpm", kind, needs=("a",), include=("a",)),
            _plain_row("gidney", kind, needs=("a",), include=("a",)),
            RowSpec(
                "draper", "Draper",
                SpecTemplate(kind, (("family", "draper"),), ("a",), supports_mbu=False),
                (
                    MetricSpec("qft_units", "qft_units"),
                    MetricSpec("pcqft_units", "pcqft_units"),
                    MetricSpec("ancillas", "ancillas", paper=0),
                ),
                include=("a",),
            ),
        ),
    )


TABLE4 = _constant_table(
    "table4", "Table 4 — addition by a constant (n={n})", "add_const", PAPER_TABLE4
)
TABLE5 = _constant_table(
    "table5", "Table 5 — controlled addition by a constant (n={n})",
    "controlled_add_const", PAPER_TABLE5,
)

TABLE6 = TableSpec(
    "table6",
    "Table 6 — comparators (n={n})",
    None,
    PAPER_TABLE6,
    (
        _plain_row("cdkpm", "comparator"),
        _plain_row("gidney", "comparator"),
        RowSpec(
            "draper", "Draper",
            SpecTemplate("comparator", (("family", "draper"),), supports_mbu=False),
            (MetricSpec("qft_units", "qft_units"), MetricSpec("ancillas", "ancillas", paper=1)),
        ),
    ),
)

#: Every paper table, by name — the sweep pipeline's menu.
TABLE_SPECS: Dict[str, TableSpec] = {
    t.name: t for t in (TABLE1, TABLE2, TABLE3, TABLE4, TABLE5, TABLE6)
}


def table1(n: int, p: int | None = None) -> List[Dict[str, Any]]:
    """Table 1: modular addition, with and without MBU."""
    return build_table_rows(TABLE1, n, p=p)


def table2(n: int) -> List[Dict[str, Any]]:
    """Table 2: plain adders."""
    return build_table_rows(TABLE2, n)


def table3(n: int) -> List[Dict[str, Any]]:
    """Table 3: controlled addition."""
    return build_table_rows(TABLE3, n)


def table4(n: int, a: int | None = None) -> List[Dict[str, Any]]:
    """Table 4: addition by a constant."""
    return build_table_rows(TABLE4, n, a=a)


def table5(n: int, a: int | None = None) -> List[Dict[str, Any]]:
    """Table 5: controlled addition by a constant."""
    return build_table_rows(TABLE5, n, a=a)


def table6(n: int) -> List[Dict[str, Any]]:
    """Table 6: comparators."""
    return build_table_rows(TABLE6, n)


# --------------------------------------------------------------------------- #
# section 1.1 headline savings

#: key -> (template, ratio metric).  The Takahashi row compares the
#: constant modular adder at a = p // 2 (resolved in :func:`mbu_savings`).
SAVINGS_SPECS: Dict[str, Tuple[SpecTemplate, str]] = {
    "vbe5": (SpecTemplate("modadd_vbe_original", needs=("p",)), "toffoli"),
    "vbe4": (SpecTemplate("modadd", (("family", "vbe"),), ("p",)), "toffoli"),
    "cdkpm": (SpecTemplate("modadd", (("family", "cdkpm"),), ("p",)), "toffoli"),
    "gidney": (SpecTemplate("modadd", (("family", "gidney"),), ("p",)), "toffoli"),
    "hybrid": (
        SpecTemplate("modadd", (("family", "gidney"), ("mid_family", "cdkpm")), ("p",)),
        "toffoli",
    ),
    "draper": (_MODADD_DRAPER, "qft_units"),
    "takahashi": (
        SpecTemplate(
            "modadd_const",
            (("family", "cdkpm"), ("architecture", "takahashi")),
            ("p", "a"),
        ),
        "toffoli",
    ),
}


def mbu_savings(
    n: int, p: int | None = None, cache: Optional[CircuitCache] = None
) -> Dict[str, float]:
    """Section-1.1 headline: relative expected-Toffoli savings from MBU."""
    if p is None:
        p = (1 << n) - 1
    out: Dict[str, float] = {}
    for key, (template, metric) in SAVINGS_SPECS.items():
        a = p // 2 if "a" in template.needs else None
        pair = []
        for mbu in (False, True):
            spec = template.spec(n, p=p, a=a, mbu=mbu)
            if metric == "qft_units":
                built = cache.build(spec) if cache is not None else build_spec(spec)
                pair.append(qft_units(built))
            elif cache is not None:
                pair.append(cache.counts(spec).toffoli)
            else:
                pair.append(build_spec(spec).counts("expected").toffoli)
        base, with_mbu = pair
        out[key] = float(1 - with_mbu / base)
    return out


def render_rows(rows: Sequence[Dict[str, Any]], title: str = "") -> str:
    """ASCII-render table rows; '<metric> (paper)' columns interleaved."""
    metrics: List[str] = []
    for row in rows:
        for key in row:
            if key.endswith("_paper") or key in ("row", "n", "p", "a"):
                continue
            if key not in metrics:
                metrics.append(key)
    header = ["row"] + [m for m in metrics]
    widths: Dict[str, int] = {}

    def cell(row: Dict[str, Any], metric: str) -> str:
        if metric == "row":
            return str(row.get("row", ""))
        if metric not in row or row[metric] is None:
            return "-"
        text = _fmt(row[metric])
        paper = row.get(f"{metric}_paper")
        if paper is not None:
            text += f" ({_fmt(paper)})"
        return text

    table_cells = [[cell(row, m) for m in header] for row in rows]
    for j, name in enumerate(header):
        widths[name] = max([len(name)] + [len(r[j]) for r in table_cells])
    out_lines = []
    if title:
        out_lines.append(title)
    out_lines.append("  ".join(name.ljust(widths[name]) for name in header))
    out_lines.append("  ".join("-" * widths[name] for name in header))
    for r in table_cells:
        out_lines.append("  ".join(v.ljust(widths[h]) for v, h in zip(r, header)))
    out_lines.append("(measured value first, paper formula value in parentheses)")
    return "\n".join(out_lines)
