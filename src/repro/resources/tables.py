"""Regenerate the paper's Tables 1-6 from constructed circuits.

Each ``table*`` function builds the row's circuit(s) at a concrete ``n``
(and modulus/constant), measures gate counts in ``expected`` mode, and
returns rows carrying *paper formula*, *paper value at n*, and *measured
value* side by side.  ``render_rows`` pretty-prints them; the benchmark
harness and ``examples/regenerate_tables.py`` drive these.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Dict, List, Sequence

from ..arithmetic import (
    build_add_const,
    build_adder,
    build_comparator,
    build_controlled_add_const,
    build_controlled_adder,
)
from ..arithmetic.builders import Built
from ..arithmetic.draper import PCQFT_UNIT_LABELS, QFT_UNIT_LABELS
from ..boolarith import hamming_weight
from ..circuits.symbolic import LinearCost
from ..modular import (
    build_modadd,
    build_modadd_draper,
    build_modadd_vbe_original,
)
from .formulas import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
    PAPER_TABLE6,
)

__all__ = [
    "qft_units",
    "pcqft_units",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "mbu_savings",
    "render_rows",
]


def qft_units(built: Built, mode: str = "expected") -> Fraction:
    """Total QFT-sized blocks (QFT, IQFT, PhiADD/PhiSUB — remark 2.6)."""
    blocks = built.blocks(mode)
    return sum((v for k, v in blocks.items() if k in QFT_UNIT_LABELS), Fraction(0))


def pcqft_units(built: Built, mode: str = "expected") -> Fraction:
    """Total classically-determined rotation blocks (the PCQFT unit)."""
    blocks = built.blocks(mode)
    return sum((v for k, v in blocks.items() if k in PCQFT_UNIT_LABELS), Fraction(0))


def _fmt(value) -> str:
    if isinstance(value, LinearCost):
        return str(value)
    if isinstance(value, Fraction):
        return str(value.numerator) if value.denominator == 1 else f"{float(value):g}"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _paper(table: Dict, row: str, metric: str, **symbols):
    cost = table.get(row, {}).get(metric)
    if cost is None:
        return None, None
    return cost, cost.evaluate(**{k: v for k, v in symbols.items() if k in cost.coeffs or True})


TABLE1_LABELS = {
    "vbe5": "(5 adder) VBE",
    "vbe4": "(4 adder) VBE",
    "cdkpm": "CDKPM",
    "gidney": "Gidney",
    "hybrid": "CDKPM+Gidney",
    "draper": "Draper",
    "draper_expect": "Draper (Expect)",
}


def table1(n: int, p: int | None = None) -> List[Dict[str, Any]]:
    """Table 1: modular addition, with and without MBU."""
    if p is None:
        p = (1 << n) - 1  # worst-case Hamming weight, as the |p| terms assume
    wp = hamming_weight(p)
    builders = {
        "vbe5": lambda mbu: build_modadd_vbe_original(n, p, mbu=mbu),
        "vbe4": lambda mbu: build_modadd(n, p, "vbe", mbu=mbu),
        "cdkpm": lambda mbu: build_modadd(n, p, "cdkpm", mbu=mbu),
        "gidney": lambda mbu: build_modadd(n, p, "gidney", mbu=mbu),
        "hybrid": lambda mbu: build_modadd(n, p, "gidney", "cdkpm", mbu=mbu),
    }
    rows: List[Dict[str, Any]] = []
    for key, make in builders.items():
        plain, mbu = make(False), make(True)
        counts, counts_mbu = plain.counts("expected"), mbu.counts("expected")
        row: Dict[str, Any] = {"row": TABLE1_LABELS[key], "n": n, "p": p}
        for metric, measured in [
            ("qubits", plain.logical_qubits),
            ("toffoli", counts.toffoli),
            ("toffoli_mbu", counts_mbu.toffoli),
            ("cnot_cz", counts.cnot_cz),
            ("cnot_cz_mbu", counts_mbu.cnot_cz),
            ("x", counts.x),
            ("x_mbu", counts_mbu.x),
        ]:
            formula = PAPER_TABLE1[key].get(metric)
            row[metric] = measured
            row[f"{metric}_paper"] = formula.evaluate(n=n, wp=wp) if formula else None
        rows.append(row)

    for key, amortized in [("draper", False), ("draper_expect", True)]:
        plain, mbu = build_modadd_draper(n, p), build_modadd_draper(n, p, mbu=True)
        discount = 2 if amortized else 0  # first QFT + last IQFT amortised away
        row = {
            "row": TABLE1_LABELS[key],
            "n": n,
            "p": p,
            "qubits": plain.logical_qubits,
            "qubits_paper": PAPER_TABLE1[key]["qubits"].evaluate(n=n),
            "qft_units": qft_units(plain) - discount,
            "qft_units_paper": PAPER_TABLE1[key]["qft_units"].evaluate(n=n),
            "qft_units_mbu": qft_units(mbu) - discount,
            "qft_units_mbu_paper": PAPER_TABLE1[key]["qft_units_mbu"].evaluate(n=n),
            "pcqft_units": pcqft_units(plain),
            "pcqft_units_paper": PAPER_TABLE1[key]["pcqft_units"].evaluate(n=n),
        }
        rows.append(row)
    return rows


def table2(n: int) -> List[Dict[str, Any]]:
    """Table 2: plain adders."""
    rows = []
    for family in ("vbe", "cdkpm", "gidney"):
        built = build_adder(n, family)
        counts = built.counts("expected")
        paper = PAPER_TABLE2[family]
        rows.append({
            "row": family.upper(),
            "toffoli": counts.toffoli,
            "toffoli_paper": paper["toffoli"].evaluate(n=n),
            "ancillas": built.ancilla_count,
            "ancillas_paper": paper["ancillas"].evaluate(n=n),
            "cnot": counts["cx"],
            "cnot_paper": paper["cnot"].evaluate(n=n),
        })
    built = build_adder(n, "draper")
    rows.append({
        "row": "Draper",
        "qft_units": qft_units(built),
        "qft_units_paper": PAPER_TABLE2["draper"]["qft_units"].evaluate(n=n),
        "ancillas": built.ancilla_count,
        "ancillas_paper": 0,
    })
    return rows


def table3(n: int) -> List[Dict[str, Any]]:
    """Table 3: controlled addition."""
    rows = []
    for family in ("cdkpm", "gidney"):
        built = build_controlled_adder(n, family, "native")
        counts = built.counts("expected")
        paper = PAPER_TABLE3[family]
        rows.append({
            "row": family.upper(),
            "toffoli": counts.toffoli,
            "toffoli_paper": paper["toffoli"].evaluate(n=n),
            "ancillas": built.ancilla_count,
            "ancillas_paper": paper["ancillas"].evaluate(n=n),
            "cnot": counts["cx"],
            "cnot_paper": paper["cnot"].evaluate(n=n),
        })
    built = build_controlled_adder(n, "draper")
    rows.append({
        "row": "Draper",
        "toffoli": built.counts().toffoli,
        "toffoli_paper": PAPER_TABLE3["draper"]["toffoli"].evaluate(n=n),
        "ancillas": built.ancilla_count,
        "ancillas_paper": 1,
        "qft_units": qft_units(built),
        "qft_units_paper": PAPER_TABLE3["draper"]["qft_units"].evaluate(n=n),
    })
    return rows


def _constant_table(n: int, a: int | None, controlled: bool) -> List[Dict[str, Any]]:
    if a is None:
        a = (1 << n) - 1
    wa = hamming_weight(a)
    paper_table = PAPER_TABLE5 if controlled else PAPER_TABLE4
    make = build_controlled_add_const if controlled else build_add_const
    rows = []
    for family in ("cdkpm", "gidney"):
        built = make(n, a, family)
        counts = built.counts("expected")
        paper = paper_table[family]
        rows.append({
            "row": family.upper(),
            "a": a,
            "toffoli": counts.toffoli,
            "toffoli_paper": paper["toffoli"].evaluate(n=n, wa=wa),
            "ancillas": built.ancilla_count,
            "ancillas_paper": paper["ancillas"].evaluate(n=n, wa=wa),
            "cnot": counts["cx"],
            "cnot_paper": paper["cnot"].evaluate(n=n, wa=wa),
        })
    built = make(n, a, "draper")
    rows.append({
        "row": "Draper",
        "a": a,
        "qft_units": qft_units(built),
        "qft_units_paper": paper_table["draper"]["qft_units"].evaluate(n=n),
        "pcqft_units": pcqft_units(built),
        "pcqft_units_paper": paper_table["draper"]["pcqft_units"].evaluate(n=n),
        "ancillas": built.ancilla_count,
        "ancillas_paper": 0,
    })
    return rows


def table4(n: int, a: int | None = None) -> List[Dict[str, Any]]:
    """Table 4: addition by a constant."""
    return _constant_table(n, a, controlled=False)


def table5(n: int, a: int | None = None) -> List[Dict[str, Any]]:
    """Table 5: controlled addition by a constant."""
    return _constant_table(n, a, controlled=True)


def table6(n: int) -> List[Dict[str, Any]]:
    """Table 6: comparators."""
    rows = []
    for family in ("cdkpm", "gidney"):
        built = build_comparator(n, family)
        counts = built.counts("expected")
        paper = PAPER_TABLE6[family]
        rows.append({
            "row": family.upper(),
            "toffoli": counts.toffoli,
            "toffoli_paper": paper["toffoli"].evaluate(n=n),
            "ancillas": built.ancilla_count,
            "ancillas_paper": paper["ancillas"].evaluate(n=n),
            "cnot": counts["cx"],
            "cnot_paper": paper["cnot"].evaluate(n=n),
        })
    built = build_comparator(n, "draper")
    rows.append({
        "row": "Draper",
        "qft_units": qft_units(built),
        "qft_units_paper": PAPER_TABLE6["draper"]["qft_units"].evaluate(n=n),
        "ancillas": built.ancilla_count,
        "ancillas_paper": 1,
    })
    return rows


def mbu_savings(n: int, p: int | None = None) -> Dict[str, float]:
    """Section-1.1 headline: relative expected-Toffoli savings from MBU."""
    if p is None:
        p = (1 << n) - 1
    from ..modular import build_modadd_const

    out: Dict[str, float] = {}
    for key, make in {
        "vbe5": lambda mbu: build_modadd_vbe_original(n, p, mbu=mbu),
        "vbe4": lambda mbu: build_modadd(n, p, "vbe", mbu=mbu),
        "cdkpm": lambda mbu: build_modadd(n, p, "cdkpm", mbu=mbu),
        "gidney": lambda mbu: build_modadd(n, p, "gidney", mbu=mbu),
        "hybrid": lambda mbu: build_modadd(n, p, "gidney", "cdkpm", mbu=mbu),
    }.items():
        base = make(False).counts("expected").toffoli
        with_mbu = make(True).counts("expected").toffoli
        out[key] = float(1 - with_mbu / base)
    base = qft_units(build_modadd_draper(n, p))
    with_mbu = qft_units(build_modadd_draper(n, p, mbu=True))
    out["draper"] = float(1 - with_mbu / base)
    taka = build_modadd_const(n, p, p // 2, "cdkpm", "takahashi")
    taka_mbu = build_modadd_const(n, p, p // 2, "cdkpm", "takahashi", mbu=True)
    out["takahashi"] = float(
        1 - taka_mbu.counts("expected").toffoli / taka.counts("expected").toffoli
    )
    return out


def render_rows(rows: Sequence[Dict[str, Any]], title: str = "") -> str:
    """ASCII-render table rows; '<metric> (paper)' columns interleaved."""
    metrics: List[str] = []
    for row in rows:
        for key in row:
            if key.endswith("_paper") or key in ("row", "n", "p", "a"):
                continue
            if key not in metrics:
                metrics.append(key)
    header = ["row"] + [m for m in metrics]
    lines = []
    widths: Dict[str, int] = {}

    def cell(row: Dict[str, Any], metric: str) -> str:
        if metric == "row":
            return str(row.get("row", ""))
        if metric not in row or row[metric] is None:
            return "-"
        text = _fmt(row[metric])
        paper = row.get(f"{metric}_paper")
        if paper is not None:
            text += f" ({_fmt(paper)})"
        return text

    table_cells = [[cell(row, m) for m in header] for row in rows]
    for j, name in enumerate(header):
        widths[name] = max([len(name)] + [len(r[j]) for r in table_cells])
    out_lines = []
    if title:
        out_lines.append(title)
    out_lines.append("  ".join(name.ljust(widths[name]) for name in header))
    out_lines.append("  ".join("-" * widths[name] for name in header))
    for r in table_cells:
        out_lines.append("  ".join(v.ljust(widths[h]) for v, h in zip(r, header)))
    out_lines.append("(measured value first, paper formula value in parentheses)")
    return "\n".join(out_lines)
