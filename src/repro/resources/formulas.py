"""The paper's cost formulas (Tables 1-6), encoded symbolically, next to
the exact closed forms of this repository's constructions.

Paper mapping: section 5's evaluation tables — Table 1 (modular addition,
section 3 architectures with the section 4 MBU discounts), Table 2
(plain adders, props 2.2-2.5), Table 3 (controlled addition, props
2.11/2.12, thm 2.14), Tables 4/5 ((controlled) addition by a constant,
props 2.16/2.17/2.19/2.20) and Table 6 (comparators, props 2.26-2.28) —
plus the section 1.1 headline savings windows (``PAPER_HEADLINES``).

Symbols: ``n`` — register width; ``wp`` — |p| (Hamming weight of the
modulus); ``wa`` — |a| (Hamming weight of the added constant).

Two dictionaries per table:

* ``PAPER_*`` — the numbers as printed in the paper (leading-order, with
  occasionally rounded constant terms);
* ``EXACT_*`` — closed forms measured from (and tested against) the
  circuits built here.  Where a cell is ``None`` the quantity is checked by
  fitting at test/bench time instead of being frozen here.

The headline agreements (verified in ``tests/test_tables.py``):

==============  ==================  ====================
Table 1 row     paper Tof (w/o, w)  ours (w/o, w)
==============  ==================  ====================
(5 adder) VBE   20n+10, 16n+8       20n-10, 16n-8
(4 adder) VBE   16n+4,  14n+4       16n-3,  14n-3
CDKPM           8n,     7n          8n+1,   7n+1
Gidney          4n,     3.5n        4n+1,   3.5n+1
CDKPM+Gidney    6n,     5.5n        6n+1,   5.5n+1
Draper          10, 8 QFT units     9, 7 QFT units
Takahashi(a)    6n,     5n          6n,     5n   (exact!)
==============  ==================  ====================

(The +-1 constants come from remark 2.32's width-padding Toffoli, which the
paper's leading-order table elides; the Draper unit difference comes from
Beauregard's fused comparator/subtractor, which our circuit uses and the
paper's compositional count does not.)
"""

from __future__ import annotations

from fractions import Fraction

from ..circuits.symbolic import N, WA, WP, LinearCost

__all__ = [
    "PAPER_TABLE1",
    "EXACT_TABLE1",
    "PAPER_TABLE2",
    "EXACT_TABLE2",
    "PAPER_TABLE3",
    "EXACT_TABLE3",
    "PAPER_TABLE4",
    "EXACT_TABLE4",
    "PAPER_TABLE5",
    "EXACT_TABLE5",
    "PAPER_TABLE6",
    "EXACT_TABLE6",
    "PAPER_HEADLINES",
]

_half = Fraction(1, 2)

# ---------------------------------------------------------------- Table 1
# Modular addition in the VBE architecture; metrics: qubits, toffoli,
# toffoli_mbu, cnot_cz, cnot_cz_mbu, x, x_mbu.  Draper rows use qft_units /
# pcqft_units instead of gate counts.

PAPER_TABLE1 = {
    "vbe5": {
        "qubits": 4 * N + 2,
        "toffoli": 20 * N + 10,
        "toffoli_mbu": 16 * N + 8,
        "cnot_cz": 20 * N + 2 * WP + 22,
        "cnot_cz_mbu": 16 * N + 2 * WP + 18,
        "x": WP + 2,
        "x_mbu": WP + LinearCost.const(Fraction(5, 2)),
    },
    "vbe4": {
        "qubits": 4 * N + 2,
        "toffoli": 16 * N + 4,
        "toffoli_mbu": 14 * N + 4,
        "cnot_cz": 20 * N + 2 * WP + 18,
        "cnot_cz_mbu": 17 * N + 2 * WP + LinearCost.const(Fraction(31, 2)),
        "x": 2 * WP + 1,
        "x_mbu": 2 * WP + LinearCost.const(Fraction(3, 2)),
    },
    "cdkpm": {
        "qubits": 3 * N + 2,
        "toffoli": 8 * N,
        "toffoli_mbu": 7 * N,
        "cnot_cz": 16 * N + 2 * WP + 4,
        "cnot_cz_mbu": 14 * N + 2 * WP + LinearCost.const(Fraction(7, 2)),
        "x": 2 * WP + 1,
        "x_mbu": 2 * WP + LinearCost.const(Fraction(3, 2)),
    },
    "gidney": {
        "qubits": 4 * N + 2,
        "toffoli": 4 * N,
        "toffoli_mbu": LinearCost({"n": Fraction(7, 2)}),
        "cnot_cz": 26 * N + 2 * WP + 4,
        "cnot_cz_mbu": LinearCost({"n": Fraction(91, 4), "wp": 2, "one": Fraction(7, 2)}),
        "x": 2 * WP + 1,
        "x_mbu": 2 * WP + LinearCost.const(Fraction(3, 2)),
    },
    "hybrid": {
        "qubits": 3 * N + 2,
        "toffoli": 6 * N,
        "toffoli_mbu": LinearCost({"n": Fraction(11, 2)}),
        "cnot_cz": 21 * N + 2 * WP + 4,
        "cnot_cz_mbu": LinearCost({"n": Fraction(71, 4), "wp": 2, "one": Fraction(7, 2)}),
        "x": 2 * WP + 1,
        "x_mbu": 2 * WP + LinearCost.const(Fraction(3, 2)),
    },
    "draper": {
        "qubits": 2 * N + 2,
        "qft_units": LinearCost.const(10),
        "qft_units_mbu": LinearCost.const(8),
        "pcqft_units": LinearCost.const(1),
        "pcqft_units_mbu": LinearCost.const(1),
    },
    "draper_expect": {
        "qubits": 2 * N + 2,
        "qft_units": LinearCost.const(8),
        "qft_units_mbu": LinearCost.const(6),
        "pcqft_units": LinearCost.const(1),
        "pcqft_units_mbu": LinearCost.const(1),
    },
}

EXACT_TABLE1 = {
    "vbe5": {"qubits": 4 * N + 2, "toffoli": 20 * N - 10, "toffoli_mbu": 16 * N - 8},
    "vbe4": {"qubits": 4 * N + 3, "toffoli": 16 * N - 3, "toffoli_mbu": 14 * N - 3},
    "cdkpm": {"qubits": 3 * N + 3, "toffoli": 8 * N + 1, "toffoli_mbu": 7 * N + 1},
    "gidney": {
        "qubits": 4 * N + 3,
        "toffoli": 4 * N + 1,
        "toffoli_mbu": LinearCost({"n": Fraction(7, 2), "one": 1}),
    },
    "hybrid": {
        "qubits": 3 * N + 3,
        "toffoli": 6 * N + 1,
        "toffoli_mbu": LinearCost({"n": Fraction(11, 2), "one": 1}),
    },
    "draper": {
        "qubits": 2 * N + 2,
        "qft_units": LinearCost.const(9),
        "qft_units_mbu": LinearCost.const(7),
        "pcqft_units": LinearCost.const(2),
        "pcqft_units_mbu": LinearCost.const(2),
    },
    "draper_expect": {
        "qubits": 2 * N + 2,
        "qft_units": LinearCost.const(7),
        "qft_units_mbu": LinearCost.const(5),
        "pcqft_units": LinearCost.const(2),
        "pcqft_units_mbu": LinearCost.const(2),
    },
}

# ---------------------------------------------------------------- Table 2
# Plain adders; metrics: toffoli, ancillas, cnot (qft_units for Draper).

PAPER_TABLE2 = {
    "vbe": {"toffoli": 4 * N, "ancillas": N * 1, "cnot": 4 * N + 4},
    "cdkpm": {"toffoli": 2 * N, "ancillas": LinearCost.const(1), "cnot": 4 * N + 1},
    "gidney": {"toffoli": N * 1, "ancillas": N * 1, "cnot": 6 * N - 1},
    "draper": {"qft_units": LinearCost.const(3), "ancillas": LinearCost.const(0)},
}

EXACT_TABLE2 = {
    "vbe": {"toffoli": 4 * N - 2, "ancillas": N * 1, "cnot": 4 * N},
    "cdkpm": {"toffoli": 2 * N, "ancillas": LinearCost.const(1), "cnot": 4 * N + 1},
    "gidney": {"toffoli": N * 1, "ancillas": N * 1, "cnot": 6 * N - 1},
    "draper": {"qft_units": LinearCost.const(3), "ancillas": LinearCost.const(0)},
}

# ---------------------------------------------------------------- Table 3
# Controlled addition.

PAPER_TABLE3 = {
    "cdkpm": {"toffoli": 3 * N, "ancillas": LinearCost.const(1), "cnot": 4 * N + 1},
    "gidney": {"toffoli": 2 * N, "ancillas": N + 1, "cnot": 7 * N - 1},
    "draper": {"toffoli": N * 1, "ancillas": LinearCost.const(1), "qft_units": LinearCost.const(3)},
}

EXACT_TABLE3 = {
    "cdkpm": {"toffoli": 3 * N + 1, "ancillas": LinearCost.const(1), "cnot": 4 * N},
    "gidney": {"toffoli": 2 * N + 1, "ancillas": N + 1, "cnot": 6 * N},
    "draper": {"toffoli": N * 1, "ancillas": LinearCost.const(1), "qft_units": LinearCost.const(3)},
}

# ---------------------------------------------------------------- Table 4
# Addition by a constant.

PAPER_TABLE4 = {
    "cdkpm": {"toffoli": 2 * N, "ancillas": N + 1, "cnot": 4 * N + 1},
    "gidney": {"toffoli": N * 1, "ancillas": 2 * N, "cnot": 6 * N - 1},
    "draper": {"qft_units": LinearCost.const(2), "ancillas": LinearCost.const(0),
               "pcqft_units": LinearCost.const(1)},
}

EXACT_TABLE4 = {
    "cdkpm": {"toffoli": 2 * N, "ancillas": N + 1, "x": 2 * WA},
    "gidney": {"toffoli": N * 1, "ancillas": 2 * N, "x": 2 * WA},
    "draper": {"qft_units": LinearCost.const(2), "ancillas": LinearCost.const(0),
               "pcqft_units": LinearCost.const(1)},
}

# ---------------------------------------------------------------- Table 5
# Controlled addition by a constant (extra 2|a| CNOTs for the load).

PAPER_TABLE5 = {
    "cdkpm": {"toffoli": 2 * N, "ancillas": N + 1, "cnot": 4 * N + 1 + 2 * WA},
    "gidney": {"toffoli": N * 1, "ancillas": 2 * N, "cnot": 6 * N - 1 + 2 * WA},
    "draper": {"qft_units": LinearCost.const(2), "ancillas": LinearCost.const(0),
               "pcqft_units": LinearCost.const(1)},
}

EXACT_TABLE5 = {
    "cdkpm": {"toffoli": 2 * N, "ancillas": N + 1, "load_cnot": 2 * WA},
    "gidney": {"toffoli": N * 1, "ancillas": 2 * N, "load_cnot": 2 * WA},
    "draper": {"qft_units": LinearCost.const(2), "ancillas": LinearCost.const(0),
               "pcqft_units": LinearCost.const(1)},
}

# ---------------------------------------------------------------- Table 6
# Comparators.

PAPER_TABLE6 = {
    "cdkpm": {"toffoli": 2 * N, "ancillas": LinearCost.const(1), "cnot": 4 * N + 1},
    "gidney": {"toffoli": N * 1, "ancillas": N * 1, "cnot": 6 * N + 1},
    "draper": {"qft_units": LinearCost.const(6), "ancillas": LinearCost.const(1)},
}

EXACT_TABLE6 = {
    "cdkpm": {"toffoli": 2 * N, "ancillas": LinearCost.const(1), "cnot": 4 * N + 1},
    "gidney": {"toffoli": N * 1, "ancillas": N + 1, "cnot": 6 * N + 1},
    "draper": {"qft_units": LinearCost.const(6), "ancillas": LinearCost.const(1)},
}

# ------------------------------------------------------------ section 1.1
# Headline savings claims, as fractions of the non-MBU cost at large n.

PAPER_HEADLINES = {
    # "reduce the Toffoli count and depth by 10% to 15% for modular adders
    #  based on the architecture of [VBE96]"
    "vbe5_saving": (0.10, 0.25),
    "cdkpm_saving": (0.10, 0.15),
    # "by almost 25% for modular adders based on the architecture of [Bea02]"
    "draper_saving": (0.18, 0.30),
    # "leading to a 16.7% improvement" (constant modular adder, thm 4.11)
    "takahashi_saving": (0.166, 0.168),
}
