"""Extensions beyond the paper's explicit constructions: modular
multiplication / exponentiation from (MBU) modular adders."""

from .mulmod import (
    build_inplace_mul_const_mod,
    build_modexp,
    build_mul_const_mod,
    modexp_cost,
)

__all__ = [
    "build_mul_const_mod",
    "build_inplace_mul_const_mod",
    "build_modexp",
    "modexp_cost",
]
