"""Modular multiplication and exponentiation built from (MBU) modular
adders — the application the paper's section 1.1 points at ("our results
have the potential to improve ... modular multiplication and modular
exponentiation"), implemented here as an extension.

Paper mapping: each building block is a paper construction — the doubly
controlled constant modular adds are prop 3.18 (thm 4.12 with MBU) and
the temporary logical-ANDs are Gidney's prop 2.4 trick, so every factor
of the section-1.1 headline savings compounds here.  The sweep pipeline
wires :func:`build_modexp` / :func:`modexp_cost` in as its large-workload
scenario (``SweepConfig.modexp``; see docs/reproduce.md).

Constructions (all verified by simulation in ``tests/test_mulmod.py``):

* :func:`build_mul_const_mod` — out-of-place ``|x>|y> -> |x>|y + a*x mod p>``
  as ``n`` controlled constant modular adders with constants ``a * 2^i mod p``
  (control = ``x_i``);
* :func:`build_inplace_mul_const_mod` — in-place ``|x> -> |a*x mod p>`` for
  ``gcd(a, p) = 1`` via multiply / swap / inverse-multiply;
* :func:`build_modexp` — ``|e>|1> -> |e>|a^e mod p>`` (the Shor-style
  modular exponentiation kernel) from controlled in-place multiplications;
  double controls are realised with temporary logical-ANDs, so MBU also
  halves their uncomputation cost;
* :func:`modexp_cost` — closed-form expected-Toffoli estimate for
  cryptographically sized registers, without building the giant circuit.

Every constant modular adder inside can run with or without MBU, making
this module the end-to-end demonstration of the paper's savings at the
application level.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, Sequence

from ..circuits.circuit import Circuit
from ..arithmetic.builders import Built
from ..arithmetic.families import KITS, AdderKit
from ..arithmetic.gidney import emit_and, emit_and_uncompute
from ..modular.constant import _emit_modadd_const_vbe_arch, _pool

__all__ = [
    "build_mul_const_mod",
    "build_inplace_mul_const_mod",
    "build_modexp",
    "modexp_cost",
]


def _emit_cmodadd_const(
    circ: Circuit,
    ctrl: int,
    y_full: Sequence[int],
    t: int,
    p: int,
    a: int,
    work: Sequence[int],
    kit: AdderKit,
    mbu: bool,
) -> None:
    """y += ctrl * a (mod p) — prop 3.18's architecture."""
    _emit_modadd_const_vbe_arch(circ, y_full, t, p, a % p, work, kit, mbu, ctrl=ctrl)


def emit_mul_const_mod(
    circ: Circuit,
    x: Sequence[int],
    y_full: Sequence[int],
    t: int,
    p: int,
    a: int,
    work: Sequence[int],
    kit: AdderKit,
    mbu: bool,
    ctrl: int | None = None,
    and_anc: int | None = None,
    invert: bool = False,
) -> None:
    """y += [ctrl] * a * x (mod p), via n controlled constant modular adds.

    With ``ctrl`` given, each addition is doubly controlled: a temporary
    logical-AND merges ``ctrl`` and ``x_i`` into ``and_anc`` (one Toffoli,
    measurement-based uncompute).  ``invert=True`` subtracts instead
    (adding ``p - a*2^i mod p``).
    """
    n = len(x)
    for i in range(n):
        const = (a * (1 << i)) % p
        if invert:
            const = (p - const) % p
        if ctrl is None:
            _emit_cmodadd_const(circ, x[i], y_full, t, p, const, work, kit, mbu)
        else:
            if and_anc is None:
                raise ValueError("doubly controlled multiply needs and_anc")
            emit_and(circ, ctrl, x[i], and_anc)
            _emit_cmodadd_const(circ, and_anc, y_full, t, p, const, work, kit, mbu)
            emit_and_uncompute(circ, ctrl, x[i], and_anc)


def build_mul_const_mod(
    n: int,
    p: int,
    a: int,
    family: str | AdderKit = "cdkpm",
    mbu: bool = False,
) -> Built:
    """|x>_n |y>_{n+1} -> |x>|y + a*x mod p>  (out-of-place multiplication)."""
    kit = KITS[family] if isinstance(family, str) else family
    if not 0 < p < (1 << n):
        raise ValueError("modulus must satisfy 0 < p < 2**n")
    circ = Circuit(f"mulmod[{kit.name},n={n},p={p},a={a},mbu={mbu}]")
    x = circ.add_register("x", n)
    y = circ.add_register("y", n + 1)
    t = circ.add_register("t", 1)
    work = circ.add_register("work", _pool(n, kit))
    emit_mul_const_mod(
        circ, x.qubits, y.qubits, t[0], p, a % p, work.qubits, kit, mbu
    )
    return Built(
        circ, n, ("t", "work"),
        {"op": "mulmod", "p": p, "a": a, "family": kit.name, "mbu": mbu},
    )


def build_inplace_mul_const_mod(
    n: int,
    p: int,
    a: int,
    family: str | AdderKit = "cdkpm",
    mbu: bool = False,
) -> Built:
    """|x>_n -> |a*x mod p>_n for gcd(a, p) = 1 (multiply, swap, un-multiply).

    The standard Shor-kernel trick: compute ``a*x`` out of place, swap it
    into the input register, then *subtract* ``a^{-1}`` times the product
    from the old register, which returns it to |0>.
    """
    kit = KITS[family] if isinstance(family, str) else family
    if math.gcd(a % p, p) != 1:
        raise ValueError(f"a={a} is not invertible modulo {p}")
    a = a % p
    inv_a = pow(a, -1, p)
    circ = Circuit(f"imulmod[{kit.name},n={n},p={p},a={a},mbu={mbu}]")
    x = circ.add_register("x", n)
    y = circ.add_register("y", n + 1)
    t = circ.add_register("t", 1)
    work = circ.add_register("work", _pool(n, kit))

    emit_mul_const_mod(circ, x.qubits, y.qubits, t[0], p, a, work.qubits, kit, mbu)
    for i in range(n):
        circ.swap(x[i], y[i])
    emit_mul_const_mod(
        circ, x.qubits, y.qubits, t[0], p, inv_a, work.qubits, kit, mbu, invert=True
    )
    return Built(
        circ, n, ("y", "t", "work"),
        {"op": "imulmod", "p": p, "a": a, "family": kit.name, "mbu": mbu},
    )


def build_modexp(
    n_exp: int,
    n: int,
    p: int,
    a: int,
    family: str | AdderKit = "cdkpm",
    mbu: bool = False,
) -> Built:
    """|e>_{n_exp} |1>_n -> |e> |a^e mod p>_n  (Shor's modular exponentiation).

    One controlled in-place multiplication by ``a^{2^j} mod p`` per exponent
    bit; controls are merged with temporary logical-ANDs.
    """
    kit = KITS[family] if isinstance(family, str) else family
    if math.gcd(a % p, p) != 1:
        raise ValueError(f"a={a} is not invertible modulo {p}")
    circ = Circuit(f"modexp[{kit.name},n={n},p={p},a={a},mbu={mbu}]")
    e = circ.add_register("e", n_exp)
    x = circ.add_register("x", n)  # accumulator, starts at 1
    y = circ.add_register("y", n + 1)
    t = circ.add_register("t", 1)
    and_anc = circ.add_register("and", 1)
    work = circ.add_register("work", _pool(n, kit))

    circ.x(x[0])  # accumulator <- 1
    for j in range(n_exp):
        factor = pow(a, 1 << j, p)
        inv = pow(factor, -1, p)
        emit_mul_const_mod(
            circ, x.qubits, y.qubits, t[0], p, factor, work.qubits, kit, mbu,
            ctrl=e[j], and_anc=and_anc[0],
        )
        for i in range(n):
            circ.cswap(e[j], x[i], y[i])
        emit_mul_const_mod(
            circ, x.qubits, y.qubits, t[0], p, inv, work.qubits, kit, mbu,
            ctrl=e[j], and_anc=and_anc[0], invert=True,
        )
    return Built(
        circ, n, ("y", "t", "and", "work"),
        {"op": "modexp", "p": p, "a": a, "family": kit.name, "mbu": mbu},
    )


def modexp_cost(
    n_exp: int, n: int, family: str = "cdkpm", mbu: bool = False
) -> Dict[str, Fraction]:
    """Closed-form expected-cost estimate of :func:`build_modexp`.

    Measures one controlled constant modular adder (the loop body's
    dominant block) at width ``n`` and scales: ``2 n n_exp`` adders plus
    the AND/cswap overhead.  Exact for the Toffoli count (verified against
    a fully built circuit in the tests).
    """
    from ..modular import build_controlled_modadd_const

    probe = build_controlled_modadd_const(
        n, (1 << n) - 1, (1 << n) - 2, family, "vbe", mbu=mbu
    )
    adder_tof = probe.counts("expected").toffoli
    adders = 2 * n * n_exp
    toffoli = adders * adder_tof + adders  # + one temp-AND per adder
    return {
        "adders": Fraction(adders),
        "toffoli": Fraction(toffoli),
        "toffoli_per_adder": Fraction(adder_tof),
        "cswap": Fraction(n * n_exp),
        "qubits": Fraction(n_exp + probe.logical_qubits + n + 1),
    }
