"""Lowering circuits to linear bit-plane programs: :func:`compile_program`.

The interpretive bit-plane walk (``ExecutionEngine`` driving
``BitplaneSimulator``) pays per-operation Python overhead: ``isinstance``
dispatch, gate-name string comparisons, tally bookkeeping and dynamic
garbage-qubit checks.  All of that is static: for a fixed circuit the
control-flow nesting, the MBU garbage stack, which gates are basis-state
no-ops (diagonal/phase gates) and which garbage-targeting gates are
skipped can be resolved *once, at compile time*.

:func:`compile_program` flattens the nested ``Conditional``/``MBUBlock``
IR into a linear instruction stream of small tuples:

* integer opcodes with pre-extracted qubit/bit operands;
* ``COND``/``MBU`` instructions carrying a pre-computed jump target, so a
  branch with zero active lanes skips its whole body in O(1);
* phase-only gates, annotations and statically-skipped garbage gates are
  dropped from the stream entirely (their *tally* contribution is kept —
  see below);
* compile-time errors for anything the bit-plane semantics cannot run
  (bare ``h``, measuring a garbage qubit, reading garbage as a control),
  mirroring the interpretive backend's runtime checks.

Executed-gate accounting stays exact: every instruction carries the tuple
of gate-name tallies it accounts for (dropped ops attach to the next
instruction in the same branch scope, or to a flush ``NOP`` — weights are
constant within a scope, so order is irrelevant), and the VM accumulates
*integer* executed-lane counts per name, folding them into the engine's
``GateCounts`` as ``Fraction(total, batch)`` at the end — identical to the
interpretive average-per-lane tally.

:meth:`repro.sim.bitplane.BitplaneSimulator.run_compiled` executes these
programs; ``benchmarks/bench_transform.py`` records the compiled-vs-
interpretive speedup to ``benchmarks/BENCH_transform.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..circuits.circuit import Circuit
from ..circuits.ops import (
    PHASE_ONLY_GATES,
    Annotation,
    Conditional,
    Gate,
    MBUBlock,
    Measurement,
    Operation,
)
from ..sim.classical import UnsupportedGateError, garbage_gate_skips

__all__ = [
    "CompiledProgram",
    "compile_program",
    "OP_NOP",
    "OP_X",
    "OP_CX",
    "OP_CCX",
    "OP_SWAP",
    "OP_CSWAP",
    "OP_MZ",
    "OP_MX",
    "OP_COND",
    "OP_ENDCOND",
    "OP_MBU",
    "OP_ENDMBU",
]

# Opcodes (ints, compared by the VM's dispatch chain — ordered by typical
# frequency in ripple-carry arithmetic: cx, ccx, x dominate).
OP_NOP = 0      # (OP_NOP,)                      tally-only flush
OP_X = 1        # (OP_X, q)
OP_CX = 2       # (OP_CX, c, t)
OP_CCX = 3      # (OP_CCX, c1, c2, t)
OP_SWAP = 4     # (OP_SWAP, a, b)
OP_CSWAP = 5    # (OP_CSWAP, c, a, b)
OP_MZ = 6       # (OP_MZ, q, bit)
OP_MX = 7       # (OP_MX, q, bit)
OP_COND = 8     # (OP_COND, bit, value, jump)    jump = pc of matching ENDCOND
OP_ENDCOND = 9  # (OP_ENDCOND,)
OP_MBU = 10     # (OP_MBU, q, bit, jump)         jump = pc of matching ENDMBU
OP_ENDMBU = 11  # (OP_ENDMBU, q)

# Gates that only kick phases on computational-basis states (value no-ops);
# shared with the interpretive bit-plane backend so the two cannot diverge.
_PHASE_ONLY = PHASE_ONLY_GATES

_GATE_OPCODE = {"x": OP_X, "y": OP_X, "cx": OP_CX, "ccx": OP_CCX,
                "swap": OP_SWAP, "cswap": OP_CSWAP}


@dataclass(frozen=True)
class CompiledProgram:
    """A circuit lowered to a linear bit-plane instruction stream.

    ``instructions[pc]`` is an opcode tuple; ``tallies[pc]`` is the tuple
    of gate names that instruction accounts for.  ``has_tally`` records
    whether tally metadata was compiled in at all (``tally=False`` programs
    can only be executed with tallying disabled).  ``source`` names the
    circuit the program was compiled from; ``num_qubits``/``num_bits`` pin
    the layout a simulator must provide.
    """

    num_qubits: int
    num_bits: int
    instructions: Tuple[Tuple[int, ...], ...]
    tallies: Tuple[Tuple[str, ...], ...]
    has_tally: bool = True
    source: str = ""

    def __len__(self) -> int:
        return len(self.instructions)

    def counts_static(self) -> Dict[str, int]:
        """Instruction-count census by opcode (diagnostics / tests)."""
        census: Dict[str, int] = {}
        names = {v: k for k, v in globals().items() if k.startswith("OP_")}
        for instr in self.instructions:
            key = names[instr[0]]
            census[key] = census.get(key, 0) + 1
        return census


@dataclass
class _Emitter:
    tally: bool
    instructions: List[Tuple[int, ...]] = field(default_factory=list)
    tallies: List[Tuple[str, ...]] = field(default_factory=list)
    pending: List[str] = field(default_factory=list)

    def note(self, *names: str) -> None:
        if self.tally:
            self.pending.extend(names)

    def emit(self, instr: Tuple[int, ...]) -> int:
        self.instructions.append(instr)
        self.tallies.append(tuple(self.pending))
        self.pending.clear()
        return len(self.instructions) - 1

    def flush(self) -> None:
        """Attach leftover tally names to a NOP before leaving a scope
        (weights differ across scope boundaries, so they cannot ride on an
        outer instruction)."""
        if self.pending:
            self.emit((OP_NOP,))

    def patch_jump(self, pc: int, target: int) -> None:
        instr = self.instructions[pc]
        self.instructions[pc] = instr[:-1] + (target,)


def compile_program(circuit: Circuit, tally: bool = True) -> CompiledProgram:
    """Flatten ``circuit`` into a :class:`CompiledProgram`.

    ``tally=False`` drops all executed-gate accounting metadata, which lets
    the VM skip tally work entirely — the fastest configuration.  Raises
    :class:`~repro.sim.classical.UnsupportedGateError` at *compile* time
    for operations without basis-state semantics (the interpretive backend
    would raise at run time).
    """
    emitter = _Emitter(tally)
    _compile_ops(circuit.ops, emitter, garbage=[])
    emitter.flush()
    return CompiledProgram(
        num_qubits=circuit.num_qubits,
        num_bits=circuit.num_bits,
        instructions=tuple(emitter.instructions),
        tallies=tuple(emitter.tallies),
        has_tally=tally,
        source=circuit.name,
    )


def _compile_ops(ops: Sequence[Operation], em: _Emitter, garbage: List[int]) -> None:
    for op in ops:
        if isinstance(op, Gate):
            name = op.name
            em.note(name)
            if garbage and garbage_gate_skips(op, garbage):
                continue  # statically resolved: phase-only on the +/- garbage
            if name in _PHASE_ONLY:
                continue
            opcode = _GATE_OPCODE.get(name)
            if opcode is None:
                raise UnsupportedGateError(
                    f"gate {name!r} has no basis-state semantics; "
                    "compiled bit-plane programs cannot contain it"
                )
            em.emit((opcode, *op.qubits))
        elif isinstance(op, Measurement):
            if op.qubit in garbage:
                raise UnsupportedGateError(
                    "measurement of garbage qubit inside MBU body"
                )
            if op.basis == "x":
                em.note("h", "measure")
                em.emit((OP_MX, op.qubit, op.bit))
            else:
                em.note("measure")
                em.emit((OP_MZ, op.qubit, op.bit))
        elif isinstance(op, Conditional):
            header = em.emit((OP_COND, op.bit, op.value, -1))
            _compile_ops(op.body, em, garbage)
            em.flush()
            end = em.emit((OP_ENDCOND,))
            em.patch_jump(header, end)
        elif isinstance(op, MBUBlock):
            if op.qubit in garbage:
                raise UnsupportedGateError("nested MBU on an active garbage qubit")
            em.note("h", "measure")
            header = em.emit((OP_MBU, op.qubit, op.bit, -1))
            garbage.append(op.qubit)
            _compile_ops(op.body, em, garbage)
            garbage.pop()
            em.flush()
            end = em.emit((OP_ENDMBU, op.qubit))
            em.patch_jump(header, end)
        elif isinstance(op, Annotation):
            continue
        else:  # pragma: no cover
            raise TypeError(f"unknown operation {op!r}")
