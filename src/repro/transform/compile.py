"""Lowering circuits to linear bit-plane programs: :func:`compile_program`.

The interpretive bit-plane walk (``ExecutionEngine`` driving
``BitplaneSimulator``) pays per-operation Python overhead: ``isinstance``
dispatch, gate-name string comparisons, tally bookkeeping and dynamic
garbage-qubit checks.  All of that is static: for a fixed circuit the
control-flow nesting, the MBU garbage stack, which gates are basis-state
no-ops (diagonal/phase gates) and which garbage-targeting gates are
skipped can be resolved *once, at compile time*.

:func:`compile_program` flattens the nested ``Conditional``/``MBUBlock``
IR into a linear instruction stream of small tuples:

* integer opcodes with pre-extracted qubit/bit operands;
* ``COND``/``MBU`` instructions carrying a pre-computed jump target, so a
  branch with zero active lanes skips its whole body in O(1);
* phase-only gates, annotations and statically-skipped garbage gates are
  dropped from the stream entirely (their *tally* contribution is kept —
  see below);
* compile-time errors for anything the bit-plane semantics cannot run
  (bare ``h``, measuring a garbage qubit, reading garbage as a control),
  mirroring the interpretive backend's runtime checks.

Executed-gate accounting stays exact: every instruction carries the tuple
of gate-name tallies it accounts for (dropped ops attach to the next
instruction in the same branch scope, or to a flush ``NOP`` — weights are
constant within a scope, so order is irrelevant), and the VM accumulates
*integer* executed-lane counts per name, folding them into the engine's
``GateCounts`` as ``Fraction(total, batch)`` at the end — identical to the
interpretive average-per-lane tally.

:meth:`repro.sim.bitplane.BitplaneSimulator.run_compiled` executes these
programs; ``benchmarks/bench_transform.py`` records the compiled-vs-
interpretive speedup to ``benchmarks/BENCH_transform.json``.

Two further compile-time optimizations sit on top of the flattening:

* **Peephole cancellation** (``cancel=True``, the default): adjacent
  identical self-inverse instructions — the stream-level image of
  ``cancel_adjacent`` inverse pairs, after phase gates and statically
  skipped garbage gates have dropped out — are removed *from the stream
  only*.  Their tally contribution is kept (both gates execute; their net
  state effect is identity), so results and gate accounting stay identical
  to the interpretive walk.  ``swap``/``cswap`` operands are canonicalized
  (sorted swapped pair) so symmetric pairs cancel too.
* **Fusion** (:func:`fuse_program`): the linear stream is regrouped into a
  :class:`FusedProgram` — a branch-scope tree whose straight-line segments
  carry *superinstructions*: maximal runs of same-opcode instructions with
  operands pre-packed into numpy index arrays.  A run splits when an
  instruction reads *or writes* a plane written earlier in the same run
  (the write-conflict check), so every run is safe to execute as a few
  gather/scatter array ops — and has unique write targets by construction.
  Tally metadata is aggregated per branch scope (weights are constant
  within a scope), which is what lets the fused VM replace per-instruction
  tally bookkeeping with one event per scope *entry*.
  :mod:`repro.sim.kernels` executes fused programs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.ops import (
    PHASE_ONLY_GATES,
    Annotation,
    Conditional,
    Gate,
    MBUBlock,
    Measurement,
    Operation,
)
from ..sim.classical import UnsupportedGateError, garbage_gate_skips

__all__ = [
    "CompiledProgram",
    "compile_program",
    "FusedProgram",
    "FusedRun",
    "FusedScope",
    "fuse_program",
    "schedule_program",
    "OP_NOP",
    "OP_X",
    "OP_CX",
    "OP_CCX",
    "OP_SWAP",
    "OP_CSWAP",
    "OP_MZ",
    "OP_MX",
    "OP_COND",
    "OP_ENDCOND",
    "OP_MBU",
    "OP_ENDMBU",
    "OP_NOISE",
]

# Opcodes (ints, compared by the VM's dispatch chain — ordered by typical
# frequency in ripple-carry arithmetic: cx, ccx, x dominate).
OP_NOP = 0      # (OP_NOP,)                      tally-only flush
OP_X = 1        # (OP_X, q)
OP_CX = 2       # (OP_CX, c, t)
OP_CCX = 3      # (OP_CCX, c1, c2, t)
OP_SWAP = 4     # (OP_SWAP, a, b)
OP_CSWAP = 5    # (OP_CSWAP, c, a, b)
OP_MZ = 6       # (OP_MZ, q, bit)
OP_MX = 7       # (OP_MX, q, bit)
OP_COND = 8     # (OP_COND, bit, value, jump)    jump = pc of matching ENDCOND
OP_ENDCOND = 9  # (OP_ENDCOND,)
OP_MBU = 10     # (OP_MBU, q, bit, jump)         jump = pc of matching ENDMBU
OP_ENDMBU = 11  # (OP_ENDMBU, q)
OP_NOISE = 12   # (OP_NOISE, q)                  bit-flip channel point (repro.noise)

# Gates that only kick phases on computational-basis states (value no-ops);
# shared with the interpretive bit-plane backend so the two cannot diverge.
_PHASE_ONLY = PHASE_ONLY_GATES

_GATE_OPCODE = {"x": OP_X, "y": OP_X, "cx": OP_CX, "ccx": OP_CCX,
                "swap": OP_SWAP, "cswap": OP_CSWAP}

#: Self-inverse at the stream level: two adjacent identical instructions of
#: these opcodes are a value-identity on every lane (x/y both lower to OP_X,
#: and an x·y pair is phase-only on basis states, so name differences are
#: irrelevant here — tally names are preserved separately).
_CANCELLABLE = frozenset({OP_X, OP_CX, OP_CCX, OP_SWAP, OP_CSWAP})


@dataclass(frozen=True, slots=True)
class CompiledProgram:
    """A circuit lowered to a linear bit-plane instruction stream.

    ``instructions[pc]`` is an opcode tuple; ``tallies[pc]`` is the tuple
    of gate names that instruction accounts for.  ``has_tally`` records
    whether tally metadata was compiled in at all (``tally=False`` programs
    can only be executed with tallying disabled).  ``source`` names the
    circuit the program was compiled from; ``num_qubits``/``num_bits`` pin
    the layout a simulator must provide.
    """

    num_qubits: int
    num_bits: int
    instructions: Tuple[Tuple[int, ...], ...]
    tallies: Tuple[Tuple[str, ...], ...]
    has_tally: bool = True
    source: str = ""
    #: ``(name, qubit_tuple)`` pairs mirroring the source circuit's register
    #: layout — enough for a worker process to load/read register values
    #: without holding the Circuit object (see ``repro.sim.dispatch``).
    registers: Tuple[Tuple[str, Tuple[int, ...]], ...] = ()

    def __len__(self) -> int:
        return len(self.instructions)

    def counts_static(self) -> Dict[str, int]:
        """Instruction-count census by opcode (diagnostics / tests)."""
        census: Dict[str, int] = {}
        names = {v: k for k, v in globals().items() if k.startswith("OP_")}
        for instr in self.instructions:
            key = names[instr[0]]
            census[key] = census.get(key, 0) + 1
        return census


@dataclass(slots=True)
class _Emitter:
    tally: bool
    cancel: bool = False
    instructions: List[Tuple[int, ...]] = field(default_factory=list)
    tallies: List[Tuple[str, ...]] = field(default_factory=list)
    pending: List[str] = field(default_factory=list)

    def note(self, *names: str) -> None:
        if self.tally:
            self.pending.extend(names)

    def emit(self, instr: Tuple[int, ...]) -> int:
        if (
            self.cancel
            and instr[0] in _CANCELLABLE
            and self.instructions
            and self.instructions[-1] == instr
        ):
            # Adjacent identical self-inverse pair: a value-identity on every
            # lane.  Drop both from the stream but keep both tally
            # contributions (the gates execute; only their net effect is
            # nothing).  Scope headers/ends and measurements never match a
            # gate tuple, so cancellation cannot cross a barrier, and only
            # the tail is ever popped, so recorded jump-patch pcs stay valid.
            self.instructions.pop()
            self.pending.extend(self.tallies.pop())
            return -1
        self.instructions.append(instr)
        self.tallies.append(tuple(self.pending))
        self.pending.clear()
        return len(self.instructions) - 1

    def flush(self) -> None:
        """Attach leftover tally names to a NOP before leaving a scope
        (weights differ across scope boundaries, so they cannot ride on an
        outer instruction)."""
        if self.pending:
            self.emit((OP_NOP,))

    def patch_jump(self, pc: int, target: int) -> None:
        instr = self.instructions[pc]
        self.instructions[pc] = instr[:-1] + (target,)


def compile_program(
    circuit: Circuit, tally: bool = True, cancel: bool = True
) -> CompiledProgram:
    """Flatten ``circuit`` into a :class:`CompiledProgram`.

    ``tally=False`` drops all executed-gate accounting metadata, which lets
    the VM skip tally work entirely — the fastest configuration.  Raises
    :class:`~repro.sim.classical.UnsupportedGateError` at *compile* time
    for operations without basis-state semantics (the interpretive backend
    would raise at run time).

    ``cancel=True`` (the default) peephole-eliminates adjacent identical
    self-inverse instructions from the stream — the compiled analogue of
    running :class:`~repro.transform.passes.CancelAdjacentPass` to a
    fixpoint, except that the cancelled gates' tally contributions are
    *kept*, so the executed-gate accounting still matches the interpretive
    walk exactly.  Compiled streams therefore never carry adjacent inverse
    pairs.
    """
    emitter = _Emitter(tally, cancel=cancel)
    _compile_ops(circuit.ops, emitter, garbage=[])
    emitter.flush()
    return CompiledProgram(
        num_qubits=circuit.num_qubits,
        num_bits=circuit.num_bits,
        instructions=tuple(emitter.instructions),
        tallies=tuple(emitter.tallies),
        has_tally=tally,
        source=circuit.name,
        registers=tuple(
            (name, tuple(reg.qubits)) for name, reg in circuit.registers.items()
        ),
    )


def _compile_ops(ops: Sequence[Operation], em: _Emitter, garbage: List[int]) -> None:
    for op in ops:
        if isinstance(op, Gate):
            name = op.name
            em.note(name)
            if garbage and garbage_gate_skips(op, garbage):
                continue  # statically resolved: phase-only on the +/- garbage
            if name in _PHASE_ONLY:
                continue
            opcode = _GATE_OPCODE.get(name)
            if opcode is None:
                raise UnsupportedGateError(
                    f"gate {name!r} has no basis-state semantics; "
                    "compiled bit-plane programs cannot contain it"
                )
            qubits = op.qubits
            # Canonicalize the symmetric operand pair so swap(a,b)/swap(b,a)
            # compile identically (they are the same permutation) — this is
            # what lets peephole cancellation and run packing treat them as
            # equal.
            if opcode == OP_SWAP:
                qubits = tuple(sorted(qubits))
            elif opcode == OP_CSWAP:
                qubits = (qubits[0], *sorted(qubits[1:]))
            em.emit((opcode, *qubits))
        elif isinstance(op, Measurement):
            if op.qubit in garbage:
                raise UnsupportedGateError(
                    "measurement of garbage qubit inside MBU body"
                )
            if op.basis == "x":
                em.note("h", "measure")
                em.emit((OP_MX, op.qubit, op.bit))
            else:
                em.note("measure")
                em.emit((OP_MZ, op.qubit, op.bit))
        elif isinstance(op, Conditional):
            header = em.emit((OP_COND, op.bit, op.value, -1))
            _compile_ops(op.body, em, garbage)
            em.flush()
            end = em.emit((OP_ENDCOND,))
            em.patch_jump(header, end)
        elif isinstance(op, MBUBlock):
            if op.qubit in garbage:
                raise UnsupportedGateError("nested MBU on an active garbage qubit")
            em.note("h", "measure")
            header = em.emit((OP_MBU, op.qubit, op.bit, -1))
            garbage.append(op.qubit)
            _compile_ops(op.body, em, garbage)
            garbage.pop()
            em.flush()
            end = em.emit((OP_ENDMBU, op.qubit))
            em.patch_jump(header, end)
        elif isinstance(op, Annotation):
            # Noise points survive compilation as explicit channel
            # instructions (no tally: a channel is not a gate); structural
            # begin/end/note markers drop out of the stream.  OP_NOISE is
            # deliberately not _CANCELLABLE — it randomizes the plane, so
            # the instructions around it must never peephole-cancel across
            # it (adjacency is broken by the emitted instruction itself).
            if op.kind == "noise":
                em.emit((OP_NOISE, int(op.label)))
            continue
        else:  # pragma: no cover
            raise TypeError(f"unknown operation {op!r}")


# --------------------------------------------------------------------------- #
# the fusion stage


#: Planes an instruction reads / writes, per opcode (operand positions).
#: ``swap``/``cswap`` write non-commutatively (the delta depends on current
#: values), so their operands appear on the write side too.
_RUN_READS = {OP_X: (), OP_CX: (1,), OP_CCX: (1, 2), OP_SWAP: (1, 2),
              OP_CSWAP: (1, 2, 3)}
_RUN_WRITES = {OP_X: (1,), OP_CX: (2,), OP_CCX: (3,), OP_SWAP: (1, 2),
               OP_CSWAP: (2, 3)}


# --------------------------------------------------------------------------- #
# the run-lengthening scheduler


#: Candidates scanned per pick when extending the current same-opcode run;
#: bounds the greedy scheduler's conflict checks to O(n * cap).
_SCHEDULE_SCAN_CAP = 64


def _schedule_segment(instructions: Sequence[Tuple[int, ...]]) -> List[int]:
    """Greedy list-scheduling order (a permutation of ``range(n)``) for one
    straight-line gate segment.

    Dependence edges are exactly the non-commuting pairs: a gate depends on
    every earlier gate that writes a plane it touches, and on every earlier
    reader of a plane it writes.  Any topological order of that graph is
    observably identical to program order (same final planes, same tallies
    — the active mask is constant across a segment).  The greedy policy is
    *locality-preserving*: every new run starts at the earliest ready gate
    (by original index), so the output stays near program order and the
    dependence-forced run structure the circuit already has is never torn
    apart; run lengthening comes purely from pulling later ready gates of
    the same opcode *into* the current run — subject to fusion's split
    rule (a gate may not touch a plane already written in the run).
    """
    n = len(instructions)
    if n < 3:
        return list(range(n))
    import heapq

    touch_sets: List[frozenset] = []
    write_sets: List[frozenset] = []
    succs: List[List[int]] = [[] for _ in range(n)]
    preds = [0] * n
    edges: set = set()

    def add_edge(a: int, b: int) -> None:
        if a != b and (a, b) not in edges:
            edges.add((a, b))
            succs[a].append(b)
            preds[b] += 1

    last_write: Dict[int, int] = {}
    readers: Dict[int, List[int]] = {}
    for i, instr in enumerate(instructions):
        op = instr[0]
        touched = frozenset(instr[1:])
        writes = frozenset(instr[j] for j in _RUN_WRITES[op])
        touch_sets.append(touched)
        write_sets.append(writes)
        for p in touched:
            w = last_write.get(p)
            if w is not None:
                add_edge(w, i)
            if p not in writes:
                readers.setdefault(p, []).append(i)
        for p in writes:
            for r in readers.get(p, ()):
                add_edge(r, i)
            last_write[p] = i
            readers[p] = []

    # Ready gates bucketed per opcode, each bucket a min-heap on original
    # index: deterministic, and "earliest first" everywhere by construction.
    buckets: Dict[int, List[int]] = {}
    for i in range(n):
        if preds[i] == 0:
            buckets.setdefault(instructions[i][0], []).append(i)
    for heap in buckets.values():
        heapq.heapify(heap)

    order: List[int] = []
    run_written: set = set()
    rejects: List[int] = []
    cur_op = -1
    while len(order) < n:
        pick = -1
        bucket = buckets.get(cur_op)
        if bucket:
            # Extend the current run with the earliest ready compatible
            # gate of the same opcode (bounded scan).
            for _ in range(min(len(bucket), _SCHEDULE_SCAN_CAP)):
                cand = heapq.heappop(bucket)
                if touch_sets[cand].isdisjoint(run_written):
                    pick = cand
                    break
                rejects.append(cand)
            for cand in rejects:
                heapq.heappush(bucket, cand)
            rejects.clear()
        if pick < 0:
            # Start a new run at the earliest ready gate overall.
            cur_op = min(
                (op for op, b in buckets.items() if b),
                key=lambda op: buckets[op][0],
            )
            pick = heapq.heappop(buckets[cur_op])
            run_written.clear()
        order.append(pick)
        run_written |= write_sets[pick]
        for succ in succs[pick]:
            preds[succ] -= 1
            if preds[succ] == 0:
                heap = buckets.get(instructions[succ][0])
                if heap is None:
                    buckets[instructions[succ][0]] = [succ]
                else:
                    heapq.heappush(heap, succ)
    return order


def schedule_program(program: CompiledProgram) -> CompiledProgram:
    """Reorder commuting gates to lengthen same-opcode runs before fusion.

    Two gates commute when neither writes a plane the other reads or
    writes; only such pairs are ever exchanged, and reordering never
    crosses scope boundaries, measurements, or noise points — every
    non-gate instruction (``COND``/``ENDCOND``/``MBU``/``ENDMBU``,
    measurements, ``NOISE``, tally-flush ``NOP``) is a barrier that keeps
    its exact stream position, so branch jump targets stay valid
    unpatched.  Each instruction's tally tuple travels with it; tally
    weights are constant within a segment (the active mask cannot change
    between barriers), so executed-gate accounting — per-scope and
    per-lane — is bit-identical to the unscheduled program.

    Returns a new :class:`CompiledProgram`; the input is not mutated.
    """
    instructions = list(program.instructions)
    tallies = list(program.tallies)
    i, n = 0, len(instructions)
    while i < n:
        if instructions[i][0] not in _RUN_READS:
            i += 1
            continue
        j = i
        while j < n and instructions[j][0] in _RUN_READS:
            j += 1
        order = _schedule_segment(instructions[i:j])
        instructions[i:j] = [instructions[i + k] for k in order]
        tallies[i:j] = [tallies[i + k] for k in order]
        i = j
    return CompiledProgram(
        num_qubits=program.num_qubits,
        num_bits=program.num_bits,
        instructions=tuple(instructions),
        tallies=tuple(tallies),
        has_tally=program.has_tally,
        source=program.source,
        registers=program.registers,
    )


class FusedRun:
    """A superinstruction: ``count`` same-opcode gates as one array op.

    ``operands`` is a ``(count, arity)`` index array (``np.intp``), one row
    per fused gate, columns in the opcode's operand order.  By construction
    (the write-conflict check in :func:`fuse_program`) no fused gate reads
    or writes a plane written earlier in the same run, so the run can
    execute as gather → combine → scatter, and its write targets are
    unique.
    """

    __slots__ = ("opcode", "operands", "count")

    def __init__(self, opcode: int, operands: np.ndarray) -> None:
        self.opcode = opcode
        self.operands = operands
        self.count = int(operands.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - display only
        return f"FusedRun(opcode={self.opcode}, count={self.count})"

    def __getstate__(self):
        return (self.opcode, self.operands)

    def __setstate__(self, state):
        self.__init__(*state)


class FusedScope:
    """One branch scope of a fused program.

    ``kind`` is ``"root"``, ``"cond"`` or ``"mbu"``; ``header`` carries the
    branch operands (``()``, ``(bit, value)`` or ``(qubit, bit)``).
    ``items`` is the scope's straight-line body: ``("run", FusedRun)``,
    ``("instr", opcode_tuple)`` (measurements and unfused singletons), and
    ``("scope", FusedScope)`` entries.  ``counts`` maps gate name to the
    number of times it executes per entry of this scope (nested scopes
    excluded — they have their own counts), which is the whole of the fused
    VM's tally metadata: executed totals are ``counts[name] * active_lanes``
    summed over dynamic scope entries.
    """

    __slots__ = ("sid", "kind", "header", "items", "counts")

    def __init__(self, sid: int, kind: str, header: Tuple[int, ...]) -> None:
        self.sid = sid
        self.kind = kind
        self.header = header
        self.items: List[Tuple[str, Any]] = []
        self.counts: Dict[str, int] = {}

    def __repr__(self) -> str:  # pragma: no cover - display only
        return f"FusedScope(sid={self.sid}, kind={self.kind!r}, items={len(self.items)})"

    def __getstate__(self):
        return (self.sid, self.kind, self.header, self.items, self.counts)

    def __setstate__(self, state):
        self.sid, self.kind, self.header, self.items, self.counts = state


class FusedProgram:
    """A compiled program regrouped for array-at-a-time execution.

    ``root`` is the scope tree (``scopes[0]``); ``scopes`` indexes every
    scope by ``sid`` for tally post-processing.  ``scalar`` keeps the
    :class:`CompiledProgram` the fusion ran on — the scalar fallback path
    executes it directly, and diagnostics compare against it.  Generated
    kernels (see :mod:`repro.sim.kernels`) are cached per program and are
    *not* pickled: a fused program shipped to a worker process recompiles
    its kernel on first use.
    """

    __slots__ = ("num_qubits", "num_bits", "root", "scopes", "scalar",
                 "has_tally", "source", "scheduled", "_kernels",
                 "_arrays_plan")

    def __init__(
        self,
        num_qubits: int,
        num_bits: int,
        root: FusedScope,
        scopes: Tuple[FusedScope, ...],
        scalar: CompiledProgram,
        has_tally: bool,
        source: str = "",
        scheduled: bool = False,
    ) -> None:
        self.num_qubits = num_qubits
        self.num_bits = num_bits
        self.root = root
        self.scopes = scopes
        self.scalar = scalar
        self.has_tally = has_tally
        self.source = source
        #: Whether :func:`schedule_program` ran before fusion (metadata for
        #: benchmarks/diagnostics; the results are identical either way).
        self.scheduled = scheduled
        self._kernels: Dict[Tuple[str, bool], Any] = {}
        # Lazily-built execution plan for the stacked-plane array strategy
        # (see repro.sim.kernels); like the generated kernels, it is cached
        # per program and not pickled.
        self._arrays_plan: Any = None

    def __len__(self) -> int:
        return len(self.scalar)

    @property
    def registers(self) -> Tuple[Tuple[str, Tuple[int, ...]], ...]:
        """Register layout metadata inherited from the compiled source."""
        return self.scalar.registers

    def __repr__(self) -> str:  # pragma: no cover - display only
        stats = self.fusion_stats()
        return (
            f"FusedProgram({self.source!r}, instructions={len(self)}, "
            f"runs={stats['runs']}, fused={stats['fused_instructions']})"
        )

    def __getstate__(self):
        return (self.num_qubits, self.num_bits, self.root, self.scopes,
                self.scalar, self.has_tally, self.source, self.scheduled)

    def __setstate__(self, state):
        self.__init__(*state)

    def kernel(self, events: bool, kind: str = "codegen"):
        """The (cached) generated straight-line kernel for this program:
        ``kind="codegen"`` is the bigint kernel
        (:func:`repro.sim.kernels.build_kernel`), ``kind="vector"`` the
        numpy one (:func:`repro.sim.kernels.build_vector_kernel`)."""
        key = (kind, events)
        fn = self._kernels.get(key)
        if fn is None:
            # deferred import: sim layers above transform
            from ..sim.kernels import build_kernel, build_vector_kernel

            if kind == "vector":
                fn = build_vector_kernel(self, events=events)
            elif kind == "codegen":
                fn = build_kernel(self, events=events)
            else:
                raise ValueError(
                    f"unknown generated-kernel kind {kind!r}; "
                    "options: 'codegen', 'vector'"
                )
            self._kernels[key] = fn
        return fn

    def run_length_histogram(self) -> Dict[int, int]:
        """``{run_length: run_count}`` over the whole scope tree.

        Unfused gate singletons count as runs of length 1, so the
        histogram's weighted total equals the program's gate-instruction
        count — comparing the histogram of ``fuse_program(p)`` against
        ``fuse_program(p, schedule=True)`` measures exactly what the
        scheduler bought.
        """
        hist: Dict[int, int] = {}
        stack = [self.root]
        while stack:
            scope = stack.pop()
            for kind, item in scope.items:
                if kind == "run":
                    hist[item.count] = hist.get(item.count, 0) + 1
                elif kind == "instr":
                    if item[0] in _RUN_READS:
                        hist[1] = hist.get(1, 0) + 1
                else:
                    stack.append(item)
        return hist

    def fusion_stats(self) -> Dict[str, int]:
        """Superinstruction census: how much of the stream was fused."""
        runs = fused = scalars = scopes = 0
        longest = 0
        stack = [self.root]
        while stack:
            scope = stack.pop()
            scopes += 1
            for kind, item in scope.items:
                if kind == "run":
                    runs += 1
                    fused += item.count
                    longest = max(longest, item.count)
                elif kind == "instr":
                    scalars += 1
                else:
                    stack.append(item)
        return {
            "runs": runs,
            "fused_instructions": fused,
            "scalar_instructions": scalars,
            "longest_run": longest,
            "scopes": scopes,
        }


#: Memo of recently fused caller-held programs, keyed by the compiled
#: program's id plus the schedule flag (the same program fuses to two
#: distinct trees).  Entries hold a strong reference to their source
#: program, so a live entry's key can never be recycled; the LRU bound
#: keeps the memo from pinning old programs forever, and programs fused
#: on the fly (``memoize=False`` call sites) never enter it at all.
#: Guarded by a lock: threaded sweep workers share one process-wide memo.
_FUSED_MEMO: "Dict[Tuple[int, bool], Tuple[CompiledProgram, FusedProgram]]" = {}
_FUSED_MEMO_MAX = 16
_FUSED_MEMO_LOCK = threading.Lock()


def fuse_program(
    program: Union[CompiledProgram, Circuit],
    tally: Optional[bool] = None,
    *,
    memoize: Optional[bool] = None,
    schedule: bool = False,
) -> FusedProgram:
    """Regroup a compiled program into a :class:`FusedProgram`.

    Accepts a :class:`CompiledProgram` or a :class:`~repro.circuits.circuit.Circuit`
    (compiled on the fly with ``tally`` metadata, default on).  Within each
    branch scope, maximal runs of same-opcode gate instructions become
    :class:`FusedRun` superinstructions; a run splits when the next
    instruction touches (reads or writes) a plane written earlier in the
    run, so fused execution order is indistinguishable from sequential.
    Measurements and branch headers are barriers.  Per-instruction tally
    tuples are aggregated into per-scope ``counts``.

    ``schedule=True`` runs :func:`schedule_program` first: commuting gates
    are reordered to lengthen same-opcode runs before fusion (results are
    bit-identical; ``FusedProgram.scheduled`` records the choice and
    :meth:`FusedProgram.run_length_histogram` measures the effect).

    Fusing the *same* :class:`CompiledProgram` object again (with the same
    ``schedule`` flag) returns the memoized :class:`FusedProgram` (and
    with it the cached generated kernel), so repeatedly executing a
    pre-compiled program — the sweep and benchmark pattern — pays fusion
    and code generation once.  ``memoize`` defaults to exactly that case
    (a caller-held :class:`CompiledProgram`); pass ``memoize=False`` when
    fusing a program nobody retains a handle to, so the memo doesn't pin
    it.
    """
    if isinstance(program, Circuit):
        program = compile_program(program, tally=True if tally is None else tally)
        if memoize is None:
            memoize = False  # the key object dies with this call frame
    else:
        if memoize is None:
            memoize = True
        if memoize:
            with _FUSED_MEMO_LOCK:
                entry = _FUSED_MEMO.get((id(program), schedule))
                if entry is not None and entry[0] is program:
                    # refresh recency: a hot program is not the next eviction
                    _FUSED_MEMO.pop((id(program), schedule))
                    _FUSED_MEMO[(id(program), schedule)] = entry
                    return entry[1]
    memo_key = (id(program), schedule)
    memo_source = program
    if schedule:
        program = schedule_program(program)
    instructions = program.instructions
    tallies = program.tallies

    root = FusedScope(0, "root", ())
    scopes: List[FusedScope] = [root]
    stack = [root]

    run_op: Optional[int] = None
    run_ops: List[Tuple[int, ...]] = []
    run_written: set = set()

    def flush_run() -> None:
        nonlocal run_op
        if not run_ops:
            return
        scope = stack[-1]
        if len(run_ops) == 1:
            scope.items.append(("instr", run_ops[0]))
        else:
            operands = np.array(
                [instr[1:] for instr in run_ops], dtype=np.intp
            ).reshape(len(run_ops), -1)
            scope.items.append(("run", FusedRun(run_op, operands)))
        run_ops.clear()
        run_written.clear()
        run_op = None

    for pc, instr in enumerate(instructions):
        op = instr[0]
        names = tallies[pc]
        if names:
            counts = stack[-1].counts
            for name in names:
                counts[name] = counts.get(name, 0) + 1
        if op in _RUN_READS:
            touched = {instr[1 + i] for i in range(len(instr) - 1)}
            writes = {instr[i] for i in _RUN_WRITES[op]}
            if op != run_op or (touched & run_written):
                flush_run()
                run_op = op
            run_ops.append(instr)
            run_written |= writes
        elif op == OP_NOP:
            continue  # tally-only: names already credited to the scope
        elif op == OP_COND or op == OP_MBU:
            flush_run()
            kind = "cond" if op == OP_COND else "mbu"
            scope = FusedScope(len(scopes), kind, (instr[1], instr[2]))
            scopes.append(scope)
            stack[-1].items.append(("scope", scope))
            stack.append(scope)
        elif op == OP_ENDCOND or op == OP_ENDMBU:
            flush_run()
            stack.pop()
        else:  # OP_MZ / OP_MX / OP_NOISE
            flush_run()
            stack[-1].items.append(("instr", instr))
    flush_run()

    fused = FusedProgram(
        num_qubits=program.num_qubits,
        num_bits=program.num_bits,
        root=root,
        scopes=tuple(scopes),
        scalar=program,
        has_tally=program.has_tally,
        source=program.source,
        scheduled=schedule,
    )
    if memoize:
        with _FUSED_MEMO_LOCK:
            if len(_FUSED_MEMO) >= _FUSED_MEMO_MAX:
                _FUSED_MEMO.pop(next(iter(_FUSED_MEMO)))
            _FUSED_MEMO[memo_key] = (memo_source, fused)
    return fused
