"""The concrete transformation passes.

Paper mapping: ``insert_mbu`` is Lemma 4.1 (and its fig-11 special case,
Gidney's temporary-AND uncompute) *as a rewrite* — it consumes the
``uncompute-and`` / ``uncompute-oracle`` markers the builders emit under
:func:`~repro.circuits.markers.reference_emission` and replaces each
coherent uncomputation with the measurement + classically-conditioned
correction, reproducing the hand-built ``mbu=True`` circuits operation for
operation (this is how thms 4.2-4.12 relate to their section-2/3 baselines).
``lower_toffoli`` is Gidney 2018's temporary logical-AND (figs 10-11)
applied to arbitrary Toffolis; ``decompose_clifford_t`` is the standard
7-T-gate Toffoli network, enabling exact T-counts; ``invert`` and
``cancel_adjacent`` are the stock structural passes every rewrite layer
needs (Reqomp-style uncomputation synthesis, ancilla reuse and depth
scheduling all build on them).

Every pass is pure: the input circuit is never mutated.  Semantics
preservation is property-tested across the classical / statevector /
bitplane backends in ``tests/test_transform_semantics.py``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..circuits.circuit import Circuit
from ..circuits.markers import (
    UNCOMPUTE_AND,
    UNCOMPUTE_ORACLE,
    parse_uncompute_label,
)
from ..circuits.ops import (
    Annotation,
    Conditional,
    Gate,
    MBUBlock,
    Measurement,
    Operation,
    adjoint_gate,
    iter_flat,
)
from .base import Pass, register_pass

__all__ = [
    "InvertPass",
    "InsertMBUPass",
    "LowerToffoliPass",
    "DecomposeCliffordTPass",
    "CancelAdjacentPass",
]


@register_pass
class InvertPass(Pass):
    """Whole-circuit adjoint (reverse + conjugate), recursing into
    Conditional bodies; raises on measurements/MBU blocks (remark 2.23)."""

    name = "invert"

    def run(self, circuit: Circuit) -> Circuit:
        return circuit.adjoint()


@register_pass
class InsertMBUPass(Pass):
    """Lemma 4.1 as a rewrite: replace marked coherent uncomputations with
    measurements plus classically-conditioned corrections.

    Two region kinds are consumed (see :mod:`repro.circuits.markers`):

    * ``uncompute-and[q]`` — a single Toffoli returning temporary-AND qubit
      ``q`` to |0>; replaced by Gidney's fig-11 pattern: an X-basis
      measurement of ``q`` and a conditional (CZ on the two controls, X on
      ``q``), each firing with probability 1/2.
    * ``uncompute-oracle[q]`` — a self-adjoint XOR-oracle uncomputing
      garbage qubit ``q``; replaced by an :class:`MBUBlock` whose correction
      body is ``(H, oracle, H, X)`` — exactly what
      :func:`repro.mbu.lemma.emit_mbu_uncompute` builds by hand.

    Regions are rewritten innermost-first, so an oracle that itself contains
    temporary-AND uncomputes (e.g. a Gidney comparator) ends up with the
    measurement-based ANDs *inside* the MBU correction body, matching the
    hand-built circuits bit-for-bit (same ops, same classical-bit order).
    """

    name = "insert_mbu"

    def run(self, circuit: Circuit) -> Circuit:
        out = circuit.copy_empty()
        out.extend(self._rewrite(tuple(circuit.ops), out))
        return out

    # -- region plumbing ---------------------------------------------------

    @staticmethod
    def _find_end(ops: Sequence[Operation], start: int, label: str) -> int:
        depth = 0
        for i in range(start, len(ops)):
            op = ops[i]
            if isinstance(op, Annotation) and op.label == label:
                if op.kind == "begin":
                    depth += 1
                elif op.kind == "end":
                    depth -= 1
                    if depth == 0:
                        return i
        raise ValueError(f"unterminated uncompute region {label!r}")

    def _rewrite(self, ops: Sequence[Operation], circ: Circuit) -> List[Operation]:
        out: List[Operation] = []
        i = 0
        while i < len(ops):
            op = ops[i]
            if isinstance(op, Annotation) and op.kind == "begin":
                parsed = parse_uncompute_label(op.label)
                if parsed is not None:
                    kind, qubit = parsed
                    end = self._find_end(ops, i, op.label)
                    inner = self._rewrite(ops[i + 1 : end], circ)
                    out.extend(self._rewrite_region(kind, qubit, inner, circ))
                    i = end + 1
                    continue
            if isinstance(op, Conditional):
                op = Conditional(
                    op.bit, tuple(self._rewrite(op.body, circ)), op.value, op.probability
                )
            elif isinstance(op, MBUBlock):
                op = MBUBlock(op.qubit, op.bit, tuple(self._rewrite(op.body, circ)))
            out.append(op)
            i += 1
        return out

    @staticmethod
    def _rewrite_region(
        kind: str, qubit: int, inner: List[Operation], circ: Circuit
    ) -> List[Operation]:
        if kind == UNCOMPUTE_AND:
            gates = [op for op in inner if not isinstance(op, Annotation)]
            if len(gates) != 1 or not (
                isinstance(gates[0], Gate)
                and gates[0].name == "ccx"
                and gates[0].qubits[2] == qubit
            ):
                raise ValueError(
                    f"malformed {UNCOMPUTE_AND} region on qubit {qubit}: "
                    f"expected exactly one ccx targeting it, got {inner!r}"
                )
            a, b, _ = gates[0].qubits
            bit = circ.new_bit("and")
            return [
                Measurement(qubit, bit, "x"),
                Conditional(bit, (Gate("cz", (a, b)), Gate("x", (qubit,)))),
            ]
        if kind == UNCOMPUTE_ORACLE:
            bit = circ.new_bit("mbu")
            body = (
                Gate("h", (qubit,)),
                *inner,
                Gate("h", (qubit,)),
                Gate("x", (qubit,)),
            )
            return [MBUBlock(qubit, bit, body)]
        raise ValueError(f"unknown uncompute region kind {kind!r}")  # pragma: no cover


@register_pass
class LowerToffoliPass(Pass):
    """ccx -> Gidney temporary logical-AND compute + measurement-based
    uncompute (figs 10-11).

    Each Toffoli ``ccx(a, b, t)`` becomes: AND-compute into a shared clean
    ancilla (one ccx, the fig-10 compute), ``cx(anc, t)``, then the fig-11
    measurement-based AND uncompute (X-measure + conditional CZ/X), which
    returns the ancilla to |0> — so one ancilla serves every lowered Toffoli
    sequentially.  The construction is exact as a channel, so it is valid
    anywhere, including inside MBU correction bodies (where the ``cx`` onto
    the |-> garbage qubit becomes the intended phase kickback).
    """

    name = "lower_toffoli"

    def run(self, circuit: Circuit) -> Circuit:
        out = circuit.copy_empty()
        if not any(
            isinstance(op, Gate) and op.name == "ccx" for op in iter_flat(circuit.ops)
        ):
            out.extend(circuit.ops)
            return out
        anc = out.add_register(self._fresh_name(out, "tof_and_anc"), 1)[0]
        out.extend(self._rewrite(circuit.ops, out, anc))
        return out

    @staticmethod
    def _fresh_name(circ: Circuit, base: str) -> str:
        name, i = base, 0
        while name in circ.registers:
            i += 1
            name = f"{base}{i}"
        return name

    def _rewrite(
        self, ops: Sequence[Operation], circ: Circuit, anc: int
    ) -> Tuple[Operation, ...]:
        out: List[Operation] = []
        for op in ops:
            if isinstance(op, Gate) and op.name == "ccx":
                a, b, t = op.qubits
                bit = circ.new_bit("and")
                out.append(Gate("ccx", (a, b, anc)))
                out.append(Gate("cx", (anc, t)))
                out.append(Measurement(anc, bit, "x"))
                out.append(Conditional(bit, (Gate("cz", (a, b)), Gate("x", (anc,)))))
            elif isinstance(op, Conditional):
                out.append(
                    Conditional(
                        op.bit, self._rewrite(op.body, circ, anc), op.value, op.probability
                    )
                )
            elif isinstance(op, MBUBlock):
                out.append(MBUBlock(op.qubit, op.bit, self._rewrite(op.body, circ, anc)))
            else:
                out.append(op)
        return tuple(out)


#: The standard 7-T / 6-CNOT CCZ network on (a, b, c) — Nielsen & Chuang
#: fig. 4.9 minus the outer Hadamards.
def _ccz_network(a: int, b: int, c: int) -> Tuple[Gate, ...]:
    return (
        Gate("cx", (b, c)),
        Gate("tdg", (c,)),
        Gate("cx", (a, c)),
        Gate("t", (c,)),
        Gate("cx", (b, c)),
        Gate("tdg", (c,)),
        Gate("cx", (a, c)),
        Gate("t", (b,)),
        Gate("t", (c,)),
        Gate("cx", (a, b)),
        Gate("t", (a,)),
        Gate("tdg", (b,)),
        Gate("cx", (a, b)),
    )


@register_pass
class DecomposeCliffordTPass(Pass):
    """ccx / ccz / cswap -> the exact Clifford+T network (7 T per Toffoli).

    ``ccx(a,b,c) = H(c) CCZ(a,b,c) H(c)`` with the standard 13-gate CCZ
    network; ``cswap(c,x,y) = CX(y,x) CCX(c,x,y) CX(y,x)``.  Each Toffoli-
    class gate costs exactly 7 T/T† and 6 (or 8 for cswap) CNOTs, which is
    what :mod:`repro.resources` T-count accounting assumes.  Parametric
    phase gates (ccphase/cphase/rz) are left untouched — they are not
    Clifford+T representable without approximation.

    The output contains bare Hadamards, so it simulates on the statevector
    backend only (the basis-state backends reject ``h`` by design).
    """

    name = "decompose_clifford_t"

    def run(self, circuit: Circuit) -> Circuit:
        out = circuit.copy_empty()
        out.extend(self._rewrite(circuit.ops))
        return out

    def _rewrite(self, ops: Sequence[Operation]) -> Tuple[Operation, ...]:
        out: List[Operation] = []
        for op in ops:
            if isinstance(op, Gate) and op.name in ("ccx", "ccz", "cswap"):
                out.extend(self._decompose(op))
            elif isinstance(op, Conditional):
                out.append(
                    Conditional(op.bit, self._rewrite(op.body), op.value, op.probability)
                )
            elif isinstance(op, MBUBlock):
                out.append(MBUBlock(op.qubit, op.bit, self._rewrite(op.body)))
            else:
                out.append(op)
        return tuple(out)

    @staticmethod
    def _decompose(gate: Gate) -> Tuple[Gate, ...]:
        if gate.name == "ccz":
            return _ccz_network(*gate.qubits)
        if gate.name == "ccx":
            a, b, c = gate.qubits
            return (Gate("h", (c,)), *_ccz_network(a, b, c), Gate("h", (c,)))
        # cswap(ctrl, x, y) = CX(y,x) CCX(ctrl,x,y) CX(y,x)
        ctrl, x, y = gate.qubits
        return (
            Gate("cx", (y, x)),
            Gate("h", (y,)),
            *_ccz_network(ctrl, x, y),
            Gate("h", (y,)),
            Gate("cx", (y, x)),
        )


@register_pass
class CancelAdjacentPass(Pass):
    """Peephole elimination of adjacent inverse gate pairs, to a fixpoint.

    A gate cancels with the immediately preceding gate when it equals its
    adjoint (self-adjoint pairs like ``cx``/``cx``, name pairs like
    ``t``/``tdg``, parametric pairs with negated angles) — including the
    operand-symmetric cases ``swap(a,b)``/``swap(b,a)`` and
    ``cswap(c,a,b)``/``cswap(c,b,a)``, which plain gate equality misses.
    Cancellation chains through the stack (removing a pair can expose a new
    one) and :meth:`run` re-applies the scan until the circuit stops
    shrinking, so a single pass invocation is guaranteed to reach a
    fixpoint — no manual chaining needed.  Measurements, conditionals, MBU
    blocks and annotations act as barriers (nothing cancels across them);
    bodies are rewritten recursively.

    ``compile_program`` applies the same elimination at the instruction-
    stream level by default (with tally preserved), so compiled programs
    never carry adjacent inverse pairs even when this pass was not run.
    """

    name = "cancel_adjacent"

    def run(self, circuit: Circuit) -> Circuit:
        before = _op_count(circuit.ops)
        while True:
            out = circuit.copy_empty()
            out.extend(self._rewrite(circuit.ops))
            after = _op_count(out.ops)
            if after == before:
                return out
            circuit, before = out, after

    @staticmethod
    def _cancels(prev: Gate, op: Gate) -> bool:
        if prev == adjoint_gate(op):
            return True
        # swap / cswap are symmetric in the swapped pair
        if prev.name == op.name == "swap":
            return set(prev.qubits) == set(op.qubits)
        if prev.name == op.name == "cswap":
            return prev.qubits[0] == op.qubits[0] and set(prev.qubits[1:]) == set(
                op.qubits[1:]
            )
        return False

    def _rewrite(self, ops: Sequence[Operation]) -> Tuple[Operation, ...]:
        out: List[Operation] = []
        for op in ops:
            if isinstance(op, Gate):
                if out and isinstance(out[-1], Gate) and self._cancels(out[-1], op):
                    out.pop()
                else:
                    out.append(op)
            elif isinstance(op, Conditional):
                out.append(
                    Conditional(op.bit, self._rewrite(op.body), op.value, op.probability)
                )
            elif isinstance(op, MBUBlock):
                out.append(MBUBlock(op.qubit, op.bit, self._rewrite(op.body)))
            else:
                out.append(op)
        return tuple(out)


def _op_count(ops: Sequence[Operation]) -> int:
    """Total operation count, descending into Conditional/MBU bodies."""
    return sum(1 for _ in iter_flat(list(ops)))
