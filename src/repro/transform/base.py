"""The pass framework: :class:`Pass`, :class:`PassManager` and the registry.

A *pass* is a named, pure circuit-to-circuit rewrite over the
:mod:`repro.circuits` IR: ``run`` takes a :class:`~repro.circuits.circuit.Circuit`
and returns a fresh one (the input is never mutated).  Passes that need
extra resources — a classical bit for an inserted measurement, an ancilla
qubit for a lowered Toffoli — allocate them on the output circuit via
``Circuit.copy_empty()``; everything else (registers, labels, qubit
indices) is shared with the input.

Passes are registered by name in :data:`PASSES` so callers can refer to
them as strings everywhere a chain crosses a serialization boundary — the
``simulate(..., transforms=[...])`` entry point, the pipeline's
``CircuitSpec.transforms`` cache key, and the CLI ``--transform`` flag all
speak the same names.  :func:`apply_transforms` is the one-shot helper;
:class:`PassManager` is the reusable pipeline object.

This module (and the whole ``repro.transform`` package) imports only from
:mod:`repro.circuits` and the leaf ``repro.sim.classical`` helpers, so the
builders, resource counters and pipeline can all layer on top of it without
cycles.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Tuple, Type, Union

from ..circuits.circuit import Circuit

__all__ = [
    "Pass",
    "PassManager",
    "PASSES",
    "register_pass",
    "resolve_pass",
    "available_passes",
    "apply_transforms",
    "parse_transform_chain",
]

#: A pass reference: an instance, a registered name, or a Pass subclass.
PassLike = Union["Pass", str, Type["Pass"]]


class Pass:
    """A named, pure circuit-to-circuit rewrite."""

    #: Registry name; subclasses override.
    name: str = "pass"

    def run(self, circuit: Circuit) -> Circuit:
        """Return the rewritten circuit (the input is left untouched)."""
        raise NotImplementedError

    def __call__(self, circuit: Circuit) -> Circuit:
        return self.run(circuit)

    def __repr__(self) -> str:  # pragma: no cover - display only
        return f"<{type(self).__name__} {self.name!r}>"


#: Name -> zero-argument factory for every registered pass.
PASSES: Dict[str, Callable[[], "Pass"]] = {}


def register_pass(cls: Type["Pass"]) -> Type["Pass"]:
    """Class decorator: register ``cls`` under ``cls.name``."""
    PASSES[cls.name] = cls
    return cls


def available_passes() -> Tuple[str, ...]:
    """The registered pass names, sorted."""
    return tuple(sorted(PASSES))


def resolve_pass(spec: PassLike) -> "Pass":
    """A :class:`Pass` instance from a name, class or instance."""
    if isinstance(spec, Pass):
        return spec
    if isinstance(spec, str):
        try:
            return PASSES[spec]()
        except KeyError:
            raise ValueError(
                f"unknown transform pass {spec!r}; "
                f"available: {', '.join(available_passes())}"
            ) from None
    if isinstance(spec, type) and issubclass(spec, Pass):
        return spec()
    raise TypeError(f"cannot resolve {spec!r} to a transform pass")


def parse_transform_chain(chain: Union[str, Iterable[str], None]) -> Tuple[str, ...]:
    """Normalize a transform chain to a tuple of validated pass names.

    Accepts a comma-separated string (the CLI form), any iterable of names,
    or ``None``/empty (no transforms).  Unknown names raise eagerly so a
    typo fails at configuration time, not mid-sweep.
    """
    if chain is None:
        return ()
    if isinstance(chain, str):
        names = [part.strip() for part in chain.split(",") if part.strip()]
    else:
        names = [str(part) for part in chain]
    for name in names:
        if name not in PASSES:
            raise ValueError(
                f"unknown transform pass {name!r}; "
                f"available: {', '.join(available_passes())}"
            )
    return tuple(names)


class PassManager:
    """An ordered chain of passes applied as one transformation."""

    def __init__(self, passes: Union[str, Iterable[PassLike], None] = ()) -> None:
        if passes is None:
            passes = ()
        elif isinstance(passes, str):
            passes = parse_transform_chain(passes)
        elif isinstance(passes, (Pass, type)):
            passes = (passes,)
        self.passes: List[Pass] = [resolve_pass(p) for p in passes]

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.passes)

    def run(self, circuit: Circuit) -> Circuit:
        for pass_ in self.passes:
            circuit = pass_.run(circuit)
        return circuit

    def __repr__(self) -> str:  # pragma: no cover - display only
        return f"PassManager({list(self.names)!r})"


def apply_transforms(
    circuit: Circuit, transforms: Union[str, Iterable[PassLike], None]
) -> Circuit:
    """Apply a pass chain to ``circuit`` (no-op on an empty chain)."""
    manager = PassManager(transforms)
    if not manager.passes:
        return circuit
    return manager.run(circuit)
