"""Circuit transformation layer: compiler passes over the :mod:`repro.circuits` IR.

The paper's central move (Lemma 4.1, thms 4.2-4.12) is a circuit-to-circuit
transformation — replace coherent uncomputation with measurement plus
classically-conditioned correction.  This package represents such
transformations explicitly, Reqomp-style, as registered rewrite passes:

===========================  =================================================
``invert``                   whole-circuit adjoint (recursing into
                             conditional bodies)
``insert_mbu``               Lemma 4.1 / Gidney fig-11 as a rewrite over the
                             builders' marked reference uncomputations
``lower_toffoli``            ccx -> temporary logical-AND compute +
                             measurement-based uncompute (Gidney figs 10-11)
``decompose_clifford_t``     ccx/ccz/cswap -> the exact 7-T Clifford+T
                             network (exact T-counts for ``repro.resources``)
``cancel_adjacent``          peephole elimination of adjacent inverse pairs
===========================  =================================================

Compose passes with :class:`PassManager` / :func:`apply_transforms`, or let
the entry points do it: ``repro.sim.simulate(..., transforms=[...])``, the
pipeline's ``CircuitSpec(transforms=...)`` cache key and the CLI
``--transform`` flag all accept the registered names.

:func:`compile_program` is the second half of the layer: it flattens a
(possibly transformed) circuit into a linear instruction stream with
pre-resolved control flow, which
:meth:`repro.sim.bitplane.BitplaneSimulator.run_compiled` executes several
times faster than the interpretive op-stream walk (see
``benchmarks/BENCH_transform.json``).  :func:`fuse_program` is the third:
it regroups the stream into a :class:`FusedProgram` of same-opcode
superinstructions with per-scope tally aggregation, which the fused
kernels in :mod:`repro.sim.kernels` execute array-at-a-time (see
``benchmarks/BENCH_fused.json`` and ``docs/performance.md``).
"""

from .base import (
    PASSES,
    Pass,
    PassManager,
    apply_transforms,
    available_passes,
    parse_transform_chain,
    register_pass,
    resolve_pass,
)
from .compile import (
    CompiledProgram,
    FusedProgram,
    FusedRun,
    FusedScope,
    compile_program,
    fuse_program,
    schedule_program,
)
from .passes import (
    CancelAdjacentPass,
    DecomposeCliffordTPass,
    InsertMBUPass,
    InvertPass,
    LowerToffoliPass,
)

__all__ = [
    "Pass",
    "PassManager",
    "PASSES",
    "register_pass",
    "resolve_pass",
    "available_passes",
    "apply_transforms",
    "parse_transform_chain",
    "InvertPass",
    "InsertMBUPass",
    "LowerToffoliPass",
    "DecomposeCliffordTPass",
    "CancelAdjacentPass",
    "CompiledProgram",
    "compile_program",
    "FusedProgram",
    "FusedRun",
    "FusedScope",
    "fuse_program",
    "schedule_program",
]
