"""Measurement-outcome providers.

All simulators draw measurement outcomes from an :class:`OutcomeProvider`,
so tests can (a) seed randomness reproducibly, (b) force a specific branch
sequence (e.g. "every MBU correction fires" / "no correction fires"), or
(c) enumerate branches exhaustively.

Seeding contract
----------------
Random-mode reproducibility is guaranteed end to end:

* :class:`RandomOutcomes` is a seeded Mersenne-Twister stream; the same
  seed always yields the same outcome (and per-lane bitmask) sequence,
  on every platform and supported Python version.
* When no provider is given, the execution engine defaults to
  ``RandomOutcomes(0)`` — runs are deterministic *by default*, never
  seeded from wall-clock entropy.
* :func:`repro.sim.simulate` accepts ``seed=<int>`` as shorthand for
  ``outcomes=RandomOutcomes(seed)`` (passing both is an error), so a
  caller can thread one integer through an entire experiment.
* The pipeline layer derives independent per-task seeds with
  :func:`repro.pipeline.derive_seed` (SHA-256 of the task key), so a
  sweep's results do not depend on worker scheduling order.

Composition: :class:`repro.noise.NoisyOutcomes` wraps any provider here and
XORs seeded Bernoulli flips into its sampled outcomes (faulty measurements);
:class:`~repro.sim.dispatch.SlicedOutcomes` wraps any provider to carve a
contiguous lane window out of full-width draws (lane sharding).  Both are
providers themselves, so they nest.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence

__all__ = [
    "OutcomeProvider",
    "RandomOutcomes",
    "ForcedOutcomes",
    "ConstantOutcomes",
]

_TOL = 1e-9


class OutcomeProvider:
    """Interface: produce a 0/1 outcome given the probability of 1."""

    def sample(self, p_one: float) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def sample_lanes(self, p_one: float, lanes: int) -> int:
        """Batch outcomes for ``lanes`` simulation lanes, as an integer
        bitmask whose bit ``b`` is lane ``b``'s outcome.

        The default draws *one* outcome and broadcasts it to every lane, so
        scripted providers (:class:`ForcedOutcomes`, :class:`ConstantOutcomes`)
        consume exactly one script entry per measurement event and all lanes
        share the same branch — the contract the cross-backend tests rely on.
        :class:`RandomOutcomes` overrides this with independent per-lane draws.
        """
        return ((1 << lanes) - 1) if self.sample(p_one) else 0

    def reset(self) -> None:  # pragma: no cover - optional
        pass


class RandomOutcomes(OutcomeProvider):
    """Seeded pseudo-random outcomes (the default)."""

    def __init__(self, seed: int | None = None) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def sample(self, p_one: float) -> int:
        return 1 if self._rng.random() < p_one else 0

    def sample_lanes(self, p_one: float, lanes: int) -> int:
        if p_one == 0.5:  # the MBU / X-measurement case: one fast bulk draw
            return self._rng.getrandbits(lanes)
        mask = 0
        for b in range(lanes):
            if self._rng.random() < p_one:
                mask |= 1 << b
        return mask

    def reset(self) -> None:
        self._rng = random.Random(self.seed)


class ConstantOutcomes(OutcomeProvider):
    """Always returns ``value`` when both outcomes are possible.

    ``ConstantOutcomes(1)`` forces every MBU correction branch to run;
    ``ConstantOutcomes(0)`` forces the lucky branch.  If the requested
    outcome has (numerically) zero probability the other one is returned,
    because forcing an impossible outcome is not physical.
    """

    def __init__(self, value: int) -> None:
        if value not in (0, 1):
            raise ValueError("outcome must be 0 or 1")
        self.value = value

    def sample(self, p_one: float) -> int:
        if self.value == 1:
            return 1 if p_one > _TOL else 0
        return 0 if p_one < 1.0 - _TOL else 1


class ForcedOutcomes(OutcomeProvider):
    """Replay an explicit outcome sequence (error when exhausted).

    Raises :class:`ImpossibleOutcomeError` if a forced outcome has zero
    probability — that catches tests that force a branch which the circuit
    can never take.
    """

    def __init__(self, outcomes: Iterable[int]) -> None:
        self._script: List[int] = list(outcomes)
        self._cursor = 0

    def sample(self, p_one: float) -> int:
        if self._cursor >= len(self._script):
            raise IndexError("forced outcome sequence exhausted")
        outcome = self._script[self._cursor]
        self._cursor += 1
        if outcome == 1 and p_one <= _TOL:
            raise ImpossibleOutcomeError("forced outcome 1 has probability ~0")
        if outcome == 0 and p_one >= 1.0 - _TOL:
            raise ImpossibleOutcomeError("forced outcome 0 has probability ~0")
        return outcome

    def reset(self) -> None:
        self._cursor = 0

    @property
    def consumed(self) -> int:
        return self._cursor


class ImpossibleOutcomeError(RuntimeError):
    """A forced measurement outcome had (numerically) zero probability."""
