"""Lane-sharded parallel execution of compiled bit-plane programs.

One fused program, ``B`` independent Monte-Carlo lanes: the single-process
backend ladder tops out at one core because every lane lives in the same
bigint (or plane matrix).  Lanes never interact — a batch run *is* ``B``
independent single-input runs — so the batch splits losslessly into
contiguous *shards*, each executed on its own
:class:`~repro.sim.bitplane.BitplaneSimulator` in a process (or thread)
pool, and the per-shard results merge exactly:

* register / classical-bit lane lists concatenate in lane order;
* per-lane ``lane_counts`` arrays concatenate in lane order;
* aggregate tallies merge as ``Fraction(sum of executed, B)`` — exact,
  because each shard reports ``Fraction(executed_s, B_s)``.

Shard-count-independent determinism
-----------------------------------
Each shard gets a :class:`SlicedOutcomes` provider: a fresh clone of the
root :class:`~repro.sim.outcomes.OutcomeProvider` that draws a **full
``B``-lane mask per measurement event** and keeps only the shard's
contiguous lane window.  Every shard therefore consumes the root stream
identically to the single-process run, so results are *bit-identical for
every shard count* — ``shards=1`` is literally the existing path, and the
pipeline's golden sweep artifacts cannot move when sharding is enabled.

The slicing argument is sound whenever every shard reaches the same
measurement events as the global run, i.e. when every sampling site (MBU
headers, X-basis measurements) sits at branch depth 0 —
:func:`program_is_flat`.  All builder-emitted circuits in this repo are
flat (MBU blocks open at top level; their bodies contain no measurements).
For non-flat circuits a shard whose local branch mask is empty would skip
draws the global run makes, desynchronizing *stateful* providers — so
:func:`run_sharded` rejects that combination, while stateless
:class:`~repro.sim.outcomes.ConstantOutcomes` remains sound on any
program (the equivalence oracle uses exactly that split).

Process-pool mechanics
----------------------
Programs are registered in a module-global table *before* the pool is
created, so fork-started workers inherit them for free; on platforms (or
caller-supplied executors) where that cannot work, the program ships with
the task and the worker memoizes it by token — either way a worker builds
each program's kernel once and reuses one reset simulator per shard
across repetitions, which is what makes repeated Monte-Carlo runs pay
pool overhead only at steady state.

See ``docs/performance.md`` for the measured scaling and
:mod:`repro.sim.dispatch.cost` for the calibrated backend chooser that
``backend="auto"`` / ``kernels="auto"`` expose.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
from collections import namedtuple
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ...circuits.circuit import Register
from ...circuits.counts import GateCounts
from ..bitplane import BitplaneSimulator, LaneTallyStats
from ..outcomes import (
    ConstantOutcomes,
    ForcedOutcomes,
    OutcomeProvider,
    RandomOutcomes,
)

__all__ = [
    "ShardPool",
    "ShardedResult",
    "SlicedOutcomes",
    "clone_provider",
    "noise_is_flat",
    "program_is_flat",
    "run_sharded",
    "shard_ranges",
]

#: Normalized bit-flip channel parameters shipped in shard tasks.  A plain
#: named tuple (hashable, picklable, duck-type compatible with
#: ``repro.noise.NoiseConfig``'s ``rate``/``seed``) so the dispatch layer
#: never imports the noise package.
_ChannelSpec = namedtuple("_ChannelSpec", ("rate", "seed"))

#: Below this many lanes per shard, splitting costs more than it saves.
MIN_SHARD_LANES = 512


def shard_ranges(batch: int, shards: int) -> Tuple[Tuple[int, int], ...]:
    """Split ``batch`` lanes into ``shards`` contiguous ``(lo, hi)`` windows.

    The first ``batch % shards`` shards take one extra lane, so any batch
    divides (non-divisible batches included) and lane order is preserved:
    concatenating the windows in order reproduces ``range(batch)``.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    if shards > batch:
        raise ValueError(f"cannot split {batch} lanes into {shards} shards")
    base, extra = divmod(batch, shards)
    ranges: List[Tuple[int, int]] = []
    lo = 0
    for s in range(shards):
        hi = lo + base + (1 if s < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return tuple(ranges)


def clone_provider(provider: Optional[OutcomeProvider]) -> OutcomeProvider:
    """A fresh, unconsumed copy of ``provider`` for one shard's stream.

    Only providers whose stream can be reproduced from scratch are
    cloneable: seeded :class:`~repro.sim.outcomes.RandomOutcomes`, scripted
    :class:`~repro.sim.outcomes.ForcedOutcomes`, stateless
    :class:`~repro.sim.outcomes.ConstantOutcomes`, or anything exposing a
    ``clone()`` method.  ``None`` clones to the engine default
    (``RandomOutcomes(0)``) so sharded and single-process defaults agree.
    """
    if provider is None:
        return RandomOutcomes(0)
    if isinstance(provider, RandomOutcomes):
        if provider.seed is None:
            raise ValueError(
                "sharded execution needs a reproducible outcome stream; "
                "construct RandomOutcomes with an explicit seed"
            )
        return RandomOutcomes(provider.seed)
    if isinstance(provider, ConstantOutcomes):
        return ConstantOutcomes(provider.value)
    if isinstance(provider, ForcedOutcomes):
        return ForcedOutcomes(provider._script)
    clone = getattr(provider, "clone", None)
    if clone is not None:
        return clone()
    raise ValueError(
        f"cannot clone outcome provider {type(provider).__name__} for "
        "sharded execution; give it a clone() method or use "
        "RandomOutcomes/ForcedOutcomes/ConstantOutcomes"
    )


class SlicedOutcomes(OutcomeProvider):
    """A contiguous lane window onto a full-width outcome stream.

    Every sampling event draws a full ``total``-lane mask from the root
    provider and keeps bits ``[lo, lo + lanes)`` — so a shard consumes the
    root stream exactly as the single-process run does, whatever the shard
    count.  ``consumed`` (when the root tracks it) counts full events, and
    is therefore directly comparable across shard counts too.
    """

    def __init__(self, root: OutcomeProvider, lo: int, total: int) -> None:
        self.root = root
        self.lo = lo
        self.total = total

    def sample(self, p_one: float) -> int:
        # Scalar draws still consume one full-width event so positional
        # scripts stay aligned with the vectorized path.
        return (self.root.sample_lanes(p_one, self.total) >> self.lo) & 1

    def sample_lanes(self, p_one: float, lanes: int) -> int:
        mask = self.root.sample_lanes(p_one, self.total)
        return (mask >> self.lo) & ((1 << lanes) - 1)

    def reset(self) -> None:
        self.root.reset()

    @property
    def consumed(self) -> Optional[int]:
        return getattr(self.root, "consumed", None)


def program_is_flat(program: Any) -> bool:
    """True when every sampling instruction sits at branch depth 0.

    Sampling sites are MBU headers and X-basis measurements — the
    instructions that consume the outcome stream.  When all of them are at
    the top level, every shard reaches every event exactly once (branch
    bodies with empty shard-local masks contain no draws to skip), which is
    the precondition for :class:`SlicedOutcomes` determinism with stateful
    providers.  Z measurements draw nothing and may nest freely.
    """
    from ...transform.compile import (  # deferred: transform sits above sim
        OP_COND,
        OP_ENDCOND,
        OP_ENDMBU,
        OP_MBU,
        OP_MX,
    )

    scalar = getattr(program, "scalar", program)
    depth = 0
    for instr in scalar.instructions:
        op = instr[0]
        if op == OP_COND:
            depth += 1
        elif op == OP_MBU:
            if depth:
                return False
            depth += 1
        elif op == OP_ENDCOND or op == OP_ENDMBU:
            depth -= 1
        elif op == OP_MX and depth:
            return False
    return True


def noise_is_flat(program: Any) -> bool:
    """True when every bit-flip channel point sits at branch depth 0.

    The channel stream (see :mod:`repro.noise`) is sliced per shard exactly
    like the outcome stream, so the same flatness argument applies: a noise
    point nested in a branch body would be skipped by shards whose local
    mask is empty, desynchronizing the per-shard channel streams.  The
    channel stream is always stateful (there is no constant-noise
    analogue), so :class:`ShardPool` rejects nested noise outright.
    Circuits salted by :func:`repro.noise.insert_noise_points` are always
    noise-flat.
    """
    from ...transform.compile import (  # deferred: transform sits above sim
        OP_COND,
        OP_ENDCOND,
        OP_ENDMBU,
        OP_MBU,
        OP_NOISE,
    )

    scalar = getattr(program, "scalar", program)
    depth = 0
    for instr in scalar.instructions:
        op = instr[0]
        if op == OP_COND or op == OP_MBU:
            depth += 1
        elif op == OP_ENDCOND or op == OP_ENDMBU:
            depth -= 1
        elif op == OP_NOISE and depth:
            return False
    return True


# --------------------------------------------------------------------------- #
# worker side


class _ProgramCircuit:
    """A minimal circuit stand-in rebuilt from compiled-program metadata.

    Shard workers never hold the source :class:`~repro.circuits.circuit.Circuit`
    — the program's ``registers``/``num_qubits``/``num_bits`` metadata is
    all a :class:`~repro.sim.bitplane.BitplaneSimulator` needs for compiled
    execution and register I/O.
    """

    __slots__ = ("name", "num_qubits", "num_bits", "registers", "ops")

    def __init__(self, program: Any) -> None:
        self.name = program.source
        self.num_qubits = program.num_qubits
        self.num_bits = program.num_bits
        self.registers = {
            name: Register(name, tuple(qubits)) for name, qubits in program.registers
        }
        self.ops: Tuple[Any, ...] = ()


_token_counter = itertools.count(1)

#: Token -> program.  Filled by the parent before pool creation so
#: fork-started workers inherit every program they will execute; workers
#: also memoize shipped programs here (and their per-shard simulators in
#: ``_WORKER_SIMS``) so kernels are built once per worker process.
_PROGRAM_REGISTRY: Dict[str, Any] = {}
_WORKER_SIMS: Dict[Tuple, BitplaneSimulator] = {}
_WORKER_SIMS_MAX = 32


def _register_program(program: Any) -> str:
    token = f"{os.getpid()}:{next(_token_counter)}"
    _PROGRAM_REGISTRY[token] = program
    return token


def _shard_worker(task: Tuple) -> Tuple:
    """Execute one shard; module-level so process pools can pickle it."""
    (token, shipped, lo, width, total, provider, inputs, tally, lane_counts,
     kernels, noise) = task
    program = _PROGRAM_REGISTRY.get(token)
    if program is None:
        if shipped is None:  # pragma: no cover - defensive
            raise RuntimeError(
                f"shard worker has no program for token {token!r} and none "
                "was shipped with the task"
            )
        program = _PROGRAM_REGISTRY[token] = shipped
    outcomes = SlicedOutcomes(provider, lo, total)
    # The channel stream is rebuilt from its seed and sliced exactly like
    # the outcome stream: every shard draws full-total-lane flip masks and
    # keeps its window, so noisy runs are shard-count independent too.
    noise_stream = (
        SlicedOutcomes(RandomOutcomes(noise.seed), lo, total)
        if noise is not None else None
    )
    key = (token, lo, width, bool(tally), tuple(lane_counts or ()), noise)
    sim = _WORKER_SIMS.get(key)
    if sim is None:
        if len(_WORKER_SIMS) >= _WORKER_SIMS_MAX:
            _WORKER_SIMS.pop(next(iter(_WORKER_SIMS)))
        sim = BitplaneSimulator(
            _ProgramCircuit(program), batch=width, outcomes=outcomes,
            tally=tally, lane_counts=lane_counts,
            noise=noise, noise_provider=noise_stream,
        )
        _WORKER_SIMS[key] = sim
    else:
        sim.reset(outcomes, noise_provider=noise_stream)
    for name, values in (inputs or {}).items():
        sim.set_register(name, values)
    sim.run_compiled(program, kernels=kernels)
    registers = {name: sim.get_register(name) for name, _ in program.registers}
    bits = [sim.get_bit(b) for b in range(program.num_bits)]
    lane_arrays = {
        name: sim.lane_tally([name]) for name in (lane_counts or ())
    }
    return (lo, registers, bits, sim.tally, lane_arrays, outcomes.consumed)


# --------------------------------------------------------------------------- #
# results and merging


@dataclass
class ShardedResult:
    """Losslessly merged output of one sharded run.

    Mirrors the single-process observables: ``registers`` and ``bits`` are
    per-lane lists in lane order, ``tally`` the exact average-per-lane
    :class:`~repro.circuits.counts.GateCounts`, ``lane_counts`` the exact
    per-lane counters per tracked gate, and ``consumed`` the number of
    outcome events drawn (identical in every shard — asserted at merge).
    """

    batch: int
    shards: Tuple[Tuple[int, int], ...]
    registers: Dict[str, List[int]]
    bits: List[List[int]]
    tally: Optional[GateCounts]
    lane_counts: Dict[str, np.ndarray]
    consumed: Optional[int]

    def get_register(self, name: str) -> List[int]:
        return self.registers[name]

    def get_bit(self, bit: int) -> List[int]:
        return self.bits[bit]

    def lane_tally(self, names: Optional[Sequence[str]] = None) -> np.ndarray:
        if not self.lane_counts:
            raise ValueError("no lane_counts were requested for this run")
        keys = list(self.lane_counts) if names is None else list(names)
        out = np.zeros(self.batch, dtype=np.int64)
        for name in keys:
            out += self.lane_counts[name]
        return out

    def lane_tally_stats(
        self, names: Optional[Sequence[str]] = None
    ) -> LaneTallyStats:
        return LaneTallyStats.from_counts(self.lane_tally(names))


def _merge_shards(
    batch: int,
    ranges: Tuple[Tuple[int, int], ...],
    outcomes: List[Tuple],
    tally: bool,
    lane_counts: Sequence[str],
) -> ShardedResult:
    outcomes = sorted(outcomes, key=lambda r: r[0])  # lane order
    registers: Dict[str, List[int]] = {}
    bits: List[List[int]] = []
    merged_tally = GateCounts() if tally else None
    totals: Dict[str, Fraction] = {}
    lanes: Dict[str, List[np.ndarray]] = {name: [] for name in lane_counts}
    consumed_values = []
    for (lo, hi), (got_lo, regs, shard_bits, shard_tally, lane_arrays,
                   consumed) in zip(ranges, outcomes):
        width = hi - lo
        for name, values in regs.items():
            registers.setdefault(name, []).extend(values)
        if not bits:
            bits = [list(b) for b in shard_bits]
        else:
            for merged, extra in zip(bits, shard_bits):
                merged.extend(extra)
        if tally and shard_tally is not None:
            # Shard weights are Fraction(executed_s, width); scaling by the
            # shard width recovers exact executed counts, so the merged
            # average-per-lane tally is exact too.
            for name, weight in shard_tally.counts.items():
                totals[name] = totals.get(name, Fraction(0)) + weight * width
        for name, arr in lane_arrays.items():
            lanes[name].append(arr)
        if consumed is not None:
            consumed_values.append(consumed)
    if merged_tally is not None:
        for name, executed in totals.items():
            merged_tally.add(name, executed / batch)
    merged_lanes = {
        name: (np.concatenate(chunks) if chunks
               else np.zeros(batch, dtype=np.int64))
        for name, chunks in lanes.items()
    }
    consumed = None
    if consumed_values:
        # Flat programs guarantee equal consumption; surface divergence
        # loudly instead of silently reporting a maximum.
        if len(set(consumed_values)) != 1:  # pragma: no cover - guarded earlier
            raise RuntimeError(
                f"shards consumed diverging outcome counts: {consumed_values}"
            )
        consumed = consumed_values[0]
    return ShardedResult(
        batch=batch,
        shards=ranges,
        registers=registers,
        bits=bits,
        tally=merged_tally,
        lane_counts=merged_lanes,
        consumed=consumed,
    )


# --------------------------------------------------------------------------- #
# the pool


def _default_shards(batch: int, cores: int) -> int:
    return max(1, min(cores, batch // MIN_SHARD_LANES))


class ShardPool:
    """A persistent shard executor bound to one compiled program.

    Construct once, call :meth:`run` per repetition: the executor, the
    shard layout and the worker-side simulators all persist, so repeated
    runs (the Monte-Carlo pattern) pay pool and kernel setup only once.

    ``executor`` is ``"process"``, ``"thread"``, an
    :class:`~concurrent.futures.Executor` instance (not owned — the caller
    shuts it down), or ``None`` for automatic choice: processes when
    multiple cores exist, threads otherwise.  ``shards=1`` runs inline in
    the calling process — byte-for-byte the existing single-process path.
    """

    def __init__(
        self,
        program: Any,
        *,
        batch: int,
        shards: Optional[int] = None,
        executor: Any = None,
        tally: bool = True,
        lane_counts: Optional[Sequence[str]] = None,
        kernels: Optional[str] = None,
        noise: Any = None,
    ) -> None:
        from ...transform.compile import (  # deferred: transform above sim
            CompiledProgram,
            FusedProgram,
            compile_program,
            fuse_program,
        )

        if not isinstance(program, (CompiledProgram, FusedProgram)):
            # a Circuit (or Built): compile + fuse with the metadata we need
            circuit = getattr(program, "circuit", program)
            program = compile_program(
                circuit, tally=tally or bool(lane_counts)
            )
        if isinstance(program, CompiledProgram):
            program = fuse_program(program)
        if (tally or lane_counts) and not program.has_tally:
            raise ValueError(
                "tally/lane_counts need tally metadata but the program was "
                "compiled with tally=False; recompile with "
                "compile_program(circuit, tally=True)"
            )
        if batch < 1:
            raise ValueError("batch must be at least 1")
        cores = os.cpu_count() or 1
        if shards is None:
            shards = _default_shards(batch, cores)
        self.program = program
        self.batch = batch
        self.ranges = shard_ranges(batch, shards)
        self.tally = tally
        self.lane_counts = tuple(lane_counts or ())
        self.kernels = kernels
        # Normalize the channel config (anything with .rate/.seed) into a
        # picklable spec; rate 0 degenerates to exactly no noise.
        self.noise: Optional[_ChannelSpec] = None
        if noise is not None:
            rate = float(noise.rate)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"noise rate must lie in [0, 1], got {rate}")
            if rate > 0.0:
                self.noise = _ChannelSpec(rate, int(noise.seed))
        self._flat = program_is_flat(program)
        self._noise_flat = self.noise is None or noise_is_flat(program)
        self._register_names = {name for name, _ in program.registers}
        self._token = _register_program(program)
        self._owned = False
        self._ship = False
        if len(self.ranges) == 1 or executor == "inline":
            self._executor: Optional[Executor] = None
        elif isinstance(executor, Executor):
            self._executor = executor
            # A caller-created pool may predate program registration (or use
            # spawn), so every task carries the program; workers memoize it.
            self._ship = isinstance(executor, ProcessPoolExecutor)
        else:
            if executor is None:
                executor = "process" if cores > 1 else "thread"
            if executor == "thread":
                self._executor = ThreadPoolExecutor(
                    max_workers=len(self.ranges),
                    thread_name_prefix="repro-shard",
                )
            elif executor == "process":
                # Registration happened above, so fork-started workers
                # inherit the program; other start methods need shipping.
                self._executor = ProcessPoolExecutor(
                    max_workers=len(self.ranges)
                )
                self._ship = multiprocessing.get_start_method() != "fork"
            else:
                raise ValueError(
                    f"unknown executor {executor!r}; options: 'process', "
                    "'thread', an Executor instance, or None"
                )
            self._owned = True

    @property
    def shards(self) -> int:
        return len(self.ranges)

    def _slice_inputs(
        self, inputs: Optional[Mapping[str, Any]], lo: int, hi: int
    ) -> Dict[str, Any]:
        sliced: Dict[str, Any] = {}
        for name, values in (inputs or {}).items():
            if isinstance(values, (int, np.integer)):
                sliced[name] = int(values)
            else:
                sliced[name] = [int(v) for v in values[lo:hi]]
        return sliced

    def run(
        self,
        inputs: Optional[Mapping[str, Any]] = None,
        *,
        outcomes: Optional[OutcomeProvider] = None,
    ) -> ShardedResult:
        """Execute every shard once and merge; see :class:`ShardedResult`."""
        for name, values in (inputs or {}).items():
            if name not in self._register_names:
                raise ValueError(
                    f"unknown register {name!r}; program has: "
                    f"{', '.join(sorted(self._register_names)) or '(none)'}"
                )
            if not isinstance(values, (int, np.integer)) and \
                    len(values) != self.batch:
                raise ValueError(
                    f"register {name!r}: expected {self.batch} per-lane "
                    f"values, got {len(values)}"
                )
        if len(self.ranges) > 1 and not self._flat and \
                not isinstance(outcomes, ConstantOutcomes):
            raise ValueError(
                "program has measurement sites nested inside branch bodies; "
                "sharded execution with a stateful outcome provider would "
                "desynchronize the per-shard streams — run with shards=1, "
                "a ConstantOutcomes provider, or a flat program"
            )
        if len(self.ranges) > 1 and not self._noise_flat:
            raise ValueError(
                "program has noise points nested inside branch bodies; "
                "sharded execution would desynchronize the per-shard "
                "channel streams — run with shards=1 or keep noise points "
                "at the top level (insert_noise_points does)"
            )
        tasks = []
        for lo, hi in self.ranges:
            tasks.append((
                self._token,
                self.program if self._ship else None,
                lo, hi - lo, self.batch,
                clone_provider(outcomes),
                self._slice_inputs(inputs, lo, hi),
                self.tally,
                self.lane_counts,
                self.kernels,
                self.noise,
            ))
        if self._executor is None:
            results = [_shard_worker(task) for task in tasks]
        else:
            results = list(self._executor.map(_shard_worker, tasks))
        return _merge_shards(
            self.batch, self.ranges, results, self.tally, self.lane_counts
        )

    def close(self) -> None:
        if self._owned and self._executor is not None:
            self._executor.shutdown()
            self._executor = None
            self._owned = False
        _PROGRAM_REGISTRY.pop(self._token, None)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def run_sharded(
    program: Any,
    inputs: Optional[Mapping[str, Any]] = None,
    *,
    batch: int,
    shards: Optional[int] = None,
    executor: Any = None,
    outcomes: Optional[OutcomeProvider] = None,
    tally: bool = True,
    lane_counts: Optional[Sequence[str]] = None,
    kernels: Optional[str] = None,
    noise: Any = None,
) -> ShardedResult:
    """One sharded execution of ``program`` over ``batch`` lanes.

    ``program`` is a :class:`~repro.transform.compile.FusedProgram`,
    :class:`~repro.transform.compile.CompiledProgram`, or a circuit
    (compiled on the fly).  ``shards`` defaults to
    ``min(cores, batch // MIN_SHARD_LANES)`` (never more shards than the
    parallelism or the work can use); results are bit-identical for every
    shard count and executor kind.  For repeated runs of one program, hold
    a :class:`ShardPool` instead — this convenience builds and tears one
    down per call.
    """
    with ShardPool(
        program, batch=batch, shards=shards, executor=executor, tally=tally,
        lane_counts=lane_counts, kernels=kernels, noise=noise,
    ) as pool:
        return pool.run(inputs, outcomes=outcomes)
