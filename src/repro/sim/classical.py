"""Classical (computational-basis) simulation of reversible circuits.

Ripple-carry arithmetic circuits are permutations of the computational
basis, so on basis-state inputs they can be simulated by tracking one bit
per qubit.  This simulator handles registers of 64+ qubits instantly, which
is how the test-suite verifies every adder exhaustively at small ``n`` and
property-based at large ``n``.

Semantics notes
---------------
* Diagonal gates (z, s, t, cz, ccz, phase, cphase, ccphase, rz) act on a
  basis state as a *global* phase, which the simulator tracks (and tests can
  inspect) but which never affects register values.  This is exactly why the
  classically-controlled CZ of Gidney's logical-AND uncomputation is free on
  basis inputs.
* ``h`` is not representable on a bit and raises, with two exceptions that
  implement the paper's measurement patterns:

  - an X-basis :class:`Measurement` (H + measure) yields an unbiased coin
    and leaves the qubit in the measured state;
  - an :class:`MBUBlock` (Lemma 4.1) uses the algebraic fact that on a basis
    input the correction branch acts as identity on the data register and
    resets the garbage qubit, up to a global phase.  Inside the correction
    body, Hadamards on the garbage qubit and bit-flips *targeting* it are
    phase-only and are skipped; everything else (including nested logical-
    AND uncomputations) runs normally.  All ops in a taken branch are added
    to the executed-gate tally, so Monte-Carlo expected costs are faithful.

The statevector simulator is the ground truth; ``tests/test_sim_cross.py``
checks the two agree on random circuits.
"""

from __future__ import annotations

import cmath
from typing import Dict, List, Mapping, Sequence

from ..circuits.circuit import Circuit, Register
from ..circuits.ops import (
    Annotation,
    Conditional,
    Gate,
    MBUBlock,
    Measurement,
    Operation,
)
from ..circuits.resources import GateCounts
from .outcomes import OutcomeProvider, RandomOutcomes

__all__ = ["ClassicalSimulator", "UnsupportedGateError", "run_classical"]


class UnsupportedGateError(RuntimeError):
    """Gate has no computational-basis semantics (e.g. a bare Hadamard)."""


_DIAGONAL_PHASES = {
    "z": cmath.pi,
    "s": cmath.pi / 2,
    "sdg": -cmath.pi / 2,
    "t": cmath.pi / 4,
    "tdg": -cmath.pi / 4,
}


class ClassicalSimulator:
    """Simulate a circuit on a computational-basis input state."""

    def __init__(
        self,
        circuit: Circuit,
        outcomes: OutcomeProvider | None = None,
        tally: bool = True,
    ) -> None:
        self.circuit = circuit
        self.outcomes = outcomes or RandomOutcomes(0)
        self.qubits: List[int] = [0] * circuit.num_qubits
        self.bits: List[int] = [0] * circuit.num_bits
        self.global_phase = 0.0  # radians, modulo 2*pi
        self.tally = GateCounts() if tally else None

    # -- state preparation ------------------------------------------------

    def set_qubit(self, qubit: int, value: int) -> None:
        self.qubits[qubit] = value & 1

    def set_register(self, register: Register | Sequence[int], value: int) -> None:
        qubits = register.qubits if isinstance(register, Register) else tuple(register)
        if value < 0 or value >= (1 << len(qubits)):
            raise ValueError(f"value {value} does not fit in {len(qubits)} qubits")
        for i, q in enumerate(qubits):
            self.qubits[q] = (value >> i) & 1

    def get_register(self, register: Register | Sequence[int] | str) -> int:
        if isinstance(register, str):
            register = self.circuit.registers[register]
        qubits = register.qubits if isinstance(register, Register) else tuple(register)
        return sum(self.qubits[q] << i for i, q in enumerate(qubits))

    # -- execution -----------------------------------------------------------

    def run(self) -> "ClassicalSimulator":
        self._execute(self.circuit.ops)
        return self

    def _record(self, op: Operation) -> None:
        if self.tally is None:
            return
        if isinstance(op, Gate):
            self.tally.add(op.name)
        elif isinstance(op, Measurement):
            if op.basis == "x":
                self.tally.add("h")
            self.tally.add("measure")

    def _execute(self, ops: Sequence[Operation]) -> None:
        for op in ops:
            self._apply(op)

    def _apply(self, op: Operation) -> None:
        if isinstance(op, Gate):
            self._record(op)
            self._apply_gate(op)
        elif isinstance(op, Measurement):
            self._record(op)
            self._apply_measurement(op)
        elif isinstance(op, Conditional):
            if self.bits[op.bit] == op.value:
                self._execute(op.body)
        elif isinstance(op, MBUBlock):
            self._apply_mbu(op)
        elif isinstance(op, Annotation):
            return
        else:  # pragma: no cover
            raise TypeError(f"unknown operation {op!r}")

    def _apply_gate(self, gate: Gate) -> None:
        name, q = gate.name, gate.qubits
        bits = self.qubits
        if name == "x":
            bits[q[0]] ^= 1
        elif name == "cx":
            bits[q[1]] ^= bits[q[0]]
        elif name == "ccx":
            bits[q[2]] ^= bits[q[0]] & bits[q[1]]
        elif name == "swap":
            bits[q[0]], bits[q[1]] = bits[q[1]], bits[q[0]]
        elif name == "cswap":
            if bits[q[0]]:
                bits[q[1]], bits[q[2]] = bits[q[2]], bits[q[1]]
        elif name == "y":
            self.global_phase += cmath.pi / 2 if bits[q[0]] == 0 else -cmath.pi / 2
            bits[q[0]] ^= 1
        elif name in _DIAGONAL_PHASES:
            if bits[q[0]]:
                self.global_phase += _DIAGONAL_PHASES[name]
        elif name == "rz":
            self.global_phase += gate.param / 2 * (1 if bits[q[0]] else -1)
        elif name == "phase":
            if bits[q[0]]:
                self.global_phase += gate.param
        elif name == "cz":
            if bits[q[0]] and bits[q[1]]:
                self.global_phase += cmath.pi
        elif name == "ccz":
            if bits[q[0]] and bits[q[1]] and bits[q[2]]:
                self.global_phase += cmath.pi
        elif name == "cphase":
            if bits[q[0]] and bits[q[1]]:
                self.global_phase += gate.param
        elif name == "ccphase":
            if bits[q[0]] and bits[q[1]] and bits[q[2]]:
                self.global_phase += gate.param
        elif name == "h":
            raise UnsupportedGateError(
                "bare Hadamard has no basis-state semantics; use an X-basis "
                "Measurement or an MBUBlock"
            )
        else:  # pragma: no cover
            raise UnsupportedGateError(f"gate {name!r} unsupported classically")

    def _apply_measurement(self, meas: Measurement) -> None:
        if meas.basis == "z":
            outcome = self.qubits[meas.qubit]
        else:  # X basis: H then measure -> unbiased coin, post-state |m>
            outcome = self.outcomes.sample(0.5)
            self.qubits[meas.qubit] = outcome
        self.bits[meas.bit] = outcome

    # -- MBU block ------------------------------------------------------------

    def _apply_mbu(self, block: MBUBlock) -> None:
        """Lemma 4.1 on a basis state: coin; on 1 the correction acts as
        identity on the data register, resetting the garbage qubit."""
        if self.tally is not None:
            self.tally.add("h")
            self.tally.add("measure")
        outcome = self.outcomes.sample(0.5)
        self.bits[block.bit] = outcome
        if outcome:
            self._execute_mbu_body(block.body, block.qubit)
        self.qubits[block.qubit] = 0

    def _execute_mbu_body(self, ops: Sequence[Operation], garbage: int) -> None:
        """Run the correction body with the garbage qubit held in |+->.

        Bit-flips whose *target* is the garbage qubit only kick a (global,
        on basis inputs) phase and are skipped; any other interaction with
        the garbage qubit is not basis-preserving and raises.
        """
        for op in ops:
            if isinstance(op, Gate):
                self._record(op)
                if garbage in op.qubits:
                    flips_garbage = (
                        op.name in ("x", "cx", "ccx") and op.qubits[-1] == garbage
                    ) or op.name == "h" and op.qubits == (garbage,)
                    if flips_garbage:
                        continue  # phase-only on the +/- basis
                    raise UnsupportedGateError(
                        f"MBU correction gate {op} uses the garbage qubit in a "
                        "way the classical simulator cannot track"
                    )
                self._apply_gate(op)
            elif isinstance(op, Measurement):
                if op.qubit == garbage:
                    raise UnsupportedGateError("measurement of garbage qubit inside MBU body")
                self._record(op)
                self._apply_measurement(op)
            elif isinstance(op, Conditional):
                if self.bits[op.bit] == op.value:
                    self._execute_mbu_body(op.body, garbage)
            elif isinstance(op, MBUBlock):
                if op.qubit == garbage:
                    raise UnsupportedGateError("nested MBU on the same garbage qubit")
                self._apply_mbu(op)
            elif isinstance(op, Annotation):
                continue
            else:  # pragma: no cover
                raise TypeError(f"unknown operation {op!r}")


def run_classical(
    circuit: Circuit,
    inputs: Mapping[str, int] | None = None,
    outcomes: OutcomeProvider | None = None,
) -> Dict[str, int]:
    """Convenience wrapper: run on a basis state, return register values."""
    sim = ClassicalSimulator(circuit, outcomes=outcomes)
    for name, value in (inputs or {}).items():
        sim.set_register(circuit.registers[name], value)
    sim.run()
    return {name: sim.get_register(reg) for name, reg in circuit.registers.items()}
