"""Classical (computational-basis) simulation of reversible circuits.

Ripple-carry arithmetic circuits are permutations of the computational
basis, so on basis-state inputs they can be simulated by tracking one bit
per qubit.  This simulator handles registers of 64+ qubits instantly, which
is how the test-suite verifies every adder exhaustively at small ``n`` and
property-based at large ``n``.

The simulator is an :class:`~repro.sim.engine.ExecutionBackend`: the shared
:class:`~repro.sim.engine.ExecutionEngine` owns the op-stream recursion, the
executed-gate tally and the measurement-outcome provider; this class only
implements basis-state handlers and branch decisions.

Semantics notes
---------------
* Diagonal gates (z, s, t, cz, ccz, phase, cphase, ccphase, rz) act on a
  basis state as a *global* phase, which the simulator tracks (and tests can
  inspect) but which never affects register values.  This is exactly why the
  classically-controlled CZ of Gidney's logical-AND uncomputation is free on
  basis inputs.
* ``h`` is not representable on a bit and raises, with two exceptions that
  implement the paper's measurement patterns:

  - an X-basis :class:`Measurement` (H + measure) yields an unbiased coin
    and leaves the qubit in the measured state;
  - an :class:`MBUBlock` (Lemma 4.1) uses the algebraic fact that on a basis
    input the correction branch acts as identity on the data register and
    resets the garbage qubit, up to a global phase.  Inside the correction
    body, Hadamards on the garbage qubit and bit-flips *targeting* it are
    phase-only and are skipped; everything else (including nested logical-
    AND uncomputations) runs normally.  All ops in a taken branch are added
    to the executed-gate tally, so Monte-Carlo expected costs are faithful.

The statevector simulator is the ground truth; ``tests/test_sim_cross.py``
checks the two agree on random circuits.
"""

from __future__ import annotations

import cmath
from typing import Dict, List, Mapping, Sequence

from ..circuits.circuit import Circuit, Register
from ..circuits.ops import Conditional, Gate, MBUBlock, Measurement
from .engine import EXECUTE, SKIP, BranchDecision, ExecutionBackend, ExecutionEngine
from .outcomes import OutcomeProvider

__all__ = [
    "ClassicalSimulator",
    "UnsupportedGateError",
    "garbage_gate_skips",
    "run_classical",
]


class UnsupportedGateError(RuntimeError):
    """Gate has no computational-basis semantics (e.g. a bare Hadamard)."""


def garbage_gate_skips(gate: Gate, garbage_stack: Sequence[int]) -> bool:
    """How a gate interacts with the MBU garbage-qubit stack (shared by the
    classical and bit-plane backends).

    Inside an MBU correction body every garbage qubit on the stack sits in
    the |+->-plane.  Bit-flips *targeting* the innermost garbage (and
    Hadamards on it) are phase-only on basis inputs: return True (skip the
    gate).  A gate not touching any stacked garbage returns False (apply
    normally).  Anything else — reading a garbage qubit as a control,
    swapping through it, or touching an *outer* garbage qubit from a nested
    MBU body — is not basis-preserving and raises.
    """
    touched = [g for g in garbage_stack if g in gate.qubits]
    if not touched:
        return False
    top = garbage_stack[-1]
    if touched == [top]:
        flips_top = (
            gate.name in ("x", "cx", "ccx") and gate.qubits[-1] == top
        ) or (gate.name == "h" and gate.qubits == (top,))
        if flips_top:
            return True  # phase-only on the +/- basis
    raise UnsupportedGateError(
        f"MBU correction gate {gate} uses garbage qubit(s) {touched} in a "
        "way a basis-state simulator cannot track"
    )


_DIAGONAL_PHASES = {
    "z": cmath.pi,
    "s": cmath.pi / 2,
    "sdg": -cmath.pi / 2,
    "t": cmath.pi / 4,
    "tdg": -cmath.pi / 4,
}


class ClassicalSimulator(ExecutionBackend):
    """Simulate a circuit on a computational-basis input state."""

    def __init__(
        self,
        circuit: Circuit,
        outcomes: OutcomeProvider | None = None,
        tally: bool = True,
        noise=None,
    ) -> None:
        self.circuit = circuit
        self.qubits: List[int] = [0] * circuit.num_qubits
        self.bits: List[int] = [0] * circuit.num_bits
        self.global_phase = 0.0  # radians, modulo 2*pi
        self._garbage: List[int] = []  # MBU garbage-qubit stack (innermost last)
        # Bit-flip channel at annotated noise points (duck-typed config with
        # .rate/.seed, e.g. repro.noise.NoiseConfig); rate 0 draws nothing.
        self._noise_rate = 0.0
        self._noise_stream: OutcomeProvider | None = None
        if noise is not None:
            rate = float(noise.rate)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"noise rate must lie in [0, 1], got {rate}")
            if rate > 0.0:
                from .outcomes import RandomOutcomes

                self._noise_rate = rate
                self._noise_stream = RandomOutcomes(int(noise.seed))
        self.engine = ExecutionEngine(self, outcomes=outcomes, tally=tally)

    # -- state preparation ------------------------------------------------

    def set_qubit(self, qubit: int, value: int) -> None:
        self.qubits[qubit] = value & 1

    def set_register(self, register: Register | Sequence[int], value: int) -> None:
        qubits = register.qubits if isinstance(register, Register) else tuple(register)
        if value < 0 or value >= (1 << len(qubits)):
            raise ValueError(f"value {value} does not fit in {len(qubits)} qubits")
        for i, q in enumerate(qubits):
            self.qubits[q] = (value >> i) & 1

    def get_register(self, register: Register | Sequence[int] | str) -> int:
        if isinstance(register, str):
            register = self.circuit.registers[register]
        qubits = register.qubits if isinstance(register, Register) else tuple(register)
        return sum(self.qubits[q] << i for i, q in enumerate(qubits))

    # -- execution -----------------------------------------------------------

    def run(self) -> "ClassicalSimulator":
        self.engine.execute(self.circuit.ops)
        return self

    # -- ExecutionBackend handlers --------------------------------------------

    def apply_gate(self, gate: Gate) -> None:
        if self._garbage and garbage_gate_skips(gate, self._garbage):
            return
        self._apply_gate(gate)

    def annotation(self, ann) -> None:
        # Bit-flip channel point: one Bernoulli(rate) draw per reached point
        # (the scalar analogue of the bit-plane backends' per-lane masks).
        if ann.kind == "noise" and self._noise_stream is not None:
            if self._noise_stream.sample(self._noise_rate):
                self.qubits[int(ann.label)] ^= 1

    def apply_measurement(self, meas: Measurement) -> None:
        if meas.qubit in self._garbage:
            raise UnsupportedGateError("measurement of garbage qubit inside MBU body")
        if meas.basis == "z":
            outcome = self.qubits[meas.qubit]
        else:  # X basis: H then measure -> unbiased coin, post-state |m>
            outcome = self.engine.sample(0.5)
            self.qubits[meas.qubit] = outcome
        self.bits[meas.bit] = outcome

    def enter_conditional(self, cond: Conditional) -> BranchDecision:
        return EXECUTE if self.bits[cond.bit] == cond.value else SKIP

    def enter_mbu(self, block: MBUBlock) -> BranchDecision:
        """Lemma 4.1 on a basis state: coin; on 1 the correction acts as
        identity on the data register, resetting the garbage qubit."""
        if block.qubit in self._garbage:
            raise UnsupportedGateError("nested MBU on an active garbage qubit")
        outcome = self.engine.sample(0.5)
        self.bits[block.bit] = outcome
        self._garbage.append(block.qubit)
        return BranchDecision(outcome == 1)

    def exit_mbu(self, block: MBUBlock, decision: BranchDecision) -> None:
        self._garbage.pop()
        self.qubits[block.qubit] = 0

    # -- gate semantics -------------------------------------------------------

    def _apply_gate(self, gate: Gate) -> None:
        name, q = gate.name, gate.qubits
        bits = self.qubits
        if name == "x":
            bits[q[0]] ^= 1
        elif name == "cx":
            bits[q[1]] ^= bits[q[0]]
        elif name == "ccx":
            bits[q[2]] ^= bits[q[0]] & bits[q[1]]
        elif name == "swap":
            bits[q[0]], bits[q[1]] = bits[q[1]], bits[q[0]]
        elif name == "cswap":
            if bits[q[0]]:
                bits[q[1]], bits[q[2]] = bits[q[2]], bits[q[1]]
        elif name == "y":
            self.global_phase += cmath.pi / 2 if bits[q[0]] == 0 else -cmath.pi / 2
            bits[q[0]] ^= 1
        elif name in _DIAGONAL_PHASES:
            if bits[q[0]]:
                self.global_phase += _DIAGONAL_PHASES[name]
        elif name == "rz":
            self.global_phase += gate.param / 2 * (1 if bits[q[0]] else -1)
        elif name == "phase":
            if bits[q[0]]:
                self.global_phase += gate.param
        elif name == "cz":
            if bits[q[0]] and bits[q[1]]:
                self.global_phase += cmath.pi
        elif name == "ccz":
            if bits[q[0]] and bits[q[1]] and bits[q[2]]:
                self.global_phase += cmath.pi
        elif name == "cphase":
            if bits[q[0]] and bits[q[1]]:
                self.global_phase += gate.param
        elif name == "ccphase":
            if bits[q[0]] and bits[q[1]] and bits[q[2]]:
                self.global_phase += gate.param
        elif name == "h":
            raise UnsupportedGateError(
                "bare Hadamard has no basis-state semantics; use an X-basis "
                "Measurement or an MBUBlock"
            )
        else:  # pragma: no cover
            raise UnsupportedGateError(f"gate {name!r} unsupported classically")


def run_classical(
    circuit: Circuit,
    inputs: Mapping[str, int] | None = None,
    outcomes: OutcomeProvider | None = None,
) -> Dict[str, int]:
    """Convenience wrapper: run on a basis state, return register values."""
    sim = ClassicalSimulator(circuit, outcomes=outcomes)
    for name, value in (inputs or {}).items():
        sim.set_register(circuit.registers[name], value)
    sim.run()
    return {name: sim.get_register(reg) for name, reg in circuit.registers.items()}
