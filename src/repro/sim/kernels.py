"""Fused execution kernels for compiled bit-plane programs.

This module turns a :class:`~repro.transform.compile.FusedProgram` into
machine-efficient execution, two ways:

**Generated straight-line kernels** (:func:`build_kernel`, the default).
The scope tree is compiled *once per program* into one Python function of
straight-line bigint arithmetic: every plane becomes a local variable,
branch scopes become nested ``if`` blocks on bigint masks, and the whole
instruction stream runs with zero interpreter dispatch — no program
counter, no tuple unpacking, no per-instruction tally bookkeeping.  Three
specializations make this more than dispatch removal:

* *Full-mask elision* — code at branch depth 0 always runs with the
  all-lanes mask, and plane integers never carry bits at or above
  ``batch`` (an invariant every operation preserves), so the ``& mask``
  that dominates the scalar VM's per-instruction cost disappears from the
  top-level stream: ``cx`` becomes a single bigint XOR.
* *Swap renaming* — a full-mask ``swap`` exchanges two local variable
  bindings at *codegen* time and emits no runtime code at all.
* *Per-scope tally events* — executed-gate accounting reduces to one
  ``(scope_id, mask)`` event per dynamic scope entry; totals are
  reconstructed afterwards from the program's static per-scope counts.
  The same events drive exact per-lane ``lane_counts`` tracking, which the
  scalar compiled VM cannot do at all.

**Generated straight-line numpy kernels** (:func:`build_vector_kernel`,
``kernels="vector"``).  The same once-per-program code generation, but
over the simulator's packed ``(qubits, words)`` uint64 plane matrix
instead of bigints: plane rows become local array views mutated with
in-place ufuncs (``out=``), long same-opcode runs become fancy-indexed
gather/scatter blocks over preallocated scratch, full-mask ``& mask``
is elided at branch depth 0 (the plane-rows-never-carry-invalid-bits
invariant), and a depth-0 ``swap`` is a codegen-time row renaming
resolved by one final permutation write.  Scratch lives on the
*simulator* (grown monotonically, reused across ``reset()`` and
Monte-Carlo repetitions), so the steady state allocates nothing but
measurement outcome packs.  This is the rung that finally beats the
bigint kernels at wide batches: the run-lengthening scheduler
(:func:`repro.transform.compile.schedule_program`) feeds it longer runs,
and ``benchmarks/BENCH_dispatch.json`` records the measured crossover.

**Stacked-plane array kernels** (:func:`run_fused_arrays`,
``kernels="arrays"``).  The literal gather → combine → scatter execution
of superinstructions over the simulator's ``(qubits, words)`` plane
matrix, driven by a flat step plan and integer dispatch.  Measured
honestly, this path *loses* to the bigint kernels across the benchmark
grid — per-step interpreter dispatch and gather copies cost more than
CPython bigint ops, and ripple-carry circuits keep ~60% of instructions
in runs of length ≤ 2 where fancy indexing has nothing to amortize.  It
is kept as a working, property-tested alternative and as the
differential baseline for the generated vector kernels above;
``kernels="auto"`` consults the calibrated cost model in
:mod:`repro.sim.dispatch.cost` to pick among all three.  See
``docs/performance.md``.

Layering note: this module lives in :mod:`repro.sim` but executes
:mod:`repro.transform` programs, so transform types are imported lazily
inside functions (the transform package imports ``repro.sim.classical``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

import numpy as np

__all__ = [
    "build_kernel",
    "generate_source",
    "build_vector_kernel",
    "generate_vector_source",
    "run_fused_vector",
    "run_fused_arrays",
    "fused_x",
    "fused_cx",
    "fused_ccx",
    "fused_swap",
    "fused_cswap",
]


def _opcodes():
    from ..transform import compile as tc  # deferred: transform sits above sim

    return tc


# --------------------------------------------------------------------------- #
# generated straight-line kernels (the default fused path)


def _census(fused):
    """Which planes/bits the program touches (needs locals / a write-back)."""
    tc = _opcodes()
    used: set = set()
    written: set = set()
    used_bits: set = set()
    written_bits: set = set()
    stack = [fused.root]
    while stack:
        scope = stack.pop()
        if scope.kind == "mbu":
            used.add(scope.header[0])
            written.add(scope.header[0])
            used_bits.add(scope.header[1])
            written_bits.add(scope.header[1])
        elif scope.kind == "cond":
            used_bits.add(scope.header[0])
        for kind, item in scope.items:
            if kind == "run":
                used.update(int(v) for v in item.operands.ravel())
                written.update(
                    int(item.operands[row, col])
                    for col in (i - 1 for i in tc._RUN_WRITES[item.opcode])
                    for row in range(item.count)
                )
            elif kind == "instr":
                op = item[0]
                if op == tc.OP_MZ or op == tc.OP_MX:
                    used.add(item[1])
                    if op == tc.OP_MX:
                        written.add(item[1])
                    used_bits.add(item[2])
                    written_bits.add(item[2])
                elif op == tc.OP_NOISE:
                    used.add(item[1])
                    written.add(item[1])
                else:
                    used.update(item[1:])
                    written.update(item[i] for i in tc._RUN_WRITES[op])
            else:
                stack.append(item)
    return used, written, used_bits, written_bits


def generate_source(fused, *, events: bool, func_name: str = "_fused_kernel") -> str:
    """Python source of the straight-line kernel for ``fused`` (see
    :func:`build_kernel` for the callable and its metadata)."""
    return _generate(fused, events=events, func_name=func_name)[0]


def _generate(fused, *, events: bool, func_name: str = "_fused_kernel"):
    """Generate the kernel source plus its plane/bit usage metadata.

    The generated function has signature
    ``(P, B, _m0, _batch, _sample, _ev, _noise=None)``: ``P`` is the list
    of per-qubit plane bigints (mutated via write-back), ``B`` the list of
    classical-bit plane bigints (mutated in place), ``_m0`` the all-lanes
    mask ``(1 << batch) - 1`` (callers must pass exactly that — depth-0
    code relies on it), ``_sample`` the engine's ``sample_lanes``, ``_ev``
    a list collecting ``(scope_id, mask)`` tally events (ignored when the
    kernel was generated with ``events=False``) and ``_noise`` the bit-flip
    channel draw ``lanes -> flip mask`` (``None`` disables every noise
    point — the same kernel source serves both).
    """
    tc = _opcodes()
    used, written, used_bits, written_bits = _census(fused)
    var = {q: f"p{q}" for q in sorted(used)}
    lines: List[str] = [
        f"def {func_name}(P, B, _m0, _batch, _sample, _ev, _noise=None):"
    ]
    for q in sorted(used):
        lines.append(f"    p{q} = P[{q}]")
    if events:
        lines.append("    _ev.append((0, _m0))")

    def emit_gate(op: int, operands: Tuple[int, ...], pad: str, mask: str, full: bool) -> None:
        if op == tc.OP_CX:
            c, t = operands
            rhs = var[c] if full else f"{var[c]} & {mask}"
            lines.append(f"{pad}{var[t]} ^= {rhs}")
        elif op == tc.OP_CCX:
            c1, c2, t = operands
            rhs = f"{var[c1]} & {var[c2]}" if full else f"{var[c1]} & {var[c2]} & {mask}"
            lines.append(f"{pad}{var[t]} ^= {rhs}")
        elif op == tc.OP_X:
            (q,) = operands
            lines.append(f"{pad}{var[q]} ^= {mask}")
        elif op == tc.OP_SWAP:
            a, b = operands
            if full:
                # Full-mask swap is a pure renaming of the two locals: zero
                # runtime cost; the write-back below resolves the final map.
                var[a], var[b] = var[b], var[a]
            else:
                lines.append(f"{pad}_d = ({var[a]} ^ {var[b]}) & {mask}")
                lines.append(f"{pad}{var[a]} ^= _d")
                lines.append(f"{pad}{var[b]} ^= _d")
        elif op == tc.OP_CSWAP:
            c, a, b = operands
            guard = var[c] if full else f"{mask} & {var[c]}"
            lines.append(f"{pad}_d = ({var[a]} ^ {var[b]}) & {guard}")
            lines.append(f"{pad}{var[a]} ^= _d")
            lines.append(f"{pad}{var[b]} ^= _d")
        else:  # pragma: no cover - fuse_program only packs the five above
            raise ValueError(f"unexpected opcode {op} in a fused run")

    def emit_scope(scope, depth: int) -> None:
        pad = "    " * (depth + 1)
        mask = "_m0" if depth == 0 else f"_m{depth}"
        full = depth == 0
        for kind, item in scope.items:
            if kind == "run":
                for row in item.operands:
                    emit_gate(item.opcode, tuple(int(v) for v in row), pad, mask, full)
            elif kind == "instr":
                op = item[0]
                if op == tc.OP_MZ:
                    q, b = item[1], item[2]
                    if full:
                        lines.append(f"{pad}B[{b}] = {var[q]}")
                    else:
                        lines.append(
                            f"{pad}B[{b}] = (B[{b}] & ~{mask}) | ({var[q]} & {mask})"
                        )
                elif op == tc.OP_MX:
                    q, b = item[1], item[2]
                    if full:
                        lines.append(f"{pad}_o = _sample(0.5, _batch) & _m0")
                        lines.append(f"{pad}{var[q]} = _o")
                        lines.append(f"{pad}B[{b}] = _o")
                    else:
                        lines.append(f"{pad}_o = _sample(0.5, _batch)")
                        lines.append(
                            f"{pad}{var[q]} = ({var[q]} & ~{mask}) | (_o & {mask})"
                        )
                        lines.append(
                            f"{pad}B[{b}] = (B[{b}] & ~{mask}) | (_o & {mask})"
                        )
                elif op == tc.OP_NOISE:
                    # Bit-flip channel point: one guarded draw, so the same
                    # generated kernel serves noisy and noiseless runs
                    # (callers pass _noise=None to disable).
                    q = item[1]
                    lines.append(f"{pad}if _noise is not None:")
                    rhs = "_noise(_batch)" if full else f"_noise(_batch) & {mask}"
                    lines.append(f"{pad}    {var[q]} ^= {rhs}")
                else:
                    emit_gate(op, item[1:], pad, mask, full)
            else:  # nested scope
                sub = f"_m{depth + 1}"
                if item.kind == "cond":
                    bit, value = item.header
                    if value:
                        src = f"B[{bit}]" if full else f"{mask} & B[{bit}]"
                    else:
                        src = f"{mask} & ~B[{bit}]"
                    lines.append(f"{pad}{sub} = {src}")
                else:  # mbu
                    bit = item.header[1]
                    if full:
                        lines.append(f"{pad}_o = _sample(0.5, _batch) & _m0")
                        lines.append(f"{pad}B[{bit}] = _o")
                        lines.append(f"{pad}{sub} = _o")
                    else:
                        lines.append(f"{pad}_o = _sample(0.5, _batch)")
                        lines.append(
                            f"{pad}B[{bit}] = (B[{bit}] & ~{mask}) | (_o & {mask})"
                        )
                        lines.append(f"{pad}{sub} = {mask} & _o")
                lines.append(f"{pad}if {sub}:")
                body_start = len(lines)
                if events:
                    lines.append(f"{pad}    _ev.append(({item.sid}, {sub}))")
                emit_scope(item, depth + 1)
                if len(lines) == body_start:
                    lines.append(f"{pad}    pass")
                if item.kind == "mbu":
                    q = item.header[0]
                    # Both MBU branches leave the garbage qubit in |0>.
                    if full:
                        lines.append(f"{pad}{var[q]} = 0")
                    else:
                        lines.append(f"{pad}{var[q]} &= ~{mask}")

    emit_scope(fused.root, 0)
    # Write back only planes the program can have changed: read-only and
    # untouched entries of P keep the values the caller marshalled in (they
    # are part of the resident state), and __written_planes__ tells the
    # caller which numpy rows will need repacking.
    for q in sorted(written):
        lines.append(f"    P[{q}] = {var[q]}")
    lines.append("    return None")
    source = "\n".join(lines) + "\n"
    meta = {
        "used_planes": tuple(sorted(used)),
        "written_planes": tuple(sorted(written)),
        "used_bits": tuple(sorted(used_bits)),
        "written_bits": tuple(sorted(written_bits)),
    }
    return source, meta


def build_kernel(fused, *, events: bool) -> Callable:
    """Compile (and return) the straight-line kernel for ``fused``.

    One-time cost per (program, events) pair; cached by
    :meth:`~repro.transform.compile.FusedProgram.kernel`.  The source is
    kept on the function as ``__fused_source__`` for inspection, and the
    plane/bit usage census as ``__used_planes__`` / ``__written_planes__``
    / ``__written_bits__`` (plus ``__used_bits__``) — the written sets tell
    callers which rows of their numpy buffers the kernel can have changed,
    i.e. which ones need repacking.  The caller must still marshal *every*
    plane into the ``P``/``B`` lists it passes in: the lists double as the
    resident state reused by later (possibly different) programs, so
    entries outside ``__used_planes__`` have to be correct too.
    """
    source, meta = _generate(fused, events=events)
    namespace: Dict[str, Any] = {}
    exec(compile(source, f"<fused-kernel:{fused.source or 'circuit'}>", "exec"), namespace)
    fn = namespace["_fused_kernel"]
    fn.__fused_source__ = source
    fn.__used_planes__ = meta["used_planes"]
    fn.__written_planes__ = meta["written_planes"]
    fn.__used_bits__ = meta["used_bits"]
    fn.__written_bits__ = meta["written_bits"]
    return fn


# --------------------------------------------------------------------------- #
# generated straight-line numpy kernels (kernels="vector")

#: Runs shorter than this unroll into per-gate in-place ufuncs; at or
#: above it they emit one fancy-indexed gather/scatter block.  Below ~4
#: gates the gather copies cost more than they amortize.
_VECTOR_RUN_MIN = 4


def generate_vector_source(fused, *, events: bool, func_name: str = "_vector_kernel") -> str:
    """Python source of the straight-line numpy kernel for ``fused`` (see
    :func:`build_vector_kernel` for the callable and its metadata)."""
    return _generate_vector(fused, events=events, func_name=func_name)[0]


def _generate_vector(fused, *, events: bool, func_name: str = "_vector_kernel"):
    """Generate the numpy kernel source, its baked index constants, and
    its plane/bit usage metadata.

    The generated function has signature ``(P, B, _m0, _batch, _sample,
    _ev, _noise, _S, _scr, _gath, _pack, _mask_int)``: ``P``/``B`` are the
    simulator's packed ``(rows, words)`` uint64 plane matrices (mutated in
    place), ``_m0`` the all-lanes validity mask row, ``_S`` preallocated
    scratch rows (row 0 is the ufunc temporary, row d the depth-d branch
    mask), ``_scr``/``_gath`` ``(max_run, words)`` gather scratch,
    ``_pack`` bigint → word array and ``_mask_int`` word array → bigint.
    Fancy-index operand columns of vectorized runs are baked into the
    function's globals as ``np.intp`` constants — already remapped through
    the codegen-time row permutation that full-mask swaps maintain, so a
    depth-0 ``swap`` costs nothing at run time and one final permutation
    write puts rows back in canonical order.
    """
    tc = _opcodes()
    used, written, used_bits, written_bits = _census(fused)
    var = {q: f"_p{q}" for q in sorted(used)}
    bvar = {b: f"_b{b}" for b in sorted(used_bits)}
    perm = {q: q for q in sorted(used)}
    consts: Dict[str, Any] = {}
    body: List[str] = []
    max_run = 0
    max_depth = 0
    n_const = 0

    def bake(indices) -> str:
        nonlocal n_const
        name = f"_rc{n_const}"
        n_const += 1
        consts[name] = np.array(indices, dtype=np.intp)
        return name

    def emit_gate(op: int, operands: Tuple[int, ...], pad: str, mask: str, full: bool) -> None:
        if op == tc.OP_CX:
            c, t = operands
            if full:
                body.append(f"{pad}{var[t]} ^= {var[c]}")
            else:
                body.append(f"{pad}_np.bitwise_and({var[c]}, {mask}, out=_t)")
                body.append(f"{pad}{var[t]} ^= _t")
        elif op == tc.OP_CCX:
            c1, c2, t = operands
            body.append(f"{pad}_np.bitwise_and({var[c1]}, {var[c2]}, out=_t)")
            if not full:
                body.append(f"{pad}_t &= {mask}")
            body.append(f"{pad}{var[t]} ^= _t")
        elif op == tc.OP_X:
            (q,) = operands
            body.append(f"{pad}{var[q]} ^= {mask}")
        elif op == tc.OP_SWAP:
            a, b = operands
            if full:
                # Pure renaming: rows trade names at codegen time; the
                # final permutation write restores canonical row order.
                var[a], var[b] = var[b], var[a]
                perm[a], perm[b] = perm[b], perm[a]
            else:
                body.append(f"{pad}_np.bitwise_xor({var[a]}, {var[b]}, out=_t)")
                body.append(f"{pad}_t &= {mask}")
                body.append(f"{pad}{var[a]} ^= _t")
                body.append(f"{pad}{var[b]} ^= _t")
        elif op == tc.OP_CSWAP:
            c, a, b = operands
            body.append(f"{pad}_np.bitwise_xor({var[a]}, {var[b]}, out=_t)")
            body.append(f"{pad}_t &= {var[c]}")
            if not full:
                body.append(f"{pad}_t &= {mask}")
            body.append(f"{pad}{var[a]} ^= _t")
            body.append(f"{pad}{var[b]} ^= _t")
        else:  # pragma: no cover - fuse_program only packs the five above
            raise ValueError(f"unexpected opcode {op} in a fused run")

    def emit_run(item, pad: str, mask: str, full: bool) -> None:
        nonlocal max_run
        op = item.opcode
        ops = item.operands
        k = item.count
        if full and op == tc.OP_SWAP:
            for row in ops:
                emit_gate(op, tuple(int(v) for v in row), pad, mask, full)
            return
        if k < _VECTOR_RUN_MIN:
            for row in ops:
                emit_gate(op, tuple(int(v) for v in row), pad, mask, full)
            return
        cols = [
            bake([perm[int(v)] for v in ops[:, i]]) for i in range(ops.shape[1])
        ]
        if op == tc.OP_X:
            body.append(f"{pad}P[{cols[0]}] ^= {mask}")
            return
        max_run = max(max_run, k)
        if op == tc.OP_CX:
            c, t = cols
            body.append(f'{pad}_s = _take(P, {c}, axis=0, out=_scr[:{k}], mode="clip")')
            if not full:
                body.append(f"{pad}_s &= {mask}")
            body.append(f'{pad}_g = _take(P, {t}, axis=0, out=_gath[:{k}], mode="clip")')
            body.append(f"{pad}_g ^= _s")
            body.append(f"{pad}P[{t}] = _g")
        elif op == tc.OP_CCX:
            c1, c2, t = cols
            body.append(f'{pad}_s = _take(P, {c1}, axis=0, out=_scr[:{k}], mode="clip")')
            body.append(f'{pad}_s &= _take(P, {c2}, axis=0, out=_gath[:{k}], mode="clip")')
            if not full:
                body.append(f"{pad}_s &= {mask}")
            body.append(f'{pad}_g = _take(P, {t}, axis=0, out=_gath[:{k}], mode="clip")')
            body.append(f"{pad}_g ^= _s")
            body.append(f"{pad}P[{t}] = _g")
        elif op == tc.OP_SWAP:  # masked only: full swap runs renamed above
            a, b = cols
            body.append(f'{pad}_s = _take(P, {a}, axis=0, out=_scr[:{k}], mode="clip")')
            body.append(f'{pad}_s ^= _take(P, {b}, axis=0, out=_gath[:{k}], mode="clip")')
            body.append(f"{pad}_s &= {mask}")
            for side in (a, b):
                body.append(
                    f'{pad}_g = _take(P, {side}, axis=0, out=_gath[:{k}], mode="clip")'
                )
                body.append(f"{pad}_g ^= _s")
                body.append(f"{pad}P[{side}] = _g")
        else:  # OP_CSWAP
            c, a, b = cols
            body.append(f'{pad}_s = _take(P, {a}, axis=0, out=_scr[:{k}], mode="clip")')
            body.append(f'{pad}_s ^= _take(P, {b}, axis=0, out=_gath[:{k}], mode="clip")')
            body.append(f'{pad}_s &= _take(P, {c}, axis=0, out=_gath[:{k}], mode="clip")')
            if not full:
                body.append(f"{pad}_s &= {mask}")
            for side in (a, b):
                body.append(
                    f'{pad}_g = _take(P, {side}, axis=0, out=_gath[:{k}], mode="clip")'
                )
                body.append(f"{pad}_g ^= _s")
                body.append(f"{pad}P[{side}] = _g")

    def emit_scope(scope, depth: int) -> None:
        nonlocal max_depth
        pad = "    " * (depth + 1)
        mask = "_m0" if depth == 0 else f"_m{depth}"
        full = depth == 0
        for kind, item in scope.items:
            if kind == "run":
                emit_run(item, pad, mask, full)
            elif kind == "instr":
                op = item[0]
                if op == tc.OP_MZ:
                    q, b = item[1], item[2]
                    if full:
                        body.append(f"{pad}_np.copyto({bvar[b]}, {var[q]})")
                    else:
                        # b ^= (b ^ q) & mask: masked merge without ~mask
                        body.append(
                            f"{pad}_np.bitwise_xor({bvar[b]}, {var[q]}, out=_t)"
                        )
                        body.append(f"{pad}_t &= {mask}")
                        body.append(f"{pad}{bvar[b]} ^= _t")
                elif op == tc.OP_MX:
                    q, b = item[1], item[2]
                    body.append(f"{pad}_o = _pack(_sample(0.5, _batch))")
                    if full:
                        body.append(f"{pad}_np.copyto({var[q]}, _o)")
                        body.append(f"{pad}_np.copyto({bvar[b]}, _o)")
                    else:
                        for dst in (var[q], bvar[b]):
                            body.append(f"{pad}_np.bitwise_xor({dst}, _o, out=_t)")
                            body.append(f"{pad}_t &= {mask}")
                            body.append(f"{pad}{dst} ^= _t")
                elif op == tc.OP_NOISE:
                    q = item[1]
                    body.append(f"{pad}if _noise is not None:")
                    body.append(f"{pad}    _f = _pack(_noise(_batch))")
                    if not full:
                        body.append(f"{pad}    _f &= {mask}")
                    body.append(f"{pad}    {var[q]} ^= _f")
                else:
                    emit_gate(op, item[1:], pad, mask, full)
            else:  # nested scope
                max_depth = max(max_depth, depth + 1)
                sub = f"_m{depth + 1}"
                if item.kind == "cond":
                    bit, value = item.header
                    if value:
                        if full:
                            body.append(f"{pad}_np.copyto({sub}, {bvar[bit]})")
                        else:
                            body.append(
                                f"{pad}_np.bitwise_and({mask}, {bvar[bit]}, out={sub})"
                            )
                    else:
                        if full:
                            # bit rows never carry invalid lanes: m0 & ~b == b ^ m0
                            body.append(
                                f"{pad}_np.bitwise_xor({bvar[bit]}, _m0, out={sub})"
                            )
                        else:
                            body.append(
                                f"{pad}_np.bitwise_and({mask}, {bvar[bit]}, out={sub})"
                            )
                            body.append(
                                f"{pad}_np.bitwise_xor({sub}, {mask}, out={sub})"
                            )
                else:  # mbu
                    bit = item.header[1]
                    body.append(f"{pad}_o = _pack(_sample(0.5, _batch))")
                    if full:
                        body.append(f"{pad}_np.copyto({bvar[bit]}, _o)")
                        # _o is freshly packed: safe to own as the mask row
                        body.append(f"{pad}{sub} = _o")
                    else:
                        body.append(f"{pad}_np.bitwise_xor({bvar[bit]}, _o, out=_t)")
                        body.append(f"{pad}_t &= {mask}")
                        body.append(f"{pad}{bvar[bit]} ^= _t")
                        body.append(f"{pad}_np.bitwise_and({mask}, _o, out={sub})")
                body.append(f"{pad}if {sub}.any():")
                body_start = len(body)
                if events:
                    body.append(f"{pad}    _ev.append(({item.sid}, _mask_int({sub})))")
                emit_scope(item, depth + 1)
                if len(body) == body_start:
                    body.append(f"{pad}    pass")
                if item.kind == "mbu":
                    q = item.header[0]
                    # Both MBU branches leave the garbage qubit in |0>; the
                    # clear runs under the *outer* mask even when the whole
                    # branch body was skipped.
                    if full:
                        body.append(f"{pad}{var[q]}.fill(0)")
                    else:
                        body.append(f"{pad}_np.bitwise_and({var[q]}, {mask}, out=_t)")
                        body.append(f"{pad}{var[q]} ^= _t")

    emit_scope(fused.root, 0)
    moved = [q for q in sorted(used) if perm[q] != q]
    lines: List[str] = [
        f"def {func_name}(P, B, _m0, _batch, _sample, _ev, _noise, "
        "_S, _scr, _gath, _pack, _mask_int):"
    ]
    for q in sorted(used):
        lines.append(f"    _p{q} = P[{q}]")
    for b in sorted(used_bits):
        lines.append(f"    _b{b} = B[{b}]")
    lines.append("    _t = _S[0]")
    for d in range(1, max_depth + 1):
        lines.append(f"    _m{d} = _S[{d}]")
    if events:
        lines.append("    _ev.append((0, _mask_int(_m0)))")
    lines.extend(body)
    if moved:
        dst = bake(moved)
        src = bake([perm[q] for q in moved])
        lines.append(f"    P[{dst}] = P[{src}]")
        written = set(written) | set(moved)
    lines.append("    return None")
    source = "\n".join(lines) + "\n"
    meta = {
        "used_planes": tuple(sorted(used)),
        "written_planes": tuple(sorted(written)),
        "used_bits": tuple(sorted(used_bits)),
        "written_bits": tuple(sorted(written_bits)),
        "scratch_rows": 1 + max_depth,
        "max_run": max_run,
    }
    return source, consts, meta


def build_vector_kernel(fused, *, events: bool) -> Callable:
    """Compile (and return) the straight-line numpy kernel for ``fused``.

    One-time cost per (program, events) pair; cached by
    :meth:`~repro.transform.compile.FusedProgram.kernel` under
    ``kind="vector"``.  Exposes the same introspection attributes as
    :func:`build_kernel` (``__fused_source__``, ``__used_planes__``,
    ``__written_planes__``, ``__used_bits__``, ``__written_bits__``) plus
    ``__scratch_rows__`` (mask/temp rows the caller must provide in
    ``_S``) and ``__max_run__`` (rows needed in ``_scr``/``_gath``).
    Unlike the bigint kernels, execution happens directly on the
    simulator's resident numpy matrices — use :func:`run_fused_vector`.
    """
    source, consts, meta = _generate_vector(fused, events=events)
    namespace: Dict[str, Any] = {"_np": np, "_take": np.take}
    namespace.update(consts)
    exec(compile(source, f"<vector-kernel:{fused.source or 'circuit'}>", "exec"), namespace)
    fn = namespace["_vector_kernel"]
    fn.__fused_source__ = source
    fn.__used_planes__ = meta["used_planes"]
    fn.__written_planes__ = meta["written_planes"]
    fn.__used_bits__ = meta["used_bits"]
    fn.__written_bits__ = meta["written_bits"]
    fn.__scratch_rows__ = meta["scratch_rows"]
    fn.__max_run__ = meta["max_run"]
    return fn


def run_fused_vector(sim, fused, collect_events: bool) -> List[Tuple[int, int]]:
    """Execute ``fused``'s generated numpy kernel on ``sim``'s plane matrices.

    Scratch (mask rows plus run gather buffers) is cached on the simulator
    and grown monotonically, so Monte-Carlo repetition loops — which call
    ``reset()`` between runs — pay allocation once, not per run.  Returns
    the ``(scope_id, mask_int)`` tally events (empty when
    ``collect_events`` is false), the same protocol as the other fused
    paths.
    """
    kernel = fused.kernel(events=collect_events, kind="vector")
    words = sim.words
    dtype = sim.planes.dtype
    rows_needed = kernel.__scratch_rows__
    run_needed = max(kernel.__max_run__, 1)
    cached = getattr(sim, "_vector_scratch", None)
    if (
        cached is None
        or cached[0].shape[1] != words
        or cached[0].shape[0] < rows_needed
        or cached[1].shape[0] < run_needed
    ):
        if cached is not None and cached[0].shape[1] == words:
            rows_needed = max(rows_needed, cached[0].shape[0])
            run_needed = max(run_needed, cached[1].shape[0])
        scratch = np.empty((rows_needed, words), dtype=dtype)
        scr = np.empty((run_needed, words), dtype=dtype)
        gath = np.empty_like(scr)
        cached = (scratch, scr, gath)
        sim._vector_scratch = cached
    scratch, scr, gath = cached
    noise = sim._noise_lanes if sim._noise_stream is not None else None
    events: List[Tuple[int, int]] = []

    def pack(value: int) -> np.ndarray:
        return np.frombuffer(value.to_bytes(words * 8, "little"), dtype=dtype).copy()

    def mask_int(mask: np.ndarray) -> int:
        return int.from_bytes(np.ascontiguousarray(mask).tobytes(), "little")

    kernel(
        sim.planes, sim.bit_planes, sim._valid, sim.batch,
        sim.engine.sample_lanes, events, noise, scratch, scr, gath,
        pack, mask_int,
    )
    return events


# --------------------------------------------------------------------------- #
# stacked-plane numpy kernels (the literal gather/scatter strategy)


def fused_x(planes: np.ndarray, ops: np.ndarray, mask: np.ndarray) -> None:
    """k X gates: one fancy-indexed XOR over stacked planes."""
    planes[ops[:, 0]] ^= mask


def fused_cx(planes: np.ndarray, ops: np.ndarray, mask: np.ndarray) -> None:
    """k CX gates: gather controls, mask, scatter-XOR into targets."""
    planes[ops[:, 1]] ^= planes[ops[:, 0]] & mask


def fused_ccx(planes: np.ndarray, ops: np.ndarray, mask: np.ndarray) -> None:
    """k CCX gates: gather both control blocks, AND, scatter-XOR."""
    planes[ops[:, 2]] ^= planes[ops[:, 0]] & planes[ops[:, 1]] & mask


def fused_swap(planes: np.ndarray, ops: np.ndarray, mask: np.ndarray) -> None:
    """k SWAPs (pairwise-disjoint by the write-conflict check)."""
    a, b = ops[:, 0], ops[:, 1]
    delta = (planes[a] ^ planes[b]) & mask
    planes[a] ^= delta
    planes[b] ^= delta


def fused_cswap(planes: np.ndarray, ops: np.ndarray, mask: np.ndarray) -> None:
    """k CSWAPs under their control planes."""
    c, a, b = ops[:, 0], ops[:, 1], ops[:, 2]
    delta = (planes[a] ^ planes[b]) & mask & planes[c]
    planes[a] ^= delta
    planes[b] ^= delta


# Plan step codes.  A plan is a flat tuple of (code, p1, p2) steps compiled
# once per program (cached on ``FusedProgram._arrays_plan``): branch scopes
# become skip offsets, superinstruction operand columns become contiguous
# index arrays, and the executor below runs the whole thing with integer
# dispatch, preallocated scratch, and no ``& mask`` at branch depth 0 (the
# same full-mask elision the generated bigint kernels perform).
_A_RUN_X, _A_RUN_CX, _A_RUN_CCX, _A_RUN_SWAP, _A_RUN_CSWAP = range(5)
_A_X, _A_CX, _A_CCX, _A_SWAP, _A_CSWAP, _A_MZ, _A_MX = range(5, 12)
_A_COND, _A_MBU, _A_EXIT, _A_MBU_CLEAR = range(12, 16)
_A_NOISE = 16

_RUN_CODE = {}  # opcode -> plan code, filled lazily (transform import)


def _build_arrays_plan(fused) -> Tuple[Tuple, int]:
    """Flatten ``fused``'s scope tree into executor steps (see above)."""
    tc = _opcodes()
    if not _RUN_CODE:
        _RUN_CODE.update({
            tc.OP_X: _A_RUN_X, tc.OP_CX: _A_RUN_CX, tc.OP_CCX: _A_RUN_CCX,
            tc.OP_SWAP: _A_RUN_SWAP, tc.OP_CSWAP: _A_RUN_CSWAP,
        })
    steps: List[Any] = []
    max_run = 0

    def emit(scope) -> None:
        nonlocal max_run
        for kind, item in scope.items:
            if kind == "run":
                ops = item.operands
                max_run = max(max_run, item.count)
                cols = tuple(
                    np.ascontiguousarray(ops[:, i]) for i in range(ops.shape[1])
                )
                steps.append((_RUN_CODE[item.opcode], cols, item.count))
            elif kind == "instr":
                op = item[0]
                if op == tc.OP_X:
                    steps.append((_A_X, item[1], None))
                elif op == tc.OP_CX:
                    steps.append((_A_CX, item[1], item[2]))
                elif op == tc.OP_CCX:
                    steps.append((_A_CCX, (item[1], item[2]), item[3]))
                elif op == tc.OP_SWAP:
                    steps.append((_A_SWAP, item[1], item[2]))
                elif op == tc.OP_CSWAP:
                    steps.append((_A_CSWAP, item[1], (item[2], item[3])))
                elif op == tc.OP_MZ:
                    steps.append((_A_MZ, item[1], item[2]))
                elif op == tc.OP_NOISE:
                    steps.append((_A_NOISE, item[1], None))
                else:  # OP_MX
                    steps.append((_A_MX, item[1], item[2]))
            else:  # nested scope: entry placeholder, body, exit (+ MBU clear)
                entry = len(steps)
                steps.append(None)
                emit(item)
                steps.append((_A_EXIT, None, None))
                if item.kind == "cond":
                    # Empty masks skip to just past the EXIT.
                    steps[entry] = (_A_COND, item.header, (len(steps), item.sid))
                else:
                    # Empty masks still clear the garbage qubit, so skip
                    # lands *on* the clear step (which runs under the outer
                    # mask either way).
                    clear_at = len(steps)
                    steps.append((_A_MBU_CLEAR, item.header[0], None))
                    steps[entry] = (_A_MBU, item.header, (clear_at, item.sid))

    emit(fused.root)
    return tuple(steps), max_run


def run_fused_arrays(sim, fused, collect_events: bool) -> List[Tuple[int, int]]:
    """Execute ``fused`` directly on ``sim``'s numpy plane matrices.

    Runs the flat step plan compiled by :func:`_build_arrays_plan` (built
    once per program, cached like the generated kernels): superinstructions
    gather via ``np.take`` into preallocated scratch, combine with in-place
    bitwise ufuncs, and scatter once; single gates operate on plane *row
    views* with ``out=`` so the steady state allocates nothing; and depth-0
    steps elide the ``& mask`` entirely (plane integers never carry bits at
    or above ``batch``).  Returns the ``(scope_id, mask_int)`` tally events
    (empty when ``collect_events`` is false).
    """
    plan = getattr(fused, "_arrays_plan", None)
    if plan is None:
        plan = _build_arrays_plan(fused)
        fused._arrays_plan = plan
    steps, max_run = plan
    planes = sim.planes
    bit_planes = sim.bit_planes
    batch = sim.batch
    words = sim.words
    dtype = planes.dtype
    sample = sim.engine.sample_lanes
    noise = sim._noise_lanes if sim._noise_stream is not None else None
    rows = list(planes)  # per-qubit row views: in-place ops, no gathers
    brows = list(bit_planes)
    valid = sim._valid
    # Scratch is cached on the simulator and grown monotonically: reset()
    # zeroes state in place but leaves these, so mc repetition loops pay
    # allocation once, not per run.
    run_needed = max(max_run, 1)
    cached = getattr(sim, "_arrays_scratch", None)
    if (
        cached is None
        or cached[0].shape[0] != words
        or cached[1].shape[0] < run_needed
    ):
        if cached is not None and cached[0].shape[0] == words:
            run_needed = max(run_needed, cached[1].shape[0])
        tmp = np.empty(words, dtype=dtype)
        scr = np.empty((run_needed, words), dtype=dtype)
        gather = np.empty_like(scr)
        cached = (tmp, scr, gather)
        sim._arrays_scratch = cached
    tmp, scr, gather = cached
    take = np.take
    events: List[Tuple[int, int]] = []

    def pack(value: int) -> np.ndarray:
        return np.frombuffer(value.to_bytes(words * 8, "little"), dtype=dtype).copy()

    def mask_int(mask: np.ndarray) -> int:
        return int.from_bytes(np.ascontiguousarray(mask).tobytes(), "little")

    if collect_events:
        events.append((0, mask_int(valid)))

    mask = valid
    stack: List[np.ndarray] = []
    full = True
    i = 0
    n = len(steps)
    while i < n:
        code, p1, p2 = steps[i]
        i += 1
        if code == _A_CX:
            if full:
                np.bitwise_xor(rows[p2], rows[p1], out=rows[p2])
            else:
                np.bitwise_and(rows[p1], mask, out=tmp)
                rows[p2] ^= tmp
        elif code == _A_CCX:
            np.bitwise_and(rows[p1[0]], rows[p1[1]], out=tmp)
            if not full:
                tmp &= mask
            rows[p2] ^= tmp
        elif code == _A_RUN_CX:
            s = take(planes, p1[0], axis=0, out=scr[:p2], mode="clip")
            if not full:
                s &= mask
            t = take(planes, p1[1], axis=0, out=gather[:p2], mode="clip")
            t ^= s
            planes[p1[1]] = t
        elif code == _A_RUN_CCX:
            s = take(planes, p1[0], axis=0, out=scr[:p2], mode="clip")
            s &= take(planes, p1[1], axis=0, out=gather[:p2], mode="clip")
            if not full:
                s &= mask
            t = take(planes, p1[2], axis=0, out=gather[:p2], mode="clip")
            t ^= s
            planes[p1[2]] = t
        elif code == _A_X:
            rows[p1] ^= mask
        elif code == _A_RUN_X:
            planes[p1[0]] ^= mask
        elif code == _A_SWAP:
            np.bitwise_xor(rows[p1], rows[p2], out=tmp)
            if not full:
                tmp &= mask
            rows[p1] ^= tmp
            rows[p2] ^= tmp
        elif code == _A_RUN_SWAP:
            s = take(planes, p1[0], axis=0, out=scr[:p2], mode="clip")
            s ^= take(planes, p1[1], axis=0, out=gather[:p2], mode="clip")
            if not full:
                s &= mask
            t = take(planes, p1[0], axis=0, out=gather[:p2], mode="clip")
            t ^= s
            planes[p1[0]] = t
            t = take(planes, p1[1], axis=0, out=gather[:p2], mode="clip")
            t ^= s
            planes[p1[1]] = t
        elif code == _A_CSWAP:
            a, b = p2
            np.bitwise_xor(rows[a], rows[b], out=tmp)
            tmp &= rows[p1]
            if not full:
                tmp &= mask
            rows[a] ^= tmp
            rows[b] ^= tmp
        elif code == _A_RUN_CSWAP:
            s = take(planes, p1[1], axis=0, out=scr[:p2], mode="clip")
            s ^= take(planes, p1[2], axis=0, out=gather[:p2], mode="clip")
            s &= take(planes, p1[0], axis=0, out=gather[:p2], mode="clip")
            if not full:
                s &= mask
            t = take(planes, p1[1], axis=0, out=gather[:p2], mode="clip")
            t ^= s
            planes[p1[1]] = t
            t = take(planes, p1[2], axis=0, out=gather[:p2], mode="clip")
            t ^= s
            planes[p1[2]] = t
        elif code == _A_MZ:
            if full:
                np.copyto(brows[p2], rows[p1])
            else:
                # b = b ^ ((b ^ q) & mask): masked merge without ~mask
                np.bitwise_xor(brows[p2], rows[p1], out=tmp)
                tmp &= mask
                brows[p2] ^= tmp
        elif code == _A_MX:
            outcome = pack(sample(0.5, batch))
            if full:
                np.copyto(rows[p1], outcome)
                np.copyto(brows[p2], outcome)
            else:
                np.bitwise_xor(rows[p1], outcome, out=tmp)
                tmp &= mask
                rows[p1] ^= tmp
                np.bitwise_xor(brows[p2], outcome, out=tmp)
                tmp &= mask
                brows[p2] ^= tmp
        elif code == _A_COND:
            bit, value = p1
            sub = mask & brows[bit]
            if not value:
                sub ^= mask  # mask & ~b, since (mask & b) ⊆ mask
            if sub.any():
                stack.append(mask)
                mask = sub
                full = False
                if collect_events:
                    events.append((p2[1], mask_int(sub)))
            else:
                i = p2[0]
        elif code == _A_MBU:
            q, bit = p1
            outcome = pack(sample(0.5, batch))
            if full:
                np.copyto(brows[bit], outcome)
                sub = outcome  # freshly packed: safe to own as the mask
            else:
                np.bitwise_xor(brows[bit], outcome, out=tmp)
                tmp &= mask
                brows[bit] ^= tmp
                sub = mask & outcome
            if sub.any():
                stack.append(mask)
                mask = sub
                full = False
                if collect_events:
                    events.append((p2[1], mask_int(sub)))
            else:
                i = p2[0]
        elif code == _A_NOISE:
            # Bit-flip channel point: plan steps always exist; the draw is
            # skipped at run time when the channel is disabled.
            if noise is not None:
                flips = pack(noise(batch))
                if not full:
                    flips &= mask
                rows[p1] ^= flips
        elif code == _A_EXIT:
            mask = stack.pop()
            full = not stack
        else:  # _A_MBU_CLEAR: both branches leave the garbage qubit in |0>
            if full:
                rows[p1].fill(0)
            else:
                np.bitwise_and(rows[p1], mask, out=tmp)
                rows[p1] ^= tmp
    return events
