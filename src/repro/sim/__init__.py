"""Simulators: dense statevector (ground truth) and classical basis-state."""

from .classical import ClassicalSimulator, UnsupportedGateError, run_classical
from .outcomes import (
    ConstantOutcomes,
    ForcedOutcomes,
    ImpossibleOutcomeError,
    OutcomeProvider,
    RandomOutcomes,
)
from .statevector import StatevectorSimulator, run_statevector

__all__ = [
    "ClassicalSimulator",
    "StatevectorSimulator",
    "UnsupportedGateError",
    "run_classical",
    "run_statevector",
    "OutcomeProvider",
    "RandomOutcomes",
    "ForcedOutcomes",
    "ConstantOutcomes",
    "ImpossibleOutcomeError",
]
