"""Simulators for the circuit IR, all built on one execution core.

Entry point
-----------
:func:`simulate` dispatches to a named backend through a registry
(:func:`register_backend` adds new ones without touching call sites)::

    from repro.modular import build_modadd
    from repro.sim import simulate

    built = build_modadd(4, 13, family="cdkpm", mbu=True)
    simulate(built.circuit, {"x": 3, "y": 4}).registers["y"]    # 7
    simulate(built.circuit, {"x": 3, "y": [4, 5]},              # [7, 8]
             backend="bitplane", batch=2).registers["y"]

Backends
--------
``statevector`` (:class:`StatevectorSimulator`)
    Dense ground truth: every op executed literally, projective
    measurement, classical feed-forward.  Practical to ~20 qubits.
``classical`` (:class:`ClassicalSimulator`)
    One computational-basis input, one bit per qubit; exact for the
    reversible + measurement-based circuits of the paper at any width.
``bitplane`` (:class:`BitplaneSimulator`)
    ``batch`` basis-input lanes at once, one packed ``uint64`` bit-plane
    per qubit — exhaustive small-``n`` verification and large-scale
    Monte-Carlo estimation of expected MBU costs in a single pass.
``auto``
    The calibrated cost model (:mod:`repro.sim.dispatch.cost`) picks the
    cheapest capable strategy — classical, interpretive bitplane, compiled
    scalar, fused codegen/arrays/vector, or lane-sharded parallel execution
    (:func:`repro.sim.dispatch.run_sharded`) — for the given
    (ops, batch, tally, cores).

All three are :class:`~repro.sim.engine.ExecutionBackend` implementations
driven by :class:`~repro.sim.engine.ExecutionEngine`, which owns the
op-stream recursion, the executed-gate tally and the measurement-outcome
provider; the resource counters in :mod:`repro.circuits.resources` ride
the same walker.
"""

from .api import SimulationResult, available_backends, register_backend, simulate
from .bitplane import BitplaneSimulator, LaneTallyStats, run_bitplane
from .dispatch import (
    ShardPool,
    ShardedResult,
    noise_is_flat,
    program_is_flat,
    run_sharded,
    shard_ranges,
)
from .classical import ClassicalSimulator, UnsupportedGateError, run_classical
from .engine import (
    EXECUTE,
    SKIP,
    BranchDecision,
    ExecutionBackend,
    ExecutionEngine,
)
from .outcomes import (
    ConstantOutcomes,
    ForcedOutcomes,
    ImpossibleOutcomeError,
    OutcomeProvider,
    RandomOutcomes,
)
from .statevector import StatevectorSimulator, run_statevector
from .strategies import FUSED_KERNELS, KERNEL_CHOICES, LADDER, validate_kernels

__all__ = [
    "simulate",
    "register_backend",
    "available_backends",
    "SimulationResult",
    "ExecutionEngine",
    "ExecutionBackend",
    "BranchDecision",
    "EXECUTE",
    "SKIP",
    "ClassicalSimulator",
    "StatevectorSimulator",
    "BitplaneSimulator",
    "LaneTallyStats",
    "UnsupportedGateError",
    "run_classical",
    "run_statevector",
    "run_bitplane",
    "run_sharded",
    "ShardPool",
    "ShardedResult",
    "shard_ranges",
    "program_is_flat",
    "noise_is_flat",
    "OutcomeProvider",
    "RandomOutcomes",
    "ForcedOutcomes",
    "ConstantOutcomes",
    "ImpossibleOutcomeError",
    "FUSED_KERNELS",
    "KERNEL_CHOICES",
    "LADDER",
    "validate_kernels",
]
