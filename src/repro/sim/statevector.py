"""Dense statevector simulation with mid-circuit measurement and feedback.

This is the ground-truth simulator: it executes every operation literally
(including Hadamards inside MBU correction bodies), supports projective
measurement with pluggable outcome providers, and classical feed-forward.
Practical up to ~20 qubits, which covers every construction in the paper at
small register sizes.

Like the classical simulator, it is an
:class:`~repro.sim.engine.ExecutionBackend`: the shared
:class:`~repro.sim.engine.ExecutionEngine` owns recursion, tallying and
outcome sampling, while this class applies unitaries and projections.

Index convention: basis state ``|b_{n-1} ... b_1 b_0>`` has amplitude at
flat index ``sum_i b_i 2**i`` — qubit ``i`` is bit ``i`` (little-endian,
matching :class:`~repro.circuits.circuit.Register`).
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.ops import Conditional, Gate, MBUBlock, Measurement
from .engine import EXECUTE, SKIP, BranchDecision, ExecutionBackend, ExecutionEngine
from .outcomes import OutcomeProvider

__all__ = ["StatevectorSimulator", "run_statevector"]

_SQ2 = 1.0 / math.sqrt(2.0)

_MATRICES: Dict[str, np.ndarray] = {
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "z": np.array([[1, 0], [0, -1]], dtype=complex),
    "h": np.array([[_SQ2, _SQ2], [_SQ2, -_SQ2]], dtype=complex),
    "s": np.array([[1, 0], [0, 1j]], dtype=complex),
    "sdg": np.array([[1, 0], [0, -1j]], dtype=complex),
    "t": np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex),
    "tdg": np.array([[1, 0], [0, np.exp(-1j * math.pi / 4)]], dtype=complex),
}


def _gate_matrix(gate: Gate) -> np.ndarray:
    """Dense matrix for a gate, in qubit order ``gate.qubits`` (q0 = LSB)."""
    name = gate.name
    if name in _MATRICES:
        return _MATRICES[name]
    if name == "phase":
        return np.diag([1.0, np.exp(1j * gate.param)])
    if name == "rz":
        return np.diag([np.exp(-0.5j * gate.param), np.exp(0.5j * gate.param)])
    if name == "cx":
        m = np.eye(4, dtype=complex)
        # qubit order (control, target): control is bit 0 of the local index
        m[[1, 3]] = m[[3, 1]]
        return m
    if name == "cz":
        return np.diag([1, 1, 1, -1]).astype(complex)
    if name == "swap":
        m = np.eye(4, dtype=complex)
        m[[1, 2]] = m[[2, 1]]
        return m
    if name == "cphase":
        return np.diag([1, 1, 1, np.exp(1j * gate.param)])
    if name == "ccx":
        m = np.eye(8, dtype=complex)
        # controls are local bits 0,1; target is local bit 2
        m[[3, 7]] = m[[7, 3]]
        return m
    if name == "ccz":
        d = np.ones(8, dtype=complex)
        d[7] = -1
        return np.diag(d)
    if name == "ccphase":
        d = np.ones(8, dtype=complex)
        d[7] = np.exp(1j * gate.param)
        return np.diag(d)
    if name == "cswap":
        m = np.eye(8, dtype=complex)
        # control = local bit 0; swap local bits 1 and 2: indices 0b011 <-> 0b101
        m[[3, 5]] = m[[5, 3]]
        return m
    raise ValueError(f"no matrix for gate {name!r}")  # pragma: no cover


class StatevectorSimulator(ExecutionBackend):
    """Execute a circuit on a dense statevector."""

    MAX_QUBITS = 26

    def __init__(
        self,
        circuit: Circuit,
        outcomes: OutcomeProvider | None = None,
        tally: bool = True,
        noise=None,
    ) -> None:
        if circuit.num_qubits > self.MAX_QUBITS:
            raise ValueError(
                f"{circuit.num_qubits} qubits exceeds the dense-simulation "
                f"limit of {self.MAX_QUBITS}"
            )
        self.circuit = circuit
        self.n = circuit.num_qubits
        self.state = np.zeros(1 << self.n, dtype=complex)
        self.state[0] = 1.0
        self.bits: List[int] = [0] * circuit.num_bits
        # Bit-flip channel at annotated noise points (duck-typed config with
        # .rate/.seed, e.g. repro.noise.NoiseConfig); rate 0 draws nothing.
        self._noise_rate = 0.0
        self._noise_stream: OutcomeProvider | None = None
        if noise is not None:
            rate = float(noise.rate)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"noise rate must lie in [0, 1], got {rate}")
            if rate > 0.0:
                from .outcomes import RandomOutcomes

                self._noise_rate = rate
                self._noise_stream = RandomOutcomes(int(noise.seed))
        self.engine = ExecutionEngine(self, outcomes=outcomes, tally=tally)

    # -- preparation ----------------------------------------------------------

    def set_basis_state(self, values: Mapping[str, int]) -> None:
        """Prepare the basis state given by per-register integer values."""
        index = 0
        for name, value in values.items():
            reg = self.circuit.registers[name]
            if value < 0 or value >= (1 << len(reg)):
                raise ValueError(f"value {value} does not fit register {name!r}")
            for i, q in enumerate(reg.qubits):
                index |= ((value >> i) & 1) << q
        self.state[:] = 0.0
        self.state[index] = 1.0

    def set_state(self, vector: np.ndarray) -> None:
        vector = np.asarray(vector, dtype=complex)
        if vector.shape != self.state.shape:
            raise ValueError("state vector has the wrong dimension")
        norm = np.linalg.norm(vector)
        if not math.isclose(norm, 1.0, rel_tol=0, abs_tol=1e-9):
            raise ValueError("state vector must be normalised")
        self.state = vector.copy()

    # -- execution ------------------------------------------------------------

    def run(self) -> "StatevectorSimulator":
        self.engine.execute(self.circuit.ops)
        return self

    # -- ExecutionBackend handlers --------------------------------------------

    def apply_gate(self, gate: Gate) -> None:
        self._apply_gate(gate)

    def apply_measurement(self, meas: Measurement) -> None:
        if meas.basis == "x":
            self._apply_gate(Gate("h", (meas.qubit,)))
        self.bits[meas.bit] = self._project(meas.qubit)

    def enter_conditional(self, cond: Conditional) -> BranchDecision:
        return EXECUTE if self.bits[cond.bit] == cond.value else SKIP

    def annotation(self, ann) -> None:
        # Bit-flip channel point: apply X with probability rate (one draw
        # per reached point, matching the classical backend's stream).
        if ann.kind == "noise" and self._noise_stream is not None:
            if self._noise_stream.sample(self._noise_rate):
                self._apply_gate(Gate("x", (int(ann.label),)))

    def enter_mbu(self, block: MBUBlock) -> BranchDecision:
        # The implicit X-basis measurement of Lemma 4.1 (H is applied here
        # literally; the engine has already tallied it as 1 h + 1 measure).
        self._apply_gate(Gate("h", (block.qubit,)))
        outcome = self._project(block.qubit)
        self.bits[block.bit] = outcome
        return BranchDecision(outcome == 1)

    # -- unitary / projective machinery ----------------------------------------

    def _apply_gate(self, gate: Gate) -> None:
        qubits = gate.qubits
        k = len(qubits)
        matrix = _gate_matrix(gate)
        # View the state as a rank-n tensor; axis j corresponds to qubit
        # (n-1-j) because numpy reshape is C-ordered (row-major).
        tensor = self.state.reshape([2] * self.n)
        axes = [self.n - 1 - q for q in qubits]
        # Move the gate's qubits to the front, LSB (qubits[0]) innermost.
        # After moveaxis the leading axes are ordered qubits[::-1], so the
        # flattened local index is sum_i b_{qubits[i]} << i — matching the
        # matrix convention of _gate_matrix.
        order = [axes[i] for i in reversed(range(k))]
        tensor = np.moveaxis(tensor, order, range(k))
        shape = tensor.shape
        flat = tensor.reshape(1 << k, -1)
        flat = matrix @ flat
        tensor = flat.reshape(shape)
        tensor = np.moveaxis(tensor, range(k), order)
        self.state = np.ascontiguousarray(tensor).reshape(-1)

    def _prob_one(self, qubit: int) -> float:
        tensor = self.state.reshape([2] * self.n)
        axis = self.n - 1 - qubit
        tensor = np.moveaxis(tensor, axis, 0)
        return float(np.sum(np.abs(tensor[1]) ** 2))

    def _project(self, qubit: int) -> int:
        p_one = self._prob_one(qubit)
        outcome = self.engine.sample(p_one)
        tensor = self.state.reshape([2] * self.n).copy()
        axis = self.n - 1 - qubit
        tensor = np.moveaxis(tensor, axis, 0)
        tensor[1 - outcome] = 0.0
        tensor = np.moveaxis(tensor, 0, axis)
        state = tensor.reshape(-1)
        norm = np.linalg.norm(state)
        if norm < 1e-12:  # pragma: no cover - forced impossible outcome
            raise RuntimeError("projective measurement produced a null state")
        self.state = state / norm
        return outcome

    # -- inspection -------------------------------------------------------------

    def probability_one(self, qubit: int) -> float:
        return self._prob_one(qubit)

    def register_values(
        self, registers: Sequence[str] | None = None, tol: float = 1e-9
    ) -> Dict[Tuple[int, ...], complex]:
        """Joint register-value amplitudes of the current state.

        Returns ``{(v_reg1, v_reg2, ...): amplitude}`` over basis states with
        |amplitude| > tol.  Basis states that differ only outside the listed
        registers are rejected (a ValueError) if they carry amplitude, since
        that would mean the hidden qubits are entangled with the listed ones.
        """
        names = list(registers or self.circuit.registers)
        regs = [self.circuit.registers[name] for name in names]
        listed = {q for reg in regs for q in reg.qubits}
        hidden = [q for q in range(self.n) if q not in listed]
        out: Dict[Tuple[int, ...], complex] = {}
        for index, amp in enumerate(self.state):
            if abs(amp) <= tol:
                continue
            if any((index >> q) & 1 for q in hidden):
                raise ValueError(
                    f"basis state {index:0{self.n}b} has amplitude {amp:.3g} on "
                    "a qubit outside the listed registers (garbage not cleaned?)"
                )
            key = tuple(
                sum(((index >> q) & 1) << i for i, q in enumerate(reg.qubits))
                for reg in regs
            )
            out[key] = out.get(key, 0.0) + amp
        return out


def run_statevector(
    circuit: Circuit,
    inputs: Mapping[str, int] | None = None,
    outcomes: OutcomeProvider | None = None,
) -> StatevectorSimulator:
    """Prepare a basis state, run, and return the simulator."""
    sim = StatevectorSimulator(circuit, outcomes=outcomes)
    if inputs:
        sim.set_basis_state(inputs)
    sim.run()
    return sim
