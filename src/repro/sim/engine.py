"""The shared execution core: one op-stream walker, many backends.

Every consumer of the circuit IR — the statevector simulator, the classical
basis-state simulator, the batch bit-plane simulator, and the resource
counters — used to hand-roll the same ``isinstance`` recursion over
``Gate`` / ``Measurement`` / ``Conditional`` / ``MBUBlock`` / ``Annotation``.
This module centralises that walk:

* :class:`ExecutionEngine` owns the recursion, the gate tally (a
  :class:`~repro.circuits.resources.GateCounts` weighted by the current
  branch weight) and the :class:`~repro.sim.outcomes.OutcomeProvider`
  plumbing.
* :class:`ExecutionBackend` is the visitor protocol a backend implements:
  state handlers for gates and measurements, plus *branch decisions* for
  conditionals and MBU blocks.  A backend never recurses itself — it tells
  the engine whether (and at what tally weight) to descend into a body via
  a :class:`BranchDecision`.

Branch weights
--------------
``BranchDecision.weight`` is a multiplier on the tally weight of everything
inside the body.  Simulators use weight 1 (a branch either runs or it does
not), the resource counters use the mode/probability weight (this is how
``expected`` counting weighs each MBU correction by 1/2), and the bit-plane
batch simulator uses the fraction of still-active lanes — so its tally is
the *average* per-lane executed gate count.

Backends subclass :class:`ExecutionBackend` for the no-op defaults and the
``outcomes``/``tally`` delegating properties, though any object with the
handler methods works.  This module depends only on the leaf
:mod:`repro.circuits.counts` (not :mod:`repro.circuits.resources`), so the
resource counters can in turn be built on the engine without a circular
import.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional, Sequence

from ..circuits.ops import (
    Annotation,
    Conditional,
    Gate,
    MBUBlock,
    Measurement,
    Operation,
)
from ..circuits.counts import GateCounts
from .outcomes import OutcomeProvider, RandomOutcomes

__all__ = [
    "BranchDecision",
    "EXECUTE",
    "SKIP",
    "ExecutionBackend",
    "ExecutionEngine",
]

_ONE = Fraction(1)


class BranchDecision:
    """A backend's verdict on a ``Conditional``/``MBUBlock`` body.

    ``execute``
        Whether the engine should walk the body at all.
    ``weight``
        Tally-weight multiplier for operations inside the body (relative to
        the enclosing context).
    ``token``
        Opaque backend state returned to the matching ``exit_*`` hook.
    """

    __slots__ = ("execute", "weight", "token")

    def __init__(self, execute: bool, weight: Fraction = _ONE, token=None) -> None:
        self.execute = execute
        self.weight = weight
        self.token = token

    def __repr__(self) -> str:  # pragma: no cover
        return f"BranchDecision(execute={self.execute}, weight={self.weight})"


#: Shared decisions for the two all-or-nothing cases.
EXECUTE = BranchDecision(True)
SKIP = BranchDecision(False)


class ExecutionBackend:
    """Visitor protocol over circuit operations (state handlers only).

    The engine walks the op stream and calls these hooks; the backend holds
    the simulation/analysis state.  ``enter_conditional``/``enter_mbu``
    return a :class:`BranchDecision`; the engine walks the body iff
    ``decision.execute``.  ``exit_conditional`` runs only when the body was
    walked; ``exit_mbu`` runs *always* (MBU semantics reset the garbage
    qubit on both branches).
    """

    engine: "ExecutionEngine"

    @property
    def outcomes(self) -> OutcomeProvider:
        """The bound engine's measurement-outcome provider."""
        return self.engine.outcomes

    @property
    def tally(self) -> Optional[GateCounts]:
        """The bound engine's executed-gate tally (None when disabled)."""
        return self.engine.tally

    def apply_gate(self, gate: Gate) -> None:
        raise NotImplementedError

    def apply_measurement(self, meas: Measurement) -> None:
        raise NotImplementedError

    def enter_conditional(self, cond: Conditional) -> BranchDecision:
        return EXECUTE

    def exit_conditional(self, cond: Conditional, decision: BranchDecision) -> None:
        pass

    def enter_mbu(self, block: MBUBlock) -> BranchDecision:
        return EXECUTE

    def exit_mbu(self, block: MBUBlock, decision: BranchDecision) -> None:
        pass

    def annotation(self, ann: Annotation) -> None:
        pass


class ExecutionEngine:
    """Walk an operation stream, driving a backend.

    Owns the three cross-cutting concerns every walker used to duplicate:

    * recursion into ``Conditional``/``MBUBlock`` bodies;
    * the executed-gate tally (``GateCounts`` weighted by branch weight;
      an X-basis measurement is 1 ``h`` + 1 ``measure``, an MBU block adds
      the same for its implicit X-basis measurement);
    * measurement-outcome sampling via an :class:`OutcomeProvider`
      (:meth:`sample` for a single outcome, :meth:`sample_lanes` for a
      batch bitmask).
    """

    def __init__(
        self,
        backend: ExecutionBackend,
        outcomes: OutcomeProvider | None = None,
        tally: bool = True,
    ) -> None:
        self.backend = backend
        self.outcomes = outcomes or RandomOutcomes(0)
        self.tally: Optional[GateCounts] = GateCounts() if tally else None
        self._weights = [_ONE]
        backend.engine = self

    # -- outcome plumbing --------------------------------------------------

    def sample(self, p_one: float) -> int:
        return self.outcomes.sample(p_one)

    def sample_lanes(self, p_one: float, lanes: int) -> int:
        return self.outcomes.sample_lanes(p_one, lanes)

    # -- tally -------------------------------------------------------------

    @property
    def weight(self) -> Fraction:
        """Tally weight of the current branch context."""
        return self._weights[-1]

    def record(self, name: str) -> None:
        if self.tally is not None:
            self.tally.add(name, self._weights[-1])

    # -- the walk ----------------------------------------------------------

    def execute(self, ops: Sequence[Operation]) -> None:
        backend = self.backend
        for op in ops:
            if isinstance(op, Gate):
                self.record(op.name)
                backend.apply_gate(op)
            elif isinstance(op, Measurement):
                if op.basis == "x":
                    self.record("h")
                self.record("measure")
                backend.apply_measurement(op)
            elif isinstance(op, Conditional):
                decision = backend.enter_conditional(op)
                if decision.execute:
                    self._descend(op.body, decision.weight)
                    backend.exit_conditional(op, decision)
            elif isinstance(op, MBUBlock):
                self.record("h")  # the X-basis measurement's Hadamard
                self.record("measure")
                decision = backend.enter_mbu(op)
                if decision.execute:
                    self._descend(op.body, decision.weight)
                backend.exit_mbu(op, decision)
            elif isinstance(op, Annotation):
                backend.annotation(op)
            else:  # pragma: no cover
                raise TypeError(f"unknown operation {op!r}")

    def _descend(self, body: Sequence[Operation], weight: Fraction) -> None:
        if weight == 1:
            self.execute(body)
            return
        self._weights.append(self._weights[-1] * weight)
        try:
            self.execute(body)
        finally:
            self._weights.pop()
