"""Vectorized batch (bit-plane) simulation of reversible circuits.

The classical basis-state simulator handles one input per run; validating
the paper's *expected* MBU costs — every correction branch fires with
probability 1/2 — needs thousands of basis-input runs.  This backend
simulates ``batch`` independent basis-input *lanes* simultaneously by
storing one bit-plane per qubit: a ``numpy`` ``uint64`` array in which bit
``b`` of word ``b // 64`` is the qubit's value in lane ``b``.  Every
reversible gate then becomes a handful of whole-word bitwise operations:

=========  ==========================================================
``x``      ``plane[q] ^= m``
``cx``     ``plane[t] ^= plane[c] & m``
``ccx``    ``plane[t] ^= plane[c1] & plane[c2] & m``
``swap``   xor-swap of the two planes under ``m``
``cswap``  xor-swap under ``m & plane[c]``
=========  ==========================================================

where ``m`` is the *active-lane mask*: conditionals and MBU correction
branches do not fork control flow, they narrow ``m`` to the lanes whose
classical bit (or measurement outcome) selects the body.  Per-lane
measurement outcomes come from
:meth:`~repro.sim.outcomes.OutcomeProvider.sample_lanes`, so a
:class:`~repro.sim.outcomes.ForcedOutcomes` script is shared by every lane
(one script entry per measurement event) while
:class:`~repro.sim.outcomes.RandomOutcomes` draws lanes independently —
one run is a ``batch``-sample Monte-Carlo experiment.

Tally semantics: the engine weights each operation by the fraction of
lanes that execute it, so ``sim.tally`` is the *average per-lane* executed
gate count — directly comparable to the paper's expected-cost formulas.
Passing ``lane_counts=("ccx", "ccz")`` additionally keeps an exact
*per-lane* executed-gate counter for the named gates, turning one run into
``batch`` i.i.d. cost samples: :meth:`BitplaneSimulator.lane_tally_stats`
reports their mean (a :class:`~fractions.Fraction`, equal to the engine
tally), sample variance and standard error — the raw material for the
pipeline's Monte-Carlo confidence intervals.

Like the classical simulator, diagonal/phase gates are value-preserving
no-ops on basis states (per-lane phases are not tracked at all here — not
even a global one) and a bare Hadamard raises
:class:`~repro.sim.classical.UnsupportedGateError`; MBU correction bodies
follow the same garbage-qubit algebra as ``repro.sim.classical``.

Bit-plane words use an explicit little-endian ``uint64`` dtype so lane
``b`` always maps to bit ``b % 64`` of word ``b // 64``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, List, Mapping, Sequence, Union

import numpy as np

from ..circuits.circuit import Circuit, Register
from ..circuits.counts import GateCounts
from ..circuits.ops import PHASE_ONLY_GATES, Conditional, Gate, MBUBlock, Measurement
from .classical import UnsupportedGateError, garbage_gate_skips
from .engine import BranchDecision, ExecutionBackend, ExecutionEngine
from .outcomes import OutcomeProvider, RandomOutcomes

__all__ = ["BitplaneSimulator", "run_bitplane", "LaneValues", "LaneTallyStats"]

_DTYPE = np.dtype("<u8")  # little-endian uint64: lane b = bit b%64 of word b//64

#: Per-lane register values accepted by ``set_register`` / returned lane lists.
LaneValues = Union[int, Sequence[int]]

# Gates that only kick phases on computational-basis states.
_PHASE_ONLY = PHASE_ONLY_GATES

if hasattr(np, "bitwise_count"):
    def _popcount(plane: np.ndarray) -> int:
        return int(np.bitwise_count(plane).sum())
else:  # pragma: no cover - numpy < 2.0
    def _popcount(plane: np.ndarray) -> int:
        return sum(int(w).bit_count() for w in plane)


def _pack_int(value: int, words: int) -> np.ndarray:
    """An arbitrary-precision bitmask as a (words,) plane (bit b = lane b)."""
    return np.frombuffer(value.to_bytes(words * 8, "little"), dtype=_DTYPE).copy()


@dataclass(frozen=True)
class LaneTallyStats:
    """Summary statistics of a per-lane executed-gate sample.

    ``mean`` is exact (a Fraction: total executed / lanes) and coincides
    with the engine tally for the same gates; ``variance`` is the unbiased
    sample variance across lanes, ``stderr`` its standard error of the
    mean, and ``ci95`` the half-width of a normal-approximation 95%
    confidence interval.
    """

    samples: int
    mean: Fraction
    variance: float
    stderr: float

    @classmethod
    def from_counts(cls, totals: np.ndarray, **extra) -> "LaneTallyStats":
        """Summarize a 1-D array of per-run executed counts (subclasses
        forward their extra fields through ``**extra``)."""
        samples = int(len(totals))
        if samples < 1:
            raise ValueError("need at least one sample")
        mean = Fraction(int(totals.sum()), samples)
        variance = float(totals.var(ddof=1)) if samples > 1 else 0.0
        return cls(samples, mean, variance, math.sqrt(variance / samples), **extra)

    @property
    def ci95(self) -> float:
        return 1.96 * self.stderr

    def z_score(self, expected) -> float:
        """Standardized deviation of ``mean`` from a hypothesized value."""
        if self.stderr == 0.0:
            return 0.0 if Fraction(expected) == self.mean else math.inf
        return float(self.mean - Fraction(expected)) / self.stderr

    def agrees_with(self, expected, sigmas: float = 5.0) -> bool:
        return abs(self.z_score(expected)) <= sigmas


class BitplaneSimulator(ExecutionBackend):
    """Simulate ``batch`` computational-basis inputs in one vectorized pass."""

    def __init__(
        self,
        circuit: Circuit,
        batch: int = 64,
        outcomes: OutcomeProvider | None = None,
        tally: bool = True,
        lane_counts: Sequence[str] | None = None,
        noise: Any = None,
        noise_provider: OutcomeProvider | None = None,
    ) -> None:
        if batch < 1:
            raise ValueError("batch must be at least 1")
        # Bit-flip channel at annotated noise points (see repro.noise).
        # ``noise`` is duck-typed — anything with .rate/.seed works — so the
        # sim layer never imports the noise package.  ``rate=0.0`` builds no
        # channel stream at all: bit-identical to no noise.
        # ``noise_provider`` overrides the channel stream (shard workers
        # pass a SlicedOutcomes window so channel draws stay full-width).
        self._noise_rate = 0.0
        self._noise_stream: OutcomeProvider | None = None
        if noise is not None:
            rate = float(noise.rate)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"noise rate must lie in [0, 1], got {rate}")
            if rate > 0.0:
                self._noise_rate = rate
                self._noise_stream = (
                    noise_provider if noise_provider is not None
                    else RandomOutcomes(int(noise.seed))
                )
        self.circuit = circuit
        self.batch = batch
        self.words = (batch + 63) // 64
        self._planes_np = np.zeros((circuit.num_qubits, self.words), dtype=_DTYPE)
        self._bit_planes_np = np.zeros((circuit.num_bits, self.words), dtype=_DTYPE)
        # Fused compiled runs leave their state as resident bigints (one per
        # plane) and only materialize the numpy planes when somebody reads
        # them — see the `planes` / `bit_planes` properties.  `_dirty_*`
        # tracks which rows the kernels have changed since the last sync.
        self._plane_ints: List[int] | None = None
        self._bit_ints: List[int] | None = None
        self._dirty_planes: set = set()
        self._dirty_bits: set = set()
        self._valid = _pack_int((1 << batch) - 1, self.words)
        self._mask: List[np.ndarray] = [self._valid]
        self._active: List[int] = [batch]
        self._garbage: List[int] = []  # MBU garbage-qubit stack (innermost last)
        # Per-lane executed-gate counters for the named gates (exact tally
        # variance across lanes; mirrors the engine tally's semantics, i.e.
        # gates on MBU garbage qubits count even when their state update is
        # skipped — they are executed, their effect is just irrelevant).
        self._lane_track: Dict[str, np.ndarray] = {
            name: np.zeros(batch, dtype=np.int64) for name in (lane_counts or ())
        }
        self.engine = ExecutionEngine(self, outcomes=outcomes, tally=tally)

    # -- plane state: numpy canonical, bigint-resident after fused runs -------

    @property
    def planes(self) -> np.ndarray:
        """The ``(num_qubits, words)`` qubit plane matrix.

        Reading this property synchronizes any bigint-resident state a fused
        compiled run left behind (and conservatively invalidates it, since
        the caller may mutate the returned array).  Pipelines that only need
        tallies or lane counters between fused runs therefore never pay for
        numpy materialization at all.
        """
        self._sync_planes()
        return self._planes_np

    @property
    def bit_planes(self) -> np.ndarray:
        """The ``(num_bits, words)`` classical-bit plane matrix (same
        synchronization contract as :attr:`planes`)."""
        self._sync_bits()
        return self._bit_planes_np

    def _materialize_rows(self, array: np.ndarray, ints: List[int], rows) -> None:
        """Repack the given bigint ``rows`` into ``array`` in place (one
        zero-copy byte view; all-zero values skip the int conversion)."""
        if array.size == 0:  # memoryview cannot cast zero-sized views
            return
        stride = self.words * 8
        zeros = bytes(stride)
        mv = memoryview(array).cast("B")
        for i in rows:
            value = ints[i]
            mv[i * stride : (i + 1) * stride] = (
                value.to_bytes(stride, "little") if value else zeros
            )
        mv.release()

    def _rows_to_ints(self, array: np.ndarray) -> List[int]:
        """Unpack every row of ``array`` into a bigint (all-zero rows skip
        the byte conversion)."""
        if array.size == 0:  # memoryview cannot cast zero-sized views
            return [0] * array.shape[0]
        stride = self.words * 8
        from_bytes = int.from_bytes
        mv = memoryview(array).cast("B")
        live = array.any(axis=1).tolist()
        ints = [
            from_bytes(mv[i * stride : (i + 1) * stride], "little") if live[i] else 0
            for i in range(array.shape[0])
        ]
        mv.release()
        return ints

    def _sync_planes(self) -> None:
        if self._plane_ints is not None:
            self._materialize_rows(self._planes_np, self._plane_ints, self._dirty_planes)
            self._plane_ints = None
            self._dirty_planes.clear()

    def _sync_bits(self) -> None:
        if self._bit_ints is not None:
            self._materialize_rows(self._bit_planes_np, self._bit_ints, self._dirty_bits)
            self._bit_ints = None
            self._dirty_bits.clear()

    # -- lane preparation / readout -------------------------------------------

    def _lane_list(self, values: LaneValues, width: int) -> List[int]:
        if isinstance(values, (int, np.integer)):
            values = [int(values)] * self.batch
        values = [int(v) for v in values]
        if len(values) != self.batch:
            raise ValueError(
                f"expected {self.batch} per-lane values, got {len(values)}"
            )
        limit = 1 << width
        for v in values:
            if v < 0 or v >= limit:
                raise ValueError(f"value {v} does not fit in {width} qubits")
        return values

    def set_register(self, register: Register | Sequence[int] | str, values: LaneValues) -> None:
        """Load a register: one ``int`` broadcast to all lanes, or a
        ``batch``-long sequence of per-lane values."""
        if isinstance(register, str):
            register = self.circuit.registers[register]
        qubits = register.qubits if isinstance(register, Register) else tuple(register)
        n = len(qubits)
        if n == 0:
            return
        vals = self._lane_list(values, n)
        nbytes = (n + 7) // 8
        raw = b"".join(v.to_bytes(nbytes, "little") for v in vals)
        value_bits = np.unpackbits(
            np.frombuffer(raw, dtype=np.uint8).reshape(self.batch, nbytes),
            axis=1, bitorder="little",
        )[:, :n]
        lane_bytes = np.packbits(value_bits.T, axis=1, bitorder="little")
        padded = np.zeros((n, self.words * 8), dtype=np.uint8)
        padded[:, : lane_bytes.shape[1]] = lane_bytes
        planes = padded.view(_DTYPE)
        for i, q in enumerate(qubits):
            self.planes[q] = planes[i]

    def get_register(self, register: Register | Sequence[int] | str) -> List[int]:
        """Per-lane integer values of a register (length ``batch``)."""
        if isinstance(register, str):
            register = self.circuit.registers[register]
        qubits = register.qubits if isinstance(register, Register) else tuple(register)
        n = len(qubits)
        if n == 0:
            return [0] * self.batch
        rows = self.planes[list(qubits)]
        lane_bits = np.unpackbits(rows.view(np.uint8), axis=1, bitorder="little")
        per_lane = np.packbits(lane_bits[:, : self.batch].T, axis=1, bitorder="little")
        return [int.from_bytes(row.tobytes(), "little") for row in per_lane]

    def get_bit(self, bit: int) -> List[int]:
        """Per-lane values of one classical bit (length ``batch``)."""
        plane = np.ascontiguousarray(self.bit_planes[bit])
        bits = np.unpackbits(plane.view(np.uint8), bitorder="little")
        return bits[: self.batch].tolist()

    def lane_values(self, lane: int) -> Dict[str, int]:
        """All register values of one lane, ``{register: value}``."""
        if not 0 <= lane < self.batch:
            raise IndexError(f"lane {lane} out of range for batch {self.batch}")
        out: Dict[str, int] = {}
        for name, reg in self.circuit.registers.items():
            value = 0
            for i, q in enumerate(reg.qubits):
                value |= (int(self.planes[q][lane >> 6] >> np.uint64(lane & 63)) & 1) << i
            out[name] = value
        return out

    def lane_bits(self, lane: int) -> List[int]:
        """All classical-bit values of one lane."""
        if not 0 <= lane < self.batch:
            raise IndexError(f"lane {lane} out of range for batch {self.batch}")
        word, shift = lane >> 6, np.uint64(lane & 63)
        return [int(self.bit_planes[b][word] >> shift) & 1 for b in range(self.circuit.num_bits)]

    # -- per-lane tallies -----------------------------------------------------

    def _mask_lanes(self, mask: np.ndarray) -> np.ndarray:
        """The mask as a (batch,) 0/1 array (lane b = bit b)."""
        bits = np.unpackbits(np.ascontiguousarray(mask).view(np.uint8), bitorder="little")
        return bits[: self.batch]

    def lane_tally(self, names: Sequence[str] | None = None) -> np.ndarray:
        """Exact per-lane executed count, summed over the tracked ``names``
        (default: every gate passed as ``lane_counts``)."""
        if not self._lane_track:
            raise ValueError("no lane_counts were requested at construction")
        keys = list(self._lane_track) if names is None else list(names)
        out = np.zeros(self.batch, dtype=np.int64)
        for name in keys:
            out += self._lane_track[name]
        return out

    def lane_tally_stats(self, names: Sequence[str] | None = None) -> LaneTallyStats:
        """Mean / sample-variance / standard-error of the per-lane tally."""
        return LaneTallyStats.from_counts(self.lane_tally(names))

    # -- execution ------------------------------------------------------------

    def run(self) -> "BitplaneSimulator":
        self.engine.execute(self.circuit.ops)
        return self

    def reset(
        self,
        outcomes: OutcomeProvider | None = None,
        noise_provider: OutcomeProvider | None = None,
    ) -> "BitplaneSimulator":
        """Return the simulator to its pristine state without reallocating.

        Zeroes the plane buffers and per-lane counters in place, empties
        the mask/garbage stacks, starts a fresh tally, and swaps in a new
        outcome provider (or rewinds the existing one via its ``reset``).
        The bit-flip channel stream is likewise swapped
        (``noise_provider=``) or rewound.  This is how
        :func:`repro.pipeline.montecarlo.mc_expected_counts` reuses one
        simulator (and one compiled program) across repetitions.
        """
        self._planes_np[:] = 0
        self._bit_planes_np[:] = 0
        self._plane_ints = None
        self._bit_ints = None
        self._dirty_planes.clear()
        self._dirty_bits.clear()
        self._mask = [self._valid]
        self._active = [self.batch]
        self._garbage = []
        for counter in self._lane_track.values():
            counter[:] = 0
        if outcomes is not None:
            self.engine.outcomes = outcomes
        else:
            self.engine.outcomes.reset()
        if noise_provider is not None:
            if self._noise_stream is None:
                raise ValueError(
                    "noise_provider= passed but the simulator was built "
                    "without an enabled noise config"
                )
            self._noise_stream = noise_provider
        elif self._noise_stream is not None:
            self._noise_stream.reset()
        if self.engine.tally is not None:
            self.engine.tally = GateCounts()
        return self

    def run_compiled(
        self, program=None, *, fused: bool = True, kernels: str | None = None,
        schedule: bool = False,
    ) -> "BitplaneSimulator":
        """Execute a compiled (and by default *fused*) bit-plane program.

        ``program`` may be a :class:`~repro.transform.compile.CompiledProgram`,
        a :class:`~repro.transform.compile.FusedProgram`, or ``None`` (the
        circuit is compiled on the fly; tally metadata included iff the
        engine tally or ``lane_counts`` tracking needs it).

        ``fused=True`` (default) executes through the fused kernels of
        :mod:`repro.sim.kernels`: ``kernels="codegen"`` (default) runs the
        generated straight-line bigint kernel, ``kernels="vector"`` the
        generated straight-line numpy kernel over the packed plane matrix,
        ``kernels="arrays"`` the stacked-plane gather/scatter plan
        interpreter, and ``kernels="auto"`` asks the calibrated cost model
        (:mod:`repro.sim.dispatch.cost`) to pick among them for this
        (program, batch).  ``schedule=True`` runs the run-lengthening
        scheduler (:func:`repro.transform.compile.schedule_program`) before
        fusion — bit-identical results, longer same-opcode runs (ignored
        when ``program`` is already fused).  Executed-gate tallies come
        from per-scope entry events, and — unlike the scalar path — exact
        per-lane ``lane_counts`` tracking is supported.

        ``fused=False`` is the scalar escape hatch: the flat
        program-counter loop over pre-resolved instruction tuples, with
        state in one bigint per plane (PR 3's compiled VM, and the baseline
        ``benchmarks/bench_fused.py`` measures the fused kernels against).

        Results (states, bits, measurement-outcome stream, tally and lane
        tallies) are identical to :meth:`run` on every path — see
        ``tests/test_fused_vm.py``.
        """
        from ..transform.compile import (  # deferred: transform layers above sim
            CompiledProgram,
            FusedProgram,
            OP_CCX,
            OP_COND,
            OP_CSWAP,
            OP_CX,
            OP_ENDCOND,
            OP_ENDMBU,
            OP_MBU,
            OP_MX,
            OP_MZ,
            OP_NOISE,
            OP_SWAP,
            OP_X,
            compile_program,
            fuse_program,
        )

        from .strategies import validate_kernels

        validate_kernels(kernels)
        if kernels is not None and not fused:
            raise ValueError("kernels= selects a fused strategy; pass fused=True")
        tallying = self.engine.tally is not None
        tracking = bool(self._lane_track)
        if tracking and not fused:
            raise ValueError(
                "lane_counts tracking is not supported by the scalar compiled "
                "VM; use run_compiled(fused=True) (the default) or the "
                "interpretive run()"
            )
        needs_meta = tallying or tracking
        fresh_compile = program is None
        if fresh_compile:
            program = compile_program(self.circuit, tally=needs_meta)
        if (program.num_qubits, program.num_bits) != (
            self.circuit.num_qubits,
            self.circuit.num_bits,
        ):
            raise ValueError(
                f"program layout ({program.num_qubits} qubits, {program.num_bits} "
                f"bits) does not match circuit "
                f"({self.circuit.num_qubits}, {self.circuit.num_bits})"
            )
        if needs_meta and not program.has_tally:
            raise ValueError(
                "engine tally (or lane_counts tracking) is enabled but the "
                "program was compiled with tally=False; recompile with "
                "compile_program(circuit, tally=True) or construct the "
                "simulator with tally=False"
            )

        if fused:
            if isinstance(program, CompiledProgram):
                # Memoize only caller-held programs: a program compiled on
                # the fly above dies with this call, so pinning it in the
                # fusion memo would only waste memory.
                program = fuse_program(
                    program, memoize=not fresh_compile, schedule=schedule
                )
            if kernels == "auto":
                from .dispatch.cost import default_model

                kernels = default_model().choose(
                    ops=len(program.scalar.instructions),
                    batch=self.batch,
                    tally=tallying,
                    lane_counts=tracking,
                    candidates=("codegen", "arrays", "vector"),
                )
            return self._run_fused(program, kernels or "codegen", tallying, tracking)
        if isinstance(program, FusedProgram):
            program = program.scalar
        instructions = program.instructions
        tallies = program.tallies if tallying else None
        num_qubits, num_bits = self.circuit.num_qubits, self.circuit.num_bits
        planes = [
            int.from_bytes(self.planes[q].tobytes(), "little")
            for q in range(num_qubits)
        ]
        bits = [
            int.from_bytes(self.bit_planes[b].tobytes(), "little")
            for b in range(num_bits)
        ]
        batch = self.batch
        sample = self.engine.sample_lanes
        noise = self._noise_lanes if self._noise_stream is not None else None
        executed: Dict[str, int] = {}
        mask_stack = [(1 << batch) - 1]
        mask = mask_stack[-1]
        active = batch
        end = len(instructions)
        pc = 0
        while pc < end:
            instr = instructions[pc]
            if tallies is not None:
                for name in tallies[pc]:
                    executed[name] = executed.get(name, 0) + active
            op = instr[0]
            if op == OP_CX:
                planes[instr[2]] ^= planes[instr[1]] & mask
            elif op == OP_CCX:
                planes[instr[3]] ^= planes[instr[1]] & planes[instr[2]] & mask
            elif op == OP_X:
                planes[instr[1]] ^= mask
            elif op == OP_COND:
                bit_plane = bits[instr[1]]
                sub = (mask & bit_plane) if instr[2] else (mask & ~bit_plane)
                mask_stack.append(sub)
                mask = sub
                if tallies is not None:
                    active = sub.bit_count()
                if not sub:
                    pc = instr[3]
                    continue
            elif op == OP_ENDCOND:
                mask_stack.pop()
                mask = mask_stack[-1]
                if tallies is not None:
                    active = mask.bit_count()
            elif op == OP_ENDMBU:
                mask_stack.pop()
                mask = mask_stack[-1]
                if tallies is not None:
                    active = mask.bit_count()
                # both MBU branches leave the garbage qubit in |0>
                planes[instr[1]] &= ~mask
            elif op == OP_MBU:
                outcome = sample(0.5, batch)
                b = instr[2]
                bits[b] = (bits[b] & ~mask) | (outcome & mask)
                sub = mask & outcome
                mask_stack.append(sub)
                mask = sub
                if tallies is not None:
                    active = sub.bit_count()
                if not sub:
                    pc = instr[3]
                    continue
            elif op == OP_MX:
                outcome = sample(0.5, batch)
                q, b = instr[1], instr[2]
                planes[q] = (planes[q] & ~mask) | (outcome & mask)
                bits[b] = (bits[b] & ~mask) | (outcome & mask)
            elif op == OP_MZ:
                q, b = instr[1], instr[2]
                bits[b] = (bits[b] & ~mask) | (planes[q] & mask)
            elif op == OP_SWAP:
                a, b = instr[1], instr[2]
                delta = (planes[a] ^ planes[b]) & mask
                planes[a] ^= delta
                planes[b] ^= delta
            elif op == OP_CSWAP:
                c, a, b = instr[1], instr[2], instr[3]
                delta = (planes[a] ^ planes[b]) & mask & planes[c]
                planes[a] ^= delta
                planes[b] ^= delta
            elif op == OP_NOISE:
                if noise is not None:
                    planes[instr[1]] ^= noise(batch) & mask
            # else OP_NOP: tally flush only
            pc += 1

        words = self.words
        for q in range(num_qubits):
            self.planes[q] = _pack_int(planes[q], words)
        for b in range(num_bits):
            self.bit_planes[b] = _pack_int(bits[b], words)
        if tallies is not None:
            tally = self.engine.tally
            for name, total in executed.items():
                tally.add(name, Fraction(total, batch))
        return self

    def _run_fused(
        self, program, strategy: str, tallying: bool, tracking: bool
    ) -> "BitplaneSimulator":
        """Execute a :class:`~repro.transform.compile.FusedProgram` and fold
        its per-scope-entry events into the tally / lane counters."""
        from .kernels import (  # local: avoids import at startup
            run_fused_arrays,
            run_fused_vector,
        )

        collect = tallying or tracking
        if strategy == "arrays":
            events = run_fused_arrays(self, program, collect)
        elif strategy == "vector":
            events = run_fused_vector(self, program, collect)
        else:
            # Marshal the numpy planes into resident bigints (zero-copy
            # memoryview slicing; all-zero rows — fresh ancillas, all-zero
            # inputs — skip the byte conversion entirely), run the kernel,
            # and *leave* the state as bigints: the numpy planes are only
            # rebuilt when someone reads them (see the `planes` property),
            # so chained fused runs and tally-only pipelines never pay the
            # marshal-out at all.
            kernel = program.kernel(events=collect)
            planes = self._plane_ints
            if planes is None:
                planes = self._rows_to_ints(self._planes_np)
            bits = self._bit_ints
            if bits is None:
                bits = self._rows_to_ints(self._bit_planes_np)
            events: List[tuple] = []
            kernel(
                planes, bits, (1 << self.batch) - 1, self.batch,
                self.engine.sample_lanes, events,
                self._noise_lanes if self._noise_stream is not None else None,
            )
            self._plane_ints = planes
            self._bit_ints = bits
            self._dirty_planes.update(kernel.__written_planes__)
            self._dirty_bits.update(kernel.__written_bits__)

        if collect:
            scopes = program.scopes
            if tallying:
                totals: Dict[str, int] = {}
                for sid, mask in events:
                    active = mask.bit_count()
                    if active:
                        for name, count in scopes[sid].counts.items():
                            totals[name] = totals.get(name, 0) + count * active
                tally = self.engine.tally
                for name, total in totals.items():
                    tally.add(name, Fraction(total, self.batch))
            if tracking:
                for sid, mask in events:
                    counts = scopes[sid].counts
                    tracked = [
                        (name, count)
                        for name, count in counts.items()
                        if name in self._lane_track and count
                    ]
                    if tracked and mask:
                        lanes = self._mask_lanes(
                            _pack_int(mask, self.words)
                        ).astype(np.int64)
                        for name, count in tracked:
                            self._lane_track[name] += count * lanes
        return self

    def _sample_plane(self, p_one: float) -> np.ndarray:
        return _pack_int(self.engine.sample_lanes(p_one, self.batch), self.words)

    def _noise_lanes(self, lanes: int) -> int:
        """One Bernoulli(rate) flip mask from the channel stream (bit b =
        lane b flips).  Only called when the channel is enabled."""
        return self._noise_stream.sample_lanes(self._noise_rate, lanes)

    # -- ExecutionBackend handlers --------------------------------------------

    def annotation(self, ann) -> None:
        # Bit-flip channel: XOR a fresh Bernoulli(rate) mask into the
        # annotated qubit's plane, restricted to the active lanes.  Matches
        # the compiled paths' OP_NOISE exactly: one full-batch draw per
        # dynamically-reached point, skipped when no lane is active (the
        # engine never walks a zero-lane branch body).
        if ann.kind == "noise" and self._noise_stream is not None:
            flips = _pack_int(self._noise_lanes(self.batch), self.words)
            self.planes[int(ann.label)] ^= flips & self._mask[-1]

    def apply_gate(self, gate: Gate) -> None:
        name, q = gate.name, gate.qubits
        if self._lane_track:
            counter = self._lane_track.get(name)
            if counter is not None:
                counter += self._mask_lanes(self._mask[-1])
        if self._garbage and garbage_gate_skips(gate, self._garbage):
            return
        mask = self._mask[-1]
        planes = self.planes
        if name == "x" or name == "y":  # y = x up to (untracked) phase
            planes[q[0]] ^= mask
        elif name == "cx":
            planes[q[1]] ^= planes[q[0]] & mask
        elif name == "ccx":
            planes[q[2]] ^= planes[q[0]] & planes[q[1]] & mask
        elif name == "swap":
            delta = (planes[q[0]] ^ planes[q[1]]) & mask
            planes[q[0]] ^= delta
            planes[q[1]] ^= delta
        elif name == "cswap":
            delta = (planes[q[1]] ^ planes[q[2]]) & mask & planes[q[0]]
            planes[q[1]] ^= delta
            planes[q[2]] ^= delta
        elif name in _PHASE_ONLY:
            return  # value-preserving on basis states; phases untracked
        elif name == "h":
            raise UnsupportedGateError(
                "bare Hadamard has no basis-state semantics; use an X-basis "
                "Measurement or an MBUBlock"
            )
        else:  # pragma: no cover
            raise UnsupportedGateError(f"gate {name!r} unsupported in bit-plane mode")

    def apply_measurement(self, meas: Measurement) -> None:
        if meas.qubit in self._garbage:
            raise UnsupportedGateError("measurement of garbage qubit inside MBU body")
        mask = self._mask[-1]
        if meas.basis == "z":
            outcome = self.planes[meas.qubit].copy()
        else:  # X basis: per-lane unbiased coin, post-state |m> in each lane
            outcome = self._sample_plane(0.5)
            self.planes[meas.qubit] = (self.planes[meas.qubit] & ~mask) | (outcome & mask)
        self.bit_planes[meas.bit] = (self.bit_planes[meas.bit] & ~mask) | (outcome & mask)

    def _narrow(self, sub_mask: np.ndarray) -> BranchDecision:
        active = _popcount(sub_mask)
        if active == 0:
            return BranchDecision(False, token=False)
        parent_active = self._active[-1]
        self._mask.append(sub_mask)
        self._active.append(active)
        return BranchDecision(True, Fraction(active, parent_active), token=True)

    def enter_conditional(self, cond: Conditional) -> BranchDecision:
        mask = self._mask[-1]
        bit_plane = self.bit_planes[cond.bit]
        sub = (mask & bit_plane) if cond.value else (mask & ~bit_plane)
        return self._narrow(sub)

    def exit_conditional(self, cond: Conditional, decision: BranchDecision) -> None:
        self._mask.pop()
        self._active.pop()

    def enter_mbu(self, block: MBUBlock) -> BranchDecision:
        if block.qubit in self._garbage:
            raise UnsupportedGateError("nested MBU on an active garbage qubit")
        mask = self._mask[-1]
        outcome = self._sample_plane(0.5)
        self.bit_planes[block.bit] = (self.bit_planes[block.bit] & ~mask) | (outcome & mask)
        self._garbage.append(block.qubit)
        return self._narrow(mask & outcome)

    def exit_mbu(self, block: MBUBlock, decision: BranchDecision) -> None:
        if decision.token:
            self._mask.pop()
            self._active.pop()
        self._garbage.pop()
        # Both branches leave the garbage qubit in |0> (Lemma 4.1).
        self.planes[block.qubit] &= ~self._mask[-1]


def run_bitplane(
    circuit: Circuit,
    inputs: Mapping[str, LaneValues] | None = None,
    batch: int = 64,
    outcomes: OutcomeProvider | None = None,
    tally: bool = True,
    lane_counts: Sequence[str] | None = None,
    noise: Any = None,
) -> BitplaneSimulator:
    """Run ``batch`` basis-input lanes at once; returns the simulator.

    ``inputs`` maps register names to either one ``int`` (broadcast to all
    lanes) or a ``batch``-long sequence of per-lane values.  ``noise``
    enables the bit-flip channel at annotated noise points (anything with
    ``.rate``/``.seed``, e.g. :class:`repro.noise.NoiseConfig`).
    """
    sim = BitplaneSimulator(
        circuit, batch=batch, outcomes=outcomes, tally=tally,
        lane_counts=lane_counts, noise=noise,
    )
    for name, values in (inputs or {}).items():
        sim.set_register(name, values)
    sim.run()
    return sim
