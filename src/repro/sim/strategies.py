"""Single source of truth for execution-strategy names.

Every layer that names an execution strategy — the ``kernels=`` argument
of :meth:`repro.sim.bitplane.BitplaneSimulator.run_compiled` and
:func:`repro.sim.api.simulate`, the cost model in
:mod:`repro.sim.dispatch.cost`, the verify oracle's strategy matrix and
the fuzzer's coverage accounting — imports its choice set from here, so
adding a rung to the ladder is a one-line change and the validation
error text can never drift out of sync with what actually dispatches.
"""

from __future__ import annotations

from typing import Optional, Tuple

__all__ = [
    "FUSED_KERNELS",
    "KERNEL_CHOICES",
    "LADDER",
    "validate_kernels",
]

#: Fused kernel strategies ``run_compiled(kernels=...)`` executes directly:
#: the generated straight-line bigint kernel, the stacked-plane numpy plan
#: interpreter, and the generated straight-line numpy kernel.
FUSED_KERNELS: Tuple[str, ...] = ("codegen", "arrays", "vector")

#: Accepted ``kernels=`` values (``None`` means the default, ``codegen``).
KERNEL_CHOICES: Tuple[str, ...] = ("auto",) + FUSED_KERNELS

#: The full execution ladder in cost-model order: single-process rungs
#: from slowest-per-lane to most specialized, then parallel dispatch.
LADDER: Tuple[str, ...] = (
    "classical", "interpretive", "scalar") + FUSED_KERNELS + ("sharded",)


def validate_kernels(kernels: Optional[str]) -> None:
    """Raise ``ValueError`` unless ``kernels`` names a fused strategy.

    ``None`` is accepted (the caller's default resolves to ``codegen``).
    The error text enumerates :data:`KERNEL_CHOICES` — the one place the
    choice set is spelled out.
    """
    if kernels is not None and kernels not in KERNEL_CHOICES:
        raise ValueError(
            f"unknown fused kernel strategy {kernels!r}; "
            f"options: {', '.join(repr(k) for k in KERNEL_CHOICES)}"
        )
