"""The public simulation entry point: ``simulate(circuit, inputs, backend=...)``.

A small backend registry maps names to runner callables, so new execution
backends (a GPU bit-plane kernel, a stabilizer simulator, ...) plug in via
:func:`register_backend` without touching any call site::

    from repro.sim import simulate

    result = simulate(built.circuit, {"x": 3, "y": 4}, backend="classical")
    result.registers["y"]    # (3 + 4) % p

Built-in backends
-----------------
``classical``
    One basis-state input per call; ``registers`` maps names to ints.
``statevector``
    Dense ground truth; ``registers`` is populated only when the final
    state is a single basis state (otherwise ``None`` — inspect
    ``result.simulator`` for amplitudes).
``bitplane``
    ``batch`` basis-state lanes at once (``batch=`` keyword, default 64);
    ``registers`` maps names to per-lane lists and ``bits`` is a list of
    per-lane lists, one per classical bit.  ``shards=`` splits the batch
    into contiguous lane shards executed in parallel via
    :mod:`repro.sim.dispatch` (``executor=`` picks process vs thread);
    the merged result is bit-identical for every shard count.
``auto``
    Resolves to the cheapest feasible backend for the workload via the
    calibrated cost model in :mod:`repro.sim.dispatch.cost`;
    ``result.backend`` records the concrete pick as ``"auto:<name>"``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..circuits.circuit import Circuit
from ..circuits.counts import GateCounts
from .bitplane import BitplaneSimulator, run_bitplane
from .classical import ClassicalSimulator
from .outcomes import OutcomeProvider, RandomOutcomes
from .statevector import StatevectorSimulator

__all__ = [
    "SimulationResult",
    "simulate",
    "register_backend",
    "available_backends",
]

#: A backend runner: (circuit, inputs, outcomes, **options) -> SimulationResult.
BackendRunner = Callable[..., "SimulationResult"]

_BACKENDS: Dict[str, BackendRunner] = {}


@dataclass
class SimulationResult:
    """Uniform result wrapper returned by :func:`simulate`.

    ``registers`` maps register names to values — ints for the single-input
    backends, per-lane lists for ``bitplane``, or ``None`` when the
    statevector did not collapse to a single basis state.  ``simulator`` is
    the underlying backend instance for backend-specific inspection.
    """

    backend: str
    registers: Optional[Dict[str, Any]]
    bits: Any
    tally: Optional[GateCounts]
    simulator: Any = field(repr=False, default=None)


def register_backend(name: str, runner: BackendRunner) -> BackendRunner:
    """Register (or replace) a named simulation backend."""
    _BACKENDS[name] = runner
    return runner


def available_backends() -> Tuple[str, ...]:
    return tuple(sorted(_BACKENDS))


def simulate(
    circuit: Circuit,
    inputs: Mapping[str, Any] | None = None,
    backend: str = "classical",
    outcomes: OutcomeProvider | None = None,
    seed: int | None = None,
    transforms: Any = None,
    **options: Any,
) -> SimulationResult:
    """Run ``circuit`` on basis inputs with the named backend.

    ``inputs`` maps register names to integer values (the ``bitplane``
    backend additionally accepts per-lane sequences).  Extra keyword
    options are forwarded to the backend runner (e.g. ``batch=4096`` for
    ``bitplane``, ``tally=False`` for any of the built-ins, or
    ``compiled=True`` for ``bitplane``'s pre-compiled execution path).

    ``transforms`` applies a :mod:`repro.transform` pass chain to the
    circuit before simulation — registered pass names (a list or a
    comma-separated string), pass instances, or a ``PassManager``-
    compatible mix, e.g. ``transforms=["lower_toffoli"]``.

    ``noise=`` accepts a :class:`repro.noise.NoiseConfig` (or any object
    with ``.rate`` and ``.seed``): every backend then applies a seeded
    Bernoulli bit-flip channel at the circuit's annotated noise points
    (see :func:`repro.noise.insert_noise_points`).  ``rate=0`` draws no
    entropy and is bit-identical to passing no noise at all.

    Seeding contract: ``seed=<int>`` is shorthand for
    ``outcomes=RandomOutcomes(seed)`` — same seed, same measurement
    outcomes, on every platform.  Passing both ``seed`` and ``outcomes``
    is an error.  With neither, the engine defaults to
    ``RandomOutcomes(0)``, so runs are deterministic by default (see
    :mod:`repro.sim.outcomes`).
    """
    if seed is not None:
        if outcomes is not None:
            raise ValueError("pass either seed= or outcomes=, not both")
        outcomes = RandomOutcomes(seed)
    if transforms:  # None or an empty chain are both "no transforms"
        if options.get("program") is not None:
            raise ValueError(
                "pass either transforms= or a pre-compiled program=, not both: "
                "the program was compiled from the untransformed circuit"
            )
        from ..transform import apply_transforms  # deferred: transform sits above sim

        circuit = apply_transforms(circuit, transforms)
    try:
        runner = _BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown simulation backend {backend!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None
    return runner(circuit, inputs, outcomes, **options)


# --------------------------------------------------------------------------- #
# built-in runners


def _check_registers(circuit: Circuit, inputs: Mapping[str, Any] | None) -> None:
    for name in inputs or {}:
        if name not in circuit.registers:
            raise ValueError(
                f"unknown register {name!r}; circuit has: "
                f"{', '.join(circuit.registers) or '(none)'}"
            )


def _run_classical(
    circuit: Circuit,
    inputs: Mapping[str, int] | None,
    outcomes: OutcomeProvider | None,
    tally: bool = True,
    noise: Any = None,
) -> SimulationResult:
    _check_registers(circuit, inputs)
    sim = ClassicalSimulator(circuit, outcomes=outcomes, tally=tally, noise=noise)
    for name, value in (inputs or {}).items():
        sim.set_register(circuit.registers[name], value)
    sim.run()
    registers = {name: sim.get_register(reg) for name, reg in circuit.registers.items()}
    return SimulationResult("classical", registers, list(sim.bits), sim.tally, sim)


def _run_statevector(
    circuit: Circuit,
    inputs: Mapping[str, int] | None,
    outcomes: OutcomeProvider | None,
    tally: bool = True,
    noise: Any = None,
) -> SimulationResult:
    _check_registers(circuit, inputs)
    sim = StatevectorSimulator(circuit, outcomes=outcomes, tally=tally, noise=noise)
    if inputs:
        sim.set_basis_state(inputs)
    sim.run()
    registers: Optional[Dict[str, int]] = None
    try:
        values = sim.register_values()
    except ValueError:  # residual amplitude outside the registers
        values = {}
    if len(values) == 1:
        (key, amp), = values.items()
        if abs(abs(amp) - 1.0) < 1e-6:  # a single basis state
            registers = dict(zip(circuit.registers, key))
    return SimulationResult("statevector", registers, list(sim.bits), sim.tally, sim)


def _run_bitplane(
    circuit: Circuit,
    inputs: Mapping[str, Any] | None,
    outcomes: OutcomeProvider | None,
    batch: int = 64,
    tally: bool = True,
    lane_counts: Any = None,
    compiled: bool = False,
    program: Any = None,
    fused: bool = True,
    kernels: str | None = None,
    shards: int | None = None,
    executor: Any = None,
    noise: Any = None,
    schedule: bool = False,
) -> SimulationResult:
    from .strategies import validate_kernels

    validate_kernels(kernels)
    _check_registers(circuit, inputs)
    if shards is not None or executor is not None:
        if schedule:
            raise ValueError(
                "schedule= applies to the single-process compiled path; "
                "drop shards=/executor="
            )
        # Lane-sharded parallel execution (always compiled + fused); the
        # merged result carries the same registers/bits/tally shapes as the
        # single-process compiled path — see repro.sim.dispatch.
        if fused is not True:
            raise ValueError(
                "sharded execution runs fused kernels; drop fused=False or "
                "drop shards=/executor="
            )
        from .dispatch import run_sharded

        result = run_sharded(
            program if program is not None else circuit,
            inputs,
            batch=batch,
            shards=shards,
            executor=executor,
            outcomes=outcomes,
            tally=tally,
            lane_counts=lane_counts,
            kernels=kernels,
            noise=noise,
        )
        return SimulationResult(
            "bitplane", result.registers, result.bits, result.tally, result
        )
    if compiled or program is not None:
        sim = BitplaneSimulator(
            circuit, batch=batch, outcomes=outcomes, tally=tally,
            lane_counts=lane_counts, noise=noise,
        )
        for name, values in (inputs or {}).items():
            sim.set_register(name, values)
        sim.run_compiled(program, fused=fused, kernels=kernels, schedule=schedule)
    elif kernels is not None or fused is not True:
        raise ValueError(
            "kernels=/fused= select a compiled execution strategy; "
            "pass compiled=True (or program=) to use them"
        )
    else:
        sim = run_bitplane(
            circuit, inputs, batch=batch, outcomes=outcomes, tally=tally,
            lane_counts=lane_counts, noise=noise,
        )
    registers = {name: sim.get_register(name) for name in circuit.registers}
    bits: List[List[int]] = [sim.get_bit(b) for b in range(circuit.num_bits)]
    return SimulationResult("bitplane", registers, bits, sim.tally, sim)


def _run_auto(
    circuit: Circuit,
    inputs: Mapping[str, Any] | None,
    outcomes: OutcomeProvider | None,
    batch: int = 64,
    tally: bool = True,
    lane_counts: Any = None,
    program: Any = None,
    shards: int | None = None,
    executor: Any = None,
    cores: int | None = None,
    noise: Any = None,
) -> SimulationResult:
    """Pick the cheapest capable execution strategy via the calibrated cost
    model (:mod:`repro.sim.dispatch.cost`) and run it.

    The returned result's ``backend`` records what actually ran, as
    ``"auto:<strategy>"``.  ``classical`` is only a candidate for
    ``batch=1`` scalar-input calls (its result shape differs); circuits the
    compiler rejects fall back to the interpretive ladder.
    """
    from .classical import UnsupportedGateError
    from .dispatch.cost import default_model
    from ..transform.compile import compile_program

    _check_registers(circuit, inputs)
    compiled_ok = True
    if program is None:
        try:
            program = compile_program(
                circuit, tally=tally or bool(lane_counts)
            )
        except UnsupportedGateError:
            compiled_ok = False
    if compiled_ok:
        ops = len(program.scalar if hasattr(program, "scalar") else program)
        candidates = [
            "interpretive", "scalar", "codegen", "arrays", "vector", "sharded",
        ]
        if noise is not None and float(noise.rate) > 0.0:
            from .dispatch import noise_is_flat

            if not noise_is_flat(program):
                # Sharded execution cannot keep per-shard channel streams in
                # sync when noise points sit inside branch bodies.
                candidates.remove("sharded")
    else:
        from ..circuits.ops import iter_flat

        ops = sum(1 for _ in iter_flat(circuit.ops))
        candidates = ["interpretive"]
    scalar_inputs = all(
        isinstance(v, (int,)) for v in (inputs or {}).values()
    )
    if batch == 1 and scalar_inputs and not lane_counts:
        candidates.insert(0, "classical")
    choice = default_model().choose(
        ops=ops, batch=batch, tally=tally, lane_counts=bool(lane_counts),
        cores=cores, candidates=candidates,
    )
    if choice == "classical":
        result = _run_classical(circuit, inputs, outcomes, tally=tally, noise=noise)
    elif choice == "interpretive":
        result = _run_bitplane(
            circuit, inputs, outcomes, batch=batch, tally=tally,
            lane_counts=lane_counts, noise=noise,
        )
    elif choice == "scalar":
        result = _run_bitplane(
            circuit, inputs, outcomes, batch=batch, tally=tally,
            lane_counts=lane_counts, program=program, fused=False, noise=noise,
        )
    elif choice == "sharded":
        result = _run_bitplane(
            circuit, inputs, outcomes, batch=batch, tally=tally,
            lane_counts=lane_counts, program=program,
            shards=shards or default_model().effective_shards(
                batch, cores or os.cpu_count() or 1
            ),
            executor=executor, noise=noise,
        )
    else:  # codegen / arrays / vector
        result = _run_bitplane(
            circuit, inputs, outcomes, batch=batch, tally=tally,
            lane_counts=lane_counts, program=program, kernels=choice, noise=noise,
        )
    result.backend = f"auto:{choice}"
    return result


register_backend("classical", _run_classical)
register_backend("statevector", _run_statevector)
register_backend("bitplane", _run_bitplane)
register_backend("auto", _run_auto)
