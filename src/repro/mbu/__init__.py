"""Measurement-based uncomputation (section 4).

* :func:`emit_mbu_uncompute` — Lemma 4.1 as a reusable primitive;
* two-sided comparison (thm 4.13) in :mod:`repro.mbu.comparator`;
* every section-4 MBU circuit (thms 4.2-4.12) is the ``mbu=True`` variant
  of the corresponding builder in :mod:`repro.modular` — see
  :mod:`repro.mbu.theorems` for a theorem-indexed map.
"""

from .comparator import build_in_range, emit_in_range
from .lemma import emit_mbu_uncompute

__all__ = [
    "emit_mbu_uncompute",
    "emit_in_range",
    "build_in_range",
    "THEOREMS",
    "build",
]


def __getattr__(name: str):
    # Lazy import: theorems.py pulls in every builder (incl. repro.modular,
    # which imports this package), so resolve it on first access.
    if name in ("THEOREMS", "build"):
        from . import theorems

        return getattr(theorems, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
