"""Lemma 4.1 — measurement-based uncomputation of a single-qubit register.

Given a garbage qubit ``g`` holding ``g(x)`` (entangled with the data) and a
self-adjoint XOR-oracle ``U_g`` (``|x>|b> -> |x>|b XOR g(x)>``), the MBU
circuit (fig 24) is:

1. measure ``g`` in the X basis (1 H + 1 measurement);
2. outcome 0 (probability 1/2): done — the register is |0> and no phase
   was kicked;
3. outcome 1: the state is ``sum_x a_x (-1)^{g(x)} |x> |1>``; apply H (to
   reach |->), ``U_g`` (phase kickback cancels the (-1)^{g(x)}), H and X.

The correction therefore costs ``U_g`` + 2 H + 1 X *with probability 1/2* —
in expectation, half the oracle.  :func:`emit_mbu_uncompute` packages this
as an :class:`~repro.circuits.ops.MBUBlock` so the resource counter weights
the body by 1/2 in ``expected`` mode and both simulators execute it with
the right semantics.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..circuits.circuit import Circuit
from ..circuits.markers import UNCOMPUTE_ORACLE, reference_mode, uncompute_label

__all__ = ["emit_mbu_uncompute"]


def emit_mbu_uncompute(
    circ: Circuit, garbage: int, emit_oracle: Callable[[], None]
) -> Optional[int]:
    """Uncompute ``garbage`` via Lemma 4.1; returns the classical bit.

    ``emit_oracle`` must emit a self-adjoint circuit that XORs the garbage
    function into ``garbage`` (it runs inside the correction branch, where
    ``garbage`` is held in the |-> state — the oracle's writes to it become
    phase kickback).  The oracle may itself contain measurement-based
    pieces (e.g. a Gidney comparator); on computational-basis data these
    leave no residual phase, so the lemma still applies.

    Under :func:`~repro.circuits.markers.reference_emission` the coherent
    uncomputation is emitted instead — the oracle applied directly to
    ``garbage``, bracketed by ``uncompute-oracle`` markers — and ``None`` is
    returned (no measurement happens).  The ``insert_mbu`` transform pass
    consumes the markers and re-derives this MBU block as a rewrite.
    """
    if reference_mode():
        label = uncompute_label(UNCOMPUTE_ORACLE, garbage)
        circ.begin(label)
        emit_oracle()
        circ.end(label)
        return None
    with circ.capture() as body:
        circ.h(garbage)
        emit_oracle()
        circ.h(garbage)
        circ.x(garbage)
    return circ.mbu(garbage, body)
