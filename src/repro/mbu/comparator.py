"""Two-sided comparison (thm 4.13): t ^= [x in (y, z)].

Checks whether a register's value lies strictly between two other
registers' values:

1. ``h ^= [y < x]``            (plain comparator, cost r);
2. ``t ^= h * [x < z]``        (controlled comparator, cost r');
3. uncompute ``h``             (plain comparator again — cost r, or r/2
                                expected with MBU).

Total ``2r + r'`` Toffolis, reduced to ``1.5r + r'`` with MBU — the
paper's ~25% saving on the uncomputation side.
"""

from __future__ import annotations

from typing import Sequence

from ..circuits.circuit import Circuit
from ..arithmetic.builders import Built
from ..arithmetic.families import KITS, AdderKit
from .lemma import emit_mbu_uncompute

__all__ = ["emit_in_range", "build_in_range"]


def emit_in_range(
    circ: Circuit,
    x: Sequence[int],
    y: Sequence[int],
    z: Sequence[int],
    t: int,
    helper: int,
    anc: Sequence[int],
    kit: AdderKit,
    mbu: bool = False,
) -> None:
    """t ^= [y < x AND x < z]; ``helper`` is a clean qubit, returned clean."""
    n = len(x)
    comp_anc = anc[: kit.compare_ancillas(n)]
    # 1. helper ^= [x > y]  ==  [y < x]
    kit.emit_compare_gt(circ, x, y, helper, comp_anc)
    # 2. t ^= helper * [z > x]  ==  helper * [x < z]
    kit.emit_compare_gt(circ, z, x, t, comp_anc, ctrl=helper)

    # 3. uncompute helper
    def oracle() -> None:
        kit.emit_compare_gt(circ, x, y, helper, comp_anc)

    if mbu:
        emit_mbu_uncompute(circ, helper, oracle)
    else:
        oracle()


def build_in_range(n: int, family: str | AdderKit = "cdkpm", mbu: bool = False) -> Built:
    """|x>|y>|z>|t> -> |x>|y>|z>|t ^ [x in (y, z)]>  (thm 4.13)."""
    kit = KITS[family] if isinstance(family, str) else family
    circ = Circuit(f"inrange[{kit.name},n={n},mbu={mbu}]")
    x = circ.add_register("x", n)
    y = circ.add_register("y", n)
    z = circ.add_register("z", n)
    t = circ.add_register("t", 1)
    helper = circ.add_register("h", 1)
    anc = circ.add_register("anc", kit.compare_ancillas(n))
    emit_in_range(
        circ, x.qubits, y.qubits, z.qubits, t[0], helper[0], anc.qubits, kit, mbu=mbu
    )
    return Built(
        circ, n, ("h", "anc"),
        {"op": "in_range", "family": kit.name, "mbu": mbu},
    )
