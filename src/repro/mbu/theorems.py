"""Theorem-indexed registry: every numbered statement of the paper mapped
to the code that implements it.

Paper mapping: the registry spans section 2 (defs 2.1-2.38 — plain,
controlled and by-constant adders, subtractors and comparators), section
3 (props 3.2-3.18 — modular adders in the VBE, Takahashi and Beauregard
architectures) and section 4 (Lemma 4.1 and thms 4.2-4.12 — the MBU
variants whose expected costs the ``mbu=True`` builders realise), plus
the section 1.1 multiplication/exponentiation extensions.  The prose
version of this index is ``docs/paper-map.md``.

>>> from repro.mbu.theorems import THEOREMS, build
>>> THEOREMS["thm 4.3"].title
'MBU modular adder - CDKPM'
>>> built = build("thm 4.3", n=8, p=251)   # a ready-to-simulate circuit

The registry serves three purposes: discoverability (find the builder for
a statement you are reading), the per-experiment index of docs/paper-map.md
in executable form, and a single place the tests iterate
(``tests/test_theorems.py``) to guarantee every claimed statement
actually constructs and simulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..arithmetic import (
    build_add_const,
    build_adder,
    build_comparator,
    build_compare_lt_const,
    build_controlled_add_const,
    build_controlled_adder,
    build_controlled_comparator,
    build_controlled_compare_lt_const,
    build_sub_const,
    build_subtractor,
)
from ..arithmetic.builders import Built
from ..extensions import build_modexp, build_mul_const_mod
from ..modular import (
    build_controlled_modadd,
    build_controlled_modadd_const,
    build_modadd,
    build_modadd_const,
    build_modadd_const_draper,
    build_modadd_draper,
    build_modadd_vbe_original,
)
from .comparator import build_in_range

__all__ = ["Statement", "THEOREMS", "build"]


@dataclass(frozen=True)
class Statement:
    """One numbered statement of the paper and its implementation."""

    ref: str  # e.g. "thm 4.3"
    title: str  # the paper's naming-convention title
    builder: Callable[..., Built]
    defaults: Dict[str, Any]
    notes: str = ""

    def build(self, **overrides) -> Built:
        kwargs = {**self.defaults, **overrides}
        return self.builder(**kwargs)


def _s(ref, title, builder, notes="", **defaults) -> Statement:
    return Statement(ref, title, builder, defaults, notes)


_STATEMENTS = [
    # -- section 2: plain arithmetic ------------------------------------
    _s("prop 2.2", "VBE plain adder", build_adder, family="vbe"),
    _s("prop 2.3", "CDKPM plain adder", build_adder, family="cdkpm"),
    _s("prop 2.4", "Gidney adder", build_adder, family="gidney"),
    _s("prop 2.5", "Draper's plain adder", build_adder, family="draper",
       notes="cor 2.7 wraps PhiADD in QFT/IQFT"),
    _s("thm 2.9", "Controlled adder - with n extra ancillas and 2n extra Tof",
       build_controlled_adder, family="cdkpm", method="load_toffoli"),
    _s("cor 2.10", "Controlled adder - n extra ancillas and n extra Tof",
       build_controlled_adder, family="cdkpm", method="load_and"),
    _s("prop 2.11", "Controlled adder - Gidney - with 1 extra ancilla",
       build_controlled_adder, family="gidney", method="native"),
    _s("thm 2.12", "Controlled adder - CDKPM - with 1 ancilla",
       build_controlled_adder, family="cdkpm", method="native"),
    _s("thm 2.14", "Controlled adder - Draper - with 1 ancilla",
       build_controlled_adder, family="draper"),
    _s("prop 2.16", "Adder by a constant", build_add_const, family="cdkpm"),
    _s("prop 2.17", "Adder by a constant - Draper", build_add_const, family="draper"),
    _s("prop 2.19", "Controlled adder by a constant",
       build_controlled_add_const, family="cdkpm"),
    _s("prop 2.20", "Controlled adder by a constant - Draper",
       build_controlled_add_const, family="draper"),
    _s("thm 2.22", "Quantum subtractor (complement sandwich)",
       build_subtractor, family="cdkpm", method="sandwich"),
    _s("rem 2.23", "Subtraction with a measurement-based adder",
       build_subtractor, family="gidney", method="default",
       notes="the Gidney adder has no adjoint; the sandwich is used"),
    _s("prop 2.27", "Comparator - CDKPM - using half a subtractor",
       build_comparator, family="cdkpm"),
    _s("prop 2.28", "Comparator - Gidney - using half a subtractor",
       build_comparator, family="gidney"),
    _s("prop 2.26", "Comparator - Draper/Beauregard", build_comparator, family="draper"),
    _s("prop 2.30", "Controlled comparator - CDKPM",
       build_controlled_comparator, family="cdkpm"),
    _s("prop 2.31", "Controlled comparator - Gidney",
       build_controlled_comparator, family="gidney"),
    _s("prop 2.34", "Comparator by a classical constant",
       build_compare_lt_const, family="cdkpm"),
    _s("prop 2.36", "Comparator by a classical constant - Draper/Beauregard",
       build_compare_lt_const, family="draper"),
    _s("thm 2.38", "Controlled comparator by a classical constant - CDKPM",
       build_controlled_compare_lt_const, family="cdkpm"),
    # -- section 3: modular addition ------------------------------------
    _s("prop 3.2", "Modular adder - Vedral's architecture (original 5-adder)",
       build_modadd_vbe_original),
    _s("prop 3.4", "Modular adder - CDKPM", build_modadd, family="cdkpm"),
    _s("prop 3.5", "Modular adder - Gidney", build_modadd, family="gidney"),
    _s("thm 3.6", "Modular adder - Gidney + CDKPM",
       build_modadd, family="gidney", mid_family="cdkpm"),
    _s("prop 3.7", "Modular adder - Draper/Beauregard", build_modadd_draper),
    _s("prop 3.10", "Controlled modular adder - CDKPM",
       build_controlled_modadd, family="cdkpm"),
    _s("prop 3.11", "Controlled modular adder - Gidney",
       build_controlled_modadd, family="gidney"),
    _s("prop 3.13", "Modular adder by a constant (generic)",
       build_modadd_const, family="cdkpm", architecture="generic"),
    _s("thm 3.14", "Modular adder by a constant - in VBE architecture",
       build_modadd_const, family="cdkpm", architecture="vbe"),
    _s("prop 3.15", "Modular adder by a constant - in Takahashi architecture",
       build_modadd_const, family="cdkpm", architecture="takahashi"),
    _s("thm 3.17", "Controlled modular adder by a constant (generic)",
       build_controlled_modadd_const, family="cdkpm", architecture="generic"),
    _s("prop 3.18", "Controlled modular adder by a constant - in VBE architecture",
       build_controlled_modadd_const, family="cdkpm", architecture="vbe"),
    _s("prop 3.19", "Controlled modular adder by a constant - Beauregard",
       build_modadd_const_draper, num_controls=1),
    _s("fig 23", "Beauregard's doubly-controlled constant modular adder",
       build_modadd_const_draper, num_controls=2),
    # -- section 4: MBU --------------------------------------------------
    _s("thm 4.2", "MBU modular adder - VBE architecture",
       build_modadd_vbe_original, mbu=True),
    _s("thm 4.3", "MBU modular adder - CDKPM", build_modadd, family="cdkpm", mbu=True),
    _s("thm 4.4", "MBU modular adder - Gidney", build_modadd, family="gidney", mbu=True),
    _s("thm 4.5", "MBU modular adder - Gidney + CDKPM",
       build_modadd, family="gidney", mid_family="cdkpm", mbu=True),
    _s("thm 4.6", "MBU modular adder - Draper/Beauregard",
       build_modadd_draper, mbu=True),
    _s("thm 4.8", "MBU controlled modular adder - CDKPM",
       build_controlled_modadd, family="cdkpm", mbu=True),
    _s("thm 4.9", "MBU controlled modular adder - Gidney",
       build_controlled_modadd, family="gidney", mbu=True),
    _s("thm 4.10", "MBU modular addition by a constant - VBE architecture",
       build_modadd_const, family="cdkpm", architecture="vbe", mbu=True),
    _s("thm 4.11", "MBU modular adder by a constant - Takahashi architecture",
       build_modadd_const, family="cdkpm", architecture="takahashi", mbu=True),
    _s("thm 4.12", "MBU controlled modular adder by a constant - VBE architecture",
       build_controlled_modadd_const, family="cdkpm", architecture="vbe", mbu=True),
    _s("thm 4.13", "Two-sided comparator", build_in_range, family="cdkpm", mbu=True),
    # -- extensions (the paper's future work) -----------------------------
    _s("ext mul", "Modular multiplication by a constant",
       build_mul_const_mod, family="cdkpm", mbu=True),
    _s("ext modexp", "Modular exponentiation (Shor kernel)",
       build_modexp, family="cdkpm", mbu=True),
]

THEOREMS: Dict[str, Statement] = {s.ref: s for s in _STATEMENTS}


def build(ref: str, **overrides) -> Built:
    """Build the circuit of a numbered statement, e.g. ``build('thm 4.3',
    n=8, p=251)``.  Overrides are passed to the underlying builder."""
    if ref not in THEOREMS:
        raise KeyError(f"unknown statement {ref!r}; known: {sorted(THEOREMS)}")
    return THEOREMS[ref].build(**overrides)
