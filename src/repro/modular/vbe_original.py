"""The original 5-plain-adder modular adder of [VBE96] — Table 1's
"(5 adder) VBE" row — with its MBU optimisation.

Sequence (cf. prop 3.2's discussion of the original architecture):

1. ``ADD(x, y)``           — y <- x + y;
2. ``SUB(N, y)``           — with p pre-loaded in N: y <- x + y - p
                             (mod 2^{n+1}; the top bit is [x+y < p]);
3. copy the sign into t; flip N to hold ``t * p`` (2|p| X + |p| CNOT);
4. ``ADD(N, y)``           — adds p back exactly when the subtraction
                             underflowed: y <- (x+y) mod p; clear N
                             (|p| CNOTs);
5. ``SUB(x, y)``/X/CNOT/``ADD(x, y)`` — uncompute t via the sign of
                             ``mod - x`` (two more plain adders).

Five VBE plain adders at ``4n - 2`` Toffolis each: ``20n - 10`` total
(paper: ``20n + 10``), on ``4n + 2`` logical qubits (matches Table 1
exactly).  With MBU (thm 4.2 applied to the two-adder uncomputation) the
expected Toffoli count drops to ``16n - 8`` (paper: ``16n + 8``) — the
10-15%% headline saving.
"""

from __future__ import annotations

from ..circuits.circuit import Circuit
from ..arithmetic.builders import Built
from ..arithmetic.constant import (
    emit_load_constant,
    emit_load_constant_controlled,
)
from ..arithmetic.subtract import emit_sub_via_adjoint
from ..arithmetic.vbe import emit_vbe_add
from ..mbu.lemma import emit_mbu_uncompute

__all__ = ["build_modadd_vbe_original"]


def build_modadd_vbe_original(n: int, p: int, mbu: bool = False) -> Built:
    """y <- (x + y) mod p in the original VBE96 five-adder architecture."""
    if not 0 < p < (1 << n):
        raise ValueError("modulus must satisfy 0 < p < 2**n")
    circ = Circuit(f"modadd[vbe5,n={n},p={p},mbu={mbu}]")
    x = circ.add_register("x", n)
    y = circ.add_register("y", n + 1)
    big_n = circ.add_register("N", n)  # the modulus register of VBE96
    carries = circ.add_register("carries", n)
    t = circ.add_register("t", 1)

    def add(addend) -> None:
        emit_vbe_add(circ, addend, y.qubits, carries.qubits)

    def sub(addend) -> None:
        emit_sub_via_adjoint(circ, lambda: add(addend))

    # 1-2: y <- x + y - p
    add(x.qubits)
    emit_load_constant(circ, big_n.qubits, p)
    sub(big_n.qubits)

    # 3: t <- [x + y < p]; N <- t * p
    circ.cx(y[n], t[0])
    emit_load_constant(circ, big_n.qubits, p)  # N back to 0
    emit_load_constant_controlled(circ, t[0], big_n.qubits, p)

    # 4: y <- (x + y) mod p; N <- 0
    add(big_n.qubits)
    emit_load_constant_controlled(circ, t[0], big_n.qubits, p)

    # 5: uncompute t = [x <= (x+y) mod p] with two more plain adders
    def uncompute_oracle() -> None:
        sub(x.qubits)
        circ.x(t[0])
        circ.cx(y[n], t[0])
        add(x.qubits)

    if mbu:
        emit_mbu_uncompute(circ, t[0], uncompute_oracle)
    else:
        uncompute_oracle()

    return Built(
        circ, n, ("N", "carries", "t"),
        {"op": "modadd", "arch": "vbe5", "p": p, "mbu": mbu},
    )
