"""QFT-based modular addition (Draper/Beauregard) — prop 3.7, prop 3.19,
fig 23 — with MBU variants (thm 4.6).

Beauregard's trick fuses the constant comparator with the conditional
subtraction: after ``PhiADD(x)`` the circuit *subtracts* ``p`` outright,
reads the sign bit (one IQFT/QFT round-trip), and adds ``p`` back
*controlled on the sign* — so one constant block does double duty.  The
garbage sign bit is then uncomputed by comparing with ``x`` (or ``c*a``).

With ``mbu=True`` the final comparator is wrapped in Lemma 4.1 *while the
target register is still in the Fourier basis*: the correction oracle is
the Fourier-interior comparator ``PhiSUB - IQFT - (X)cx(X) - QFT - PhiADD``
(self-adjoint), and the trailing IQFT stays unconditional.  That is how
thm 4.6 reaches its half-integer expected block counts (2.5 QFT etc.).

All builders delimit QFT-sized blocks with markers, so
``count_blocks(circ, mode='expected')`` reproduces Table 1's Draper rows.
"""

from __future__ import annotations

from typing import Sequence

from ..circuits.circuit import Circuit
from ..arithmetic.builders import Built
from ..arithmetic.draper import (
    emit_ccphi_add_const,
    emit_cphi_add_const,
    emit_iqft,
    emit_phi_add,
    emit_phi_add_const,
    emit_phi_sub,
    emit_phi_sub_const,
    emit_qft,
)
from ..mbu.lemma import emit_mbu_uncompute

__all__ = ["build_modadd_draper", "build_modadd_const_draper"]


def build_modadd_draper(n: int, p: int, mbu: bool = False) -> Built:
    """|x>_n |y>_{n+1} -> |x>|x+y mod p>  (prop 3.7; MBU: thm 4.6)."""
    if not 0 < p < (1 << n):
        raise ValueError("modulus must satisfy 0 < p < 2**n")
    circ = Circuit(f"modadd[draper,n={n},p={p},mbu={mbu}]")
    x = circ.add_register("x", n)
    y = circ.add_register("y", n + 1)
    t = circ.add_register("t", 1)
    yq = y.qubits

    emit_qft(circ, yq)
    emit_phi_add(circ, x.qubits, yq)  # phi(x + y)
    emit_phi_sub_const(circ, yq, p)  # phi(x + y - p): sign in the top qubit
    emit_iqft(circ, yq)
    circ.cx(y[n], t[0])  # t = [x + y < p]
    emit_qft(circ, yq)
    emit_cphi_add_const(circ, t[0], yq, p)  # add p back iff we went negative

    def oracle() -> None:
        # Fourier-interior comparator: t ^= NOT [mod < x]  ==  [x + y < p]
        emit_phi_sub(circ, x.qubits, yq)
        emit_iqft(circ, yq)
        circ.x(y[n])
        circ.cx(y[n], t[0])
        circ.x(y[n])
        emit_qft(circ, yq)
        emit_phi_add(circ, x.qubits, yq)

    if mbu:
        emit_mbu_uncompute(circ, t[0], oracle)
    else:
        oracle()
    emit_iqft(circ, yq)
    return Built(
        circ, n, ("t",),
        {"op": "modadd", "arch": "beauregard", "p": p, "mbu": mbu},
    )


def build_modadd_const_draper(
    n: int,
    p: int,
    a: int,
    num_controls: int = 0,
    mbu: bool = False,
) -> Built:
    """|x>_{n+1} -> |x + a mod p>  in the Fourier architecture.

    ``num_controls=0`` is the plain constant modular adder;
    ``num_controls=1`` is prop 3.19; ``num_controls=2`` is Beauregard's
    original doubly-controlled circuit (fig 23, as used in Shor's
    algorithm).  MBU wraps the final comparator (thm 4.6 style).
    """
    if not 0 < p < (1 << n):
        raise ValueError("modulus must satisfy 0 < p < 2**n")
    if not 0 <= a < p:
        raise ValueError("constant must satisfy 0 <= a < p")
    if num_controls not in (0, 1, 2):
        raise ValueError("num_controls must be 0, 1 or 2")
    circ = Circuit(
        f"modaddc[draper,n={n},p={p},a={a},c={num_controls},mbu={mbu}]"
    )
    ctrls = circ.add_register("ctrl", num_controls).qubits if num_controls else ()
    x = circ.add_register("x", n + 1)
    t = circ.add_register("t", 1)
    xq = x.qubits

    def add_a(sign: int) -> None:
        if num_controls == 0:
            emit_phi_add_const(circ, xq, a, sign=sign)
        elif num_controls == 1:
            emit_cphi_add_const(circ, ctrls[0], xq, a, sign=sign)
        else:
            emit_ccphi_add_const(circ, ctrls[0], ctrls[1], xq, a, sign=sign)

    emit_qft(circ, xq)
    add_a(1)  # phi(x + c*a)
    emit_phi_sub_const(circ, xq, p)
    emit_iqft(circ, xq)
    circ.cx(x[n], t[0])  # t = [x + c*a < p]
    emit_qft(circ, xq)
    emit_cphi_add_const(circ, t[0], xq, p)

    def oracle() -> None:
        add_a(-1)  # phi(mod - c*a)
        emit_iqft(circ, xq)
        circ.x(x[n])
        circ.cx(x[n], t[0])  # t ^= NOT [mod < c*a]  ==  [x + c*a < p]
        circ.x(x[n])
        emit_qft(circ, xq)
        add_a(1)

    if mbu:
        emit_mbu_uncompute(circ, t[0], oracle)
    else:
        oracle()
    emit_iqft(circ, xq)
    return Built(
        circ, n, ("t",),
        {"op": "modaddc", "arch": "beauregard", "p": p, "a": a,
         "controls": num_controls, "mbu": mbu},
    )
