"""The VBE modular-addition architecture (prop 3.2) and its controlled
variant (prop 3.9), parametric in the adder/comparator families — plus the
MBU-optimised versions (thms 4.2 / 4.7).

Paper mapping: section 3.1, definition 3.1 (``|x>|y> -> |x>|x+y mod p>``)
realised per family — prop 3.4 (CDKPM), prop 3.5 (Gidney), thm 3.6
(Gidney/CDKPM hybrid via the mixing rule); controlled variant def 3.8,
props 3.10/3.11.  With ``mbu=True`` the final comparator uncompute is
wrapped in Lemma 4.1, which is thms 4.3/4.4/4.5 (and 4.8/4.9 when
controlled): expected Toffoli cost drops from ``8n`` to ``7n`` for CDKPM,
``4n`` to ``3.5n`` for Gidney (Table 1).  Validated row by row in
``tests/test_tables.py`` and statistically in ``tests/test_montecarlo.py``.

Structure (fig 22 / fig 25):

1. ``QADD``            — plain (or controlled) addition: y <- x + y;
2. ``QCOMP(p)``        — t ^= [x + y < p] (constant comparator, the sum is
                         n+1 bits so remark 2.32's ``b_extra`` handles the
                         top qubit); then X(t) so t = [x + y >= p];
3. ``C-QSUB(p)``       — controlled on t, subtract p (controlled constant
                         load + plain adder inside a complement sandwich);
4. ``Q'COMP``          — uncompute t via t ^= [x > (x+y) mod p], which
                         equals t (proof of prop 3.2).  With ``mbu=True``
                         this step is wrapped in Lemma 4.1, halving its
                         expected cost (thm 4.2).

The two *slots* follow the paper's mixing rule (thm 3.6): ``kit_add`` serves
steps 1 and 4, ``kit_mid`` serves steps 2 and 3.  CDKPM/CDKPM gives prop
3.4, Gidney/Gidney prop 3.5, Gidney/CDKPM thm 3.6.

Register/ancilla layout: a single ``work`` pool provides the constant
register (low n qubits, holding p only during steps 2-3) and each slot's
carry ancillas, sized to the maximum simultaneous need.
"""

from __future__ import annotations

from typing import Sequence

from ..circuits.circuit import Circuit
from ..arithmetic.builders import Built
from ..arithmetic.constant import (
    emit_load_constant,
    emit_load_constant_controlled,
)
from ..arithmetic.families import KITS, AdderKit
from ..mbu.lemma import emit_mbu_uncompute

__all__ = [
    "work_pool_size",
    "emit_modadd",
    "build_modadd",
    "build_controlled_modadd",
]


def work_pool_size(n: int, kit_add: AdderKit, kit_mid: AdderKit) -> int:
    """Scratch qubits needed: the constant register (n) coexists with the
    mid-family ancillas; the add-family ancillas reuse the same pool."""
    mid_need = n + max(kit_mid.compare_ancillas(n), kit_mid.add_ancillas(n))
    add_need = max(kit_add.add_ancillas(n), kit_add.compare_ancillas(n))
    if kit_add.emit_add_ctrl is not None and kit_add.ctrl_add_ancillas is not None:
        add_need = max(add_need, kit_add.ctrl_add_ancillas(n))
    return max(mid_need, add_need)


def emit_modadd(
    circ: Circuit,
    x: Sequence[int],
    y: Sequence[int],
    t: int,
    p: int,
    work: Sequence[int],
    kit_add: AdderKit,
    kit_mid: AdderKit,
    mbu: bool = False,
    ctrl: int | None = None,
) -> None:
    """y <- (x + y) mod p (definition 3.1), optionally controlled on ``ctrl``.

    Preconditions: 0 <= x, y < p < 2**n; ``y`` has n+1 qubits (top 0);
    ``t`` and ``work`` are clean and returned clean.
    """
    n = len(x)
    if len(y) != n + 1:
        raise ValueError("y register must have n+1 qubits")
    if not 0 < p < (1 << n):
        raise ValueError("modulus must satisfy 0 < p < 2**n")
    if len(work) < work_pool_size(n, kit_add, kit_mid):
        raise ValueError("work pool too small")
    const = work[:n]
    mid_anc = work[n:]
    y_low, y_top = y[:n], y[n]

    # 1. (controlled) plain addition: y <- y + [ctrl]*x
    if ctrl is None:
        kit_add.emit_add(circ, x, y, work[: kit_add.add_ancillas(n)])
    else:
        if kit_add.emit_add_ctrl is None:
            raise ValueError(f"family {kit_add.name!r} has no controlled adder")
        kit_add.emit_add_ctrl(circ, ctrl, x, y, work[: kit_add.ctrl_add_ancillas(n)])

    # 2. t ^= [x + y < p]  ==  [p > x+y], with the n+1-bit sum handled by
    #    remark 2.32's b_extra; then flip so t = [x + y >= p].
    emit_load_constant(circ, const, p)
    kit_mid.emit_compare_gt(
        circ, const, y_low, t, mid_anc[: kit_mid.compare_ancillas(n)], b_extra=y_top
    )
    emit_load_constant(circ, const, p)
    circ.x(t)

    # 3. controlled subtraction of p (complement sandwich, prop 2.19 load)
    for q in y:
        circ.x(q)
    emit_load_constant_controlled(circ, t, const, p)
    kit_mid.emit_add(circ, const, y, mid_anc[: kit_mid.add_ancillas(n)])
    emit_load_constant_controlled(circ, t, const, p)
    for q in y:
        circ.x(q)

    # 4. uncompute t: t ^= [x > (x+y) mod p]  (== c*[...] when controlled)
    final_anc = work[: kit_add.compare_ancillas(n)]

    def oracle() -> None:
        kit_add.emit_compare_gt(circ, x, y_low, t, final_anc, ctrl=ctrl)

    if mbu:
        emit_mbu_uncompute(circ, t, oracle)
    else:
        oracle()


def _resolve(kit: str | AdderKit) -> AdderKit:
    return KITS[kit] if isinstance(kit, str) else kit


def build_modadd(
    n: int,
    p: int,
    family: str | AdderKit = "cdkpm",
    mid_family: str | AdderKit | None = None,
    mbu: bool = False,
) -> Built:
    """Definition 3.1 as a circuit (props 3.4/3.5, thms 3.6/4.3/4.4/4.5).

    ``family`` serves the plain addition and the final comparator;
    ``mid_family`` (default: same) serves the constant comparison and the
    controlled subtraction — pass ``family='gidney', mid_family='cdkpm'``
    for thm 3.6's hybrid.
    """
    kit_add = _resolve(family)
    kit_mid = _resolve(mid_family if mid_family is not None else family)
    name = f"modadd[{kit_add.name}+{kit_mid.name},n={n},p={p},mbu={mbu}]"
    circ = Circuit(name)
    x = circ.add_register("x", n)
    y = circ.add_register("y", n + 1)
    t = circ.add_register("t", 1)
    work = circ.add_register("work", work_pool_size(n, kit_add, kit_mid))
    emit_modadd(circ, x.qubits, y.qubits, t[0], p, work.qubits, kit_add, kit_mid, mbu=mbu)
    return Built(
        circ, n, ("t", "work"),
        {"op": "modadd", "p": p, "family": kit_add.name, "mid": kit_mid.name, "mbu": mbu},
    )


def build_controlled_modadd(
    n: int,
    p: int,
    family: str | AdderKit = "cdkpm",
    mid_family: str | AdderKit | None = None,
    mbu: bool = False,
) -> Built:
    """Definition 3.8 as a circuit (props 3.10/3.11, thms 4.8/4.9)."""
    kit_add = _resolve(family)
    kit_mid = _resolve(mid_family if mid_family is not None else family)
    name = f"cmodadd[{kit_add.name}+{kit_mid.name},n={n},p={p},mbu={mbu}]"
    circ = Circuit(name)
    ctrl = circ.add_register("ctrl", 1)
    x = circ.add_register("x", n)
    y = circ.add_register("y", n + 1)
    t = circ.add_register("t", 1)
    work = circ.add_register("work", work_pool_size(n, kit_add, kit_mid))
    emit_modadd(
        circ, x.qubits, y.qubits, t[0], p, work.qubits, kit_add, kit_mid,
        mbu=mbu, ctrl=ctrl[0],
    )
    return Built(
        circ, n, ("t", "work"),
        {"op": "cmodadd", "p": p, "family": kit_add.name, "mid": kit_mid.name, "mbu": mbu},
    )
