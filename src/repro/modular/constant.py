"""Modular addition by a classical constant — defs 3.12 / 3.16.

Three architectures, each with an MBU variant:

* ``'generic'``   — prop 3.13 / thm 3.17: load ``a`` into a fresh register
  and run the quantum-quantum modular adder;
* ``'vbe'``       — thm 3.14 / prop 3.18 (MBU: thms 4.10 / 4.12): the VBE
  architecture with the plain addition replaced by a constant addition;
* ``'takahashi'`` — prop 3.15 (MBU: thm 4.11): subtract ``p - a``, add
  ``p`` back controlled on the sign, uncompute the sign with a constant
  comparator — one fewer arithmetic block than the VBE architecture.

The QFT-based constant modular adder (Beauregard, prop 3.19 / fig 23)
lives in ``repro.modular.beauregard``.
"""

from __future__ import annotations

from typing import Sequence

from ..circuits.circuit import Circuit
from ..arithmetic.builders import Built
from ..arithmetic.constant import (
    emit_load_constant,
    emit_load_constant_controlled,
)
from ..arithmetic.families import KITS, AdderKit
from ..mbu.lemma import emit_mbu_uncompute
from .architecture import emit_modadd, work_pool_size

__all__ = [
    "build_modadd_const",
    "build_controlled_modadd_const",
]


def _pool(n: int, kit: AdderKit) -> int:
    return n + max(kit.add_ancillas(n), kit.compare_ancillas(n))


def _emit_modadd_const_vbe_arch(
    circ: Circuit,
    x: Sequence[int],
    t: int,
    p: int,
    a: int,
    work: Sequence[int],
    kit: AdderKit,
    mbu: bool,
    ctrl: int | None,
) -> None:
    """Thm 3.14 (plain) / prop 3.18 (controlled); MBU: thms 4.10 / 4.12."""
    n = len(x) - 1
    const = work[:n]
    anc = work[n:]
    x_low, x_top = x[:n], x[n]

    def load_a() -> None:
        if ctrl is None:
            emit_load_constant(circ, const, a)
        else:
            emit_load_constant_controlled(circ, ctrl, const, a)

    # 1. x += [ctrl]*a  (props 2.16 / 2.19: only the load sees the control)
    load_a()
    kit.emit_add(circ, const, x, anc[: kit.add_ancillas(n)])
    load_a()

    # 2. t ^= [x + a < p]; flip
    emit_load_constant(circ, const, p)
    kit.emit_compare_gt(circ, const, x_low, t, anc[: kit.compare_ancillas(n)], b_extra=x_top)
    emit_load_constant(circ, const, p)
    circ.x(t)

    # 3. controlled subtraction of p
    for q in x:
        circ.x(q)
    emit_load_constant_controlled(circ, t, const, p)
    kit.emit_add(circ, const, x, anc[: kit.add_ancillas(n)])
    emit_load_constant_controlled(circ, t, const, p)
    for q in x:
        circ.x(q)

    # 4. uncompute t ^= [(x+a mod p) < [ctrl]*a]
    def oracle() -> None:
        load_a()
        kit.emit_compare_gt(circ, const, x_low, t, anc[: kit.compare_ancillas(n)])
        load_a()

    if mbu:
        emit_mbu_uncompute(circ, t, oracle)
    else:
        oracle()


def _emit_modadd_const_takahashi(
    circ: Circuit,
    x: Sequence[int],
    t: int,
    p: int,
    a: int,
    work: Sequence[int],
    kit: AdderKit,
    mbu: bool,
) -> None:
    """Prop 3.15 / thm 4.11 (no controlled form in the paper)."""
    n = len(x) - 1
    const = work[:n]
    anc = work[n:]
    x_low, x_top = x[:n], x[n]

    # 1. x -= (p - a): the sign (top bit) becomes [x + a < p]
    for q in x:
        circ.x(q)
    emit_load_constant(circ, const, p - a)
    kit.emit_add(circ, const, x, anc[: kit.add_ancillas(n)])
    emit_load_constant(circ, const, p - a)
    for q in x:
        circ.x(q)

    # 2. copy the sign; controlled on it, add p back (clears the top bit)
    circ.cx(x_top, t)
    emit_load_constant_controlled(circ, t, const, p)
    kit.emit_add(circ, const, x, anc[: kit.add_ancillas(n)])
    emit_load_constant_controlled(circ, t, const, p)

    # 3. uncompute t = [x + a < p] via t ^= NOT [(x+a mod p) < a]
    def oracle() -> None:
        emit_load_constant(circ, const, a)
        kit.emit_compare_gt(circ, const, x_low, t, anc[: kit.compare_ancillas(n)])
        emit_load_constant(circ, const, a)
        circ.x(t)

    if mbu:
        emit_mbu_uncompute(circ, t, oracle)
    else:
        oracle()


def build_modadd_const(
    n: int,
    p: int,
    a: int,
    family: str | AdderKit = "cdkpm",
    architecture: str = "takahashi",
    mbu: bool = False,
) -> Built:
    """|x>_{n+1} -> |x + a mod p>_{n+1}  (def 3.12), 0 <= a, x < p < 2**n."""
    kit = KITS[family] if isinstance(family, str) else family
    if not 0 < p < (1 << n):
        raise ValueError("modulus must satisfy 0 < p < 2**n")
    if not 0 <= a < p:
        raise ValueError("constant must satisfy 0 <= a < p")
    circ = Circuit(f"modaddc[{architecture},{kit.name},n={n},p={p},a={a},mbu={mbu}]")
    x = circ.add_register("x", n + 1)
    t = circ.add_register("t", 1)

    if architecture == "generic":
        a_reg = circ.add_register("a", n)
        work = circ.add_register("work", work_pool_size(n, kit, kit))
        emit_load_constant(circ, a_reg.qubits, a)
        emit_modadd(circ, a_reg.qubits, x.qubits, t[0], p, work.qubits, kit, kit, mbu=mbu)
        emit_load_constant(circ, a_reg.qubits, a)
        anc_names = ("a", "t", "work")
    elif architecture == "vbe":
        work = circ.add_register("work", _pool(n, kit))
        _emit_modadd_const_vbe_arch(
            circ, x.qubits, t[0], p, a, work.qubits, kit, mbu, ctrl=None
        )
        anc_names = ("t", "work")
    elif architecture == "takahashi":
        work = circ.add_register("work", _pool(n, kit))
        _emit_modadd_const_takahashi(circ, x.qubits, t[0], p, a, work.qubits, kit, mbu)
        anc_names = ("t", "work")
    else:
        raise ValueError(f"unknown architecture {architecture!r}")
    return Built(
        circ, n, anc_names,
        {"op": "modaddc", "arch": architecture, "family": kit.name,
         "p": p, "a": a, "mbu": mbu},
    )


def build_controlled_modadd_const(
    n: int,
    p: int,
    a: int,
    family: str | AdderKit = "cdkpm",
    architecture: str = "vbe",
    mbu: bool = False,
) -> Built:
    """|c>|x>_{n+1} -> |c>|x + c*a mod p>_{n+1}  (def 3.16).

    ``architecture='vbe'`` is prop 3.18 (MBU: thm 4.12);
    ``architecture='generic'`` is thm 3.17 (load ``c*a`` and reuse the
    quantum-quantum modular adder).
    """
    kit = KITS[family] if isinstance(family, str) else family
    if not 0 < p < (1 << n):
        raise ValueError("modulus must satisfy 0 < p < 2**n")
    if not 0 <= a < p:
        raise ValueError("constant must satisfy 0 <= a < p")
    circ = Circuit(f"cmodaddc[{architecture},{kit.name},n={n},p={p},a={a},mbu={mbu}]")
    ctrl = circ.add_register("ctrl", 1)
    x = circ.add_register("x", n + 1)
    t = circ.add_register("t", 1)

    if architecture == "generic":
        a_reg = circ.add_register("a", n)
        work = circ.add_register("work", work_pool_size(n, kit, kit))
        emit_load_constant_controlled(circ, ctrl[0], a_reg.qubits, a)
        emit_modadd(circ, a_reg.qubits, x.qubits, t[0], p, work.qubits, kit, kit, mbu=mbu)
        emit_load_constant_controlled(circ, ctrl[0], a_reg.qubits, a)
        anc_names = ("a", "t", "work")
    elif architecture == "vbe":
        work = circ.add_register("work", _pool(n, kit))
        _emit_modadd_const_vbe_arch(
            circ, x.qubits, t[0], p, a, work.qubits, kit, mbu, ctrl=ctrl[0]
        )
        anc_names = ("t", "work")
    else:
        raise ValueError(f"unknown architecture {architecture!r}")
    return Built(
        circ, n, anc_names,
        {"op": "cmodaddc", "arch": architecture, "family": kit.name,
         "p": p, "a": a, "mbu": mbu},
    )
