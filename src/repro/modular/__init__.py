"""Section-3 modular addition circuits (and their section-4 MBU variants,
via the ``mbu=True`` flag on every builder)."""

from .architecture import (
    build_controlled_modadd,
    build_modadd,
    emit_modadd,
    work_pool_size,
)
from .beauregard import build_modadd_const_draper, build_modadd_draper
from .constant import build_controlled_modadd_const, build_modadd_const
from .vbe_original import build_modadd_vbe_original

__all__ = [
    "emit_modadd",
    "work_pool_size",
    "build_modadd",
    "build_controlled_modadd",
    "build_modadd_const",
    "build_controlled_modadd_const",
    "build_modadd_draper",
    "build_modadd_const_draper",
    "build_modadd_vbe_original",
]
