"""Two-tier persistent cache: in-memory LRU over a content-addressed disk tier.

:class:`PersistentCircuitCache` extends the pipeline's
:class:`~repro.pipeline.cache.CircuitCache` (circuits, counts and compiled
programs stay memory-only — they are cheap to rebuild and not JSON-able)
with a *result* tier for the derived artifacts a serving process answers
queries from: gate-count summaries, Monte-Carlo estimates, table rows.
Results are keyed by :func:`spec_fingerprint` — the SHA-256 of a canonical
JSON encoding of the :class:`~repro.pipeline.cache.CircuitSpec` plus any
request parameters that change the answer (Monte-Carlo batch/repeats/seed,
payload schema version) — so a fingerprint *is* the answer's identity:
same fingerprint, same bytes, across processes and restarts.

The disk tier reuses the persistence discipline proven by
:class:`~repro.pipeline.jobs.CheckpointJournal`: entries are written
atomically (tmp file in the same directory + ``os.replace``), carry a
SHA-256 payload checksum, and *anything* wrong on read — missing file,
unparsable JSON, stale schema, foreign fingerprint, broken checksum — is a
cache miss that falls through to recompute, never an error.  A store can
be deleted, truncated or corrupted under a live server and the worst case
is recomputation.

Lookups are single-flight per fingerprint (claimant computes, concurrent
requesters wait and then hit), mirroring the in-memory cache's build
locking: a cold hot-path query hammered by N request threads costs one
build, one simulation, one disk write.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

from ..pipeline.cache import CircuitCache, CircuitSpec
from ..pipeline.jobs import _decode, _encode, _payload_checksum

__all__ = [
    "STORE_SCHEMA_VERSION",
    "TierStats",
    "PersistentCircuitCache",
    "spec_fingerprint",
]

#: Bumped whenever the on-disk result entry layout changes; stale entries
#: are misses, never parse errors (same contract as the checkpoint journal).
STORE_SCHEMA_VERSION = 1


def spec_fingerprint(spec: CircuitSpec, **extra: Any) -> str:
    """The content address of one spec-derived result.

    SHA-256 over a canonical JSON encoding of the spec's full identity
    (kind, n, params, transform chain) plus any ``extra`` request
    parameters that change the derived payload (Monte-Carlo knobs, result
    schema).  Two requests share a fingerprint iff they are answerable by
    the same bytes; the store never has to compare specs structurally.
    """
    payload: Dict[str, Any] = {
        "store_schema": STORE_SCHEMA_VERSION,
        "kind": spec.kind,
        "n": spec.n,
        "params": [[k, v] for k, v in spec.params],
        "transforms": list(spec.transforms),
    }
    if extra:
        payload["extra"] = {k: extra[k] for k in sorted(extra)}
    blob = json.dumps(payload, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()


@dataclass
class TierStats:
    """Lookup counters of the persistent result tier.

    ``memory_hits`` answered from the in-process LRU, ``disk_hits`` from a
    valid on-disk entry, ``misses`` computed fresh; ``corrupt``/``stale``
    count damaged or out-of-schema disk entries (each also recorded as the
    miss it degrades to), ``writes`` successful persists.
    """

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    corrupt: int = 0
    stale: int = 0
    writes: int = 0

    @property
    def hit_ratio(self) -> float:
        served = self.memory_hits + self.disk_hits
        total = served + self.misses
        return served / total if total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "stale": self.stale,
            "writes": self.writes,
            "hit_ratio": round(self.hit_ratio, 4),
        }


class PersistentCircuitCache(CircuitCache):
    """A :class:`~repro.pipeline.cache.CircuitCache` with a disk result tier.

    ``root`` is the store directory (created lazily on first write);
    ``result_maxsize`` bounds the in-memory result LRU (``None`` =
    unbounded).  Results flow memory -> disk -> compute and are promoted
    back up on the way out, so a restarted server answers its warm
    queries from disk without rebuilding or re-simulating anything.

    Only JSON-able payloads pass through :meth:`result` — the exact codec
    is the checkpoint journal's (Fractions tagged, order kept), so a
    payload read back from disk equals the one computed, byte for byte
    once canonically serialized.
    """

    def __init__(
        self,
        root: Union[str, Path],
        maxsize: Optional[int] = 512,
        result_maxsize: Optional[int] = 4096,
    ) -> None:
        super().__init__(maxsize)
        if result_maxsize is not None and result_maxsize < 1:
            raise ValueError("result_maxsize must be positive (or None)")
        self.root = Path(root)
        self.result_maxsize = result_maxsize
        self._results: "OrderedDict[Tuple[str, str], Any]" = OrderedDict()
        self._result_lock = threading.Lock()
        self._result_inflight: Dict[Tuple[str, str], threading.Event] = {}
        self.result_stats = TierStats()

    # ------------------------------------------------------------------ #
    # disk tier

    def result_path(self, family: str, fingerprint: str) -> Path:
        """``root/<family>/<aa>/<fingerprint>.json`` (fanned out by the
        first fingerprint byte so directories stay listable at scale)."""
        return self.root / family / fingerprint[:2] / f"{fingerprint}.json"

    def load_result(self, family: str, fingerprint: str) -> Optional[Any]:
        """The stored payload, or ``None`` on any miss (stats updated).

        Damage is counted (``corrupt``/``stale``) but never raised — the
        caller's recovery path is always "recompute".
        """
        path = self.result_path(family, fingerprint)
        if not path.exists():
            return None
        try:
            entry = json.loads(path.read_text())
            if not isinstance(entry, dict):
                raise ValueError("entry is not an object")
        except (OSError, ValueError):
            with self._result_lock:
                self.result_stats.corrupt += 1
            return None
        if entry.get("schema") != STORE_SCHEMA_VERSION \
                or entry.get("family") != family \
                or entry.get("fingerprint") != fingerprint:
            with self._result_lock:
                self.result_stats.stale += 1
            return None
        payload = entry.get("payload")
        if entry.get("checksum") != _payload_checksum(payload):
            with self._result_lock:
                self.result_stats.corrupt += 1
            return None
        return _decode(payload)

    def store_result(self, family: str, fingerprint: str, payload: Any) -> Path:
        """Atomically persist ``payload`` (tmp + ``os.replace``)."""
        path = self.result_path(family, fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        encoded = _encode(payload)
        entry = {
            "schema": STORE_SCHEMA_VERSION,
            "family": family,
            "fingerprint": fingerprint,
            "checksum": _payload_checksum(encoded),
            "payload": encoded,
        }
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(entry, indent=1) + "\n")
        os.replace(tmp, path)
        with self._result_lock:
            self.result_stats.writes += 1
        return path

    # ------------------------------------------------------------------ #
    # the two-tier lookup

    def result(
        self, family: str, fingerprint: str, compute: Callable[[], Any]
    ) -> Tuple[Any, str]:
        """Two-tier lookup: returns ``(payload, tier)`` with ``tier`` one
        of ``"memory"``, ``"disk"`` or ``"computed"``.

        Single-flight per ``(family, fingerprint)``: under concurrent cold
        requests exactly one thread computes (and persists) while the rest
        wait and then take the memory-hit path.
        """
        key = (family, fingerprint)
        while True:
            with self._result_lock:
                if key in self._results:
                    self.result_stats.memory_hits += 1
                    self._results.move_to_end(key)
                    return self._results[key], "memory"
                waiter = self._result_inflight.get(key)
                if waiter is None:
                    self._result_inflight[key] = threading.Event()
                    break
            waiter.wait()
        try:
            payload = self.load_result(family, fingerprint)
            if payload is not None:
                with self._result_lock:
                    self.result_stats.disk_hits += 1
                self._remember(key, payload)
                return payload, "disk"
            with self._result_lock:
                self.result_stats.misses += 1
            payload = compute()
            self.store_result(family, fingerprint, payload)
            self._remember(key, payload)
            return payload, "computed"
        finally:
            with self._result_lock:
                waiter = self._result_inflight.pop(key, None)
            if waiter is not None:
                waiter.set()

    def _remember(self, key: Tuple[str, str], payload: Any) -> None:
        with self._result_lock:
            self._results[key] = payload
            self._results.move_to_end(key)
            if self.result_maxsize is not None:
                while len(self._results) > self.result_maxsize:
                    self._results.popitem(last=False)

    def drop_memory_results(self) -> None:
        """Forget the in-memory result tier (the disk tier stays) — the
        programmatic equivalent of a process restart, used by tests."""
        with self._result_lock:
            self._results.clear()

    def stats_dict(self) -> Dict[str, Any]:
        """Everything ``/statsz`` reports about this cache: the in-memory
        circuit/counts/program families plus the persistent result tier."""
        return {
            "circuit_cache": self.stats.as_dict(),
            "result_tier": self.result_stats.as_dict(),
            "memory_results": len(self._results),
            "store_root": str(self.root),
        }
