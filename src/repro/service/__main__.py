"""``python -m repro.service`` — run the HTTP serving layer."""

from .http import main

if __name__ == "__main__":
    raise SystemExit(main())
