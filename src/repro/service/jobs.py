"""The service's async job layer: sweep requests over the pipeline executor.

An /estimate request is synchronous because the cache makes it cheap; a
*sweep* (tables × sizes × Monte-Carlo repeats, possibly minutes of work)
is a **job**: submitted, identified, polled, and collected when done.
:class:`JobManager` maps a submitted :class:`~repro.pipeline.runner.SweepConfig`
onto :func:`~repro.pipeline.runner.run_sweep` — and therefore onto
:func:`~repro.pipeline.jobs.execute_tasks` with its full retry /
backoff / pool-respawn / degradation ladder — on a background worker
thread, journaling checkpoints under the service store so an interrupted
job resumes instead of recomputing.

Job identity is the config fingerprint
(:func:`~repro.pipeline.jobs.config_fingerprint`): submitting the same
sweep twice returns the *same* job — the semantic content determines the
result, so there is nothing to run twice.  Results are rendered with
:func:`~repro.pipeline.artifacts.sweep_artifact`, i.e. a job's result is
bytewise the artifact the batch CLI would have written for that config.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from ..pipeline.artifacts import run_report, sweep_artifact
from ..pipeline.jobs import ExecutionPolicy, config_fingerprint
from ..pipeline.runner import SweepConfig, run_sweep

__all__ = ["Job", "JobManager", "sweep_config_from_mapping"]

#: SweepConfig fields a job submission may set; everything else is an error
#: (catching typos like "table" for "tables" at submit time, not run time).
_CONFIG_FIELDS = (
    "tables", "sizes", "seed", "mc_batch", "mc_repeats",
    "workers", "include_savings", "modexp", "transforms",
)


def sweep_config_from_mapping(data: Mapping[str, Any]) -> SweepConfig:
    """Validate and freeze a job submission into a :class:`SweepConfig`.

    Raises ``ValueError`` with a client-presentable message for unknown
    fields, unknown tables and malformed transform chains — a malformed
    job must be rejected at submit time with a 400, never accepted and
    failed asynchronously.
    """
    unknown = sorted(set(data) - set(_CONFIG_FIELDS))
    if unknown:
        raise ValueError(
            f"unknown sweep config field(s): {', '.join(unknown)}; "
            f"accepted: {', '.join(_CONFIG_FIELDS)}"
        )
    kwargs: Dict[str, Any] = {}
    if "tables" in data:
        from ..resources.tables import TABLE_SPECS

        tables = tuple(str(t) for t in data["tables"])
        bad = [t for t in tables if t not in TABLE_SPECS]
        if bad:
            raise ValueError(
                f"unknown table(s): {', '.join(bad)}; "
                f"available: {', '.join(sorted(TABLE_SPECS))}"
            )
        kwargs["tables"] = tables
    if "sizes" in data:
        kwargs["sizes"] = tuple(int(n) for n in data["sizes"])
    for name in ("seed", "mc_batch", "mc_repeats"):
        if name in data:
            kwargs[name] = int(data[name])
    if "workers" in data and data["workers"] is not None:
        kwargs["workers"] = int(data["workers"])
    if "include_savings" in data:
        kwargs["include_savings"] = bool(data["include_savings"])
    if "modexp" in data:
        kwargs["modexp"] = tuple((int(ne), int(n)) for ne, n in data["modexp"])
    if "transforms" in data:
        from ..transform import parse_transform_chain

        kwargs["transforms"] = parse_transform_chain(data["transforms"])
    return SweepConfig(**kwargs)


@dataclass
class Job:
    """One submitted sweep and its execution story."""

    id: str
    config: SweepConfig
    status: str = "queued"           # queued | running | done | failed
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    artifact: Optional[Dict[str, Any]] = None   # sweep_artifact(result)
    report: Optional[Dict[str, Any]] = None     # run_report(result)

    def status_dict(self) -> Dict[str, Any]:
        """The /jobs/<id> response: progress without the (large) result."""
        out: Dict[str, Any] = {
            "id": self.id,
            "status": self.status,
            "config": {
                "tables": list(self.config.tables),
                "sizes": list(self.config.sizes),
                "seed": self.config.seed,
                "mc_batch": self.config.mc_batch,
                "mc_repeats": self.config.mc_repeats,
                "modexp": [list(pair) for pair in self.config.modexp],
                "transforms": list(self.config.transforms),
            },
            "submitted_at": round(self.submitted_at, 3),
            "started_at": round(self.started_at, 3) if self.started_at else None,
            "finished_at": round(self.finished_at, 3) if self.finished_at else None,
            "error": self.error,
        }
        if self.report is not None:
            out["tasks"] = {
                "total": len(self.report.get("tasks", [])),
                "failed": len(self.report.get("failures", [])),
            }
            out["execution_modes"] = self.report.get("execution_modes")
            out["journal"] = self.report.get("journal")
        return out


class JobManager:
    """Submit/status/result over a bounded background worker pool.

    ``store`` (when set) roots each job's checkpoint journal at
    ``store/jobs``, so a crashed or restarted service resumes its
    in-flight sweeps from completed-task checkpoints.  ``policy`` is the
    execution policy template; per job it is re-rooted at the journal and
    forced to ``fail_fast=False`` (an async job must report its failures,
    not vanish with a traceback nobody saw).
    """

    def __init__(
        self,
        store: Optional[Union[str, Path]] = None,
        policy: Optional[ExecutionPolicy] = None,
        workers: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.store = Path(store) if store is not None else None
        self.policy = policy or ExecutionPolicy()
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-job"
        )

    def _job_policy(self) -> ExecutionPolicy:
        journal = str(self.store / "jobs") if self.store is not None else None
        return replace(self.policy, store=journal, resume=True, fail_fast=False)

    def submit(self, config: SweepConfig) -> Job:
        """Queue ``config``; identical configs coalesce onto one job.

        A previously *failed* job with the same fingerprint is resubmitted
        (its journal still holds whatever completed, so the retry resumes).
        """
        job_id = f"job-{config_fingerprint(config)}"
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None and existing.status != "failed":
                return existing
            job = Job(id=job_id, config=config)
            self._jobs[job_id] = job
            if job_id not in self._order:
                self._order.append(job_id)
        self._pool.submit(self._run, job)
        return job

    def _run(self, job: Job) -> None:
        with self._lock:
            job.status = "running"
            job.started_at = time.time()
        try:
            result = run_sweep(job.config, policy=self._job_policy())
            artifact = sweep_artifact(result)
            report = run_report(result)
        except Exception as exc:  # surfaced via status, never raised away
            with self._lock:
                job.status = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
                job.finished_at = time.time()
            return
        with self._lock:
            job.artifact = artifact
            job.report = report
            job.status = "failed" if report.get("failures") else "done"
            if job.status == "failed":
                job.error = f"{len(report['failures'])} sweep task(s) failed"
            job.finished_at = time.time()

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def list(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [self._jobs[jid].status_dict() for jid in self._order]

    def summary(self) -> Dict[str, int]:
        with self._lock:
            counts: Dict[str, int] = {}
            for job in self._jobs.values():
                counts[job.status] = counts.get(job.status, 0) + 1
            counts["total"] = len(self._jobs)
            return counts

    def shutdown(self, wait: bool = False) -> None:
        self._pool.shutdown(wait=wait, cancel_futures=True)
