"""repro.service: the serving layer over the reproduction pipeline.

Turns the batch pipeline into a long-lived process: a two-tier
(memory LRU + content-addressed disk) :class:`PersistentCircuitCache`
answers repeated resource-estimation queries without rebuilding or
re-simulating anything — including across restarts — and a
:class:`JobManager` runs full table sweeps asynchronously on the
pipeline's fault-tolerant executor.  ``python -m repro.service`` exposes
both over a thin stdlib HTTP/JSON API (see :mod:`repro.service.http`
for the routes, ``docs/service.md`` for the contract).
"""

from .api import (
    ESTIMATE_SCHEMA_VERSION,
    EstimateRequest,
    canonical_json,
    compute_estimate,
    serve_estimate,
)
from .http import ReproRequestHandler, ServiceState, main, serve
from .jobs import Job, JobManager, sweep_config_from_mapping
from .store import (
    STORE_SCHEMA_VERSION,
    PersistentCircuitCache,
    TierStats,
    spec_fingerprint,
)

__all__ = [
    "ESTIMATE_SCHEMA_VERSION",
    "STORE_SCHEMA_VERSION",
    "EstimateRequest",
    "Job",
    "JobManager",
    "PersistentCircuitCache",
    "ReproRequestHandler",
    "ServiceState",
    "TierStats",
    "canonical_json",
    "compute_estimate",
    "main",
    "serve",
    "serve_estimate",
    "spec_fingerprint",
    "sweep_config_from_mapping",
]
