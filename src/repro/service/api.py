"""Estimate requests: parsing, deterministic payloads, the cache-hot path.

An :class:`EstimateRequest` is the service's unit of query — "estimate
resources for modexp n=8 with MBU, 4 Monte-Carlo repeats" — normalized
into the same frozen shape whether it arrived as JSON (``POST
/estimate``) or query parameters (``GET /estimate?kind=modexp&n=8&...``).
Normalization matters because the request's :meth:`~EstimateRequest.fingerprint`
is the cache key: two spellings of the same question must hash alike.

:func:`compute_estimate` produces a fully deterministic payload — exact
expected-mode gate counts (Fractions preserved), qubit/ancilla widths,
and (where the circuit has basis-state semantics) a Monte-Carlo estimate
whose stream is seeded by request content via
:func:`~repro.pipeline.montecarlo.derive_seed`.  Nothing time- or
schedule-dependent enters the payload, which is what makes the service's
consistency contract possible: a repeated request is served from cache
byte-identically, and a restarted server re-serves the same bytes from
the disk tier (asserted end-to-end by ``tests/test_service.py`` and the
CI ``service-smoke`` job).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from ..pipeline.cache import BUILDERS, CircuitSpec
from ..pipeline.jobs import _encode
from ..pipeline.montecarlo import DEFAULT_GATES, derive_seed, mc_or_none
from ..sim.classical import UnsupportedGateError
from .store import PersistentCircuitCache, spec_fingerprint

__all__ = [
    "ESTIMATE_SCHEMA_VERSION",
    "EstimateRequest",
    "canonical_json",
    "compute_estimate",
    "serve_estimate",
]

#: Versioned with the payload layout; part of every fingerprint, so a
#: schema bump silently invalidates (orphans) old disk entries.
ESTIMATE_SCHEMA_VERSION = 1

#: Request fields with reserved meaning; anything else is a builder kwarg.
_RESERVED = ("kind", "n", "transforms", "mc", "mc_batch", "mc_repeats", "seed")

#: Bounds that keep a single synchronous /estimate request tractable.
MAX_MC_BATCH = 1 << 16
MAX_MC_REPEATS = 64


def _coerce(value: Any) -> Any:
    """Normalize one parameter value: query strings become the ints/bools
    JSON would have carried, so GET and POST fingerprints agree."""
    if isinstance(value, str):
        lowered = value.lower()
        if lowered in ("true", "yes", "on"):
            return True
        if lowered in ("false", "no", "off"):
            return False
        try:
            return int(value)
        except ValueError:
            return value
    return value


def _require_int(name: str, value: Any, minimum: int, maximum: int) -> int:
    value = _coerce(value)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    if not minimum <= value <= maximum:
        raise ValueError(f"{name} must be in [{minimum}, {maximum}], got {value}")
    return value


@dataclass(frozen=True)
class EstimateRequest:
    """One normalized resource-estimation query (the /estimate unit)."""

    kind: str
    n: int
    params: Tuple[Tuple[str, Any], ...] = ()
    transforms: Tuple[str, ...] = ()
    mc: bool = True
    mc_batch: int = 256
    mc_repeats: int = 1
    seed: int = 0

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "EstimateRequest":
        """Build a request from decoded JSON or query parameters.

        Raises ``ValueError`` with a client-presentable message on any
        invalid field; unknown keys are forwarded to the circuit builder
        as keyword arguments (where the builder itself validates them).
        """
        if "kind" not in data:
            raise ValueError(
                f"missing 'kind'; options: {', '.join(sorted(BUILDERS))}"
            )
        kind = str(data["kind"])
        if kind not in BUILDERS:
            raise ValueError(
                f"unknown builder kind {kind!r}; options: {', '.join(sorted(BUILDERS))}"
            )
        if "n" not in data:
            raise ValueError("missing 'n' (register width)")
        n = _require_int("n", data["n"], 1, 1 << 20)
        transforms = data.get("transforms", ())
        if isinstance(transforms, str):
            transforms = tuple(t for t in transforms.split(",") if t)
        else:
            transforms = tuple(str(t) for t in transforms)
        mc = _coerce(data.get("mc", True))
        if not isinstance(mc, bool):
            raise ValueError(f"mc must be a boolean, got {data.get('mc')!r}")
        params = tuple(sorted(
            (key, _coerce(value)) for key, value in data.items()
            if key not in _RESERVED
        ))
        return cls(
            kind=kind,
            n=n,
            params=params,
            transforms=transforms,
            mc=mc,
            mc_batch=_require_int("mc_batch", data.get("mc_batch", 256), 1, MAX_MC_BATCH),
            mc_repeats=_require_int("mc_repeats", data.get("mc_repeats", 1), 1, MAX_MC_REPEATS),
            seed=_require_int("seed", data.get("seed", 0), 0, (1 << 63) - 1),
        )

    def spec(self) -> CircuitSpec:
        """The construction key this request resolves to (validates the
        transform chain; builder kwargs are validated at build time)."""
        return CircuitSpec.make(
            self.kind, self.n, transforms=self.transforms, **dict(self.params)
        )

    def as_dict(self) -> Dict[str, Any]:
        """The canonical echo embedded in every payload (and nothing else:
        this dict plus the schema version determines the fingerprint)."""
        return {
            "kind": self.kind,
            "n": self.n,
            "params": {k: v for k, v in self.params},
            "transforms": list(self.transforms),
            "mc": self.mc,
            "mc_batch": self.mc_batch,
            "mc_repeats": self.mc_repeats,
            "seed": self.seed,
        }

    def fingerprint(self) -> str:
        """The content address of this request's answer."""
        return spec_fingerprint(
            self.spec(),
            estimate_schema=ESTIMATE_SCHEMA_VERSION,
            mc=self.mc,
            mc_batch=self.mc_batch,
            mc_repeats=self.mc_repeats,
            seed=self.seed,
        )


def canonical_json(payload: Any) -> str:
    """The service's one serialization: checkpoint-journal codec (exact
    Fractions) + sorted keys + compact separators.  Every tier of the
    cache serializes through here, which is what makes "byte-identical
    across memory hits, disk hits and recomputes" a checkable contract
    rather than an aspiration.
    """
    return json.dumps(_encode(payload), sort_keys=True, separators=(",", ":"))


def compute_estimate(request: EstimateRequest, cache) -> Dict[str, Any]:
    """The uncached estimate payload (deterministic, JSON-able via
    :func:`canonical_json`; Fractions kept exact in memory).

    Every lookup goes through the (single-flight, memoizing) cache, so
    concurrent cold requests for the same spec still build and compile
    once.  QFT-based circuits without basis-state semantics report
    ``"mc": null`` instead of failing the whole request.
    """
    spec = request.spec()
    try:
        built = cache.build(spec)
    except TypeError as exc:
        # A builder rejecting its kwargs is the client's error, not ours.
        raise ValueError(f"builder {request.kind!r} rejected parameters: {exc}") from exc
    counts = cache.counts(spec)
    payload: Dict[str, Any] = {
        "schema": ESTIMATE_SCHEMA_VERSION,
        "spec": spec.key,
        "request": request.as_dict(),
        "qubits": built.logical_qubits,
        "ancillas": built.ancilla_count,
        "toffoli": counts.toffoli,
        "cnot": counts.cnot_cz,
        "counts": {name: counts.counts[name] for name in sorted(counts.counts)},
        "mc": None,
    }
    if request.mc:
        try:
            program = cache.program(spec)
        except UnsupportedGateError:
            program = None
        if program is not None:
            estimate = mc_or_none(
                built,
                batch=request.mc_batch,
                repeats=request.mc_repeats,
                gates=DEFAULT_GATES,
                seed=derive_seed(request.seed, "estimate", spec.key),
                program=program,
            )
            if estimate is not None:
                payload["mc"] = {
                    "gates": list(estimate.gates),
                    "samples": estimate.samples,
                    "mean": estimate.mean,
                    "ci95": round(estimate.ci95, 9),
                    "stderr": round(estimate.stderr, 9),
                }
    return payload


def serve_estimate(
    request: EstimateRequest, cache: PersistentCircuitCache
) -> Tuple[Dict[str, Any], str]:
    """The hot path: answer ``request`` through the two-tier cache.

    Returns ``(payload, tier)`` where ``tier`` records where the answer
    came from (``memory`` / ``disk`` / ``computed``) — surfaced as the
    ``X-Repro-Cache`` response header, deliberately *outside* the JSON
    body so repeated responses stay byte-identical.
    """
    return cache.result(
        "estimate", request.fingerprint(), lambda: compute_estimate(request, cache)
    )
