"""The stdlib HTTP/JSON front end: ``python -m repro.service``.

A deliberately thin layer — no framework, just ``http.server`` on a
threading server — over :mod:`repro.service.api` (synchronous, cache-hot
estimates) and :mod:`repro.service.jobs` (async sweeps).  Routes:

``GET/POST /estimate``
    One resource estimate, served through the two-tier cache.  GET takes
    query parameters, POST a JSON body; both normalize to the same
    fingerprint.  The response body is :func:`~repro.service.api.canonical_json`
    of the payload; the serving tier (``memory``/``disk``/``computed``)
    travels in the ``X-Repro-Cache`` header, outside the body, so
    repeated responses stay byte-identical.

``POST /jobs`` / ``GET /jobs`` / ``GET /jobs/<id>`` / ``GET /jobs/<id>/result``
    Submit a sweep config (202 with the job's status), list jobs, poll
    one, fetch the finished artifact (404 unknown, 409 until done).

``GET /healthz`` / ``GET /statsz``
    Liveness, and the cache/job counters the CI smoke job asserts on.

Client errors are ``{"error": "<message>"}`` with a 400; unroutable
paths 404; anything unexpected a 500 that names only the exception type.
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Sequence, Tuple
from urllib.parse import parse_qsl, urlsplit

from .api import EstimateRequest, canonical_json, serve_estimate
from .jobs import JobManager, sweep_config_from_mapping
from .store import PersistentCircuitCache

__all__ = ["ServiceState", "ReproRequestHandler", "serve", "main"]

#: Cap request bodies well above any sane sweep config, far below a DoS.
MAX_BODY_BYTES = 1 << 20


class ServiceState:
    """Everything a running service holds: the cache, the jobs, the clock."""

    def __init__(
        self,
        store: str = "service-store",
        cache_maxsize: Optional[int] = 512,
        result_maxsize: Optional[int] = 4096,
        job_workers: int = 1,
    ) -> None:
        self.cache = PersistentCircuitCache(
            store, maxsize=cache_maxsize, result_maxsize=result_maxsize
        )
        self.jobs = JobManager(store=store, workers=job_workers)
        self.started_at = time.time()
        self._requests = 0
        self._errors = 0
        self._lock = threading.Lock()

    def count_request(self, ok: bool) -> None:
        with self._lock:
            self._requests += 1
            if not ok:
                self._errors += 1

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            requests, errors = self._requests, self._errors
        return {
            "uptime_s": round(time.time() - self.started_at, 3),
            "requests": requests,
            "errors": errors,
            "cache": self.cache.stats_dict(),
            "jobs": self.jobs.summary(),
        }


class ReproRequestHandler(BaseHTTPRequestHandler):
    """Routes one connection; all state lives on ``server.state``."""

    server_version = "repro-service"
    protocol_version = "HTTP/1.1"

    # -------------------------------------------------------------- #
    # plumbing

    @property
    def state(self) -> ServiceState:
        return self.server.state  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):  # quiet by default
            super().log_message(format, *args)

    def _send(
        self,
        status: int,
        body: str,
        headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        data = (body + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)
        self.state.count_request(ok=status < 400)

    def _send_json(
        self,
        status: int,
        payload: Any,
        headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        self._send(status, canonical_json(payload), headers)

    def _error(self, status: int, message: str) -> None:
        self._send(status, json.dumps({"error": message}))

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            data = json.loads(raw)
        except ValueError:
            raise ValueError("request body is not valid JSON")
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    def _dispatch(self, handler, *args: Any) -> None:
        try:
            handler(*args)
        except ValueError as exc:
            self._error(400, str(exc))
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception as exc:  # pragma: no cover - defensive
            self._error(500, f"internal error: {type(exc).__name__}")

    # -------------------------------------------------------------- #
    # routing

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        url = urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        if url.path == "/healthz":
            self._send(200, json.dumps({"status": "ok"}))
        elif url.path == "/statsz":
            self._send_json(200, self.state.stats())
        elif url.path == "/estimate":
            params = dict(parse_qsl(url.query))
            self._dispatch(self._handle_estimate, params)
        elif parts[:1] == ["jobs"] and len(parts) == 1:
            self._send_json(200, {"jobs": self.state.jobs.list()})
        elif parts[:1] == ["jobs"] and len(parts) == 2:
            self._dispatch(self._handle_job_status, parts[1])
        elif parts[:1] == ["jobs"] and len(parts) == 3 and parts[2] == "result":
            self._dispatch(self._handle_job_result, parts[1])
        else:
            self._error(404, f"no route for GET {url.path}")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        url = urlsplit(self.path)
        if url.path == "/estimate":
            self._dispatch(self._handle_estimate_post)
        elif url.path == "/jobs":
            self._dispatch(self._handle_job_submit)
        else:
            self._error(404, f"no route for POST {url.path}")

    # -------------------------------------------------------------- #
    # handlers

    def _handle_estimate(self, params: Dict[str, Any]) -> None:
        request = EstimateRequest.from_mapping(params)
        payload, tier = serve_estimate(request, self.state.cache)
        self._send_json(200, payload, headers=(("X-Repro-Cache", tier),))

    def _handle_estimate_post(self) -> None:
        self._handle_estimate(self._read_body())

    def _handle_job_submit(self) -> None:
        config = sweep_config_from_mapping(self._read_body())
        job = self.state.jobs.submit(config)
        self._send_json(202, job.status_dict())

    def _handle_job_status(self, job_id: str) -> None:
        job = self.state.jobs.get(job_id)
        if job is None:
            self._error(404, f"unknown job {job_id!r}")
            return
        self._send_json(200, job.status_dict())

    def _handle_job_result(self, job_id: str) -> None:
        job = self.state.jobs.get(job_id)
        if job is None:
            self._error(404, f"unknown job {job_id!r}")
            return
        if job.status == "failed":
            self._send_json(500, {"error": job.error, "job": job.status_dict()})
            return
        if job.status != "done" or job.artifact is None:
            self._error(409, f"job {job_id} is {job.status}; result not ready")
            return
        self._send_json(200, {"job": job.id, "artifact": job.artifact,
                              "report": job.report})


def serve(
    host: str = "127.0.0.1",
    port: int = 8754,
    store: str = "service-store",
    job_workers: int = 1,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """A ready-to-run server (not yet serving; call ``serve_forever`` or
    drive it from a thread).  ``port=0`` binds an ephemeral port — the
    test suite's pattern; read the bound address from ``server_address``.
    """
    server = ThreadingHTTPServer((host, port), ReproRequestHandler)
    server.state = ServiceState(store=store, job_workers=job_workers)  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    server.daemon_threads = True
    return server


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve resource estimates and sweep jobs over HTTP/JSON.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8754,
                        help="bind port (default 8754; 0 = ephemeral)")
    parser.add_argument("--store", default="service-store",
                        help="persistent cache + job journal directory "
                             "(default ./service-store)")
    parser.add_argument("--job-workers", type=int, default=1,
                        help="concurrent background sweep jobs (default 1)")
    parser.add_argument("--verbose", action="store_true",
                        help="log each request to stderr")
    args = parser.parse_args(argv)
    if args.job_workers < 1:
        parser.error("--job-workers must be >= 1")

    server = serve(args.host, args.port, store=args.store,
                   job_workers=args.job_workers, verbose=args.verbose)
    host, port = server.server_address[:2]
    print(f"repro.service on http://{host}:{port} (store: {args.store})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        state: ServiceState = server.state  # type: ignore[attr-defined]
        state.jobs.shutdown()
        server.server_close()
    return 0
