"""The reproduction pipeline: cached sweeps, Monte-Carlo checks, artifacts.

This package turns the repo from "library + scripts" into a results
factory.  Layer by layer:

* :mod:`~repro.pipeline.cache` — :class:`CircuitSpec` (a frozen,
  picklable construction key: builder kind × n × modulus × MBU on/off)
  and :class:`CircuitCache` (thread-safe LRU memo of built circuits and
  their expected-mode counts);
* :mod:`~repro.pipeline.montecarlo` — empirical expected-cost estimates
  with confidence intervals, from the bit-plane backend's per-lane
  tallies over seeded random measurement outcomes;
* :mod:`~repro.pipeline.noise` — protocol success and postselection
  rates under the bit-flip channel of :mod:`repro.noise`, with 95%
  confidence intervals and a separate versioned ``noise`` artifact
  (``--noise-rates`` on the CLI);
* :mod:`~repro.pipeline.jobs` — the fault-tolerant execution layer:
  :class:`CheckpointJournal` (content-addressed, atomic, checksummed
  on-disk store of completed task payloads; resume = replay valid
  entries) and :func:`execute_tasks` (individual submission with
  per-task timeout, bounded retries with deterministic backoff,
  ``BrokenProcessPool`` respawn and a process → thread → serial
  degradation ladder, all reported per task via :class:`TaskReport`);
* :mod:`~repro.pipeline.faults` — the deterministic fault-injection
  harness (``raise`` / ``hang`` / worker ``kill`` / checkpoint
  ``corrupt``) the chaos suite uses to prove the layer above;
* :mod:`~repro.pipeline.runner` — :func:`run_sweep`: paper tables ×
  sizes (+ the section 1.1 savings and the modexp large workload) over a
  ``concurrent.futures`` worker pool, with per-task seeds derived so the
  output is scheduling-, retry- and resume-independent;
* :mod:`~repro.pipeline.artifacts` — canonical, versioned JSON +
  markdown artifacts, the golden-file diff CI uses as a regression
  gate, and the separate run-report artifact carrying execution
  diagnostics;
* :mod:`~repro.pipeline.cli` — ``python -m repro.pipeline`` (also driven
  by ``examples/reproduce_paper.py``).

Import-order note: ``repro.resources.tables`` declares the paper tables
in terms of :class:`CircuitSpec`, so this package must stay importable
without importing :mod:`repro.resources`; the runner and artifact layers
import it lazily inside functions.
"""

from .artifacts import (
    RUN_REPORT_SCHEMA_VERSION,
    SCHEMA_VERSION,
    diff_artifacts,
    load_artifact,
    render_markdown,
    run_report,
    sweep_artifact,
    write_artifact,
    write_run_report,
)
from .cache import (
    BUILDERS,
    CacheStats,
    CircuitCache,
    CircuitSpec,
    build_spec,
    default_cache,
)
from .faults import FaultInjected, FaultPlan, FaultSpec
from .jobs import (
    JOURNAL_SCHEMA_VERSION,
    CheckpointJournal,
    ExecutionPolicy,
    SweepExecutionError,
    TaskReport,
    config_fingerprint,
    execute_tasks,
    task_key,
)
from .montecarlo import MCEstimate, derive_seed, mc_expected_counts, mc_or_none
from .noise import (
    NOISE_SCHEMA_VERSION,
    NoiseEstimate,
    NoiseSweepResult,
    estimate_success,
    noise_artifact,
    noise_sweep,
    write_noise_artifact,
)
from .runner import (
    SweepConfig,
    SweepResult,
    modexp_row,
    run_sweep,
    table_rows_with_mc,
)

__all__ = [
    "BUILDERS",
    "CircuitSpec",
    "CircuitCache",
    "CacheStats",
    "build_spec",
    "default_cache",
    "MCEstimate",
    "derive_seed",
    "mc_expected_counts",
    "mc_or_none",
    "SweepConfig",
    "SweepResult",
    "run_sweep",
    "table_rows_with_mc",
    "modexp_row",
    "NOISE_SCHEMA_VERSION",
    "NoiseEstimate",
    "NoiseSweepResult",
    "estimate_success",
    "noise_sweep",
    "noise_artifact",
    "write_noise_artifact",
    "SCHEMA_VERSION",
    "RUN_REPORT_SCHEMA_VERSION",
    "sweep_artifact",
    "render_markdown",
    "write_artifact",
    "load_artifact",
    "diff_artifacts",
    "run_report",
    "write_run_report",
    "JOURNAL_SCHEMA_VERSION",
    "CheckpointJournal",
    "ExecutionPolicy",
    "TaskReport",
    "SweepExecutionError",
    "config_fingerprint",
    "execute_tasks",
    "task_key",
    "FaultPlan",
    "FaultSpec",
    "FaultInjected",
]
