"""Keyed, memoizing circuit construction: :class:`CircuitSpec` + :class:`CircuitCache`.

A :class:`CircuitSpec` is a frozen, hashable, picklable description of one
constructed circuit — builder kind × ``n`` × (family, modulus, constant,
MBU on/off, ...).  :func:`build_spec` dispatches it through the
:data:`BUILDERS` registry to the ordinary ``build_*`` constructors, and
:class:`CircuitCache` memoizes both the built circuit and its
expected-mode gate counts, so a sweep that revisits the same
(family, n, p, mbu) cell — Table 1 + the savings summary + a Monte-Carlo
pass all touch the same circuits — pays for construction once.

This module sits *below* :mod:`repro.resources` in the import graph (the
declarative table specs in ``resources/tables.py`` are written in terms of
``CircuitSpec``), so it must not import anything from ``repro.resources``
or the higher pipeline layers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from ..arithmetic import (
    build_add_const,
    build_adder,
    build_comparator,
    build_compare_lt_const,
    build_controlled_add_const,
    build_controlled_adder,
    build_controlled_comparator,
    build_sub_const,
    build_subtractor,
)
from ..arithmetic.builders import Built
from ..extensions import (
    build_inplace_mul_const_mod,
    build_modexp,
    build_mul_const_mod,
)
from ..modular import (
    build_controlled_modadd,
    build_controlled_modadd_const,
    build_modadd,
    build_modadd_const,
    build_modadd_const_draper,
    build_modadd_draper,
    build_modadd_vbe_original,
)
from ..sim.classical import UnsupportedGateError
from ..transform import apply_transforms, parse_transform_chain

__all__ = [
    "BUILDERS",
    "CircuitSpec",
    "CircuitCache",
    "CacheStats",
    "build_spec",
    "default_cache",
]

#: Builder registry: spec ``kind`` -> ``build_*`` constructor.  Every
#: constructor takes ``n`` plus the keyword arguments carried in
#: ``CircuitSpec.params`` and returns a :class:`Built`.
BUILDERS: Dict[str, Callable[..., Built]] = {
    "adder": build_adder,
    "subtractor": build_subtractor,
    "controlled_adder": build_controlled_adder,
    "add_const": build_add_const,
    "controlled_add_const": build_controlled_add_const,
    "sub_const": build_sub_const,
    "comparator": build_comparator,
    "controlled_comparator": build_controlled_comparator,
    "compare_lt_const": build_compare_lt_const,
    "modadd": build_modadd,
    "controlled_modadd": build_controlled_modadd,
    "modadd_vbe_original": build_modadd_vbe_original,
    "modadd_draper": build_modadd_draper,
    "modadd_const": build_modadd_const,
    "modadd_const_draper": build_modadd_const_draper,
    "controlled_modadd_const": build_controlled_modadd_const,
    "mul_const_mod": build_mul_const_mod,
    "inplace_mul_const_mod": build_inplace_mul_const_mod,
    "modexp": build_modexp,
}


@dataclass(frozen=True)
class CircuitSpec:
    """A frozen construction request: the cache key of one circuit.

    ``params`` is a sorted tuple of (keyword, value) pairs forwarded to
    the builder — e.g. ``(("family", "cdkpm"), ("mbu", True), ("p", 251))``.
    Use :meth:`make` to normalize keyword order.

    ``transforms`` is an ordered chain of registered
    :mod:`repro.transform` pass names applied to the built circuit
    (``build_spec`` runs them).  It is part of the spec — and therefore of
    the cache key and the artifact's row identity — because a transformed
    circuit is a different circuit: ``modadd`` with and without
    ``lower_toffoli`` must never alias in a :class:`CircuitCache`.
    """

    kind: str
    n: int
    params: Tuple[Tuple[str, Any], ...] = ()
    transforms: Tuple[str, ...] = ()

    @classmethod
    def make(
        cls,
        kind: str,
        n: int,
        transforms: Any = (),
        **params: Any,
    ) -> "CircuitSpec":
        if kind not in BUILDERS:
            raise ValueError(f"unknown builder kind {kind!r}; options: {sorted(BUILDERS)}")
        return cls(kind, n, tuple(sorted(params.items())), parse_transform_chain(transforms))

    def kwargs(self) -> Dict[str, Any]:
        return {"n": self.n, **dict(self.params)}

    @property
    def key(self) -> str:
        """A compact, human-readable identity string (artifact-friendly)."""
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        chain = f"|{'+'.join(self.transforms)}" if self.transforms else ""
        return f"{self.kind}[n={self.n}{',' if inner else ''}{inner}{chain}]"

    def __str__(self) -> str:  # pragma: no cover - display only
        return self.key


def build_spec(spec: CircuitSpec) -> Built:
    """Construct (and transform) the circuit a :class:`CircuitSpec`
    describes (uncached)."""
    try:
        builder = BUILDERS[spec.kind]
    except KeyError:
        raise ValueError(
            f"unknown builder kind {spec.kind!r}; options: {sorted(BUILDERS)}"
        ) from None
    built = builder(**spec.kwargs())
    if not spec.transforms:
        return built
    circuit = apply_transforms(built.circuit, spec.transforms)
    # Registers a pass allocated (e.g. lower_toffoli's AND ancilla) are
    # ancillas by construction: passes never add data registers.
    extra = tuple(
        name for name in circuit.registers if name not in built.circuit.registers
    )
    return Built(
        circuit,
        built.n,
        built.ancilla_names + extra,
        {**built.meta, "transforms": spec.transforms},
    )


def _ratio(hits: int, misses: int) -> float:
    total = hits + misses
    return hits / total if total else 0.0


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`CircuitCache`.

    Three lookup families are tracked independently — circuits
    (``hits``/``misses``), memoized counts (``count_*``) and compiled
    programs (``program_*``) — and :attr:`hit_ratio` aggregates across
    *all* of them.  A sweep's cache-effectiveness number must not ignore
    the count and program lookups: the Monte-Carlo hot path does far more
    of those than raw circuit builds, so the circuit-only ratio both
    under- and over-stated reuse depending on the workload mix.  The
    per-family ratios are reported alongside in :meth:`as_dict`.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    count_hits: int = 0
    count_misses: int = 0
    program_hits: int = 0
    program_misses: int = 0

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups aggregated across every family."""
        return _ratio(
            self.hits + self.count_hits + self.program_hits,
            self.misses + self.count_misses + self.program_misses,
        )

    @property
    def circuit_hit_ratio(self) -> float:
        return _ratio(self.hits, self.misses)

    @property
    def count_hit_ratio(self) -> float:
        return _ratio(self.count_hits, self.count_misses)

    @property
    def program_hit_ratio(self) -> float:
        return _ratio(self.program_hits, self.program_misses)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "count_hits": self.count_hits,
            "count_misses": self.count_misses,
            "program_hits": self.program_hits,
            "program_misses": self.program_misses,
            "hit_ratio": round(self.hit_ratio, 4),
            "circuit_hit_ratio": round(self.circuit_hit_ratio, 4),
            "count_hit_ratio": round(self.count_hit_ratio, 4),
            "program_hit_ratio": round(self.program_hit_ratio, 4),
        }


class CircuitCache:
    """LRU-bounded memo of :class:`CircuitSpec` -> :class:`Built` (+ counts).

    Thread-safe: sweep workers running in threads — and the service's
    request handlers — share one instance; the process-pool path gives
    each worker process its own.  ``maxsize=None`` disables eviction.

    Lookups are *single-flight*: when N threads miss the same key
    concurrently, exactly one constructs (outside the lock — builds and
    compiles are slow) while the rest wait on a per-key event and then
    take the hit path.  Without this, a cache shared across request
    threads would build every hot circuit once per thread on a cold
    start, and the stats would report N misses for one build.
    """

    def __init__(self, maxsize: Optional[int] = 512) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError("maxsize must be positive (or None for unbounded)")
        self.maxsize = maxsize
        self._entries: "OrderedDict[CircuitSpec, Built]" = OrderedDict()
        self._counts: Dict[Tuple[CircuitSpec, str], Any] = {}
        self._programs: Dict[Tuple[CircuitSpec, bool, bool], Any] = {}
        self._lock = threading.Lock()
        #: In-flight constructions, keyed by a family-tagged token.  The
        #: claimant computes; everyone else waits on the Event and re-probes.
        self._inflight: Dict[Tuple[Any, ...], threading.Event] = {}
        self.stats = CacheStats()

    def _release(self, token: Tuple[Any, ...]) -> None:
        with self._lock:
            waiter = self._inflight.pop(token, None)
        if waiter is not None:
            waiter.set()

    def build(self, spec: CircuitSpec) -> Built:
        """Return the (possibly cached) circuit for ``spec``."""
        token = ("build", spec)
        while True:
            with self._lock:
                built = self._entries.get(spec)
                if built is not None:
                    self.stats.hits += 1
                    self._entries.move_to_end(spec)
                    return built
                waiter = self._inflight.get(token)
                if waiter is None:
                    self._inflight[token] = threading.Event()
                    self.stats.misses += 1  # one miss per distinct build
                    break
            waiter.wait()  # another thread is building this spec
        try:
            built = build_spec(spec)  # construct outside the lock
        except BaseException:
            self._release(token)  # waiters re-probe; one of them rebuilds
            raise
        with self._lock:
            self._entries[spec] = built
            self._entries.move_to_end(spec)
            if self.maxsize is not None:
                while len(self._entries) > self.maxsize:
                    evicted, _ = self._entries.popitem(last=False)
                    self.stats.evictions += 1
                    for ckey in [k for k in self._counts if k[0] == evicted]:
                        del self._counts[ckey]
                    for pkey in [k for k in self._programs if k[0] == evicted]:
                        del self._programs[pkey]
        self._release(token)
        return built

    def counts(self, spec: CircuitSpec, mode: str = "expected"):
        """Memoized ``Built.counts(mode)`` for the spec's circuit."""
        key = (spec, mode)
        token = ("counts",) + key
        while True:
            with self._lock:
                if key in self._counts:
                    self.stats.count_hits += 1
                    return self._counts[key]
                waiter = self._inflight.get(token)
                if waiter is None:
                    self._inflight[token] = threading.Event()
                    break
            waiter.wait()
        try:
            built = self.build(spec)
            counted = built.counts(mode)
            with self._lock:
                self.stats.count_misses += 1
                if spec in self._entries:  # don't pin counts of evicted circuits
                    self._counts[key] = counted
        finally:
            self._release(token)
        return counted

    def program(self, spec: CircuitSpec, tally: bool = True, schedule: bool = False):
        """Memoized compiled+fused bit-plane program for the spec's circuit.

        This is the pipeline-wide program reuse point: every Monte-Carlo
        estimate of the same (spec, transforms) cell — across tables,
        savings summaries and repetitions — executes one
        :class:`~repro.transform.compile.FusedProgram` (whose generated
        kernel is itself cached on the program).  Raises
        :class:`~repro.sim.classical.UnsupportedGateError` for circuits
        without basis-state semantics, like the builders themselves would
        at simulation time.

        ``schedule`` is part of the memo key: the run-lengthening
        scheduler (:func:`~repro.transform.compile.schedule_program`)
        produces a differently-grouped (bit-identical-result) program, so
        scheduled and unscheduled requests must never alias — keying by
        ``(spec, tally)`` alone silently pinned whichever variant was
        compiled first and made the scheduled/vector rung unreachable
        from the pipeline.
        """
        key = (spec, tally, schedule)
        token = ("program",) + key
        while True:
            with self._lock:
                if key in self._programs:
                    self.stats.program_hits += 1
                    cached = self._programs[key]
                    if isinstance(cached, _Unsupported):
                        # memoized compile failure (QFT rows): raise a fresh
                        # exception so callers never share a mutable instance
                        raise UnsupportedGateError(*cached.args)
                    return cached
                waiter = self._inflight.get(token)
                if waiter is None:
                    self._inflight[token] = threading.Event()
                    break
            waiter.wait()
        try:
            built = self.build(spec)
            from ..transform.compile import compile_program, fuse_program

            try:
                # This cache holds the FusedProgram itself, so the module-level
                # fusion memo must not additionally pin the throwaway key.
                program = fuse_program(
                    compile_program(built.circuit, tally=tally),
                    memoize=False,
                    schedule=schedule,
                )
            except UnsupportedGateError as exc:
                with self._lock:
                    self.stats.program_misses += 1
                    if spec in self._entries:
                        self._programs[key] = _Unsupported(exc.args)
                raise
            with self._lock:
                self.stats.program_misses += 1
                if spec in self._entries:  # don't pin programs of evicted circuits
                    self._programs[key] = program
            return program
        finally:
            self._release(token)

    def clear(self) -> None:
        # In-flight constructions are left to complete and release their
        # own tokens; popping them here would strand their waiters.
        with self._lock:
            self._entries.clear()
            self._counts.clear()
            self._programs.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, spec: CircuitSpec) -> bool:
        return spec in self._entries


@dataclass(frozen=True)
class _Unsupported:
    """Memoized compile failure: the args of the UnsupportedGateError a
    spec's circuit raised, replayed as a fresh exception on every hit."""

    args: Tuple[Any, ...]


_DEFAULT = CircuitCache()


def default_cache() -> CircuitCache:
    """The module-level shared cache (one per process)."""
    return _DEFAULT
