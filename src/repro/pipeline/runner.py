"""The sweep runner: paper tables × sizes over a worker pool, with MC columns.

A sweep is a list of independent tasks — one per (table, n) cell, plus one
per savings size and one per modexp workload — executed through the
fault-tolerant executor in :mod:`repro.pipeline.jobs`: individual task
submission over a process pool with per-task timeout, bounded retries
with deterministic backoff, ``BrokenProcessPool`` respawn, a
process → thread → serial degradation ladder, and (optionally) an
on-disk checkpoint journal that lets an interrupted sweep resume.  Each
task returns plain row dicts (ints / Fractions — picklable), so workers
never ship circuits across process boundaries; every worker process
keeps its own :class:`~repro.pipeline.cache.CircuitCache` and the serial
path reuses the caller's.  Workers run compiled by default: every
Monte-Carlo column pulls its circuit's fused program from the cache
(:meth:`~repro.pipeline.cache.CircuitCache.program`), so a circuit is
compiled once per worker however many columns, repetitions and tables
revisit it.  Per-task seeds are derived from the sweep seed and the task
key (:func:`~repro.pipeline.montecarlo.derive_seed`), so results are
identical whatever the worker count, scheduling order, retry history or
resume point — the property the chaos suite pins down to the byte.

On top of the exact expected-mode counts, every row variant that has a
Toffoli metric gets an empirical column pair — ``<metric>_mc`` (Monte-
Carlo mean over random measurement outcomes) and ``<metric>_mc_ci95``
(normal-approximation 95% half-width) — computed with the bit-plane
backend's per-lane tallies.  QFT-based rows (no basis-state semantics)
skip the empirical columns.

The modexp scenario wires :func:`repro.extensions.build_modexp` /
:func:`repro.extensions.modexp_cost` in as the large-workload benchmark:
closed-form formula vs. a fully built circuit vs. Monte-Carlo, per
(n_exp, n) pair.

This module lazily imports :mod:`repro.resources` inside functions —
``resources/tables.py`` imports the cache layer, so the pipeline package
must be importable without touching resources (see ``cache.py``).
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..sim.classical import UnsupportedGateError
from .cache import CircuitCache, CircuitSpec
from .montecarlo import DEFAULT_GATES, derive_seed, mc_or_none

__all__ = [
    "SweepConfig",
    "SweepResult",
    "run_sweep",
    "table_rows_with_mc",
    "modexp_row",
]

_ALL_TABLES = ("table1", "table2", "table3", "table4", "table5", "table6")


@dataclass(frozen=True)
class SweepConfig:
    """Everything a reproduction run depends on (and nothing else).

    The config is picklable and fully determines the artifact: same
    config, same JSON bytes.  ``workers=0``/``1`` runs serially;
    ``workers=None`` auto-sizes to ``min(4, cpu)``.
    """

    tables: Tuple[str, ...] = _ALL_TABLES
    sizes: Tuple[int, ...] = (8, 16, 32)
    seed: int = 0
    mc_batch: int = 1024
    mc_repeats: int = 1
    mc_gates: Tuple[str, ...] = DEFAULT_GATES
    workers: Optional[int] = None
    include_savings: bool = True
    modexp: Tuple[Tuple[int, int], ...] = ()   # (n_exp, n) pairs
    #: repro.transform pass names applied to every table-row circuit (part
    #: of each circuit's cache key); savings/modexp tasks are untransformed.
    transforms: Tuple[str, ...] = ()

    def resolved_workers(self) -> int:
        if self.workers is not None:
            return max(1, self.workers)
        return min(4, os.cpu_count() or 1)

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass
class SweepResult:
    """All rows of one sweep, grouped by table -> n -> rows.

    Beyond the rows themselves, the result carries the execution story:
    ``task_reports`` (one structured record per task — status, attempts,
    elapsed, error, worker, replay seed), ``failures`` (the subset that
    exhausted its retries; only ever non-empty under
    ``fail_fast=False``), ``journal_stats`` (checkpoint hits/misses/
    corrupt counts when a store was active) and ``execution_modes`` (the
    degradation-ladder rungs actually used).  None of it enters the
    golden-diffed artifact — see :func:`~repro.pipeline.artifacts.run_report`.
    """

    config: SweepConfig
    tables: Dict[str, Dict[int, List[Dict[str, Any]]]]
    savings: Dict[int, Dict[str, float]]
    modexp: List[Dict[str, Any]]
    elapsed: float = 0.0
    cache_stats: Dict[str, Any] = field(default_factory=dict)
    task_reports: List[Dict[str, Any]] = field(default_factory=list)
    failures: List[Dict[str, Any]] = field(default_factory=list)
    journal_stats: Optional[Dict[str, int]] = None
    execution_modes: List[str] = field(default_factory=list)


def table_rows_with_mc(
    table: str,
    n: int,
    *,
    seed: int = 0,
    mc_batch: int = 1024,
    mc_repeats: int = 1,
    mc_gates: Tuple[str, ...] = DEFAULT_GATES,
    cache: Optional[CircuitCache] = None,
    transforms: Tuple[str, ...] = (),
    schedule: bool = False,
    kernels: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """One table at one width, with Monte-Carlo columns attached.

    For every row variant whose metric set includes a ``toffoli`` source,
    adds ``<metric>_mc`` / ``<metric>_mc_ci95`` columns estimated over
    ``mc_batch * mc_repeats`` random-outcome lanes.  ``transforms`` applies
    a pass chain to every row circuit (exact and Monte-Carlo columns both
    measure the transformed circuit); rows a transform makes unsimulable on
    the bit-plane backend simply skip their MC columns.

    ``schedule``/``kernels`` choose how the Monte-Carlo columns *execute*
    (run-lengthening scheduler before fusion; generated-kernel strategy —
    e.g. ``schedule=True, kernels="vector"`` for the vectorized numpy
    rung).  Both are execution-only: every kernel consumes identical
    outcome streams, so the rows are byte-identical whatever the choice.
    """
    from ..resources.tables import TABLE_SPECS, build_table_rows

    spec = TABLE_SPECS[table]
    p, a = spec.defaults(n)
    if cache is None:
        cache = CircuitCache()
    rows = build_table_rows(spec, n, p=p, a=a, cache=cache, transforms=transforms)
    for row_spec, row in zip(spec.rows, rows):
        for metric in row_spec.metrics:
            if metric.source != "toffoli":
                continue
            circuit_spec = row_spec.template.spec(
                n, p=p, a=a, mbu=(metric.variant == "mbu"), transforms=transforms
            )
            try:  # compile once per (spec, transforms, schedule); reused sweep-wide
                program = cache.program(circuit_spec, schedule=schedule)
            except UnsupportedGateError:  # no basis-state semantics (QFT rows)
                continue
            estimate = mc_or_none(
                cache.build(circuit_spec),
                batch=mc_batch,
                repeats=mc_repeats,
                gates=mc_gates,
                seed=derive_seed(seed, table, n, row_spec.key, metric.variant),
                program=program,
                kernels=kernels,
            )
            if estimate is None:  # pragma: no cover - compile already vetted
                continue
            row[f"{metric.name}_mc"] = estimate.mean
            row[f"{metric.name}_mc_ci95"] = round(estimate.ci95, 9)
    return rows


def modexp_row(
    n_exp: int,
    n: int,
    *,
    seed: int = 0,
    mc_batch: int = 256,
    mc_repeats: int = 1,
    mc_gates: Tuple[str, ...] = DEFAULT_GATES,
    cache: Optional[CircuitCache] = None,
    schedule: bool = False,
    kernels: Optional[str] = None,
) -> Dict[str, Any]:
    """The large-workload scenario: Shor-style modular exponentiation.

    Compares :func:`~repro.extensions.mulmod.modexp_cost`'s closed-form
    expected-Toffoli estimate against a fully built circuit (with and
    without MBU) and a Monte-Carlo run of the MBU variant.
    """
    from ..extensions import modexp_cost

    if cache is None:
        cache = CircuitCache()
    p = (1 << n) - 1   # odd, so a=2 is invertible
    row: Dict[str, Any] = {"row": f"modexp (n_exp={n_exp}, n={n})", "n": n, "n_exp": n_exp, "p": p}
    for suffix, mbu in (("", False), ("_mbu", True)):
        spec = CircuitSpec.make(
            "modexp", n, n_exp=n_exp, p=p, a=2, family="cdkpm", mbu=mbu
        )
        built = cache.build(spec)
        formula = modexp_cost(n_exp, n, "cdkpm", mbu=mbu)
        row[f"toffoli{suffix}"] = cache.counts(spec).toffoli
        row[f"toffoli{suffix}_paper"] = formula["toffoli"]
        if suffix == "_mbu":
            try:  # compile once per spec; reused sweep-wide
                program = cache.program(spec, schedule=schedule)
            except UnsupportedGateError:
                program = None
            estimate = None if program is None else mc_or_none(
                built,
                batch=mc_batch,
                repeats=mc_repeats,
                gates=mc_gates,
                seed=derive_seed(seed, "modexp", n_exp, n),
                program=program,
                kernels=kernels,
            )
            if estimate is not None:
                row["toffoli_mbu_mc"] = estimate.mean
                row["toffoli_mbu_mc_ci95"] = round(estimate.ci95, 9)
        row[f"qubits{suffix}"] = built.logical_qubits
    return row


# --------------------------------------------------------------------------- #
# task plumbing (module-level so the process pool can pickle it)

_WORKER_CACHE: Optional[CircuitCache] = None


def _worker_cache() -> CircuitCache:
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = CircuitCache()
    return _WORKER_CACHE


def _run_task(
    task: Dict[str, Any],
    cache: Optional[CircuitCache] = None,
    schedule: bool = False,
    kernels: Optional[str] = None,
):
    if cache is None:
        cache = _worker_cache()
    kind = task["kind"]
    if kind == "table":
        rows = table_rows_with_mc(
            task["table"], task["n"],
            seed=task["seed"], mc_batch=task["mc_batch"],
            mc_repeats=task["mc_repeats"], mc_gates=tuple(task["mc_gates"]),
            cache=cache, transforms=tuple(task.get("transforms", ())),
            schedule=schedule, kernels=kernels,
        )
        return ("table", (task["table"], task["n"]), rows)
    if kind == "savings":
        from ..resources.tables import mbu_savings

        return ("savings", task["n"], mbu_savings(task["n"], cache=cache))
    if kind == "modexp":
        row = modexp_row(
            task["n_exp"], task["n"],
            seed=task["seed"], mc_batch=task["mc_batch"],
            mc_repeats=task["mc_repeats"], mc_gates=tuple(task["mc_gates"]),
            cache=cache, schedule=schedule, kernels=kernels,
        )
        return ("modexp", (task["n_exp"], task["n"]), row)
    raise ValueError(f"unknown task kind {kind!r}")  # pragma: no cover


def _plan(config: SweepConfig) -> List[Dict[str, Any]]:
    mc = {
        "seed": config.seed,
        "mc_batch": config.mc_batch,
        "mc_repeats": config.mc_repeats,
        "mc_gates": tuple(config.mc_gates),
    }
    tasks: List[Dict[str, Any]] = []
    for table in config.tables:
        for n in config.sizes:
            tasks.append({
                "kind": "table", "table": table, "n": n,
                "transforms": tuple(config.transforms), **mc,
            })
    if config.include_savings:
        for n in config.sizes:
            tasks.append({"kind": "savings", "n": n})
    for n_exp, n in config.modexp:
        tasks.append({"kind": "modexp", "n_exp": n_exp, "n": n, **mc})
    return tasks


def run_sweep(
    config: SweepConfig,
    cache: Optional[CircuitCache] = None,
    policy: Optional[Any] = None,
) -> SweepResult:
    """Execute every task of ``config`` and assemble a :class:`SweepResult`.

    Execution goes through :func:`repro.pipeline.jobs.execute_tasks`:
    with more than one worker, tasks fan out over a process pool (each
    process memoizes its own circuits) with retries, timeouts, checkpoint
    journaling and the degradation ladder governed by ``policy`` (an
    :class:`~repro.pipeline.jobs.ExecutionPolicy`; defaults when
    omitted); serially, the caller's ``cache`` (or a fresh one) is shared
    across all tasks, which is where the cross-table reuse pays off.
    Output rows are identical either way — and identical across retries,
    pool respawns and resumed runs, because every task's streams are
    seeded by content, not by schedule.

    A raising task no longer aborts the sweep with nothing to show:
    under the default ``policy.fail_fast=True`` the sweep raises a
    structured :class:`~repro.pipeline.jobs.SweepExecutionError` naming
    every failed task key and its replay seed; with ``fail_fast=False``
    the failure is recorded in :attr:`SweepResult.failures` (and the run
    report) and the remaining tasks still complete.
    """
    from .jobs import ExecutionPolicy, execute_tasks

    start = time.perf_counter()
    tasks = _plan(config)
    if policy is None:
        policy = ExecutionPolicy()
    if cache is None:
        cache = CircuitCache()
    execution = execute_tasks(tasks, config, policy=policy, cache=cache)

    tables: Dict[str, Dict[int, List[Dict[str, Any]]]] = {}
    savings: Dict[int, Dict[str, float]] = {}
    modexp: List[Dict[str, Any]] = []
    for kind, key, payload in execution.outcomes:
        if kind == "table":
            table, n = key
            tables.setdefault(table, {})[n] = payload
        elif kind == "savings":
            savings[key] = payload
        else:
            modexp.append(payload)
    return SweepResult(
        config=config,
        tables=tables,
        savings=savings,
        modexp=modexp,
        elapsed=time.perf_counter() - start,
        cache_stats=execution.cache_stats,
        task_reports=[r.as_dict() for r in execution.reports],
        failures=[r.as_dict() for r in execution.failures],
        journal_stats=execution.journal_stats,
        execution_modes=execution.modes,
    )
