"""Fault-tolerant sweep execution: checkpoint journal + retrying executor.

This module is the execution layer under :func:`repro.pipeline.runner.run_sweep`.
The sweep's *semantics* live entirely in the task list and the per-task
seeds (:func:`~repro.pipeline.montecarlo.derive_seed` keys every
Monte-Carlo stream by task content, never by scheduling), so everything
here — checkpointing, retries, timeouts, pool respawns, degradation —
can reshuffle, repeat or resume work freely without changing a single
output byte.  That contract is what the chaos suite
(``tests/test_faults.py``) asserts: a sweep completed through injected
worker kills, hangs and corrupted checkpoints is byte-identical to a
fault-free serial run.

Two pieces:

* :class:`CheckpointJournal` — a content-addressed on-disk store of
  completed task payloads, keyed by ``(SweepConfig fingerprint, task
  key)``.  Entries are written atomically (tmp file + ``os.replace``)
  with a SHA-256 payload checksum; the loader treats *anything* wrong —
  missing file, unparsable JSON, stale schema, foreign fingerprint, bad
  checksum — as a cache miss and lets the executor recompute.  A journal
  can therefore be corrupted, truncated or half-written (kill -9 mid
  sweep) and the worst case is lost work, never a crash or a wrong row.

* :func:`execute_tasks` — submits tasks individually (``wait`` on a
  bounded in-flight window, not ``pool.map``) with per-task timeout,
  bounded retries with exponential backoff + deterministic jitter,
  ``BrokenProcessPool`` recovery (terminate + respawn the pool, requeue
  in-flight tasks) and a graceful-degradation ladder process-pool →
  thread-pool → serial when pools keep dying.  Every task gets a
  structured :class:`TaskReport` (status, attempts, elapsed, error,
  worker pid, replay seed) surfaced through
  :class:`~repro.pipeline.runner.SweepResult` and the run-report
  artifact.

Retry accounting is two-level on purpose: the *cumulative* attempt index
(total invocations, never reset) feeds backoff jitter and the fault
harness — so ``attempts=(0,)`` faults fire exactly once per task — while
the *per-rung* direct-failure count enforces ``max_retries``.  Pool
breakage requeues collateral tasks without charging their retry budget
(the executor cannot know which task killed the worker), and each rung
of the ladder starts with a fresh budget; the break counter bounds the
loop instead, forcing degradation after ``pool_breaks_before_degrade``
respawns.

Timeouts are enforced only on the pool rungs: a process worker past its
deadline is terminated with the pool (then everything in flight is
requeued); a hung *thread* cannot be killed, so the thread pool is
abandoned and respawned around it.  The serial rung runs tasks inline
and cannot preempt them — chaos hang tests bound their faults with
``attempts=(0,)`` for exactly this reason.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from fractions import Fraction
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

from .montecarlo import derive_seed

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "ExecutionPolicy",
    "TaskReport",
    "SweepExecutionError",
    "JournalStats",
    "CheckpointJournal",
    "ExecutionOutcome",
    "config_fingerprint",
    "task_key",
    "outcome_key",
    "backoff_delay",
    "execute_tasks",
]

#: Bumped whenever the on-disk entry layout changes; stale entries are
#: cache misses, never parse errors.
JOURNAL_SCHEMA_VERSION = 1

#: The executor's polling tick: how often in-flight futures are waited on
#: before deadlines are rechecked.
_TICK_SECONDS = 0.05


# --------------------------------------------------------------------------- #
# identity: config fingerprints and task keys

def config_fingerprint(config: Any) -> str:
    """A stable hex fingerprint of a sweep config's *semantic* content.

    ``workers`` is excluded — per-task seeds make results worker-count
    independent (the same reason :data:`~repro.pipeline.artifacts.DEFAULT_IGNORE`
    skips it in golden diffs) — so a journal written by a serial run
    resumes a parallel one and vice versa.
    """
    payload = config.as_dict()
    payload.pop("workers", None)
    blob = json.dumps(payload, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def task_key(task: Dict[str, Any]) -> str:
    """The stable, human-readable identity of one sweep task."""
    kind = task["kind"]
    if kind == "table":
        return f"table:{task['table']}:n{task['n']}"
    if kind == "savings":
        return f"savings:n{task['n']}"
    if kind == "modexp":
        return f"modexp:e{task['n_exp']}:n{task['n']}"
    raise ValueError(f"unknown task kind {kind!r}")  # pragma: no cover


def outcome_key(task: Dict[str, Any]) -> Tuple[str, Any]:
    """The ``(kind, key)`` pair ``runner._run_task`` would return for ``task``.

    Lets a journal hit rebuild the full outcome triple without storing
    redundant (and possibly divergent) copies of the task identity.
    """
    kind = task["kind"]
    if kind == "table":
        return kind, (task["table"], task["n"])
    if kind == "savings":
        return kind, task["n"]
    if kind == "modexp":
        return kind, (task["n_exp"], task["n"])
    raise ValueError(f"unknown task kind {kind!r}")  # pragma: no cover


# --------------------------------------------------------------------------- #
# journal payload codec: exact JSON round-trip for task payloads

def _encode(value: Any) -> Any:
    """JSON-encode a task payload exactly (Fractions tagged, order kept)."""
    if isinstance(value, Fraction):
        return {"$frac": [value.numerator, value.denominator]}
    if isinstance(value, dict):
        return {str(k): _encode(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(v) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, (int, float, str)):
        return value
    return str(value)  # mirror artifacts._jsonify: symbolic types render as str


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"$frac"}:
            num, den = value["$frac"]
            return Fraction(num, den)
        return {k: _decode(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode(v) for v in value]
    return value


def _payload_checksum(encoded: Any) -> str:
    blob = json.dumps(encoded, separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()


# --------------------------------------------------------------------------- #
# checkpoint journal

@dataclass
class JournalStats:
    """Counters of one journal's lifetime within a sweep."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    stale: int = 0
    writes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "stale": self.stale,
            "writes": self.writes,
        }


class CheckpointJournal:
    """Content-addressed on-disk store of completed sweep task payloads.

    Layout: ``root/<config fingerprint>/<task slug>.json``, one entry per
    task, where the slug is the readable task key sanitized plus a short
    hash (collision-proof however exotic the key).  Entries carry the
    schema version, the fingerprint, the task key, the encoded payload
    and a SHA-256 payload checksum; :meth:`load` returns ``None`` — a
    cache miss — for any entry that is missing, unparsable, stale or
    checksum-broken, so resuming over a damaged journal silently
    recomputes the damaged cells.

    Writes go through a tmp file in the same directory followed by
    ``os.replace``, so a crash mid-write leaves either the old entry or
    no entry — never a torn one (the tmp leftovers are ignored by the
    loader and swept by the next successful write of that key).
    """

    def __init__(self, root: Union[str, Path], config: Any) -> None:
        self.root = Path(root)
        self.fingerprint = config_fingerprint(config)
        self.dir = self.root / self.fingerprint
        self.stats = JournalStats()

    @staticmethod
    def _slug(key: str) -> str:
        safe = re.sub(r"[^A-Za-z0-9._-]+", "_", key)
        digest = hashlib.sha256(key.encode()).hexdigest()[:8]
        return f"{safe}-{digest}"

    def path(self, key: str) -> Path:
        return self.dir / f"{self._slug(key)}.json"

    def load(self, key: str) -> Optional[Any]:
        """The stored payload for ``key``, or ``None`` on any miss.

        Damage is *counted* (``corrupt`` / ``stale``) but never raised:
        the executor's recovery path is always "recompute".
        """
        path = self.path(key)
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            entry = json.loads(path.read_text())
            if not isinstance(entry, dict):
                raise ValueError("entry is not an object")
        except (OSError, ValueError):
            self.stats.corrupt += 1
            return None
        if entry.get("schema") != JOURNAL_SCHEMA_VERSION \
                or entry.get("fingerprint") != self.fingerprint \
                or entry.get("task") != key:
            self.stats.stale += 1
            return None
        payload = entry.get("payload")
        if entry.get("checksum") != _payload_checksum(payload):
            self.stats.corrupt += 1
            return None
        self.stats.hits += 1
        return _decode(payload)

    def store(self, key: str, payload: Any) -> Path:
        """Atomically persist ``payload`` under ``key`` (tmp + rename)."""
        self.dir.mkdir(parents=True, exist_ok=True)
        encoded = _encode(payload)
        entry = {
            "schema": JOURNAL_SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "task": key,
            "checksum": _payload_checksum(encoded),
            "payload": encoded,
        }
        path = self.path(key)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(entry, indent=1) + "\n")
        os.replace(tmp, path)
        self.stats.writes += 1
        self._maybe_corrupt(key, path)
        return path

    def _maybe_corrupt(self, key: str, path: Path) -> None:
        """The journal's fault point: garble the entry just written."""
        from .faults import active_injector, corrupt_file

        injector = active_injector()
        if injector is None:
            return
        spec = injector.decide("journal", key, attempt=0)
        if spec is not None:  # journal site only arms "corrupt"
            corrupt_file(path)

    def completed_keys(self) -> List[str]:
        """Task keys with a *valid* entry on disk (stats untouched)."""
        probe = CheckpointJournal.__new__(CheckpointJournal)
        probe.root, probe.fingerprint, probe.dir = self.root, self.fingerprint, self.dir
        probe.stats = JournalStats()
        keys = []
        for path in sorted(self.dir.glob("*.json")) if self.dir.exists() else []:
            try:
                entry = json.loads(path.read_text())
                key = entry.get("task")
            except (OSError, ValueError):
                continue
            if isinstance(key, str) and probe.load(key) is not None:
                keys.append(key)
        return keys


# --------------------------------------------------------------------------- #
# execution policy, reports, errors

@dataclass(frozen=True)
class ExecutionPolicy:
    """Everything about *how* a sweep executes (and nothing about *what*).

    Deliberately separate from :class:`~repro.pipeline.runner.SweepConfig`:
    the config fully determines the artifact bytes, and no retry count,
    timeout or journal path may ever change them — so none of this enters
    the config fingerprint or the artifact.
    """

    #: Direct failures tolerated per task *per ladder rung* before the
    #: task is reported failed (attempts = 1 + max_retries).
    max_retries: int = 2
    #: Per-task wall-clock budget on the pool rungs; ``None`` = no limit.
    #: Unenforceable on the serial rung (tasks run inline).
    task_timeout: Optional[float] = None
    #: Exponential backoff: ``base * 2**(failures-1)`` capped at ``cap``,
    #: scaled by deterministic jitter in [0.5, 1.0).
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: Abort the sweep on the first task that exhausts its retries
    #: (raising :class:`SweepExecutionError`); ``False`` records the
    #: failure in the result/run report and keeps going.
    fail_fast: bool = True
    #: Checkpoint journal directory; ``None`` disables checkpointing.
    store: Optional[Union[str, Path]] = None
    #: With a store, skip tasks whose journal entry is valid.  ``False``
    #: still *writes* checkpoints but recomputes everything.
    resume: bool = True
    #: Pool breaks (BrokenProcessPool / timeouts) survived on one rung
    #: before degrading process -> thread -> serial.
    pool_breaks_before_degrade: int = 2
    #: Run the run-lengthening scheduler before fusing each task circuit's
    #: compiled program.  Execution-only: results are bit-identical.
    schedule: bool = False
    #: Generated-kernel strategy for the Monte-Carlo columns ("codegen",
    #: "vector", "arrays", "auto"; None = backend default).  Execution-only.
    kernels: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive (or None)")
        if self.pool_breaks_before_degrade < 0:
            raise ValueError("pool_breaks_before_degrade must be >= 0")
        from ..sim.strategies import validate_kernels

        validate_kernels(self.kernels)


@dataclass
class TaskReport:
    """The structured execution record of one sweep task."""

    key: str
    status: str = "pending"      # pending | ok | cached | failed
    attempts: int = 0            # cumulative invocations across all rungs
    failures: int = 0            # direct failures (exceptions + timeouts)
    requeues: int = 0            # collateral requeues from pool breaks
    elapsed: float = 0.0         # in-task seconds of the successful attempt
    error: Optional[str] = None  # last error message, kept even after success
    mode: Optional[str] = None   # rung that produced the final status
    worker: Optional[int] = None # pid of the worker that succeeded
    seed: Optional[int] = None   # the sweep seed: replay = (seed, key)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "status": self.status,
            "attempts": self.attempts,
            "failures": self.failures,
            "requeues": self.requeues,
            "elapsed": round(self.elapsed, 6),
            "error": self.error,
            "mode": self.mode,
            "worker": self.worker,
            "seed": self.seed,
        }


class SweepExecutionError(RuntimeError):
    """Raised under ``fail_fast`` when a task exhausts its retries.

    Carries the failed tasks' :class:`TaskReport` records so callers (and
    the CLI) can print replay seeds and task keys instead of a bare
    traceback.
    """

    def __init__(self, failures: List[TaskReport]) -> None:
        self.failures = list(failures)
        detail = "; ".join(
            f"{r.key} (attempts={r.attempts}, error={r.error})" for r in self.failures
        )
        super().__init__(f"{len(self.failures)} sweep task(s) failed: {detail}")


def backoff_delay(policy: ExecutionPolicy, seed: int, key: str, attempt: int) -> float:
    """Exponential backoff with deterministic jitter in [0.5, 1.0)x.

    The jitter draw hashes ``(seed, key, attempt)`` through
    :func:`derive_seed`, so retry timing — like everything else in a
    sweep — replays identically from the same inputs.
    """
    exponent = max(0, attempt - 1)
    base = min(policy.backoff_cap, policy.backoff_base * (2 ** exponent))
    jitter = derive_seed(seed, "backoff", key, attempt) / 2.0**63
    return base * (0.5 + 0.5 * jitter)


# --------------------------------------------------------------------------- #
# the task invocation shipped to workers

_CACHE_COUNTERS = (
    "hits", "misses", "evictions",
    "count_hits", "count_misses", "program_hits", "program_misses",
)


def _stats_snapshot(stats: Any) -> Dict[str, int]:
    return {name: getattr(stats, name) for name in _CACHE_COUNTERS}


def _invoke(
    task: Dict[str, Any],
    attempt: int,
    serial_cache: Any = None,
    schedule: bool = False,
    kernels: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one task (fault point first) and carry its cache delta home.

    Module-level and dict-in/dict-out so the process pool can pickle it.
    In pool modes each worker uses its process-local
    ``runner._worker_cache()``; the serial rung threads the caller's
    cache through so cross-table reuse keeps paying off.  The stats
    delta is exact on the process rung (workers run one task at a time);
    on the thread rung concurrent tasks share one cache, so per-task
    attribution is approximate while the aggregate stays truthful.
    ``schedule``/``kernels`` are the policy's execution-only kernel
    choices, forwarded positionally so the process pool can pickle the
    submission.
    """
    from .faults import maybe_fire
    from .runner import _run_task, _worker_cache

    cache = serial_cache if serial_cache is not None else _worker_cache()
    before = _stats_snapshot(cache.stats)
    maybe_fire("task", task_key(task), attempt)
    start = time.perf_counter()
    kind, key, payload = _run_task(task, cache, schedule=schedule, kernels=kernels)
    after = _stats_snapshot(cache.stats)
    return {
        "kind": kind,
        "key": key,
        "payload": payload,
        "elapsed": time.perf_counter() - start,
        "worker": os.getpid(),
        "cache_delta": {name: after[name] - before[name] for name in _CACHE_COUNTERS},
    }


def _aggregate_cache(deltas: List[Dict[str, int]]) -> Dict[str, Any]:
    """Sum per-task cache deltas and derive the same ratios
    :meth:`~repro.pipeline.cache.CacheStats.as_dict` reports: an
    all-family aggregate ``hit_ratio`` plus the per-family breakdown.
    (The aggregate used to divide circuit hits/misses only, silently
    ignoring the count and program lookups that dominate a sweep.)
    """
    total: Dict[str, Any] = {name: 0 for name in _CACHE_COUNTERS}
    for delta in deltas:
        for name in _CACHE_COUNTERS:
            total[name] += delta.get(name, 0)

    def ratio(hits: int, misses: int) -> float:
        lookups = hits + misses
        return round(hits / lookups, 4) if lookups else 0.0

    total["hit_ratio"] = ratio(
        total["hits"] + total["count_hits"] + total["program_hits"],
        total["misses"] + total["count_misses"] + total["program_misses"],
    )
    total["circuit_hit_ratio"] = ratio(total["hits"], total["misses"])
    total["count_hit_ratio"] = ratio(total["count_hits"], total["count_misses"])
    total["program_hit_ratio"] = ratio(
        total["program_hits"], total["program_misses"]
    )
    return total


# --------------------------------------------------------------------------- #
# the executor

@dataclass
class ExecutionOutcome:
    """What :func:`execute_tasks` hands back to the sweep runner."""

    outcomes: List[Tuple[str, Any, Any]]   # (kind, key, payload), task order
    reports: List[TaskReport]              # task order, one per task
    cache_stats: Dict[str, Any]
    journal_stats: Optional[Dict[str, int]]
    modes: List[str]                       # ladder rungs actually used

    @property
    def failures(self) -> List[TaskReport]:
        return [r for r in self.reports if r.status == "failed"]


class _State:
    """Mutable bookkeeping shared by the ladder rungs."""

    def __init__(self, tasks, config, policy, journal, serial_cache):
        self.tasks = tasks
        self.keys = [task_key(t) for t in tasks]
        self.config = config
        self.policy = policy
        self.journal = journal
        self.serial_cache = serial_cache
        self.reports = [
            TaskReport(key=k, seed=config.seed) for k in self.keys
        ]
        self.results: Dict[int, Tuple[str, Any, Any]] = {}
        self.cache_deltas: List[Dict[str, int]] = []
        self.rung_failures: Dict[int, int] = {}
        self.ready_at: Dict[int, float] = {}
        self.queue: Deque[int] = deque()

    def record_success(self, index: int, mode: str, result: Dict[str, Any]) -> None:
        report = self.reports[index]
        report.status = "ok"
        report.mode = mode
        report.elapsed = result["elapsed"]
        report.worker = result["worker"]
        self.results[index] = (result["kind"], result["key"], result["payload"])
        self.cache_deltas.append(result["cache_delta"])
        if self.journal is not None:
            self.journal.store(self.keys[index], result["payload"])

    def record_failure(self, index: int, mode: str, error: str) -> bool:
        """Charge a direct failure; True when the task is terminally failed."""
        report = self.reports[index]
        report.error = error
        report.failures += 1
        self.rung_failures[index] = self.rung_failures.get(index, 0) + 1
        if self.rung_failures[index] > self.policy.max_retries:
            report.status = "failed"
            report.mode = mode
            return True
        self.ready_at[index] = time.monotonic() + backoff_delay(
            self.policy, self.config.seed, self.keys[index], report.attempts
        )
        self.queue.append(index)
        return False

    def maybe_fail_fast(self) -> None:
        failed = [r for r in self.reports if r.status == "failed"]
        if failed and self.policy.fail_fast:
            raise SweepExecutionError(failed)


def _terminate_pool(pool: Any, mode: str) -> None:
    """Tear a pool down hard: kill process workers, abandon thread workers."""
    if mode == "process":
        # Private but stable across CPython 3.8+; a hung or poisoned
        # worker cannot be stopped through any public API.
        processes = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - already dead
                pass
    pool.shutdown(wait=False, cancel_futures=True)


def _run_pooled(state: _State, mode: str, workers: int) -> bool:
    """Drain the queue on a pool rung; False = give up and degrade.

    Tasks are submitted individually with at most ``workers`` in flight,
    so a submit timestamp is an honest start timestamp and deadlines mean
    what they say.  Completions are reaped with ``wait(...,
    FIRST_COMPLETED)``; deadline overruns and broken pools terminate and
    respawn the pool with everything in flight requeued (retry budgets
    untouched — the executor cannot attribute a pool death to a task).
    """
    policy = state.policy
    make_pool = ProcessPoolExecutor if mode == "process" else ThreadPoolExecutor
    pool = make_pool(max_workers=workers)
    inflight: Dict[Future, Tuple[int, Optional[float]]] = {}
    breaks = 0

    def respawn_or_degrade() -> Optional[Any]:
        """Requeue everything in flight; a fresh pool, or None to degrade."""
        nonlocal breaks
        for doomed in list(inflight):
            index, _ = inflight.pop(doomed)
            doomed.cancel()
            state.reports[index].requeues += 1
            state.queue.append(index)
        breaks += 1
        _terminate_pool(pool, mode)
        if breaks > policy.pool_breaks_before_degrade:
            return None
        return make_pool(max_workers=workers)

    try:
        while state.queue or inflight:
            now = time.monotonic()
            # Top up the in-flight window with tasks whose backoff expired.
            submitted = True
            while submitted and state.queue and len(inflight) < workers:
                submitted = False
                for _ in range(len(state.queue)):
                    index = state.queue.popleft()
                    if state.ready_at.get(index, 0.0) > now:
                        state.queue.append(index)  # still backing off
                        continue
                    report = state.reports[index]
                    attempt = report.attempts
                    report.attempts += 1
                    try:
                        future = pool.submit(
                            _invoke, state.tasks[index], attempt, None,
                            policy.schedule, policy.kernels,
                        )
                    except (BrokenExecutor, RuntimeError):
                        # Pool died between reap and submit: put the task
                        # back unharmed and handle it as a break below.
                        report.attempts -= 1
                        state.queue.appendleft(index)
                        fresh = respawn_or_degrade()
                        if fresh is None:
                            return False
                        pool = fresh
                        break
                    deadline = (
                        now + policy.task_timeout
                        if policy.task_timeout is not None else None
                    )
                    inflight[future] = (index, deadline)
                    submitted = True
                    break
            if not inflight:
                if not state.queue:
                    break
                pause = min(
                    state.ready_at.get(i, 0.0) for i in state.queue
                ) - time.monotonic()
                if pause > 0:
                    time.sleep(min(pause, 0.5))
                continue

            done, _ = wait(list(inflight), timeout=_TICK_SECONDS,
                           return_when=FIRST_COMPLETED)
            broken = False
            for future in done:
                index, _ = inflight.pop(future)
                try:
                    result = future.result(timeout=0)
                except BrokenExecutor:
                    # Collateral of a dying pool, not a task verdict.
                    state.reports[index].requeues += 1
                    state.queue.append(index)
                    broken = True
                except Exception as exc:
                    if state.record_failure(index, mode, f"{type(exc).__name__}: {exc}"):
                        state.maybe_fail_fast()
                else:
                    state.record_success(index, mode, result)
            if broken:
                fresh = respawn_or_degrade()
                if fresh is None:
                    return False
                pool = fresh
                continue

            # Deadline enforcement: a running future cannot be cancelled,
            # so an overrun means killing the whole pool and starting a
            # fresh one (hung threads are abandoned, not killed).
            now = time.monotonic()
            overdue = [
                (future, index) for future, (index, deadline) in inflight.items()
                if deadline is not None and now > deadline
            ]
            if overdue:
                for future, index in overdue:
                    inflight.pop(future)
                    future.cancel()
                    terminal = state.record_failure(
                        index, mode,
                        f"TimeoutError: exceeded task_timeout={policy.task_timeout}s",
                    )
                    if terminal:
                        state.maybe_fail_fast()
                fresh = respawn_or_degrade()
                if fresh is None:
                    return False
                pool = fresh
        return True
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def _run_serial(state: _State) -> None:
    """The ladder's last rung: inline execution, backoff without deadlines."""
    policy = state.policy
    while state.queue:
        index = state.queue.popleft()
        pause = state.ready_at.get(index, 0.0) - time.monotonic()
        if pause > 0:
            time.sleep(pause)
        report = state.reports[index]
        attempt = report.attempts
        report.attempts += 1
        try:
            result = _invoke(
                state.tasks[index], attempt, serial_cache=state.serial_cache,
                schedule=policy.schedule, kernels=policy.kernels,
            )
        except Exception as exc:
            if state.record_failure(index, "serial", f"{type(exc).__name__}: {exc}"):
                state.maybe_fail_fast()
        else:
            state.record_success(index, "serial", result)


def execute_tasks(
    tasks: List[Dict[str, Any]],
    config: Any,
    policy: Optional[ExecutionPolicy] = None,
    cache: Any = None,
    journal: Optional[CheckpointJournal] = None,
) -> ExecutionOutcome:
    """Run every task fault-tolerantly and return outcomes + reports.

    Resolves the journal from ``policy.store`` when not supplied, replays
    valid checkpoints as ``cached`` tasks, then walks the degradation
    ladder until the queue drains.  ``cache`` is only consumed by the
    serial rung (pool rungs use per-worker caches); outcomes come back in
    task order with failed tasks absent, and ``cache_stats`` aggregates
    the per-task deltas every worker carried home — so the parallel path
    finally reports real numbers instead of an empty dict.
    """
    policy = policy or ExecutionPolicy()
    if journal is None and policy.store is not None:
        journal = CheckpointJournal(policy.store, config)

    state = _State(tasks, config, policy, journal, cache)

    for index, key in enumerate(state.keys):
        if journal is not None and policy.resume:
            payload = journal.load(key)
            if payload is not None:
                kind, okey = outcome_key(tasks[index])
                state.results[index] = (kind, okey, payload)
                state.reports[index].status = "cached"
                continue
        state.queue.append(index)

    workers = config.resolved_workers()
    if workers > 1 and len(state.queue) > 1:
        ladder = ["process", "thread", "serial"]
    else:
        ladder = ["serial"]

    modes: List[str] = []
    for mode in ladder:
        if not state.queue:
            break
        state.rung_failures.clear()  # fresh retry budget per rung
        modes.append(mode)
        if mode == "serial":
            _run_serial(state)
        elif _run_pooled(state, mode, workers):
            break

    state.maybe_fail_fast()
    outcomes = [state.results[i] for i in sorted(state.results)]
    return ExecutionOutcome(
        outcomes=outcomes,
        reports=state.reports,
        cache_stats=_aggregate_cache(state.cache_deltas),
        journal_stats=journal.stats.as_dict() if journal is not None else None,
        modes=modes,
    )
