"""Command-line front end: ``python -m repro.pipeline`` / ``examples/reproduce_paper.py``.

Regenerates the paper's Tables 1-6 (plus the section 1.1 savings summary
and the modexp large-workload scenario) as versioned JSON + markdown
artifacts, optionally checking the JSON against a golden copy — the CI
smoke job runs ``--smoke --check tests/golden/sweep_smoke.json``.

Fault tolerance knobs (all execution-only — none can change the artifact
bytes, so all of them compose with ``--smoke`` and ``--check``):
``--store DIR`` arms the checkpoint journal, ``--resume`` replays valid
checkpoints from a previous (possibly interrupted) run, ``--max-retries``
/ ``--task-timeout`` bound per-task recovery, ``--no-fail-fast`` records
task failures in the run report instead of aborting, and ``--faults``
arms the chaos harness (:mod:`repro.pipeline.faults`) for the whole
execution ladder.  Every run writes ``run_report.json``/``.md`` next to
the tables artifact with per-task attempts, errors and journal counts.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import replace
from pathlib import Path
from typing import Optional, Sequence

from .artifacts import (
    diff_artifacts,
    load_artifact,
    run_report,
    sweep_artifact,
    write_artifact,
    write_run_report,
)
from .faults import FAULTS_ENV, FaultPlan, install as install_faults
from .jobs import ExecutionPolicy, SweepExecutionError
from .noise import noise_artifact, noise_sweep, write_noise_artifact
from .runner import SweepConfig, run_sweep

__all__ = ["main", "smoke_config"]


def smoke_config() -> SweepConfig:
    """The tiny, seconds-long configuration pinned by the golden file."""
    return SweepConfig(
        tables=("table1", "table6"),
        sizes=(4,),
        seed=7,
        mc_batch=128,
        mc_repeats=1,
        workers=0,
        modexp=((2, 3),),
    )


#: Flags the pinned smoke configuration overrides; combining them with
#: --smoke is rejected rather than silently ignored.
_SMOKE_CONFLICTS = (
    ("sizes", "--sizes"),
    ("tables", "--tables"),
    ("seed", "--seed"),
    ("mc_batch", "--mc-batch"),
    ("mc_repeats", "--mc-repeats"),
    ("workers", "--workers"),
    ("no_savings", "--no-savings"),
    ("modexp", "--modexp"),
)


def _parse(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="reproduce_paper",
        description="Regenerate the paper's Tables 1-6 as JSON + markdown artifacts.",
    )
    parser.add_argument("--sizes", type=int, nargs="+", default=[8, 16, 32],
                        help="register widths n to sweep (default: 8 16 32)")
    parser.add_argument("--tables", nargs="+",
                        default=["table1", "table2", "table3", "table4", "table5", "table6"],
                        help="which paper tables to regenerate")
    parser.add_argument("--out", default="artifacts",
                        help="output directory for tables.json / tables.md")
    parser.add_argument("--seed", type=int, default=0,
                        help="sweep seed; per-task streams are derived from it")
    parser.add_argument("--mc-batch", type=int, default=1024,
                        help="Monte-Carlo lanes per repeat (default 1024)")
    parser.add_argument("--mc-repeats", type=int, default=1,
                        help="Monte-Carlo repeats (default 1)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: min(4, cpu); 0/1 = serial)")
    parser.add_argument("--no-savings", action="store_true",
                        help="skip the section 1.1 savings summary")
    parser.add_argument("--modexp", type=int, nargs=2, action="append",
                        metavar=("N_EXP", "N"), default=None,
                        help="add a modular-exponentiation workload (repeatable); "
                             "default: 2 4 and 4 8")
    parser.add_argument("--transform", default=None, metavar="PASS[,PASS...]",
                        help="apply a repro.transform pass chain to every table-row "
                             "circuit, e.g. --transform lower_toffoli,cancel_adjacent "
                             "(composes with --smoke; becomes part of each cache key)")
    parser.add_argument("--noise-rates", type=float, nargs="+", default=None,
                        metavar="RATE",
                        help="also sweep bit-flip rates through the noise-injection "
                             "analysis (repro.pipeline.noise) and write a separate "
                             "noise.json / noise.md artifact (composes with --smoke)")
    parser.add_argument("--noise-batch", type=int, default=None,
                        help="Monte-Carlo lanes per noise point "
                             "(default: the sweep's mc_batch)")
    parser.add_argument("--smoke", action="store_true",
                        help="run the tiny pinned smoke configuration instead")
    parser.add_argument("--check", metavar="GOLDEN",
                        help="diff the JSON artifact against a golden file; "
                             "exit 1 on mismatch")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="checkpoint journal directory: completed tasks are "
                             "persisted (atomic, checksummed) and skipped on a "
                             "rerun of the same config (composes with --smoke)")
    parser.add_argument("--resume", action="store_true",
                        help="resume from the checkpoint journal; with no "
                             "--store, defaults to <out>/.journal")
    parser.add_argument("--max-retries", type=int, default=2, metavar="N",
                        help="direct task failures tolerated per degradation "
                             "rung before the task is reported failed (default 2)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-task wall-clock budget on the pool rungs; a "
                             "worker past it is killed and the task retried "
                             "(default: no limit)")
    parser.add_argument("--schedule", action="store_true",
                        help="run the run-lengthening scheduler before fusing "
                             "each task circuit's compiled program "
                             "(execution-only: artifact bytes are unchanged; "
                             "composes with --smoke and --check)")
    parser.add_argument("--kernels", default=None, metavar="STRATEGY",
                        help="generated-kernel strategy for the Monte-Carlo "
                             "columns: codegen, vector, arrays or auto "
                             "(execution-only; composes with --smoke)")
    parser.add_argument("--no-fail-fast", action="store_true",
                        help="record tasks that exhaust their retries in the "
                             "run report (exit 1) instead of aborting the sweep")
    parser.add_argument("--faults", metavar="PLAN", default=None,
                        help="arm the fault-injection harness: a JSON fault "
                             "plan, or @path to one (chaos testing; exported "
                             "to workers via REPRO_FAULTS)")
    args = parser.parse_args(argv)
    from ..resources.tables import TABLE_SPECS
    from ..transform import parse_transform_chain

    unknown_tables = [t for t in args.tables if t not in TABLE_SPECS]
    if unknown_tables:
        parser.error(
            f"unknown table(s): {', '.join(unknown_tables)}; "
            f"available: {', '.join(sorted(TABLE_SPECS))}"
        )
    try:
        args.transform_chain = parse_transform_chain(args.transform)
    except ValueError as exc:
        parser.error(str(exc))
    from ..sim.strategies import validate_kernels

    try:
        validate_kernels(args.kernels)
    except ValueError as exc:
        parser.error(f"--kernels: {exc}")
    if args.max_retries < 0:
        parser.error("--max-retries must be >= 0")
    if args.task_timeout is not None and args.task_timeout <= 0:
        parser.error("--task-timeout must be positive")
    args.fault_plan = None
    if args.faults is not None:
        try:
            args.fault_plan = FaultPlan.from_arg(args.faults)
        except (OSError, ValueError) as exc:
            parser.error(f"--faults: {exc}")
    if args.smoke:
        clashes = [
            flag for dest, flag in _SMOKE_CONFLICTS
            if getattr(args, dest) != parser.get_default(dest)
        ]
        if clashes:
            parser.error(
                f"--smoke pins its own sweep configuration; drop {', '.join(clashes)}"
            )
    return args


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parse(argv)
    transforms = args.transform_chain
    if args.smoke:
        config = smoke_config()
        if transforms:
            config = replace(config, transforms=transforms)
    else:
        modexp = args.modexp if args.modexp is not None else [[2, 4], [4, 8]]
        config = SweepConfig(
            tables=tuple(args.tables),
            sizes=tuple(args.sizes),
            seed=args.seed,
            mc_batch=args.mc_batch,
            mc_repeats=args.mc_repeats,
            workers=args.workers,
            include_savings=not args.no_savings,
            modexp=tuple((ne, n) for ne, n in modexp),
            transforms=transforms,
        )

    store = args.store
    if args.resume and store is None:
        store = str(Path(args.out) / ".journal")
    policy = ExecutionPolicy(
        max_retries=args.max_retries,
        task_timeout=args.task_timeout,
        fail_fast=not args.no_fail_fast,
        store=store,
        resume=True,
        schedule=args.schedule,
        kernels=args.kernels,
    )
    if args.fault_plan is not None:
        # Arm the whole ladder: the env var reaches pool workers, the
        # installed plan covers the serial / thread rungs in-process.
        os.environ[FAULTS_ENV] = args.fault_plan.to_json()
        install_faults(args.fault_plan)

    try:
        result = run_sweep(config, policy=policy)
    except SweepExecutionError as exc:
        print(f"SWEEP FAILED: {exc}", file=sys.stderr)
        for report in exc.failures:
            print(f"  {report.key}: {report.error} "
                  f"(attempts={report.attempts}, replay seed={report.seed})",
                  file=sys.stderr)
        return 1
    artifact = sweep_artifact(result)
    json_path, md_path = write_artifact(artifact, args.out)
    report_json, _ = write_run_report(run_report(result), args.out)
    print(f"wrote {json_path} and {md_path}")
    print(f"sweep: {len(config.tables)} tables x {len(config.sizes)} sizes, "
          f"seed {config.seed}, {result.elapsed:.2f}s "
          f"via {' -> '.join(result.execution_modes) or 'cache'}")
    print(f"cache: {json.dumps(result.cache_stats)}")
    if result.journal_stats is not None:
        print(f"journal: {json.dumps(result.journal_stats)}")
    print(f"run report: {report_json}")
    if result.failures:
        print(f"SWEEP INCOMPLETE: {len(result.failures)} task(s) failed "
              f"(see {report_json}):", file=sys.stderr)
        for failure in result.failures:
            print(f"  {failure['key']}: {failure['error']} "
                  f"(attempts={failure['attempts']}, replay seed={failure['seed']})",
                  file=sys.stderr)
        return 1

    if args.noise_rates:
        rates = args.noise_rates
        for rate in rates:
            if not 0.0 <= rate <= 1.0:
                print(f"--noise-rates values must lie in [0, 1], got {rate}",
                      file=sys.stderr)
                return 2
        noise_result = noise_sweep(
            rates,
            sizes=config.sizes,
            seed=config.seed,
            batch=args.noise_batch or config.mc_batch,
        )
        noise_json, noise_md = write_noise_artifact(
            noise_artifact(noise_result), args.out
        )
        print(f"wrote {noise_json} and {noise_md}")
        print(f"noise: {len(rates)} rates x {len(config.sizes)} sizes, "
              f"{noise_result.elapsed:.2f}s")

    if args.check:
        golden = load_artifact(args.check)
        diffs = diff_artifacts(artifact, golden)
        if diffs:
            print(f"ARTIFACT MISMATCH vs {args.check}:", file=sys.stderr)
            for line in diffs[:40]:
                print(f"  {line}", file=sys.stderr)
            if len(diffs) > 40:
                print(f"  ... and {len(diffs) - 40} more", file=sys.stderr)
            return 1
        print(f"artifact matches golden {args.check}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
