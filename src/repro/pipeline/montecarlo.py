"""Monte-Carlo estimation of *expected* MBU gate costs.

The paper's expected-cost formulas (every MBU correction fires with
probability 1/2) are validated empirically here: one bit-plane run with a
seeded :class:`~repro.sim.outcomes.RandomOutcomes` provider draws each
lane's measurement outcomes independently, so ``batch`` lanes are
``batch`` i.i.d. samples of the executed gate count.  The per-lane
counters added to :class:`~repro.sim.bitplane.BitplaneSimulator`
(``lane_counts=``) give the exact sample, hence a mean, a sample variance
and a normal-approximation confidence interval to put next to the
closed-form expectation.

Determinism: estimates depend only on ``(seed, batch, repeats)`` — never
on wall clock, worker scheduling or platform.  :func:`derive_seed` folds
an arbitrary task key into an independent 63-bit seed with SHA-256, which
is how the sweep runner gives every (table, n, row, variant) cell its own
reproducible stream.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.counts import TOFFOLI_GATES
from ..sim.bitplane import BitplaneSimulator, LaneTallyStats
from ..sim.classical import UnsupportedGateError
from ..sim.outcomes import RandomOutcomes

__all__ = [
    "MCEstimate",
    "derive_seed",
    "mc_expected_counts",
    "mc_or_none",
]

#: Default tracked gates: the paper's headline Toffoli metric.
DEFAULT_GATES: Tuple[str, ...] = tuple(sorted(TOFFOLI_GATES))


def derive_seed(*parts: Any) -> int:
    """A stable 63-bit seed from an arbitrary key (SHA-256, not ``hash``)."""
    blob = "\x1f".join(str(p) for p in parts).encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big") >> 1


@dataclass(frozen=True)
class MCEstimate(LaneTallyStats):
    """A Monte-Carlo estimate of an expected per-run gate count.

    Extends :class:`~repro.sim.bitplane.LaneTallyStats` (which owns the
    mean/variance/stderr/``ci95``/``z_score`` machinery) with the
    estimate's provenance: which gates were counted and the sweep seed.
    ``samples`` is ``batch * repeats``.
    """

    gates: Tuple[str, ...] = ()
    seed: int = 0


def _circuit_of(target) -> Circuit:
    return target.circuit if hasattr(target, "circuit") else target


def mc_expected_counts(
    target,
    *,
    batch: int = 1024,
    repeats: int = 1,
    seed: int = 0,
    gates: Sequence[str] = DEFAULT_GATES,
    inputs: Optional[Mapping[str, Any]] = None,
) -> MCEstimate:
    """Estimate the expected executed count of ``gates`` over random outcomes.

    ``target`` is a :class:`~repro.arithmetic.builders.Built` or a bare
    :class:`~repro.circuits.circuit.Circuit`.  Registers default to the
    all-zero basis state (valid for every construction in the repo; the
    executed-cost distribution of the MBU circuits is input-independent —
    X-basis measurement outcomes are unbiased coins regardless of the
    data).  Raises :class:`~repro.sim.classical.UnsupportedGateError` for
    circuits outside basis-state semantics (e.g. QFT-based Draper rows);
    use :func:`mc_or_none` to skip those.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    circuit = _circuit_of(target)
    chunks = []
    for r in range(repeats):
        sim = BitplaneSimulator(
            circuit,
            batch=batch,
            outcomes=RandomOutcomes(derive_seed(seed, "rep", r)),
            tally=False,
            lane_counts=tuple(gates),
        )
        for name, value in (inputs or {}).items():
            sim.set_register(name, value)
        sim.run()
        chunks.append(sim.lane_tally())
    totals = np.concatenate(chunks)
    return MCEstimate.from_counts(totals, gates=tuple(gates), seed=seed)


def mc_or_none(target, **kwargs) -> Optional[MCEstimate]:
    """:func:`mc_expected_counts`, or ``None`` when the circuit has no
    basis-state semantics (QFT-based constructions)."""
    try:
        return mc_expected_counts(target, **kwargs)
    except UnsupportedGateError:
        return None
