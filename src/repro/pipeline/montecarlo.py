"""Monte-Carlo estimation of *expected* MBU gate costs.

The paper's expected-cost formulas (every MBU correction fires with
probability 1/2) are validated empirically here: one bit-plane run with a
seeded :class:`~repro.sim.outcomes.RandomOutcomes` provider draws each
lane's measurement outcomes independently, so ``batch`` lanes are
``batch`` i.i.d. samples of the executed gate count.  The per-lane
counters added to :class:`~repro.sim.bitplane.BitplaneSimulator`
(``lane_counts=``) give the exact sample, hence a mean, a sample variance
and a normal-approximation confidence interval to put next to the
closed-form expectation.

Determinism: estimates depend only on ``(seed, batch, repeats)`` — never
on wall clock, worker scheduling or platform, and not on the execution
strategy either: the default compiled path (one fused program re-run
across all repetitions on one reset simulator; see
``docs/performance.md``) consumes the exact same per-repetition outcome
streams as the interpretive walk, so the estimates are bit-identical.
:func:`derive_seed` folds an arbitrary task key into an independent
63-bit seed with SHA-256, which is how the sweep runner gives every
(table, n, row, variant) cell its own reproducible stream.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.counts import TOFFOLI_GATES
from ..sim.bitplane import BitplaneSimulator, LaneTallyStats
from ..sim.classical import UnsupportedGateError
from ..sim.outcomes import RandomOutcomes

__all__ = [
    "MCEstimate",
    "derive_seed",
    "mc_expected_counts",
    "mc_or_none",
]

#: Default tracked gates: the paper's headline Toffoli metric.
DEFAULT_GATES: Tuple[str, ...] = tuple(sorted(TOFFOLI_GATES))


def derive_seed(*parts: Any) -> int:
    """A stable 63-bit seed from an arbitrary key (SHA-256, not ``hash``)."""
    blob = "\x1f".join(str(p) for p in parts).encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big") >> 1


@dataclass(frozen=True)
class MCEstimate(LaneTallyStats):
    """A Monte-Carlo estimate of an expected per-run gate count.

    Extends :class:`~repro.sim.bitplane.LaneTallyStats` (which owns the
    mean/variance/stderr/``ci95``/``z_score`` machinery) with the
    estimate's provenance: which gates were counted and the sweep seed.
    ``samples`` is ``batch * repeats``.

    ``compile_seconds``/``run_seconds`` expose the compile/run split of the
    estimate's wall time: compilation happens (at most) once per circuit —
    zero when a pre-built program was supplied — while the run time covers
    every repetition executed against the one compiled program.
    """

    gates: Tuple[str, ...] = ()
    seed: int = 0
    compile_seconds: float = 0.0
    run_seconds: float = 0.0


def _circuit_of(target) -> Circuit:
    return target.circuit if hasattr(target, "circuit") else target


def mc_expected_counts(
    target,
    *,
    batch: int = 1024,
    repeats: int = 1,
    seed: int = 0,
    gates: Sequence[str] = DEFAULT_GATES,
    inputs: Optional[Mapping[str, Any]] = None,
    compiled: bool = True,
    program: Any = None,
    execution: str = "auto",
    kernels: Optional[str] = None,
    schedule: bool = False,
    shards: Optional[int] = None,
    executor: Any = None,
    noise: Any = None,
) -> MCEstimate:
    """Estimate the expected executed count of ``gates`` over random outcomes.

    ``target`` is a :class:`~repro.arithmetic.builders.Built` or a bare
    :class:`~repro.circuits.circuit.Circuit`.  Registers default to the
    all-zero basis state (valid for every construction in the repo; the
    executed-cost distribution of the MBU circuits is input-independent —
    X-basis measurement outcomes are unbiased coins regardless of the
    data).  Raises :class:`~repro.sim.classical.UnsupportedGateError` for
    circuits outside basis-state semantics (e.g. QFT-based Draper rows);
    use :func:`mc_or_none` to skip those.

    ``compiled=True`` (the default) compiles the circuit *once* — or takes
    a pre-built ``program`` (a
    :class:`~repro.transform.compile.FusedProgram` or
    :class:`~repro.transform.compile.CompiledProgram`, e.g. from
    :meth:`~repro.pipeline.cache.CircuitCache.program`) — and re-runs it
    for every repetition on one simulator whose plane buffers are reset in
    place, instead of rebuilding execution state per repetition.  Results
    are bit-identical to the interpretive path (``compiled=False``): the
    estimate still depends only on ``(seed, batch, repeats)``.

    ``execution`` selects how the compiled repetitions run: ``"single"``
    (one in-process simulator), ``"sharded"`` (lane-sharded across a
    persistent worker pool — :mod:`repro.sim.dispatch`), or ``"auto"``
    (the default: sharded exactly when the calibrated cost model says it
    is cheaper for this (ops, batch) on the available cores, single
    otherwise).  Sharded per-repetition lane tallies are bit-identical to
    the single-process ones — each shard draws full-width outcome masks
    and keeps its lane window — so this choice never changes an estimate,
    only its wall time.  ``shards``/``executor`` pass through to
    :class:`~repro.sim.dispatch.ShardPool` when sharding is in play.

    ``kernels`` picks the generated-kernel strategy the compiled
    repetitions execute through (``"codegen"``, ``"vector"``,
    ``"arrays"`` or ``"auto"``; ``None`` is the backend default) and
    ``schedule=True`` runs the run-lengthening scheduler before fusion
    when this call compiles or fuses the program itself (a pre-fused
    ``program`` already made that choice — pull it from
    :meth:`CircuitCache.program(spec, schedule=True)
    <repro.pipeline.cache.CircuitCache.program>` to combine the two).
    Both are execution-only: estimates are bit-identical whatever the
    kernel or schedule, so the golden artifacts cannot move.

    ``noise`` (a :class:`repro.noise.NoiseConfig`) enables the bit-flip
    channel at the circuit's annotated noise points.  The channel stream
    rewinds to ``noise.seed`` at every repetition — repetitions share one
    flip pattern, only the measurement outcomes vary — which is what keeps
    single-process and sharded estimates bit-identical; use distinct
    ``noise.seed`` values across estimates when independent flips matter.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    if execution not in ("auto", "single", "sharded"):
        raise ValueError(
            f"unknown execution mode {execution!r}; "
            "options: 'auto', 'single', 'sharded'"
        )
    from ..sim.strategies import validate_kernels

    validate_kernels(kernels)
    circuit = _circuit_of(target)
    compile_seconds = 0.0
    if compiled:
        from ..transform.compile import (
            CompiledProgram,
            compile_program,
            fuse_program,
        )

        if program is None:
            start = time.perf_counter()
            program = fuse_program(
                compile_program(circuit, tally=True),
                memoize=False,
                schedule=schedule,
            )
            program.kernel(events=True)  # kernel generation is compile work
            compile_seconds = time.perf_counter() - start
        elif isinstance(program, CompiledProgram):
            start = time.perf_counter()
            program = fuse_program(program, schedule=schedule)
            compile_seconds = time.perf_counter() - start
    use_sharded = False
    if compiled and execution != "single":
        from ..sim.dispatch import program_is_flat
        from ..sim.dispatch.cost import default_model

        model = default_model()
        if execution == "sharded":
            use_sharded = True
        else:  # auto: only shard when the model predicts a win
            choice = model.choose(
                ops=len(program.scalar.instructions),
                batch=batch,
                tally=False,
                lane_counts=True,
                candidates=("codegen", "sharded"),
            )
            use_sharded = choice == "sharded"
        # Stateful providers need flat programs (every builder circuit is);
        # fall back to single-process execution rather than fail.  Same
        # for noise points nested inside branch bodies.
        if use_sharded and not program_is_flat(program):
            use_sharded = False
        if use_sharded and noise is not None and float(noise.rate) > 0.0:
            from ..sim.dispatch import noise_is_flat

            if not noise_is_flat(program):
                use_sharded = False
    chunks = []
    start = time.perf_counter()
    if use_sharded:
        from ..sim.dispatch import ShardPool

        with ShardPool(
            program, batch=batch, shards=shards, executor=executor,
            tally=False, lane_counts=tuple(gates), kernels=kernels,
            noise=noise,
        ) as pool:
            for r in range(repeats):
                result = pool.run(
                    inputs, outcomes=RandomOutcomes(derive_seed(seed, "rep", r))
                )
                chunks.append(result.lane_tally())
    else:
        sim = BitplaneSimulator(
            circuit,
            batch=batch,
            outcomes=RandomOutcomes(derive_seed(seed, "rep", 0)),
            tally=False,
            lane_counts=tuple(gates),
            noise=noise,
        )
        for r in range(repeats):
            if r:
                sim.reset(RandomOutcomes(derive_seed(seed, "rep", r)))
            for name, value in (inputs or {}).items():
                sim.set_register(name, value)
            if compiled:
                sim.run_compiled(program, kernels=kernels)
            else:
                sim.run()
            chunks.append(sim.lane_tally())
    run_seconds = time.perf_counter() - start
    totals = np.concatenate(chunks)
    return MCEstimate.from_counts(
        totals,
        gates=tuple(gates),
        seed=seed,
        compile_seconds=compile_seconds,
        run_seconds=run_seconds,
    )


def mc_or_none(target, **kwargs) -> Optional[MCEstimate]:
    """:func:`mc_expected_counts`, or ``None`` when the circuit has no
    basis-state semantics (QFT-based constructions)."""
    try:
        return mc_expected_counts(target, **kwargs)
    except UnsupportedGateError:
        return None
