"""Versioned reproduction artifacts: canonical JSON + rendered markdown.

An *artifact* is the JSON-able snapshot of one sweep: schema version,
package version, the full :class:`~repro.pipeline.runner.SweepConfig`,
and every table/savings/modexp row with formula, measured and Monte-Carlo
columns.  The encoding is canonical — Fractions become ints or exact
``"num/den"`` strings, floats are rounded to 9 decimals, key order is the
row order — so two runs of the same config produce byte-identical files
and CI can diff a freshly generated smoke artifact against a checked-in
golden copy (:func:`diff_artifacts`).

No wall-clock data ever enters the artifact (elapsed time and cache
statistics are reported on stdout, not persisted), precisely so the
golden comparison stays exact.  Execution diagnostics — per-task
attempts, retries, errors, journal hit counts, degradation-ladder rungs —
go into a *separate* run-report artifact (:func:`run_report` /
:func:`write_run_report`, ``run_report.json``/``.md``): by construction
nothing in it can affect the table bytes, and keeping it out of
``tables.json`` is what lets a sweep resumed through crashes diff clean
against a golden written by an uninterrupted run.
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .runner import SweepResult

__all__ = [
    "SCHEMA_VERSION",
    "RUN_REPORT_SCHEMA_VERSION",
    "sweep_artifact",
    "render_markdown",
    "write_artifact",
    "load_artifact",
    "diff_artifacts",
    "run_report",
    "render_run_report",
    "write_run_report",
]

SCHEMA_VERSION = 1
RUN_REPORT_SCHEMA_VERSION = 1


def _package_version() -> str:
    from .. import __version__

    return __version__


def _jsonify(value: Any) -> Any:
    """Canonical JSON encoding: exact where possible, rounded where not."""
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return int(value)
        return f"{value.numerator}/{value.denominator}"
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return round(value, 9)
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return str(value)  # LinearCost and friends render symbolically


def sweep_artifact(result: SweepResult) -> Dict[str, Any]:
    """The canonical JSON-able snapshot of one sweep result."""
    from ..resources.tables import TABLE_SPECS

    tables: Dict[str, Any] = {}
    for name in result.config.tables:
        sizes = result.tables.get(name, {})
        tables[name] = {
            "title": TABLE_SPECS[name].title,
            "sizes": {str(n): _jsonify(rows) for n, rows in sorted(sizes.items())},
        }
    return {
        "schema": SCHEMA_VERSION,
        "package_version": _package_version(),
        "config": _jsonify(result.config.as_dict()),
        "tables": tables,
        "savings": {str(n): _jsonify(s) for n, s in sorted(result.savings.items())},
        "modexp": _jsonify(result.modexp),
    }


# --------------------------------------------------------------------------- #
# markdown rendering

_SKIP_KEYS = ("row", "n", "p", "a", "n_exp")


def _columns(rows: List[Dict[str, Any]]) -> List[str]:
    cols: List[str] = []
    for row in rows:
        for key in row:
            if key in _SKIP_KEYS or key.endswith("_paper") or key.endswith("_mc") \
                    or key.endswith("_mc_ci95"):
                continue
            if key not in cols:
                cols.append(key)
    return cols


def _cell(row: Dict[str, Any], col: str) -> str:
    value = row.get(col)
    if value is None:
        return "—"
    text = str(value)
    paper = row.get(f"{col}_paper")
    if paper is not None:
        text += f" (paper: {paper})"
    mc = row.get(f"{col}_mc")
    if mc is not None:
        ci = row.get(f"{col}_mc_ci95")
        text += f" (MC: {mc} ± {ci:g})" if isinstance(ci, (int, float)) else f" (MC: {mc})"
    return text


def _markdown_table(rows: List[Dict[str, Any]]) -> List[str]:
    cols = _columns(rows)
    header = ["row"] + cols
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for row in rows:
        cells = [str(row.get("row", ""))] + [_cell(row, c) for c in cols]
        lines.append("| " + " | ".join(cells) + " |")
    return lines


def render_markdown(artifact: Dict[str, Any]) -> str:
    """Render an artifact as a human-readable markdown report."""
    lines: List[str] = [
        "# Paper reproduction — Tables 1–6",
        "",
        f"Artifact schema v{artifact['schema']}, package "
        f"v{artifact['package_version']}, seed {artifact['config']['seed']}.",
        "",
        "Each cell shows the **measured** expected-mode value, the paper's",
        "formula evaluated at the same point *(paper: …)*, and — where the",
        "circuit has basis-state semantics — a Monte-Carlo estimate over",
        f"{artifact['config']['mc_batch']} × {artifact['config']['mc_repeats']}"
        " random-outcome lanes with a 95% confidence half-width *(MC: m ± c)*.",
        "",
    ]
    for name, table in artifact.get("tables", {}).items():
        for n, rows in table.get("sizes", {}).items():
            title = table["title"].format(n=n, p=rows[0].get("p", "")) \
                if rows else table["title"]
            lines.append(f"## {title}")
            lines.append("")
            lines.extend(_markdown_table(rows))
            lines.append("")
    savings = artifact.get("savings", {})
    if savings:
        lines.append("## Section 1.1 headline — expected-Toffoli savings from MBU")
        lines.append("")
        keys = list(next(iter(savings.values())))
        lines.append("| n | " + " | ".join(keys) + " |")
        lines.append("|" + "|".join("---" for _ in range(len(keys) + 1)) + "|")
        for n, row in savings.items():
            lines.append(
                f"| {n} | " + " | ".join(f"{100 * row[k]:.1f}%" for k in keys) + " |"
            )
        lines.append("")
    modexp = artifact.get("modexp", [])
    if modexp:
        lines.append("## Large workload — Shor-style modular exponentiation")
        lines.append("")
        lines.extend(_markdown_table(modexp))
        lines.append("")
    return "\n".join(lines)


# --------------------------------------------------------------------------- #
# I/O and golden comparison

def write_artifact(
    artifact: Dict[str, Any], outdir: Union[str, Path], stem: str = "tables"
) -> Tuple[Path, Path]:
    """Write ``<stem>.json`` and ``<stem>.md`` under ``outdir``."""
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    json_path = outdir / f"{stem}.json"
    md_path = outdir / f"{stem}.md"
    json_path.write_text(json.dumps(artifact, indent=2) + "\n")
    md_path.write_text(render_markdown(artifact) + "\n")
    return json_path, md_path


def load_artifact(path: Union[str, Path]) -> Dict[str, Any]:
    return json.loads(Path(path).read_text())


#: Keys skipped by default: execution details that cannot affect results.
#: ``workers`` only parallelizes (per-task seeds are derived, so rows are
#: identical on any worker count) and ``package_version`` is a release
#: label — neither should invalidate a golden file.
DEFAULT_IGNORE: Tuple[str, ...] = ("package_version", "workers")


def diff_artifacts(
    ours: Any, golden: Any, path: str = "", ignore: Tuple[str, ...] = DEFAULT_IGNORE
) -> List[str]:
    """Structural differences between two artifacts (empty = identical).

    Keys named in ``ignore`` are skipped at any depth, so a version bump
    or a different worker count alone does not invalidate a golden file.
    """
    diffs: List[str] = []
    if isinstance(ours, dict) and isinstance(golden, dict):
        for key in sorted(set(ours) | set(golden)):
            if key in ignore:
                continue
            where = f"{path}.{key}" if path else key
            if key not in ours:
                diffs.append(f"{where}: missing in ours (golden has {golden[key]!r})")
            elif key not in golden:
                diffs.append(f"{where}: unexpected key (ours has {ours[key]!r})")
            else:
                diffs.extend(diff_artifacts(ours[key], golden[key], where, ignore))
    elif isinstance(ours, list) and isinstance(golden, list):
        if len(ours) != len(golden):
            diffs.append(f"{path}: length {len(ours)} != {len(golden)}")
        for i, (a, b) in enumerate(zip(ours, golden)):
            diffs.extend(diff_artifacts(a, b, f"{path}[{i}]", ignore))
    elif ours != golden:
        diffs.append(f"{path}: {ours!r} != {golden!r}")
    return diffs


# --------------------------------------------------------------------------- #
# run report: execution diagnostics, deliberately outside tables.json

def run_report(result: SweepResult) -> Dict[str, Any]:
    """The execution story of one sweep, as a JSON-able report.

    Everything the golden-diffed artifact must *not* contain lives here:
    wall-clock elapsed, per-task attempt/retry/error records, worker
    pids, checkpoint-journal hit counts and the degradation-ladder rungs
    used.  Failed tasks keep their replay seed + task key, so a
    ``fail_fast=False`` run is diagnosable from the report alone.
    """
    from .jobs import config_fingerprint

    return {
        "schema": RUN_REPORT_SCHEMA_VERSION,
        "package_version": _package_version(),
        "config_fingerprint": config_fingerprint(result.config),
        "seed": result.config.seed,
        "elapsed": round(result.elapsed, 6),
        "execution_modes": result.execution_modes,
        "cache_stats": _jsonify(result.cache_stats),
        "journal": result.journal_stats,
        "tasks": _jsonify(result.task_reports),
        "failures": _jsonify(result.failures),
    }


def render_run_report(report: Dict[str, Any]) -> str:
    """Render a run report as a compact markdown summary."""
    tasks = report.get("tasks", [])
    counts: Dict[str, int] = {}
    for task in tasks:
        counts[task["status"]] = counts.get(task["status"], 0) + 1
    lines = [
        "# Sweep run report",
        "",
        f"Report schema v{report['schema']}, config fingerprint "
        f"`{report['config_fingerprint']}`, seed {report['seed']}, "
        f"{report['elapsed']:.2f}s via "
        f"{' -> '.join(report.get('execution_modes') or ['serial'])}.",
        "",
        "Statuses: " + (", ".join(
            f"{n} {status}" for status, n in sorted(counts.items())
        ) or "no tasks") + ".",
        "",
    ]
    journal = report.get("journal")
    if journal is not None:
        lines += [
            "Journal: " + ", ".join(f"{k}={v}" for k, v in journal.items()) + ".",
            "",
        ]
    lines += [
        "| task | status | attempts | failures | requeues | mode | error |",
        "|---|---|---|---|---|---|---|",
    ]
    for task in tasks:
        error = task.get("error") or "—"
        lines.append(
            f"| {task['key']} | {task['status']} | {task['attempts']} "
            f"| {task['failures']} | {task['requeues']} "
            f"| {task.get('mode') or '—'} | {error} |"
        )
    return "\n".join(lines)


def write_run_report(
    report: Dict[str, Any], outdir: Union[str, Path], stem: str = "run_report"
) -> Tuple[Path, Path]:
    """Write ``<stem>.json`` and ``<stem>.md`` under ``outdir``."""
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    json_path = outdir / f"{stem}.json"
    md_path = outdir / f"{stem}.md"
    json_path.write_text(json.dumps(report, indent=2) + "\n")
    md_path.write_text(render_run_report(report) + "\n")
    return json_path, md_path
