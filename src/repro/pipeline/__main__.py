"""``python -m repro.pipeline`` — regenerate the paper's tables as artifacts."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
