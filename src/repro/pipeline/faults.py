"""Deterministic fault injection for the sweep executor (chaos harness).

The fault-tolerant executor in :mod:`repro.pipeline.jobs` is only
trustworthy if its failure paths are exercised on purpose.  This module
injects faults at two sites:

* ``"task"`` — fired at the top of every task invocation (see
  ``jobs._invoke``), before any real work happens;
* ``"journal"`` — fired right after a checkpoint entry lands on disk
  (``CheckpointJournal.store``), where the only supported action is
  ``"corrupt"``: the freshly written entry is garbled so the next resume
  must treat it as a cache miss and recompute.

Every decision is a pure function of ``(plan seed, site, task key,
attempt, fault index)`` through :func:`~repro.pipeline.montecarlo.derive_seed`,
so a chaos run is exactly as reproducible as a clean one: same plan, same
faults, same recovery path.  There are no shared counters — a worker
process reaches the identical decision its parent would, which is what
makes probability-gated faults usable across a process pool.

Actions:

``raise``
    Raise :class:`FaultInjected` (a plain ``RuntimeError`` subclass, so it
    pickles across process boundaries unchanged).
``hang``
    Sleep ``hang_seconds`` — long enough to trip the executor's per-task
    timeout — then continue normally.
``kill``
    ``os._exit(17)`` when running inside a worker *process* (the pool
    observes ``BrokenProcessPool``).  In the main process — serial or
    thread-pool execution — killing would take the whole interpreter
    down, so the action degrades to ``raise``.
``corrupt``
    Journal-site only: truncate and garble the checkpoint entry.

Plans are installed either programmatically (:func:`install`, process
local) or through the ``REPRO_FAULTS`` environment variable holding the
plan as JSON; pool workers inherit the environment, so one exported plan
covers every rung of the degradation ladder.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from .montecarlo import derive_seed

__all__ = [
    "FAULTS_ENV",
    "FaultSpec",
    "FaultPlan",
    "FaultInjected",
    "FaultInjector",
    "active_injector",
    "install",
    "clear",
    "maybe_fire",
    "corrupt_file",
]

#: Environment variable carrying a JSON :class:`FaultPlan`; inherited by
#: pool workers, so exporting it arms the whole execution ladder.
FAULTS_ENV = "REPRO_FAULTS"

_SITES = ("task", "journal")
_ACTIONS = ("raise", "hang", "kill", "corrupt")


class FaultInjected(RuntimeError):
    """The error an armed ``raise`` (or main-process ``kill``) fault throws.

    Deliberately attribute-free: exceptions round-trip a process pool via
    their ``args``, and a message-only ``RuntimeError`` subclass survives
    that pickling unchanged.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault point.

    ``match`` is an :func:`fnmatch.fnmatch` glob over task keys (see
    ``jobs.task_key``), ``attempts`` restricts firing to specific
    *cumulative* attempt indices (``()`` = every attempt) — so
    ``attempts=(0,)`` is the idiom for "fire exactly once per task", with
    no cross-process bookkeeping needed — and ``probability`` gates the
    decision on a deterministic per-``(key, attempt)`` draw.
    """

    site: str
    action: str
    match: str = "*"
    probability: float = 1.0
    attempts: Tuple[int, ...] = ()
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.site not in _SITES:
            raise ValueError(f"unknown fault site {self.site!r}; options: {_SITES}")
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}; options: {_ACTIONS}")
        if self.action == "corrupt" and self.site != "journal":
            raise ValueError("action 'corrupt' is journal-site only")
        if self.site == "journal" and self.action != "corrupt":
            raise ValueError("journal site supports only action 'corrupt'")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must lie in [0, 1], got {self.probability}")

    def as_dict(self) -> Dict[str, Any]:
        return {
            "site": self.site,
            "action": self.action,
            "match": self.match,
            "probability": self.probability,
            "attempts": list(self.attempts),
            "hang_seconds": self.hang_seconds,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        known = {"site", "action", "match", "probability", "attempts", "hang_seconds"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown fault spec key(s): {', '.join(unknown)}")
        kwargs = dict(data)
        if "attempts" in kwargs:
            kwargs["attempts"] = tuple(int(a) for a in kwargs["attempts"])
        return cls(**kwargs)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded list of :class:`FaultSpec`, serializable to/from JSON."""

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "faults": [f.as_dict() for f in self.faults]}
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid fault plan JSON: {exc}") from None
        if not isinstance(data, dict):
            raise ValueError("fault plan must be a JSON object")
        unknown = sorted(set(data) - {"seed", "faults"})
        if unknown:
            raise ValueError(f"unknown fault plan key(s): {', '.join(unknown)}")
        faults = tuple(
            FaultSpec.from_dict(spec) for spec in data.get("faults", ())
        )
        return cls(faults=faults, seed=int(data.get("seed", 0)))

    @classmethod
    def from_arg(cls, text: str) -> "FaultPlan":
        """Parse a CLI argument: inline JSON, or ``@path`` to a JSON file."""
        if text.startswith("@"):
            text = Path(text[1:]).read_text()
        return cls.from_json(text)


def _in_worker_process() -> bool:
    return multiprocessing.current_process().name != "MainProcess"


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at the executor's fault points."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    def decide(self, site: str, key: str, attempt: int) -> Optional[FaultSpec]:
        """The first armed spec that fires for ``(site, key, attempt)``.

        Purely deterministic: the probability draw hashes the plan seed,
        the coordinates and the spec's index, so every process reaches
        the same verdict.
        """
        for index, spec in enumerate(self.plan.faults):
            if spec.site != site:
                continue
            if spec.attempts and attempt not in spec.attempts:
                continue
            if not fnmatch(key, spec.match):
                continue
            if spec.probability < 1.0:
                draw = derive_seed(self.plan.seed, site, key, attempt, index)
                if draw / 2.0**63 >= spec.probability:
                    continue
            return spec
        return None

    def fire(self, site: str, key: str, attempt: int = 0) -> None:
        """Act on the decision for a ``task``-site fault point."""
        spec = self.decide(site, key, attempt)
        if spec is None:
            return
        if spec.action == "hang":
            time.sleep(spec.hang_seconds)
            return
        if spec.action == "kill" and _in_worker_process():
            os._exit(17)
        # "kill" outside a worker process degrades to "raise": taking the
        # main interpreter down would kill the test runner, not a worker.
        raise FaultInjected(
            f"injected {spec.action} at {site}:{key} (attempt {attempt})"
        )


#: Process-local plan installed programmatically; wins over the env var.
_INSTALLED: Optional[FaultInjector] = None
#: Injector parsed from REPRO_FAULTS, cached per raw env string.
_ENV_CACHE: Tuple[Optional[str], Optional[FaultInjector]] = (None, None)


def install(plan: Optional[FaultPlan]) -> None:
    """Install a plan process-locally (serial / thread-pool execution).

    Pool *worker processes* never see this — export :data:`FAULTS_ENV`
    for those.  ``install(None)`` is equivalent to :func:`clear`.
    """
    global _INSTALLED
    _INSTALLED = FaultInjector(plan) if plan is not None else None


def clear() -> None:
    """Remove the process-local plan (the env var, if set, still applies)."""
    install(None)


def active_injector() -> Optional[FaultInjector]:
    """The injector in effect: installed plan first, then ``REPRO_FAULTS``."""
    if _INSTALLED is not None:
        return _INSTALLED
    global _ENV_CACHE
    raw = os.environ.get(FAULTS_ENV)
    if raw is None:
        return None
    cached_raw, cached = _ENV_CACHE
    if raw != cached_raw:
        cached = FaultInjector(FaultPlan.from_json(raw))
        _ENV_CACHE = (raw, cached)
    return cached


def maybe_fire(site: str, key: str, attempt: int = 0) -> None:
    """Fire the active fault point, if any plan is armed (cheap no-op otherwise)."""
    injector = active_injector()
    if injector is not None:
        injector.fire(site, key, attempt)


def corrupt_file(path: Path) -> None:
    """Garble a checkpoint entry in place: truncate to half and flip bytes.

    Leaves *something* on disk (an empty or missing file is the easier
    case), so loaders are exercised against plausible-looking garbage.
    """
    data = path.read_bytes()
    keep = data[: max(1, len(data) // 2)]
    garbled = bytes((b ^ 0x5A) for b in keep[:16]) + keep[16:]
    path.write_bytes(garbled)
