"""Noise-injection analysis: protocol success and postselection rates.

The paper's measurement-based uncomputation (MBU) trades Toffoli count for
*measurement sensitivity*: every X-basis measurement it introduces is a new
fault location.  This module quantifies that trade at Monte-Carlo scale.
For a circuit salted with bit-flip channel points
(:func:`repro.noise.insert_noise_points` places one after every top-level
measurement and MBU block), it estimates over thousands of independent
lanes:

* **success rate** — the probability that every qubit ends in the state the
  noiseless protocol produces (data registers correct *and* ancillas
  clean), to compare against the analytic ``(1 - rate) ** g`` for ``g``
  independent fault points;
* **postselection rate** — the probability that all noise-targeted qubits
  *read* their noiseless values, i.e. the fraction of runs a
  flag-and-discard scheme keeps;
* **conditional success** — success among the postselected lanes, which
  shows how much of the damage postselection actually catches.

Each estimate carries a 95% confidence half-width from
:meth:`~repro.sim.bitplane.LaneTallyStats.from_counts` over the per-lane
0/1 indicators — the same machinery the expected-cost estimates use.

Determinism matches the rest of the pipeline: rates, seeds and batch fully
determine every number; the artifact (``noise.json`` / ``noise.md``, schema
:data:`NOISE_SCHEMA_VERSION`) is byte-stable across runs and platforms.  It
is written *separately* from the sweep artifact so the golden sweep files
stay untouched.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.circuit import Circuit
from ..noise import NoiseConfig, insert_noise_points, noise_points
from ..sim.bitplane import BitplaneSimulator, LaneTallyStats
from ..sim.classical import ClassicalSimulator
from .montecarlo import derive_seed

__all__ = [
    "NOISE_SCHEMA_VERSION",
    "NoiseEstimate",
    "NoiseSweepResult",
    "estimate_success",
    "noise_sweep",
    "noise_artifact",
    "render_noise_markdown",
    "write_noise_artifact",
]

NOISE_SCHEMA_VERSION = 1


def _circuit_of(target) -> Circuit:
    return target.circuit if hasattr(target, "circuit") else target


@dataclass(frozen=True)
class NoiseEstimate:
    """Success/postselection estimate for one (circuit, rate) point.

    ``success``/``postselect`` are :class:`LaneTallyStats` over per-lane 0/1
    indicators (so ``.mean`` is the rate and ``.ci95`` the 95% half-width);
    ``conditional_success`` is the success stats restricted to postselected
    lanes, or ``None`` when postselection kept no lane.  ``analytic`` is
    ``(1 - rate) ** points``: exact when fault points are independent and
    every flip is fatal, which holds for the modadd constructions here.
    """

    rate: float
    points: int
    lanes: int
    success: LaneTallyStats
    postselect: LaneTallyStats
    conditional_success: Optional[LaneTallyStats]
    analytic: float


def _expected_qubits(circuit: Circuit, inputs: Optional[Mapping[str, int]]) -> List[int]:
    """Noiseless per-qubit reference state from one classical run."""
    sim = ClassicalSimulator(circuit, tally=False)
    for name, value in (inputs or {}).items():
        sim.set_register(circuit.registers[name], value)
    sim.run()
    return list(sim.qubits)


def estimate_success(
    target,
    rate: float,
    *,
    batch: int = 1024,
    seed: int = 0,
    inputs: Optional[Mapping[str, int]] = None,
) -> NoiseEstimate:
    """Estimate protocol success and postselection rates at one flip rate.

    ``target`` is a ``Built`` or a circuit; circuits without noise points
    are salted with :func:`~repro.noise.insert_noise_points` first.
    ``inputs`` maps register names to one scalar value broadcast across all
    ``batch`` lanes (default: all-zero).  Lanes are compared against a
    noiseless classical reference run on the same inputs, so the circuit
    must have basis-state semantics.  The ``batch`` lanes of one compiled
    bit-plane run are the Monte-Carlo sample: independent measurement
    outcomes *and* independent channel flips per lane.
    """
    circuit = _circuit_of(target)
    flagged = noise_points(circuit)
    if not flagged:
        circuit = insert_noise_points(circuit)
        flagged = noise_points(circuit)
    expected = _expected_qubits(circuit, inputs)

    from ..sim.outcomes import RandomOutcomes

    noise = NoiseConfig(rate=rate, seed=derive_seed(seed, "channel"))
    sim = BitplaneSimulator(
        circuit, batch=batch,
        outcomes=RandomOutcomes(derive_seed(seed, "outcomes")),
        tally=False, noise=noise,
    )
    for name, value in (inputs or {}).items():
        sim.set_register(name, value)
    sim.run_compiled()
    plane_ints = _plane_ints(sim)

    full = (1 << batch) - 1
    mismatch = 0
    for q, plane in enumerate(plane_ints):
        mismatch |= plane ^ (full if expected[q] else 0)
    mismatch &= full
    flagged_mismatch = 0
    for q in flagged:
        flagged_mismatch |= plane_ints[q] ^ (full if expected[q] else 0)
    flagged_mismatch &= full

    ok = np.array(
        [(mismatch >> lane) & 1 ^ 1 for lane in range(batch)], dtype=np.int64
    )
    kept = np.array(
        [(flagged_mismatch >> lane) & 1 ^ 1 for lane in range(batch)],
        dtype=np.int64,
    )
    conditional = (
        LaneTallyStats.from_counts(ok[kept == 1]) if int(kept.sum()) else None
    )
    return NoiseEstimate(
        rate=float(rate),
        points=len(flagged),
        lanes=batch,
        success=LaneTallyStats.from_counts(ok),
        postselect=LaneTallyStats.from_counts(kept),
        conditional_success=conditional,
        analytic=(1.0 - float(rate)) ** len(flagged),
    )


def _plane_ints(sim: BitplaneSimulator) -> List[int]:
    """Every qubit plane as one bigint (bit ``b`` = lane ``b``)."""
    return sim._rows_to_ints(sim.planes)


# --------------------------------------------------------------------------- #
# the sweep and its artifact


@dataclass(frozen=True)
class NoiseSweepResult:
    """All rows of one noise sweep plus the configuration that produced it."""

    config: Dict[str, Any]
    rows: List[Dict[str, Any]]
    elapsed: float


def noise_sweep(
    rates: Sequence[float],
    *,
    sizes: Sequence[int] = (8,),
    seed: int = 0,
    batch: int = 1024,
    family: str = "cdkpm",
) -> NoiseSweepResult:
    """Success/postselection rates for MBU vs coherent modadd, per rate.

    For each width ``n`` the modulus is the table-1 default ``2**n - 1``.
    The MBU row gains one fault point per garbage-qubit measurement
    (analytic success ``(1 - rate) ** g``); the coherent row has none, so
    its success pins at 1.0 — the measured cost of the paper's trade.
    """
    from ..modular import build_modadd

    start = time.perf_counter()
    rows: List[Dict[str, Any]] = []
    for n in sizes:
        p = (1 << n) - 1
        inputs = {"x": 3 % p, "y": 5 % p}
        for variant, mbu in (("mbu", True), ("coherent", False)):
            built = build_modadd(n, p, family=family, mbu=mbu)
            circuit = insert_noise_points(built.circuit)
            for rate in rates:
                est = estimate_success(
                    circuit,
                    rate,
                    batch=batch,
                    seed=derive_seed(seed, "noise", n, variant, rate),
                    inputs=inputs,
                )
                row: Dict[str, Any] = {
                    "row": variant,
                    "n": n,
                    "p": p,
                    "rate": est.rate,
                    "noise_points": est.points,
                    "lanes": est.lanes,
                    "success_rate": float(est.success.mean),
                    "success_ci95": est.success.ci95,
                    "analytic_success": est.analytic,
                    "postselect_rate": float(est.postselect.mean),
                    "postselect_ci95": est.postselect.ci95,
                }
                if est.conditional_success is not None:
                    row["conditional_success_rate"] = float(
                        est.conditional_success.mean
                    )
                rows.append(row)
    config = {
        "rates": [float(r) for r in rates],
        "sizes": [int(n) for n in sizes],
        "seed": int(seed),
        "batch": int(batch),
        "family": family,
    }
    return NoiseSweepResult(
        config=config, rows=rows, elapsed=time.perf_counter() - start
    )


def noise_artifact(result: NoiseSweepResult) -> Dict[str, Any]:
    """Canonical JSON-able snapshot (schema :data:`NOISE_SCHEMA_VERSION`)."""
    from .artifacts import _jsonify, _package_version

    return {
        "schema": NOISE_SCHEMA_VERSION,
        "package_version": _package_version(),
        "config": _jsonify(result.config),
        "rows": _jsonify(result.rows),
    }


def render_noise_markdown(artifact: Dict[str, Any]) -> str:
    """Human-readable companion table for the noise artifact."""
    config = artifact["config"]
    lines = [
        "# Noise injection — protocol success under faulty measurements",
        "",
        f"Noise artifact schema v{artifact['schema']}, package "
        f"v{artifact['package_version']}, seed {config['seed']}, "
        f"{config['batch']} lanes per point.",
        "",
        "Each fault point flips its qubit with the given rate after a",
        "measurement (MBU rows measure; coherent rows do not).  *success* is",
        "the fraction of lanes ending bit-identical to the noiseless run;",
        "*postselect* keeps lanes whose flagged qubits read clean;",
        "*cond. success* is success among kept lanes.  ± is a 95% CI.",
        "",
        "| row | n | rate | points | success | analytic | postselect | cond. success |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for row in artifact["rows"]:
        cond = row.get("conditional_success_rate")
        lines.append(
            "| {row} | {n} | {rate:g} | {points} | {s:.4f} ± {sc:.4f} "
            "| {a:.4f} | {p:.4f} ± {pc:.4f} | {c} |".format(
                row=row["row"], n=row["n"], rate=row["rate"],
                points=row["noise_points"], s=row["success_rate"],
                sc=row["success_ci95"], a=row["analytic_success"],
                p=row["postselect_rate"], pc=row["postselect_ci95"],
                c="—" if cond is None else f"{cond:.4f}",
            )
        )
    lines.append("")
    return "\n".join(lines)


def write_noise_artifact(
    artifact: Dict[str, Any], outdir: Union[str, Path], stem: str = "noise"
) -> Tuple[Path, Path]:
    """Write ``<stem>.json`` and ``<stem>.md`` under ``outdir``."""
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    json_path = outdir / f"{stem}.json"
    md_path = outdir / f"{stem}.md"
    json_path.write_text(json.dumps(artifact, indent=2) + "\n")
    md_path.write_text(render_noise_markdown(artifact) + "\n")
    return json_path, md_path
