"""Quantum subtraction — def 2.21 and thm 2.22.

Two constructions:

* :func:`emit_sub_sandwich` — thm 2.22, circuit (8): complement the target
  register, add, complement again.  ``complement(~y + x) = y - x`` modulo
  ``2**m``.  Works with *any* adder, including the measurement-based Gidney
  adder (which has no circuit adjoint — remark 2.23).  Costs the adder plus
  ``2m`` X gates.
* :func:`emit_sub_via_adjoint` — runs the adder's adjoint.  Only valid for
  measurement-free adders (VBE, CDKPM, Draper); raises otherwise.

Both map ``|x>_n |y>_{n+1} -> |x>_n |y - x mod 2**(n+1)>`` whose top bit is
the sign, i.e. ``[x > y]`` (prop A.3).
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..circuits.circuit import Circuit

__all__ = ["emit_sub_sandwich", "emit_sub_via_adjoint"]


def emit_sub_sandwich(
    circ: Circuit, y_full: Sequence[int], emit_add_into: Callable[[], None]
) -> None:
    """y <- y - x via the 1's-complement sandwich (thm 2.22, circuit 8).

    ``emit_add_into`` must emit ``y += x`` on the same ``y_full`` register.
    """
    for q in y_full:
        circ.x(q)
    emit_add_into()
    for q in y_full:
        circ.x(q)


def emit_sub_via_adjoint(circ: Circuit, emit_add: Callable[[], None]) -> None:
    """y <- y - x by running the captured adder backwards.

    Raises ValueError if the adder contains measurements (remark 2.23).
    """
    with circ.capture() as ops:
        emit_add()
    circ.extend(circ.adjoint_ops(ops))
