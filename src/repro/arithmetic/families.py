"""Adder-family kits: a uniform interface over VBE / CDKPM / Gidney.

The modular-arithmetic builders (section 3) are parametric in which plain
adder and which comparator they use — that is exactly how the paper derives
props 3.4/3.5 and thm 3.6 from the shared architecture of prop 3.2.  An
:class:`AdderKit` packages a family's emitters together with its ancilla
requirements so those builders can mix and match (e.g. the Gidney+CDKPM
hybrid of thm 3.6).

The Draper/QFT family has a structurally different interface (Fourier-basis
registers, block-level costs) and is handled by dedicated builders in
``repro.modular.beauregard``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence

from ..circuits.circuit import Circuit
from .cdkpm import (
    cdkpm_add_ancillas,
    cdkpm_compare_ancillas,
    emit_cdkpm_add,
    emit_cdkpm_add_controlled,
    emit_cdkpm_compare_gt,
)
from .gidney import (
    emit_gidney_add,
    emit_gidney_add_controlled,
    emit_gidney_compare_gt,
    gidney_add_ancillas,
    gidney_compare_ancillas,
    gidney_ctrl_add_ancillas,
)
from .subtract import emit_sub_sandwich, emit_sub_via_adjoint
from .vbe import (
    emit_vbe_add,
    emit_vbe_compare_gt,
    vbe_add_ancillas,
    vbe_compare_ancillas,
)

__all__ = ["AdderKit", "KITS", "CDKPM_KIT", "GIDNEY_KIT", "VBE_KIT"]


@dataclass(frozen=True)
class AdderKit:
    """Uniform handle on one ripple-carry adder family.

    Emitter signatures (all registers are qubit-index sequences):

    * ``emit_add(circ, x, y_full, anc)`` — ``y += x`` mod ``2**len(y)``;
    * ``emit_sub(circ, x, y_full, anc)`` — ``y -= x`` mod ``2**len(y)``;
    * ``emit_compare_gt(circ, a, b, t, anc, b_extra=..., ctrl=...)`` —
      ``t ^= [a > b]`` (with remark-2.32 padding / prop-2.30 control);
    * ``emit_add_ctrl(circ, ctrl, x, y_full, anc)`` — ``y += ctrl * x``
      (None when the family has no native controlled adder).
    """

    name: str
    add_ancillas: Callable[[int], int]
    emit_add: Callable[..., None]
    emit_sub: Callable[..., None]
    compare_ancillas: Callable[[int], int]
    emit_compare_gt: Callable[..., None]
    ctrl_add_ancillas: Callable[[int], int] | None = None
    emit_add_ctrl: Callable[..., None] | None = None
    measurement_based: bool = False


def _cdkpm_sub(circ: Circuit, x, y_full, anc) -> None:
    emit_sub_via_adjoint(circ, lambda: emit_cdkpm_add(circ, x, y_full, anc[0]))


def _vbe_sub(circ: Circuit, x, y_full, anc) -> None:
    emit_sub_via_adjoint(circ, lambda: emit_vbe_add(circ, x, y_full, anc))


def _gidney_sub(circ: Circuit, x, y_full, anc) -> None:
    # The Gidney adder contains measurements, so it has no adjoint
    # (remark 2.23); use the complement sandwich of thm 2.22 instead.
    emit_sub_sandwich(circ, y_full, lambda: emit_gidney_add(circ, x, y_full, anc))


CDKPM_KIT = AdderKit(
    name="cdkpm",
    add_ancillas=cdkpm_add_ancillas,
    emit_add=lambda circ, x, y, anc: emit_cdkpm_add(circ, x, y, anc[0]),
    emit_sub=_cdkpm_sub,
    compare_ancillas=cdkpm_compare_ancillas,
    emit_compare_gt=lambda circ, a, b, t, anc, b_extra=None, ctrl=None: (
        emit_cdkpm_compare_gt(circ, a, b, t, anc[0], b_extra=b_extra, ctrl=ctrl)
    ),
    ctrl_add_ancillas=lambda n: 1,
    emit_add_ctrl=lambda circ, ctrl, x, y, anc: (
        emit_cdkpm_add_controlled(circ, ctrl, x, y, anc[0])
    ),
)

GIDNEY_KIT = AdderKit(
    name="gidney",
    add_ancillas=gidney_add_ancillas,
    emit_add=lambda circ, x, y, anc: emit_gidney_add(circ, x, y, anc),
    emit_sub=_gidney_sub,
    compare_ancillas=gidney_compare_ancillas,
    emit_compare_gt=lambda circ, a, b, t, anc, b_extra=None, ctrl=None: (
        emit_gidney_compare_gt(circ, a, b, t, anc, b_extra=b_extra, ctrl=ctrl)
    ),
    ctrl_add_ancillas=gidney_ctrl_add_ancillas,
    emit_add_ctrl=lambda circ, ctrl, x, y, anc: (
        emit_gidney_add_controlled(circ, ctrl, x, y, anc[:-1], anc[-1])
    ),
    measurement_based=True,
)

VBE_KIT = AdderKit(
    name="vbe",
    add_ancillas=vbe_add_ancillas,
    emit_add=lambda circ, x, y, anc: emit_vbe_add(circ, x, y, anc),
    emit_sub=_vbe_sub,
    compare_ancillas=vbe_compare_ancillas,
    emit_compare_gt=lambda circ, a, b, t, anc, b_extra=None, ctrl=None: (
        emit_vbe_compare_gt(circ, a, b, t, anc, b_extra=b_extra, ctrl=ctrl)
    ),
)

KITS: Dict[str, AdderKit] = {
    "cdkpm": CDKPM_KIT,
    "gidney": GIDNEY_KIT,
    "vbe": VBE_KIT,
}
