"""Generic comparators — props 2.25 / 2.34, thm 2.35/2.38, remark 2.39.

The fast, family-specific half-subtractor comparators live in
``repro.arithmetic.cdkpm`` / ``gidney`` / ``vbe`` / ``draper``; this module
provides the compositions that work with any adder or comparator:

* :func:`emit_compare_gt_via_sub_add` — prop 2.25: subtract, copy the sign,
  add back (one full adder + one full subtractor);
* :func:`emit_compare_lt_const` — prop 2.34: load the constant with X
  gates, compare quantum-quantum, unload;
* :func:`emit_compare_lt_const_controlled` — thm 2.38: load ``ctrl * a``
  with CNOTs instead;
* :func:`emit_compare_le` — remark 2.39: postcompose an X on the target to
  flip the comparison.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..circuits.circuit import Circuit
from .constant import emit_load_constant, emit_load_constant_controlled

__all__ = [
    "emit_compare_gt_via_sub_add",
    "emit_compare_lt_const",
    "emit_compare_lt_const_controlled",
    "emit_compare_le",
]

CompareEmit = Callable[[Sequence[int], Sequence[int], int], None]


def emit_compare_gt_via_sub_add(
    circ: Circuit,
    y_full: Sequence[int],
    t: int,
    emit_sub: Callable[[], None],
    emit_add: Callable[[], None],
) -> None:
    """Prop 2.25: t ^= [x > y].

    ``emit_sub`` / ``emit_add`` must emit ``y -= x`` / ``y += x`` on the
    (m+1)-qubit ``y_full`` whose top qubit holds the sign after subtraction.
    """
    emit_sub()
    circ.cx(y_full[-1], t)
    emit_add()


def emit_compare_lt_const(
    circ: Circuit,
    x: Sequence[int],
    a: int,
    t: int,
    scratch: Sequence[int],
    emit_compare_gt: CompareEmit,
) -> None:
    """Prop 2.34: t ^= [x < a] for classical ``a``; 2|a| extra X gates.

    ``emit_compare_gt(a_reg, b_reg, t)`` is any quantum-quantum comparator;
    it is invoked as ``[loaded_a > x]`` which equals ``[x < a]``.
    """
    emit_load_constant(circ, scratch, a)
    emit_compare_gt(scratch, x, t)
    emit_load_constant(circ, scratch, a)


def emit_compare_lt_const_controlled(
    circ: Circuit,
    ctrl: int,
    x: Sequence[int],
    a: int,
    t: int,
    scratch: Sequence[int],
    emit_compare_gt: CompareEmit,
) -> None:
    """Thm 2.38: t ^= [x < ctrl * a]; 2|a| extra CNOTs.

    With ``ctrl = 0`` the scratch holds 0 and ``[0 > x] = 0``: a no-op, as
    def 2.37 requires.
    """
    emit_load_constant_controlled(circ, ctrl, scratch, a)
    emit_compare_gt(scratch, x, t)
    emit_load_constant_controlled(circ, ctrl, scratch, a)


def emit_compare_le(
    circ: Circuit, t: int, emit_compare_gt: Callable[[], None]
) -> None:
    """Remark 2.39: t ^= [x <= y] as NOT [x > y]."""
    emit_compare_gt()
    circ.x(t)
