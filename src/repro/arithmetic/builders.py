"""Top-level circuit constructors for every section-2 operation.

Each ``build_*`` function allocates the registers, emits the circuit, and
returns a :class:`Built` handle that records which registers are ancillas —
so tests and the Table 2-6 generators can measure gate counts *and* ancilla
counts straight off a concrete circuit.

``family`` selects the plain-adder family: ``'vbe'``, ``'cdkpm'``,
``'gidney'`` (ripple-carry kits) or ``'draper'`` (QFT-based).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from ..circuits.circuit import Circuit, Register
from ..circuits.resources import GateCounts, count_blocks, count_gates
from . import draper
from .compare import (
    emit_compare_lt_const,
    emit_compare_lt_const_controlled,
)
from .constant import (
    emit_add_const,
    emit_add_const_controlled,
    emit_sub_const,
    emit_sub_const_controlled,
)
from .controlled import emit_add_controlled_via_load
from .families import KITS, AdderKit
from .subtract import emit_sub_sandwich

__all__ = [
    "Built",
    "build_adder",
    "build_controlled_adder",
    "build_subtractor",
    "build_add_const",
    "build_controlled_add_const",
    "build_sub_const",
    "build_comparator",
    "build_controlled_comparator",
    "build_compare_lt_const",
    "build_controlled_compare_lt_const",
    "FAMILIES",
]

FAMILIES = ("vbe", "cdkpm", "gidney", "draper")


@dataclass
class Built:
    """A constructed circuit plus its register roles and metadata."""

    circuit: Circuit
    n: int
    ancilla_names: Tuple[str, ...]
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def registers(self) -> Dict[str, Register]:
        return self.circuit.registers

    @property
    def ancilla_count(self) -> int:
        return sum(len(self.registers[name]) for name in self.ancilla_names)

    @property
    def logical_qubits(self) -> int:
        return self.circuit.num_qubits

    def counts(self, mode: str = "expected") -> GateCounts:
        return count_gates(self.circuit, mode=mode)

    def blocks(self, mode: str = "expected"):
        return count_blocks(self.circuit, mode=mode)


def _kit(family: str) -> AdderKit:
    if family not in KITS:
        raise ValueError(f"unknown ripple-carry family {family!r}; options: {sorted(KITS)}")
    return KITS[family]


# --------------------------------------------------------------------------- #
# plain addition (def 2.1; props 2.2-2.5, cor 2.7)


def build_adder(n: int, family: str = "cdkpm") -> Built:
    """|x>_n |y>_{n+1} -> |x>_n |x+y>_{n+1}  (Table 2)."""
    circ = Circuit(f"add[{family},n={n}]")
    x = circ.add_register("x", n)
    y = circ.add_register("y", n + 1)
    if family == "draper":
        draper.emit_draper_add(circ, x.qubits, y.qubits)
        return Built(circ, n, (), {"family": family, "op": "add"})
    kit = _kit(family)
    anc = circ.add_register("anc", kit.add_ancillas(n))
    kit.emit_add(circ, x.qubits, y.qubits, anc.qubits)
    return Built(circ, n, ("anc",), {"family": family, "op": "add"})


def build_controlled_adder(n: int, family: str = "cdkpm", method: str = "native") -> Built:
    """|c>|x>_n |y>_{n+1} -> |c>|x>|y + c*x>  (def 2.8, Table 3).

    ``method='native'`` uses the family's dedicated construction (thm 2.12
    for CDKPM, prop 2.11 for Gidney, thm 2.14 for Draper; VBE falls back to
    the generic recipe).  ``method='load_and'`` is cor 2.10 and
    ``method='load_toffoli'`` is thm 2.9, for any family.
    """
    circ = Circuit(f"cadd[{family},{method},n={n}]")
    ctrl = circ.add_register("ctrl", 1)
    x = circ.add_register("x", n)
    y = circ.add_register("y", n + 1)
    meta = {"family": family, "op": "cadd", "method": method}

    if family == "draper":
        anc = circ.add_register("anc", 1)
        draper.emit_draper_add_controlled(circ, ctrl[0], x.qubits, y.qubits, anc[0])
        return Built(circ, n, ("anc",), meta)

    kit = _kit(family)
    if method == "native" and kit.emit_add_ctrl is not None:
        anc = circ.add_register("anc", kit.ctrl_add_ancillas(n))
        kit.emit_add_ctrl(circ, ctrl[0], x.qubits, y.qubits, anc.qubits)
        return Built(circ, n, ("anc",), meta)

    if method == "native":
        method = "load_and"  # VBE: no dedicated construction
        meta["method"] = method
    if method not in ("load_and", "load_toffoli"):
        raise ValueError(f"unknown controlled-adder method {method!r}")
    scratch = circ.add_register("scratch", n)
    anc = circ.add_register("anc", kit.add_ancillas(n))
    emit_add_controlled_via_load(
        circ,
        ctrl[0],
        x.qubits,
        y.qubits,
        scratch.qubits,
        lambda xs, ys: kit.emit_add(circ, xs, ys, anc.qubits),
        use_and=(method == "load_and"),
    )
    return Built(circ, n, ("scratch", "anc"), meta)


# --------------------------------------------------------------------------- #
# subtraction (def 2.21, thm 2.22)


def build_subtractor(n: int, family: str = "cdkpm", method: str = "default") -> Built:
    """|x>_n |y>_{n+1} -> |x>_n |y - x mod 2^{n+1}>  (def 2.21).

    ``method='default'`` uses the adder adjoint where one exists and the
    complement sandwich for the measurement-based Gidney adder;
    ``method='sandwich'`` forces thm 2.22's circuit (8) for any family.
    """
    circ = Circuit(f"sub[{family},{method},n={n}]")
    x = circ.add_register("x", n)
    y = circ.add_register("y", n + 1)
    if family == "draper":
        draper.emit_qft(circ, y.qubits)
        draper.emit_phi_sub(circ, x.qubits, y.qubits)
        draper.emit_iqft(circ, y.qubits)
        return Built(circ, n, (), {"family": family, "op": "sub"})
    kit = _kit(family)
    anc = circ.add_register("anc", kit.add_ancillas(n))
    if method == "sandwich":
        emit_sub_sandwich(
            circ, y.qubits, lambda: kit.emit_add(circ, x.qubits, y.qubits, anc.qubits)
        )
    elif method == "default":
        kit.emit_sub(circ, x.qubits, y.qubits, anc.qubits)
    else:
        raise ValueError(f"unknown subtractor method {method!r}")
    return Built(circ, n, ("anc",), {"family": family, "op": "sub", "method": method})


# --------------------------------------------------------------------------- #
# constant addition / subtraction (defs 2.15 / 2.18; props 2.16, 2.17, 2.19, 2.20)


def build_add_const(n: int, a: int, family: str = "cdkpm") -> Built:
    """|x>_{n+1} -> |x + a>_{n+1} with the top qubit 0 on input (def 2.15)."""
    circ = Circuit(f"addc[{family},n={n},a={a}]")
    x = circ.add_register("x", n + 1)
    if family == "draper":
        draper.emit_qft(circ, x.qubits)
        draper.emit_phi_add_const(circ, x.qubits, a)
        draper.emit_iqft(circ, x.qubits)
        return Built(circ, n, (), {"family": family, "op": "addc", "a": a})
    kit = _kit(family)
    scratch = circ.add_register("scratch", n)
    anc = circ.add_register("anc", kit.add_ancillas(n))
    emit_add_const(
        circ, x.qubits, a, scratch.qubits,
        lambda xs, ys: kit.emit_add(circ, xs, ys, anc.qubits),
    )
    return Built(circ, n, ("scratch", "anc"), {"family": family, "op": "addc", "a": a})


def build_controlled_add_const(n: int, a: int, family: str = "cdkpm") -> Built:
    """|c>|x>_{n+1} -> |c>|x + c*a>_{n+1}  (def 2.18)."""
    circ = Circuit(f"caddc[{family},n={n},a={a}]")
    ctrl = circ.add_register("ctrl", 1)
    x = circ.add_register("x", n + 1)
    if family == "draper":
        draper.emit_qft(circ, x.qubits)
        draper.emit_cphi_add_const(circ, ctrl[0], x.qubits, a)
        draper.emit_iqft(circ, x.qubits)
        return Built(circ, n, (), {"family": family, "op": "caddc", "a": a})
    kit = _kit(family)
    scratch = circ.add_register("scratch", n)
    anc = circ.add_register("anc", kit.add_ancillas(n))
    emit_add_const_controlled(
        circ, ctrl[0], x.qubits, a, scratch.qubits,
        lambda xs, ys: kit.emit_add(circ, xs, ys, anc.qubits),
    )
    return Built(circ, n, ("scratch", "anc"), {"family": family, "op": "caddc", "a": a})


def build_sub_const(n: int, a: int, family: str = "cdkpm") -> Built:
    """|x>_{n+1} -> |x - a mod 2^{n+1}>_{n+1}."""
    circ = Circuit(f"subc[{family},n={n},a={a}]")
    x = circ.add_register("x", n + 1)
    if family == "draper":
        draper.emit_qft(circ, x.qubits)
        draper.emit_phi_sub_const(circ, x.qubits, a)
        draper.emit_iqft(circ, x.qubits)
        return Built(circ, n, (), {"family": family, "op": "subc", "a": a})
    kit = _kit(family)
    scratch = circ.add_register("scratch", n)
    anc = circ.add_register("anc", kit.add_ancillas(n))
    emit_sub_const(
        circ, x.qubits, a, scratch.qubits,
        lambda xs, ys: kit.emit_add(circ, xs, ys, anc.qubits),
    )
    return Built(circ, n, ("scratch", "anc"), {"family": family, "op": "subc", "a": a})


# --------------------------------------------------------------------------- #
# comparison (defs 2.24 / 2.29 / 2.33 / 2.37)


def build_comparator(n: int, family: str = "cdkpm") -> Built:
    """|x>|y>|t> -> |x>|y>|t ^ [x > y]>  (def 2.24, Table 6)."""
    circ = Circuit(f"cmp[{family},n={n}]")
    x = circ.add_register("x", n)
    y = circ.add_register("y", n)
    t = circ.add_register("t", 1)
    if family == "draper":
        top = circ.add_register("top", 1)
        draper.emit_draper_compare_gt(circ, x.qubits, list(y.qubits) + [top[0]], t[0])
        return Built(circ, n, ("top",), {"family": family, "op": "cmp"})
    kit = _kit(family)
    anc = circ.add_register("anc", kit.compare_ancillas(n))
    kit.emit_compare_gt(circ, x.qubits, y.qubits, t[0], anc.qubits)
    return Built(circ, n, ("anc",), {"family": family, "op": "cmp"})


def build_controlled_comparator(n: int, family: str = "cdkpm") -> Built:
    """|c>|x>|y>|t> -> ... |t ^ c*[x > y]>  (def 2.29, props 2.30/2.31)."""
    circ = Circuit(f"ccmp[{family},n={n}]")
    ctrl = circ.add_register("ctrl", 1)
    x = circ.add_register("x", n)
    y = circ.add_register("y", n)
    t = circ.add_register("t", 1)
    if family == "draper":
        top = circ.add_register("top", 1)
        draper.emit_draper_compare_gt(
            circ, x.qubits, list(y.qubits) + [top[0]], t[0], ctrl=ctrl[0]
        )
        return Built(circ, n, ("top",), {"family": family, "op": "ccmp"})
    kit = _kit(family)
    anc = circ.add_register("anc", kit.compare_ancillas(n))
    kit.emit_compare_gt(circ, x.qubits, y.qubits, t[0], anc.qubits, ctrl=ctrl[0])
    return Built(circ, n, ("anc",), {"family": family, "op": "ccmp"})


def build_compare_lt_const(n: int, a: int, family: str = "cdkpm") -> Built:
    """|x>|t> -> |x>|t ^ [x < a]>  (def 2.33, prop 2.34 / prop 2.36)."""
    circ = Circuit(f"cmpc[{family},n={n},a={a}]")
    x = circ.add_register("x", n)
    t = circ.add_register("t", 1)
    if family == "draper":
        top = circ.add_register("top", 1)
        draper.emit_draper_compare_lt_const(circ, x.qubits, a, t[0], top[0])
        return Built(circ, n, ("top",), {"family": family, "op": "cmpc", "a": a})
    kit = _kit(family)
    scratch = circ.add_register("scratch", n)
    anc = circ.add_register("anc", kit.compare_ancillas(n))
    emit_compare_lt_const(
        circ, x.qubits, a, t[0], scratch.qubits,
        lambda aa, bb, tt: kit.emit_compare_gt(circ, aa, bb, tt, anc.qubits),
    )
    return Built(circ, n, ("scratch", "anc"), {"family": family, "op": "cmpc", "a": a})


def build_controlled_compare_lt_const(n: int, a: int, family: str = "cdkpm") -> Built:
    """|c>|x>|t> -> |c>|x>|t ^ [x < c*a]>  (def 2.37, thm 2.38)."""
    circ = Circuit(f"ccmpc[{family},n={n},a={a}]")
    ctrl = circ.add_register("ctrl", 1)
    x = circ.add_register("x", n)
    t = circ.add_register("t", 1)
    if family == "draper":
        # [x < c*a] == c*[x < a] (both are 0 when c=0), so controlling the
        # sign copy of prop 2.36 implements def 2.37 with one extra Toffoli.
        top = circ.add_register("top", 1)
        draper.emit_draper_compare_lt_const(circ, x.qubits, a, t[0], top[0], ctrl=ctrl[0])
        return Built(circ, n, ("top",), {"family": family, "op": "ccmpc", "a": a})
    kit = _kit(family)
    scratch = circ.add_register("scratch", n)
    anc = circ.add_register("anc", kit.compare_ancillas(n))
    emit_compare_lt_const_controlled(
        circ, ctrl[0], x.qubits, a, t[0], scratch.qubits,
        lambda aa, bb, tt: kit.emit_compare_gt(circ, aa, bb, tt, anc.qubits),
    )
    return Built(circ, n, ("scratch", "anc"), {"family": family, "op": "ccmpc", "a": a})
