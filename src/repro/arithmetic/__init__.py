"""Section-2 arithmetic circuits: plain/controlled/constant adders,
subtractors and comparators for the VBE, CDKPM, Gidney and Draper families."""

from .builders import (
    FAMILIES,
    Built,
    build_add_const,
    build_adder,
    build_comparator,
    build_compare_lt_const,
    build_controlled_add_const,
    build_controlled_adder,
    build_controlled_comparator,
    build_controlled_compare_lt_const,
    build_sub_const,
    build_subtractor,
)
from .families import CDKPM_KIT, GIDNEY_KIT, KITS, VBE_KIT, AdderKit

__all__ = [
    "FAMILIES",
    "Built",
    "AdderKit",
    "KITS",
    "CDKPM_KIT",
    "GIDNEY_KIT",
    "VBE_KIT",
    "build_adder",
    "build_controlled_adder",
    "build_subtractor",
    "build_add_const",
    "build_controlled_add_const",
    "build_sub_const",
    "build_comparator",
    "build_controlled_comparator",
    "build_compare_lt_const",
    "build_controlled_compare_lt_const",
]
