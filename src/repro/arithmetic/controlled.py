"""Generic controlled addition — thm 2.9 and cor 2.10.

Any plain adder becomes controlled by loading ``ctrl * x`` into a scratch
register and adding the scratch instead of ``x``:

* thm 2.9 loads *and* unloads with Toffolis: ``r + 2n`` Toffolis;
* cor 2.10 loads with temporary logical-ANDs and uncomputes them by
  measurement: ``r + n`` Toffolis.

Family-specific controlled adders that beat the generic recipe live in
their modules: :func:`repro.arithmetic.cdkpm.emit_cdkpm_add_controlled`
(thm 2.12, 1 ancilla) and
:func:`repro.arithmetic.gidney.emit_gidney_add_controlled` (prop 2.11).
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..circuits.circuit import Circuit
from .gidney import emit_and, emit_and_uncompute

__all__ = ["emit_add_controlled_via_load"]


def emit_add_controlled_via_load(
    circ: Circuit,
    ctrl: int,
    x: Sequence[int],
    y_full: Sequence[int],
    scratch: Sequence[int],
    emit_add: Callable[[Sequence[int], Sequence[int]], None],
    use_and: bool = True,
) -> None:
    """y += ctrl * x with ``n`` scratch qubits (clean in, clean out).

    ``use_and=True`` is cor 2.10 (measurement-based unload, +n Toffoli);
    ``use_and=False`` is thm 2.9 (Toffoli unload, +2n Toffoli).
    """
    n = len(x)
    if len(scratch) != n:
        raise ValueError("controlled addition needs n scratch qubits")
    for i in range(n):
        emit_and(circ, ctrl, x[i], scratch[i])
    emit_add(scratch, y_full)
    if use_and:
        for i in range(n):
            emit_and_uncompute(circ, ctrl, x[i], scratch[i])
    else:
        for i in range(n):
            circ.ccx(ctrl, x[i], scratch[i])
