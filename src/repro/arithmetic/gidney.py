"""Gidney's temporary-logical-AND adder (Gidney 2018) — prop 2.4 — plus its
controlled variant (prop 2.11) and half-subtractor comparators
(props 2.28 / 2.31).

The compute half of the temporary logical-AND is counted as one Toffoli
(fig 10); the uncompute half (fig 11) is *measurement based*: an X-basis
measurement followed by a classically controlled CZ (probability 1/2) and a
classically controlled X that returns the ancilla to |0>.  This is the
original special case of the paper's MBU lemma.

Exact resources (``include_c0=True``, matching the paper's fig 13 counting):

* :func:`emit_gidney_add` — ``n`` Toffoli, ``6n - 1`` CNOT, ``n`` ancillas,
  plus per AND-uncompute: 1 H + 1 measurement + (1/2 CZ + 1/2 X) expected.
  Matches Table 2 exactly.
* :func:`emit_gidney_add_controlled` — ``2n + 1`` Toffoli, ``n + 1``
  ancillas (paper: ``2n``, ``n + 1``).
* :func:`emit_gidney_compare_gt` — ``m`` Toffoli, ``6m + 1`` CNOT, ``m + 1``
  ancillas (Table 6 lists ``n`` ancillas with c_0 elided; pass
  ``include_c0=False`` for that variant).
"""

from __future__ import annotations

from typing import Sequence

from ..circuits.circuit import Circuit
from ..circuits.markers import UNCOMPUTE_AND, reference_mode, uncompute_label

__all__ = [
    "emit_and",
    "emit_and_uncompute",
    "emit_gidney_add",
    "emit_gidney_add_controlled",
    "emit_gidney_compare_gt",
    "gidney_add_ancillas",
    "gidney_ctrl_add_ancillas",
    "gidney_compare_ancillas",
]


def emit_and(circ: Circuit, a: int, b: int, target: int) -> None:
    """Temporary logical-AND compute (fig 10): target (clean) <- a AND b.

    Counted as one Toffoli, as in the paper.
    """
    circ.ccx(a, b, target)


def emit_and_uncompute(circ: Circuit, a: int, b: int, target: int) -> None:
    """Measurement-based AND uncompute (fig 11).

    Measures the ancilla in the X basis; on outcome 1 applies CZ(a, b) to
    cancel the kicked-back phase and X to reset the ancilla.  Zero Toffolis.

    Under :func:`~repro.circuits.markers.reference_emission` this emits the
    *coherent* uncompute instead — the adjoint Toffoli, bracketed by
    ``uncompute-and`` markers — which the ``insert_mbu`` transform pass
    rewrites back into this very measurement pattern.
    """
    if reference_mode():
        label = uncompute_label(UNCOMPUTE_AND, target)
        circ.begin(label)
        circ.ccx(a, b, target)
        circ.end(label)
        return
    bit = circ.new_bit("and")
    circ.measure(target, bit, basis="x")
    with circ.capture() as body:
        circ.cz(a, b)
        circ.x(target)
    circ.cond(bit, body)


def gidney_add_ancillas(n: int, include_c0: bool = True) -> int:
    return n if include_c0 else n - 1


def emit_gidney_add(
    circ: Circuit,
    x: Sequence[int],
    y: Sequence[int],
    carries: Sequence[int],
    include_c0: bool = True,
) -> None:
    """Prop 2.4 (figs 12-13): |x>_n |y>_{n+1} -> |x>_n |x + y>_{n+1}.

    ``carries`` holds c_0..c_{n-1} (or c_1..c_{n-1} when ``include_c0`` is
    False — fig 13's remark that C_0 never changes and can be elided).  The
    top carry c_n is computed directly into ``y[n]``.
    """
    n = len(x)
    if len(y) != n + 1:
        raise ValueError("y register must have n+1 qubits (one overflow qubit)")
    expected = gidney_add_ancillas(n, include_c0)
    if len(carries) != expected:
        raise ValueError(f"Gidney adder needs {expected} carry ancillas")
    chain: list[int | None] = ([*carries] if include_c0 else [None, *carries]) + [y[n]]

    for i in range(n):  # G-MAJ blocks
        c_i, c_next = chain[i], chain[i + 1]
        if c_i is not None:
            circ.cx(c_i, x[i])
            circ.cx(c_i, y[i])
        emit_and(circ, x[i], y[i], c_next)
        if c_i is not None:
            circ.cx(c_i, c_next)

    # the two extra CNOTs: restore x_{n-1}, write s_{n-1}
    if chain[n - 1] is not None:
        circ.cx(chain[n - 1], x[n - 1])
    circ.cx(x[n - 1], y[n - 1])

    for i in range(n - 2, -1, -1):  # G-UMA blocks
        c_i, c_next = chain[i], chain[i + 1]
        if c_i is not None:
            circ.cx(c_i, c_next)
        emit_and_uncompute(circ, x[i], y[i], c_next)
        if c_i is not None:
            circ.cx(c_i, x[i])
        circ.cx(x[i], y[i])


def gidney_ctrl_add_ancillas(n: int) -> int:
    return n + 1


def emit_gidney_add_controlled(
    circ: Circuit,
    ctrl: int,
    x: Sequence[int],
    y: Sequence[int],
    carries: Sequence[int],
    top: int,
) -> None:
    """Prop 2.11 (fig 15): controlled addition, one Toffoli per UMA block.

    ``carries`` = c_0..c_{n-1} (n ancillas); ``top`` is one extra ancilla
    that holds the carry-out c_n so its copy into ``y[n]`` can be controlled.
    ``2n + 1`` Toffolis.
    """
    n = len(x)
    if len(y) != n + 1:
        raise ValueError("y register must have n+1 qubits (one overflow qubit)")
    if len(carries) != n:
        raise ValueError("controlled Gidney adder needs n carry ancillas")
    chain = list(carries) + [top]

    for i in range(n):  # G-MAJ blocks, top AND lands in the extra ancilla
        c_i, c_next = chain[i], chain[i + 1]
        circ.cx(c_i, x[i])
        circ.cx(c_i, y[i])
        emit_and(circ, x[i], y[i], c_next)
        circ.cx(c_i, c_next)

    circ.ccx(ctrl, top, y[n])  # controlled overflow write

    for i in range(n - 1, -1, -1):  # controlled G-UMA blocks
        c_i, c_next = chain[i], chain[i + 1]
        circ.cx(c_i, c_next)
        emit_and_uncompute(circ, x[i], y[i], c_next)
        circ.cx(c_i, y[i])  # y_i back to its input value
        circ.ccx(ctrl, x[i], y[i])  # y_i ^= ctrl * (x_i ^ c_i); x slot = x^c
        circ.cx(c_i, x[i])  # restore x_i


def gidney_compare_ancillas(m: int, include_c0: bool = True) -> int:
    return m + 1 if include_c0 else m


def emit_gidney_compare_gt(
    circ: Circuit,
    a: Sequence[int],
    b: Sequence[int],
    t: int,
    carries: Sequence[int],
    b_extra: int | None = None,
    ctrl: int | None = None,
    include_c0: bool = True,
) -> None:
    """Props 2.28 / 2.31: t ^= [a > b] with half a Gidney subtractor.

    Complements ``b``, computes the carry chain of ``a + ~b`` with temporary
    logical-ANDs (the carry-out is 1 iff ``a > b``), copies, and uncomputes
    the chain with measurements — so the uncompute costs zero Toffolis.
    ``carries`` holds c_0..c_m (or c_1..c_m when ``include_c0`` is False).
    """
    m = len(a)
    if len(b) != m:
        raise ValueError("comparator operands must have equal width")
    if b_extra is not None and ctrl is not None:
        raise ValueError("b_extra and ctrl cannot be combined")
    expected = gidney_compare_ancillas(m, include_c0)
    if len(carries) != expected:
        raise ValueError(f"Gidney comparator needs {expected} carry ancillas")
    chain: list[int | None] = [*carries] if include_c0 else [None, *carries]

    for q in b:
        circ.x(q)
    for i in range(m):
        c_i, c_next = chain[i], chain[i + 1]
        if c_i is not None:
            circ.cx(c_i, a[i])
            circ.cx(c_i, b[i])
        emit_and(circ, a[i], b[i], c_next)
        if c_i is not None:
            circ.cx(c_i, c_next)

    carry_out = chain[m]
    if ctrl is not None:
        circ.ccx(ctrl, carry_out, t)
    elif b_extra is None:
        circ.cx(carry_out, t)
    else:
        circ.x(b_extra)
        circ.ccx(b_extra, carry_out, t)
        circ.x(b_extra)

    for i in range(m - 1, -1, -1):
        c_i, c_next = chain[i], chain[i + 1]
        if c_i is not None:
            circ.cx(c_i, c_next)
        emit_and_uncompute(circ, a[i], b[i], c_next)
        if c_i is not None:
            circ.cx(c_i, b[i])
            circ.cx(c_i, a[i])
    for q in b:
        circ.x(q)
