"""Addition and subtraction by classical constants — props 2.16 / 2.19.

The generic recipe loads the constant into a scratch register with ``|a|``
X gates (or ``|a|`` CNOTs from the control for the controlled variant,
prop 2.19 — note the control only guards the *load*, never the adder:
adding zero is the identity), runs any plain adder, and unloads.

Constant subtraction composes the load trick with the complement sandwich
of thm 2.22; the sandwich commutes with the control for free because
``~(~y + 0) = y``.

Draper-based constant addition (prop 2.17, zero ancillas) lives in
``repro.arithmetic.draper.emit_phi_add_const``.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..circuits.circuit import Circuit
from ..boolarith import hamming_weight

__all__ = [
    "emit_load_constant",
    "emit_load_constant_controlled",
    "emit_add_const",
    "emit_add_const_controlled",
    "emit_sub_const",
    "emit_sub_const_controlled",
]


def emit_load_constant(circ: Circuit, reg: Sequence[int], a: int) -> None:
    """reg (clean) <- a, using |a| X gates.  Self-inverse."""
    if a < 0 or a >= (1 << len(reg)):
        raise ValueError(f"constant {a} does not fit in {len(reg)} qubits")
    for i, q in enumerate(reg):
        if (a >> i) & 1:
            circ.x(q)


def emit_load_constant_controlled(
    circ: Circuit, ctrl: int, reg: Sequence[int], a: int
) -> None:
    """reg (clean) <- ctrl * a, using |a| CNOTs.  Self-inverse."""
    if a < 0 or a >= (1 << len(reg)):
        raise ValueError(f"constant {a} does not fit in {len(reg)} qubits")
    for i, q in enumerate(reg):
        if (a >> i) & 1:
            circ.cx(ctrl, q)


def emit_add_const(
    circ: Circuit,
    y_full: Sequence[int],
    a: int,
    scratch: Sequence[int],
    emit_add: Callable[[Sequence[int], Sequence[int]], None],
) -> None:
    """Prop 2.16: y += a.  ``scratch`` holds the loaded constant (n clean
    qubits, returned clean); ``emit_add(x, y)`` is any plain adder."""
    if len(scratch) != len(y_full) - 1:
        raise ValueError("scratch must be one qubit shorter than y")
    emit_load_constant(circ, scratch, a)
    emit_add(scratch, y_full)
    emit_load_constant(circ, scratch, a)


def emit_add_const_controlled(
    circ: Circuit,
    ctrl: int,
    y_full: Sequence[int],
    a: int,
    scratch: Sequence[int],
    emit_add: Callable[[Sequence[int], Sequence[int]], None],
) -> None:
    """Prop 2.19: y += ctrl * a.  Only the 2|a| load CNOTs are controlled."""
    if len(scratch) != len(y_full) - 1:
        raise ValueError("scratch must be one qubit shorter than y")
    emit_load_constant_controlled(circ, ctrl, scratch, a)
    emit_add(scratch, y_full)
    emit_load_constant_controlled(circ, ctrl, scratch, a)


def emit_sub_const(
    circ: Circuit,
    y_full: Sequence[int],
    a: int,
    scratch: Sequence[int],
    emit_add: Callable[[Sequence[int], Sequence[int]], None],
) -> None:
    """y -= a (mod 2**len(y)): complement sandwich around :func:`emit_add_const`."""
    for q in y_full:
        circ.x(q)
    emit_add_const(circ, y_full, a, scratch, emit_add)
    for q in y_full:
        circ.x(q)


def emit_sub_const_controlled(
    circ: Circuit,
    ctrl: int,
    y_full: Sequence[int],
    a: int,
    scratch: Sequence[int],
    emit_add: Callable[[Sequence[int], Sequence[int]], None],
) -> None:
    """y -= ctrl * a: the sandwich is unconditional (subtracting 0 is a
    no-op), only the load is controlled."""
    for q in y_full:
        circ.x(q)
    emit_add_const_controlled(circ, ctrl, y_full, a, scratch, emit_add)
    for q in y_full:
        circ.x(q)
